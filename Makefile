# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples quick clean fmt trace-demo check \
	bench-search bench-search-smoke

all: build

build:
	dune build @all

test:
	dune runtest --force

fmt:
	dune build @fmt

# Tune a small chain with tracing + profiling on.  The CLI parses the
# trace back before writing and exits non-zero on invalid JSON, so this
# target doubles as an end-to-end check of the observability layer.
trace-demo:
	dune exec -- mcfuser tune G1 --trace /tmp/mcfuser-trace.json --profile
	@test -s /tmp/mcfuser-trace.json
	@echo "trace-demo: /tmp/mcfuser-trace.json ok (open in ui.perfetto.dev)"

check: build fmt test trace-demo bench-search-smoke

bench:
	dune exec bench/main.exe

# Search-throughput benchmark: enumeration points/s + tuning wall seconds
# per workload at --jobs 1 vs N, written to BENCH_search.json.  The smoke
# variant (1 small workload) runs under `make check` so regressions in
# the parallel path break tier-1.
bench-search:
	dune exec bench/main.exe -- --mode search --out BENCH_search.json

bench-search-smoke:
	dune exec bench/main.exe -- --mode search --smoke \
	  --out /tmp/mcfuser-bench-search-smoke.json
	@test -s /tmp/mcfuser-bench-search-smoke.json
	@echo "bench-search-smoke: /tmp/mcfuser-bench-search-smoke.json ok"

quick:
	dune exec bench/main.exe -- --quick --no-micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attention_fusion.exe
	dune exec examples/three_gemm_chain.exe
	dune exec examples/conv_fusion.exe
	dune exec examples/bert_end_to_end.exe

clean:
	dune clean
