# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples quick clean fmt trace-demo check

all: build

build:
	dune build @all

test:
	dune runtest --force

fmt:
	dune build @fmt

# Tune a small chain with tracing + profiling on.  The CLI parses the
# trace back before writing and exits non-zero on invalid JSON, so this
# target doubles as an end-to-end check of the observability layer.
trace-demo:
	dune exec -- mcfuser tune G1 --trace /tmp/mcfuser-trace.json --profile
	@test -s /tmp/mcfuser-trace.json
	@echo "trace-demo: /tmp/mcfuser-trace.json ok (open in ui.perfetto.dev)"

check: build fmt test trace-demo

bench:
	dune exec bench/main.exe

quick:
	dune exec bench/main.exe -- --quick --no-micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attention_fusion.exe
	dune exec examples/three_gemm_chain.exe
	dune exec examples/conv_fusion.exe
	dune exec examples/bert_end_to_end.exe

clean:
	dune clean
