# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples quick clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

quick:
	dune exec bench/main.exe -- --quick --no-micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attention_fusion.exe
	dune exec examples/three_gemm_chain.exe
	dune exec examples/conv_fusion.exe
	dune exec examples/bert_end_to_end.exe

clean:
	dune clean
