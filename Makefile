# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench examples quick clean fmt trace-demo check \
	ci-guard bench-search bench-search-smoke bench-estimate-smoke \
	report-smoke fuzz-smoke perf-smoke bench-stream-smoke \
	bench-measure-smoke telemetry-smoke serve-smoke bench-serve-smoke

all: build

build:
	dune build @all

test:
	dune runtest --force

fmt:
	dune build @fmt

# Tune a small chain with tracing + profiling on.  The CLI parses the
# trace back before writing and exits non-zero on invalid JSON, so this
# target doubles as an end-to-end check of the observability layer.
trace-demo:
	dune exec -- mcfuser tune G1 --trace /tmp/mcfuser-trace.json --profile
	@test -s /tmp/mcfuser-trace.json
	@echo "trace-demo: /tmp/mcfuser-trace.json ok (open in ui.perfetto.dev)"

# CI-style drift guard: formatting must be a no-op and the cram pins must
# match byte-for-byte.  `dune build @fmt` / `dune runtest` alone would
# auto-promote or hide drift behind a stale cache; --force + diff fails
# loudly instead.
ci-guard:
	dune build @fmt 2>/dev/null || { \
	  echo "ci-guard: dune build @fmt reports formatting drift"; exit 1; }
	dune runtest test/cram --force || { \
	  echo "ci-guard: cram pins drifted (inspect dune runtest test/cram)"; \
	  exit 1; }
	@echo "ci-guard: formatting and cram pins clean"

# Flight-recorder smoke: tune S1 with --record, render the recording, and
# diff it against itself — any drift or regression exits non-zero, so this
# doubles as an end-to-end check of the recorder -> report pipeline.
report-smoke:
	dune exec -- mcfuser tune S1 --record /tmp/mcfuser-record.jsonl \
	  --metrics /tmp/mcfuser-metrics.json > /dev/null
	@test -s /tmp/mcfuser-record.jsonl
	@test -s /tmp/mcfuser-metrics.json
	dune exec -- mcfuser report /tmp/mcfuser-record.jsonl > /dev/null
	dune exec -- mcfuser report --diff /tmp/mcfuser-record.jsonl \
	  /tmp/mcfuser-record.jsonl > /dev/null
	@echo "report-smoke: record/report/diff ok (zero drift)"

# Differential-fuzzing smoke: a fixed seed and a 10 virtual-second budget
# run ~200 cases through all six cross-layer oracles (interp, analytic,
# shmem, pruning, tuner, emit); the budget is charged from deterministic
# work estimates, so the same cases run on every machine and any failure
# prints a replay seed and a minimized reproducer.
fuzz-smoke:
	dune exec -- mcfuser fuzz --seed 42 --budget-s 10 --no-corpus
	@echo "fuzz-smoke: all oracles clean"

# Performance-history smoke: two smoke bench runs append to a fresh
# temp history (with resource sampling on), then `mcfuser perf` renders
# the trends and `--gate` checks the second run against the first.  The
# generous tolerance only guards against catastrophic slowdowns — CI
# machines are far too noisy for a tight wall-clock gate.
perf-smoke:
	rm -f /tmp/mcfuser-history-smoke.jsonl
	dune exec bench/main.exe -- --mode search --smoke --sample-ms 5 \
	  --history /tmp/mcfuser-history-smoke.jsonl \
	  --out /tmp/mcfuser-bench-perf-smoke.json > /dev/null
	dune exec bench/main.exe -- --mode search --smoke --sample-ms 5 \
	  --history /tmp/mcfuser-history-smoke.jsonl \
	  --out /tmp/mcfuser-bench-perf-smoke.json > /dev/null
	dune exec -- mcfuser perf --history /tmp/mcfuser-history-smoke.jsonl
	dune exec -- mcfuser perf --history /tmp/mcfuser-history-smoke.jsonl \
	  --gate --tolerance 0.5
	@echo "perf-smoke: history append + trends + gate ok"

# Streaming-enumeration smoke: the search bench's [enumeration] section
# (streamed 6-block deep chain vs the materialized paths, with its own
# in-bench coverage and heap gates) feeds a fresh temp history twice,
# then the perf gate must explicitly check the streamed run's
# peak_heap_words ceiling — the bounded-memory regression guard.
bench-stream-smoke:
	rm -f /tmp/mcfuser-history-stream.jsonl
	dune exec bench/main.exe -- --mode search --smoke --sample-ms 5 \
	  --history /tmp/mcfuser-history-stream.jsonl \
	  --out /tmp/mcfuser-bench-stream-smoke.json > /dev/null
	dune exec bench/main.exe -- --mode search --smoke --sample-ms 5 \
	  --history /tmp/mcfuser-history-stream.jsonl \
	  --out /tmp/mcfuser-bench-stream-smoke.json > /dev/null
	dune exec -- mcfuser perf --history /tmp/mcfuser-history-stream.jsonl \
	  --gate --tolerance 0.5 > /tmp/mcfuser-stream-gate.txt
	grep -q "D6-smoke-stream peak_heap_words" /tmp/mcfuser-stream-gate.txt
	@echo "bench-stream-smoke: streamed deep-chain heap gate ok"

# Measurement-engine smoke: the search bench's [measure] section only
# (batched sequential vs parallel throughput, plus two tuner runs sharing
# one measurement cache).  The in-bench gates fail the run unless the
# warm tune simulates strictly fewer candidates than the cold one and
# hits the cache on >90% of its lookups.
bench-measure-smoke:
	dune exec bench/main.exe -- --mode search --smoke --measure-only \
	  --jobs 4 --out /tmp/mcfuser-bench-measure-smoke.json
	@test -s /tmp/mcfuser-bench-measure-smoke.json
	@echo "bench-measure-smoke: warm-cache + throughput gates ok"

# Live-telemetry smoke: tune with the HTTP listener on a kernel-assigned
# port and let the process probe its own endpoints over a real socket
# before shutting down — /healthz must answer, /status must parse with a
# phase field, and /metrics must pass the exposition validator.  Exits
# non-zero on any failure, so the listener lifecycle stays under tier-1.
telemetry-smoke:
	dune exec -- mcfuser tune G1 --jobs 2 --listen 127.0.0.1:0 \
	  --listen-selfcheck > /dev/null
	@echo "telemetry-smoke: serve + selfcheck + shutdown ok"

# Tuning-service smoke: daemon up on a kernel-assigned port, selfcheck
# over a real socket, one cold tune round-trip, then the identical
# request again — which must be answered from the warm schedule cache —
# and a graceful shutdown that must drain (the `wait` fails if the
# daemon exits non-zero).
serve-smoke:
	rm -f /tmp/mcfuser-serve-url.txt /tmp/mcfuser-serve-sched.jsonl
	dune build bin/mcfuser_cli.exe
	_build/default/bin/mcfuser_cli.exe serve --listen 127.0.0.1:0 \
	  --workers 1 --port-file /tmp/mcfuser-serve-url.txt \
	  --schedule-cache /tmp/mcfuser-serve-sched.jsonl > /dev/null & \
	for _ in $$(seq 1 200); do \
	  [ -s /tmp/mcfuser-serve-url.txt ] && break; sleep 0.05; done; \
	url=$$(cat /tmp/mcfuser-serve-url.txt); \
	_build/default/bin/mcfuser_cli.exe submit "$$url" --selfcheck && \
	_build/default/bin/mcfuser_cli.exe submit "$$url" G1 \
	  | grep -q "(tuned)" && \
	_build/default/bin/mcfuser_cli.exe submit "$$url" G1 \
	  | grep -q "(cache hit)" && \
	_build/default/bin/mcfuser_cli.exe submit "$$url" --shutdown && \
	wait
	@test -s /tmp/mcfuser-serve-sched.jsonl
	@echo "serve-smoke: daemon + selfcheck + tune + warm cache + drain ok"

# Serve-throughput smoke: two serve bench runs (each with its own
# in-bench gates — >90% warm-cache hit rate and bit-identity against a
# one-shot tune) feed a fresh temp history, then the perf gate must
# explicitly check the smoke-serve requests/s row.
bench-serve-smoke:
	rm -f /tmp/mcfuser-history-serve.jsonl
	dune exec bench/main.exe -- --mode serve --smoke --jobs 4 \
	  --history /tmp/mcfuser-history-serve.jsonl \
	  --out /tmp/mcfuser-bench-serve-smoke.json > /dev/null
	dune exec bench/main.exe -- --mode serve --smoke --jobs 4 \
	  --history /tmp/mcfuser-history-serve.jsonl \
	  --out /tmp/mcfuser-bench-serve-smoke.json > /dev/null
	dune exec -- mcfuser perf --history /tmp/mcfuser-history-serve.jsonl \
	  --gate --tolerance 0.5 > /tmp/mcfuser-serve-gate.txt
	grep -q "smoke-serve requests_per_s" /tmp/mcfuser-serve-gate.txt
	@echo "bench-serve-smoke: throughput + warm-cache + identity gates ok"

check: build fmt test trace-demo ci-guard bench-search-smoke bench-estimate-smoke report-smoke fuzz-smoke perf-smoke bench-stream-smoke bench-measure-smoke telemetry-smoke serve-smoke bench-serve-smoke

bench:
	dune exec bench/main.exe

# Search-throughput benchmark: enumeration points/s + tuning wall seconds
# per workload at --jobs 1 vs N, written to BENCH_search.json.  The smoke
# variant (1 small workload) runs under `make check` so regressions in
# the parallel path break tier-1.
bench-search:
	dune exec bench/main.exe -- --mode search --out BENCH_search.json

bench-search-smoke:
	dune exec bench/main.exe -- --mode search --smoke \
	  --out /tmp/mcfuser-bench-search-smoke.json
	@test -s /tmp/mcfuser-bench-search-smoke.json
	@echo "bench-search-smoke: /tmp/mcfuser-bench-search-smoke.json ok"

# Closed-form vs lowered-walk estimation throughput only (the analytic
# fast path's micro-section); fast enough for `make check`.
bench-estimate-smoke:
	dune exec bench/main.exe -- --mode search --smoke --estimate-only \
	  --out /tmp/mcfuser-bench-estimate-smoke.json
	@test -s /tmp/mcfuser-bench-estimate-smoke.json
	@echo "bench-estimate-smoke: /tmp/mcfuser-bench-estimate-smoke.json ok"

quick:
	dune exec bench/main.exe -- --quick --no-micro

examples:
	dune exec examples/quickstart.exe
	dune exec examples/attention_fusion.exe
	dune exec examples/three_gemm_chain.exe
	dune exec examples/conv_fusion.exe
	dune exec examples/bert_end_to_end.exe

clean:
	dune clean
