(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (one experiment per artifact, see DESIGN.md), then
   runs Bechamel micro-benchmarks of the compiler machinery itself.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --list       # available experiments
     dune exec bench/main.exe -- --only fig8a,fig11
     dune exec bench/main.exe -- --quick      # reduced Ansor trial budget
     dune exec bench/main.exe -- --no-micro   # skip the Bechamel suite
     dune exec bench/main.exe -- --trace FILE # Chrome trace of the run
     dune exec bench/main.exe -- --profile    # phase table + metrics dump *)

let hr = String.make 78 '='

let run_experiments ids =
  List.iter
    (fun id ->
      match Mcf_experiments.Registry.find id with
      | None ->
        Printf.printf "unknown experiment %S; use --list\n" id;
        exit 1
      | Some e ->
        Printf.printf "%s\n[%s] %s\n%s\n%!" hr e.id e.description hr;
        let t0 = Unix.gettimeofday () in
        print_string (e.run ());
        Printf.printf "(experiment wall time: %.1fs)\n\n%!"
          (Unix.gettimeofday () -. t0))
    ids

(* --- Bechamel micro-benchmarks of the compiler itself ------------------- *)

let micro_tests () =
  let open Bechamel in
  let spec = Mcf_gpu.Spec.a100 in
  let chain = Mcf_ir.Chain.gemm_chain ~m:512 ~n:512 ~k:256 ~h:256 () in
  let ax s = Mcf_ir.Chain.axis chain s in
  let cand =
    Mcf_ir.Candidate.make
      (Mcf_ir.Tiling.Deep [ ax "m"; ax "h"; ax "n"; ax "k" ])
      [ ("m", 64); ("n", 64); ("k", 32); ("h", 64) ]
  in
  let lowered = Mcf_ir.Lower.lower ~elem_bytes:2 chain cand in
  let entries, _ = Mcf_search.Space.enumerate spec chain in
  let entry = List.hd entries in
  let kernel =
    match Mcf_codegen.Compile.compile spec lowered with
    | Ok k -> k
    | Error e -> failwith (Mcf_codegen.Compile.string_of_error e)
  in
  let attention =
    Mcf_ir.Chain.attention ~heads:8 ~m:256 ~n:256 ~k:64 ~h:64 ()
  in
  [ Test.make ~name:"lower-candidate"
      (Staged.stage (fun () ->
           ignore (Mcf_ir.Lower.lower ~elem_bytes:2 chain cand)));
    Test.make ~name:"analytical-model-eq2-5"
      (Staged.stage (fun () ->
           ignore (Mcf_model.Perf.estimate spec lowered)));
    Test.make ~name:"shmem-estimate-eq1"
      (Staged.stage (fun () ->
           ignore (Mcf_model.Shmem.estimate_bytes lowered)));
    Test.make ~name:"codegen-alloc"
      (Staged.stage (fun () ->
           ignore (Mcf_codegen.Alloc.actual_bytes spec lowered)));
    Test.make ~name:"simulator-run"
      (Staged.stage (fun () -> ignore (Mcf_gpu.Sim.run spec kernel)));
    Test.make ~name:"compile-candidate"
      (Staged.stage (fun () ->
           ignore (Mcf_codegen.Compile.compile spec entry.lowered)));
    Test.make ~name:"space-enumerate-G-mid"
      (Staged.stage (fun () ->
           ignore (Mcf_search.Space.enumerate spec chain)));
    Test.make ~name:"tiling-enumeration-attention"
      (Staged.stage (fun () -> ignore (Mcf_ir.Tiling.enumerate attention)));
    (let tiny = Mcf_ir.Chain.gemm_chain ~m:48 ~n:32 ~k:32 ~h:32 () in
     let tax s = Mcf_ir.Chain.axis tiny s in
     let tcand =
       Mcf_ir.Candidate.make
         (Mcf_ir.Tiling.Deep [ tax "m"; tax "h"; tax "n"; tax "k" ])
         [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ]
     in
     let tprog = Mcf_ir.Program.build tiny tcand in
     let rng = Mcf_util.Rng.create 99 in
     let tinputs =
       List.map
         (fun (ts : Mcf_ir.Chain.tensor_spec) ->
           let shape =
             Array.of_list
               (List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes)
           in
           (ts.tname, Mcf_tensor.Tensor.random rng shape))
         (Mcf_ir.Chain.input_tensors tiny)
     in
     Test.make ~name:"interpreter-48x32x32x32"
       (Staged.stage (fun () ->
            ignore (Mcf_interp.Interp.run tprog ~inputs:tinputs)))) ]

let run_micro () =
  let open Bechamel in
  Printf.printf
    "%s\n[micro] Bechamel micro-benchmarks of the compiler machinery\n%s\n%!"
    hr hr;
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let tests = micro_tests () in
  let tbl = Mcf_util.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true
              ~responder:"monotonic-clock" ~predictors:[| "run" |]
              raw.Benchmark.lr
          in
          let time_ns =
            match Analyze.OLS.estimates ols with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols with Some r -> r | None -> nan
          in
          Mcf_util.Table.add_row tbl
            [ Test.Elt.name elt;
              Mcf_util.Table.fmt_time_s (time_ns *. 1e-9);
              Mcf_util.Table.fmt_float ~digits:3 r2 ])
        (Test.elements test))
    tests;
  print_string (Mcf_util.Table.render tbl)

let write_trace path =
  Mcf_obs.Trace.stop ();
  let doc = Mcf_util.Json.to_string (Mcf_obs.Trace.to_chrome_json ()) in
  match Mcf_util.Json.parse doc with
  | Error e ->
    Printf.eprintf "trace: serialization produced invalid JSON (%s)\n" e;
    exit 1
  | Ok _ -> (
    match open_out path with
    | exception Sys_error e ->
      Printf.eprintf "trace: cannot write %s: %s\n" path e;
      exit 1
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc doc;
          output_char oc '\n');
      Printf.eprintf "trace: wrote %s (%d spans)\n%!" path
        (List.length (Mcf_obs.Trace.events ())))

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse only quick micro trace profile = function
    | [] -> (only, quick, micro, trace, profile)
    | "--list" :: _ ->
      List.iter
        (fun (e : Mcf_experiments.Registry.experiment) ->
          Printf.printf "%-10s %s\n" e.id e.description)
        Mcf_experiments.Registry.all;
      exit 0
    | "--only" :: spec :: rest ->
      parse (Some (String.split_on_char ',' spec)) quick micro trace profile rest
    | "--quick" :: rest -> parse only true micro trace profile rest
    | "--no-micro" :: rest -> parse only quick false trace profile rest
    | "--trace" :: path :: rest -> parse only quick micro (Some path) profile rest
    | "--profile" :: rest -> parse only quick micro trace true rest
    | arg :: _ ->
      Printf.printf "unknown argument %S (try --list)\n" arg;
      exit 1
  in
  let only, quick, micro, trace, profile =
    parse None false true None false args
  in
  if quick then Mcf_baselines.Ansor.trials := 200;
  if profile then Mcf_obs.Profile.enable ();
  if trace <> None then Mcf_obs.Trace.start ();
  let ids =
    match only with Some ids -> ids | None -> Mcf_experiments.Registry.ids ()
  in
  let t0 = Unix.gettimeofday () in
  run_experiments ids;
  if micro && only = None then run_micro ();
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  (match trace with Some path -> write_trace path | None -> ());
  if profile then begin
    Printf.printf "\n# per-phase wall-clock\n";
    print_string (Mcf_obs.Profile.render ());
    Printf.printf "\n# metrics\n";
    print_string (Mcf_obs.Metrics.render_table ())
  end
