(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation section (one experiment per artifact, see DESIGN.md), then
   runs Bechamel micro-benchmarks of the compiler machinery itself.

   Usage:
     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --list       # available experiments
     dune exec bench/main.exe -- --only fig8a,fig11
     dune exec bench/main.exe -- --quick      # reduced Ansor trial budget
     dune exec bench/main.exe -- --no-micro   # skip the Bechamel suite
     dune exec bench/main.exe -- --trace FILE # Chrome trace of the run
     dune exec bench/main.exe -- --record FILE  # search flight recording
     dune exec bench/main.exe -- --metrics FILE # metrics registry as JSON
     dune exec bench/main.exe -- --profile    # phase table + metrics dump

   Search-throughput mode (the tuner's hot path, see `make bench-search`):
     dune exec bench/main.exe -- --mode search --out BENCH_search.json
     dune exec bench/main.exe -- --mode search --jobs 4 --smoke
     dune exec bench/main.exe -- --mode search --smoke --estimate-only
     dune exec bench/main.exe -- --mode search --smoke --measure-only
     dune exec bench/main.exe -- --sample-ms 5      # resource telemetry
     dune exec bench/main.exe -- --mode search --history BENCH_history.jsonl
                                              # append per-workload entries
                                              # for `mcfuser perf` *)

let hr = String.make 78 '='

let run_experiments ids =
  List.iter
    (fun id ->
      match Mcf_experiments.Registry.find id with
      | None ->
        Printf.printf "unknown experiment %S; use --list\n" id;
        exit 1
      | Some e ->
        Printf.printf "%s\n[%s] %s\n%s\n%!" hr e.id e.description hr;
        let t0 = Unix.gettimeofday () in
        print_string (e.run ());
        Printf.printf "(experiment wall time: %.1fs)\n\n%!"
          (Unix.gettimeofday () -. t0))
    ids

(* --- Bechamel micro-benchmarks of the compiler itself ------------------- *)

let micro_tests () =
  let open Bechamel in
  let spec = Mcf_gpu.Spec.a100 in
  let chain = Mcf_ir.Chain.gemm_chain ~m:512 ~n:512 ~k:256 ~h:256 () in
  let ax s = Mcf_ir.Chain.axis chain s in
  let cand =
    Mcf_ir.Candidate.make
      (Mcf_ir.Tiling.Deep [ ax "m"; ax "h"; ax "n"; ax "k" ])
      [ ("m", 64); ("n", 64); ("k", 32); ("h", 64) ]
  in
  let lowered = Mcf_ir.Lower.lower ~elem_bytes:2 chain cand in
  let entries, _ = Mcf_search.Space.enumerate spec chain in
  let entry = List.hd entries in
  let kernel =
    match Mcf_codegen.Compile.compile spec lowered with
    | Ok k -> k
    | Error e -> failwith (Mcf_codegen.Compile.string_of_error e)
  in
  let attention =
    Mcf_ir.Chain.attention ~heads:8 ~m:256 ~n:256 ~k:64 ~h:64 ()
  in
  [ Test.make ~name:"lower-candidate"
      (Staged.stage (fun () ->
           ignore (Mcf_ir.Lower.lower ~elem_bytes:2 chain cand)));
    Test.make ~name:"analytical-model-eq2-5"
      (Staged.stage (fun () ->
           ignore (Mcf_model.Perf.estimate spec lowered)));
    Test.make ~name:"shmem-estimate-eq1"
      (Staged.stage (fun () ->
           ignore (Mcf_model.Shmem.estimate_bytes lowered)));
    Test.make ~name:"codegen-alloc"
      (Staged.stage (fun () ->
           ignore (Mcf_codegen.Alloc.actual_bytes spec lowered)));
    Test.make ~name:"simulator-run"
      (Staged.stage (fun () -> ignore (Mcf_gpu.Sim.run spec kernel)));
    Test.make ~name:"compile-candidate"
      (Staged.stage (fun () ->
           ignore (Mcf_codegen.Compile.compile spec (Mcf_search.Space.lowered entry))));
    Test.make ~name:"space-enumerate-G-mid"
      (Staged.stage (fun () ->
           ignore (Mcf_search.Space.enumerate spec chain)));
    Test.make ~name:"tiling-enumeration-attention"
      (Staged.stage (fun () -> ignore (Mcf_ir.Tiling.enumerate attention)));
    (let tiny = Mcf_ir.Chain.gemm_chain ~m:48 ~n:32 ~k:32 ~h:32 () in
     let tax s = Mcf_ir.Chain.axis tiny s in
     let tcand =
       Mcf_ir.Candidate.make
         (Mcf_ir.Tiling.Deep [ tax "m"; tax "h"; tax "n"; tax "k" ])
         [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ]
     in
     let tprog = Mcf_ir.Program.build tiny tcand in
     let rng = Mcf_util.Rng.create 99 in
     let tinputs =
       List.map
         (fun (ts : Mcf_ir.Chain.tensor_spec) ->
           let shape =
             Array.of_list
               (List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes)
           in
           (ts.tname, Mcf_tensor.Tensor.random rng shape))
         (Mcf_ir.Chain.input_tensors tiny)
     in
     Test.make ~name:"interpreter-48x32x32x32"
       (Staged.stage (fun () ->
            ignore (Mcf_interp.Interp.run tprog ~inputs:tinputs)))) ]

let run_micro () =
  let open Bechamel in
  Printf.printf
    "%s\n[micro] Bechamel micro-benchmarks of the compiler machinery\n%s\n%!"
    hr hr;
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let tests = micro_tests () in
  let tbl = Mcf_util.Table.create ~headers:[ "benchmark"; "time/run"; "r^2" ] in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg instances elt in
          let ols =
            Analyze.OLS.ols ~bootstrap:0 ~r_square:true
              ~responder:"monotonic-clock" ~predictors:[| "run" |]
              raw.Benchmark.lr
          in
          let time_ns =
            match Analyze.OLS.estimates ols with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols with Some r -> r | None -> nan
          in
          Mcf_util.Table.add_row tbl
            [ Test.Elt.name elt;
              Mcf_util.Table.fmt_time_s (time_ns *. 1e-9);
              Mcf_util.Table.fmt_float ~digits:3 r2 ])
        (Test.elements test))
    tests;
  print_string (Mcf_util.Table.render tbl)

(* --- search-throughput benchmark (--mode search) ------------------------ *)

(* Enumeration + estimation dominate real tuning wall time (codegen and
   the simulator are virtual-clock); this mode measures exactly that hot
   path, per workload and per pool size, and doubles as an end-to-end
   determinism check: the tuner outcome must be bit-identical at every
   jobs setting. *)

let search_workloads ~smoke =
  let gemm name =
    match Mcf_workloads.Configs.find_gemm name with
    | Some g -> (name, Mcf_workloads.Configs.gemm_chain g)
    | None -> failwith ("unknown gemm workload " ^ name)
  in
  let attn name =
    match Mcf_workloads.Configs.find_attention name with
    | Some s -> (name, Mcf_workloads.Configs.attention s)
    | None -> failwith ("unknown attention workload " ^ name)
  in
  if smoke then [ ("smoke", Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ()) ]
  else [ gemm "G1"; gemm "G4"; gemm "G10"; attn "S9"; attn "S3" ]

(* S3 (Bert-Large) is the largest attention workload of Table III. *)
let largest_workload ~smoke = if smoke then "smoke" else "S3"

let time_best ~reps f =
  let best = ref infinity in
  let last = ref None in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    let r = f () in
    let dt = Unix.gettimeofday () -. t0 in
    if dt < !best then best := dt;
    last := Some r
  done;
  (Option.get !last, !best)

let outcome_fingerprint (o : Mcf_search.Tuner.outcome) =
  let f = o.funnel in
  let s = o.search_stats in
  Printf.sprintf "%s|%.17g|%d/%d/%d/%g/%g/%d/%d|%d/%d/%d"
    (Mcf_ir.Candidate.key o.best.cand)
    o.kernel_time_s f.tilings_raw f.tilings_rule1 f.tilings_rule2
    f.candidates_raw f.candidates_rule3 f.candidates_rule4 f.candidates_valid
    s.generations s.estimated s.measured

(* Streamed deep-chain enumeration: evidence for the bounded-memory claim.
   Three measurements, in an order that keeps the monotone
   [peak_heap_words] honest: (1) the largest Table workload, materialized,
   for the coverage ratio; (2) the deep chain streamed — its peak includes
   (1)'s, so the bound is conservative; (3) the same deep chain through
   the pre-streaming materialized path, whose peak includes (2)'s — it
   only exceeds the streamed peak if holding the whole space genuinely
   needs more live heap than streaming ever did.  Runs before the
   per-workload sweeps so later allocations cannot inflate any of the
   three numbers. *)
let run_enumeration_bench spec ~smoke =
  let num = Mcf_util.Json.num_of_int in
  let baseline_name, baseline_chain =
    if smoke then
      ("smoke", Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ())
    else
      match Mcf_workloads.Configs.find_attention "S3" with
      | Some s -> ("S3", Mcf_workloads.Configs.attention s)
      | None -> failwith "unknown attention workload S3"
  in
  let deep_name, deep_chain, reservoir =
    if smoke then
      (* Same 6-block structure as D6 (8-axis tiling space), scaled so the
         smoke run stays under a second. *)
      ( "D6-smoke",
        Mcf_ir.Chain.gemm_chain_n ~m:128
          ~dims:[ 64; 64; 64; 64; 64; 64; 64 ]
          (),
        256 )
    else
      match Mcf_workloads.Configs.find_deep "D6" with
      | Some d -> ("D6", Mcf_workloads.Configs.deep_chain d, 512)
      | None -> failwith "unknown deep workload D6"
  in
  Printf.printf
    "%s\n[enumeration] streamed %s (reservoir %d) vs materialized paths\n%s\n%!"
    hr deep_name reservoir hr;
  let t0 = Unix.gettimeofday () in
  let _bentries, bf =
    Mcf_search.Space.enumerate_materialized spec baseline_chain
  in
  let baseline_s = Unix.gettimeofday () -. t0 in
  let bpoints = bf.Mcf_search.Space.candidates_rule3 in
  let t0 = Unix.gettimeofday () in
  let dentries, _scores, df =
    Mcf_search.Space.enumerate_scored ~reservoir spec deep_chain
  in
  let deep_s = Unix.gettimeofday () -. t0 in
  let deep_peak = Mcf_obs.Resource.peak_heap_words () in
  let t0 = Unix.gettimeofday () in
  let _mentries, _mf = Mcf_search.Space.enumerate_materialized spec deep_chain in
  let mat_s = Unix.gettimeofday () -. t0 in
  let mat_peak = Mcf_obs.Resource.peak_heap_words () in
  let dpoints = df.Mcf_search.Space.candidates_rule3 in
  let dpoints_per_s = dpoints /. Float.max deep_s 1e-9 in
  let kept = List.length dentries in
  let points_ratio = dpoints /. Float.max bpoints 1e-9 in
  let heap_saving = mat_peak /. Float.max deep_peak 1e-9 in
  Printf.printf
    "  %-9s materialized: %.3g points in %.3fs (coverage baseline)\n"
    baseline_name bpoints baseline_s;
  Printf.printf
    "  %-9s streamed:     %.3g points in %.3fs (%.0f points/s), peak heap \
     %.3gMw\n"
    deep_name dpoints deep_s dpoints_per_s (deep_peak /. 1e6);
  Printf.printf
    "  %-9s materialized: same space in %.3fs, peak heap %.3gMw\n"
    deep_name mat_s (mat_peak /. 1e6);
  Printf.printf
    "  space %.1fx larger than %s, heap high-water %.2fx lower streamed, \
     reservoir %d/%d kept of %d valid\n%!"
    points_ratio baseline_name heap_saving kept reservoir
    df.Mcf_search.Space.candidates_valid;
  let section =
    Mcf_util.Json.Obj
      [ ("baseline",
         Mcf_util.Json.Obj
           [ ("name", Str baseline_name);
             ("points", Num bpoints);
             ("wall_s", Num baseline_s) ]);
        ("deep",
         Mcf_util.Json.Obj
           [ ("name", Str deep_name);
             ("chain", Str deep_chain.Mcf_ir.Chain.cname);
             ("reservoir", num reservoir);
             ("kept", num kept);
             ("valid", num df.Mcf_search.Space.candidates_valid);
             ("points", Num dpoints);
             ("wall_s", Num deep_s);
             ("points_per_s", Num dpoints_per_s);
             ("peak_heap_words", Num deep_peak) ]);
        ("deep_materialized",
         Mcf_util.Json.Obj
           [ ("wall_s", Num mat_s); ("peak_heap_words", Num mat_peak) ]);
        ("points_ratio", Num points_ratio);
        ("heap_saving", Num heap_saving) ]
  in
  (* A workload-shaped row so [History.of_search_doc] picks the streamed
     run up: the perf gate then tracks its throughput (higher is better)
     and heap high-water mark (lower is better) across runs. *)
  let history_row =
    Mcf_util.Json.Obj
      [ ("name", Str (deep_name ^ "-stream"));
        ("chain", Str deep_chain.Mcf_ir.Chain.cname);
        ("points", Num dpoints);
        ("valid", num df.Mcf_search.Space.candidates_valid);
        ("enumerate",
         List
           [ Mcf_util.Json.Obj
               [ ("jobs", num (Mcf_util.Pool.jobs ()));
                 ("wall_s", Num deep_s);
                 ("points_per_s", Num dpoints_per_s) ] ]);
        ("peak_heap_words", Num deep_peak) ]
  in
  (section, history_row, points_ratio, heap_saving)

(* Closed-form vs lowered-walk estimation throughput on the largest
   workload: the analytic fast path's headline number.  Both passes score
   every enumerated candidate; the closed-form pass goes through a fresh
   [Analytic.Memo] so the reported hit rate is what the search itself
   sees. *)
let run_estimate_bench spec ~smoke =
  let wname = largest_workload ~smoke in
  let chain = List.assoc wname (search_workloads ~smoke) in
  Printf.printf "%s\n[estimate] %s: closed-form vs lowered-walk\n%s\n%!" hr
    wname hr;
  let entries, _ = Mcf_search.Space.enumerate spec chain in
  let pool = Array.of_list entries in
  let n = Array.length pool in
  if n = 0 then failwith ("empty candidate space for " ^ wname);
  let ctx = pool.(0).Mcf_search.Space.ctx in
  let reps = if smoke then 2 else 3 in
  let (), lowered_s =
    time_best ~reps (fun () ->
        Array.iter
          (fun (e : Mcf_search.Space.entry) ->
            let l =
              Mcf_ir.Lower.lower ~rule1:ctx.Mcf_search.Space.rule1
                ~dead_loop_elim:ctx.Mcf_search.Space.dead_loop_elim
                ~hoisting:ctx.Mcf_search.Space.hoisting
                ~elem_bytes:ctx.Mcf_search.Space.elem_bytes
                ctx.Mcf_search.Space.chain e.cand
            in
            ignore (Mcf_model.Perf.estimate spec l))
          pool)
  in
  let hits0 = Mcf_obs.Metrics.counter_value "model.memo.hits" in
  let misses0 = Mcf_obs.Metrics.counter_value "model.memo.misses" in
  let (), closed_s =
    time_best ~reps (fun () ->
        let memo =
          Mcf_model.Analytic.Memo.create ~rule1:ctx.Mcf_search.Space.rule1
            ~dead_loop_elim:ctx.Mcf_search.Space.dead_loop_elim
            ~hoisting:ctx.Mcf_search.Space.hoisting
            ~elem_bytes:ctx.Mcf_search.Space.elem_bytes
            ctx.Mcf_search.Space.chain
        in
        Array.iter
          (fun (e : Mcf_search.Space.entry) ->
            ignore (Mcf_model.Analytic.Memo.estimate memo spec e.cand))
          pool)
  in
  let hits = Mcf_obs.Metrics.counter_value "model.memo.hits" - hits0 in
  let misses = Mcf_obs.Metrics.counter_value "model.memo.misses" - misses0 in
  let hit_rate =
    float_of_int hits /. Float.max 1.0 (float_of_int (hits + misses))
  in
  let fn = float_of_int n in
  let closed_per_s = fn /. Float.max closed_s 1e-9 in
  let lowered_per_s = fn /. Float.max lowered_s 1e-9 in
  let speedup = closed_per_s /. Float.max lowered_per_s 1e-9 in
  Printf.printf
    "  %d candidates: closed-form %.0f/s, lowered walk %.0f/s (%.1fx), memo \
     hit rate %.1f%%\n%!"
    n closed_per_s lowered_per_s speedup (100.0 *. hit_rate);
  let num = Mcf_util.Json.num_of_int in
  Mcf_util.Json.Obj
    [ ("workload", Str wname);
      ("candidates", num n);
      ("closed_form_per_s", Num closed_per_s);
      ("lowered_walk_per_s", Num lowered_per_s);
      ("speedup", Num speedup);
      ("memo_hits", num hits);
      ("memo_misses", num misses);
      ("memo_hit_rate", Num hit_rate) ]

(* Batched measurement throughput and cache effectiveness on the largest
   workload: the measurement engine's headline numbers.  Each timed arm
   rebuilds fresh entries from (ctx, candidate) pairs — the entry's lazy
   lowering cell memoizes, so reusing entries would time a no-op — and
   drives the same rank-ordered batch through a sequential and a parallel
   engine.  A second pair of full tuner runs shares one measurement
   cache: the cold run misses on every distinct key, the warm run should
   hit on (nearly) all of them. *)
let run_measure_bench spec ~jobs ~smoke =
  let num = Mcf_util.Json.num_of_int in
  let wname = largest_workload ~smoke in
  let chain = List.assoc wname (search_workloads ~smoke) in
  Printf.printf
    "%s\n[measure] %s: batched engine, sequential vs parallel\n%s\n%!" hr
    wname hr;
  let entries, _ = Mcf_search.Space.enumerate spec chain in
  let limit = if smoke then 64 else 256 in
  let cands =
    List.filteri (fun i _ -> i < limit) entries
    |> List.map (fun (e : Mcf_search.Space.entry) -> (e.ctx, e.cand))
  in
  let n = List.length cands in
  if n = 0 then failwith ("empty candidate space for " ^ wname);
  let reps = if smoke then 2 else 3 in
  let batch () =
    List.mapi
      (fun i (ctx, c) -> (i, Mcf_search.Space.make_entry ctx c))
      cands
  in
  let measure_wall engine =
    snd
      (time_best ~reps (fun () ->
           let clock = Mcf_gpu.Clock.create () in
           Mcf_search.Measure.run_batch engine ~clock ~compile_cost_s:0.6
             ~repeats:10
             ~commit:(fun _ _ -> ())
             (batch ())))
  in
  Mcf_util.Pool.set_jobs jobs;
  ignore (Mcf_util.Pool.get ());
  let seq_s =
    measure_wall (Mcf_search.Measure.create ~sequential:true spec)
  in
  let par_s = measure_wall (Mcf_search.Measure.create spec) in
  let fn = float_of_int n in
  let seq_per_s = fn /. Float.max seq_s 1e-9 in
  let par_per_s = fn /. Float.max par_s 1e-9 in
  let speedup = par_per_s /. Float.max seq_per_s 1e-9 in
  let cv = Mcf_obs.Metrics.counter_value in
  let cache = Mcf_search.Measure.cache_create () in
  let tune_measured () =
    match
      Mcf_search.Tuner.tune
        ~measure:(Mcf_search.Measure.create ~cache spec)
        spec chain
    with
    | Ok o -> o.Mcf_search.Tuner.search_stats.Mcf_search.Explore.measured
    | Error _ -> failwith ("tuning failed for " ^ wname)
  in
  let m0 = cv "measure.cache.misses" in
  let cold_measured = tune_measured () in
  let m1 = cv "measure.cache.misses" and h1 = cv "measure.cache.hits" in
  let warm_measured = tune_measured () in
  let m2 = cv "measure.cache.misses" and h2 = cv "measure.cache.hits" in
  let cold_misses = m1 - m0 in
  let warm_misses = m2 - m1 in
  let warm_hits = h2 - h1 in
  let warm_hit_rate =
    float_of_int warm_hits
    /. Float.max 1.0 (float_of_int (warm_hits + warm_misses))
  in
  Printf.printf
    "  %d candidates: sequential %.0f/s, parallel %.0f/s at %d jobs (%.2fx)\n"
    n seq_per_s par_per_s jobs speedup;
  Printf.printf
    "  cache: cold tune %d measured / %d simulated, warm tune %d measured / \
     %d simulated (hit rate %.1f%%)\n%!"
    cold_measured cold_misses warm_measured warm_misses
    (100.0 *. warm_hit_rate);
  let section =
    Mcf_util.Json.Obj
      [ ("workload", Str wname);
        ("candidates", num n);
        ("jobs", num jobs);
        ("sequential_per_s", Num seq_per_s);
        ("measured_per_s", Num par_per_s);
        ("speedup", Num speedup);
        ("cold_measured", num cold_measured);
        ("cold_misses", num cold_misses);
        ("warm_measured", num warm_measured);
        ("warm_misses", num warm_misses);
        ("warm_hits", num warm_hits);
        ("warm_hit_rate", Num warm_hit_rate) ]
  in
  (* A workload-shaped row so [History.of_search_doc] tracks the engine's
     throughput (both arms are [_per_s]: higher is better) across runs. *)
  let history_row =
    Mcf_util.Json.Obj
      [ ("name", Str (wname ^ "-measure"));
        ("chain", Str chain.Mcf_ir.Chain.cname);
        ("measure", section) ]
  in
  (section, history_row, warm_misses, cold_misses, warm_hit_rate)

let run_search_bench ~jobs ~smoke ~estimate_only ~measure_only ~history ~out =
  let spec = Mcf_gpu.Spec.a100 in
  let jobs_list = List.sort_uniq compare [ 1; jobs ] in
  let reps = if smoke then 3 else 2 in
  let num = Mcf_util.Json.num_of_int in
  Mcf_util.Pool.set_jobs jobs;
  ignore (Mcf_util.Pool.get ());
  let enumeration =
    if estimate_only || measure_only then None
    else Some (run_enumeration_bench spec ~smoke)
  in
  let results =
    if estimate_only || measure_only then []
    else List.map
      (fun (name, chain) ->
        Printf.printf "%s\n[search] %s\n%s\n%!" hr name hr;
        let funnel = ref None in
        let fingerprints = ref [] in
        let enum_rows, tune_rows =
          List.split
            (List.map
               (fun j ->
                 Mcf_util.Pool.set_jobs j;
                 ignore (Mcf_util.Pool.get ());
                 let (_, f), enum_s =
                   time_best ~reps (fun () ->
                       Mcf_search.Space.enumerate spec chain)
                 in
                 funnel := Some f;
                 let points = f.Mcf_search.Space.candidates_rule3 in
                 let points_per_s = points /. Float.max enum_s 1e-9 in
                 let t0 = Unix.gettimeofday () in
                 let outcome =
                   match Mcf_search.Tuner.tune spec chain with
                   | Ok o -> o
                   | Error _ -> failwith ("tuning failed for " ^ name)
                 in
                 let tune_s = Unix.gettimeofday () -. t0 in
                 fingerprints := outcome_fingerprint outcome :: !fingerprints;
                 let explore_s =
                   match List.assoc_opt "tuner.explore" outcome.phases with
                   | Some s -> s
                   | None -> nan
                 in
                 let stats = outcome.search_stats in
                 Printf.printf
                   "  jobs=%d  enumerate %.3fs (%.0f points/s)  tune %.3fs  \
                    estimates %d (%.0f/s)\n%!"
                   j enum_s points_per_s tune_s stats.estimated
                   (float_of_int stats.estimated /. Float.max explore_s 1e-9);
                 ( Mcf_util.Json.Obj
                     [ ("jobs", num j);
                       ("wall_s", Num enum_s);
                       ("points_per_s", Num points_per_s) ],
                   Mcf_util.Json.Obj
                     [ ("jobs", num j);
                       ("wall_s", Num tune_s);
                       ("explore_wall_s", Num explore_s);
                       ("estimated", num stats.estimated);
                       ("estimates_per_s",
                        Num (float_of_int stats.estimated
                             /. Float.max explore_s 1e-9));
                       ("measured", num stats.measured);
                       ("best_time_s", Num outcome.kernel_time_s) ] ))
               jobs_list)
        in
        let f = Option.get !funnel in
        let identical =
          match !fingerprints with
          | [] -> true
          | fp :: rest -> List.for_all (String.equal fp) rest
        in
        if not identical then
          Printf.eprintf
            "WARNING: %s: tuner outcome differs across --jobs settings!\n%!"
            name;
        let wall_of = function
          | Mcf_util.Json.Obj kvs -> (
            match List.assoc_opt "wall_s" kvs with
            | Some (Mcf_util.Json.Num v) -> v
            | _ -> nan)
          | _ -> nan
        in
        let speedup =
          match (enum_rows, List.rev enum_rows) with
          | first :: _, last :: _ when List.length enum_rows > 1 ->
            wall_of first /. Float.max (wall_of last) 1e-9
          | _ -> 1.0
        in
        ( name,
          speedup,
          Mcf_util.Json.Obj
            [ ("name", Str name);
              ("chain", Str chain.Mcf_ir.Chain.cname);
              ("points", Num f.Mcf_search.Space.candidates_rule3);
              ("lowered", num f.Mcf_search.Space.candidates_rule4);
              ("valid", num f.Mcf_search.Space.candidates_valid);
              ("enumerate", List enum_rows);
              ("enumerate_speedup", Num speedup);
              ("tune", List tune_rows);
              ("identical_across_jobs", Bool identical);
              (* Process-lifetime high-water mark up to this workload: a
                 stable upper bound for the history's memory trend. *)
              ("peak_heap_words", Num (Mcf_obs.Resource.peak_heap_words ())) ] ))
      (search_workloads ~smoke)
  in
  let estimate_json =
    if measure_only then None else Some (run_estimate_bench spec ~smoke)
  in
  let measure =
    if estimate_only then None else Some (run_measure_bench spec ~jobs ~smoke)
  in
  Mcf_obs.Poolstats.sync ();
  let largest = largest_workload ~smoke in
  let largest_speedup =
    List.fold_left
      (fun acc (name, s, _) -> if name = largest then s else acc)
      1.0 results
  in
  let workload_rows =
    List.map (fun (_, _, j) -> j) results
    @ (match enumeration with Some (_, row, _, _) -> [ row ] | None -> [])
    @ (match measure with Some (_, row, _, _, _) -> [ row ] | None -> [])
  in
  let doc =
    let open Mcf_util.Json in
    Obj
      ([ ("bench", Str "search");
         ("device", Str spec.name);
         ("smoke", Bool smoke);
         ("jobs", List (List.map num jobs_list));
         ("cores", num (Domain.recommended_domain_count ()));
         ("workloads", List workload_rows) ]
      @ (match enumeration with
        | Some (section, _, _, _) -> [ ("enumeration", section) ]
        | None -> [])
      @ (match estimate_json with
        | Some section -> [ ("estimate", section) ]
        | None -> [])
      @ (match measure with
        | Some (section, _, _, _, _) -> [ ("measure", section) ]
        | None -> [])
      @ [ ("largest_workload", Str largest);
          ("largest_enumerate_speedup", Num largest_speedup) ])
  in
  let oc = open_out out in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (Mcf_util.Json.to_string doc);
      output_char oc '\n');
  (match history with
  | None -> ()
  | Some path ->
    let entries = Mcf_obs.History.of_search_doc doc in
    List.iter (Mcf_obs.History.append ~path) entries;
    Printf.printf "appended %d history entr%s to %s (rev %s)\n"
      (List.length entries)
      (if List.length entries = 1 then "y" else "ies")
      path
      (Mcf_obs.History.current_rev ()));
  (* Smoke gates for the measurement cache: a warm tuner run must simulate
     strictly fewer candidates than the cold run did, and hit the cache on
     more than 90% of its lookups. *)
  let measure_gate () =
    match measure with
    | Some (_, _, warm_misses, cold_misses, warm_hit_rate) when smoke ->
      if warm_misses >= cold_misses then begin
        Printf.eprintf
          "FAIL: warm tune simulated %d candidates, not strictly below the \
           cold run's %d\n%!"
          warm_misses cold_misses;
        exit 1
      end;
      if warm_hit_rate <= 0.9 then begin
        Printf.eprintf
          "FAIL: warm cache hit rate %.1f%% (threshold 90%%)\n%!"
          (100.0 *. warm_hit_rate);
        exit 1
      end
    | _ -> ()
  in
  if estimate_only then Printf.printf "\nwrote %s (estimate section only)\n" out
  else if measure_only then begin
    Printf.printf "\nwrote %s (measure section only)\n" out;
    measure_gate ()
  end
  else begin
    Printf.printf "\nwrote %s (largest workload %s: %.2fx enumeration \
                   speedup at %d jobs on %d core(s))\n"
      out largest largest_speedup
      (List.fold_left max 1 jobs_list)
      (Domain.recommended_domain_count ());
    (* Smoke gate for the pool regression: enumeration at the requested
       --jobs must not lose more than noise to the sequential run now
       that the global pool is clamped to the hardware. *)
    if smoke && largest_speedup < 0.9 then begin
      Printf.eprintf
        "FAIL: enumeration at %d jobs is %.2fx the 1-job throughput \
         (threshold 0.9)\n%!"
        (List.fold_left max 1 jobs_list)
        largest_speedup;
      exit 1
    end;
    (* Smoke gates for the streaming pipeline: the deep chain must cover a
       much larger post-rule-3 space than the largest Table workload, and
       materializing that space must cost visibly more heap than streaming
       it did (the monotone peak makes both directions conservative). *)
    (match enumeration with
    | Some (_, _, points_ratio, heap_saving) when smoke ->
      if points_ratio < 10.0 then begin
        Printf.eprintf
          "FAIL: deep-chain space is only %.1fx the baseline's (threshold \
           10x)\n%!"
          points_ratio;
        exit 1
      end;
      if heap_saving < 1.5 then begin
        Printf.eprintf
          "FAIL: materializing the deep chain peaked at only %.2fx the \
           streamed high-water mark (threshold 1.5x)\n%!"
          heap_saving;
        exit 1
      end
    | _ -> ());
    measure_gate ()
  end

(* --- serve-throughput benchmark (--mode serve) --------------------------- *)

(* Drives a real [Mcf_serve.Server] over its HTTP socket with concurrent
   client threads: a cold phase establishing the schedule cache (with
   duplicate submissions that should coalesce onto running sessions),
   then a warm phase replaying the same requests, which must be answered
   from the cache.  Reports requests/s and p50/p99 round-trip latency
   per phase, plus the warm-phase cache hit rate that `make
   bench-serve-smoke` gates on. *)

let serve_request_body ~m =
  Mcf_util.Json.to_string
    (Mcf_util.Json.Obj
       [ ( "chain",
           Mcf_util.Json.Obj
             [ ("kind", Mcf_util.Json.Str "gemm");
               ("m", Mcf_util.Json.num_of_int m);
               ("n", Mcf_util.Json.num_of_int 64);
               ("k", Mcf_util.Json.num_of_int 32);
               ("h", Mcf_util.Json.num_of_int 32);
             ] );
         ("device", Mcf_util.Json.Str "A100");
       ])

(* POST one tune request and poll it to completion; returns the wall
   latency, the submit-time source and the final job document. *)
let serve_round_trip url body =
  let t0 = Unix.gettimeofday () in
  match Mcf_util.Httpd.Client.post (url ^ "/tune") ~body with
  | Error e ->
    Printf.eprintf "serve bench: POST /tune: %s\n%!" e;
    exit 1
  | Ok (code, resp) when code <> 200 && code <> 202 ->
    Printf.eprintf "serve bench: POST /tune: HTTP %d %s\n%!" code resp;
    exit 1
  | Ok (_, resp) -> (
    match Mcf_util.Json.parse (String.trim resp) with
    | Error e ->
      Printf.eprintf "serve bench: bad /tune response: %s\n%!" e;
      exit 1
    | Ok job ->
      let jstr path j =
        match
          List.fold_left
            (fun acc k ->
              match acc with
              | Some j -> Mcf_util.Json.member k j
              | None -> None)
            (Some j) path
        with
        | Some (Mcf_util.Json.Str s) -> s
        | _ -> ""
      in
      let jid = jstr [ "job" ] job in
      let source = jstr [ "source" ] job in
      let rec poll job =
        match jstr [ "state" ] job with
        | "done" -> (Unix.gettimeofday () -. t0, source, job)
        | "failed" ->
          Printf.eprintf "serve bench: job %s failed: %s\n%!" jid
            (jstr [ "error" ] job);
          exit 1
        | _ -> (
          Thread.delay 0.01;
          match Mcf_util.Httpd.Client.get (url ^ "/jobs/" ^ jid) with
          | Error e ->
            Printf.eprintf "serve bench: GET /jobs/%s: %s\n%!" jid e;
            exit 1
          | Ok (200, body) -> (
            match Mcf_util.Json.parse (String.trim body) with
            | Ok job -> poll job
            | Error e ->
              Printf.eprintf "serve bench: bad job document: %s\n%!" e;
              exit 1)
          | Ok (code, body) ->
            Printf.eprintf "serve bench: GET /jobs/%s: HTTP %d %s\n%!" jid
              code body;
            exit 1)
      in
      poll job)

(* Run [bodies] through [clients] threads; returns per-request
   (latency, source) in completion order and the phase wall time. *)
let serve_phase url ~clients bodies =
  let results = ref [] in
  let lock = Mutex.create () in
  let next = Atomic.make 0 in
  let bodies = Array.of_list bodies in
  let t0 = Unix.gettimeofday () in
  let worker () =
    let rec go () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length bodies then begin
        let r = serve_round_trip url bodies.(i) in
        Mutex.lock lock;
        results := r :: !results;
        Mutex.unlock lock;
        go ()
      end
    in
    go ()
  in
  let threads = List.init clients (fun _ -> Thread.create worker ()) in
  List.iter Thread.join threads;
  (!results, Unix.gettimeofday () -. t0)

let serve_phase_json name (results, wall) =
  let lats = List.map (fun (l, _, _) -> l) results in
  let n = List.length results in
  let count src =
    List.length (List.filter (fun (_, s, _) -> s = src) results)
  in
  let rps = if wall > 0.0 then float_of_int n /. wall else 0.0 in
  let open Mcf_util.Json in
  let num = num_of_int in
  ( Obj
      [ ("phase", Str name);
        ("requests", num n);
        ("wall_s", Num wall);
        ("requests_per_s", Num rps);
        ("latency_p50_s", Num (Mcf_util.Stats.percentile 50.0 lats));
        ("latency_p99_s", Num (Mcf_util.Stats.percentile 99.0 lats));
        ("tuned", num (count "tuned"));
        ("coalesced", num (count "coalesced"));
        ("cached", num (count "cached"));
      ],
    rps,
    Mcf_util.Stats.percentile 50.0 lats,
    Mcf_util.Stats.percentile 99.0 lats,
    float_of_int (count "cached") /. float_of_int (max 1 n) )

let run_serve_bench ~jobs ~smoke ~history ~out =
  Mcf_util.Pool.set_jobs jobs;
  let spec = Mcf_gpu.Spec.a100 in
  let distinct = if smoke then 4 else 8 in
  let dups = 2 in
  let clients = 4 in
  let workers = 2 in
  let config = { Mcf_serve.Server.default_config with workers } in
  match Mcf_serve.Server.start ~config () with
  | Error e ->
    Printf.eprintf "serve bench: %s\n%!" e;
    exit 1
  | Ok t ->
    let url = Mcf_serve.Server.url t in
    let ms = List.init distinct (fun i -> 96 + (16 * i)) in
    let bodies = List.map (fun m -> serve_request_body ~m) ms in
    (* Cold: every distinct chain [dups] times, interleaved so duplicate
       submissions land while their session is still in flight. *)
    let cold_bodies = List.concat (List.init dups (fun _ -> bodies)) in
    let cold = serve_phase url ~clients cold_bodies in
    let warm = serve_phase url ~clients cold_bodies in
    (* Bit-identity spot check: the served schedule for the first chain
       must equal a direct one-shot tune of the same request. *)
    let direct_chain =
      Mcf_ir.Chain.gemm_chain ~m:(List.hd ms) ~n:64 ~k:32 ~h:32 ()
    in
    let served_cand, served_time =
      let _, _, job = serve_round_trip url (List.hd bodies) in
      ( (match
           Option.bind
             (Mcf_util.Json.member "result" job)
             (Mcf_util.Json.member "candidate")
         with
        | Some (Mcf_util.Json.Str s) -> s
        | _ -> ""),
        match
          Option.bind
            (Mcf_util.Json.member "result" job)
            (Mcf_util.Json.member "kernel_time_s")
        with
        | Some (Mcf_util.Json.Num v) -> v
        | _ -> nan )
    in
    (match Mcf_search.Tuner.tune spec direct_chain with
    | Error _ ->
      Printf.eprintf "serve bench: direct tune found no candidate\n%!";
      exit 1
    | Ok o ->
      let direct_cand = Mcf_ir.Candidate.serialize o.best.cand in
      if direct_cand <> served_cand || o.kernel_time_s <> served_time then begin
        Printf.eprintf
          "FAIL: served schedule differs from one-shot tune (%s at %.17g vs \
           %s at %.17g)\n%!"
          served_cand served_time direct_cand o.kernel_time_s;
        exit 1
      end);
    Mcf_serve.Server.stop t;
    let cold_json, cold_rps, _, _, _ = serve_phase_json "cold" cold in
    let warm_json, warm_rps, warm_p50, warm_p99, warm_hit_rate =
      serve_phase_json "warm" warm
    in
    let doc =
      let open Mcf_util.Json in
      let num = num_of_int in
      Obj
        [ ("bench", Str "serve");
          ("device", Str spec.name);
          ("smoke", Bool smoke);
          ("jobs", num jobs);
          ("workers", num workers);
          ("clients", num clients);
          ("distinct_chains", num distinct);
          ("duplicates_per_chain", num dups);
          ("cold", cold_json);
          ("warm", warm_json);
          ("warm_hit_rate", Num warm_hit_rate);
        ]
    in
    let oc = open_out out in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (Mcf_util.Json.to_string doc);
        output_char oc '\n');
    (match history with
    | None -> ()
    | Some path ->
      let entry =
        { Mcf_obs.History.time = Unix.gettimeofday ();
          rev = Mcf_obs.History.current_rev ();
          device = spec.name;
          workload = (if smoke then "smoke-serve" else "serve");
          metrics =
            [ ("requests_per_s", warm_rps);
              ("latency_p50_s", warm_p50);
              ("latency_p99_s", warm_p99);
            ] }
      in
      Mcf_obs.History.append ~path entry;
      Printf.printf "appended 1 history entry to %s (rev %s)\n" path
        (Mcf_obs.History.current_rev ()));
    Printf.printf
      "\nwrote %s (cold %.1f req/s, warm %.1f req/s, warm hit rate %.0f%%)\n"
      out cold_rps warm_rps (100.0 *. warm_hit_rate);
    if smoke && warm_hit_rate <= 0.9 then begin
      Printf.eprintf
        "FAIL: warm-phase cache hit rate %.1f%% (threshold 90%%)\n%!"
        (100.0 *. warm_hit_rate);
      exit 1
    end

let write_trace path =
  Mcf_obs.Trace.stop ();
  let doc = Mcf_util.Json.to_string (Mcf_obs.Trace.to_chrome_json ()) in
  match Mcf_util.Json.parse doc with
  | Error e ->
    Printf.eprintf "trace: serialization produced invalid JSON (%s)\n" e;
    exit 1
  | Ok _ -> (
    match open_out path with
    | exception Sys_error e ->
      Printf.eprintf "trace: cannot write %s: %s\n" path e;
      exit 1
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc doc;
          output_char oc '\n');
      Printf.eprintf "trace: wrote %s (%d spans)\n%!" path
        (List.length (Mcf_obs.Trace.events ())))

let write_record path =
  Mcf_obs.Recorder.stop ();
  match Mcf_obs.Recorder.write path with
  | Error e ->
    Printf.eprintf "record: %s\n" e;
    exit 1
  | Ok n -> Printf.eprintf "record: wrote %s (%d events)\n%!" path n

let write_metrics path =
  Mcf_obs.Poolstats.sync ();
  let doc = Mcf_util.Json.to_string (Mcf_obs.Metrics.to_json ()) in
  match open_out path with
  | exception Sys_error e ->
    Printf.eprintf "metrics: cannot write %s: %s\n" path e;
    exit 1
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc doc;
        output_char oc '\n')

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let only = ref None in
  let quick = ref false in
  let micro = ref true in
  let trace = ref None in
  let record = ref None in
  let metrics = ref None in
  let profile = ref false in
  let mode = ref `Experiments in
  let out = ref "BENCH_search.json" in
  let jobs = ref (max 4 (Mcf_util.Pool.default_jobs ())) in
  let smoke = ref false in
  let estimate_only = ref false in
  let measure_only = ref false in
  let sample_ms = ref None in
  let history = ref None in
  let listen = ref None in
  let log_format = ref Mcf_obs.Logfmt.Text in
  let verbose = ref 0 in
  let rec parse = function
    | [] -> ()
    | "--list" :: _ ->
      List.iter
        (fun (e : Mcf_experiments.Registry.experiment) ->
          Printf.printf "%-10s %s\n" e.id e.description)
        Mcf_experiments.Registry.all;
      exit 0
    | "--only" :: spec :: rest ->
      only := Some (String.split_on_char ',' spec);
      parse rest
    | "--quick" :: rest ->
      quick := true;
      parse rest
    | "--no-micro" :: rest ->
      micro := false;
      parse rest
    | "--trace" :: path :: rest ->
      trace := Some path;
      parse rest
    | "--record" :: path :: rest ->
      record := Some path;
      parse rest
    | "--metrics" :: path :: rest ->
      metrics := Some path;
      parse rest
    | "--profile" :: rest ->
      profile := true;
      parse rest
    | "--mode" :: "search" :: rest ->
      mode := `Search;
      parse rest
    | "--mode" :: "serve" :: rest ->
      mode := `Serve;
      parse rest
    | "--mode" :: m :: _ ->
      Printf.printf "unknown mode %S (available: search, serve)\n" m;
      exit 1
    | "--out" :: path :: rest ->
      out := path;
      parse rest
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some v when v >= 1 ->
        jobs := v;
        parse rest
      | Some _ | None ->
        Printf.printf "bad --jobs value %S\n" n;
        exit 1)
    | "--smoke" :: rest ->
      smoke := true;
      parse rest
    | "--estimate-only" :: rest ->
      estimate_only := true;
      parse rest
    | "--measure-only" :: rest ->
      measure_only := true;
      parse rest
    | "--sample-ms" :: ms :: rest -> (
      match float_of_string_opt ms with
      | Some v when v > 0.0 ->
        sample_ms := Some v;
        parse rest
      | Some _ | None ->
        Printf.printf "bad --sample-ms value %S\n" ms;
        exit 1)
    | "--history" :: path :: rest ->
      history := Some path;
      parse rest
    | "--listen" :: addr :: rest ->
      listen := Some addr;
      parse rest
    | "--log-format" :: fmt :: rest -> (
      match Mcf_obs.Logfmt.format_of_string fmt with
      | Ok f ->
        log_format := f;
        parse rest
      | Error e ->
        Printf.printf "%s\n" e;
        exit 1)
    | "-v" :: rest ->
      incr verbose;
      parse rest
    | arg :: _ ->
      Printf.printf "unknown argument %S (try --list)\n" arg;
      exit 1
  in
  parse args;
  (* Same reporter/level setup as the CLI (Mcf_obs.Logfmt): the global
     default covers per-library sources registered later. *)
  Mcf_obs.Logfmt.setup ~format:!log_format
    (match !verbose with 0 -> None | 1 -> Some Logs.Info | _ -> Some Logs.Debug);
  if !quick then Mcf_baselines.Ansor.trials := 200;
  if !profile then Mcf_obs.Profile.enable ();
  if !trace <> None then Mcf_obs.Trace.start ();
  if !record <> None then Mcf_obs.Recorder.start ();
  (match !sample_ms with
  | Some ms -> Mcf_obs.Resource.start ~period_s:(ms *. 1e-3)
  | None -> ());
  let server =
    match !listen with
    | None -> None
    | Some addr -> (
      match Mcf_obs.Export.serve ~listen:addr with
      | Error e ->
        Printf.eprintf "--listen: %s\n" e;
        exit 1
      | Ok t ->
        Printf.eprintf
          "telemetry: listening on %s/ (metrics, status, healthz)\n%!"
          (Mcf_util.Httpd.url t);
        Some t)
  in
  let t0 = Unix.gettimeofday () in
  (match !mode with
  | `Search ->
    run_search_bench ~jobs:!jobs ~smoke:!smoke ~estimate_only:!estimate_only
      ~measure_only:!measure_only ~history:!history ~out:!out
  | `Serve ->
    let out =
      if !out = "BENCH_search.json" then "BENCH_serve.json" else !out
    in
    run_serve_bench ~jobs:!jobs ~smoke:!smoke ~history:!history ~out
  | `Experiments ->
    let ids =
      match !only with
      | Some ids -> ids
      | None -> Mcf_experiments.Registry.ids ()
    in
    run_experiments ids;
    if !micro && !only = None then run_micro ());
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  Option.iter Mcf_obs.Export.shutdown server;
  (* Sampler down before the trace flushes so its closing counter events
     make it into the file. *)
  Mcf_obs.Resource.stop ();
  (match !trace with Some path -> write_trace path | None -> ());
  (match !record with Some path -> write_record path | None -> ());
  (match !metrics with Some path -> write_metrics path | None -> ());
  if !profile then begin
    Mcf_obs.Poolstats.sync ();
    Printf.printf "\n# per-phase wall-clock\n";
    print_string (Mcf_obs.Profile.render ());
    Printf.printf "\n# metrics\n";
    print_string (Mcf_obs.Metrics.render_table ())
  end
