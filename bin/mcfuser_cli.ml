(* mcfuser — command-line front door.

   Sub-commands:
     tune        tune one workload and print the winning schedule
     chain       tune a custom operator chain from dimensions
     schedule    print pseudo-code + Triton source + TIR for a workload
     dot         Graphviz rendering of the winning schedule's DAG (Fig. 5)
     explain     simulator cost breakdown of the winning kernel
     compare     run every backend on one workload
     partition   show the SV-B graph partitioner on a BERT layer
     experiment  run a paper experiment by id (fig2, fig8a, ..., ablation)
     workloads   list the built-in workloads
     verify      check a tuned schedule numerically against the reference
     fuzz        differential fuzzing of the whole pipeline (random chains)
     report      render (or --diff) a search flight recording
     perf        cross-run performance trends and regression gate

   Every sub-command accepts the observability flags:
     --trace FILE    write a Chrome trace_event JSON of the run (open in
                     chrome://tracing or https://ui.perfetto.dev)
     --record FILE   write the search flight recording (JSONL; render it
                     with `mcfuser report`)
     --metrics FILE  dump the full metrics registry as JSON at exit
     --profile       print a per-phase wall-clock table and a metrics dump
                     after the sub-command's normal output
     --sample-ms MS  sample GC/pool resources into rsrc.* gauges and trace
                     counter events every MS milliseconds
     --progress      live status line on stderr (tty only) *)

open Cmdliner

let spec_of_name name =
  match Mcf_gpu.Spec.by_name name with
  | Some s -> Ok s
  | None ->
    Error
      (`Msg
        (Printf.sprintf "unknown device %S (available: %s)" name
           (String.concat ", "
              (List.map (fun (s : Mcf_gpu.Spec.t) -> s.name) Mcf_gpu.Spec.all))))

(* Accepts Table II/III names (G4, S2), the deep-chain names (D5-D8),
   network names (bert-base, vit-large) and mha-<x> as an alias for the
   Bert-<x> attention shape. *)
let chain_of_workload name =
  let canon = String.lowercase_ascii name in
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  let gemm =
    List.find_opt
      (fun (g : Mcf_workloads.Configs.gemm_config) ->
        String.lowercase_ascii g.gname = canon)
      Mcf_workloads.Configs.gemm_chains
  in
  match gemm with
  | Some g -> Ok (Mcf_workloads.Configs.gemm_chain g)
  | None -> (
    let attention =
      List.find_opt
        (fun (s : Mcf_workloads.Configs.attention_config) ->
          let network = String.lowercase_ascii s.network in
          String.lowercase_ascii s.sname = canon
          || network = canon
          ||
          match strip_prefix "mha-" canon with
          | Some suffix -> network = "bert-" ^ suffix
          | None -> false)
        Mcf_workloads.Configs.attentions
    in
    match attention with
    | Some s -> Ok (Mcf_workloads.Configs.attention s)
    | None -> (
      match Mcf_workloads.Configs.find_deep name with
      | Some d -> Ok (Mcf_workloads.Configs.deep_chain d)
      | None ->
        Error
          (`Msg
            (Printf.sprintf
               "unknown workload %S (G1-G12, S1-S9, D5-D8, a network name \
                like bert-base, or mha-small/base/large; see `mcfuser \
                workloads`)"
               name))))

(* --- common flags: verbosity and observability ---------------------------- *)

let verbose_arg =
  let doc = "Log tuning progress (-v: per-tune summaries, -vv: per-generation)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let log_format_conv =
  let parse s =
    match Mcf_obs.Logfmt.format_of_string s with
    | Ok f -> Ok f
    | Error e -> Error (`Msg e)
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with Mcf_obs.Logfmt.Text -> "text" | Mcf_obs.Logfmt.Json -> "json")
  in
  Arg.conv (parse, print)

let log_format_arg =
  let doc =
    "Log line format: $(b,text) (timestamped, source-tagged lines) or \
     $(b,json) (one JSON object per line, machine-parseable)."
  in
  Arg.(value & opt log_format_conv Mcf_obs.Logfmt.Text
       & info [ "log-format" ] ~docv:"FMT" ~doc)

let setup_logs verbose log_format =
  let level =
    match List.length verbose with
    | 0 -> None
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug
  in
  (* [Logs.set_level] (inside [Logfmt.setup]) applies to every existing
     source and becomes the default for sources registered later, so no
     per-source loop is needed — the old [Logs.Src.list] iteration only
     caught sources that already existed at startup and silently missed
     every per-library source registered after it. *)
  Mcf_obs.Logfmt.setup ~format:log_format level

(* Evaluated for effect before every sub-command body; run functions
   take the resulting [()] as their first argument. *)
let setup_term = Term.(const setup_logs $ verbose_arg $ log_format_arg)

type obs = {
  trace : string option;
  record : string option;
  metrics : string option;
  profile : bool;
  jobs : int option;
  sample_ms : float option;
  progress : bool;
  listen : string option;
  listen_selfcheck : bool;
}

(* [~listener:false] drops the --listen/--listen-selfcheck flags: the
   serve daemon owns its listener and reuses the names. *)
let obs_term_gen ~listener =
  let trace_arg =
    let doc =
      "Write a Chrome trace_event JSON of this run to $(docv) (load it in \
       chrome://tracing or Perfetto)."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let record_arg =
    let doc =
      "Write the search flight recording to $(docv) (JSONL, one event per \
       line; render or diff it with $(b,mcfuser report)).  Recording never \
       changes tuner results."
    in
    Arg.(value & opt (some string) None & info [ "record" ] ~docv:"FILE" ~doc)
  in
  let metrics_arg =
    let doc =
      "Dump the full metrics registry (counters, gauges, histograms with \
       p50/p90/p99) as JSON to $(docv) at exit."
    in
    Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)
  in
  let profile_arg =
    let doc =
      "After the sub-command's output, print the per-phase wall-clock table \
       and a dump of all pipeline metrics."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let jobs_arg =
    let doc =
      "Size of the worker-domain pool used for parallel enumeration and \
       estimation (default: $(b,MCFUSER_JOBS) or the machine's core count, \
       capped at 8).  Results are identical for any value."
    in
    Arg.(value & opt (some int) None & info [ "j"; "jobs" ] ~docv:"N" ~doc)
  in
  let sample_ms_arg =
    let doc =
      "Sample runtime resources (GC heap, allocation rate, domain-pool \
       utilization) every $(docv) milliseconds into [rsrc.*] gauges and, \
       with $(b,--trace), Chrome counter-event timelines.  Off by default; \
       sampling never changes tuner results."
    in
    Arg.(value & opt (some float) None
         & info [ "sample-ms" ] ~docv:"MS" ~doc)
  in
  let progress_arg =
    let doc =
      "Live status line on stderr (current phase, generation progress, \
       ETA).  Automatically suppressed when stdout is not a terminal."
    in
    Arg.(value & flag & info [ "progress" ] ~doc)
  in
  let listen_arg =
    let doc =
      "Serve live telemetry on $(docv) (e.g. $(b,127.0.0.1:9464); port 0 \
       picks a free one) for the duration of the run: $(b,/metrics) \
       (Prometheus text exposition), $(b,/status) (JSON phase/funnel \
       snapshot), $(b,/healthz), $(b,/readyz).  Off by default; the \
       listener is strictly observational, so tuner results are \
       bit-identical with it on or off."
    in
    Arg.(value & opt (some string) None
         & info [ "listen" ] ~docv:"ADDR:PORT" ~doc)
  in
  let listen_selfcheck_arg =
    let doc =
      "With $(b,--listen): after the run, fetch $(b,/healthz), \
       $(b,/status) and $(b,/metrics) from the live listener over its \
       real socket, validate them (JSON well-formedness, Prometheus \
       exposition structure) and fail the command if anything is off.  \
       Used by $(b,make telemetry-smoke)."
    in
    Arg.(value & flag & info [ "listen-selfcheck" ] ~doc)
  in
  let listen_arg =
    if listener then listen_arg else Term.const None
  and listen_selfcheck_arg =
    if listener then listen_selfcheck_arg else Term.const false
  in
  Term.(
    const
      (fun trace record metrics profile jobs sample_ms progress listen
           listen_selfcheck ->
        { trace; record; metrics; profile; jobs; sample_ms; progress; listen;
          listen_selfcheck })
    $ trace_arg $ record_arg $ metrics_arg $ profile_arg $ jobs_arg
    $ sample_ms_arg $ progress_arg $ listen_arg $ listen_selfcheck_arg)

let obs_term = obs_term_gen ~listener:true

let write_trace path =
  Mcf_obs.Trace.stop ();
  let doc = Mcf_util.Json.to_string (Mcf_obs.Trace.to_chrome_json ()) in
  (* Self-check: parse the document back before writing, so --trace can
     never leave an unloadable file behind. *)
  match Mcf_util.Json.parse doc with
  | Error e ->
    Error
      (`Msg
        (Printf.sprintf "trace serialization produced invalid JSON (%s)" e))
  | Ok _ -> (
    match open_out path with
    | exception Sys_error e -> Error (`Msg ("cannot write trace: " ^ e))
    | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () ->
          output_string oc doc;
          output_char oc '\n');
      Printf.eprintf "trace: wrote %s (%d spans)\n%!" path
        (List.length (Mcf_obs.Trace.events ()));
      Ok ())

let write_record path =
  Mcf_obs.Recorder.stop ();
  match Mcf_obs.Recorder.write path with
  | Error e -> Error (`Msg e)
  | Ok n ->
    Printf.eprintf "record: wrote %s (%d events)\n%!" path n;
    Ok ()

let write_metrics path =
  Mcf_obs.Poolstats.sync ();
  let doc = Mcf_util.Json.to_string (Mcf_obs.Metrics.to_json ()) in
  match open_out path with
  | exception Sys_error e -> Error (`Msg ("cannot write metrics: " ^ e))
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc doc;
        output_char oc '\n');
    Ok ()

let with_obs obs f =
  Option.iter Mcf_util.Pool.set_jobs obs.jobs;
  if obs.profile then Mcf_obs.Profile.enable ();
  if obs.trace <> None then Mcf_obs.Trace.start ();
  if obs.record <> None then Mcf_obs.Recorder.start ();
  (match obs.sample_ms with
  | Some ms -> Mcf_obs.Resource.start ~period_s:(ms *. 1e-3)
  | None -> ());
  if obs.progress && Unix.isatty Unix.stdout then Mcf_obs.Progress.enable ();
  let server =
    match obs.listen with
    | None -> Ok None
    | Some listen -> (
      match Mcf_obs.Export.serve ~listen with
      | Error e -> Error (`Msg ("--listen: " ^ e))
      | Ok t ->
        Printf.eprintf
          "telemetry: listening on %s/ (metrics, status, healthz)\n%!"
          (Mcf_util.Httpd.url t);
        Ok (Some t))
  in
  match server with
  | Error _ as e ->
    Mcf_obs.Progress.disable ();
    Mcf_obs.Resource.stop ();
    e
  | Ok server ->
    let result = f () in
    (* Probe the live listener before tearing it down: the selfcheck
       exercises the same socket path an external curl would. *)
    let selfcheck_result =
      match server with
      | Some t when obs.listen_selfcheck -> (
        match Mcf_obs.Export.selfcheck t with
        | Ok () ->
          Printf.eprintf "telemetry: selfcheck ok (metrics, status, healthz)\n%!";
          Ok ()
        | Error e -> Error (`Msg ("telemetry selfcheck: " ^ e)))
      | Some _ | None -> Ok ()
    in
    Option.iter Mcf_obs.Export.shutdown server;
    Mcf_obs.Progress.disable ();
    (* Stop the sampler before the trace flushes: the closing sample still
       lands in the counter-event buffer. *)
    Mcf_obs.Resource.stop ();
    let trace_result =
      match obs.trace with None -> Ok () | Some path -> write_trace path
    in
    let record_result =
      match obs.record with None -> Ok () | Some path -> write_record path
    in
    let metrics_result =
      match obs.metrics with None -> Ok () | Some path -> write_metrics path
    in
    if obs.profile then begin
      Mcf_obs.Poolstats.sync ();
      Printf.printf "\n# per-phase wall-clock\n";
      print_string (Mcf_obs.Profile.render ());
      Printf.printf "\n# metrics\n";
      print_string (Mcf_obs.Metrics.render_table ())
    end;
    (match (result, trace_result, record_result, metrics_result) with
    | (Error _ as e), _, _, _ -> e
    | Ok (), (Error _ as e), _, _ -> e
    | Ok (), Ok (), (Error _ as e), _ -> e
    | Ok (), Ok (), Ok (), (Error _ as e) -> e
    | Ok (), Ok (), Ok (), Ok () -> selfcheck_result)

let with_setup device workload f =
  match spec_of_name device with
  | Error e -> Error e
  | Ok spec -> (
    match chain_of_workload workload with
    | Error e -> Error e
    | Ok chain -> f spec chain)

let device_arg =
  let doc = "Target device model (A100 or RTX3080)." in
  Arg.(value & opt string "A100" & info [ "d"; "device" ] ~docv:"DEVICE" ~doc)

let workload_arg =
  let doc = "Workload name from Tables II/III, e.g. G4 or S2." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"WORKLOAD" ~doc)

(* --- tune ---------------------------------------------------------------- *)

let phase_breakdown (o : Mcf_search.Tuner.outcome) =
  let strip name =
    match String.index_opt name '.' with
    | Some i -> String.sub name (i + 1) (String.length name - i - 1)
    | None -> name
  in
  let timed = List.fold_left (fun acc (_, d) -> acc +. d) 0.0 o.phases in
  let cells =
    List.map
      (fun (name, d) ->
        Printf.sprintf "%s %s" (strip name) (Mcf_util.Table.fmt_time_s d))
      o.phases
    @ [ Printf.sprintf "other %s"
          (Mcf_util.Table.fmt_time_s (Float.max 0.0 (o.tuning_wall_s -. timed))) ]
  in
  String.concat " | " cells

let tune_cmd =
  let cache_arg =
    let doc = "Schedule-cache file: reuse a stored schedule, or tune and store." in
    Arg.(value & opt (some string) None & info [ "cache" ] ~docv:"FILE" ~doc)
  in
  let reservoir_arg =
    let doc =
      "Keep only the $(docv) best candidates (by analytical estimate) \
       resident during enumeration.  Bounds peak memory on deep chains \
       (D5-D8); unset keeps every valid candidate, the paper's behaviour."
    in
    Arg.(value & opt (some int) None & info [ "reservoir" ] ~docv:"N" ~doc)
  in
  let measure_cache_arg =
    let doc =
      "Measurement-cache file (JSONL): warm-start per-candidate \
       measurements from $(docv) and persist the union back on exit.  \
       Keys are content-addressed (device fingerprint + chain \
       fingerprint + canonical candidate), and hits skip the simulator \
       but charge the virtual clock identically, so tuner results and \
       virtual-time accounting are bit-identical to an uncached run."
    in
    Arg.(
      value
      & opt (some string) None
      & info [ "measure-cache" ] ~docv:"FILE" ~doc)
  in
  let measure_jobs_arg =
    let doc =
      "Measurement parallelism: 1 pins each generation's measurement \
       batch to the calling domain; any other value (the default) runs \
       batches on the shared pool sized by $(b,--jobs).  Results are \
       bit-identical either way."
    in
    Arg.(value & opt int 0 & info [ "measure-jobs" ] ~docv:"N" ~doc)
  in
  let run () obs cache reservoir measure_cache measure_jobs device
      workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            match cache with
            | Some cache_file -> (
              match
                Mcf_search.Schedule_cache.tune_with_cache ~cache_file spec chain
              with
              | Ok (fresh, entry) ->
                Printf.printf "%s: %s at %s (%s)\n" workload
                  (Mcf_ir.Candidate.to_string entry.ecand)
                  (Mcf_util.Table.fmt_time_s entry.etime_s)
                  (if fresh = None then "cache hit" else "tuned and cached");
                Ok ()
              | Error Mcf_search.Tuner.No_viable_candidate ->
                Error (`Msg "no viable candidate"))
            | None -> (
              let mcache =
                Option.map
                  (fun path ->
                    let c = Mcf_search.Measure.cache_create () in
                    ignore (Mcf_search.Measure.cache_load c path);
                    (c, path))
                  measure_cache
              in
              let measure =
                if mcache = None && measure_jobs <> 1 then None
                else
                  Some
                    (Mcf_search.Measure.create
                       ?cache:(Option.map fst mcache)
                       ~sequential:(measure_jobs = 1) spec)
              in
              let hits0 = Mcf_obs.Metrics.counter_value "measure.cache.hits" in
              let miss0 =
                Mcf_obs.Metrics.counter_value "measure.cache.misses"
              in
              let result = Mcf_search.Tuner.tune ?reservoir ?measure spec chain in
              (* Persist whatever was measured, even on failure: those
                 simulations are valid warm-start material either way. *)
              Option.iter
                (fun (c, path) ->
                  ignore (Mcf_search.Measure.cache_save c path))
                mcache;
              match result with
              | Error Mcf_search.Tuner.No_viable_candidate ->
                Error (`Msg "no viable candidate: the chain cannot be fused here")
              | Ok o ->
                Printf.printf "workload  %s on %s\n" workload spec.name;
                Printf.printf "best      %s\n"
                  (Mcf_ir.Candidate.to_string o.best.cand);
                Printf.printf "kernel    %s\n"
                  (Mcf_util.Table.fmt_time_s o.kernel_time_s);
                Printf.printf "tuning    %s virtual (%.2fs wall), %d measured, \
                               %d generations\n"
                  (Mcf_util.Table.fmt_time_s o.tuning_virtual_s)
                  o.tuning_wall_s o.search_stats.measured
                  o.search_stats.generations;
                Printf.printf "phases    %s\n" (phase_breakdown o);
                Option.iter
                  (fun (c, path) ->
                    Printf.printf
                      "mcache    %s: %d entries (%d hits, %d misses this \
                       run)\n"
                      path
                      (Mcf_search.Measure.cache_size c)
                      (Mcf_obs.Metrics.counter_value "measure.cache.hits"
                      - hits0)
                      (Mcf_obs.Metrics.counter_value "measure.cache.misses"
                      - miss0))
                  mcache;
                Printf.printf "space     %d candidates after pruning (raw %.3g)\n\n"
                  o.funnel.candidates_valid o.funnel.candidates_raw;
                print_string (Mcf_search.Tuner.pseudo_code o);
                Ok ())))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ cache_arg
                       $ reservoir_arg $ measure_cache_arg $ measure_jobs_arg
                       $ device_arg $ workload_arg))
  in
  Cmd.v (Cmd.info "tune" ~doc:"Tune one workload and print the schedule") term

(* --- chain ---------------------------------------------------------------- *)

let chain_cmd =
  let dim name doc = Arg.(required & opt (some int) None & info [ name ] ~doc) in
  let kind_arg =
    let doc = "Chain kind: gemm, attention, mlp or gemm3." in
    Arg.(value & opt string "gemm" & info [ "kind" ] ~docv:"KIND" ~doc)
  in
  let batch_arg =
    Arg.(value & opt int 1 & info [ "batch" ] ~doc:"Batch / head count.")
  in
  let p_arg =
    Arg.(value & opt int 64 & info [ "p" ] ~doc:"Third output dim (gemm3 only).")
  in
  let run () obs device kind batch m n k h p =
    with_obs obs (fun () ->
        match spec_of_name device with
        | Error e -> Error e
        | Ok spec -> (
          let chain =
            match kind with
            | "gemm" -> Ok (Mcf_ir.Chain.gemm_chain ~batch ~m ~n ~k ~h ())
            | "attention" ->
              Ok (Mcf_ir.Chain.attention ~heads:batch ~m ~n ~k ~h ())
            | "mlp" -> Ok (Mcf_ir.Chain.mlp_chain ~batch ~m ~n ~k ~h ())
            | "gemm3" -> Ok (Mcf_ir.Chain.gemm_chain3 ~batch ~m ~n ~k ~h ~p ())
            | other -> Error (`Msg (Printf.sprintf "unknown chain kind %S" other))
          in
          match chain with
          | Error e -> Error e
          | Ok chain -> (
            match Mcf_search.Tuner.tune spec chain with
            | Error Mcf_search.Tuner.No_viable_candidate ->
              Error (`Msg "no viable candidate: the chain cannot be fused here")
            | Ok o ->
              Printf.printf "best  %s at %s (%d measured, tuning %s virtual)\n"
                (Mcf_ir.Candidate.to_string o.best.cand)
                (Mcf_util.Table.fmt_time_s o.kernel_time_s)
                o.search_stats.measured
                (Mcf_util.Table.fmt_time_s o.tuning_virtual_s);
              Printf.printf "phases %s\n\n" (phase_breakdown o);
              print_string (Mcf_search.Tuner.pseudo_code o);
              Ok ())))
  in
  let term =
    Term.(
      term_result
        (const run $ setup_term $ obs_term $ device_arg $ kind_arg $ batch_arg
        $ dim "m" "M dimension." $ dim "n" "N dimension."
        $ dim "k" "K dimension." $ dim "h" "H dimension." $ p_arg))
  in
  Cmd.v
    (Cmd.info "chain" ~doc:"Tune a custom operator chain from dimensions")
    term

(* --- dot ------------------------------------------------------------------ *)

let dot_cmd =
  let run () obs device workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            match Mcf_search.Tuner.tune spec chain with
            | Error Mcf_search.Tuner.No_viable_candidate ->
              Error (`Msg "no viable candidate")
            | Ok o ->
              print_string (Mcf_ir.Program.to_dot (Mcf_search.Space.lowered o.best).program);
              Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ workload_arg))
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Graphviz rendering of the winning schedule's loop/statement DAG")
    term

(* --- explain ---------------------------------------------------------------- *)

let explain_cmd =
  let run () obs device workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            match Mcf_search.Tuner.tune spec chain with
            | Error Mcf_search.Tuner.No_viable_candidate ->
              Error (`Msg "no viable candidate")
            | Ok o ->
              print_string (Mcf_gpu.Sim.explain spec o.kernel);
              let b = Mcf_model.Perf.breakdown spec (Mcf_search.Space.lowered o.best) in
              Printf.printf
                "\nanalytical model (eqs. 2-5): %.2f us = (mem %.2f + comp %.2f) \
                 x alpha %.3f\n"
                (b.t_total *. 1e6) (b.t_mem *. 1e6) (b.t_comp *. 1e6) b.alpha;
              Printf.printf
                "shared memory: eq. (1) estimate %d B, actual allocation %d B\n"
                (Mcf_model.Shmem.estimate_bytes (Mcf_search.Space.lowered o.best))
                o.kernel.smem_bytes;
              Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ workload_arg))
  in
  Cmd.v
    (Cmd.info "explain" ~doc:"Simulator cost breakdown of the tuned kernel")
    term

(* --- partition --------------------------------------------------------------- *)

let partition_cmd =
  let model_arg =
    let doc = "Model whose encoder layer to partition (bert-small/base/large, vit-base/large)." in
    Arg.(value & opt string "bert-base" & info [ "model" ] ~docv:"MODEL" ~doc)
  in
  let run () obs device model =
    with_obs obs (fun () ->
        match spec_of_name device with
        | Error e -> Error e
        | Ok spec -> (
          let cfg =
            match String.lowercase_ascii model with
            | "bert-small" -> Ok Mcf_workloads.Configs.bert_small
            | "bert-base" -> Ok Mcf_workloads.Configs.bert_base
            | "bert-large" -> Ok Mcf_workloads.Configs.bert_large
            | "vit-base" -> Ok Mcf_workloads.Configs.vit_base
            | "vit-large" -> Ok Mcf_workloads.Configs.vit_large
            | other -> Error (`Msg (Printf.sprintf "unknown model %S" other))
          in
          match cfg with
          | Error e -> Error e
          | Ok cfg ->
            let g = Mcf_frontend.Opgraph.bert_layer cfg in
            Printf.printf "# imported operator graph (one encoder layer)\n";
            print_string (Mcf_frontend.Opgraph.to_string g);
            let g', r = Mcf_frontend.Opgraph.partition spec g in
            Printf.printf "\n# after MBCI partitioning\n";
            print_string (Mcf_frontend.Opgraph.to_string g');
            Printf.printf
              "\nfused %d attention pattern(s), %d plain chain(s); rejected %d \
               compute-bound candidate chain(s)\n"
              r.fused_attention r.fused_chains r.rejected_compute_bound;
            Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ model_arg))
  in
  Cmd.v
    (Cmd.info "partition"
       ~doc:"Show the graph partitioner segmenting a model into MBCI \
             sub-graphs")
    term

(* --- schedule ------------------------------------------------------------ *)

let schedule_cmd =
  let run () obs device workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            match Mcf_search.Tuner.tune spec chain with
            | Error Mcf_search.Tuner.No_viable_candidate ->
              Error (`Msg "no viable candidate")
            | Ok o ->
              Printf.printf "# tiling expression pseudo-code (Fig. 4 style)\n";
              print_string (Mcf_search.Tuner.pseudo_code o);
              Printf.printf "\n# generated Triton kernel\n";
              print_string (Mcf_search.Tuner.triton_source o);
              Printf.printf "\n# launch stub\n";
              print_string (Mcf_codegen.Emit.launch_stub (Mcf_search.Space.lowered o.best).program);
              Printf.printf "\n# TIR view (SV-B round trip)\n";
              print_string
                (Mcf_ir.Tir.pretty
                   (Mcf_ir.Tir.of_candidate chain o.best.cand));
              Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ workload_arg))
  in
  Cmd.v
    (Cmd.info "schedule" ~doc:"Print pseudo-code and Triton source")
    term

(* --- compare ------------------------------------------------------------- *)

let compare_cmd =
  let run () obs device workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            let backends =
              [ Mcf_baselines.Pytorch.backend;
                Mcf_baselines.Relay.backend;
                Mcf_baselines.Ansor.backend;
                Mcf_baselines.Bolt.backend;
                Mcf_baselines.Flash_attention.backend;
                Mcf_baselines.Chimera.backend;
                Mcf_baselines.Mcfuser_backend.backend ]
            in
            let tbl =
              Mcf_util.Table.create
                ~headers:[ "backend"; "time"; "tuning (virtual)"; "note" ]
            in
            List.iter
              (fun (b : Mcf_baselines.Backend.t) ->
                match b.tune spec chain with
                | Error (Mcf_baselines.Backend.Unsupported msg) ->
                  Mcf_util.Table.add_row tbl [ b.name; "-"; "-"; msg ]
                | Ok o ->
                  Mcf_util.Table.add_row tbl
                    [ b.name;
                      Mcf_util.Table.fmt_time_s o.time_s;
                      Mcf_util.Table.fmt_time_s o.tuning_virtual_s;
                      (match o.note with
                      | Some n -> n
                      | None -> if o.fused then "fused" else "unfused") ])
              backends;
            print_string (Mcf_util.Table.render tbl);
            Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ workload_arg))
  in
  Cmd.v (Cmd.info "compare" ~doc:"Run every backend on one workload") term

(* --- experiment ---------------------------------------------------------- *)

let experiment_cmd =
  let id_arg =
    let doc = "Experiment id (fig2, fig7, fig8a-d, fig9, fig10, fig11, tab4, ablation)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ID" ~doc)
  in
  let run () obs id =
    with_obs obs (fun () ->
        match Mcf_experiments.Registry.find id with
        | None ->
          Error
            (`Msg
              (Printf.sprintf "unknown experiment %S (available: %s)" id
                 (String.concat ", " (Mcf_experiments.Registry.ids ()))))
        | Some e ->
          print_string (e.run ());
          Ok ())
  in
  let term = Term.(term_result (const run $ setup_term $ obs_term $ id_arg)) in
  Cmd.v
    (Cmd.info "experiment" ~doc:"Regenerate one paper table/figure")
    term

(* --- workloads ----------------------------------------------------------- *)

let workloads_cmd =
  let run () obs =
    with_obs obs (fun () ->
        let tbl =
          Mcf_util.Table.create
            ~headers:[ "name"; "kind"; "batch/heads"; "M"; "N"; "K"; "H"; "network" ]
        in
        List.iter
          (fun (g : Mcf_workloads.Configs.gemm_config) ->
            Mcf_util.Table.add_row tbl
              [ g.gname; "GEMM chain"; string_of_int g.gbatch; string_of_int g.gm;
                string_of_int g.gn; string_of_int g.gk; string_of_int g.gh; "-" ])
          Mcf_workloads.Configs.gemm_chains;
        Mcf_util.Table.add_rule tbl;
        List.iter
          (fun (s : Mcf_workloads.Configs.attention_config) ->
            Mcf_util.Table.add_row tbl
              [ s.sname; "self-attention"; string_of_int s.heads;
                string_of_int s.sm; string_of_int s.sn; string_of_int s.sk;
                string_of_int s.sh; s.network ])
          Mcf_workloads.Configs.attentions;
        Mcf_util.Table.add_rule tbl;
        List.iter
          (fun (d : Mcf_workloads.Configs.deep_config) ->
            Mcf_util.Table.add_row tbl
              [ d.dname; "deep chain"; string_of_int d.dbatch;
                string_of_int d.dm; string_of_int d.ddim;
                string_of_int d.ddim; string_of_int d.ddim;
                Printf.sprintf "%d blocks" d.dblocks ])
          Mcf_workloads.Configs.deep_chains;
        print_string (Mcf_util.Table.render tbl);
        Ok ())
  in
  let term = Term.(term_result (const run $ setup_term $ obs_term)) in
  Cmd.v (Cmd.info "workloads" ~doc:"List the built-in workloads") term

(* --- verify -------------------------------------------------------------- *)

let verify_cmd =
  let run () obs device workload =
    with_obs obs (fun () ->
        with_setup device workload (fun spec chain ->
            (* Scale the chain down so the reference interpreter stays fast,
               keeping the structure (same axes, same epilogues). *)
            let small (a : Mcf_ir.Axis.t) = min a.size 96 in
            let chain =
              match Mcf_workloads.Configs.find_deep workload with
              | Some d ->
                (* Deep chains: shrink every dimension but keep the block
                   count, so the streamed enumeration still faces the full
                   (blocks + 2)! structural space. *)
                Mcf_workloads.Configs.deep_chain
                  { d with dm = min d.dm 96; ddim = min d.ddim 64 }
              | None ->
              match chain.Mcf_ir.Chain.blocks with
              | [ _; b2 ]
                when b2.Mcf_ir.Chain.epilogue = Mcf_ir.Chain.No_epilogue ->
                Mcf_ir.Chain.gemm_chain
                  ~m:(small (Mcf_ir.Chain.axis chain "m"))
                  ~n:(small (Mcf_ir.Chain.axis chain "n"))
                  ~k:(small (Mcf_ir.Chain.axis chain "k"))
                  ~h:(small (Mcf_ir.Chain.axis chain "h"))
                  ()
              | _ ->
                Mcf_ir.Chain.attention
                  ~m:(small (Mcf_ir.Chain.axis chain "m"))
                  ~n:(small (Mcf_ir.Chain.axis chain "n"))
                  ~k:(small (Mcf_ir.Chain.axis chain "k"))
                  ~h:(small (Mcf_ir.Chain.axis chain "h"))
                  ()
            in
            match Mcf_search.Tuner.tune spec chain with
            | Error Mcf_search.Tuner.No_viable_candidate ->
              Error (`Msg "no viable candidate")
            | Ok o ->
              let rng = Mcf_util.Rng.create 7 in
              let inputs =
                List.map
                  (fun (ts : Mcf_ir.Chain.tensor_spec) ->
                    let shape =
                      Array.of_list
                        (List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes)
                    in
                    (ts.tname, Mcf_tensor.Tensor.random rng shape))
                  (Mcf_ir.Chain.input_tensors chain)
              in
              let got = Mcf_interp.Interp.run (Mcf_search.Space.lowered o.best).program ~inputs in
              let want = Mcf_interp.Interp.reference chain ~inputs in
              let diff = Mcf_tensor.Tensor.max_abs_diff got want in
              Printf.printf
                "schedule %s\nmax |fused - reference| = %.3g  ->  %s\n"
                (Mcf_ir.Candidate.to_string o.best.cand)
                diff
                (if Mcf_tensor.Tensor.approx_equal ~tol:1e-3 got want then
                   "PASS"
                 else "FAIL");
              Ok ()))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ device_arg
                       $ workload_arg))
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Numerically verify a tuned schedule on a scaled-down instance")
    term

(* --- fuzz ---------------------------------------------------------------- *)

let fuzz_cmd =
  let seed_arg =
    let doc = "Fuzzing seed; the whole run is a pure function of it." in
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc)
  in
  let budget_arg =
    let doc =
      "Virtual-time budget in seconds, charged from each case's \
       deterministic work estimate (not the wall clock) — a given \
       seed/budget runs the same cases on every machine."
    in
    Arg.(value & opt float 5.0 & info [ "budget-s" ] ~docv:"S" ~doc)
  in
  let cases_arg =
    let doc = "Stop after $(docv) cases (whichever of this and the budget \
               comes first)." in
    Arg.(value & opt (some int) None & info [ "cases" ] ~docv:"N" ~doc)
  in
  let oracle_arg =
    let doc =
      "Run only this oracle (repeatable; default: all).  See \
       $(b,--list-oracles)."
    in
    Arg.(value & opt_all string [] & info [ "oracle" ] ~docv:"NAME" ~doc)
  in
  let corpus_arg =
    let doc =
      "Directory minimized failing cases are appended to as replayable \
       case files."
    in
    Arg.(value & opt string "test/corpus"
         & info [ "corpus" ] ~docv:"DIR" ~doc)
  in
  let no_corpus_arg =
    let doc = "Do not write corpus files on failure." in
    Arg.(value & flag & info [ "no-corpus" ] ~doc)
  in
  let replay_arg =
    let doc =
      "Replay a corpus case file through its recorded oracle instead of \
       fuzzing."
    in
    Arg.(value & opt (some string) None
         & info [ "replay" ] ~docv:"FILE" ~doc)
  in
  let list_arg =
    let doc = "List the available oracles and exit." in
    Arg.(value & flag & info [ "list-oracles" ] ~doc)
  in
  let run () obs seed budget_s cases oracle_names corpus no_corpus
      replay list_oracles =
    if list_oracles then begin
      List.iter
        (fun (o : Mcf_fuzz.Oracle.t) ->
          Printf.printf "%-13s %s%s\n" o.name o.doc
            (if o.every > 1 then Printf.sprintf " (every %d cases)" o.every
             else ""))
        Mcf_fuzz.Oracle.all;
      Ok ()
    end
    else
      match replay with
      | Some path ->
        with_obs obs (fun () ->
            match Mcf_fuzz.Corpus.load path with
            | Error e -> Error (`Msg e)
            | Ok entry -> (
              Printf.printf "replay %s: oracle %s, %s\n" path
                entry.Mcf_fuzz.Corpus.oracle
                (Mcf_fuzz.Gen.case_to_string entry.Mcf_fuzz.Corpus.case);
              match Mcf_fuzz.Driver.replay entry with
              | Ok `Pass ->
                print_endline "replay: PASS";
                Ok ()
              | Ok (`Skip m) ->
                Printf.printf "replay: SKIP (%s)\n" m;
                Ok ()
              | Error m -> Error (`Msg ("replay still fails: " ^ m))))
      | None -> (
        let oracles_r =
          match oracle_names with
          | [] -> Ok Mcf_fuzz.Oracle.all
          | names ->
            List.fold_right
              (fun n acc ->
                match (acc, Mcf_fuzz.Oracle.by_name n) with
                | (Error _ as e), _ -> e
                | Ok _, None ->
                  Error
                    (`Msg
                      (Printf.sprintf "unknown oracle %S (available: %s)" n
                         (String.concat ", " (Mcf_fuzz.Oracle.names ()))))
                | Ok os, Some o -> Ok (o :: os))
              names (Ok [])
        in
        match oracles_r with
        | Error _ as e -> e
        | Ok oracles ->
          with_obs obs (fun () ->
              let outcome =
                Mcf_fuzz.Driver.run ~seed ~budget_s
                  ?max_cases:cases ~oracles
                  ?corpus_dir:(if no_corpus then None else Some corpus)
                  ()
              in
              print_string (Mcf_fuzz.Driver.render_summary outcome);
              if outcome.Mcf_fuzz.Driver.failures = [] then Ok ()
              else Error (`Msg "fuzzing found failures (corpus updated)")))
  in
  let term =
    Term.(term_result (const run $ setup_term $ obs_term $ seed_arg
                       $ budget_arg $ cases_arg $ oracle_arg $ corpus_arg
                       $ no_corpus_arg $ replay_arg $ list_arg))
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differentially fuzz the whole pipeline on random MBCI chains")
    term

(* --- report -------------------------------------------------------------- *)

let report_cmd =
  let files_arg =
    let doc =
      "Recording file(s) written by $(b,--record): one file to render its \
       post-mortem, two with $(b,--diff) to compare them."
    in
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc)
  in
  let diff_arg =
    let doc =
      "Compare two recordings: funnel drift, model-fidelity drift, \
       best-measured-time and peak-heap regression, and per-phase \
       wall-time drift (informational).  Exits non-zero when the best \
       time or the peak heap regresses beyond $(b,--tolerance), so it \
       can gate CI."
    in
    Arg.(value & flag & info [ "diff" ] ~doc)
  in
  let tolerance_arg =
    let doc = "Relative best-time regression tolerance for $(b,--diff)." in
    Arg.(value & opt float 0.05 & info [ "tolerance" ] ~docv:"FRAC" ~doc)
  in
  let load path =
    match Mcf_obs.Recorder.load path with
    | Error e -> Error (`Msg e)
    | Ok [] -> Error (`Msg (path ^ ": empty recording"))
    | Ok events -> Ok events
  in
  let run () do_diff tolerance files =
    match (do_diff, files) with
    | false, [ path ] -> (
      match load path with
      | Error _ as e -> e
      | Ok events -> (
        match Mcf_obs.Report.render events with
        | Error e -> Error (`Msg (path ^ ": " ^ e))
        | Ok s ->
          print_string s;
          Ok ()))
    | true, [ a; b ] -> (
      match (load a, load b) with
      | (Error _ as e), _ | _, (Error _ as e) -> e
      | Ok ea, Ok eb -> (
        match Mcf_obs.Report.diff ~tolerance ea eb with
        | Error e -> Error (`Msg e)
        | Ok d ->
          print_string d.dreport;
          if d.regression then
            Error (`Msg "best measured time regressed beyond tolerance")
          else if d.heap_regression then
            Error (`Msg "peak heap regressed beyond tolerance")
          else Ok ()))
    | false, _ ->
      Error (`Msg "report expects exactly one FILE (or two with --diff)")
    | true, _ -> Error (`Msg "report --diff expects exactly two FILEs")
  in
  let term =
    Term.(term_result (const run $ setup_term $ diff_arg $ tolerance_arg
                       $ files_arg))
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Render a search flight recording, or diff two as a CI gate")
    term

(* --- perf ---------------------------------------------------------------- *)

let perf_cmd =
  let history_arg =
    let doc =
      "Performance-history file (JSONL, one entry per bench workload per \
       run; bench runs append with $(b,--history))."
    in
    Arg.(value & opt string "BENCH_history.jsonl"
         & info [ "history" ] ~docv:"FILE" ~doc)
  in
  let workload_arg =
    let doc = "Only show this workload's trends." in
    Arg.(value & opt (some string) None
         & info [ "workload" ] ~docv:"NAME" ~doc)
  in
  let gate_arg =
    let doc =
      "Regression gate: compare each workload's newest entry against the \
       robust baseline (median + MAD over the trailing $(b,--window) \
       runs) and exit non-zero on any regression beyond $(b,--tolerance)."
    in
    Arg.(value & flag & info [ "gate" ] ~doc)
  in
  let tolerance_arg =
    let doc = "Relative regression tolerance for $(b,--gate)." in
    Arg.(value & opt float 0.05 & info [ "tolerance" ] ~docv:"FRAC" ~doc)
  in
  let window_arg =
    let doc = "Baseline window: number of trailing runs the median and MAD \
               are computed over." in
    Arg.(value & opt int 10 & info [ "window" ] ~docv:"N" ~doc)
  in
  let from_search_arg =
    let doc =
      "Before rendering, append one history entry per workload converted \
       from a $(b,BENCH_search.json) document (used to seed a history from \
       an existing bench result)."
    in
    Arg.(value & opt (some string) None
         & info [ "from-search" ] ~docv:"FILE" ~doc)
  in
  let run () history workload gate tolerance window from_search =
    let seed_result =
      match from_search with
      | None -> Ok ()
      | Some path -> (
        match
          try Ok (In_channel.with_open_text path In_channel.input_all)
          with Sys_error e -> Error (`Msg ("cannot read search doc: " ^ e))
        with
        | Error _ as e -> e
        | Ok text -> (
          match Mcf_util.Json.parse text with
          | Error e -> Error (`Msg (path ^ ": " ^ e))
          | Ok doc ->
            let entries = Mcf_obs.History.of_search_doc doc in
            List.iter (Mcf_obs.History.append ~path:history) entries;
            Printf.eprintf "perf: appended %d entr%s from %s\n%!"
              (List.length entries)
              (if List.length entries = 1 then "y" else "ies")
              path;
            Ok ()))
    in
    match seed_result with
    | Error _ as e -> e
    | Ok () ->
      let entries, skipped = Mcf_obs.History.load history in
      if skipped > 0 then
        Printf.eprintf "perf: skipped %d malformed line%s in %s\n%!" skipped
          (if skipped = 1 then "" else "s")
          history;
      if gate then begin
        let verdicts = Mcf_obs.History.gate ~window ~tolerance entries in
        print_string (Mcf_obs.History.render_gate ~tolerance verdicts);
        if List.exists (fun v -> v.Mcf_obs.History.regressed) verdicts then
          Error (`Msg "performance regressed beyond tolerance")
        else Ok ()
      end
      else begin
        print_string (Mcf_obs.History.render ?workload entries);
        Ok ()
      end
  in
  let term =
    Term.(term_result (const run $ setup_term $ history_arg $ workload_arg
                       $ gate_arg $ tolerance_arg $ window_arg
                       $ from_search_arg))
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:"Render cross-run performance trends, or gate on regressions")
    term

(* --- top ------------------------------------------------------------------ *)

let jget j path =
  List.fold_left
    (fun acc k ->
      match acc with Some j -> Mcf_util.Json.member k j | None -> None)
    (Some j) path

let jnum j path =
  match jget j path with Some (Mcf_util.Json.Num v) -> v | _ -> 0.0

let jstr j path =
  match jget j path with Some (Mcf_util.Json.Str s) -> s | _ -> ""

(* One dashboard frame.  Every figure comes from the [/status] document
   (and the previous poll's document, for rates) — never from the local
   clock — so rendering is deterministic for fixed inputs and the cram
   test can pin a frame byte-for-byte. *)
let top_frame ~source ~poll ~prev ~heaps status =
  let num path = jnum status path in
  let buf = Buffer.create 512 in
  let add fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string buf s;
        Buffer.add_char buf '\n')
      fmt
  in
  add "mcfuser top - %s (poll %d)" source poll;
  add "";
  let phase = match jstr status [ "phase" ] with "" -> "(idle)" | p -> p in
  let info = jstr status [ "info" ] in
  add "phase     %s%s" phase (if info = "" then "" else " | " ^ info);
  let max_gen = num [ "generation"; "max_gen" ] in
  (if max_gen > 0.0 then begin
     let eta =
       match jget status [ "generation"; "eta_s" ] with
       | Some (Mcf_util.Json.Num v) -> Printf.sprintf ", ETA %.1fs" v
       | _ -> ""
     in
     add "progress  gen %.0f/%.0f, %.0f measured%s, elapsed %.1fs"
       (num [ "generation"; "gen" ])
       max_gen
       (num [ "generation"; "measured" ])
       eta
       (num [ "elapsed_s" ])
   end
   else add "progress  elapsed %.1fs" (num [ "elapsed_s" ]));
  (match prev with
  | Some (t0, prev_status) when num [ "server"; "time" ] -. t0 > 0.0 ->
    let dt = num [ "server"; "time" ] -. t0 in
    let rate path = (num path -. jnum prev_status path) /. dt in
    add "rates     valid %.1f/s, estimates %.1f/s, measures %.1f/s"
      (rate [ "funnel"; "candidates_valid" ])
      (rate [ "funnel"; "estimated" ])
      (rate [ "funnel"; "measured" ])
  | Some _ | None -> add "rates     -");
  add "heap      %.1f Mw (peak %.1f Mw), alloc %.1f Mw/s  %s"
    (num [ "rsrc"; "heap_words" ] /. 1e6)
    (num [ "rsrc"; "heap_words_peak" ] /. 1e6)
    (num [ "rsrc"; "alloc_words_per_s" ] /. 1e6)
    (Mcf_util.Chart.sparkline heaps);
  add "pool      busy %.0f/%.0f domains, %.0f%% utilization"
    (num [ "pool"; "busy" ])
    (num [ "pool"; "domains" ])
    (num [ "pool"; "utilization" ] *. 100.0);
  let cache_cell name h m =
    let tot = h +. m in
    if tot <= 0.0 then Printf.sprintf "%s -" name
    else Printf.sprintf "%s %.0f%% (%.0f/%.0f)" name (h /. tot *. 100.0) h tot
  in
  add "caches    %s, %s, %s"
    (cache_cell "measure"
       (num [ "caches"; "measure"; "hits" ])
       (num [ "caches"; "measure"; "misses" ]))
    (cache_cell "schedule"
       (num [ "caches"; "schedule"; "hits" ])
       (num [ "caches"; "schedule"; "misses" ]))
    (cache_cell "memo"
       (num [ "caches"; "model_memo"; "hits" ])
       (num [ "caches"; "model_memo"; "misses" ]));
  add "funnel    enum %.0f, raw %.0f, lowered %.0f, valid %.0f, estimated \
       %.0f, measured %.0f"
    (num [ "funnel"; "enumerations" ])
    (num [ "funnel"; "tilings_raw" ])
    (num [ "funnel"; "candidates_lowered" ])
    (num [ "funnel"; "candidates_valid" ])
    (num [ "funnel"; "estimated" ])
    (num [ "funnel"; "measured" ]);
  Buffer.contents buf

let top_cmd =
  let url_arg =
    let doc =
      "Telemetry URL of a running mcfuser process — the address printed by \
       $(b,--listen), e.g. http://127.0.0.1:9464.  Optional with \
       $(b,--status-file)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"URL" ~doc)
  in
  let once_arg =
    let doc = "Render a single frame and exit (no screen clearing)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let interval_arg =
    let doc = "Polling interval in milliseconds." in
    Arg.(value & opt float 1000.0 & info [ "interval-ms" ] ~docv:"MS" ~doc)
  in
  let raw_arg =
    let doc =
      "Print the raw $(b,/status) JSON and $(b,/metrics) exposition instead \
       of the dashboard."
    in
    Arg.(value & flag & info [ "raw" ] ~doc)
  in
  let status_file_arg =
    let doc =
      "Render from a saved $(b,/status) JSON document instead of polling a \
       live server (implies $(b,--once); used by the cram tests)."
    in
    Arg.(value & opt (some string) None
         & info [ "status-file" ] ~docv:"FILE" ~doc)
  in
  let metrics_file_arg =
    let doc =
      "With $(b,--status-file): also validate a saved $(b,/metrics) \
       exposition before rendering."
    in
    Arg.(value & opt (some string) None
         & info [ "metrics-file" ] ~docv:"FILE" ~doc)
  in
  let read_file path =
    try Ok (In_channel.with_open_text path In_channel.input_all)
    with Sys_error e -> Error (`Msg e)
  in
  let run () url once interval_ms raw status_file metrics_file =
    match status_file with
    | Some path -> (
      (* Offline mode: deterministic rendering from saved documents. *)
      match read_file path with
      | Error _ as e -> e
      | Ok text -> (
        match Mcf_util.Json.parse (String.trim text) with
        | Error e -> Error (`Msg (path ^ ": " ^ e))
        | Ok status -> (
          let metrics_check =
            match metrics_file with
            | None -> Ok ()
            | Some mpath -> (
              match read_file mpath with
              | Error _ as e -> e
              | Ok mtext -> (
                match Mcf_obs.Export.validate_metrics_text mtext with
                | Error e -> Error (`Msg (mpath ^ ": " ^ e))
                | Ok () -> Ok ()))
          in
          match metrics_check with
          | Error _ as e -> e
          | Ok () ->
            if raw then print_string (Mcf_util.Json.to_string status ^ "\n")
            else
              print_string
                (top_frame ~source:path ~poll:1 ~prev:None
                   ~heaps:[ jnum status [ "rsrc"; "heap_words" ] ]
                   status);
            Ok ())))
    | None -> (
      match url with
      | None ->
        Error (`Msg "URL required (or render offline with --status-file)")
      | Some url ->
        let url =
          let u =
            if String.length url >= 7 && String.sub url 0 7 = "http://" then
              url
            else "http://" ^ url
          in
          if u.[String.length u - 1] = '/' then
            String.sub u 0 (String.length u - 1)
          else u
        in
        let fetch () =
          match Mcf_util.Httpd.Client.get (url ^ "/status") with
          | Error _ as e -> e
          | Ok (status, _) when status <> 200 ->
            Error (Printf.sprintf "/status: HTTP %d" status)
          | Ok (_, body) -> (
            match Mcf_util.Json.parse (String.trim body) with
            | Error e -> Error ("/status: " ^ e)
            | Ok status -> (
              match Mcf_util.Httpd.Client.get (url ^ "/metrics") with
              | Error _ as e -> e
              | Ok (200, text) -> (
                match Mcf_obs.Export.validate_metrics_text text with
                | Error e -> Error ("/metrics: " ^ e)
                | Ok () -> Ok (status, text))
              | Ok (code, _) -> Error (Printf.sprintf "/metrics: HTTP %d" code)))
        in
        let interval_s = Float.max 0.05 (interval_ms /. 1000.0) in
        let clear () =
          if Unix.isatty Unix.stdout then print_string "\027[H\027[2J"
        in
        let rec loop n prev heaps =
          match fetch () with
          | Error e ->
            if n = 0 then Error (`Msg e)
            else begin
              (* The tune we were watching finished and took its listener
                 with it: a clean exit, not an error. *)
              Printf.printf "top: server went away (%s)\n%!" e;
              Ok ()
            end
          | Ok (status, metrics_text) ->
            let heaps = heaps @ [ jnum status [ "rsrc"; "heap_words" ] ] in
            if raw then begin
              print_string (Mcf_util.Json.to_string status ^ "\n");
              print_string metrics_text
            end
            else begin
              if not once then clear ();
              print_string
                (top_frame ~source:url ~poll:(n + 1) ~prev ~heaps status)
            end;
            flush stdout;
            if once then Ok ()
            else begin
              Thread.delay interval_s;
              loop (n + 1)
                (Some (jnum status [ "server"; "time" ], status))
                heaps
            end
        in
        loop 0 None [])
  in
  let term =
    Term.(term_result (const run $ setup_term $ url_arg $ once_arg
                       $ interval_arg $ raw_arg $ status_file_arg
                       $ metrics_file_arg))
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Live terminal dashboard for a running tune's telemetry endpoint")
    term

(* --- serve ----------------------------------------------------------------- *)

let serve_cmd =
  let listen_arg =
    let doc =
      "Listen address, $(b,ADDR:PORT) ($(b,PORT) alone means 127.0.0.1; \
       port 0 asks the kernel — pair with $(b,--port-file))."
    in
    Arg.(value & opt string "127.0.0.1:0"
         & info [ "listen" ] ~docv:"ADDR:PORT" ~doc)
  in
  let workers_arg =
    let doc = "Concurrent tuner sessions (worker threads)." in
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let schedule_cache_arg =
    let doc =
      "Schedule-cache file (JSONL): warm-start served schedules from \
       $(docv) and persist the cache back on graceful shutdown."
    in
    Arg.(value & opt (some string) None
         & info [ "schedule-cache" ] ~docv:"FILE" ~doc)
  in
  let measure_cache_arg =
    let doc =
      "Measurement-cache file (JSONL): warm-start the per-candidate \
       measurement cache shared by all sessions, persist on shutdown."
    in
    Arg.(value & opt (some string) None
         & info [ "measure-cache" ] ~docv:"FILE" ~doc)
  in
  let port_file_arg =
    let doc =
      "Write the daemon's bound URL to $(docv) once listening (how \
       scripts discover a kernel-assigned port)."
    in
    Arg.(value & opt (some string) None
         & info [ "port-file" ] ~docv:"FILE" ~doc)
  in
  let read_timeout_arg =
    let doc = "Per-connection receive timeout in seconds." in
    Arg.(value & opt float 5.0 & info [ "read-timeout-s" ] ~docv:"S" ~doc)
  in
  let max_body_arg =
    let doc = "Largest accepted request body in bytes (413 beyond)." in
    Arg.(value & opt int (1024 * 1024)
         & info [ "max-body-bytes" ] ~docv:"N" ~doc)
  in
  let run () obs listen workers schedule_cache measure_cache port_file
      read_timeout_s max_body_bytes =
    with_obs obs (fun () ->
        match Mcf_obs.Export.parse_listen listen with
        | Error e -> Error (`Msg e)
        | Ok (addr, port) -> (
          let config =
            { Mcf_serve.Server.default_config with
              addr;
              port;
              workers;
              read_timeout_s;
              max_body_bytes;
              schedule_cache_file = schedule_cache;
              measure_cache_file = measure_cache }
          in
          match Mcf_serve.Server.start ~config () with
          | Error e -> Error (`Msg e)
          | Ok t ->
            Printf.printf "serve: listening on %s (POST /tune, GET /jobs)\n%!"
              (Mcf_serve.Server.url t);
            Option.iter
              (fun path ->
                let oc = open_out path in
                output_string oc (Mcf_serve.Server.url t);
                output_char oc '\n';
                close_out oc)
              port_file;
            let on_signal _ = Mcf_serve.Server.request_shutdown t in
            (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
             with Invalid_argument _ | Sys_error _ -> ());
            (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
             with Invalid_argument _ | Sys_error _ -> ());
            Mcf_serve.Server.wait_shutdown t;
            Printf.printf "serve: shutdown requested, draining\n%!";
            Mcf_serve.Server.stop t;
            let vs = Mcf_serve.Server.jobs t in
            let count src =
              List.length
                (List.filter
                   (fun (v : Mcf_serve.Server.job_view) -> v.vsource = src)
                   vs)
            in
            Printf.printf
              "serve: drained; %d jobs (%d tuned, %d cached, %d coalesced); \
               schedule cache: %d entries\n%!"
              (List.length vs)
              (count Mcf_serve.Server.Tuned)
              (count Mcf_serve.Server.Cached)
              (count Mcf_serve.Server.Coalesced)
              (Mcf_serve.Server.cache_size t);
            Ok ()))
  in
  let term =
    Term.(
      term_result
        (const run $ setup_term $ obs_term_gen ~listener:false $ listen_arg
        $ workers_arg $ schedule_cache_arg $ measure_cache_arg
        $ port_file_arg $ read_timeout_arg $ max_body_arg))
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the tuning-as-a-service daemon (POST /tune, GET /jobs/:id, \
             coalesced sessions, sharded schedule cache)")
    term

(* --- submit ---------------------------------------------------------------- *)

let submit_cmd =
  let url_arg =
    let doc =
      "Base URL of a running $(b,mcfuser serve) daemon, e.g. \
       http://127.0.0.1:9464."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"URL" ~doc)
  in
  let workload_arg =
    let doc = "Workload to tune (G1-G12, S1-S9, D5-D8, network names)." in
    Arg.(value & pos 1 (some string) None & info [] ~docv:"WORKLOAD" ~doc)
  in
  let seed_arg =
    let doc = "Tuner seed (default: derived from chain name + device)." in
    Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"N" ~doc)
  in
  let reservoir_arg =
    let doc = "Enumeration reservoir bound forwarded to the daemon." in
    Arg.(value & opt (some int) None & info [ "reservoir" ] ~docv:"N" ~doc)
  in
  let poll_ms_arg =
    let doc = "Polling interval while waiting for the job, milliseconds." in
    Arg.(value & opt float 50.0 & info [ "poll-ms" ] ~docv:"MS" ~doc)
  in
  let no_wait_arg =
    let doc = "Submit and print the job id without waiting for the result." in
    Arg.(value & flag & info [ "no-wait" ] ~doc)
  in
  let list_arg =
    let doc = "List the daemon's job queue ($(b,GET /jobs)) and exit." in
    Arg.(value & flag & info [ "list" ] ~doc)
  in
  let selfcheck_arg =
    let doc =
      "Probe $(b,/healthz), $(b,/status) and $(b,/metrics) on the daemon \
       and validate them, then exit."
    in
    Arg.(value & flag & info [ "selfcheck" ] ~doc)
  in
  let shutdown_arg =
    let doc = "Request a graceful drain ($(b,POST /shutdown)) and exit." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let normalize_url url =
    let u =
      if String.length url >= 7 && String.sub url 0 7 = "http://" then url
      else "http://" ^ url
    in
    if u.[String.length u - 1] = '/' then String.sub u 0 (String.length u - 1)
    else u
  in
  let source_human = function
    | "cached" -> "cache hit"
    | s -> s
  in
  let print_result job =
    let state = jstr job [ "state" ] in
    Printf.printf "job       %s %s (%s)\n" (jstr job [ "job" ]) state
      (source_human (jstr job [ "source" ]));
    Printf.printf "workload  %s on %s\n"
      (jstr job [ "workload" ])
      (jstr job [ "device" ]);
    match state with
    | "done" ->
      Printf.printf "best      %s\n" (jstr job [ "result"; "candidate" ]);
      Printf.printf "kernel    %s\n"
        (Mcf_util.Table.fmt_time_s (jnum job [ "result"; "kernel_time_s" ]));
      Printf.printf "tuning    %s virtual, %.0f measured, %.0f generations\n"
        (Mcf_util.Table.fmt_time_s (jnum job [ "result"; "tuning_virtual_s" ]))
        (jnum job [ "result"; "measured" ])
        (jnum job [ "result"; "generations" ]);
      Ok ()
    | "failed" -> Error (`Msg (jstr job [ "error" ]))
    | _ -> Ok ()
  in
  let parse_json body =
    match Mcf_util.Json.parse (String.trim body) with
    | Ok j -> Ok j
    | Error e -> Error (`Msg ("invalid response JSON: " ^ e))
  in
  let run () url workload device seed reservoir poll_ms no_wait list
      selfcheck shutdown =
    let url = normalize_url url in
    if selfcheck then
      match Mcf_obs.Export.selfcheck_url url with
      | Ok () ->
        Printf.printf "selfcheck ok: %s (healthz, status, metrics)\n" url;
        Ok ()
      | Error e -> Error (`Msg ("selfcheck: " ^ e))
    else if shutdown then
      match Mcf_util.Httpd.Client.post (url ^ "/shutdown") ~body:"{}" with
      | Ok (202, _) ->
        Printf.printf "shutdown requested\n";
        Ok ()
      | Ok (code, body) ->
        Error (`Msg (Printf.sprintf "POST /shutdown: HTTP %d %s" code body))
      | Error e -> Error (`Msg ("POST /shutdown: " ^ e))
    else if list then
      match Mcf_util.Httpd.Client.get (url ^ "/jobs") with
      | Error e -> Error (`Msg ("GET /jobs: " ^ e))
      | Ok (code, body) when code <> 200 ->
        Error (`Msg (Printf.sprintf "GET /jobs: HTTP %d %s" code body))
      | Ok (_, body) -> (
        match parse_json body with
        | Error _ as e -> e
        | Ok doc ->
          (match jget doc [ "jobs" ] with
          | Some (Mcf_util.Json.List jobs) ->
            List.iter
              (fun job ->
                Printf.printf "%-6s %-8s %-10s %s on %s\n"
                  (jstr job [ "job" ])
                  (jstr job [ "state" ])
                  (source_human (jstr job [ "source" ]))
                  (jstr job [ "workload" ])
                  (jstr job [ "device" ]))
              jobs
          | _ -> ());
          Printf.printf
            "counts    %.0f queued, %.0f running, %.0f done, %.0f failed\n"
            (jnum doc [ "counts"; "queued" ])
            (jnum doc [ "counts"; "running" ])
            (jnum doc [ "counts"; "done" ])
            (jnum doc [ "counts"; "failed" ]);
          Ok ())
    else
      match workload with
      | None ->
        Error
          (`Msg
            "WORKLOAD required (or use --list, --selfcheck or --shutdown)")
      | Some workload -> (
        let body =
          Mcf_util.Json.to_string
            (Mcf_util.Json.Obj
               ([ ("workload", Mcf_util.Json.Str workload);
                  ("device", Mcf_util.Json.Str device);
                ]
               @ (match seed with
                 | Some s -> [ ("seed", Mcf_util.Json.num_of_int s) ]
                 | None -> [])
               @
               match reservoir with
               | Some r -> [ ("reservoir", Mcf_util.Json.num_of_int r) ]
               | None -> []))
        in
        match Mcf_util.Httpd.Client.post (url ^ "/tune") ~body with
        | Error e -> Error (`Msg ("POST /tune: " ^ e))
        | Ok (code, body) when code <> 200 && code <> 202 ->
          Error (`Msg (Printf.sprintf "POST /tune: HTTP %d %s" code body))
        | Ok (_, body) -> (
          match parse_json body with
          | Error _ as e -> e
          | Ok job -> (
            let jid = jstr job [ "job" ] in
            if no_wait then begin
              Printf.printf "job       %s %s (%s)\n" jid
                (jstr job [ "state" ])
                (source_human (jstr job [ "source" ]));
              Ok ()
            end
            else
              let rec poll job =
                match jstr job [ "state" ] with
                | "done" | "failed" -> print_result job
                | _ -> (
                  Thread.delay (Float.max 0.01 (poll_ms /. 1000.0));
                  match
                    Mcf_util.Httpd.Client.get (url ^ "/jobs/" ^ jid)
                  with
                  | Error e -> Error (`Msg ("GET /jobs/" ^ jid ^ ": " ^ e))
                  | Ok (code, body) when code <> 200 ->
                    Error
                      (`Msg
                        (Printf.sprintf "GET /jobs/%s: HTTP %d %s" jid code
                           body))
                  | Ok (_, body) -> (
                    match parse_json body with
                    | Error _ as e -> e
                    | Ok job -> poll job))
              in
              poll job)))
  in
  let term =
    Term.(
      term_result
        (const run $ setup_term $ url_arg $ workload_arg $ device_arg
        $ seed_arg $ reservoir_arg $ poll_ms_arg $ no_wait_arg $ list_arg
        $ selfcheck_arg $ shutdown_arg))
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:"Submit a tuning request to a running mcfuser serve daemon and \
             wait for the schedule")
    term

let () =
  let info =
    Cmd.info "mcfuser" ~version:"1.0.0"
      ~doc:"MCFuser reproduction: fusion of memory-bound compute-intensive \
            operator chains"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ tune_cmd; chain_cmd; schedule_cmd; dot_cmd; explain_cmd;
            compare_cmd; partition_cmd; experiment_cmd; workloads_cmd;
            verify_cmd; fuzz_cmd; report_cmd; perf_cmd; top_cmd; serve_cmd;
            submit_cmd ]))
