(* Tests for the tuning service: protocol parsing and coalescing-key
   derivation, duplicate-submission coalescing under a saturated worker
   pool, bit-identity of served schedules against one-shot tunes at
   several pool sizes, graceful drain mid-burst with cache persistence
   and warm-start, HTTP fault injection (malformed bodies, unknown
   devices, oversized payloads, client disconnects) against a live
   socket, and the Httpd per-connection read timeout that keeps a
   stalled client from pinning a slot. *)

module Server = Mcf_serve.Server
module Protocol = Mcf_serve.Protocol
module Metrics = Mcf_obs.Metrics
module Httpd = Mcf_util.Httpd
module Json = Mcf_util.Json

let a100 = Mcf_gpu.Spec.a100

(* Distinct tiny chains so each test works fresh keys; [m] picks the
   chain, everything else is pinned small to keep tuning fast. *)
let chain ~m = Mcf_ir.Chain.gemm_chain ~m ~n:64 ~k:32 ~h:32 ()

let req ?seed ?reservoir ~m () =
  let chain = chain ~m in
  { Protocol.workload = chain.Mcf_ir.Chain.cname; chain; spec = a100;
    seed; reservoir }

let with_server ?(config = Server.default_config) f =
  match Server.start ~config () with
  | Error e -> Alcotest.failf "server start: %s" e
  | Ok t -> Fun.protect ~finally:(fun () -> Server.stop t) (fun () -> f t)

let submit_ok t r =
  match Server.submit t r with
  | Ok (jid, source) -> (jid, source)
  | Error e -> Alcotest.failf "submit: %s" e

let await_done t jid =
  match Server.await t jid with
  | Some { Server.vstatus = Server.Done s; _ } -> s
  | Some { Server.vstatus = Server.Failed e; _ } ->
    Alcotest.failf "job %s failed: %s" jid e
  | Some _ -> Alcotest.failf "job %s not terminal after await" jid
  | None -> Alcotest.failf "job %s unknown" jid

let sched_fingerprint (s : Protocol.sched) =
  Printf.sprintf "%s|%.17g|%.17g|%d|%d|%d" s.cand s.time_s s.virtual_s
    s.estimated s.measured s.generations

(* --- protocol ---------------------------------------------------------------- *)

let test_parse_workload () =
  match Protocol.parse_tune_request {|{"workload":"G1","seed":7}|} with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok r ->
    Alcotest.(check string) "label" "G1" r.Protocol.workload;
    Alcotest.(check string) "default device" "A100" r.Protocol.spec.name;
    Alcotest.(check (option int)) "seed" (Some 7) r.Protocol.seed;
    Alcotest.(check (option int)) "no reservoir" None r.Protocol.reservoir

let test_parse_chain () =
  let body =
    {|{"chain":{"kind":"gemm","m":128,"n":64,"k":32,"h":32},"device":"RTX3080"}|}
  in
  match Protocol.parse_tune_request body with
  | Error e -> Alcotest.failf "parse: %s" e
  | Ok r ->
    Alcotest.(check string) "device honoured" "RTX3080" r.Protocol.spec.name;
    Alcotest.(check string)
      "same chain as the builder"
      (Mcf_ir.Chain.fingerprint (chain ~m:128))
      (Mcf_ir.Chain.fingerprint r.Protocol.chain)

let test_parse_errors () =
  let bad name body =
    match Protocol.parse_tune_request body with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error e ->
      Alcotest.(check bool)
        (name ^ ": error is descriptive")
        true
        (String.length e > 0)
  in
  bad "not json" "{nope";
  bad "not an object" {|[1,2]|};
  bad "neither workload nor chain" {|{"device":"A100"}|};
  bad "both workload and chain"
    {|{"workload":"G1","chain":{"kind":"gemm","m":8,"n":8,"k":8,"h":8}}|};
  bad "unknown workload" {|{"workload":"G999"}|};
  bad "unknown device" {|{"workload":"G1","device":"TPU9000"}|};
  bad "unknown chain kind" {|{"chain":{"kind":"conv","m":8}}|};
  bad "negative seed" {|{"workload":"G1","seed":-3}|};
  bad "negative reservoir" {|{"workload":"G1","reservoir":-1}|}

let test_key_derivation () =
  let k1 = Protocol.key (req ~m:96 ()) in
  let k1' = Protocol.key (req ~m:96 ()) in
  Alcotest.(check string) "deterministic" k1 k1';
  Alcotest.(check bool) "device leads the key" true
    (String.length k1 > 5 && String.sub k1 0 5 = "A100|");
  let distinct name k other =
    Alcotest.(check bool) (name ^ " changes the key") true (k <> other)
  in
  distinct "chain" k1 (Protocol.key (req ~m:112 ()));
  distinct "seed" k1 (Protocol.key (req ~m:96 ~seed:7 ()));
  distinct "reservoir" k1 (Protocol.key (req ~m:96 ~reservoir:256 ()));
  let rtx = { (req ~m:96 ()) with Protocol.spec = Mcf_gpu.Spec.rtx3080 } in
  distinct "device" k1 (Protocol.key rtx)

let test_sched_json_roundtrip () =
  let s =
    { Protocol.cand = "deep:m,n;m=16,n=32"; time_s = 4.212e-6;
      virtual_s = 23.5; estimated = 493; measured = 32; generations = 7 }
  in
  match Protocol.sched_of_json (Protocol.sched_json s) with
  | Some s' ->
    Alcotest.(check string) "roundtrip" (sched_fingerprint s)
      (sched_fingerprint s')
  | None -> Alcotest.fail "sched_json did not round-trip"

(* --- coalescing -------------------------------------------------------------- *)

let test_duplicates_coalesce () =
  (* One worker, occupied by chain A; K duplicate submissions of chain B
     from concurrent threads must collapse onto a single tuner session:
     exactly one [Tuned], the rest [Coalesced], and every returned
     schedule bit-identical. *)
  let sessions_before = Metrics.counter_value "serve.sessions" in
  with_server ~config:{ Server.default_config with workers = 1 } (fun t ->
      let a_jid, a_src = submit_ok t (req ~m:96 ()) in
      Alcotest.(check string) "A is a fresh session" "tuned"
        (Server.source_string a_src);
      let dup = req ~m:112 () in
      let k = 6 in
      let results = Array.make k ("", Server.Tuned) in
      let threads =
        Array.init k (fun i ->
            Thread.create (fun () -> results.(i) <- submit_ok t dup) ())
      in
      Array.iter Thread.join threads;
      let count src =
        Array.to_list results
        |> List.filter (fun (_, s) -> s = src)
        |> List.length
      in
      Alcotest.(check int) "exactly one fresh session" 1 (count Server.Tuned);
      Alcotest.(check int) "every duplicate coalesced" (k - 1)
        (count Server.Coalesced);
      let scheds =
        Array.to_list results
        |> List.map (fun (jid, _) -> sched_fingerprint (await_done t jid))
      in
      List.iter
        (fun s -> Alcotest.(check string) "identical answers" (List.hd scheds) s)
        scheds;
      ignore (await_done t a_jid);
      let sessions_after = Metrics.counter_value "serve.sessions" in
      Alcotest.(check int) "two tuner sessions total" 2
        (sessions_after - sessions_before);
      (* a resubmission after completion is a cache hit, not a session *)
      let _, src = submit_ok t dup in
      Alcotest.(check string) "warm resubmission" "cached"
        (Server.source_string src))

(* --- bit-identity ------------------------------------------------------------ *)

let test_served_equals_oneshot () =
  (* ISSUE 10 acceptance: a served schedule is bit-identical to a
     one-shot [Tuner.tune] of the same (chain, spec, seed) — at jobs 1
     and 4, served cold, coalesced and cached. *)
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Mcf_util.Pool.set_jobs saved)
    (fun () ->
      List.iter
        (fun jobs ->
          Mcf_util.Pool.set_jobs jobs;
          let r = req ~m:(128 + jobs) () in
          let direct =
            match Mcf_search.Tuner.tune r.Protocol.spec r.Protocol.chain with
            | Ok o -> sched_fingerprint (Protocol.sched_of_outcome o)
            | Error _ -> Alcotest.fail "one-shot tune failed"
          in
          with_server (fun t ->
              let jid, _ = submit_ok t r in
              let cold = sched_fingerprint (await_done t jid) in
              Alcotest.(check string)
                (Printf.sprintf "cold serve at jobs=%d" jobs)
                direct cold;
              let jid2, src = submit_ok t r in
              Alcotest.(check string) "second submission cached" "cached"
                (Server.source_string src);
              Alcotest.(check string)
                (Printf.sprintf "cached serve at jobs=%d" jobs)
                direct
                (sched_fingerprint (await_done t jid2))))
        [ 1; 4 ])

(* --- drain and persistence ---------------------------------------------------- *)

let test_stop_drains_and_persists () =
  let dir = Filename.temp_file "mcf_serve" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let sched_file = Filename.concat dir "sched.jsonl" in
  let measure_file = Filename.concat dir "measure.jsonl" in
  let config =
    { Server.default_config with
      workers = 2;
      schedule_cache_file = Some sched_file;
      measure_cache_file = Some measure_file }
  in
  let n = 5 in
  let jids =
    match Server.start ~config () with
    | Error e -> Alcotest.failf "server start: %s" e
    | Ok t ->
      (* a burst of distinct chains, then stop mid-flight: every accepted
         job must drain to completion, none lost or corrupted *)
      let jids = List.init n (fun i -> fst (submit_ok t (req ~m:(160 + (16 * i)) ()))) in
      Server.stop t;
      List.iter
        (fun jid ->
          match Server.job t jid with
          | Some { Server.vstatus = Server.Done _; _ } -> ()
          | Some _ -> Alcotest.failf "job %s not drained" jid
          | None -> Alcotest.failf "job %s lost" jid)
        jids;
      Alcotest.(check int) "cache holds every schedule" n (Server.cache_size t);
      (match Server.submit t (req ~m:512 ()) with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "submission accepted after stop");
      jids
  in
  ignore jids;
  (* the persisted JSONL must round-trip: a fresh daemon warm-starts
     from it and answers the same requests from cache *)
  let lines path =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go acc =
          match input_line ic with
          | l -> go (l :: acc)
          | exception End_of_file -> List.rev acc
        in
        go [])
  in
  Alcotest.(check int) "one JSONL entry per schedule" n
    (List.length (lines sched_file));
  Alcotest.(check bool) "measurement cache persisted" true
    (List.length (lines measure_file) > 0);
  with_server ~config (fun t ->
      Alcotest.(check int) "warm-started" n (Server.cache_size t);
      let _, src = submit_ok t (req ~m:160 ()) in
      Alcotest.(check string) "answered from the warm cache" "cached"
        (Server.source_string src));
  List.iter Sys.remove (lines sched_file |> fun _ -> [ sched_file; measure_file ]);
  Unix.rmdir dir

(* --- fault injection over the wire -------------------------------------------- *)

let http_config =
  { Server.default_config with workers = 1; max_body_bytes = 4096 }

let post url body = Httpd.Client.post url ~body

let expect_status name expected = function
  | Ok (status, _) -> Alcotest.(check int) name expected status
  | Error e -> Alcotest.failf "%s: %s" name e

let test_http_faults () =
  with_server ~config:http_config (fun t ->
      let url = Server.url t in
      expect_status "malformed body is 400" 400 (post (url ^ "/tune") "{nope");
      expect_status "unknown device is 400" 400
        (post (url ^ "/tune") {|{"workload":"G1","device":"TPU9000"}|});
      expect_status "unknown workload is 400" 400
        (post (url ^ "/tune") {|{"workload":"G999"}|});
      expect_status "oversized payload is 413" 413
        (post (url ^ "/tune") (String.make 8192 ' '));
      expect_status "GET /tune is 405" 405
        (Httpd.Client.get (url ^ "/tune"));
      expect_status "unknown job is 404" 404
        (Httpd.Client.get (url ^ "/jobs/j999"));
      expect_status "unknown path is 404" 404
        (Httpd.Client.get (url ^ "/definitely-not-a-route"));
      (* a client that slams the connection shut mid-response must not
         take the accept loop down *)
      let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Server.port t));
      let reqtext = "GET /jobs HTTP/1.1\r\nHost: x\r\n\r\n" in
      ignore (Unix.write_substring fd reqtext 0 (String.length reqtext));
      Unix.close fd;
      Thread.delay 0.05;
      (* and after all that abuse, a legitimate request still works *)
      (match post (url ^ "/tune") {|{"chain":{"kind":"gemm","m":80,"n":64,"k":32,"h":32}}|} with
      | Ok (code, body) when code = 200 || code = 202 -> (
        match Json.parse (String.trim body) with
        | Ok j -> (
          match Json.member "job" j with
          | Some (Json.Str jid) -> ignore (await_done t jid)
          | _ -> Alcotest.fail "tune response has no job id")
        | Error e -> Alcotest.failf "tune response not JSON: %s" e)
      | Ok (code, body) -> Alcotest.failf "valid tune: HTTP %d %s" code body
      | Error e -> Alcotest.failf "valid tune after faults: %s" e);
      match Httpd.Client.get (url ^ "/jobs") with
      | Ok (200, body) -> (
        match Json.parse (String.trim body) with
        | Ok j ->
          Alcotest.(check bool) "jobs listing alive" true
            (Json.member "jobs" j <> None)
        | Error e -> Alcotest.failf "/jobs not JSON: %s" e)
      | Ok (status, _) -> Alcotest.failf "/jobs: HTTP %d" status
      | Error e -> Alcotest.failf "/jobs: %s" e)

let test_http_serve_status () =
  with_server ~config:http_config (fun t ->
      match Httpd.Client.get (Server.url t ^ "/status") with
      | Ok (200, body) -> (
        match Json.parse (String.trim body) with
        | Ok j -> (
          match Json.member "serve" j with
          | Some serve ->
            Alcotest.(check bool) "lifecycle state" true
              (Json.member "state" serve = Some (Json.Str "serving"))
          | None -> Alcotest.fail "/status lacks the serve section")
        | Error e -> Alcotest.failf "/status not JSON: %s" e)
      | Ok (status, _) -> Alcotest.failf "/status: HTTP %d" status
      | Error e -> Alcotest.failf "/status: %s" e)

(* --- read timeout -------------------------------------------------------------- *)

let test_read_timeout_frees_slot () =
  (* A stalled client (connects, sends nothing) pins the only slot until
     the per-connection read timeout reaps it; afterwards the listener
     must serve normally again. *)
  let handler _ = Httpd.response "ok\n" in
  match
    Httpd.start ~max_connections:1 ~read_timeout_s:0.4 ~addr:"127.0.0.1"
      ~port:0 ~handler ()
  with
  | Error e -> Alcotest.failf "httpd start: %s" e
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Httpd.stop t)
      (fun () ->
        let stalled = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.connect stalled
          (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", Httpd.port t));
        Thread.delay 0.1;
        (* slot pinned: the listener turns the next connection away *)
        (match Httpd.Client.get (Httpd.url t ^ "/x") with
        | Ok (503, _) -> ()
        | Ok (status, _) ->
          Alcotest.failf "expected 503 while stalled, got %d" status
        | Error _ -> ());
        (* after the timeout the stalled connection is reaped *)
        Thread.delay 0.8;
        (match Httpd.Client.get (Httpd.url t ^ "/x") with
        | Ok (200, body) -> Alcotest.(check string) "served again" "ok\n" body
        | Ok (status, _) -> Alcotest.failf "after timeout: HTTP %d" status
        | Error e -> Alcotest.failf "after timeout: %s" e);
        Unix.close stalled)

(* ------------------------------------------------------------------------------- *)

let () =
  Alcotest.run "mcf_serve"
    [ ( "protocol",
        [ Alcotest.test_case "workload request" `Quick test_parse_workload;
          Alcotest.test_case "inline chain request" `Quick test_parse_chain;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "coalescing key" `Quick test_key_derivation;
          Alcotest.test_case "sched json roundtrip" `Quick
            test_sched_json_roundtrip
        ] );
      ( "coalescing",
        [ Alcotest.test_case "duplicates share one session" `Quick
            test_duplicates_coalesce
        ] );
      ( "identity",
        [ Alcotest.test_case "served equals one-shot tune" `Quick
            test_served_equals_oneshot
        ] );
      ( "lifecycle",
        [ Alcotest.test_case "stop drains and persists" `Quick
            test_stop_drains_and_persists
        ] );
      ( "http",
        [ Alcotest.test_case "fault injection" `Quick test_http_faults;
          Alcotest.test_case "status has serve section" `Quick
            test_http_serve_status
        ] );
      ( "httpd",
        [ Alcotest.test_case "read timeout frees a pinned slot" `Quick
            test_read_timeout_frees_slot
        ] )
    ]
