(* Tests for the analytical models: eq. (1) shared-memory estimation and
   the eq. (2)-(5) performance model. *)

open Mcf_ir

let gemm = Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()
let ax s = Chain.axis gemm s
let a100 = Mcf_gpu.Spec.a100

let cand tiles =
  Candidate.make (Tiling.Deep [ ax "m"; ax "h"; ax "n"; ax "k" ]) tiles

let std = [ ("m", 128); ("n", 64); ("k", 32); ("h", 64) ]
let lower c = Lower.lower ~elem_bytes:2 gemm c

(* --- eq. (1): shared-memory estimate -------------------------------------- *)

let test_shmem_estimate_exact () =
  (* resident set for mhnk: A 128x32, B 32x64, C 128x64, D 64x64, E 128x64;
     fp16 -> sum of tile areas x 2 bytes *)
  let want =
    2 * ((128 * 32) + (32 * 64) + (128 * 64) + (64 * 64) + (128 * 64))
  in
  Alcotest.(check int) "eq (1)" want (Mcf_model.Shmem.estimate_bytes (lower (cand std)))

let test_shmem_grows_with_tiles () =
  let small = Mcf_model.Shmem.estimate_bytes (lower (cand std)) in
  let big =
    Mcf_model.Shmem.estimate_bytes
      (lower (cand [ ("m", 256); ("n", 128); ("k", 64); ("h", 128) ]))
  in
  Alcotest.(check bool) "monotone in tiles" true (big > small)

let test_shmem_rule2_multiplicity () =
  (* kn structure: the estimate must include trip(n) partial C tiles *)
  let kn =
    Candidate.make (Tiling.Deep [ ax "m"; ax "h"; ax "k"; ax "n" ]) std
  in
  let nk = cand std in
  Alcotest.(check bool) "kn residency estimated larger" true
    (Mcf_model.Shmem.estimate_bytes (lower kn)
    > Mcf_model.Shmem.estimate_bytes (lower nk))

let test_within_budget () =
  let l = lower (cand std) in
  Alcotest.(check bool) "small tiles fit" true
    (Mcf_model.Shmem.within_budget a100 ~slack:1.2 l);
  let huge = lower (cand [ ("m", 1024); ("n", 512); ("k", 32); ("h", 512) ]) in
  Alcotest.(check bool) "huge tiles do not" false
    (Mcf_model.Shmem.within_budget a100 ~slack:1.2 huge)

let test_slack_widens_budget () =
  (* find a candidate that fits only with slack *)
  let l = lower (cand [ ("m", 256); ("n", 256); ("k", 64); ("h", 128) ]) in
  let est = Mcf_model.Shmem.estimate_bytes l in
  if est > a100.smem_per_block && float_of_int est <= 1.2 *. float_of_int a100.smem_per_block
  then begin
    Alcotest.(check bool) "rejected without slack" false
      (Mcf_model.Shmem.within_budget a100 ~slack:1.0 l);
    Alcotest.(check bool) "accepted with paper slack" true
      (Mcf_model.Shmem.within_budget a100 ~slack:1.2 l)
  end
  else
    (* configuration drifted; the slack semantics still hold trivially *)
    Alcotest.(check bool) "slack is monotone" true
      ((not (Mcf_model.Shmem.within_budget a100 ~slack:1.0 l))
      || Mcf_model.Shmem.within_budget a100 ~slack:1.2 l)

(* --- eqs. (2)-(5): performance model --------------------------------------- *)

let test_perf_t_mem_formula () =
  let l = lower (cand std) in
  let b = Mcf_model.Perf.breakdown a100 l in
  Alcotest.(check (float 1e-12)) "t_mem = traffic / W"
    (Lower.total_traffic_bytes l /. a100.mem_bw)
    b.t_mem

let test_perf_t_comp_formula () =
  let l = lower (cand std) in
  let b = Mcf_model.Perf.breakdown a100 l in
  Alcotest.(check (float 1e-12)) "t_comp = flops / P"
    (Lower.flops_per_block l *. float_of_int l.blocks /. a100.peak_flops)
    b.t_comp

let test_perf_alpha () =
  let l = lower (cand std) in
  let b = Mcf_model.Perf.breakdown a100 l in
  let blocks = float_of_int l.blocks in
  Alcotest.(check (float 1e-12)) "eq (5)"
    ((blocks +. float_of_int a100.sm_count) /. blocks)
    b.alpha;
  Alcotest.(check bool) "alpha > 1" true (b.alpha > 1.0);
  Alcotest.(check (float 1e-12)) "total = (mem+comp)*alpha"
    ((b.t_mem +. b.t_comp) *. b.alpha)
    b.t_total

let test_perf_alpha_decreases_with_blocks () =
  let few = lower (cand [ ("m", 1024); ("n", 64); ("k", 32); ("h", 512) ]) in
  let many = lower (cand [ ("m", 64); ("n", 64); ("k", 32); ("h", 64) ]) in
  let bf = Mcf_model.Perf.breakdown a100 few in
  let bm = Mcf_model.Perf.breakdown a100 many in
  Alcotest.(check bool) "fewer blocks, larger alpha" true (bf.alpha > bm.alpha)

let test_perf_device_dependence () =
  let l = lower (cand std) in
  let ta = Mcf_model.Perf.estimate a100 l in
  let tr = Mcf_model.Perf.estimate Mcf_gpu.Spec.rtx3080 l in
  Alcotest.(check bool) "slower device, larger estimate" true (tr > ta)

let test_perf_positive () =
  let l = lower (cand std) in
  Alcotest.(check bool) "positive finite" true
    (let t = Mcf_model.Perf.estimate a100 l in
     t > 0.0 && Float.is_finite t)

let test_perf_redundancy_visible () =
  (* the model must see redundant computation (Chimera's blind spot) *)
  let good = lower (cand std) in
  let bad =
    Lower.lower ~rule1:false ~elem_bytes:2 gemm
      (Candidate.make (Tiling.Deep [ ax "m"; ax "n"; ax "k"; ax "h" ]) std)
  in
  let bg = Mcf_model.Perf.breakdown a100 good in
  let bb = Mcf_model.Perf.breakdown a100 bad in
  Alcotest.(check bool) "t_comp grows with redundancy" true
    (bb.t_comp > bg.t_comp)

let test_perf_ranks_obvious_cases () =
  (* 16-wide tiles re-load tiny slivers thousands of times; the model must
     rank them far below a balanced configuration *)
  let bad = lower (cand [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ]) in
  let good = lower (cand std) in
  Alcotest.(check bool) "model prefers the balanced tiling" true
    (Mcf_model.Perf.estimate a100 good < Mcf_model.Perf.estimate a100 bad)

let test_perf_grid_of_one () =
  let single =
    lower (cand [ ("m", 1024); ("n", 1024); ("k", 512); ("h", 512) ])
  in
  Alcotest.(check int) "one block" 1 single.Lower.blocks;
  let b = Mcf_model.Perf.breakdown a100 single in
  Alcotest.(check (float 1e-9)) "alpha = 1 + N_SM" 109.0 b.alpha

(* --- property ------------------------------------------------------------- *)

(* Random chains + candidates from the fuzzing subsystem's seeded
   generator: the model must stay positive and finite on arbitrary MBCI
   chains and devices, not just the pinned paper GEMM. *)
let prop_model_positive =
  QCheck.Test.make ~count:100 ~name:"model estimates positive and finite"
    QCheck.small_int (fun n ->
      let c = Mcf_fuzz.Gen.case_of_id ~seed:20260806 (n mod 64) in
      let l =
        Lower.lower ~rule1:c.rule1 ~dead_loop_elim:c.dle ~hoisting:c.hoist
          ~elem_bytes:c.elem_bytes c.chain c.cand
      in
      let t = Mcf_model.Perf.estimate c.device l in
      t > 0.0 && Float.is_finite t
      && Mcf_model.Shmem.estimate_bytes l > 0)

(* --- rule-4 precheck: closed-form footprint vs lowered estimate -----------

   Space rejects candidates with [Shmem.footprint_of_candidate] before
   lowering, so the precheck must agree with [estimate_bytes] on the
   lowered program for *every* point of the space (a false reject would
   silently shrink the funnel).  Exhaustive sweep: all tilings x all tile
   combos x all (rule1, dead_loop_elim) flag pairs. *)

let check_precheck_agrees ~name chain =
  let tilings = Tiling.enumerate chain in
  let choices =
    List.map
      (fun (a : Axis.t) ->
        List.map (fun t -> (a.Axis.name, t)) (Candidate.tile_options a.size))
      chain.Chain.axes
  in
  let combos = Mcf_util.Listx.cartesian choices in
  let checked = ref 0 in
  List.iter
    (fun (rule1, dle) ->
      List.iter
        (fun tiling ->
          List.iter
            (fun tiles ->
              let c = Candidate.make tiling tiles in
              let l =
                Lower.lower ~rule1 ~dead_loop_elim:dle ~elem_bytes:2 chain c
              in
              let want = Mcf_model.Shmem.estimate_bytes l in
              let got =
                Mcf_model.Shmem.footprint_of_candidate ~rule1
                  ~dead_loop_elim:dle ~elem_bytes:2 chain c
              in
              incr checked;
              if got <> want then
                Alcotest.failf
                  "%s: footprint %d <> lowered estimate %d for %s (rule1=%b \
                   dead_loop_elim=%b)"
                  name got want (Candidate.key c) rule1 dle;
              let budget_full =
                Mcf_model.Shmem.within_budget a100 ~slack:1.2 l
              in
              let budget_pre =
                Mcf_model.Shmem.precheck_within_budget a100 ~slack:1.2 ~rule1
                  ~dead_loop_elim:dle chain c
              in
              if budget_pre <> budget_full then
                Alcotest.failf "%s: precheck verdict %b <> full verdict %b for %s"
                  name budget_pre budget_full (Candidate.key c))
            combos)
        tilings)
    [ (true, true); (true, false); (false, true); (false, false) ];
  Alcotest.(check bool)
    (Printf.sprintf "%s: swept a non-trivial space (%d points)" name !checked)
    true (!checked > 1000)

let test_precheck_gemm () =
  check_precheck_agrees ~name:"gemm"
    (Chain.gemm_chain ~m:128 ~n:64 ~k:32 ~h:32 ())

let test_precheck_attention () =
  check_precheck_agrees ~name:"attention"
    (Chain.attention ~heads:2 ~m:64 ~n:64 ~k:32 ~h:32 ())

let test_precheck_gemm3 () =
  check_precheck_agrees ~name:"gemm3"
    (Chain.gemm_chain3 ~m:48 ~n:32 ~k:32 ~h:32 ~p:32 ())

let test_precheck_mlp () =
  check_precheck_agrees ~name:"mlp"
    (Chain.mlp_chain ~m:64 ~n:64 ~k:32 ~h:32 ())

(* --- closed-form analytic model vs lowered walk ----------------------------

   The search's fast path estimates candidates with [Analytic] instead of
   [Perf.estimate ∘ Lower.lower]; the two must agree bit-for-bit on every
   point of the space, or the tuner's ranking (and thus its outcome) would
   drift.  Exhaustive sweep: all tilings x all tile combos x all eight
   (rule1, dead_loop_elim, hoisting) flag combinations, asserting equality
   of all four breakdown fields and the validity verdict. *)

let check_analytic_agrees ~name chain =
  let tilings = Tiling.enumerate chain in
  let choices =
    List.map
      (fun (a : Axis.t) ->
        List.map (fun t -> (a.Axis.name, t)) (Candidate.tile_options a.size))
      chain.Chain.axes
  in
  let combos = Mcf_util.Listx.cartesian choices in
  let flag_combos =
    List.concat_map
      (fun r1 ->
        List.concat_map
          (fun dle -> List.map (fun h -> (r1, dle, h)) [ true; false ])
          [ true; false ])
      [ true; false ]
  in
  let checked = ref 0 in
  List.iter
    (fun (rule1, dle, hoisting) ->
      List.iter
        (fun tiling ->
          List.iter
            (fun tiles ->
              let c = Candidate.make tiling tiles in
              let l =
                Lower.lower ~rule1 ~dead_loop_elim:dle ~hoisting ~elem_bytes:2
                  chain c
              in
              let want = Mcf_model.Perf.breakdown a100 l in
              let ev =
                Mcf_model.Analytic.eval_candidate ~rule1 ~dead_loop_elim:dle
                  ~hoisting ~elem_bytes:2 chain c
              in
              let got = Mcf_model.Analytic.breakdown_of_eval a100 ev in
              incr checked;
              let fail field (w : float) (g : float) =
                Alcotest.failf
                  "%s: analytic %s %.17g <> lowered %.17g for %s (rule1=%b \
                   dead_loop_elim=%b hoisting=%b)"
                  name field g w (Candidate.key c) rule1 dle hoisting
              in
              (* Bit-equality, not tolerance: the fast path must be a
                 drop-in replacement for the lowered walk. *)
              if not (Float.equal got.t_mem want.t_mem) then
                fail "t_mem" want.t_mem got.t_mem;
              if not (Float.equal got.t_comp want.t_comp) then
                fail "t_comp" want.t_comp got.t_comp;
              if not (Float.equal got.alpha want.alpha) then
                fail "alpha" want.alpha got.alpha;
              if not (Float.equal got.t_total want.t_total) then
                fail "t_total" want.t_total got.t_total;
              if ev.everdict <> l.validity then
                Alcotest.failf
                  "%s: analytic verdict disagrees with lowered validity for \
                   %s (rule1=%b dead_loop_elim=%b hoisting=%b)"
                  name (Candidate.key c) rule1 dle hoisting)
            combos)
        tilings)
    flag_combos;
  Alcotest.(check bool)
    (Printf.sprintf "%s: swept a non-trivial space (%d points)" name !checked)
    true (!checked > 1000)

let test_analytic_gemm () =
  check_analytic_agrees ~name:"gemm"
    (Chain.gemm_chain ~m:128 ~n:64 ~k:32 ~h:32 ())

let test_analytic_attention () =
  check_analytic_agrees ~name:"attention"
    (Chain.attention ~heads:2 ~m:64 ~n:64 ~k:32 ~h:32 ())

let test_analytic_gemm3 () =
  check_analytic_agrees ~name:"gemm3"
    (Chain.gemm_chain3 ~m:48 ~n:32 ~k:32 ~h:32 ~p:32 ())

let test_analytic_mlp () =
  check_analytic_agrees ~name:"mlp"
    (Chain.mlp_chain ~m:64 ~n:64 ~k:32 ~h:32 ())

let test_analytic_memo () =
  let chain = Chain.gemm_chain ~m:128 ~n:64 ~k:32 ~h:32 () in
  let memo = Mcf_model.Analytic.Memo.create ~elem_bytes:2 chain in
  let hits0 = Mcf_obs.Metrics.counter_value "model.memo.hits" in
  let misses0 = Mcf_obs.Metrics.counter_value "model.memo.misses" in
  let tiling = List.hd (Tiling.enumerate chain) in
  let c1 =
    Candidate.make tiling [ ("m", 32); ("n", 32); ("k", 16); ("h", 16) ]
  in
  (* Same expression and trip-1 mask, different magnitudes: must share the
     memoized summary yet evaluate to its own numbers. *)
  let c2 =
    Candidate.make tiling [ ("m", 64); ("n", 32); ("k", 16); ("h", 16) ]
  in
  let e1 = Mcf_model.Analytic.Memo.estimate memo a100 c1 in
  let e2 = Mcf_model.Analytic.Memo.estimate memo a100 c2 in
  let e1' = Mcf_model.Analytic.Memo.estimate memo a100 c1 in
  Alcotest.(check bool) "memoized result is stable" true (Float.equal e1 e1');
  Alcotest.(check (float 1e-30))
    "memoized estimate matches the lowered walk"
    (Mcf_model.Perf.estimate a100 (Lower.lower ~elem_bytes:2 chain c1))
    e1;
  Alcotest.(check (float 1e-30))
    "second tile vector evaluates independently"
    (Mcf_model.Perf.estimate a100 (Lower.lower ~elem_bytes:2 chain c2))
    e2;
  let hits = Mcf_obs.Metrics.counter_value "model.memo.hits" - hits0 in
  let misses = Mcf_obs.Metrics.counter_value "model.memo.misses" - misses0 in
  Alcotest.(check int) "one summary computed" 1 misses;
  Alcotest.(check int) "two summary hits" 2 hits

let () =
  Alcotest.run "mcf_model"
    [ ( "shmem (eq 1)",
        [ Alcotest.test_case "exact estimate" `Quick test_shmem_estimate_exact;
          Alcotest.test_case "monotone in tiles" `Quick
            test_shmem_grows_with_tiles;
          Alcotest.test_case "rule-2 multiplicity" `Quick
            test_shmem_rule2_multiplicity;
          Alcotest.test_case "within budget" `Quick test_within_budget;
          Alcotest.test_case "slack semantics" `Quick test_slack_widens_budget ]
      );
      ( "perf (eqs 2-5)",
        [ Alcotest.test_case "t_mem formula" `Quick test_perf_t_mem_formula;
          Alcotest.test_case "t_comp formula" `Quick test_perf_t_comp_formula;
          Alcotest.test_case "alpha formula" `Quick test_perf_alpha;
          Alcotest.test_case "alpha vs blocks" `Quick
            test_perf_alpha_decreases_with_blocks;
          Alcotest.test_case "device dependence" `Quick
            test_perf_device_dependence;
          Alcotest.test_case "positivity" `Quick test_perf_positive;
          Alcotest.test_case "redundancy visible" `Quick
            test_perf_redundancy_visible;
          Alcotest.test_case "ranks obvious cases" `Quick
            test_perf_ranks_obvious_cases;
          Alcotest.test_case "single-block alpha" `Quick test_perf_grid_of_one ]
      );
      ( "rule-4 precheck",
        [ Alcotest.test_case "gemm chain" `Quick test_precheck_gemm;
          Alcotest.test_case "attention" `Quick test_precheck_attention;
          Alcotest.test_case "3-gemm chain" `Quick test_precheck_gemm3;
          Alcotest.test_case "mlp (unary epilogue)" `Quick test_precheck_mlp ]
      );
      ( "analytic fast path",
        [ Alcotest.test_case "gemm chain" `Quick test_analytic_gemm;
          Alcotest.test_case "attention" `Quick test_analytic_attention;
          Alcotest.test_case "3-gemm chain" `Quick test_analytic_gemm3;
          Alcotest.test_case "mlp (unary epilogue)" `Quick test_analytic_mlp;
          Alcotest.test_case "summary memoization" `Quick test_analytic_memo ]
      );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_model_positive ] ) ]
