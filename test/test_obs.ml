(* Tests for the observability layer: the span tracer (nesting, Chrome
   JSON export, exception safety, zero-cost-when-off), the metrics
   registry (log-scale histogram bucketing, counter determinism under
   domains), the profile aggregator, the minimal JSON codec, and the
   end-to-end invariants that tie tuner outcomes to the counters the
   pipeline bumps along the way. *)

module Trace = Mcf_obs.Trace
module Metrics = Mcf_obs.Metrics
module Profile = Mcf_obs.Profile
module Json = Mcf_util.Json

let a100 = Mcf_gpu.Spec.a100

(* Trace/Profile state is process-global; make each test start clean. *)
let clean () =
  Trace.stop ();
  Trace.reset ();
  Profile.disable ();
  Profile.reset ()

(* --- Json ------------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [ ("s", Json.Str "a\"b\\c\n\t\x01");
      ("i", Json.num_of_int (-42));
      ("f", Json.Num 1.5);
      ("big", Json.Num 1.0e100);
      ("null", Json.Null);
      ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
      ("empty_o", Json.Obj []);
      ("empty_l", Json.List []) ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample_json) with
  | Ok v ->
    Alcotest.(check string)
      "roundtrip" (Json.to_string sample_json) (Json.to_string v)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_integral_floats () =
  Alcotest.(check string) "integral" "3" (Json.to_string (Json.Num 3.0));
  Alcotest.(check string) "negative" "-7" (Json.to_string (Json.Num (-7.0)));
  Alcotest.(check string) "non-integral" "2.5" (Json.to_string (Json.Num 2.5));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Num Float.infinity))

let test_json_parse_escapes () =
  (match Json.parse {|"\u0041\u00e9\n"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "A\xc3\xa9\n" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  let rejects s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter rejects
    [ "{"; "[1,]"; "{\"a\":1,}"; "1 2"; "tru"; "\"unterminated"; "";
      "01"; "- 1"; "[1 2]"; "{\"a\" 1}"; "\"\\x\"" ]

let test_json_member () =
  Alcotest.(check (option string))
    "present" (Some "1.5")
    (Option.map Json.to_string (Json.member "f" sample_json));
  Alcotest.(check bool) "absent" true (Json.member "zzz" sample_json = None);
  Alcotest.(check bool) "non-object" true
    (Json.member "f" (Json.List []) = None)

(* --- Trace ------------------------------------------------------------------ *)

let test_span_nesting () =
  clean ();
  Trace.start ();
  Trace.with_span "a" (fun () ->
      Trace.with_span "b" (fun () -> ignore (Sys.opaque_identity 1)));
  Trace.with_span "c" (fun () -> ());
  Trace.stop ();
  let evs = Trace.events () in
  Alcotest.(check (list (list string)))
    "paths in start order"
    [ [ "a" ]; [ "a"; "b" ]; [ "c" ] ]
    (List.map (fun (e : Trace.event) -> e.path) evs);
  let find n = List.find (fun (e : Trace.event) -> e.name = n) evs in
  let a = find "a" and b = find "b" and c = find "c" in
  Alcotest.(check bool) "child starts after parent" true (b.ts_us >= a.ts_us);
  Alcotest.(check bool) "child nested in parent" true
    (b.ts_us +. b.dur_us <= a.ts_us +. a.dur_us +. 1e-3);
  Alcotest.(check bool) "parent covers child" true (a.dur_us >= b.dur_us);
  Alcotest.(check bool) "c starts after a ends" true
    (c.ts_us >= a.ts_us +. a.dur_us -. 1e-3)

let test_span_args_and_exceptions () =
  clean ();
  Trace.start ();
  (try
     Trace.with_span "boom"
       ~args:(fun () -> [ ("k", Trace.Int 7); ("s", Trace.Str "v") ])
       (fun () -> failwith "expected")
   with Failure _ -> ());
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
    Alcotest.(check string) "recorded on raise" "boom" e.name;
    Alcotest.(check bool) "args kept" true
      (List.mem_assoc "k" e.args && List.mem_assoc "s" e.args)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_zero_cost_when_off () =
  clean ();
  let thunks_ran = ref 0 in
  let r =
    Trace.with_span "off"
      ~args:(fun () ->
        incr thunks_ran;
        [])
      (fun () -> 42)
  in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "args thunk never built" 0 !thunks_ran;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Trace.events ()))

let test_timed_always_measures () =
  clean ();
  let r, dur = Trace.timed "t" (fun () -> "x") in
  Alcotest.(check string) "result" "x" r;
  Alcotest.(check bool) "duration measured while disabled" true (dur >= 0.0);
  Alcotest.(check int) "no event buffered" 0 (List.length (Trace.events ()))

let test_chrome_json_export () =
  clean ();
  Trace.start ();
  Trace.with_span "outer"
    ~args:(fun () -> [ ("n", Trace.Int 3); ("ok", Trace.Bool true) ])
    (fun () -> Trace.with_span "inner" (fun () -> ()));
  Trace.stop ();
  let doc = Json.to_string (Trace.to_chrome_json ()) in
  match Json.parse doc with
  | Error e -> Alcotest.failf "export does not parse back: %s" e
  | Ok v -> (
    match Json.member "traceEvents" v with
    | Some (Json.List evs) ->
      Alcotest.(check int) "two events" 2 (List.length evs);
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              if Json.member k ev = None then Alcotest.failf "missing %S" k)
            [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check (option string))
            "complete event" (Some "\"X\"")
            (Option.map Json.to_string (Json.member "ph" ev)))
        evs;
      let outer =
        List.find
          (fun ev -> Json.member "name" ev = Some (Json.Str "outer"))
          evs
      in
      Alcotest.(check (option string))
        "args serialized"
        (Some {|{"n":3,"ok":true}|})
        (Option.map Json.to_string (Json.member "args" outer))
    | _ -> Alcotest.fail "no traceEvents array")

(* --- Metrics ---------------------------------------------------------------- *)

let test_counter_basics () =
  let c = Metrics.counter "test.counter_basics" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" (v0 + 5) (Metrics.value c);
  Alcotest.(check int) "by name"
    (Metrics.value c)
    (Metrics.counter_value "test.counter_basics");
  Alcotest.(check int) "unknown name is 0" 0
    (Metrics.counter_value "test.never_registered");
  Alcotest.(check bool) "same name, same counter" true
    (Metrics.value (Metrics.counter "test.counter_basics") = Metrics.value c)

let test_kind_mismatch_rejected () =
  ignore (Metrics.counter "test.kind_clash");
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument
       "Mcf_obs.Metrics: \"test.kind_clash\" already registered as another \
        kind")
    (fun () -> ignore (Metrics.histogram "test.kind_clash"))

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Metrics.set g (-1.25);
  Alcotest.(check (float 0.0)) "last write wins" (-1.25)
    (Metrics.gauge_value g)

let test_counter_determinism_under_domains () =
  let c = Metrics.counter "test.parallel_counter" in
  let v0 = Metrics.value c in
  let n = 1000 in
  let out =
    Mcf_util.Parallel.map ~domains:4
      (fun i ->
        Metrics.incr c;
        i * 2)
      (List.init n Fun.id)
  in
  Alcotest.(check int) "all increments land" (v0 + n) (Metrics.value c);
  Alcotest.(check (list int))
    "map output still deterministic"
    (List.init n (fun i -> i * 2))
    out

let test_histogram_bucketing () =
  let h = Metrics.histogram "test.hist_buckets" in
  (* Buckets are (2^(e-1), 2^e]: exact powers of two sit at their own
     upper bound, values just above spill into the next bucket. *)
  List.iter (Metrics.observe h)
    [ 0.0; -3.0; 1.0; 2.0; 2.5; 0.75; Float.infinity; Float.nan ];
  let s = Metrics.summary h in
  Alcotest.(check int) "NaN dropped from count" 7 s.hcount;
  Alcotest.(check (float 1e-9)) "min" (-3.0) s.hmin;
  Alcotest.(check (float 0.0)) "max" Float.infinity s.hmax;
  Alcotest.(check bool) "sum is inf (contains inf)" true
    (s.hsum = Float.infinity);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucket layout"
    [ (0.0, 2);  (* 0.0 and -3.0: underflow *)
      (1.0, 2);  (* 0.75 and 1.0: (0.5, 1] *)
      (2.0, 1);  (* 2.0 exactly on its bound *)
      (4.0, 1);  (* 2.5 *)
      (Float.infinity, 1) ]
    s.hbuckets

let test_histogram_empty () =
  let h = Metrics.histogram "test.hist_empty" in
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 0 s.hcount;
  Alcotest.(check (float 0.0)) "min" Float.infinity s.hmin;
  Alcotest.(check (float 0.0)) "max" Float.neg_infinity s.hmax;
  Alcotest.(check bool) "no buckets" true (s.hbuckets = [])

let test_histogram_percentiles () =
  (* Two-bucket layout with exact power-of-two observations: 50 in (0.5, 1]
     and 50 in (2, 4].  The first bucket is fully consumed at p50, so the
     interpolation lands exactly on its upper bound; p90/p99 interpolate
     geometrically inside the second bucket. *)
  let h = Metrics.histogram "test.hist_pct" in
  for _ = 1 to 50 do
    Metrics.observe h 1.0
  done;
  for _ = 1 to 50 do
    Metrics.observe h 4.0
  done;
  let s = Metrics.summary h in
  Alcotest.(check (float 1e-9)) "p50 on bucket bound" 1.0 s.hp50;
  Alcotest.(check (float 1e-9)) "p90 geometric"
    (2.0 *. (2.0 ** 0.8))
    s.hp90;
  Alcotest.(check (float 1e-9)) "p99 geometric"
    (2.0 *. (2.0 ** 0.98))
    s.hp99;
  Alcotest.(check bool) "monotone" true (s.hp50 <= s.hp90 && s.hp90 <= s.hp99)

let test_histogram_percentiles_clamped () =
  (* A single observation: every percentile collapses to that value via
     the [min, max] clamp, even though the bucket bound is elsewhere. *)
  let h = Metrics.histogram "test.hist_pct_one" in
  Metrics.observe h 3.0;
  let s = Metrics.summary h in
  List.iter
    (fun (lbl, v) -> Alcotest.(check (float 1e-9)) lbl 3.0 v)
    [ ("p50", s.hp50); ("p90", s.hp90); ("p99", s.hp99) ];
  (* Empty histogram: percentiles are 0 by convention. *)
  let e = Metrics.summary (Metrics.histogram "test.hist_pct_empty") in
  Alcotest.(check (float 0.0)) "empty p50" 0.0 e.hp50;
  Alcotest.(check (float 0.0)) "empty p99" 0.0 e.hp99

let test_histogram_percentiles_in_json () =
  let h = Metrics.histogram "test.hist_pct_json" in
  Metrics.observe h 2.0;
  match Json.member "histograms" (Metrics.to_json ()) with
  | Some hs -> (
    match Json.member "test.hist_pct_json" hs with
    | Some j ->
      List.iter
        (fun k ->
          Alcotest.(check (option string))
            (k ^ " exported") (Some "2")
            (Option.map Json.to_string (Json.member k j)))
        [ "p50"; "p90"; "p99" ]
    | None -> Alcotest.fail "histogram missing from snapshot")
  | None -> Alcotest.fail "no histograms section"

let test_metrics_json_deterministic () =
  let j1 = Json.to_string (Metrics.to_json ()) in
  let j2 = Json.to_string (Metrics.to_json ()) in
  Alcotest.(check string) "stable snapshot" j1 j2;
  match Json.parse j1 with
  | Ok v ->
    Alcotest.(check bool) "has counters section" true
      (Json.member "counters" v <> None)
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e

(* --- Profile ---------------------------------------------------------------- *)

let test_profile_aggregates () =
  clean ();
  Profile.enable ();
  for _ = 1 to 3 do
    Trace.with_span "p" (fun () -> Trace.with_span "q" (fun () -> ()))
  done;
  Profile.disable ();
  (match Profile.entries () with
  | [ p; q ] ->
    Alcotest.(check (list string)) "parent first" [ "p" ] p.path;
    Alcotest.(check (list string)) "child keyed by path" [ "p"; "q" ] q.path;
    Alcotest.(check int) "parent count" 3 p.count;
    Alcotest.(check int) "child count" 3 q.count;
    Alcotest.(check bool) "parent covers child" true (p.total_s >= q.total_s)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Alcotest.(check int) "no trace buffered while profiling" 0
    (List.length (Trace.events ()));
  clean ()

(* --- End-to-end invariants -------------------------------------------------- *)

let test_tuner_metric_invariants () =
  clean ();
  Metrics.reset ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  match Mcf_search.Tuner.tune a100 chain with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok o ->
    let cv = Metrics.counter_value in
    Alcotest.(check int) "valid candidates counted"
      o.funnel.candidates_valid
      (cv "space.candidates_valid");
    Alcotest.(check int) "raw tilings counted" o.funnel.tilings_raw
      (cv "space.tilings_raw");
    Alcotest.(check int) "estimator calls counted" o.search_stats.estimated
      (cv "explore.estimated");
    Alcotest.(check int) "measurements counted" o.search_stats.measured
      (cv "explore.measured");
    Alcotest.(check int) "one sim run per measurement"
      o.search_stats.measured (cv "sim.runs");
    (* one compile per measurement plus the final winning kernel *)
    Alcotest.(check int) "compiles = measured + 1"
      (o.search_stats.measured + 1)
      (cv "codegen.compiles");
    Alcotest.(check bool) "generations counted" true
      (cv "explore.generations" > 0);
    Alcotest.(check int) "one tune" 1 (cv "tuner.tunes");
    Alcotest.(check bool) "phase sum within wall clock" true
      (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 o.phases
      <= o.tuning_wall_s +. 1e-6);
    Alcotest.(check (list string))
      "phases in execution order (space.precheck carved out)"
      [ "tuner.enumerate"; "space.precheck"; "tuner.explore"; "tuner.measure";
        "tuner.codegen" ]
      (List.map fst o.phases);
    List.iter
      (fun (name, d) ->
        Alcotest.(check bool) (name ^ " non-negative") true (d >= 0.0))
      o.phases

let test_tuner_trace_covers_pipeline () =
  clean ();
  Trace.start ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  (match Mcf_search.Tuner.tune a100 chain with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok _ -> ());
  Trace.stop ();
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.name) (Trace.events ()))
  in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "span %S missing" n)
    [ "tuner.tune"; "tuner.enumerate"; "space.enumerate"; "space.tilings";
      "space.rule1"; "space.rule2"; "space.rule3"; "space.lower";
      "tuner.explore"; "explore.generation"; "tuner.measure"; "tuner.codegen"
    ];
  (* every span nests under the root *)
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check string)
        (e.name ^ " rooted at tuner.tune") "tuner.tune" (List.hd e.path))
    (Trace.events ());
  clean ()

let test_cache_counters () =
  clean ();
  Metrics.reset ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let file = Filename.temp_file "mcf_obs_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      (match Mcf_search.Schedule_cache.tune_with_cache ~cache_file:file a100
               chain
       with
      | Ok (Some _, _) -> ()
      | Ok (None, _) -> Alcotest.fail "first call must miss"
      | Error _ -> Alcotest.fail "tuner failed");
      match Mcf_search.Schedule_cache.tune_with_cache ~cache_file:file a100
              chain
      with
      | Ok (None, _) ->
        Alcotest.(check int) "one miss" 1 (Metrics.counter_value "cache.misses");
        Alcotest.(check int) "one hit" 1 (Metrics.counter_value "cache.hits");
        Alcotest.(check int) "hits + misses = lookups" 2
          (Metrics.counter_value "cache.hits"
          + Metrics.counter_value "cache.misses")
      | Ok (Some _, _) -> Alcotest.fail "second call must hit"
      | Error _ -> Alcotest.fail "tuner failed")

let test_tracing_does_not_perturb_tuning () =
  clean ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let run () =
    match Mcf_search.Tuner.tune a100 chain with
    | Ok o ->
      (Mcf_ir.Candidate.to_string o.best.cand, o.kernel_time_s,
       o.search_stats.measured)
    | Error _ -> Alcotest.fail "tuner failed"
  in
  let plain = run () in
  Trace.start ();
  Profile.enable ();
  let traced = run () in
  clean ();
  Alcotest.(check bool) "identical outcome with tracing on" true
    (plain = traced)

(* --- Recorder --------------------------------------------------------------- *)

module Recorder = Mcf_obs.Recorder
module Fidelity = Mcf_obs.Fidelity
module Report = Mcf_obs.Report

let test_recorder_zero_cost_when_off () =
  Recorder.reset ();
  let ran = ref 0 in
  Recorder.emit "x" (fun () ->
      incr ran;
      []);
  Alcotest.(check int) "field thunk never built" 0 !ran;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Recorder.events ()))

let test_recorder_emit_order_and_strip () =
  Recorder.reset ();
  Recorder.start ();
  Recorder.emit "run" (fun () ->
      [ ("time", Json.Num 1.5); ("device", Json.Str "A100") ]);
  Recorder.emit "end" (fun () -> [ ("wall_s", Json.Num 0.25) ]);
  Recorder.stop ();
  (match Recorder.events () with
  | [ a; b ] ->
    Alcotest.(check string)
      "ev discriminator leads" {|{"ev":"run","time":1.5,"device":"A100"}|}
      (Json.to_string a);
    Alcotest.(check string)
      "clock stripped from run" {|{"ev":"run","device":"A100"}|}
      (Json.to_string (Recorder.strip_clock a));
    Alcotest.(check string)
      "clock stripped from end" {|{"ev":"end"}|}
      (Json.to_string (Recorder.strip_clock b))
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs));
  Recorder.reset ()

let test_recorder_write_load_roundtrip () =
  Recorder.reset ();
  Recorder.start ();
  Recorder.emit "run" (fun () -> [ ("chain", Json.Str "g") ]);
  Recorder.emit "measure" (fun () ->
      [ ("est", Json.Num 1.5); ("time_s", Json.Null) ]);
  Recorder.stop ();
  let file = Filename.temp_file "mcf_rec" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove file with Sys_error _ -> ());
      Recorder.reset ())
    (fun () ->
      (match Recorder.write file with
      | Ok n -> Alcotest.(check int) "two events written" 2 n
      | Error e -> Alcotest.failf "write failed: %s" e);
      match Recorder.load file with
      | Ok evs ->
        Alcotest.(check (list string))
          "roundtrip"
          (List.map Json.to_string (Recorder.events ()))
          (List.map Json.to_string evs)
      | Error e -> Alcotest.failf "load failed: %s" e)

let record_tune ?(jobs = 1) chain =
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Mcf_util.Pool.set_jobs saved;
      Recorder.reset ())
    (fun () ->
      Mcf_util.Pool.set_jobs jobs;
      Recorder.start ();
      let o =
        match Mcf_search.Tuner.tune ~seed:7 a100 chain with
        | Ok o -> o
        | Error _ -> Alcotest.fail "tuner failed"
      in
      Recorder.stop ();
      (o, Recorder.events ()))

let test_recording_deterministic_across_jobs () =
  (* The tentpole invariant: a recording is byte-identical at any --jobs
     once the two wall-clock fields are stripped. *)
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let _, ev1 = record_tune ~jobs:1 chain in
  let _, ev4 = record_tune ~jobs:4 chain in
  (* The run header records the jobs setting by design; everything else
     must match byte for byte once the clock fields are stripped. *)
  let strip_jobs = function
    | Json.Obj kvs -> Json.Obj (List.remove_assoc "jobs" kvs)
    | j -> j
  in
  let render evs =
    List.map
      (fun e -> Json.to_string (strip_jobs (Recorder.strip_clock e)))
      evs
  in
  Alcotest.(check (list string))
    "events identical modulo clock + jobs fields" (render ev1) (render ev4)

let test_recording_does_not_perturb_tuning () =
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let fingerprint (o : Mcf_search.Tuner.outcome) =
    ( Mcf_ir.Candidate.key o.best.cand,
      o.kernel_time_s,
      o.tuning_virtual_s,
      o.funnel,
      o.search_stats )
  in
  let plain =
    match Mcf_search.Tuner.tune ~seed:7 a100 chain with
    | Ok o -> fingerprint o
    | Error _ -> Alcotest.fail "tuner failed"
  in
  let o, events = record_tune ~jobs:1 chain in
  Alcotest.(check bool) "bit-identical outcome with recording on" true
    (plain = fingerprint o);
  Alcotest.(check bool) "recording non-empty" true (List.length events > 0)

let test_recording_funnel_matches_outcome () =
  (* ISSUE 4 acceptance: the "space" event carries the funnel bit-identical
     to the Tuner.outcome the same run returned. *)
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let o, events = record_tune chain in
  let space_ev =
    List.find_opt
      (fun e -> Json.member "ev" e = Some (Json.Str "space"))
      events
  in
  match space_ev with
  | None -> Alcotest.fail "no space event recorded"
  | Some e ->
    Alcotest.(check (option string))
      "funnel bit-identical to outcome"
      (Some (Json.to_string (Mcf_search.Space.funnel_json o.funnel)))
      (Option.map Json.to_string (Json.member "funnel" e))

let test_recording_event_inventory () =
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let o, events = record_tune chain in
  let count name =
    List.length
      (List.filter
         (fun e -> Json.member "ev" e = Some (Json.Str name))
         events)
  in
  Alcotest.(check int) "one run header" 1 (count "run");
  Alcotest.(check int) "one space event" 1 (count "space");
  Alcotest.(check int) "one result" 1 (count "result");
  Alcotest.(check int) "one end" 1 (count "end");
  Alcotest.(check bool) "prune attribution present" true (count "prune" >= 4);
  Alcotest.(check int) "one generation summary per generation"
    o.search_stats.generations (count "generation");
  Alcotest.(check int) "one measure event per unique measurement"
    o.search_stats.measured (count "measure")

(* --- Fidelity --------------------------------------------------------------- *)

let fpair pcand pest pmeas = { Fidelity.pcand; pest; pmeas }

let test_fidelity_perfect_ranking () =
  (* Estimates off by a constant factor of 10 but perfectly ordered:
     ranking metrics are perfect while MAPE shows the scale error. *)
  let f =
    Fidelity.of_pairs ~ks:[ 1; 2 ]
      [ fpair "a" 1.0 10.0; fpair "b" 2.0 20.0; fpair "c" 3.0 30.0 ]
  in
  Alcotest.(check int) "pairs" 3 f.pairs;
  Alcotest.(check (float 1e-9)) "mape" 90.0 f.mape;
  Alcotest.(check (float 1e-9)) "rank accuracy" 1.0 f.rank_accuracy;
  Alcotest.(check (float 1e-9)) "kendall tau" 1.0 f.kendall_tau;
  List.iter
    (fun (k, r) ->
      Alcotest.(check (float 1e-9)) (Printf.sprintf "top-%d recall" k) 1.0 r)
    f.topk_recall

let test_fidelity_inverted_ranking () =
  let f =
    Fidelity.of_pairs ~ks:[ 1 ]
      [ fpair "a" 3.0 10.0; fpair "b" 2.0 20.0; fpair "c" 1.0 30.0 ]
  in
  Alcotest.(check (float 1e-9)) "rank accuracy" 0.0 f.rank_accuracy;
  Alcotest.(check (float 1e-9)) "kendall tau" (-1.0) f.kendall_tau;
  Alcotest.(check (list (pair int (float 1e-9))))
    "top-1 recall misses" [ (1, 0.0) ] f.topk_recall

let test_fidelity_degenerate () =
  let empty = Fidelity.of_pairs [] in
  Alcotest.(check int) "no pairs" 0 empty.pairs;
  Alcotest.(check (float 0.0)) "tau needs 2 pairs" 0.0 empty.kendall_tau;
  let one = Fidelity.of_pairs ~ks:[ 1 ] [ fpair "a" 5.0 5.0 ] in
  Alcotest.(check (float 1e-9)) "exact estimate" 0.0 one.mape;
  Alcotest.(check (float 1e-9)) "vacuous rank accuracy" 1.0 one.rank_accuracy

let test_fidelity_histogram () =
  Alcotest.(check (list (pair (float 1e-9) int)))
    "log-scale buckets"
    [ (1.0, 2); (2.0, 1); (4.0, 1) ]
    (Fidelity.histogram [| 1.0; 0.75; 2.0; 2.5 |])

(* --- Report ----------------------------------------------------------------- *)

let contains_substring hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let test_report_render_sections () =
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let o, events = record_tune chain in
  match Report.render events with
  | Error e -> Alcotest.failf "render failed: %s" e
  | Ok s ->
    List.iter
      (fun section ->
        Alcotest.(check bool) (section ^ " present") true
          (contains_substring s section))
      [ "# run"; "# pruning funnel"; "# prune attribution"; "# convergence";
        "# model fidelity"; "# result" ];
    (* The funnel table shows the same counts the outcome carries. *)
    Alcotest.(check bool) "valid count rendered" true
      (contains_substring s (string_of_int o.funnel.candidates_valid))

let test_report_diff_self_and_regression () =
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let _, events = record_tune chain in
  (match Report.diff events events with
  | Error e -> Alcotest.failf "self diff failed: %s" e
  | Ok d ->
    Alcotest.(check bool) "no funnel drift" false d.funnel_drift;
    Alcotest.(check bool) "no fidelity drift" false d.fidelity_drift;
    Alcotest.(check bool) "no regression" false d.regression);
  (* Inflate the result's best time beyond tolerance: regression flips. *)
  let inflated =
    List.map
      (fun e ->
        match (Json.member "ev" e, e) with
        | Some (Json.Str "result"), Json.Obj kvs ->
          Json.Obj
            (List.map
               (fun (k, v) ->
                 match (k, v) with
                 | "kernel_time_s", Json.Num t -> (k, Json.Num (t *. 2.0))
                 | _ -> (k, v))
               kvs)
        | _ -> e)
      events
  in
  match Report.diff ~tolerance:0.05 events inflated with
  | Error e -> Alcotest.failf "regression diff failed: %s" e
  | Ok d ->
    Alcotest.(check bool) "regression detected" true d.regression;
    Alcotest.(check bool) "funnel still identical" false d.funnel_drift

let test_report_empty () =
  match Report.render [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty recording must not render"

(* --- Trace counter events --------------------------------------------------- *)

let test_trace_counter_events () =
  clean ();
  let ran = ref 0 in
  Trace.counter "c.off" (fun () ->
      incr ran;
      [ ("v", 1.0) ]);
  Alcotest.(check int) "thunk never built when off" 0 !ran;
  Alcotest.(check int) "nothing buffered when off" 0
    (List.length (Trace.counter_events ()));
  Trace.start ();
  Trace.counter "c.heap" (fun () -> [ ("heap", 10.0); ("peak", 20.0) ]);
  Trace.counter "c.heap" (fun () -> [ ("heap", 12.0); ("peak", 20.0) ]);
  Trace.stop ();
  Alcotest.(check int) "two counter samples buffered" 2
    (List.length (Trace.counter_events ()));
  (match Trace.to_chrome_json () with
  | Json.Obj kvs -> (
    match List.assoc_opt "traceEvents" kvs with
    | Some (Json.List tevs) ->
      let counters =
        List.filter (fun e -> Json.member "ph" e = Some (Json.Str "C")) tevs
      in
      Alcotest.(check int) "ph:C events exported" 2 (List.length counters);
      List.iter
        (fun e ->
          match Json.member "args" e with
          | Some (Json.Obj args) ->
            Alcotest.(check bool) "numeric series value" true
              (match List.assoc_opt "heap" args with
              | Some (Json.Num _) -> true
              | _ -> false)
          | _ -> Alcotest.fail "counter event without args")
        counters
    | _ -> Alcotest.fail "no traceEvents list")
  | _ -> Alcotest.fail "chrome export not an object");
  clean ()

(* --- Resource sampler ------------------------------------------------------- *)

module Resource = Mcf_obs.Resource

let test_resource_sample_noop_when_off () =
  let c0 = Metrics.counter_value "rsrc.samples" in
  Resource.sample ();
  Alcotest.(check int) "cooperative tick is a no-op when off" c0
    (Metrics.counter_value "rsrc.samples")

let test_resource_sampler_publishes () =
  clean ();
  Trace.start ();
  ignore (Mcf_util.Pool.get ());
  (* global pool exists: domains >= 1 *)
  let c0 = Metrics.counter_value "rsrc.samples" in
  Resource.start ~period_s:0.002;
  Alcotest.(check bool) "active" true (Resource.active ());
  (* Real work under the sampler so there is heap and pool traffic. *)
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  ignore (Mcf_search.Space.enumerate a100 chain);
  Unix.sleepf 0.02;
  Resource.stop ();
  Alcotest.(check bool) "inactive after stop" false (Resource.active ());
  let samples = Metrics.counter_value "rsrc.samples" - c0 in
  Alcotest.(check bool) "immediate + periodic + closing samples" true
    (samples >= 3);
  Alcotest.(check bool) "session peak positive" true
    (Resource.peak_heap_words () > 0.0);
  Alcotest.(check bool) "heap gauge live" true
    (Metrics.gauge_value (Metrics.gauge "rsrc.heap_words") > 0.0);
  Alcotest.(check bool) "peak gauge >= live gauge" true
    (Metrics.gauge_value (Metrics.gauge "rsrc.heap_words_peak")
    >= Metrics.gauge_value (Metrics.gauge "rsrc.heap_words"));
  (* Every tick also refreshes the pool gauges (the Poolstats fix). *)
  Alcotest.(check bool) "pool gauges synced by sampler" true
    (Metrics.gauge_value (Metrics.gauge "pool.domains") >= 1.0);
  let names =
    List.map
      (fun (c : Trace.counter_event) -> c.Trace.kname)
      (Trace.counter_events ())
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " series recorded") true (List.mem n names))
    [ "rsrc.heap_words"; "rsrc.pool_util"; "rsrc.alloc_words_per_s";
      "rsrc.gc" ];
  clean ()

(* --- Performance history ----------------------------------------------------- *)

module History = Mcf_obs.History

let hist_entry ?(time = 1.0) ?(rev = "abc1234") ?(device = "A100")
    ?(workload = "G1") metrics =
  { History.time; rev; device; workload; metrics }

let with_temp_file f =
  let file = Filename.temp_file "mcf_hist" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let test_history_roundtrip () =
  with_temp_file (fun file ->
      Sys.remove file;
      (* [append] must create the file *)
      History.append ~path:file (hist_entry ~time:1.0 [ ("points_per_s", 100.0) ]);
      History.append ~path:file (hist_entry ~time:2.0 [ ("points_per_s", 110.0) ]);
      let entries, skipped = History.load file in
      Alcotest.(check int) "no skips" 0 skipped;
      Alcotest.(check (list (float 0.0)))
        "file order preserved" [ 1.0; 2.0 ]
        (List.map (fun (e : History.entry) -> e.History.time) entries);
      Alcotest.(check bool) "metrics survive" true
        (match entries with
        | e :: _ -> e.History.metrics = [ ("points_per_s", 100.0) ]
        | [] -> false);
      Alcotest.(check bool) "missing fields rejected" true
        (History.of_json (Json.Obj [ ("time", Json.Num 1.0) ]) = None))

let test_history_malformed_skipped () =
  with_temp_file (fun file ->
      let oc = open_out file in
      output_string oc
        {|{"time":1,"rev":"r","device":"d","workload":"w","metrics":{"m":1}}|};
      output_string oc "\nnot json at all\n";
      output_string oc "{\"time\":2}\n";
      output_string oc "\n";
      (* truncated tail: valid JSON, no trailing newline *)
      output_string oc
        {|{"time":3,"rev":"r","device":"d","workload":"w","metrics":{"m":2}}|};
      close_out oc;
      let entries, skipped = History.load file in
      Alcotest.(check int) "garbage + wrong shape skipped" 2 skipped;
      Alcotest.(check int) "good lines survive" 2 (List.length entries))

let test_history_empty () =
  let entries, skipped = History.load "/nonexistent/mcf-history.jsonl" in
  Alcotest.(check int) "missing file: no entries" 0 (List.length entries);
  Alcotest.(check int) "missing file: no skips" 0 skipped;
  Alcotest.(check int) "empty gate: no verdicts" 0
    (List.length (History.gate []));
  Alcotest.(check bool) "empty render is friendly" true
    (contains_substring (History.render []) "no history entries")

let test_history_gate_single_entry () =
  (* One run total: no baseline, the gate passes trivially (and must not
     divide by zero computing a median of nothing). *)
  let v = History.gate [ hist_entry [ ("points_per_s", 100.0) ] ] in
  Alcotest.(check int) "single entry: no verdicts" 0 (List.length v)

let test_history_gate_mad_zero_and_direction () =
  let mk t v = hist_entry ~time:t [ ("points_per_s", v) ] in
  (* An all-identical window has MAD 0; the tolerance floor keeps small
     moves from flagging. *)
  let base = [ mk 1.0 100.0; mk 2.0 100.0; mk 3.0 100.0 ] in
  let ok = History.gate ~tolerance:0.05 (base @ [ mk 4.0 97.0 ]) in
  Alcotest.(check bool) "MAD=0: within tolerance floor" true
    (List.for_all (fun v -> not v.History.regressed) ok);
  let bad = History.gate ~tolerance:0.05 (base @ [ mk 4.0 80.0 ]) in
  Alcotest.(check bool) "MAD=0: throughput drop flagged" true
    (List.exists
       (fun v -> v.History.regressed && v.History.vmetric = "points_per_s")
       bad);
  (* Direction by name: _per_s is higher-is-better, wall time the reverse. *)
  let mkw t v = hist_entry ~time:t [ ("tune_wall_s", v) ] in
  let wbase = [ mkw 1.0 1.0; mkw 2.0 1.0 ] in
  Alcotest.(check bool) "faster wall time passes" true
    (List.for_all
       (fun v -> not v.History.regressed)
       (History.gate (wbase @ [ mkw 3.0 0.5 ])));
  Alcotest.(check bool) "slower wall time flagged" true
    (List.exists
       (fun v -> v.History.regressed)
       (History.gate (wbase @ [ mkw 3.0 2.0 ])))

let test_history_gate_window () =
  (* The baseline is the trailing window, not all of history: with
     window=2 only the two runs right before the newest count. *)
  let mk t v = hist_entry ~time:t [ ("tune_wall_s", v) ] in
  let es =
    [ mk 1.0 100.0; mk 2.0 100.0; mk 3.0 1.0; mk 4.0 1.0; mk 5.0 100.0 ]
  in
  let narrow = History.gate ~window:2 ~tolerance:0.05 es in
  Alcotest.(check bool) "recent fast runs set the bar" true
    (List.exists (fun v -> v.History.regressed) narrow);
  Alcotest.(check (list int)) "baseline capped at window" [ 2 ]
    (List.map (fun v -> v.History.n_baseline) narrow);
  let wide = History.gate ~window:10 ~tolerance:0.05 es in
  Alcotest.(check bool) "wide window absorbs the old regime" true
    (List.for_all (fun v -> not v.History.regressed) wide)

let test_history_of_search_doc () =
  let doc =
    Json.Obj
      [ ("device", Json.Str "A100");
        ("workloads",
         Json.List
           [ Json.Obj
               [ ("name", Json.Str "G1");
                 ("enumerate",
                  Json.List
                    [ Json.Obj
                        [ ("jobs", Json.Num 1.0);
                          ("points_per_s", Json.Num 10.0) ];
                      Json.Obj
                        [ ("jobs", Json.Num 4.0);
                          ("points_per_s", Json.Num 40.0) ] ]);
                 ("tune",
                  Json.List
                    [ Json.Obj
                        [ ("jobs", Json.Num 4.0);
                          ("wall_s", Json.Num 2.0);
                          ("estimates_per_s", Json.Num 5.0);
                          ("best_time_s", Json.Num 1e-6) ] ]);
                 ("peak_heap_words", Json.Num 1000.0) ] ]) ]
  in
  match History.of_search_doc ~time:1.0 ~rev:"r" doc with
  | [ e ] ->
    Alcotest.(check string) "device" "A100" e.History.device;
    Alcotest.(check string) "workload" "G1" e.History.workload;
    let metric n = List.assoc_opt n e.History.metrics in
    Alcotest.(check (option (float 0.0))) "highest-jobs row wins"
      (Some 40.0) (metric "points_per_s");
    Alcotest.(check (option (float 0.0))) "tune wall" (Some 2.0)
      (metric "tune_wall_s");
    Alcotest.(check (option (float 0.0))) "best time" (Some 1e-6)
      (metric "best_time_s");
    Alcotest.(check (option (float 0.0))) "peak heap" (Some 1000.0)
      (metric "peak_heap_words")
  | l -> Alcotest.failf "expected 1 entry, got %d" (List.length l)

let test_history_direction_and_render () =
  Alcotest.(check bool) "per_s is higher-better" true
    (History.higher_is_better "points_per_s");
  Alcotest.(check bool) "wall time is lower-better" false
    (History.higher_is_better "tune_wall_s");
  Alcotest.(check bool) "heap words is lower-better" false
    (History.higher_is_better "peak_heap_words");
  let es =
    [ hist_entry ~time:1.0 [ ("points_per_s", 100.0) ];
      hist_entry ~time:2.0 [ ("points_per_s", 200.0) ] ]
  in
  let s = History.render es in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " rendered") true
        (contains_substring s needle))
    [ "A100/G1"; "points_per_s"; "+100.00%"; "_#" ];
  Alcotest.(check bool) "trivial gate renders a pass note" true
    (contains_substring
       (History.render_gate ~tolerance:0.05 [])
       "pass")

(* --- property: histogram percentiles vs exact ----------------------------

   The log-bucketed estimates can be off by at most one power-of-two
   bucket: for random log-spread samples, p50/p90/p99 from
   [Metrics.summary] must land within a factor of 2 of the exact
   (sorted, interpolated) percentile, and stay inside [min, max]. *)

let hist_id = ref 0

let prop_percentiles_within_a_bucket =
  QCheck.Test.make ~count:100
    ~name:"hist percentiles within one log bucket of exact"
    QCheck.small_int (fun n ->
      incr hist_id;
      let h =
        Metrics.histogram (Printf.sprintf "test.hist_prop_%d" !hist_id)
      in
      let rng = Mcf_util.Rng.create (n + 1) in
      let count = 16 + Mcf_util.Rng.int rng 300 in
      let xs =
        List.init count (fun _ ->
            (* log-uniform over ~6 decades *)
            10.0 ** (Mcf_util.Rng.float rng 6.0 -. 3.0))
      in
      List.iter (Metrics.observe h) xs;
      let s = Metrics.summary h in
      List.for_all
        (fun (p, got) ->
          let exact = Mcf_util.Stats.percentile p xs in
          got >= exact /. 2.0
          && got <= exact *. 2.0
          && got >= s.Metrics.hmin
          && got <= s.Metrics.hmax)
        [ (50.0, s.Metrics.hp50);
          (90.0, s.Metrics.hp90);
          (99.0, s.Metrics.hp99) ])

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "integral floats" `Quick
            test_json_integral_floats;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member ] );
      ( "trace",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "args + exceptions" `Quick
            test_span_args_and_exceptions;
          Alcotest.test_case "zero-cost when off" `Quick
            test_span_zero_cost_when_off;
          Alcotest.test_case "timed always measures" `Quick
            test_timed_always_measures;
          Alcotest.test_case "chrome export" `Quick test_chrome_json_export ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "parallel counters" `Quick
            test_counter_determinism_under_domains;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "percentiles" `Quick test_histogram_percentiles;
          Alcotest.test_case "percentiles clamped" `Quick
            test_histogram_percentiles_clamped;
          Alcotest.test_case "percentiles in json" `Quick
            test_histogram_percentiles_in_json;
          Alcotest.test_case "json snapshot" `Quick
            test_metrics_json_deterministic ] );
      ( "recorder",
        [ Alcotest.test_case "zero-cost when off" `Quick
            test_recorder_zero_cost_when_off;
          Alcotest.test_case "emit order + strip_clock" `Quick
            test_recorder_emit_order_and_strip;
          Alcotest.test_case "write/load roundtrip" `Quick
            test_recorder_write_load_roundtrip;
          Alcotest.test_case "deterministic across jobs" `Quick
            test_recording_deterministic_across_jobs;
          Alcotest.test_case "no perturbation" `Quick
            test_recording_does_not_perturb_tuning;
          Alcotest.test_case "funnel matches outcome" `Quick
            test_recording_funnel_matches_outcome;
          Alcotest.test_case "event inventory" `Quick
            test_recording_event_inventory ] );
      ( "fidelity",
        [ Alcotest.test_case "perfect ranking" `Quick
            test_fidelity_perfect_ranking;
          Alcotest.test_case "inverted ranking" `Quick
            test_fidelity_inverted_ranking;
          Alcotest.test_case "degenerate inputs" `Quick
            test_fidelity_degenerate;
          Alcotest.test_case "histogram" `Quick test_fidelity_histogram ] );
      ( "report",
        [ Alcotest.test_case "render sections" `Quick
            test_report_render_sections;
          Alcotest.test_case "diff self + regression" `Quick
            test_report_diff_self_and_regression;
          Alcotest.test_case "empty recording" `Quick test_report_empty ] );
      ( "profile",
        [ Alcotest.test_case "aggregates by path" `Quick
            test_profile_aggregates ] );
      ( "resource",
        [ Alcotest.test_case "counter events" `Quick
            test_trace_counter_events;
          Alcotest.test_case "sample no-op when off" `Quick
            test_resource_sample_noop_when_off;
          Alcotest.test_case "sampler publishes" `Quick
            test_resource_sampler_publishes ] );
      ( "history",
        [ Alcotest.test_case "roundtrip" `Quick test_history_roundtrip;
          Alcotest.test_case "malformed skipped" `Quick
            test_history_malformed_skipped;
          Alcotest.test_case "empty" `Quick test_history_empty;
          Alcotest.test_case "gate single entry" `Quick
            test_history_gate_single_entry;
          Alcotest.test_case "gate MAD=0 + direction" `Quick
            test_history_gate_mad_zero_and_direction;
          Alcotest.test_case "gate window" `Quick test_history_gate_window;
          Alcotest.test_case "of_search_doc" `Quick
            test_history_of_search_doc;
          Alcotest.test_case "direction + render" `Quick
            test_history_direction_and_render ] );
      ( "pipeline",
        [ Alcotest.test_case "tuner counters" `Quick
            test_tuner_metric_invariants;
          Alcotest.test_case "trace covers pipeline" `Quick
            test_tuner_trace_covers_pipeline;
          Alcotest.test_case "cache hit/miss" `Quick test_cache_counters;
          Alcotest.test_case "no perturbation" `Quick
            test_tracing_does_not_perturb_tuning ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_percentiles_within_a_bucket ] ) ]
