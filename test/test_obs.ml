(* Tests for the observability layer: the span tracer (nesting, Chrome
   JSON export, exception safety, zero-cost-when-off), the metrics
   registry (log-scale histogram bucketing, counter determinism under
   domains), the profile aggregator, the minimal JSON codec, and the
   end-to-end invariants that tie tuner outcomes to the counters the
   pipeline bumps along the way. *)

module Trace = Mcf_obs.Trace
module Metrics = Mcf_obs.Metrics
module Profile = Mcf_obs.Profile
module Json = Mcf_util.Json

let a100 = Mcf_gpu.Spec.a100

(* Trace/Profile state is process-global; make each test start clean. *)
let clean () =
  Trace.stop ();
  Trace.reset ();
  Profile.disable ();
  Profile.reset ()

(* --- Json ------------------------------------------------------------------- *)

let sample_json =
  Json.Obj
    [ ("s", Json.Str "a\"b\\c\n\t\x01");
      ("i", Json.num_of_int (-42));
      ("f", Json.Num 1.5);
      ("big", Json.Num 1.0e100);
      ("null", Json.Null);
      ("flags", Json.List [ Json.Bool true; Json.Bool false ]);
      ("empty_o", Json.Obj []);
      ("empty_l", Json.List []) ]

let test_json_roundtrip () =
  match Json.parse (Json.to_string sample_json) with
  | Ok v ->
    Alcotest.(check string)
      "roundtrip" (Json.to_string sample_json) (Json.to_string v)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_integral_floats () =
  Alcotest.(check string) "integral" "3" (Json.to_string (Json.Num 3.0));
  Alcotest.(check string) "negative" "-7" (Json.to_string (Json.Num (-7.0)));
  Alcotest.(check string) "non-integral" "2.5" (Json.to_string (Json.Num 2.5));
  Alcotest.(check string) "nan is null" "null"
    (Json.to_string (Json.Num Float.nan));
  Alcotest.(check string) "inf is null" "null"
    (Json.to_string (Json.Num Float.infinity))

let test_json_parse_escapes () =
  (match Json.parse {|"\u0041\u00e9\n"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "escapes" "A\xc3\xa9\n" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  match Json.parse {|"\ud83d\ude00"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | Ok _ -> Alcotest.fail "expected a string"
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_json_parse_errors () =
  let rejects s =
    match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  List.iter rejects
    [ "{"; "[1,]"; "{\"a\":1,}"; "1 2"; "tru"; "\"unterminated"; "";
      "01"; "- 1"; "[1 2]"; "{\"a\" 1}"; "\"\\x\"" ]

let test_json_member () =
  Alcotest.(check (option string))
    "present" (Some "1.5")
    (Option.map Json.to_string (Json.member "f" sample_json));
  Alcotest.(check bool) "absent" true (Json.member "zzz" sample_json = None);
  Alcotest.(check bool) "non-object" true
    (Json.member "f" (Json.List []) = None)

(* --- Trace ------------------------------------------------------------------ *)

let test_span_nesting () =
  clean ();
  Trace.start ();
  Trace.with_span "a" (fun () ->
      Trace.with_span "b" (fun () -> ignore (Sys.opaque_identity 1)));
  Trace.with_span "c" (fun () -> ());
  Trace.stop ();
  let evs = Trace.events () in
  Alcotest.(check (list (list string)))
    "paths in start order"
    [ [ "a" ]; [ "a"; "b" ]; [ "c" ] ]
    (List.map (fun (e : Trace.event) -> e.path) evs);
  let find n = List.find (fun (e : Trace.event) -> e.name = n) evs in
  let a = find "a" and b = find "b" and c = find "c" in
  Alcotest.(check bool) "child starts after parent" true (b.ts_us >= a.ts_us);
  Alcotest.(check bool) "child nested in parent" true
    (b.ts_us +. b.dur_us <= a.ts_us +. a.dur_us +. 1e-3);
  Alcotest.(check bool) "parent covers child" true (a.dur_us >= b.dur_us);
  Alcotest.(check bool) "c starts after a ends" true
    (c.ts_us >= a.ts_us +. a.dur_us -. 1e-3)

let test_span_args_and_exceptions () =
  clean ();
  Trace.start ();
  (try
     Trace.with_span "boom"
       ~args:(fun () -> [ ("k", Trace.Int 7); ("s", Trace.Str "v") ])
       (fun () -> failwith "expected")
   with Failure _ -> ());
  Trace.stop ();
  match Trace.events () with
  | [ e ] ->
    Alcotest.(check string) "recorded on raise" "boom" e.name;
    Alcotest.(check bool) "args kept" true
      (List.mem_assoc "k" e.args && List.mem_assoc "s" e.args)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_zero_cost_when_off () =
  clean ();
  let thunks_ran = ref 0 in
  let r =
    Trace.with_span "off"
      ~args:(fun () ->
        incr thunks_ran;
        [])
      (fun () -> 42)
  in
  Alcotest.(check int) "result passes through" 42 r;
  Alcotest.(check int) "args thunk never built" 0 !thunks_ran;
  Alcotest.(check int) "nothing buffered" 0 (List.length (Trace.events ()))

let test_timed_always_measures () =
  clean ();
  let r, dur = Trace.timed "t" (fun () -> "x") in
  Alcotest.(check string) "result" "x" r;
  Alcotest.(check bool) "duration measured while disabled" true (dur >= 0.0);
  Alcotest.(check int) "no event buffered" 0 (List.length (Trace.events ()))

let test_chrome_json_export () =
  clean ();
  Trace.start ();
  Trace.with_span "outer"
    ~args:(fun () -> [ ("n", Trace.Int 3); ("ok", Trace.Bool true) ])
    (fun () -> Trace.with_span "inner" (fun () -> ()));
  Trace.stop ();
  let doc = Json.to_string (Trace.to_chrome_json ()) in
  match Json.parse doc with
  | Error e -> Alcotest.failf "export does not parse back: %s" e
  | Ok v -> (
    match Json.member "traceEvents" v with
    | Some (Json.List evs) ->
      Alcotest.(check int) "two events" 2 (List.length evs);
      List.iter
        (fun ev ->
          List.iter
            (fun k ->
              if Json.member k ev = None then Alcotest.failf "missing %S" k)
            [ "name"; "cat"; "ph"; "ts"; "dur"; "pid"; "tid" ];
          Alcotest.(check (option string))
            "complete event" (Some "\"X\"")
            (Option.map Json.to_string (Json.member "ph" ev)))
        evs;
      let outer =
        List.find
          (fun ev -> Json.member "name" ev = Some (Json.Str "outer"))
          evs
      in
      Alcotest.(check (option string))
        "args serialized"
        (Some {|{"n":3,"ok":true}|})
        (Option.map Json.to_string (Json.member "args" outer))
    | _ -> Alcotest.fail "no traceEvents array")

(* --- Metrics ---------------------------------------------------------------- *)

let test_counter_basics () =
  let c = Metrics.counter "test.counter_basics" in
  let v0 = Metrics.value c in
  Metrics.incr c;
  Metrics.add c 4;
  Alcotest.(check int) "incr + add" (v0 + 5) (Metrics.value c);
  Alcotest.(check int) "by name"
    (Metrics.value c)
    (Metrics.counter_value "test.counter_basics");
  Alcotest.(check int) "unknown name is 0" 0
    (Metrics.counter_value "test.never_registered");
  Alcotest.(check bool) "same name, same counter" true
    (Metrics.value (Metrics.counter "test.counter_basics") = Metrics.value c)

let test_kind_mismatch_rejected () =
  ignore (Metrics.counter "test.kind_clash");
  Alcotest.check_raises "histogram over counter"
    (Invalid_argument
       "Mcf_obs.Metrics: \"test.kind_clash\" already registered as another \
        kind")
    (fun () -> ignore (Metrics.histogram "test.kind_clash"))

let test_gauge () =
  let g = Metrics.gauge "test.gauge" in
  Metrics.set g 2.5;
  Metrics.set g (-1.25);
  Alcotest.(check (float 0.0)) "last write wins" (-1.25)
    (Metrics.gauge_value g)

let test_counter_determinism_under_domains () =
  let c = Metrics.counter "test.parallel_counter" in
  let v0 = Metrics.value c in
  let n = 1000 in
  let out =
    Mcf_util.Parallel.map ~domains:4
      (fun i ->
        Metrics.incr c;
        i * 2)
      (List.init n Fun.id)
  in
  Alcotest.(check int) "all increments land" (v0 + n) (Metrics.value c);
  Alcotest.(check (list int))
    "map output still deterministic"
    (List.init n (fun i -> i * 2))
    out

let test_histogram_bucketing () =
  let h = Metrics.histogram "test.hist_buckets" in
  (* Buckets are (2^(e-1), 2^e]: exact powers of two sit at their own
     upper bound, values just above spill into the next bucket. *)
  List.iter (Metrics.observe h)
    [ 0.0; -3.0; 1.0; 2.0; 2.5; 0.75; Float.infinity; Float.nan ];
  let s = Metrics.summary h in
  Alcotest.(check int) "NaN dropped from count" 7 s.hcount;
  Alcotest.(check (float 1e-9)) "min" (-3.0) s.hmin;
  Alcotest.(check (float 0.0)) "max" Float.infinity s.hmax;
  Alcotest.(check bool) "sum is inf (contains inf)" true
    (s.hsum = Float.infinity);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "bucket layout"
    [ (0.0, 2);  (* 0.0 and -3.0: underflow *)
      (1.0, 2);  (* 0.75 and 1.0: (0.5, 1] *)
      (2.0, 1);  (* 2.0 exactly on its bound *)
      (4.0, 1);  (* 2.5 *)
      (Float.infinity, 1) ]
    s.hbuckets

let test_histogram_empty () =
  let h = Metrics.histogram "test.hist_empty" in
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 0 s.hcount;
  Alcotest.(check (float 0.0)) "min" Float.infinity s.hmin;
  Alcotest.(check (float 0.0)) "max" Float.neg_infinity s.hmax;
  Alcotest.(check bool) "no buckets" true (s.hbuckets = [])

let test_metrics_json_deterministic () =
  let j1 = Json.to_string (Metrics.to_json ()) in
  let j2 = Json.to_string (Metrics.to_json ()) in
  Alcotest.(check string) "stable snapshot" j1 j2;
  match Json.parse j1 with
  | Ok v ->
    Alcotest.(check bool) "has counters section" true
      (Json.member "counters" v <> None)
  | Error e -> Alcotest.failf "snapshot does not parse: %s" e

(* --- Profile ---------------------------------------------------------------- *)

let test_profile_aggregates () =
  clean ();
  Profile.enable ();
  for _ = 1 to 3 do
    Trace.with_span "p" (fun () -> Trace.with_span "q" (fun () -> ()))
  done;
  Profile.disable ();
  (match Profile.entries () with
  | [ p; q ] ->
    Alcotest.(check (list string)) "parent first" [ "p" ] p.path;
    Alcotest.(check (list string)) "child keyed by path" [ "p"; "q" ] q.path;
    Alcotest.(check int) "parent count" 3 p.count;
    Alcotest.(check int) "child count" 3 q.count;
    Alcotest.(check bool) "parent covers child" true (p.total_s >= q.total_s)
  | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es));
  Alcotest.(check int) "no trace buffered while profiling" 0
    (List.length (Trace.events ()));
  clean ()

(* --- End-to-end invariants -------------------------------------------------- *)

let test_tuner_metric_invariants () =
  clean ();
  Metrics.reset ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  match Mcf_search.Tuner.tune a100 chain with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok o ->
    let cv = Metrics.counter_value in
    Alcotest.(check int) "valid candidates counted"
      o.funnel.candidates_valid
      (cv "space.candidates_valid");
    Alcotest.(check int) "raw tilings counted" o.funnel.tilings_raw
      (cv "space.tilings_raw");
    Alcotest.(check int) "estimator calls counted" o.search_stats.estimated
      (cv "explore.estimated");
    Alcotest.(check int) "measurements counted" o.search_stats.measured
      (cv "explore.measured");
    Alcotest.(check int) "one sim run per measurement"
      o.search_stats.measured (cv "sim.runs");
    (* one compile per measurement plus the final winning kernel *)
    Alcotest.(check int) "compiles = measured + 1"
      (o.search_stats.measured + 1)
      (cv "codegen.compiles");
    Alcotest.(check bool) "generations counted" true
      (cv "explore.generations" > 0);
    Alcotest.(check int) "one tune" 1 (cv "tuner.tunes");
    Alcotest.(check bool) "phase sum within wall clock" true
      (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 o.phases
      <= o.tuning_wall_s +. 1e-6);
    Alcotest.(check (list string))
      "phases in execution order"
      [ "tuner.enumerate"; "tuner.explore"; "tuner.codegen" ]
      (List.map fst o.phases)

let test_tuner_trace_covers_pipeline () =
  clean ();
  Trace.start ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  (match Mcf_search.Tuner.tune a100 chain with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok _ -> ());
  Trace.stop ();
  let names =
    List.sort_uniq compare
      (List.map (fun (e : Trace.event) -> e.name) (Trace.events ()))
  in
  List.iter
    (fun n ->
      if not (List.mem n names) then Alcotest.failf "span %S missing" n)
    [ "tuner.tune"; "tuner.enumerate"; "space.enumerate"; "space.tilings";
      "space.rule1"; "space.rule2"; "space.rule3"; "space.lower";
      "tuner.explore"; "explore.generation"; "tuner.codegen" ];
  (* every span nests under the root *)
  List.iter
    (fun (e : Trace.event) ->
      Alcotest.(check string)
        (e.name ^ " rooted at tuner.tune") "tuner.tune" (List.hd e.path))
    (Trace.events ());
  clean ()

let test_cache_counters () =
  clean ();
  Metrics.reset ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let file = Filename.temp_file "mcf_obs_cache" ".tsv" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      (match Mcf_search.Schedule_cache.tune_with_cache ~cache_file:file a100
               chain
       with
      | Ok (Some _, _) -> ()
      | Ok (None, _) -> Alcotest.fail "first call must miss"
      | Error _ -> Alcotest.fail "tuner failed");
      match Mcf_search.Schedule_cache.tune_with_cache ~cache_file:file a100
              chain
      with
      | Ok (None, _) ->
        Alcotest.(check int) "one miss" 1 (Metrics.counter_value "cache.misses");
        Alcotest.(check int) "one hit" 1 (Metrics.counter_value "cache.hits");
        Alcotest.(check int) "hits + misses = lookups" 2
          (Metrics.counter_value "cache.hits"
          + Metrics.counter_value "cache.misses")
      | Ok (Some _, _) -> Alcotest.fail "second call must hit"
      | Error _ -> Alcotest.fail "tuner failed")

let test_tracing_does_not_perturb_tuning () =
  clean ();
  let chain = Mcf_ir.Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 () in
  let run () =
    match Mcf_search.Tuner.tune a100 chain with
    | Ok o ->
      (Mcf_ir.Candidate.to_string o.best.cand, o.kernel_time_s,
       o.search_stats.measured)
    | Error _ -> Alcotest.fail "tuner failed"
  in
  let plain = run () in
  Trace.start ();
  Profile.enable ();
  let traced = run () in
  clean ();
  Alcotest.(check bool) "identical outcome with tracing on" true
    (plain = traced)

let () =
  Alcotest.run "obs"
    [ ( "json",
        [ Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "integral floats" `Quick
            test_json_integral_floats;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member" `Quick test_json_member ] );
      ( "trace",
        [ Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "args + exceptions" `Quick
            test_span_args_and_exceptions;
          Alcotest.test_case "zero-cost when off" `Quick
            test_span_zero_cost_when_off;
          Alcotest.test_case "timed always measures" `Quick
            test_timed_always_measures;
          Alcotest.test_case "chrome export" `Quick test_chrome_json_export ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_counter_basics;
          Alcotest.test_case "kind mismatch" `Quick
            test_kind_mismatch_rejected;
          Alcotest.test_case "gauge" `Quick test_gauge;
          Alcotest.test_case "parallel counters" `Quick
            test_counter_determinism_under_domains;
          Alcotest.test_case "histogram buckets" `Quick
            test_histogram_bucketing;
          Alcotest.test_case "histogram empty" `Quick test_histogram_empty;
          Alcotest.test_case "json snapshot" `Quick
            test_metrics_json_deterministic ] );
      ( "profile",
        [ Alcotest.test_case "aggregates by path" `Quick
            test_profile_aggregates ] );
      ( "pipeline",
        [ Alcotest.test_case "tuner counters" `Quick
            test_tuner_metric_invariants;
          Alcotest.test_case "trace covers pipeline" `Quick
            test_tuner_trace_covers_pipeline;
          Alcotest.test_case "cache hit/miss" `Quick test_cache_counters;
          Alcotest.test_case "no perturbation" `Quick
            test_tracing_does_not_perturb_tuning ] ) ]
