(* Tests for the batched measurement engine: bit-identity of the parallel
   stage against the sequential one, cache transparency (off = cold = warm),
   JSONL warm-start round-trips, in-flight dedup, and the Shardmap backing
   store's LRU/exception behaviour. *)

open Mcf_ir
module Measure = Mcf_search.Measure
module Shardmap = Mcf_util.Shardmap

let a100 = Mcf_gpu.Spec.a100
let small_gemm = Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ()

let params =
  { Mcf_search.Explore.default_params with
    population = 32;
    top_k = 8;
    min_generations = 2;
    max_generations = 4 }

let with_jobs n f =
  let saved = Mcf_util.Pool.jobs () in
  Mcf_util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Mcf_util.Pool.set_jobs saved) f

let outcome_fingerprint (o : Mcf_search.Tuner.outcome) =
  Printf.sprintf "best=%s time=%h tuning=%h stats=%d/%d/%d"
    (Candidate.key o.best.Mcf_search.Space.cand)
    o.kernel_time_s o.tuning_virtual_s
    o.search_stats.Mcf_search.Explore.generations
    o.search_stats.Mcf_search.Explore.estimated
    o.search_stats.Mcf_search.Explore.measured

let fingerprint = function
  | Ok o -> outcome_fingerprint o
  | Error Mcf_search.Tuner.No_viable_candidate -> "no-viable-candidate"

let tune ?measure () =
  fingerprint (Mcf_search.Tuner.tune ~params ?measure a100 small_gemm)

let counter = Mcf_obs.Metrics.counter_value

(* --- parallel vs sequential bit-identity ----------------------------------- *)

let test_parallel_matches_sequential () =
  let seq =
    with_jobs 1 (fun () ->
        tune ~measure:(Measure.create ~sequential:true a100) ())
  in
  List.iter
    (fun jobs ->
      let par = with_jobs jobs (fun () -> tune ()) in
      Alcotest.(check string)
        (Printf.sprintf "jobs %d == sequential" jobs)
        seq par)
    [ 1; 4 ]

let test_run_batch_drain_order () =
  (* Same batch through a parallel and a sequential engine: commits must
     arrive in rank order with bit-identical results, and the virtual
     clock must accumulate the same float. *)
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let batch =
    List.filteri (fun i _ -> i < 8) entries |> List.mapi (fun i e -> (i, e))
  in
  let run engine =
    let clock = Mcf_gpu.Clock.create () in
    let commits = ref [] in
    Measure.run_batch engine ~clock ~compile_cost_s:0.8 ~repeats:10
      ~commit:(fun id r -> commits := (id, r) :: !commits)
      batch;
    (List.rev !commits, Mcf_gpu.Clock.elapsed_s clock)
  in
  let seq_commits, seq_clock = run (Measure.create ~sequential:true a100) in
  let par_commits, par_clock = with_jobs 4 (fun () -> run (Measure.create a100)) in
  Alcotest.(check (list (pair int (option (float 0.0)))))
    "commits identical in rank order" seq_commits par_commits;
  Alcotest.(check int)
    "commit per id" (List.length batch)
    (List.length par_commits);
  Alcotest.(check (float 0.0)) "virtual clock identical" seq_clock par_clock

(* --- cache transparency ----------------------------------------------------- *)

let test_cache_off_cold_warm_identical () =
  let off = tune () in
  let cache = Measure.cache_create () in
  let h0 = counter "measure.cache.hits" in
  let m0 = counter "measure.cache.misses" in
  let cold = tune ~measure:(Measure.create ~cache a100) () in
  let h1 = counter "measure.cache.hits" in
  let m1 = counter "measure.cache.misses" in
  Alcotest.(check string) "cold == cache-off" off cold;
  Alcotest.(check int) "cold run only misses" 0 (h1 - h0);
  Alcotest.(check int)
    "one miss per distinct key" (Measure.cache_size cache) (m1 - m0);
  let warm = tune ~measure:(Measure.create ~cache a100) () in
  let h2 = counter "measure.cache.hits" in
  let m2 = counter "measure.cache.misses" in
  Alcotest.(check string) "warm == cache-off" off warm;
  Alcotest.(check int) "warm run never misses" 0 (m2 - m1);
  Alcotest.(check bool) "warm run hits" true (h2 - h1 > 0)

let test_warm_start_round_trip () =
  let cache = Measure.cache_create () in
  let baseline = tune ~measure:(Measure.create ~cache a100) () in
  let path = Filename.temp_file "mcf_measure" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let written = Measure.cache_save cache path in
      Alcotest.(check int)
        "one line per entry" (Measure.cache_size cache) written;
      let fresh = Measure.cache_create () in
      let loaded, malformed = Measure.cache_load fresh path in
      Alcotest.(check int) "all lines load" written loaded;
      Alcotest.(check int) "no malformed lines" 0 malformed;
      let m0 = counter "measure.cache.misses" in
      let warm = tune ~measure:(Measure.create ~cache:fresh a100) () in
      let m1 = counter "measure.cache.misses" in
      Alcotest.(check string) "warm-started == original" baseline warm;
      Alcotest.(check int) "warm start never simulates" 0 (m1 - m0))

let test_malformed_lines_counted_and_skipped () =
  let path = Filename.temp_file "mcf_measure" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        {|{"key":"k1","time_s":1.5e-06}
not json at all
{"key":42,"time_s":1.0}
{"time_s":1.0}
{"key":"k2","time_s":null}
|};
      close_out oc;
      let cache = Measure.cache_create () in
      let loaded, malformed = Measure.cache_load cache path in
      Alcotest.(check int) "two good lines" 2 loaded;
      Alcotest.(check int) "three malformed lines" 3 malformed;
      Alcotest.(check int) "resident entries" 2 (Measure.cache_size cache))

let test_missing_file_is_empty () =
  let cache = Measure.cache_create () in
  Alcotest.(check (pair int int))
    "missing file loads nothing" (0, 0)
    (Measure.cache_load cache "/nonexistent/mcf_measure_cache.jsonl")

(* --- in-flight dedup --------------------------------------------------------- *)

let test_inflight_dedup_two_domains () =
  (* Two domains race find_or_compute on one key with a slow thunk: the
     thunk runs exactly once and the late domain observes Waited (or Hit
     if it arrives after completion). *)
  let sm = Shardmap.create ~shards:4 () in
  let runs = Atomic.make 0 in
  let compute () =
    Shardmap.find_or_compute sm "the-key" (fun () ->
        Atomic.incr runs;
        Unix.sleepf 0.05;
        42)
  in
  let d = Domain.spawn compute in
  let a = compute () in
  let b = Domain.join d in
  Alcotest.(check int) "thunk ran once" 1 (Atomic.get runs);
  List.iter
    (fun (_, v) -> Alcotest.(check int) "both observe the value" 42 v)
    [ a; b ];
  let computed =
    List.length
      (List.filter (fun (o, _) -> o = Shardmap.Computed) [ a; b ])
  in
  Alcotest.(check int) "exactly one Computed" 1 computed

let test_concurrent_runs_share_cache () =
  (* Two domains measure the same batch through sequential engines sharing
     one cache: each key is simulated at most once process-wide, and both
     drains commit identical results. *)
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let batch =
    List.filteri (fun i _ -> i < 8) entries |> List.mapi (fun i e -> (i, e))
  in
  let cache = Measure.cache_create () in
  let run () =
    let engine = Measure.create ~cache ~sequential:true a100 in
    let clock = Mcf_gpu.Clock.create () in
    let commits = ref [] in
    Measure.run_batch engine ~clock ~compile_cost_s:0.8 ~repeats:10
      ~commit:(fun id r -> commits := (id, r) :: !commits)
      batch;
    List.rev !commits
  in
  let m0 = counter "measure.cache.misses" in
  let d = Domain.spawn run in
  let a = run () in
  let b = Domain.join d in
  let m1 = counter "measure.cache.misses" in
  Alcotest.(check (list (pair int (option (float 0.0)))))
    "both drains commit identical results" a b;
  Alcotest.(check int)
    "each key simulated once across domains" (Measure.cache_size cache)
    (m1 - m0)

(* --- Shardmap ---------------------------------------------------------------- *)

let test_shardmap_lru_eviction () =
  let sm = Shardmap.create ~shards:1 ~capacity_per_shard:2 () in
  Shardmap.set sm "a" 1;
  Shardmap.set sm "b" 2;
  Shardmap.set sm "c" 3;
  Alcotest.(check int) "capacity bound holds" 2 (Shardmap.length sm);
  Alcotest.(check (option int)) "oldest evicted" None (Shardmap.find sm "a");
  Alcotest.(check (option int)) "newest kept" (Some 3) (Shardmap.find sm "c");
  (* touching "b" then inserting evicts "c", not "b" *)
  ignore (Shardmap.find sm "b");
  Shardmap.set sm "d" 4;
  Alcotest.(check (option int)) "touched survives" (Some 2)
    (Shardmap.find sm "b");
  Alcotest.(check (option int)) "untouched evicted" None (Shardmap.find sm "c")

let test_shardmap_exception_cleanup () =
  let sm = Shardmap.create ~shards:1 () in
  (match Shardmap.find_or_compute sm "k" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "exception swallowed"
  | exception Failure m -> Alcotest.(check string) "propagates" "boom" m);
  Alcotest.(check (option int)) "pending removed" None (Shardmap.find sm "k");
  let outcome, v = Shardmap.find_or_compute sm "k" (fun () -> 7) in
  Alcotest.(check bool) "recomputes" true (outcome = Shardmap.Computed);
  Alcotest.(check int) "value cached" 7 v

(* --- Schedule_cache legacy format ------------------------------------------- *)

let test_schedule_cache_legacy_fixture () =
  (* A file written before Candidate.serialize was extracted must still
     load: the on-disk line format is pinned here by hand. *)
  let path = Filename.temp_file "mcf_sched" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc
        "gemm_chain_b1_m256_n128_k64_h64|A100|deep:m,h,n,k;h=16,k=16,m=32,n=32|1.234000000e-06\n";
      close_out oc;
      let t = Mcf_search.Schedule_cache.load ~chains:[ small_gemm ] path in
      Alcotest.(check int) "legacy line loads" 1
        (Mcf_search.Schedule_cache.size t);
      match
        Mcf_search.Schedule_cache.lookup t ~chain:small_gemm ~device:"A100"
      with
      | None -> Alcotest.fail "legacy entry not found"
      | Some e ->
        Alcotest.(check (float 0.0)) "time round-trips" 1.234e-06 e.etime_s;
        Alcotest.(check string) "candidate round-trips"
          "deep:m,h,n,k;h=16,k=16,m=32,n=32"
          (Mcf_search.Schedule_cache.serialize_candidate e.ecand))

let () =
  Alcotest.run "measure"
    [ ( "bit-identity",
        [ Alcotest.test_case "tune: parallel == sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "run_batch: drain order and clock" `Quick
            test_run_batch_drain_order
        ] );
      ( "cache",
        [ Alcotest.test_case "off == cold == warm" `Quick
            test_cache_off_cold_warm_identical;
          Alcotest.test_case "JSONL warm-start round-trip" `Quick
            test_warm_start_round_trip;
          Alcotest.test_case "malformed lines counted and skipped" `Quick
            test_malformed_lines_counted_and_skipped;
          Alcotest.test_case "missing file is empty" `Quick
            test_missing_file_is_empty
        ] );
      ( "concurrency",
        [ Alcotest.test_case "in-flight dedup across domains" `Quick
            test_inflight_dedup_two_domains;
          Alcotest.test_case "concurrent runs share one cache" `Quick
            test_concurrent_runs_share_cache
        ] );
      ( "shardmap",
        [ Alcotest.test_case "LRU eviction" `Quick test_shardmap_lru_eviction;
          Alcotest.test_case "exception cleanup" `Quick
            test_shardmap_exception_cleanup
        ] );
      ( "schedule-cache",
        [ Alcotest.test_case "legacy on-disk format" `Quick
            test_schedule_cache_legacy_fixture
        ] )
    ]
