(* Tests for the live telemetry surface: Prometheus text exposition
   (golden renderings, label escaping, cumulative bucket construction),
   the structural exposition validator, the Httpd listener lifecycle
   (concurrent requests, graceful shutdown, port conflicts), the
   /status endpoint, the shared JSONL fold helpers, the structured log
   reporter, and the end-to-end invariant that a live listener being
   hammered mid-search never perturbs tuner results. *)

open Mcf_ir
module Export = Mcf_obs.Export
module Metrics = Mcf_obs.Metrics
module Progress = Mcf_obs.Progress
module Httpd = Mcf_util.Httpd
module Json = Mcf_util.Json

let a100 = Mcf_gpu.Spec.a100
let small_gemm = Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ()

(* Only look at the [tst.*] metrics a test registered itself: the
   registry is process-global and other tests bump the real counters. *)
let only prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

(* --- exposition ------------------------------------------------------------- *)

let test_export_counter_gauge () =
  let c = Metrics.counter "tst.exp.count" in
  let g = Metrics.gauge "tst.exp.gauge" in
  Metrics.add c 42;
  Metrics.set g 2.5;
  Alcotest.(check string)
    "golden"
    "# TYPE mcfuser_tst_exp_count counter\n\
     mcfuser_tst_exp_count 42\n\
     # TYPE mcfuser_tst_exp_gauge gauge\n\
     mcfuser_tst_exp_gauge 2.5\n"
    (Export.metrics_text ~filter:(only "tst.exp.") ())

let test_export_label_escaping () =
  let c = Metrics.counter "tst.esc.count" in
  Metrics.add c 1;
  let text =
    Export.metrics_text
      ~labels:[ ("workload", "g\"e\\m\nm") ]
      ~filter:(only "tst.esc.") ()
  in
  Alcotest.(check string)
    "escaped"
    "# TYPE mcfuser_tst_esc_count counter\n\
     mcfuser_tst_esc_count{workload=\"g\\\"e\\\\m\\nm\"} 1\n"
    text;
  (* and the validator's parser must round-trip the escapes *)
  Alcotest.(check (result unit string)) "validates" (Ok ())
    (Export.validate_metrics_text text)

let test_export_histogram () =
  let h = Metrics.histogram "tst.exp.lat" in
  Metrics.observe h (-1.0);
  (* underflow bucket, bound 0 *)
  Metrics.observe h 0.5;
  Metrics.observe h 3.0;
  Metrics.observe h 3.5;
  let text = Export.metrics_text ~filter:(only "tst.exp.lat") () in
  Alcotest.(check string)
    "cumulative buckets"
    "# TYPE mcfuser_tst_exp_lat histogram\n\
     mcfuser_tst_exp_lat_bucket{le=\"0\"} 1\n\
     mcfuser_tst_exp_lat_bucket{le=\"0.5\"} 2\n\
     mcfuser_tst_exp_lat_bucket{le=\"4\"} 4\n\
     mcfuser_tst_exp_lat_bucket{le=\"+Inf\"} 4\n\
     mcfuser_tst_exp_lat_sum 6\n\
     mcfuser_tst_exp_lat_count 4\n"
    text;
  (* _sum/_count agree with the registry's own summary *)
  let s = Metrics.summary h in
  Alcotest.(check int) "count" 4 s.Metrics.hcount;
  Alcotest.(check (float 1e-9)) "sum" 6.0 s.Metrics.hsum;
  Alcotest.(check (result unit string)) "validates" (Ok ())
    (Export.validate_metrics_text text)

let test_export_full_registry_validates () =
  (* Whatever state earlier tests (and the tuner) left behind, the full
     exposition must be structurally sound. *)
  let h = Metrics.histogram "tst.full.lat" in
  Metrics.observe h 1e-4;
  Metrics.observe h 12.0;
  match Export.validate_metrics_text (Export.metrics_text ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "full exposition invalid: %s" e

let test_validator_rejects () =
  let check_err name text =
    match Export.validate_metrics_text text with
    | Ok () -> Alcotest.failf "%s: validator accepted bad exposition" name
    | Error _ -> ()
  in
  check_err "non-monotonic cumulative"
    "x_bucket{le=\"1\"} 5\n\
     x_bucket{le=\"2\"} 3\n\
     x_bucket{le=\"+Inf\"} 5\nx_sum 1\nx_count 5\n";
  check_err "descending le bounds"
    "x_bucket{le=\"2\"} 1\n\
     x_bucket{le=\"1\"} 2\n\
     x_bucket{le=\"+Inf\"} 2\nx_sum 1\nx_count 2\n";
  check_err "missing +Inf bucket" "x_bucket{le=\"1\"} 2\nx_sum 1\nx_count 2\n";
  check_err "count mismatch"
    "x_bucket{le=\"+Inf\"} 4\nx_sum 1\nx_count 5\n";
  check_err "missing _sum" "x_bucket{le=\"+Inf\"} 4\nx_count 4\n";
  check_err "malformed comment" "#bad comment\n";
  check_err "malformed sample" "not a sample line!\n"

(* --- httpd ------------------------------------------------------------------- *)

let start_echo ?max_connections ?(delay_s = 0.0) () =
  let handler (req : Httpd.request) =
    if delay_s > 0.0 then Thread.delay delay_s;
    let q =
      String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ v) req.Httpd.query)
    in
    Httpd.response
      (Printf.sprintf "%s %s [%s]" req.Httpd.meth req.Httpd.path q)
  in
  match Httpd.start ?max_connections ~addr:"127.0.0.1" ~port:0 ~handler () with
  | Ok t -> t
  | Error e -> Alcotest.failf "httpd start: %s" e

let test_httpd_roundtrip () =
  let t = start_echo () in
  Fun.protect
    ~finally:(fun () -> Httpd.stop t)
    (fun () ->
      Alcotest.(check bool) "kernel-assigned port" true (Httpd.port t > 0);
      Alcotest.(check bool) "running" true (Httpd.running t);
      match Httpd.Client.get (Httpd.url t ^ "/echo?a=1&b=2") with
      | Ok (status, body) ->
        Alcotest.(check int) "status" 200 status;
        Alcotest.(check string) "body" "GET /echo [a=1;b=2]" body
      | Error e -> Alcotest.failf "get: %s" e);
  Alcotest.(check bool) "stopped" false (Httpd.running t);
  (* idempotent stop *)
  Httpd.stop t

let test_httpd_concurrent () =
  let t = start_echo ~delay_s:0.1 () in
  Fun.protect
    ~finally:(fun () -> Httpd.stop t)
    (fun () ->
      let results = Array.make 4 (Error "unset") in
      let workers =
        Array.init 4 (fun i ->
            Thread.create
              (fun () ->
                results.(i) <- Httpd.Client.get (Httpd.url t ^ "/c"))
              ())
      in
      Array.iter Thread.join workers;
      Array.iteri
        (fun i r ->
          match r with
          | Ok (200, _) -> ()
          | Ok (status, _) -> Alcotest.failf "request %d: HTTP %d" i status
          | Error e -> Alcotest.failf "request %d: %s" i e)
        results)

let test_httpd_shutdown_drains () =
  (* stop must let the in-flight request finish, not sever it *)
  let t = start_echo ~delay_s:0.4 () in
  let result = ref (Error "unset") in
  let worker =
    Thread.create (fun () -> result := Httpd.Client.get (Httpd.url t ^ "/d")) ()
  in
  Thread.delay 0.1;
  Httpd.stop t;
  Thread.join worker;
  match !result with
  | Ok (200, body) ->
    Alcotest.(check string) "drained response" "GET /d []" body
  | Ok (status, _) -> Alcotest.failf "HTTP %d" status
  | Error e -> Alcotest.failf "in-flight request severed: %s" e

let test_httpd_port_in_use () =
  let t = start_echo () in
  Fun.protect
    ~finally:(fun () -> Httpd.stop t)
    (fun () ->
      match
        Httpd.start ~addr:"127.0.0.1" ~port:(Httpd.port t)
          ~handler:(fun _ -> Httpd.response "x")
          ()
      with
      | Ok t2 ->
        Httpd.stop t2;
        Alcotest.fail "second bind on a busy port succeeded"
      | Error e ->
        Alcotest.(check bool) "mentions the failure" true (String.length e > 0))

let test_httpd_bad_addr () =
  match
    Httpd.start ~addr:"not-an-address" ~port:0
      ~handler:(fun _ -> Httpd.response "x")
      ()
  with
  | Ok t ->
    Httpd.stop t;
    Alcotest.fail "bogus address accepted"
  | Error _ -> ()

(* --- endpoints --------------------------------------------------------------- *)

let test_endpoints_live () =
  match Export.serve ~listen:"127.0.0.1:0" with
  | Error e -> Alcotest.failf "serve: %s" e
  | Ok t ->
    Fun.protect
      ~finally:(fun () -> Export.shutdown t)
      (fun () ->
        let url = Httpd.url t in
        Progress.set_phase "tst.live";
        (match Httpd.Client.get (url ^ "/status") with
        | Ok (200, body) -> (
          match Json.parse (String.trim body) with
          | Ok j ->
            Alcotest.(check bool) "phase recorded via track" true
              (Json.member "phase" j = Some (Json.Str "tst.live"));
            Alcotest.(check bool) "funnel present" true
              (Json.member "funnel" j <> None);
            Alcotest.(check bool) "rsrc sampled" true
              (match Json.member "rsrc" j with
              | Some rs -> (
                match Json.member "heap_words" rs with
                | Some (Json.Num w) -> w > 0.0
                | _ -> false)
              | None -> false)
          | Error e -> Alcotest.failf "/status JSON: %s" e)
        | Ok (status, _) -> Alcotest.failf "/status: HTTP %d" status
        | Error e -> Alcotest.failf "/status: %s" e);
        (match Httpd.Client.get (url ^ "/healthz") with
        | Ok (200, body) -> Alcotest.(check string) "healthz" "ok\n" body
        | _ -> Alcotest.fail "/healthz failed");
        (match Httpd.Client.get (url ^ "/nope") with
        | Ok (404, _) -> ()
        | _ -> Alcotest.fail "unknown path should 404");
        match Export.selfcheck t with
        | Ok () -> ()
        | Error e -> Alcotest.failf "selfcheck: %s" e)

let test_listen_parse_errors () =
  let bad listen =
    match Export.serve ~listen with
    | Ok t ->
      Export.shutdown t;
      Alcotest.failf "accepted %S" listen
    | Error _ -> ()
  in
  bad "bogus";
  bad "127.0.0.1:notaport";
  bad "127.0.0.1:70000"

(* --- fold helpers ------------------------------------------------------------ *)

let with_temp_file lines f =
  let path = Filename.temp_file "mcf_fold" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      List.iter (fun l -> output_string oc (l ^ "\n")) lines;
      close_out oc;
      f path)

let test_fold_jsonl () =
  with_temp_file
    [ {|{"v":1}|};
      "not json at all";
      "";
      (* blank lines are not malformed *)
      {|{"other":true}|};
      (* well-formed JSON the caller rejects *)
      {|{"v":3}|}
    ]
    (fun path ->
      let vs, skipped =
        Json.fold_jsonl ~path ~init:[] ~f:(fun acc j ->
            match Json.member "v" j with
            | Some (Json.Num v) -> Some (v :: acc)
            | _ -> None)
      in
      Alcotest.(check (list (float 0.0))) "accepted" [ 3.0; 1.0 ] vs;
      Alcotest.(check int) "skipped" 2 skipped)

let test_fold_lines_missing_file () =
  let acc, skipped =
    Json.fold_lines ~path:"/nonexistent/mcf_fold_probe" ~init:7
      ~f:(fun _ _ -> Alcotest.fail "f called for a missing file")
  in
  Alcotest.(check int) "init returned" 7 acc;
  Alcotest.(check int) "nothing skipped" 0 skipped

(* --- structured logging ------------------------------------------------------ *)

let capture_log format emit =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Logs.set_reporter (Mcf_obs.Logfmt.reporter ~ppf format);
  Logs.set_level ~all:true (Some Logs.Info);
  Fun.protect
    ~finally:(fun () ->
      Logs.set_reporter (Logs.nop_reporter);
      Logs.set_level ~all:true None)
    (fun () ->
      emit ();
      Format.pp_print_flush ppf ();
      Buffer.contents buf)

let test_logfmt_json () =
  let src = Logs.Src.create "tst.logfmt" in
  let module L = (val Logs.src_log src : Logs.LOG) in
  let out =
    capture_log Mcf_obs.Logfmt.Json (fun () -> L.info (fun m -> m "hello %d" 42))
  in
  match Json.parse (String.trim out) with
  | Error e -> Alcotest.failf "log line is not JSON (%s): %s" e out
  | Ok j ->
    Alcotest.(check bool) "level" true
      (Json.member "level" j = Some (Json.Str "info"));
    Alcotest.(check bool) "src" true
      (Json.member "src" j = Some (Json.Str "tst.logfmt"));
    Alcotest.(check bool) "msg" true
      (Json.member "msg" j = Some (Json.Str "hello 42"));
    (match Json.member "time" j with
    | Some (Json.Str t) ->
      Alcotest.(check bool) "ISO-8601 UTC" true
        (String.length t = 24 && t.[10] = 'T' && t.[23] = 'Z')
    | _ -> Alcotest.fail "missing time field")

let test_logfmt_text () =
  let src = Logs.Src.create "tst.logtext" in
  let module L = (val Logs.src_log src : Logs.LOG) in
  let out =
    capture_log Mcf_obs.Logfmt.Text (fun () -> L.warn (fun m -> m "watch out"))
  in
  let contains needle =
    let n = String.length needle and m = String.length out in
    let rec go i = i + n <= m && (String.sub out i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "level tag" true (contains "WARN");
  Alcotest.(check bool) "source tag" true (contains "[tst.logtext]");
  Alcotest.(check bool) "message" true (contains "watch out");
  Alcotest.(check bool) "UTC timestamp" true
    (String.length out > 24 && out.[10] = 'T')

(* --- progress tracking ------------------------------------------------------- *)

let test_progress_track_snapshot () =
  Progress.track ();
  Fun.protect ~finally:Progress.untrack (fun () ->
      Progress.set_phase "tst.phase";
      Progress.set_info "1724 points";
      Progress.generation ~gen:1 ~max_gen:10 ~measured:3;
      Progress.generation ~gen:3 ~max_gen:10 ~measured:9;
      let s = Progress.snapshot () in
      Alcotest.(check string) "phase" "tst.phase" s.Progress.sphase;
      Alcotest.(check string) "info" "1724 points" s.Progress.sinfo;
      Alcotest.(check int) "gen" 3 s.Progress.sgen;
      Alcotest.(check int) "max_gen" 10 s.Progress.smax_gen;
      Alcotest.(check int) "measured" 9 s.Progress.smeasured;
      Alcotest.(check bool) "eta from gen 2 on" true (s.Progress.seta_s <> None);
      Alcotest.(check bool) "elapsed runs" true (s.Progress.selapsed_s >= 0.0));
  (* after untrack, updates are gated off again *)
  Progress.set_phase "tst.ignored";
  let s = Progress.snapshot () in
  Alcotest.(check string) "untracked updates dropped" "tst.phase"
    s.Progress.sphase

(* --- listener bit-identity ---------------------------------------------------- *)

let test_tuner_listener_identity () =
  (* ISSUE 9 acceptance: the telemetry surface is strictly observational.
     Tuner outcomes must be bit-identical with the listener off or on —
     even while a poller hammers /status and /metrics mid-search — at
     any pool size. *)
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Mcf_util.Pool.set_jobs saved)
    (fun () ->
      let fingerprint (o : Mcf_search.Tuner.outcome) =
        let f = o.funnel and s = o.search_stats in
        Printf.sprintf "%s|%.17g|%.17g|%d/%d/%d/%.17g/%.17g/%d/%d|%d/%d/%d"
          (Candidate.key o.best.cand)
          o.kernel_time_s o.tuning_virtual_s f.tilings_raw f.tilings_rule1
          f.tilings_rule2 f.candidates_raw f.candidates_rule3
          f.candidates_rule4 f.candidates_valid s.generations s.estimated
          s.measured
      in
      let tune () =
        match Mcf_search.Tuner.tune ~seed:7 a100 small_gemm with
        | Ok o -> fingerprint o
        | Error _ -> Alcotest.fail "tuner failed"
      in
      let run ~jobs ~listen =
        Mcf_util.Pool.set_jobs jobs;
        if not listen then tune ()
        else
          match Export.serve ~listen:"127.0.0.1:0" with
          | Error e -> Alcotest.failf "serve: %s" e
          | Ok t ->
            let stop = Atomic.make false in
            let poller =
              Thread.create
                (fun () ->
                  let url = Httpd.url t in
                  while not (Atomic.get stop) do
                    ignore (Httpd.Client.get (url ^ "/status"));
                    ignore (Httpd.Client.get (url ^ "/metrics"))
                  done)
                ()
            in
            Fun.protect
              ~finally:(fun () ->
                Atomic.set stop true;
                Thread.join poller;
                Export.shutdown t)
              tune
      in
      List.iter
        (fun jobs ->
          let base = run ~jobs ~listen:false in
          let listened = run ~jobs ~listen:true in
          Alcotest.(check string)
            (Printf.sprintf "identical at jobs=%d" jobs)
            base listened)
        [ 1; 4 ])

(* ----------------------------------------------------------------------------- *)

let () =
  Alcotest.run "mcf_telemetry"
    [ ( "export",
        [ Alcotest.test_case "counter and gauge golden" `Quick
            test_export_counter_gauge;
          Alcotest.test_case "label escaping" `Quick test_export_label_escaping;
          Alcotest.test_case "histogram buckets" `Quick test_export_histogram;
          Alcotest.test_case "full registry validates" `Quick
            test_export_full_registry_validates;
          Alcotest.test_case "validator rejects" `Quick test_validator_rejects
        ] );
      ( "httpd",
        [ Alcotest.test_case "roundtrip" `Quick test_httpd_roundtrip;
          Alcotest.test_case "concurrent requests" `Quick test_httpd_concurrent;
          Alcotest.test_case "shutdown drains in-flight" `Quick
            test_httpd_shutdown_drains;
          Alcotest.test_case "port in use" `Quick test_httpd_port_in_use;
          Alcotest.test_case "bad address" `Quick test_httpd_bad_addr
        ] );
      ( "endpoints",
        [ Alcotest.test_case "status/healthz/selfcheck" `Quick
            test_endpoints_live;
          Alcotest.test_case "listen parse errors" `Quick
            test_listen_parse_errors
        ] );
      ( "fold",
        [ Alcotest.test_case "fold_jsonl count-and-skip" `Quick test_fold_jsonl;
          Alcotest.test_case "missing file" `Quick test_fold_lines_missing_file
        ] );
      ( "logfmt",
        [ Alcotest.test_case "json lines" `Quick test_logfmt_json;
          Alcotest.test_case "text lines" `Quick test_logfmt_text
        ] );
      ( "progress",
        [ Alcotest.test_case "track and snapshot" `Quick
            test_progress_track_snapshot
        ] );
      ( "identity",
        [ Alcotest.test_case "listener never perturbs the tuner" `Quick
            test_tuner_listener_identity
        ] )
    ]
