(* Correctness tests: the tile-level interpreter executing fused schedules
   must agree with the reference operators for every valid candidate —
   across deep/flat tilings, dead loops, padding, online softmax, partial
   reductions, and 3-operator chains.  The property tests draw random
   candidates from the full structural space. *)

open Mcf_ir
module T = Mcf_tensor.Tensor
module Ops = Mcf_tensor.Ops

let rng = Mcf_util.Rng.create 987654

let inputs_for chain =
  List.map
    (fun (ts : Chain.tensor_spec) ->
      let dims = List.map (fun (a : Axis.t) -> a.size) ts.taxes in
      let shape =
        Array.of_list
          (if chain.Chain.batch > 1 then chain.Chain.batch :: dims else dims)
      in
      (ts.tname, T.random rng shape))
    (Chain.input_tensors chain)

let check_candidate ?(tol = 1e-3) name chain cand =
  let p = Program.build chain cand in
  (match Program.validate p with
  | Error e ->
    Alcotest.failf "%s: invalid: %s" name (Program.string_of_invalid e)
  | Ok () -> ());
  let inputs = inputs_for chain in
  let got = Mcf_interp.Interp.run p ~inputs in
  let want = Mcf_interp.Interp.reference chain ~inputs in
  if not (T.approx_equal ~tol got want) then
    Alcotest.failf "%s: fused differs from reference by %g" name
      (T.max_abs_diff got want)

let gemm = Chain.gemm_chain ~m:96 ~n:80 ~k:64 ~h:48 ()
let ax c s = Chain.axis c s
let gm = ax gemm "m"
let gn = ax gemm "n"
let gk = ax gemm "k"
let gh = ax gemm "h"

let attn = Chain.attention ~m:64 ~n:64 ~k:32 ~h:32 ()
let am = ax attn "m"
let an = ax attn "n"
let akk = ax attn "k"
let ah = ax attn "h"

(* --- GEMM chain schedules ------------------------------------------------- *)

let test_gemm_mhnk () =
  check_candidate "mhnk" gemm
    (Candidate.make
       (Tiling.Deep [ gm; gh; gn; gk ])
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_gemm_dead_k () =
  check_candidate "mhnk full k" gemm
    (Candidate.make
       (Tiling.Deep [ gm; gh; gn; gk ])
       [ ("m", 32); ("n", 16); ("k", 64); ("h", 16) ])

let test_gemm_kn_partial () =
  check_candidate "kn partial" gemm
    (Candidate.make
       (Tiling.Deep [ gm; gh; gk; gn ])
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_gemm_flat () =
  check_candidate "flat mn(k,h)" gemm
    (Candidate.make
       (Tiling.Flat ([ gm; gn ], [ [ gk ]; [ gh ] ]))
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_gemm_flat_reversed_prefix () =
  check_candidate "flat nm(k,h)" gemm
    (Candidate.make
       (Tiling.Flat ([ gn; gm ], [ [ gk ]; [ gh ] ]))
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_gemm_reduce_first () =
  check_candidate "nmkh (reduce-leading)" gemm
    (Candidate.make
       (Tiling.Deep [ gn; gm; gk; gh ])
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_gemm_padding () =
  check_candidate "padding" gemm
    (Candidate.make
       (Tiling.Deep [ gm; gh; gn; gk ])
       [ ("m", 80); ("n", 48); ("k", 48); ("h", 32) ])

let test_gemm_single_block () =
  check_candidate "whole-tensor tiles" gemm
    (Candidate.make
       (Tiling.Deep [ gm; gh; gn; gk ])
       [ ("m", 96); ("n", 80); ("k", 64); ("h", 48) ])

let test_gemm_no_rule1 () =
  let cand =
    Candidate.make
      (Tiling.Deep [ gm; gn; gk; gh ])
      [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ]
  in
  let p = Program.build ~rule1:false gemm cand in
  let inputs = inputs_for gemm in
  let got = Mcf_interp.Interp.run p ~inputs in
  let want = Mcf_interp.Interp.reference gemm ~inputs in
  Alcotest.(check bool) "redundant-compute schedule still correct" true
    (T.approx_equal ~tol:1e-3 got want)

let test_gemm_no_dead_loop_elim () =
  let cand =
    Candidate.make
      (Tiling.Deep [ gm; gh; gn; gk ])
      [ ("m", 32); ("n", 16); ("k", 64); ("h", 16) ]
  in
  let p = Program.build ~dead_loop_elim:false gemm cand in
  let inputs = inputs_for gemm in
  let got = Mcf_interp.Interp.run p ~inputs in
  let want = Mcf_interp.Interp.reference gemm ~inputs in
  Alcotest.(check bool) "unoptimized placement still correct" true
    (T.approx_equal ~tol:1e-3 got want)

(* --- attention schedules -------------------------------------------------- *)

let attn_tiles m n k h = [ ("m", m); ("n", n); ("k", k); ("h", h) ]

let test_attn_online () =
  check_candidate "attention online" attn
    (Candidate.make (Tiling.Deep [ am; ah; an; akk ]) (attn_tiles 32 16 32 32))

let test_attn_online_tiled_k () =
  check_candidate "attention online tiled k" attn
    (Candidate.make (Tiling.Deep [ am; ah; an; akk ]) (attn_tiles 32 16 16 32))

let test_attn_offline () =
  check_candidate "attention offline (full n)" attn
    (Candidate.make (Tiling.Deep [ am; ah; an; akk ]) (attn_tiles 32 64 32 32))

let test_attn_flash_like () =
  check_candidate "attention flat (flash-like)" attn
    (Candidate.make
       (Tiling.Flat ([ am; an ], [ [ akk ]; [ ah ] ]))
       (attn_tiles 32 16 32 16))

let test_attn_padding () =
  let odd = Chain.attention ~m:80 ~n:72 ~k:24 ~h:40 () in
  let a s = Chain.axis odd s in
  check_candidate "attention padding" odd
    (Candidate.make
       (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
       [ ("m", 32); ("n", 32); ("k", 24); ("h", 40) ])

let test_attn_vs_ops_attention () =
  let q = T.random rng [| 64; 32 |] in
  let kk = T.random rng [| 64; 32 |] in
  let v = T.random rng [| 64; 32 |] in
  let inputs = [ ("Q", q); ("K", Ops.transpose_last2 kk); ("V", v) ] in
  let cand =
    Candidate.make (Tiling.Deep [ am; ah; an; akk ]) (attn_tiles 16 16 32 32)
  in
  let got = Mcf_interp.Interp.run_candidate attn cand ~inputs in
  let want = Ops.attention ~q ~k:kk ~v in
  Alcotest.(check bool) "matches Ops.attention" true
    (T.approx_equal ~tol:1e-4 got want)

(* --- three-operator chain -------------------------------------------------- *)

let gemm3 = Chain.gemm_chain3 ~m:48 ~n:32 ~k:32 ~h:32 ~p:16 ()

let test_gemm3_deep () =
  let a s = Chain.axis gemm3 s in
  check_candidate "gemm3 deep" gemm3
    (Candidate.make
       (Tiling.Deep [ a "m"; a "p"; a "n"; a "k"; a "h" ])
       [ ("m", 16); ("n", 16); ("k", 16); ("h", 16); ("p", 16) ])

let test_gemm3_flat () =
  let a s = Chain.axis gemm3 s in
  check_candidate "gemm3 flat" gemm3
    (Candidate.make
       (Tiling.Flat ([ a "m"; a "n"; a "h" ], [ [ a "k" ]; []; [ a "p" ] ]))
       [ ("m", 16); ("n", 16); ("k", 16); ("h", 16); ("p", 16) ])

let test_gemm3_vs_ops () =
  let a = T.random rng [| 48; 32 |] in
  let b = T.random rng [| 32; 32 |] in
  let d = T.random rng [| 32; 32 |] in
  let f = T.random rng [| 32; 16 |] in
  let axn s = Chain.axis gemm3 s in
  let cand =
    Candidate.make
      (Tiling.Deep [ axn "m"; axn "p"; axn "n"; axn "k"; axn "h" ])
      [ ("m", 16); ("n", 32); ("k", 16); ("h", 16); ("p", 16) ]
  in
  let got =
    Mcf_interp.Interp.run_candidate gemm3 cand
      ~inputs:[ ("A", a); ("B", b); ("D", d); ("F", f) ]
  in
  let want = Ops.matmul (Ops.gemm_chain ~a ~b ~d) f in
  Alcotest.(check bool) "((AB)D)F" true (T.approx_equal ~tol:1e-3 got want)

(* --- batched (multi-head) chains --------------------------------------------- *)

let test_batched_attention_vs_ops () =
  let heads = 3 in
  let batched = Chain.attention ~heads ~m:32 ~n:32 ~k:16 ~h:16 () in
  let a s = Chain.axis batched s in
  let q = T.random rng [| heads; 32; 16 |] in
  let kk = T.random rng [| heads; 32; 16 |] in
  let v = T.random rng [| heads; 32; 16 |] in
  let inputs = [ ("Q", q); ("K", Ops.transpose_last2 kk); ("V", v) ] in
  let cand =
    Candidate.make
      (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
      [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ]
  in
  let got = Mcf_interp.Interp.run_candidate batched cand ~inputs in
  let want = Ops.attention ~q ~k:kk ~v in
  Alcotest.(check (array int)) "batched output shape" [| heads; 32; 16 |]
    (T.shape got);
  Alcotest.(check bool) "matches batched Ops.attention" true
    (T.approx_equal ~tol:1e-4 got want)

let test_batched_gemm_chain () =
  let batched = Chain.gemm_chain ~batch:4 ~m:32 ~n:32 ~k:16 ~h:16 () in
  let a s = Chain.axis batched s in
  check_candidate "batched gemm chain" batched
    (Candidate.make
       (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
       [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ])

let test_batched_shape_mismatch () =
  let batched = Chain.gemm_chain ~batch:4 ~m:32 ~n:32 ~k:16 ~h:16 () in
  let a s = Chain.axis batched s in
  let cand =
    Candidate.make
      (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
      [ ("m", 16); ("n", 16); ("k", 16); ("h", 16) ]
  in
  (* unbatched inputs to a batched chain must be rejected *)
  let bad =
    List.map
      (fun (ts : Chain.tensor_spec) ->
        let dims =
          Array.of_list (List.map (fun (ax : Axis.t) -> ax.size) ts.taxes)
        in
        (ts.tname, T.random rng dims))
      (Chain.input_tensors batched)
  in
  Alcotest.(check bool) "missing batch axis rejected" true
    (try
       ignore (Mcf_interp.Interp.run_candidate batched cand ~inputs:bad);
       false
     with Invalid_argument _ -> true)

(* --- unary-epilogue (MLP) chain --------------------------------------------- *)

let mlp = Chain.mlp_chain ~m:64 ~n:48 ~k:32 ~h:32 ()

let mlp_reference inputs =
  let a = List.assoc "A" inputs and b = List.assoc "B" inputs in
  let d = List.assoc "D" inputs in
  Ops.matmul (Ops.gelu (Ops.matmul a b)) d

let test_mlp_deep () =
  let ax s = Chain.axis mlp s in
  let cand =
    Candidate.make
      (Tiling.Deep [ ax "m"; ax "h"; ax "n"; ax "k" ])
      [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ]
  in
  let inputs = inputs_for mlp in
  let got = Mcf_interp.Interp.run_candidate mlp cand ~inputs in
  Alcotest.(check bool) "matches interp reference" true
    (T.approx_equal ~tol:1e-3 got (Mcf_interp.Interp.reference mlp ~inputs));
  Alcotest.(check bool) "matches gelu composition" true
    (T.approx_equal ~tol:1e-3 got (mlp_reference inputs))

let test_mlp_flat () =
  let ax s = Chain.axis mlp s in
  check_candidate "mlp flat" mlp
    (Candidate.make
       (Tiling.Flat ([ ax "m"; ax "n" ], [ [ ax "k" ]; [ ax "h" ] ]))
       [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ])

let test_mlp_whole_k () =
  let ax s = Chain.axis mlp s in
  check_candidate "mlp dead k" mlp
    (Candidate.make
       (Tiling.Deep [ ax "m"; ax "h"; ax "n"; ax "k" ])
       [ ("m", 32); ("n", 16); ("k", 32); ("h", 16) ])

(* --- convolution chain -------------------------------------------------------- *)

let test_conv_chain_vs_conv2d () =
  let height = 10 and width = 9 in
  let c_in = 2 and c_mid = 3 and c_out = 4 in
  let chain =
    Chain.conv_pointwise_chain ~height ~width ~c_in ~c_mid ~c_out ~ksize:3 ()
  in
  let a s = Chain.axis chain s in
  let cand =
    Candidate.make
      (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
      [ ("m", 16); ("n", 3); ("k", 16); ("h", 4) ]
  in
  let image = T.random rng [| c_in; height; width |] in
  let w1 = T.random rng [| c_mid; c_in; 3; 3 |] in
  let w2 = T.random rng [| c_out; c_mid; 1; 1 |] in
  let fused =
    Mcf_interp.Interp.run_candidate chain cand
      ~inputs:
        [ ("A", Ops.im2col ~input:image ~kh:3 ~kw:3);
          ("B", Ops.conv_weights_matrix w1);
          ("D", Ops.conv_weights_matrix w2) ]
  in
  let direct =
    Ops.conv2d ~input:(Ops.conv2d ~input:image ~weights:w1) ~weights:w2
  in
  let ho = height - 2 and wo = width - 2 in
  let flat =
    T.init [| ho * wo; c_out |] (fun idx ->
        T.get direct [| idx.(1); idx.(0) / wo; idx.(0) mod wo |])
  in
  Alcotest.(check bool) "fused conv chain = direct conv2d" true
    (T.approx_equal ~tol:1e-3 fused flat)

(* --- error handling -------------------------------------------------------- *)

let test_missing_input () =
  let cand =
    Candidate.make
      (Tiling.Deep [ gm; gh; gn; gk ])
      [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ]
  in
  Alcotest.(check bool) "missing input raises" true
    (try
       ignore (Mcf_interp.Interp.run_candidate gemm cand ~inputs:[]);
       false
     with Invalid_argument _ -> true)

let test_shape_mismatch () =
  let cand =
    Candidate.make
      (Tiling.Deep [ gm; gh; gn; gk ])
      [ ("m", 32); ("n", 16); ("k", 16); ("h", 16) ]
  in
  let bad =
    List.map
      (fun (name, t) ->
        if name = "A" then (name, T.create [| 2; 2 |]) else (name, t))
      (inputs_for gemm)
  in
  Alcotest.(check bool) "shape mismatch raises" true
    (try
       ignore (Mcf_interp.Interp.run_candidate gemm cand ~inputs:bad);
       false
     with Invalid_argument _ -> true)

let test_uninitialized_tile_message () =
  (* A statically mis-ordered schedule (the consumer G descends into the
     p loop while its producer E sits after it — a shape Program.validate
     rejects, but the interpreter does not check) must fail loudly with
     the tile name AND the loop indices at the failing read, so a fuzz
     reproducer is debuggable from the message alone. *)
  let a s = Chain.axis gemm3 s in
  let cand =
    Candidate.make
      (Tiling.Deep [ a "n"; a "m"; a "h"; a "p"; a "k" ])
      [ ("m", 48); ("n", 32); ("k", 32); ("h", 32); ("p", 16) ]
  in
  let p = Program.build ~rule1:false ~dead_loop_elim:false gemm3 cand in
  Alcotest.(check bool) "mis-ordered schedule is invalid" true
    (Result.is_error (Program.validate p));
  let inputs = inputs_for gemm3 in
  match Mcf_interp.Interp.run p ~inputs with
  | _ -> Alcotest.fail "expected Uninitialized_tile"
  | exception Mcf_interp.Interp.Uninitialized_tile msg ->
    let contains needle =
      let nl = String.length needle and ml = String.length msg in
      let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
      go 0
    in
    List.iter
      (fun needle ->
        Alcotest.(check bool)
          (Printf.sprintf "message %S carries %S" msg needle)
          true (contains needle))
      [ "tile E"; "read before any Load"; "h=0"; "m=0"; "n=0"; "p=0" ]

(* --- property: any valid candidate computes the right thing ---------------- *)

let tiny_gemm = Chain.gemm_chain ~m:48 ~n:32 ~k:32 ~h:32 ()
let tiny_attn = Chain.attention ~m:32 ~n:32 ~k:16 ~h:16 ()

let random_candidate chain seed =
  let rng = Mcf_util.Rng.create seed in
  let tilings = Array.of_list (Tiling.enumerate chain) in
  let tiling = Mcf_util.Rng.pick rng tilings in
  let tiles =
    List.map
      (fun (a : Axis.t) ->
        let opts = Array.of_list (Candidate.tile_options a.size) in
        (a.Axis.name, Mcf_util.Rng.pick rng opts))
      chain.Chain.axes
  in
  Candidate.make tiling tiles

let prop_chain chain name =
  QCheck.Test.make ~count:40 ~name QCheck.small_int (fun seed ->
      let cand = random_candidate chain (seed + 1) in
      let p = Program.build chain cand in
      match Program.validate p with
      | Error _ -> true (* invalid candidates are excluded from the space *)
      | Ok () ->
        let inputs = inputs_for chain in
        let got = Mcf_interp.Interp.run p ~inputs in
        let want = Mcf_interp.Interp.reference chain ~inputs in
        T.approx_equal ~tol:1e-3 got want)

let tiny_gemm3 = Chain.gemm_chain3 ~m:32 ~n:16 ~k:16 ~h:16 ~p:16 ()

let prop_gemm = prop_chain tiny_gemm "random gemm-chain schedules are exact"
let prop_gemm3 = prop_chain tiny_gemm3 "random 3-op schedules are exact"
let prop_attn = prop_chain tiny_attn "random attention schedules are exact"

let tiny_mlp = Chain.mlp_chain ~m:32 ~n:32 ~k:16 ~h:16 ()
let prop_mlp = prop_chain tiny_mlp "random mlp-chain schedules are exact"

let prop_attn_no_opt =
  QCheck.Test.make ~count:15
    ~name:"attention schedules survive disabled optimizations"
    QCheck.small_int (fun seed ->
      let cand = random_candidate tiny_attn (seed + 5) in
      (* only compare schedules that are valid in every configuration *)
      let valid flags =
        let p = flags tiny_attn cand in
        Result.is_ok (Program.validate p)
      in
      let build_full c cc = Program.build c cc in
      let build_noelim c cc = Program.build ~dead_loop_elim:false c cc in
      let build_nohoist c cc = Program.build ~hoisting:false c cc in
      if not (valid build_full && valid build_noelim && valid build_nohoist)
      then true
      else begin
        let inputs = inputs_for tiny_attn in
        let run b = Mcf_interp.Interp.run (b tiny_attn cand) ~inputs in
        let base = run build_full in
        T.approx_equal ~tol:1e-3 base (run build_noelim)
        && T.approx_equal ~tol:1e-3 base (run build_nohoist)
      end)

let prop_gemm_no_opt =
  QCheck.Test.make ~count:20 ~name:"optimization passes preserve semantics"
    QCheck.small_int (fun seed ->
      let cand = random_candidate tiny_gemm (seed + 1) in
      let inputs = inputs_for tiny_gemm in
      let run ?rule1 ?dead_loop_elim ?hoisting () =
        Mcf_interp.Interp.run
          (Program.build ?rule1 ?dead_loop_elim ?hoisting tiny_gemm cand)
          ~inputs
      in
      let base = run () in
      T.approx_equal ~tol:1e-3 base (run ~dead_loop_elim:false ())
      && T.approx_equal ~tol:1e-3 base (run ~hoisting:false ())
      && T.approx_equal ~tol:1e-3 base (run ~rule1:false ()))

let () =
  Alcotest.run "mcf_interp"
    [ ( "gemm-chain",
        [ Alcotest.test_case "mhnk" `Quick test_gemm_mhnk;
          Alcotest.test_case "dead k loop" `Quick test_gemm_dead_k;
          Alcotest.test_case "kn partial reduction" `Quick test_gemm_kn_partial;
          Alcotest.test_case "flat mn(k,h)" `Quick test_gemm_flat;
          Alcotest.test_case "flat nm(k,h)" `Quick
            test_gemm_flat_reversed_prefix;
          Alcotest.test_case "reduce-leading" `Quick test_gemm_reduce_first;
          Alcotest.test_case "padding" `Quick test_gemm_padding;
          Alcotest.test_case "single block" `Quick test_gemm_single_block;
          Alcotest.test_case "no rule 1" `Quick test_gemm_no_rule1;
          Alcotest.test_case "no dead-loop elim" `Quick
            test_gemm_no_dead_loop_elim ] );
      ( "attention",
        [ Alcotest.test_case "online softmax" `Quick test_attn_online;
          Alcotest.test_case "online + tiled k" `Quick test_attn_online_tiled_k;
          Alcotest.test_case "offline softmax" `Quick test_attn_offline;
          Alcotest.test_case "flash-like flat" `Quick test_attn_flash_like;
          Alcotest.test_case "padding" `Quick test_attn_padding;
          Alcotest.test_case "vs Ops.attention" `Quick
            test_attn_vs_ops_attention ] );
      ( "three-op",
        [ Alcotest.test_case "deep" `Quick test_gemm3_deep;
          Alcotest.test_case "flat" `Quick test_gemm3_flat;
          Alcotest.test_case "vs Ops" `Quick test_gemm3_vs_ops ] );
      ( "batched",
        [ Alcotest.test_case "attention vs Ops" `Quick
            test_batched_attention_vs_ops;
          Alcotest.test_case "gemm chain" `Quick test_batched_gemm_chain;
          Alcotest.test_case "shape mismatch" `Quick
            test_batched_shape_mismatch ] );
      ( "mlp-unary",
        [ Alcotest.test_case "deep" `Quick test_mlp_deep;
          Alcotest.test_case "flat" `Quick test_mlp_flat;
          Alcotest.test_case "whole k" `Quick test_mlp_whole_k ] );
      ( "conv",
        [ Alcotest.test_case "vs direct conv2d" `Quick
            test_conv_chain_vs_conv2d ] );
      ( "errors",
        [ Alcotest.test_case "missing input" `Quick test_missing_input;
          Alcotest.test_case "uninitialized tile diagnostics" `Quick
            test_uninitialized_tile_message;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_gemm; prop_attn; prop_mlp; prop_gemm3; prop_gemm_no_opt;
            prop_attn_no_opt ] ) ]
