(* Tests for the search machinery: space enumeration with the four pruning
   rules (Fig. 7 funnel), the evolutionary exploration of Algorithm 1, and
   the top-level tuner. *)

open Mcf_ir

let a100 = Mcf_gpu.Spec.a100
let paper_gemm = Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()
let small_gemm = Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ()
let attn = Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:64 ()

(* --- Space ------------------------------------------------------------------ *)

let test_raw_cardinality_paper () =
  (* the paper's 1.09e8 for M=N=1024, K=H=512: 26 x 64^2 x 32^2 *)
  Alcotest.(check (float 1.0)) "raw count" 109051904.0
    (Mcf_search.Space.raw_cardinality paper_gemm)

let test_funnel_paper_example () =
  let _, f = Mcf_search.Space.enumerate a100 paper_gemm in
  Alcotest.(check int) "26 expressions" 26 f.tilings_raw;
  Alcotest.(check bool) "rule 1 dedups hard" true (f.tilings_rule1 <= 5);
  Alcotest.(check bool) "rule 2 drops more" true
    (f.tilings_rule2 < f.tilings_rule1);
  Alcotest.(check bool) "rule 3 kills 99%+" true
    (f.candidates_rule3 < 0.01 *. f.candidates_raw);
  Alcotest.(check bool) "rule 4 prunes further" true
    (float_of_int f.candidates_rule4 <= f.candidates_rule3);
  Alcotest.(check bool) "ends around 1e3-1e4" true
    (f.candidates_valid >= 500 && f.candidates_valid <= 20000)

let test_rule3_power_of_two () =
  let opts = Mcf_search.Space.default_options in
  let choices = Mcf_search.Space.tile_choices opts paper_gemm in
  let m_opts = List.assoc "m" choices in
  (* 1024 is a power of two: only divisors survive *)
  Alcotest.(check (list int)) "divisors only"
    [ 16; 32; 64; 128; 256; 512; 1024 ]
    m_opts

let test_rule3_padding_threshold () =
  (* a non-power-of-two dimension keeps tiles within 5% padding *)
  let odd = Chain.gemm_chain ~m:960 ~n:128 ~k:64 ~h:64 () in
  let choices =
    Mcf_search.Space.tile_choices Mcf_search.Space.default_options odd
  in
  List.iter
    (fun t ->
      let trips = (960 + t - 1) / t in
      let pad = float_of_int ((trips * t) - 960) /. 960.0 in
      Alcotest.(check bool)
        (Printf.sprintf "tile %d pads %.3f" t pad)
        true (pad <= 0.05))
    (List.assoc "m" choices)

let test_rule2_structural () =
  let opts =
    { Mcf_search.Space.default_options with rule1 = true; rule2 = true }
  in
  let tilings = Mcf_search.Space.tilings opts paper_gemm in
  (* no surviving expression places k before n in the per-block program *)
  List.iter
    (fun t ->
      let sub = Tiling.sub_tiling paper_gemm t in
      let names = Axis.names (Tiling.axes sub) in
      Alcotest.(check bool)
        ("no kn residency blow-up in " ^ Tiling.to_string t)
        true
        (not
           (String.length names >= 2
           && String.index names 'k' < String.index names 'n')))
    tilings

let test_flat_included_by_default () =
  let opts = Mcf_search.Space.default_options in
  let tilings = Mcf_search.Space.tilings opts paper_gemm in
  Alcotest.(check bool) "flat survives pruning" true
    (List.exists Tiling.is_flat tilings);
  let chimera =
    Mcf_search.Space.tilings { opts with include_flat = false } paper_gemm
  in
  Alcotest.(check bool) "deep-only space has no flat" true
    (not (List.exists Tiling.is_flat chimera))

let test_enumerate_all_valid () =
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  Alcotest.(check bool) "non-empty" true (entries <> []);
  List.iter
    (fun (e : Mcf_search.Space.entry) ->
      let l = Mcf_search.Space.lowered e in
      Alcotest.(check bool) "validity" true (Result.is_ok l.validity);
      Alcotest.(check bool) "rule 4 honoured" true
        (Mcf_model.Shmem.within_budget a100 ~slack:1.2 l))
    entries

let test_enumerate_attention_excludes_partial_softmax () =
  let entries, _ = Mcf_search.Space.enumerate a100 attn in
  List.iter
    (fun (e : Mcf_search.Space.entry) ->
      Alcotest.(check bool) "no invalid softmax schedules" true
        (Result.is_ok (Program.validate (Mcf_search.Space.lowered e).program)))
    entries

let test_enumerate_deterministic () =
  let e1, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let e2, _ = Mcf_search.Space.enumerate a100 small_gemm in
  Alcotest.(check (list string)) "same order, same set"
    (List.map (fun (e : Mcf_search.Space.entry) -> Candidate.key e.cand) e1)
    (List.map (fun (e : Mcf_search.Space.entry) -> Candidate.key e.cand) e2)

(* --- Explore ----------------------------------------------------------------- *)

let exhaustive_best entries =
  List.filter_map
    (fun (e : Mcf_search.Space.entry) ->
      match Mcf_codegen.Compile.compile a100 (Mcf_search.Space.lowered e) with
      | Error _ -> None
      | Ok k -> (
        match Mcf_gpu.Sim.run a100 k with
        | Ok v -> Some v.time_s
        | Error _ -> None))
    entries
  |> Mcf_util.Listx.min_by Fun.id

let test_explore_empty () =
  let rng = Mcf_util.Rng.create 1 in
  let clock = Mcf_gpu.Clock.create () in
  Alcotest.(check bool) "empty space" true
    (Mcf_search.Explore.run ~rng ~clock a100 [] = None)

let test_explore_near_optimal () =
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let best = Option.get (exhaustive_best entries) in
  let rng = Mcf_util.Rng.create 2024 in
  let clock = Mcf_gpu.Clock.create () in
  match Mcf_search.Explore.run ~rng ~clock a100 entries with
  | None -> Alcotest.fail "search found nothing"
  | Some r ->
    Alcotest.(check bool)
      (Printf.sprintf "found %.2fus vs optimum %.2fus" (r.best_time_s *. 1e6)
         (best *. 1e6))
      true
      (r.best_time_s <= best *. 1.15)

let test_explore_charges_clock () =
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let rng = Mcf_util.Rng.create 7 in
  let clock = Mcf_gpu.Clock.create () in
  (match Mcf_search.Explore.run ~rng ~clock a100 entries with
  | Some r ->
    Alcotest.(check bool) "measured some" true (r.stats.measured > 0);
    Alcotest.(check bool) "clock >= compile costs" true
      (Mcf_gpu.Clock.elapsed_s clock
      >= 0.5 *. float_of_int r.stats.measured)
  | None -> Alcotest.fail "search found nothing")

let test_explore_deterministic_given_seed () =
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let run seed =
    let rng = Mcf_util.Rng.create seed in
    let clock = Mcf_gpu.Clock.create () in
    match Mcf_search.Explore.run ~rng ~clock a100 entries with
    | Some r -> Candidate.key r.best.cand
    | None -> "none"
  in
  Alcotest.(check string) "same seed, same result" (run 99) (run 99)

let test_explore_custom_estimator () =
  (* a constant estimator degrades ranking but must not break the search *)
  let entries, _ = Mcf_search.Space.enumerate a100 small_gemm in
  let rng = Mcf_util.Rng.create 5 in
  let clock = Mcf_gpu.Clock.create () in
  match
    Mcf_search.Explore.run ~estimator:(fun _ _ -> 1.0) ~rng ~clock a100 entries
  with
  | Some r -> Alcotest.(check bool) "still returns" true (r.best_time_s > 0.0)
  | None -> Alcotest.fail "search found nothing"

let test_measure_failure_is_none () =
  (* an entry that exceeds the device's block shared-memory limit *)
  let options = { Mcf_search.Space.default_options with rule4 = false } in
  let entries, _ = Mcf_search.Space.enumerate ~options a100 paper_gemm in
  let over =
    List.find_opt
      (fun (e : Mcf_search.Space.entry) ->
        Mcf_codegen.Alloc.actual_bytes a100 (Mcf_search.Space.lowered e)
        > a100.smem_per_block)
      entries
  in
  match over with
  | None -> () (* nothing over budget in this space; vacuous *)
  | Some e ->
    let clock = Mcf_gpu.Clock.create () in
    Alcotest.(check bool) "unlaunchable measures to None" true
      (Mcf_search.Explore.measure ~clock ~compile_cost_s:0.1 ~repeats:1 a100 e
      = None)

(* --- Tuner ------------------------------------------------------------------- *)

let test_tuner_gemm () =
  match Mcf_search.Tuner.tune a100 small_gemm with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok o ->
    Alcotest.(check bool) "positive kernel time" true (o.kernel_time_s > 0.0);
    Alcotest.(check bool) "tuning accounted" true (o.tuning_virtual_s > 0.0);
    Alcotest.(check bool) "wall clock sane" true (o.tuning_wall_s >= 0.0);
    Alcotest.(check bool) "funnel populated" true
      (o.funnel.candidates_valid > 0)

let test_tuner_deterministic () =
  let key () =
    match Mcf_search.Tuner.tune ~seed:31337 a100 small_gemm with
    | Ok o -> Candidate.key o.best.cand
    | Error _ -> "fail"
  in
  Alcotest.(check string) "seeded tuner deterministic" (key ()) (key ())

let test_tuner_attention_valid_schedule () =
  match Mcf_search.Tuner.tune a100 attn with
  | Error _ -> Alcotest.fail "tuner failed on attention"
  | Ok o ->
    Alcotest.(check bool) "winner is a valid schedule" true
      (Result.is_ok
         (Program.validate (Mcf_search.Space.lowered o.best).program))

let test_tuner_subsumes_chimera_space () =
  (* MCFuser's space contains Chimera's: the tuned result must not lose to
     the deep-only, movement-ranked configuration by more than noise *)
  let full =
    match Mcf_search.Tuner.tune a100 small_gemm with
    | Ok o -> o.kernel_time_s
    | Error _ -> infinity
  in
  match Mcf_baselines.Chimera.backend.tune a100 small_gemm with
  | Ok chimera ->
    Alcotest.(check bool)
      (Printf.sprintf "full %.2fus vs chimera %.2fus" (full *. 1e6)
         (chimera.time_s *. 1e6))
      true
      (full <= chimera.time_s *. 1.10)
  | Error _ -> ()

let test_tuner_mlp_chain () =
  (* unary-epilogue chains tune through the same pipeline *)
  let mlp = Mcf_ir.Chain.mlp_chain ~m:256 ~n:256 ~k:64 ~h:64 () in
  match Mcf_search.Tuner.tune a100 mlp with
  | Error _ -> Alcotest.fail "tuner failed on mlp chain"
  | Ok o ->
    Alcotest.(check bool) "valid winner" true
      (Result.is_ok
         (Program.validate (Mcf_search.Space.lowered o.best).program));
    Alcotest.(check bool) "beats unfused execution" true
      (match Mcf_baselines.Pytorch.backend.tune a100 mlp with
      | Ok py -> o.kernel_time_s < py.time_s
      | Error _ -> false)

(* The winner must not just model well — it must compute the right answer.
   Run the tuned best candidate through the interpreter against the
   reference semantics (the fuzz subsystem runs this differential check on
   random chains; this pins it on tuned winners of paper workloads). *)
let test_tuner_winner_executes () =
  let rng = Mcf_util.Rng.create 424242 in
  let inputs_for (chain : Chain.t) =
    List.map
      (fun (ts : Chain.tensor_spec) ->
        let dims = List.map (fun (a : Axis.t) -> a.size) ts.taxes in
        let shape =
          Array.of_list
            (if chain.Chain.batch > 1 then chain.Chain.batch :: dims
             else dims)
        in
        (ts.tname, Mcf_tensor.Tensor.random rng shape))
      (Chain.input_tensors chain)
  in
  List.iter
    (fun (name, chain) ->
      match Mcf_search.Tuner.tune ~seed:7 a100 chain with
      | Error _ -> Alcotest.failf "tuner failed on %s" name
      | Ok o ->
        let inputs = inputs_for chain in
        let got =
          Mcf_interp.Interp.run_candidate chain o.best.cand ~inputs
        in
        let want = Mcf_interp.Interp.reference chain ~inputs in
        Alcotest.(check bool)
          (Printf.sprintf "%s winner computes the chain (|diff|=%g)" name
             (Mcf_tensor.Tensor.max_abs_diff got want))
          true
          (Mcf_tensor.Tensor.approx_equal ~tol:1e-3 got want))
    [ ("gemm", small_gemm);
      ("attention", Chain.attention ~heads:2 ~m:64 ~n:64 ~k:32 ~h:32 ()) ]

let test_tuner_pseudo_and_triton () =
  match Mcf_search.Tuner.tune a100 small_gemm with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok o ->
    let pseudo = Mcf_search.Tuner.pseudo_code o in
    let triton = Mcf_search.Tuner.triton_source o in
    Alcotest.(check bool) "pseudo-code mentions grid" true
      (String.length pseudo > 0);
    Alcotest.(check bool) "triton source generated" true
      (String.length triton > 0)

let test_tuner_jobs_equality () =
  (* ISSUE 2 acceptance: the tuner's outcome must be bit-identical whatever
     the global pool size -- same best candidate, same funnel, same RNG
     stream (hence same search stats). *)
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Mcf_util.Pool.set_jobs saved)
    (fun () ->
      let run jobs chain =
        Mcf_util.Pool.set_jobs jobs;
        match Mcf_search.Tuner.tune ~seed:7 a100 chain with
        | Error _ -> Alcotest.fail "tuner failed"
        | Ok o -> o
      in
      List.iter
        (fun (name, chain) ->
          let a = run 1 chain in
          let b = run 4 chain in
          Alcotest.(check string) (name ^ ": best candidate")
            (Candidate.key a.Mcf_search.Tuner.best.cand)
            (Candidate.key b.Mcf_search.Tuner.best.cand);
          Alcotest.(check (float 0.0)) (name ^ ": kernel time")
            a.kernel_time_s b.kernel_time_s;
          Alcotest.(check (float 0.0)) (name ^ ": virtual tuning time")
            a.tuning_virtual_s b.tuning_virtual_s;
          Alcotest.(check bool) (name ^ ": funnel") true (a.funnel = b.funnel);
          Alcotest.(check bool) (name ^ ": search stats") true
            (a.search_stats = b.search_stats);
          (* Phase durations are wall-clock and so differ across runs, but
             the breakdown must stay non-overlapping: same named phases
             (space.precheck carved out of tuner.enumerate) summing to at
             most the run's own wall time. *)
          List.iter
            (fun (o : Mcf_search.Tuner.outcome) ->
              Alcotest.(check (list string))
                (name ^ ": phase names")
                [ "tuner.enumerate"; "space.precheck"; "tuner.explore";
                  "tuner.measure"; "tuner.codegen" ]
                (List.map fst o.phases);
              Alcotest.(check bool)
                (name ^ ": phases sum within wall clock")
                true
                (List.fold_left (fun acc (_, d) -> acc +. d) 0.0 o.phases
                <= o.tuning_wall_s +. 1e-6))
            [ a; b ])
        [ ("gemm", small_gemm); ("attention", attn) ])

let test_tuner_sampler_identity () =
  (* ISSUE 6 acceptance: resource sampling is strictly observational.  The
     tuner outcome must be bit-identical with sampling on or off, at any
     pool size — same winner, same virtual clock, same funnel, same
     search stats. *)
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () ->
      Mcf_obs.Resource.stop ();
      Mcf_util.Pool.set_jobs saved)
    (fun () ->
      let fingerprint (o : Mcf_search.Tuner.outcome) =
        let f = o.funnel and s = o.search_stats in
        Printf.sprintf "%s|%.17g|%.17g|%d/%d/%d/%.17g/%.17g/%d/%d|%d/%d/%d"
          (Candidate.key o.best.cand)
          o.kernel_time_s o.tuning_virtual_s f.tilings_raw f.tilings_rule1
          f.tilings_rule2 f.candidates_raw f.candidates_rule3
          f.candidates_rule4 f.candidates_valid s.generations s.estimated
          s.measured
      in
      let run ~jobs ~sampling =
        Mcf_util.Pool.set_jobs jobs;
        (* An aggressive 1ms period maximizes interleaving with the run. *)
        if sampling then Mcf_obs.Resource.start ~period_s:0.001;
        let r = Mcf_search.Tuner.tune ~seed:7 a100 small_gemm in
        Mcf_obs.Resource.stop ();
        match r with
        | Error _ -> Alcotest.fail "tuner failed"
        | Ok o -> fingerprint o
      in
      let base = run ~jobs:1 ~sampling:false in
      List.iter
        (fun (jobs, sampling) ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d sampling=%b" jobs sampling)
            base
            (run ~jobs ~sampling))
        [ (1, true); (4, false); (4, true) ])

let test_tuner_lowers_lazily () =
  (* ISSUE 3 acceptance: with the closed-form model doing estimation and
     validity, [Lower.lower] runs only for candidates that actually reach
     measurement (the winner's codegen re-uses the memoized lowering). *)
  let before = Mcf_ir.Lower.calls () in
  match Mcf_search.Tuner.tune ~seed:11 a100 small_gemm with
  | Error _ -> Alcotest.fail "tuner failed"
  | Ok o ->
    Alcotest.(check int) "Lower.lower calls == measured candidates"
      o.search_stats.measured
      (Mcf_ir.Lower.calls () - before)

(* --- Schedule_cache ----------------------------------------------------------- *)

let test_cache_candidate_roundtrip () =
  let mk_cand tiling tiles = Candidate.make tiling tiles in
  let m = Chain.axis small_gemm "m" and n = Chain.axis small_gemm "n" in
  let k = Chain.axis small_gemm "k" and h = Chain.axis small_gemm "h" in
  let cands =
    [ mk_cand (Tiling.Deep [ m; h; n; k ])
        [ ("m", 64); ("n", 32); ("k", 16); ("h", 32) ];
      mk_cand (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ]))
        [ ("m", 64); ("n", 32); ("k", 16); ("h", 32) ];
      mk_cand (Tiling.Flat ([ m; n ], [ [ k ]; [] ]))
        [ ("m", 64); ("n", 32); ("k", 16); ("h", 32) ] ]
  in
  List.iter
    (fun cand ->
      let s = Mcf_search.Schedule_cache.serialize_candidate cand in
      match Mcf_search.Schedule_cache.parse_candidate small_gemm s with
      | Ok back ->
        Alcotest.(check string) ("roundtrip " ^ s) (Candidate.key cand)
          (Candidate.key back)
      | Error e -> Alcotest.failf "parse failed for %s: %s" s e)
    cands

let test_cache_parse_errors () =
  let bad =
    [ "deep:m,z;m=64,n=32,k=16,h=32" (* unknown axis *);
      "deep:m,h,n,k;m=64" (* missing tiles *);
      "deep:m,h,n,k;m=0,n=32,k=16,h=32" (* non-positive tile *);
      "nonsense" ]
  in
  List.iter
    (fun s ->
      Alcotest.(check bool) ("rejects " ^ s) true
        (Result.is_error (Mcf_search.Schedule_cache.parse_candidate small_gemm s)))
    bad

let test_cache_file_roundtrip () =
  let path = Filename.temp_file "mcfuser_cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      (* first call tunes and persists *)
      (match
         Mcf_search.Schedule_cache.tune_with_cache ~cache_file:path a100
           small_gemm
       with
      | Ok (Some _, entry) ->
        Alcotest.(check string) "device recorded" "A100" entry.edevice
      | Ok (None, _) -> Alcotest.fail "first call must miss"
      | Error _ -> Alcotest.fail "tuning failed");
      (* second call hits *)
      match
        Mcf_search.Schedule_cache.tune_with_cache ~cache_file:path a100
          small_gemm
      with
      | Ok (None, entry) ->
        Alcotest.(check bool) "cached time positive" true (entry.etime_s > 0.0);
        (* the cached candidate still compiles on this device *)
        Alcotest.(check bool) "cached candidate compiles" true
          (Result.is_ok
             (Mcf_codegen.Compile.compile_candidate a100 small_gemm
                entry.ecand))
      | Ok (Some _, _) -> Alcotest.fail "second call must hit"
      | Error _ -> Alcotest.fail "lookup failed")

let test_cache_corrupt_lines_skipped () =
  let path = Filename.temp_file "mcfuser_cache" ".txt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "garbage line\nanother|bad\n";
      close_out oc;
      let t = Mcf_search.Schedule_cache.load ~chains:[ small_gemm ] path in
      Alcotest.(check int) "corrupt lines dropped" 0
        (Mcf_search.Schedule_cache.size t))

let prop_cache_roundtrip =
  QCheck.Test.make ~count:100 ~name:"cache serialization roundtrip"
    QCheck.small_int
    (fun seed ->
      let rng = Mcf_util.Rng.create (seed + 17) in
      let tilings = Array.of_list (Tiling.enumerate small_gemm) in
      let tiling = Mcf_util.Rng.pick rng tilings in
      let tiles =
        List.map
          (fun (a : Axis.t) ->
            let opts = Array.of_list (Candidate.tile_options a.size) in
            (a.Axis.name, Mcf_util.Rng.pick rng opts))
          small_gemm.Chain.axes
      in
      let cand = Candidate.make tiling tiles in
      match
        Mcf_search.Schedule_cache.parse_candidate small_gemm
          (Mcf_search.Schedule_cache.serialize_candidate cand)
      with
      | Ok back -> Candidate.key back = Candidate.key cand
      | Error _ -> false)

let () =
  Alcotest.run "mcf_search"
    [ ( "space",
        [ Alcotest.test_case "paper raw cardinality" `Quick
            test_raw_cardinality_paper;
          Alcotest.test_case "paper funnel" `Quick test_funnel_paper_example;
          Alcotest.test_case "rule 3 power of two" `Quick
            test_rule3_power_of_two;
          Alcotest.test_case "rule 3 padding" `Quick
            test_rule3_padding_threshold;
          Alcotest.test_case "rule 2 structural" `Quick test_rule2_structural;
          Alcotest.test_case "flat in default space" `Quick
            test_flat_included_by_default;
          Alcotest.test_case "entries valid" `Quick test_enumerate_all_valid;
          Alcotest.test_case "attention legality" `Quick
            test_enumerate_attention_excludes_partial_softmax;
          Alcotest.test_case "deterministic" `Quick test_enumerate_deterministic
        ] );
      ( "explore",
        [ Alcotest.test_case "empty space" `Quick test_explore_empty;
          Alcotest.test_case "near optimal" `Quick test_explore_near_optimal;
          Alcotest.test_case "charges clock" `Quick test_explore_charges_clock;
          Alcotest.test_case "deterministic" `Quick
            test_explore_deterministic_given_seed;
          Alcotest.test_case "custom estimator" `Quick
            test_explore_custom_estimator;
          Alcotest.test_case "unlaunchable candidate" `Quick
            test_measure_failure_is_none ] );
      ( "tuner",
        [ Alcotest.test_case "gemm chain" `Quick test_tuner_gemm;
          Alcotest.test_case "deterministic" `Quick test_tuner_deterministic;
          Alcotest.test_case "attention validity" `Quick
            test_tuner_attention_valid_schedule;
          Alcotest.test_case "subsumes chimera" `Quick
            test_tuner_subsumes_chimera_space;
          Alcotest.test_case "mlp chain" `Quick test_tuner_mlp_chain;
          Alcotest.test_case "winner executes correctly" `Quick
            test_tuner_winner_executes;
          Alcotest.test_case "renders output" `Quick
            test_tuner_pseudo_and_triton;
          Alcotest.test_case "identical at jobs 1 vs 4" `Quick
            test_tuner_jobs_equality;
          Alcotest.test_case "identical with sampling on/off" `Quick
            test_tuner_sampler_identity;
          Alcotest.test_case "lowers lazily" `Quick test_tuner_lowers_lazily ] );
      ( "schedule-cache",
        [ Alcotest.test_case "candidate roundtrip" `Quick
            test_cache_candidate_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_cache_parse_errors;
          Alcotest.test_case "file roundtrip" `Quick test_cache_file_roundtrip;
          Alcotest.test_case "corrupt lines skipped" `Quick
            test_cache_corrupt_lines_skipped;
          QCheck_alcotest.to_alcotest prop_cache_roundtrip ] ) ]
