(* Unit and property tests for Mcf_util: PRNG, statistics, list
   combinators, hashing, table/chart rendering. *)

open Mcf_util

let check_float = Alcotest.(check (float 1e-9))
let check_close msg tol want got = Alcotest.(check (float tol)) msg want got

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different seeds differ" true
    (Rng.int64 a <> Rng.int64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "bound 0"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_float_range () =
  let rng = Rng.create 9 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 3.5 in
    Alcotest.(check bool) "in range" true (v >= 0.0 && v < 3.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create 13 in
  let n = 20000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Rng.float rng 1.0
  done;
  check_close "mean near 0.5" 0.02 0.5 (!sum /. float_of_int n)

let test_rng_bool_balance () =
  let rng = Rng.create 17 in
  let n = 20000 in
  let t = ref 0 in
  for _ = 1 to n do
    if Rng.bool rng then incr t
  done;
  check_close "bool near 50%" 0.03 0.5 (float_of_int !t /. float_of_int n)

let test_rng_gaussian () =
  let rng = Rng.create 23 in
  let n = 20000 in
  let xs = List.init n (fun _ -> Rng.gaussian rng ~mu:2.0 ~sigma:3.0) in
  check_close "gaussian mean" 0.1 2.0 (Stats.mean xs);
  check_close "gaussian stddev" 0.1 3.0 (Stats.stddev xs)

let test_rng_pick () =
  let rng = Rng.create 29 in
  let arr = [| 1; 2; 3 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "picks member" true (Array.mem (Rng.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick rng [||]))

let test_rng_shuffle_permutation () =
  let rng = Rng.create 31 in
  let arr = Array.init 50 (fun i -> i) in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 (fun i -> i))
    sorted

let test_rng_weighted_index () =
  let rng = Rng.create 37 in
  let w = [| 0.0; 10.0; 0.0 |] in
  for _ = 1 to 100 do
    Alcotest.(check int) "mass on index 1" 1 (Rng.weighted_index rng w)
  done

let test_rng_weighted_zero_mass () =
  let rng = Rng.create 41 in
  let w = [| 0.0; 0.0 |] in
  for _ = 1 to 50 do
    let i = Rng.weighted_index rng w in
    Alcotest.(check bool) "uniform fallback" true (i = 0 || i = 1)
  done

let test_rng_weighted_proportional () =
  let rng = Rng.create 43 in
  let w = [| 1.0; 3.0 |] in
  let n = 20000 in
  let c1 = ref 0 in
  for _ = 1 to n do
    if Rng.weighted_index rng w = 1 then incr c1
  done;
  check_close "3:1 ratio" 0.03 0.75 (float_of_int !c1 /. float_of_int n)

let test_rng_sample_without_replacement () =
  let rng = Rng.create 47 in
  let s = Rng.sample_without_replacement rng 5 10 in
  Alcotest.(check int) "size" 5 (List.length s);
  Alcotest.(check int) "distinct" 5 (List.length (Listx.dedup ~compare s));
  List.iter
    (fun i -> Alcotest.(check bool) "in range" true (i >= 0 && i < 10))
    s;
  let all = Rng.sample_without_replacement rng 20 10 in
  Alcotest.(check int) "clamped to n" 10 (List.length all)

let test_rng_split_independent () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split streams differ" true (Rng.int64 a <> Rng.int64 b)

let test_rng_copy () =
  let a = Rng.create 5 in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy replays" (Rng.int64 a) (Rng.int64 b)

(* --- Stats --------------------------------------------------------------- *)

let test_mean () =
  check_float "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Stats.mean [])

let test_geomean () =
  check_close "geomean 2,8" 1e-9 4.0 (Stats.geomean [ 2.0; 8.0 ]);
  check_close "geomean 1,2,4" 1e-9 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ])

let test_stddev () =
  check_float "constant" 0.0 (Stats.stddev [ 5.0; 5.0; 5.0 ]);
  check_close "known" 1e-9 2.0
    (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

let test_minmax () =
  check_float "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check_float "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  Alcotest.check_raises "min empty"
    (Invalid_argument "Stats.minimum: empty list") (fun () ->
      ignore (Stats.minimum []))

let test_median () =
  check_float "odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check_float "even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ]);
  check_float "empty" 0.0 (Stats.median [])

let test_percentile () =
  let xs = List.init 101 float_of_int in
  check_float "p0" 0.0 (Stats.percentile 0.0 xs);
  check_float "p50" 50.0 (Stats.percentile 50.0 xs);
  check_float "p100" 100.0 (Stats.percentile 100.0 xs);
  check_float "p25" 25.0 (Stats.percentile 25.0 xs)

let test_pearson () =
  let xs = [ 1.0; 2.0; 3.0; 4.0 ] in
  check_close "perfect" 1e-9 1.0
    (Stats.pearson xs (List.map (fun x -> (2.0 *. x) +. 1.0) xs));
  check_close "anti" 1e-9 (-1.0) (Stats.pearson xs (List.map (fun x -> -.x) xs));
  check_float "constant series" 0.0 (Stats.pearson xs [ 1.0; 1.0; 1.0; 1.0 ]);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Stats.pearson: length mismatch") (fun () ->
      ignore (Stats.pearson [ 1.0 ] [ 1.0; 2.0 ]))

let test_spearman () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let ys = List.map (fun x -> exp x) xs in
  check_close "monotone" 1e-9 1.0 (Stats.spearman xs ys)

let test_histogram () =
  let h = Stats.histogram ~bins:2 [ 0.0; 0.1; 0.9; 1.0 ] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, _, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

(* --- Listx --------------------------------------------------------------- *)

let test_permutations () =
  Alcotest.(check int) "3! perms" 6 (List.length (Listx.permutations [ 1; 2; 3 ]));
  Alcotest.(check int) "4! perms" 24
    (List.length (Listx.permutations [ 1; 2; 3; 4 ]));
  Alcotest.(check int) "unique" 6
    (List.length (Listx.dedup ~compare (Listx.permutations [ 1; 2; 3 ])));
  Alcotest.(check (list (list int))) "empty" [ [] ] (Listx.permutations [])

let test_cartesian () =
  Alcotest.(check int) "2x3" 6
    (List.length (Listx.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]));
  Alcotest.(check (list (list int))) "nil" [ [] ] (Listx.cartesian []);
  Alcotest.(check (list (list int))) "empty choice" []
    (Listx.cartesian [ [ 1 ]; [] ])

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Listx.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take long" [ 1; 2; 3 ] (Listx.take 9 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (Listx.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (Listx.drop 9 [ 1; 2; 3 ])

let test_index_of () =
  Alcotest.(check (option int)) "found" (Some 1)
    (Listx.index_of (fun x -> x = 5) [ 3; 5; 7 ]);
  Alcotest.(check (option int)) "missing" None
    (Listx.index_of (fun x -> x = 9) [ 3; 5; 7 ])

let test_dedup () =
  Alcotest.(check (list int)) "sorted dedup" [ 1; 2; 3 ]
    (Listx.dedup ~compare [ 3; 1; 2; 1; 3 ]);
  Alcotest.(check (list string)) "keep order" [ "b"; "a"; "c" ]
    (Listx.dedup_keep_order ~key:Fun.id [ "b"; "a"; "b"; "c"; "a" ])

let test_min_max_by () =
  Alcotest.(check (option int)) "min_by" (Some 3)
    (Listx.min_by float_of_int [ 5; 3; 9 ]);
  Alcotest.(check (option int)) "max_by" (Some 9)
    (Listx.max_by float_of_int [ 5; 3; 9 ]);
  Alcotest.(check (option int)) "empty" None (Listx.min_by float_of_int [])

let test_sum_by () = check_float "sum" 6.0 (Listx.sum_by float_of_int [ 1; 2; 3 ])

let test_range () = Alcotest.(check (list int)) "range" [ 0; 1; 2 ] (Listx.range 3)

let test_interleavings () =
  let ways = Listx.interleavings [ 1; 2 ] [ 3; 4 ] in
  Alcotest.(check int) "C(4,2)" 6 (List.length ways);
  List.iter
    (fun l -> Alcotest.(check int) "length preserved" 4 (List.length l))
    ways

(* --- Hashing ------------------------------------------------------------- *)

let test_hashing () =
  Alcotest.(check bool) "deterministic" true
    (Hashing.fnv1a64 "hello" = Hashing.fnv1a64 "hello");
  Alcotest.(check bool) "distinct" true
    (Hashing.fnv1a64 "hello" <> Hashing.fnv1a64 "hellp");
  let u = Hashing.to_unit_float (Hashing.fnv1a64 "x") in
  Alcotest.(check bool) "unit range" true (u >= 0.0 && u < 1.0);
  Alcotest.(check int64) "combine = concat" (Hashing.fnv1a64 "ab")
    (Hashing.combine (Hashing.fnv1a64 "a") "b")

(* --- Table / Chart ------------------------------------------------------- *)

let test_table_render () =
  let t = Table.create ~headers:[ "a"; "b" ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_row t [ "yy"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "has content" true (contains s "yy" && contains s "22");
  Alcotest.check_raises "arity"
    (Invalid_argument "Table.add_row: arity mismatch") (fun () ->
      Table.add_row t [ "only one" ])

let test_table_markdown () =
  let t = Table.create ~headers:[ "col" ] in
  Table.add_row t [ "val" ];
  let md = Table.render_markdown t in
  Alcotest.(check bool) "markdown separator" true (contains md "---");
  Alcotest.(check bool) "value present" true (contains md "val")

let test_fmt () =
  Alcotest.(check string) "float" "3.14" (Table.fmt_float 3.14159);
  Alcotest.(check string) "us" "12.0us" (Table.fmt_time_s 12e-6);
  Alcotest.(check string) "ms" "3.40ms" (Table.fmt_time_s 3.4e-3);
  Alcotest.(check string) "s" "7.89s" (Table.fmt_time_s 7.89);
  Alcotest.(check string) "h" "2.00h" (Table.fmt_time_s 7200.0);
  Alcotest.(check string) "sci" "1.09e8" (Table.fmt_sci 1.09e8);
  Alcotest.(check string) "sci zero" "0" (Table.fmt_sci 0.0)

let test_chart_bar () =
  let s = Chart.bar ~title:"t" ~unit_label:"u" [ ("aa", 1.0); ("bb", 2.0) ] in
  Alcotest.(check bool) "mentions labels" true (contains s "aa" && contains s "bb")

let test_chart_scatter () =
  let s =
    Chart.scatter ~title:"sc" ~x_label:"x" ~y_label:"y"
      [ (0.0, 0.0); (1.0, 1.0); (0.5, 0.5) ]
  in
  Alcotest.(check bool) "has frame" true (contains s "+---")

let test_chart_line () =
  let s =
    Chart.line ~title:"l" ~x_label:"x" [ ("srs", [ (0.0, 1.0); (1.0, 2.0) ]) ]
  in
  Alcotest.(check bool) "legend" true (contains s "# = srs")

let test_chart_sparkline () =
  Alcotest.(check string) "empty" "" (Chart.sparkline []);
  Alcotest.(check string) "flat series is dashes" "---"
    (Chart.sparkline [ 5.0; 5.0; 5.0 ]);
  Alcotest.(check string) "min to max shape" "_#"
    (Chart.sparkline [ 1.0; 2.0 ]);
  Alcotest.(check string) "midpoint rounds to middle glyph" "_=#"
    (Chart.sparkline [ 0.0; 0.5; 1.0 ]);
  (* Overflow keeps the most recent values, one glyph per value. *)
  let long = List.init 50 float_of_int in
  let s = Chart.sparkline ~max_width:10 long in
  Alcotest.(check int) "truncated to max_width" 10 (String.length s);
  Alcotest.(check bool) "ends at the newest (max) value" true
    (s.[9] = '#')

(* --- Parallel ------------------------------------------------------------- *)

let test_parallel_matches_sequential () =
  let l = List.init 1000 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same result, same order" (List.map f l)
    (Parallel.map ~domains:4 f l);
  Alcotest.(check (list int)) "single domain" (List.map f l)
    (Parallel.map ~domains:1 f l);
  Alcotest.(check (list int)) "more domains than elements"
    (List.map f [ 1; 2; 3 ])
    (Parallel.map ~domains:16 f [ 1; 2; 3 ])

let test_parallel_array () =
  let a = Array.init 500 (fun i -> i) in
  Alcotest.(check (array int)) "array map" (Array.map succ a)
    (Parallel.map_array ~domains:3 succ a)

let test_parallel_exception () =
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      ignore
        (Parallel.map ~domains:4
           (fun x -> if x = 777 then failwith "boom" else x)
           (List.init 1000 (fun i -> i))))

let test_parallel_empty () =
  Alcotest.(check (list int)) "empty" [] (Parallel.map ~domains:4 succ [])

let test_default_domains () =
  Alcotest.(check bool) "at least one" true (Parallel.default_domains () >= 1)

(* --- Pool ---------------------------------------------------------------- *)

let test_pool_map_matches_sequential () =
  let l = List.init 1000 (fun i -> i) in
  let f x = (x * 7) - 3 in
  let seq = List.map f l in
  Pool.with_pool ~jobs:1 (fun p ->
      Alcotest.(check (list int)) "jobs=1" seq (Pool.map p f l));
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "jobs=4" seq (Pool.map p f l))

let test_pool_map_array_and_init () =
  Pool.with_pool ~jobs:4 (fun p ->
      let a = Array.init 257 (fun i -> i) in
      Alcotest.(check (array int)) "map_array" (Array.map succ a)
        (Pool.map_array p succ a);
      Alcotest.(check (array int)) "init" (Array.init 300 (fun i -> i * i))
        (Pool.init p 300 (fun i -> i * i));
      (* result may use the flat float-array representation; spot-check a
         cell computed by a worker chunk *)
      let fl = Pool.map_array p float_of_int a in
      Alcotest.(check (float 1e-9)) "float cells" 256.0 fl.(256))

let test_pool_empty_singleton () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.(check (list int)) "empty list" [] (Pool.map p succ []);
      Alcotest.(check (array int)) "empty array" [||] (Pool.map_array p succ [||]);
      Alcotest.(check (array int)) "init 0" [||] (Pool.init p 0 succ);
      Alcotest.(check (list int)) "singleton list" [ 2 ] (Pool.map p succ [ 1 ]);
      Alcotest.(check (array int)) "singleton array" [| 2 |]
        (Pool.map_array p succ [| 1 |]))

let test_pool_exception () =
  Pool.with_pool ~jobs:4 (fun p ->
      Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
          ignore
            (Pool.map_array p
               (fun x -> if x = 913 then failwith "boom" else x)
               (Array.init 2000 (fun i -> i))));
      Alcotest.(check (array int)) "pool usable after a failed job"
        (Array.init 100 succ)
        (Pool.map_array p succ (Array.init 100 (fun i -> i))))

let test_pool_nested_sequential () =
  (* Calls from inside a pool task must fall back to sequential execution
     instead of deadlocking on the shared deques. *)
  Pool.with_pool ~jobs:4 (fun p ->
      let got =
        Pool.map_array p
          (fun i -> Array.fold_left ( + ) 0 (Pool.init p 64 (fun j -> i + j)))
          (Array.init 128 (fun i -> i))
      in
      let want =
        Array.init 128 (fun i ->
            Array.fold_left ( + ) 0 (Array.init 64 (fun j -> i + j)))
      in
      Alcotest.(check (array int)) "nested map" want got)

let test_pool_run_range_covers () =
  Pool.with_pool ~jobs:4 (fun p ->
      let n = 1000 in
      let hits = Array.make n 0 in
      Pool.run_range p n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check (array int)) "each index exactly once" (Array.make n 1)
        hits)

let test_pool_global_and_stats () =
  let saved = Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Pool.set_jobs saved)
    (fun () ->
      Pool.set_jobs 3;
      Alcotest.(check int) "set_jobs round-trip" 3 (Pool.jobs ());
      (* The global pool is clamped to the hardware: asking for 3 domains
         on a smaller machine must not oversubscribe it. *)
      let clamped = min 3 (max 1 (Domain.recommended_domain_count ())) in
      Alcotest.(check int) "effective_jobs clamps to cores" clamped
        (Pool.effective_jobs ());
      let p = Pool.get () in
      Alcotest.(check int) "global pool size" clamped (Pool.size p);
      ignore (Pool.init p 10_000 (fun i -> i land 7));
      let after = Pool.stats () in
      Alcotest.(check int) "domains snapshot" clamped after.Pool.domains)

let test_pool_stats_counters () =
  (* Explicit [create ~domains] pools are deliberately unclamped, so the
     counters grow even on a single-core machine. *)
  Pool.with_pool ~jobs:3 (fun p ->
      Alcotest.(check int) "explicit pool unclamped" 3 (Pool.size p);
      let before = Pool.stats () in
      ignore (Pool.init p 10_000 (fun i -> i land 7));
      let after = Pool.stats () in
      Alcotest.(check bool) "jobs counter grows" true
        (after.Pool.jobs > before.Pool.jobs);
      Alcotest.(check bool) "chunks counter grows" true
        (after.Pool.chunks > before.Pool.chunks);
      Alcotest.(check bool) "spawned covers workers" true
        (after.Pool.spawned >= Pool.size p - 1);
      (* [busy] is live occupancy, not cumulative: back to 0 once the
         job drains (the resource sampler graphs it mid-run). *)
      Alcotest.(check int) "busy drains to zero at rest" 0 after.Pool.busy)

let test_pool_min_chunk_work () =
  Pool.with_pool ~jobs:4 (fun p ->
      let a = Array.init 2000 (fun i -> i) in
      let want = Array.map succ a in
      (* Results are bit-identical whatever the cutoff. *)
      List.iter
        (fun mcw ->
          Alcotest.(check (array int))
            (Printf.sprintf "min_chunk_work=%d" mcw)
            want
            (Pool.map_array ~min_chunk_work:mcw p succ a))
        [ 1; 64; 512; 5000 ];
      (* Ranges shorter than the cutoff run inline: no pool job counted. *)
      let before = Pool.stats () in
      ignore (Pool.init ~min_chunk_work:5000 p 2000 (fun i -> i));
      let after = Pool.stats () in
      Alcotest.(check int) "sequential below cutoff" before.Pool.jobs
        after.Pool.jobs)

let test_pool_shutdown_idempotent () =
  let p = Pool.create ~domains:2 () in
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check (list int)) "sequential after shutdown" [ 2; 3 ]
    (Pool.map p succ [ 1; 2 ])

(* --- Once ----------------------------------------------------------------- *)

let test_once_forces_once () =
  let calls = ref 0 in
  let o =
    Once.make (fun () ->
        incr calls;
        41 + 1)
  in
  Alcotest.(check bool) "not forced yet" false (Once.is_forced o);
  Alcotest.(check int) "value" 42 (Once.force o);
  Alcotest.(check bool) "forced" true (Once.is_forced o);
  Alcotest.(check int) "memoized" 42 (Once.force o);
  Alcotest.(check int) "thunk ran once" 1 !calls

let test_once_memoizes_exception () =
  let calls = ref 0 in
  let o =
    Once.make (fun () ->
        incr calls;
        failwith "boom")
  in
  Alcotest.check_raises "raises" (Failure "boom") (fun () ->
      ignore (Once.force o));
  Alcotest.check_raises "re-raises memoized" (Failure "boom") (fun () ->
      ignore (Once.force o));
  Alcotest.(check bool) "forced after raise" true (Once.is_forced o);
  Alcotest.(check int) "thunk ran once" 1 !calls

let test_once_cross_domain () =
  (* Lazy.t would raise RacyLazy here; Once must serialize the forcers. *)
  let calls = Atomic.make 0 in
  let o =
    Once.make (fun () ->
        Atomic.incr calls;
        7)
  in
  let ds = List.init 4 (fun _ -> Domain.spawn (fun () -> Once.force o)) in
  List.iter (fun d -> Alcotest.(check int) "value" 7 (Domain.join d)) ds;
  Alcotest.(check int) "single execution" 1 (Atomic.get calls)

(* --- properties ---------------------------------------------------------- *)

let prop_percentile_bounded =
  QCheck.Test.make ~count:200 ~name:"percentile within min/max"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 30) (float_range (-100.) 100.))
        (float_range 0.0 100.0))
    (fun (xs, p) ->
      let v = Stats.percentile p xs in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let prop_pearson_bounded =
  QCheck.Test.make ~count:200 ~name:"pearson in [-1,1]"
    QCheck.(
      list_of_size
        Gen.(int_range 2 30)
        (pair (float_range (-10.) 10.) (float_range (-10.) 10.)))
    (fun pairs ->
      let xs = List.map fst pairs and ys = List.map snd pairs in
      let r = Stats.pearson xs ys in
      r >= -1.0 -. 1e-9 && r <= 1.0 +. 1e-9)

let prop_shuffle_multiset =
  QCheck.Test.make ~count:100 ~name:"shuffle preserves multiset"
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let rng = Rng.create seed in
      let arr = Array.of_list l in
      Rng.shuffle rng arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

let prop_dedup_sorted =
  QCheck.Test.make ~count:100 ~name:"dedup yields sorted uniques"
    QCheck.(list small_int)
    (fun l -> Listx.dedup ~compare l = List.sort_uniq compare l)

let prop_geomean_between =
  QCheck.Test.make ~count:200 ~name:"geomean between min and max"
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.1 100.0))
    (fun xs ->
      let g = Stats.geomean xs in
      g >= Stats.minimum xs -. 1e-6 && g <= Stats.maximum xs +. 1e-6)

let () =
  Alcotest.run "mcf_util"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int invalid" `Quick test_rng_int_invalid;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          Alcotest.test_case "shuffle is permutation" `Quick
            test_rng_shuffle_permutation;
          Alcotest.test_case "weighted mass" `Quick test_rng_weighted_index;
          Alcotest.test_case "weighted zero mass" `Quick
            test_rng_weighted_zero_mass;
          Alcotest.test_case "weighted proportional" `Quick
            test_rng_weighted_proportional;
          Alcotest.test_case "sample without replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "split independent" `Quick
            test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy ] );
      ( "stats",
        [ Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "geomean" `Quick test_geomean;
          Alcotest.test_case "stddev" `Quick test_stddev;
          Alcotest.test_case "min/max" `Quick test_minmax;
          Alcotest.test_case "median" `Quick test_median;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "pearson" `Quick test_pearson;
          Alcotest.test_case "spearman" `Quick test_spearman;
          Alcotest.test_case "histogram" `Quick test_histogram ] );
      ( "listx",
        [ Alcotest.test_case "permutations" `Quick test_permutations;
          Alcotest.test_case "cartesian" `Quick test_cartesian;
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "index_of" `Quick test_index_of;
          Alcotest.test_case "dedup" `Quick test_dedup;
          Alcotest.test_case "min/max_by" `Quick test_min_max_by;
          Alcotest.test_case "sum_by" `Quick test_sum_by;
          Alcotest.test_case "range" `Quick test_range;
          Alcotest.test_case "interleavings" `Quick test_interleavings ] );
      ("hashing", [ Alcotest.test_case "fnv1a" `Quick test_hashing ]);
      ( "render",
        [ Alcotest.test_case "table" `Quick test_table_render;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
          Alcotest.test_case "formats" `Quick test_fmt;
          Alcotest.test_case "bar chart" `Quick test_chart_bar;
          Alcotest.test_case "scatter" `Quick test_chart_scatter;
          Alcotest.test_case "line chart" `Quick test_chart_line;
          Alcotest.test_case "sparkline" `Quick test_chart_sparkline ] );
      ( "parallel",
        [ Alcotest.test_case "matches sequential" `Quick
            test_parallel_matches_sequential;
          Alcotest.test_case "arrays" `Quick test_parallel_array;
          Alcotest.test_case "exception propagation" `Quick
            test_parallel_exception;
          Alcotest.test_case "empty" `Quick test_parallel_empty;
          Alcotest.test_case "default domains" `Quick test_default_domains ] );
      ( "pool",
        [ Alcotest.test_case "map matches sequential" `Quick
            test_pool_map_matches_sequential;
          Alcotest.test_case "map_array and init" `Quick
            test_pool_map_array_and_init;
          Alcotest.test_case "empty and singleton" `Quick
            test_pool_empty_singleton;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested calls run sequentially" `Quick
            test_pool_nested_sequential;
          Alcotest.test_case "run_range covers once" `Quick
            test_pool_run_range_covers;
          Alcotest.test_case "global pool and stats" `Quick
            test_pool_global_and_stats;
          Alcotest.test_case "stats counters" `Quick test_pool_stats_counters;
          Alcotest.test_case "min_chunk_work cutoff" `Quick
            test_pool_min_chunk_work;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_pool_shutdown_idempotent ] );
      ( "once",
        [ Alcotest.test_case "forces once" `Quick test_once_forces_once;
          Alcotest.test_case "memoizes exceptions" `Quick
            test_once_memoizes_exception;
          Alcotest.test_case "cross-domain" `Quick test_once_cross_domain ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_percentile_bounded; prop_pearson_bounded;
            prop_shuffle_multiset; prop_dedup_sorted; prop_geomean_between;
            QCheck.Test.make ~count:50 ~name:"parallel map = map"
              QCheck.(pair (int_range 1 6) (list small_int))
              (fun (d, l) ->
                Parallel.map ~domains:d (fun x -> x * 3) l
                = List.map (fun x -> x * 3) l) ] ) ]
