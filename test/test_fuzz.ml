(* Tests for the differential fuzzing subsystem: generator determinism,
   corpus round-trips and replay of the checked-in regression corpus, the
   oracle pipeline end to end on a synthetic bug, and determinism of the
   whole run across pool sizes. *)

module Gen = Mcf_fuzz.Gen
module Oracle = Mcf_fuzz.Oracle
module Shrink = Mcf_fuzz.Shrink
module Corpus = Mcf_fuzz.Corpus
module Driver = Mcf_fuzz.Driver

(* --- generator ------------------------------------------------------------ *)

let test_gen_deterministic () =
  for id = 0 to 19 do
    let a = Gen.case_of_id ~seed:11 id in
    let b = Gen.case_of_id ~seed:11 id in
    Alcotest.(check string)
      (Printf.sprintf "case %d replays" id)
      (Gen.case_to_string a) (Gen.case_to_string b)
  done

let test_gen_seeds_differ () =
  let render seed =
    List.init 10 (fun id -> Gen.case_to_string (Gen.case_of_id ~seed id))
  in
  Alcotest.(check bool) "seed changes the stream" true
    (render 1 <> render 2)

let test_gen_cases_well_formed () =
  for id = 0 to 49 do
    let c = Gen.case_of_id ~seed:3 id in
    (* chain_of_spec validates internally; check the candidate matches. *)
    List.iter
      (fun (a : Mcf_ir.Axis.t) ->
        let t = Mcf_ir.Candidate.tile c.Gen.cand a in
        Alcotest.(check bool)
          (Printf.sprintf "case %d tile %s in bounds" id a.name)
          true
          (t >= 1 && t <= a.size))
      c.Gen.chain.Mcf_ir.Chain.axes;
    Alcotest.(check bool) "work estimate positive" true
      (Gen.interp_work c > 0.0)
  done

let test_spec_roundtrip () =
  for id = 0 to 19 do
    let c = Gen.case_of_id ~seed:5 id in
    List.iter
      (fun e ->
        match Gen.epi_of_string (Gen.epi_to_string e) with
        | Ok e' ->
          Alcotest.(check string) "epi round trip" (Gen.epi_to_string e)
            (Gen.epi_to_string e')
        | Error m -> Alcotest.failf "epi_of_string: %s" m)
      c.Gen.cspec.Gen.epis
  done

(* --- corpus --------------------------------------------------------------- *)

let test_corpus_roundtrip () =
  let case = Gen.case_of_id ~seed:9 4 in
  let entry = { Corpus.oracle = "interp"; reason = "because"; case } in
  match Corpus.of_string (Corpus.to_string entry) with
  | Error m -> Alcotest.failf "corpus parse: %s" m
  | Ok e ->
    Alcotest.(check string) "oracle" "interp" e.Corpus.oracle;
    Alcotest.(check string) "reason" "because" e.Corpus.reason;
    Alcotest.(check string) "case survives"
      (Gen.case_to_string case)
      (Gen.case_to_string e.Corpus.case)

let test_corpus_rejects_garbage () =
  (match Corpus.of_string "oracle interp\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated entry accepted");
  match Corpus.of_string "nonsense\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

(* The checked-in regression corpus must replay clean forever: a Pass
   means the once-failing case is fixed, a Skip means the schedule is now
   rejected as invalid (also fine — the oracle would run and fail again
   if the validity rule regressed).  An Error is a reintroduced bug. *)
let test_corpus_replays () =
  (* dune runtest runs in the test build dir, where the glob_files dep
     places corpus/; fall back for a `dune exec` from the repo root. *)
  let dir =
    if Sys.file_exists "corpus" then "corpus"
    else Filename.concat "test" "corpus"
  in
  let files = Corpus.files dir in
  Alcotest.(check bool) "corpus is not empty" true (List.length files >= 3);
  List.iter
    (fun f ->
      match Corpus.load f with
      | Error m -> Alcotest.failf "%s: unreadable: %s" f m
      | Ok e -> (
        match Driver.replay e with
        | Ok (`Pass | `Skip _) -> ()
        | Error m -> Alcotest.failf "%s: regression reproduces: %s" f m))
    files

(* --- driver --------------------------------------------------------------- *)

let test_driver_deterministic_across_jobs () =
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Mcf_util.Pool.set_jobs saved)
    (fun () ->
      let summary jobs =
        Mcf_util.Pool.set_jobs jobs;
        Driver.render_summary (Driver.run ~seed:13 ~max_cases:30 ())
      in
      Alcotest.(check string) "jobs 1 = jobs 4" (summary 1) (summary 4))

let test_driver_counters () =
  let before = Mcf_obs.Metrics.counter_value "fuzz.cases" in
  let o = Driver.run ~seed:21 ~max_cases:5 () in
  Alcotest.(check int) "ran 5 cases" 5 o.Driver.cases;
  Alcotest.(check int) "fuzz.cases counted" (before + 5)
    (Mcf_obs.Metrics.counter_value "fuzz.cases");
  Alcotest.(check bool) "oracle runs counted" true
    (Mcf_obs.Metrics.counter_value "fuzz.oracle_runs" > 0)

let test_driver_budget_is_virtual () =
  let a = Driver.run ~seed:17 ~budget_s:0.5 () in
  let b = Driver.run ~seed:17 ~budget_s:0.5 () in
  Alcotest.(check int) "same case count for same budget" a.Driver.cases
    b.Driver.cases;
  Alcotest.(check bool) "budget stops the loop" true
    (a.Driver.cases > 0 && a.Driver.cases < max_int)

(* --- synthetic bug end to end --------------------------------------------- *)

(* Install a deliberately broken optimization pass and prove the whole
   pipeline — oracle, shrinker, corpus — catches it, minimizes it to at
   most two blocks, and produces a corpus entry that replays clean once
   the bug is removed. *)
let test_synthetic_bug_caught_and_shrunk () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "mcf-fuzz-%d" (Unix.getpid ()))
  in
  let outcome =
    Fun.protect
      ~finally:(fun () -> Oracle.interp_transform := Fun.id)
      (fun () ->
        Oracle.interp_transform := Oracle.drop_live_loops;
        Driver.run ~seed:7 ~budget_s:1e9 ~max_cases:10 ~corpus_dir:dir ())
  in
  match outcome.Driver.failures with
  | [] -> Alcotest.fail "synthetic bug not caught in 10 cases"
  | f :: _ -> (
    Alcotest.(check string) "caught by the interp oracle" "interp"
      f.Driver.foracle;
    Alcotest.(check bool) "minimized to <= 2 blocks" true
      (Gen.n_blocks f.Driver.minimized.Gen.cspec <= 2);
    Alcotest.(check bool) "shrinker made progress" true
      (f.Driver.shrink_steps > 0);
    match f.Driver.corpus_path with
    | None -> Alcotest.fail "no corpus entry written"
    | Some path -> (
      match Corpus.load path with
      | Error m -> Alcotest.failf "corpus entry unreadable: %s" m
      | Ok e -> (
        match Driver.replay e with
        | Ok (`Pass | `Skip _) -> Sys.remove path
        | Error m ->
          Alcotest.failf "entry still fails without the bug: %s" m)))

(* --- shrinker ------------------------------------------------------------- *)

let test_shrink_edits_reduce () =
  let c = Gen.case_of_id ~seed:2 6 in
  List.iter
    (fun (e : Gen.case) ->
      Alcotest.(check bool) "edit does not grow the genome" true
        (Gen.n_blocks e.Gen.cspec <= Gen.n_blocks c.Gen.cspec))
    (Shrink.edits c)

let test_shrink_fixpoint () =
  let c = Gen.case_of_id ~seed:2 6 in
  (* An always-failing predicate shrinks to a local minimum: no edit of
     the result may satisfy the predicate other than the result itself. *)
  let m, steps = Shrink.minimize ~still_fails:(fun _ -> true) c in
  Alcotest.(check bool) "took steps" true (steps > 0);
  Alcotest.(check int) "minimal block count" 1 (Gen.n_blocks m.Gen.cspec)

let () =
  Alcotest.run "mcf_fuzz"
    [ ( "generator",
        [ Alcotest.test_case "deterministic" `Quick test_gen_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_gen_seeds_differ;
          Alcotest.test_case "cases well-formed" `Quick
            test_gen_cases_well_formed;
          Alcotest.test_case "epi round trip" `Quick test_spec_roundtrip ] );
      ( "corpus",
        [ Alcotest.test_case "round trip" `Quick test_corpus_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_corpus_rejects_garbage;
          Alcotest.test_case "checked-in corpus replays" `Quick
            test_corpus_replays ] );
      ( "driver",
        [ Alcotest.test_case "identical at jobs 1 vs 4" `Quick
            test_driver_deterministic_across_jobs;
          Alcotest.test_case "metrics counters" `Quick test_driver_counters;
          Alcotest.test_case "virtual budget" `Quick
            test_driver_budget_is_virtual ] );
      ( "pipeline",
        [ Alcotest.test_case "synthetic bug caught + shrunk" `Quick
            test_synthetic_bug_caught_and_shrunk ] );
      ( "shrinker",
        [ Alcotest.test_case "edits reduce" `Quick test_shrink_edits_reduce;
          Alcotest.test_case "fixpoint" `Quick test_shrink_fixpoint ] ) ]
