(* Tests for the IR: axes, chains, tiling enumeration, candidates, the
   placed-program construction (placement, dead-loop elimination, hoisting,
   validity, residency) and the traffic/FLOP accounting of lowering.

   Several cases check the exact examples of the paper: Fig. 4(a)'s
   optimized mhnk expression, Fig. 4(b)'s dead-loop hoist of L_A, the
   residency blow-up of Fig. 6(b), Rule-1 equivalence of mhnk and mnkh. *)

open Mcf_ir

let gemm = Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()
let attn = Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:64 ()
let gemm3 = Chain.gemm_chain3 ~m:256 ~n:128 ~k:64 ~h:128 ~p:64 ()

let ax chain name = Chain.axis chain name
let m = ax gemm "m"
let n = ax gemm "n"
let k = ax gemm "k"
let h = ax gemm "h"

let deep order tiles = Candidate.make (Tiling.Deep order) tiles
let std_tiles = [ ("m", 128); ("n", 64); ("k", 32); ("h", 64) ]

let build ?rule1 ?dead_loop_elim ?hoisting chain cand =
  Program.build ?rule1 ?dead_loop_elim ?hoisting chain cand

let stmt_path program key =
  List.find_map
    (fun (path, s) ->
      let k =
        match s with
        | Program.Load (ts, _) -> "L" ^ ts.Chain.tname
        | Program.Store (ts, _) -> "S" ^ ts.Chain.tname
        | Program.Compute b -> "C" ^ b.Chain.bname
        | Program.Epilogue b -> "E" ^ b.Chain.bname
      in
      if k = key then Some (Axis.names path) else None)
    (Program.placed_stmts program)

let check_path program key expected =
  match stmt_path program key with
  | Some got -> Alcotest.(check string) (key ^ " path") expected got
  | None -> Alcotest.failf "statement %s not found" key

(* --- Axis ---------------------------------------------------------------- *)

let test_axis_basics () =
  let a = Axis.spatial "m" 128 in
  Alcotest.(check bool) "spatial" true (Axis.is_spatial a);
  Alcotest.(check bool) "not reduce" false (Axis.is_reduce a);
  Alcotest.(check bool) "equal by name" true
    (Axis.equal a (Axis.reduce "m" 64));
  Alcotest.(check string) "names" "mnkh" (Axis.names [ m; n; k; h ])

let test_axis_find () =
  Alcotest.(check int) "find size" 512 (Axis.find "k" gemm.axes).size;
  Alcotest.(check bool) "missing raises" true
    (try
       ignore (Axis.find "z" gemm.axes);
       false
     with Not_found -> true)

(* --- Chain --------------------------------------------------------------- *)

let test_chain_validate () =
  List.iter
    (fun chain ->
      match Chain.validate chain with
      | Ok () -> ()
      | Error e -> Alcotest.failf "%s invalid: %s" chain.Chain.cname e)
    [ gemm; attn; gemm3 ]

let test_chain_roles () =
  Alcotest.(check bool) "m spatial" true (Axis.is_spatial m);
  Alcotest.(check bool) "n reduce" true (Axis.is_reduce n);
  Alcotest.(check bool) "k reduce" true (Axis.is_reduce k);
  Alcotest.(check bool) "h spatial" true (Axis.is_spatial h)

let test_used_axes () =
  let c_block = List.hd gemm.blocks in
  let e_block = List.nth gemm.blocks 1 in
  Alcotest.(check string) "C uses mnk" "mnk"
    (Axis.names (Chain.used_axes c_block));
  Alcotest.(check string) "E uses mhn" "mhn"
    (Axis.names (Chain.used_axes e_block))

let test_private_shared () =
  let c_block = List.hd gemm.blocks in
  let e_block = List.nth gemm.blocks 1 in
  Alcotest.(check string) "C private k" "k"
    (Axis.names (Chain.private_axes gemm c_block));
  Alcotest.(check string) "E private h" "h"
    (Axis.names (Chain.private_axes gemm e_block));
  Alcotest.(check string) "shared mn" "mn" (Axis.names (Chain.shared_axes gemm))

let test_producer_consumer () =
  let c_spec =
    List.find (fun (t : Chain.tensor_spec) -> t.tname = "C") gemm.tensors
  in
  (match Chain.producer_of gemm c_spec with
  | Some b -> Alcotest.(check string) "producer of C" "C" b.bname
  | None -> Alcotest.fail "C has a producer");
  Alcotest.(check int) "C consumed once" 1
    (List.length (Chain.consumers_of gemm c_spec));
  let a_spec =
    List.find (fun (t : Chain.tensor_spec) -> t.tname = "A") gemm.tensors
  in
  Alcotest.(check bool) "inputs have no producer" true
    (Chain.producer_of gemm a_spec = None)

let test_linearity () =
  let s_block = List.hd attn.blocks in
  let c_block = List.hd gemm.blocks in
  Alcotest.(check bool) "softmax nonlinear" false
    (Chain.is_linear_through attn s_block);
  Alcotest.(check bool) "plain contraction linear" true
    (Chain.is_linear_through gemm c_block)

let test_total_flops () =
  let want = 2.0 *. 1024.0 *. 1024.0 *. (512.0 +. 512.0) in
  Alcotest.(check (float 1.0)) "gemm chain flops" want (Chain.total_flops gemm)

let test_traffic_bounds () =
  let fused = Chain.min_traffic_bytes gemm ~elem_bytes:2 in
  let unfused = Chain.unfused_traffic_bytes gemm ~elem_bytes:2 in
  Alcotest.(check bool) "unfused adds intermediate roundtrip" true
    (unfused > fused);
  Alcotest.(check (float 1.0)) "delta = 2x|C|"
    (2.0 *. 1024.0 *. 1024.0 *. 2.0)
    (unfused -. fused)

let test_batch_scaling () =
  let b4 = Chain.gemm_chain ~batch:4 ~m:64 ~n:64 ~k:64 ~h:64 () in
  let b1 = Chain.gemm_chain ~batch:1 ~m:64 ~n:64 ~k:64 ~h:64 () in
  Alcotest.(check (float 1.0)) "flops scale with batch"
    (4.0 *. Chain.total_flops b1)
    (Chain.total_flops b4)

(* --- Tiling -------------------------------------------------------------- *)

let test_tiling_counts () =
  Alcotest.(check int) "24 deep (2-op)" 24
    (List.length (Tiling.enumerate_deep gemm));
  Alcotest.(check int) "2 flat (2-op)" 2
    (List.length (Tiling.enumerate_flat gemm));
  Alcotest.(check int) "26 total (paper)" 26
    (List.length (Tiling.enumerate gemm));
  Alcotest.(check int) "120 deep (3-op)" 120
    (List.length (Tiling.enumerate_deep gemm3));
  Alcotest.(check int) "6 flat (3-op)" 6
    (List.length (Tiling.enumerate_flat gemm3))

let test_tiling_notation () =
  Alcotest.(check string) "deep" "mhnk"
    (Tiling.to_string (Tiling.Deep [ m; h; n; k ]));
  Alcotest.(check string) "flat" "mn(k,h)"
    (Tiling.to_string (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])))

let test_sub_tiling_rule1 () =
  let sub t = Tiling.to_string (Tiling.sub_tiling gemm t) in
  Alcotest.(check string) "mhnk -> nk" "nk" (sub (Tiling.Deep [ m; h; n; k ]));
  Alcotest.(check string) "mnkh -> nk" "nk" (sub (Tiling.Deep [ m; n; k; h ]));
  Alcotest.(check bool) "kn differs" true
    (sub (Tiling.Deep [ m; h; k; n ]) <> "nk");
  Alcotest.(check string) "flat strips spatial" "n(k,)"
    (sub (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])))

let test_tiling_equal () =
  Alcotest.(check bool) "equal deep" true
    (Tiling.equal (Tiling.Deep [ m; n ]) (Tiling.Deep [ m; n ]));
  Alcotest.(check bool) "order matters" false
    (Tiling.equal (Tiling.Deep [ m; n ]) (Tiling.Deep [ n; m ]));
  Alcotest.(check bool) "deep <> flat" false
    (Tiling.equal (Tiling.Deep [ m ]) (Tiling.Flat ([ m ], [])))

(* --- Candidate ----------------------------------------------------------- *)

let test_candidate_trip_padding () =
  let c = deep [ m; h; n; k ] [ ("m", 100); ("n", 64); ("k", 32); ("h", 64) ] in
  Alcotest.(check int) "tile" 100 (Candidate.tile c m);
  Alcotest.(check int) "trip ceil" 11 (Candidate.trip c m);
  Alcotest.(check int) "padded" 1100 (Candidate.padded_size c m);
  Alcotest.(check (float 1e-9)) "padding ratio" (76.0 /. 1024.0)
    (Candidate.padding_ratio c m);
  Alcotest.(check (float 1e-9)) "no padding" 0.0 (Candidate.padding_ratio c n)

let test_tile_options () =
  let opts = Candidate.tile_options 64 in
  Alcotest.(check (list int)) "multiples of 16" [ 16; 32; 48; 64 ] opts;
  Alcotest.(check (list int)) "small dim single option" [ 8 ]
    (Candidate.tile_options 8);
  let opts100 = Candidate.tile_options 100 in
  Alcotest.(check bool) "dimension itself included" true (List.mem 100 opts100)

let test_candidate_key_stable () =
  let c1 = deep [ m; h; n; k ] [ ("m", 64); ("n", 32); ("k", 16); ("h", 64) ] in
  let c2 = deep [ m; h; n; k ] [ ("h", 64); ("k", 16); ("n", 32); ("m", 64) ] in
  Alcotest.(check bool) "tile order irrelevant" true (Candidate.equal c1 c2)

(* --- Program: placement (Fig. 4) ----------------------------------------- *)

let test_fig4a_structure () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  Alcotest.(check string) "grid binds spatial" "mh" (Axis.names p.grid_axes);
  check_path p "LA" "nk";
  check_path p "LB" "nk";
  check_path p "CC" "nk";
  check_path p "LD" "n";
  check_path p "CE" "n";
  check_path p "SE" ""

let test_fig4b_dead_loop_hoist () =
  let tiles = [ ("m", 128); ("n", 64); ("k", 512); ("h", 64) ] in
  let p = build gemm (deep [ m; h; n; k ] tiles) in
  check_path p "LA" "";
  check_path p "LB" "n";
  check_path p "CC" "n";
  let p' = build ~dead_loop_elim:false gemm (deep [ m; h; n; k ] tiles) in
  check_path p' "LA" "nk"

let test_no_hoisting () =
  (* with the k loop dead, L_A sits in the n scope by default; only the
     hoisting pass moves it to the top of the block *)
  let tiles = [ ("m", 128); ("n", 64); ("k", 512); ("h", 64) ] in
  let p = build ~hoisting:false gemm (deep [ m; h; n; k ] tiles) in
  check_path p "LA" "n";
  let p' = build ~hoisting:true gemm (deep [ m; h; n; k ] tiles) in
  check_path p' "LA" ""

let test_rule1_grid_binding () =
  let p = build ~rule1:false gemm (deep [ m; n; k; h ] std_tiles) in
  Alcotest.(check string) "prefix only" "m" (Axis.names p.grid_axes);
  let p' = build gemm (deep [ m; n; k; h ] std_tiles) in
  Alcotest.(check string) "rule1 binds all spatial" "mh"
    (Axis.names p'.grid_axes)

let test_rule1_equivalence () =
  let p1 = build gemm (deep [ m; h; n; k ] std_tiles) in
  let p2 = build gemm (deep [ m; n; k; h ] std_tiles) in
  Alcotest.(check string) "same program" (Program.to_string p1)
    (Program.to_string p2)

let test_flat_structure () =
  let cand =
    Candidate.make (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])) std_tiles
  in
  let p = build gemm cand in
  Alcotest.(check string) "only m in grid" "m" (Axis.names p.grid_axes);
  check_path p "CC" "nk";
  check_path p "CE" "nh";
  check_path p "SE" ""

let test_flat_group_order () =
  let cand =
    Candidate.make
      (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ]))
      [ ("m", 128); ("n", 64); ("k", 512); ("h", 64) ]
  in
  let p = build gemm cand in
  let order =
    List.filter_map
      (fun (_, s) ->
        match s with Program.Compute b -> Some b.Chain.bname | _ -> None)
      (Program.placed_stmts p)
  in
  Alcotest.(check (list string)) "C before E" [ "C"; "E" ] order

let test_grid_blocks () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  Alcotest.(check int) "(1024/128)*(512/64)" 64 (Program.grid_blocks p);
  let pa =
    build attn
      (Candidate.make
         (Tiling.Deep (List.map (ax attn) [ "m"; "h"; "n"; "k" ]))
         [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ])
  in
  Alcotest.(check int) "batch multiplies grid" (8 * 4) (Program.grid_blocks pa)

let test_trips () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  let c_block = List.hd gemm.blocks in
  Alcotest.(check int) "C trips = n*k" (16 * 16)
    (Program.stmt_trips p (Program.Compute c_block))

(* --- Program: validity and online softmax -------------------------------- *)

let attn_cand order tiles =
  Candidate.make (Tiling.Deep (List.map (ax attn) order)) tiles

let test_attention_valid_online () =
  let p =
    build attn
      (attn_cand [ "m"; "h"; "n"; "k" ]
         [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ])
  in
  Alcotest.(check bool) "valid" true (Result.is_ok (Program.validate p));
  Alcotest.(check bool) "online when n tiled" true (Program.online_softmax p)

let test_attention_offline () =
  let p =
    build attn
      (attn_cand [ "m"; "h"; "n"; "k" ]
         [ ("m", 128); ("n", 512); ("k", 64); ("h", 64) ])
  in
  Alcotest.(check bool) "offline when n whole" false (Program.online_softmax p)

let test_attention_invalid_kn () =
  let p =
    build attn
      (attn_cand [ "m"; "h"; "k"; "n" ]
         [ ("m", 128); ("n", 64); ("k", 16); ("h", 64) ])
  in
  match Program.validate p with
  | Error (Program.Nonlinear_partial_consume { producer; loop }) ->
    Alcotest.(check string) "producer" "S" producer;
    Alcotest.(check string) "loop" "k" loop
  | Error e ->
    Alcotest.failf "expected partial-consume violation, got: %s"
      (Program.string_of_invalid e)
  | Ok () -> Alcotest.fail "kn attention with partial k must be invalid"

let test_gemm_kn_valid () =
  let p = build gemm (deep [ m; h; k; n ] std_tiles) in
  Alcotest.(check bool) "linear chains allow partial consumption" true
    (Result.is_ok (Program.validate p))

let mlp = Chain.mlp_chain ~m:256 ~n:256 ~k:128 ~h:128 ()

let test_mlp_unary_nonlinear () =
  Alcotest.(check bool) "mlp chain validates" true
    (Result.is_ok (Chain.validate mlp));
  let a s = Chain.axis mlp s in
  (* gelu between the GEMMs forbids consuming C inside its k loop *)
  let bad =
    build mlp
      (Candidate.make
         (Tiling.Deep [ a "m"; a "h"; a "k"; a "n" ])
         [ ("m", 64); ("n", 32); ("k", 32); ("h", 32) ])
  in
  Alcotest.(check bool) "partial-k consumption invalid" true
    (Result.is_error (Program.validate bad));
  let good =
    build mlp
      (Candidate.make
         (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
         [ ("m", 64); ("n", 32); ("k", 32); ("h", 32) ])
  in
  Alcotest.(check bool) "nk order valid" true
    (Result.is_ok (Program.validate good));
  Alcotest.(check bool) "unary adds no online stats" false
    (Program.online_softmax good)

(* --- Program: residency (Fig. 6) ----------------------------------------- *)

let tensor chain name =
  List.find (fun (t : Chain.tensor_spec) -> t.tname = name) chain.Chain.tensors

let test_residency_nk () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  Alcotest.(check int) "C single tile (Fig 6a)" 1
    (Program.residency_multiplier p (tensor gemm "C"));
  Alcotest.(check int) "E single tile" 1
    (Program.residency_multiplier p (tensor gemm "E"))

let test_residency_kn_blowup () =
  let p = build gemm (deep [ m; h; k; n ] std_tiles) in
  Alcotest.(check int) "C tiles x trip(n) (Fig 6b)" 16
    (Program.residency_multiplier p (tensor gemm "C"))

let test_residency_flat_accumulator () =
  let cand =
    Candidate.make (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])) std_tiles
  in
  let p = build gemm cand in
  Alcotest.(check int) "E x trip(h)" 8
    (Program.residency_multiplier p (tensor gemm "E"));
  Alcotest.(check int) "inputs always 1" 1
    (Program.residency_multiplier p (tensor gemm "A"))

(* --- Program: DAG export -------------------------------------------------- *)

let test_to_dot () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  let dot = Program.to_dot p in
  let has sub =
    let ns = String.length dot and msub = String.length sub in
    let rec go i = i + msub <= ns && (String.sub dot i msub = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "digraph" true (has "digraph schedule");
  Alcotest.(check bool) "loop node" true (has "loop k (x16)");
  Alcotest.(check bool) "order edges dashed" true (has "style=dashed");
  Alcotest.(check bool) "closes" true (has "}")

let test_dag_edges () =
  let p = build gemm (deep [ m; h; n; k ] std_tiles) in
  let edges = Program.dag_edges p in
  Alcotest.(check bool) "scope edge loop k -> compute C" true
    (List.mem ("loop:k", "C:C") edges);
  Alcotest.(check bool) "order edge load D -> compute E" true
    (List.mem ("L:D:E", "C:E") edges)

(* --- TIR round trip (SV-B) ------------------------------------------------- *)

let test_tir_roundtrip_deep () =
  let cand = deep [ m; h; n; k ] std_tiles in
  let tir = Tir.of_candidate gemm cand in
  let back = Tir.extract tir in
  Alcotest.(check string) "canonical deep candidate survives"
    (Candidate.key cand) (Candidate.key back)

let test_tir_roundtrip_rule1_equivalence () =
  (* mnkh extracts to its canonical form mhnk: same per-block program *)
  let cand = deep [ m; n; k; h ] std_tiles in
  let back = Tir.extract (Tir.of_candidate gemm cand) in
  Alcotest.(check string) "Rule-1 equivalent program"
    (Program.to_string (Program.build gemm cand))
    (Program.to_string (Program.build gemm back))

let test_tir_roundtrip_flat () =
  let cand =
    Candidate.make (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])) std_tiles
  in
  let back = Tir.extract (Tir.of_candidate gemm cand) in
  Alcotest.(check string) "flat candidate survives" (Candidate.key cand)
    (Candidate.key back)

let test_tir_structure () =
  let cand = deep [ m; h; n; k ] std_tiles in
  let tir = Tir.of_candidate gemm cand in
  (* grid m, h + serial n, k = four loops (dead loops preserved) *)
  Alcotest.(check int) "four cross-tile loops" 4 (Tir.loop_count tir);
  let src = Tir.pretty tir in
  let has sub =
    let n = String.length src and msub = String.length sub in
    let rec go i = i + msub <= n && (String.sub src i msub = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "prim_func header" true (has "@T.prim_func");
  Alcotest.(check bool) "blockIdx binding" true
    (has "T.thread_binding(8, \"blockIdx.x\")");
  Alcotest.(check bool) "reduction init" true (has "T.init()");
  Alcotest.(check bool) "read regions" true (has "T.reads(A[m_0, k_0], B[k_0, n_0])")

let test_tir_attention_epilogue_block () =
  let a s = Chain.axis attn s in
  let cand =
    Candidate.make
      (Tiling.Deep [ a "m"; a "h"; a "n"; a "k" ])
      [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ]
  in
  let src = Tir.pretty (Tir.of_candidate attn cand) in
  let has sub =
    let n = String.length src and msub = String.length sub in
    let rec go i = i + msub <= n && (String.sub src i msub = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "softmax epilogue block" true
    (has "T.block(\"S_epilogue\")")

(* --- Lower: accounting ---------------------------------------------------- *)

let lower chain cand = Lower.lower ~elem_bytes:2 chain cand

let test_lower_traffic_mhnk () =
  let l = lower gemm (deep [ m; h; n; k ] std_tiles) in
  let want =
    2.0
    *. ((128.0 *. 32.0 *. 256.0) +. (32.0 *. 64.0 *. 256.0)
       +. (64.0 *. 64.0 *. 16.0) +. (128.0 *. 64.0))
  in
  Alcotest.(check (float 1.0)) "bytes per block" want (Lower.bytes_per_block l);
  Alcotest.(check (float 1.0)) "total = per block x grid" (want *. 64.0)
    (Lower.total_traffic_bytes l)

let test_lower_flops () =
  let l = lower gemm (deep [ m; h; n; k ] std_tiles) in
  let want =
    (2.0 *. 128.0 *. 64.0 *. 32.0 *. 256.0)
    +. (2.0 *. 128.0 *. 64.0 *. 64.0 *. 16.0)
  in
  Alcotest.(check (float 1.0)) "flops per block" want (Lower.flops_per_block l)

let test_lower_dead_loop_saves_traffic () =
  let tiles = [ ("m", 128); ("n", 64); ("k", 512); ("h", 64) ] in
  let with_opt = lower gemm (deep [ m; h; n; k ] tiles) in
  let without =
    Lower.lower ~dead_loop_elim:false ~elem_bytes:2 gemm
      (deep [ m; h; n; k ] tiles)
  in
  Alcotest.(check bool) "Fig 4(b) optimization reduces traffic" true
    (Lower.bytes_per_block with_opt < Lower.bytes_per_block without)

let test_lower_redundant_compute () =
  let good = lower gemm (deep [ m; h; n; k ] std_tiles) in
  let bad =
    Lower.lower ~rule1:false ~elem_bytes:2 gemm (deep [ m; n; k; h ] std_tiles)
  in
  Alcotest.(check bool) "redundant compute costed" true
    (Lower.flops_per_block bad *. float_of_int bad.blocks
    > Lower.flops_per_block good *. float_of_int good.blocks)

let test_lower_kernel_fields () =
  let l = lower gemm (deep [ m; h; n; k ] std_tiles) in
  let kernel = Lower.to_kernel l ~smem_bytes:12345 in
  Alcotest.(check int) "blocks" 64 kernel.Mcf_gpu.Kernel.blocks;
  Alcotest.(check int) "smem passthrough" 12345 kernel.Mcf_gpu.Kernel.smem_bytes;
  Alcotest.(check int) "4 accesses" 4 (List.length kernel.Mcf_gpu.Kernel.accesses);
  Alcotest.(check int) "2 computes" 2 (List.length kernel.Mcf_gpu.Kernel.computes);
  Alcotest.(check (float 1.0)) "kernel flops match lowering"
    (Lower.flops_per_block l *. 64.0)
    (Mcf_gpu.Kernel.total_flops kernel)

let test_lower_epilogue_labels () =
  let l =
    lower attn
      (attn_cand [ "m"; "h"; "n"; "k" ]
         [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ])
  in
  let kernel = Lower.to_kernel l ~smem_bytes:0 in
  Alcotest.(check bool) "epilogue labeled" true
    (List.exists
       (fun (c : Mcf_gpu.Kernel.compute) -> c.clabel = "S!epi")
       kernel.Mcf_gpu.Kernel.computes)

let test_lower_online_softmax_flag () =
  let online =
    lower attn
      (attn_cand [ "m"; "h"; "n"; "k" ]
         [ ("m", 128); ("n", 64); ("k", 64); ("h", 64) ])
  in
  Alcotest.(check bool) "flag set" true online.Lower.online_softmax;
  let offline =
    lower attn
      (attn_cand [ "m"; "h"; "n"; "k" ]
         [ ("m", 128); ("n", 512); ("k", 64); ("h", 64) ])
  in
  Alcotest.(check bool) "flag clear" false offline.Lower.online_softmax

let test_lower_validity_propagates () =
  let l =
    lower attn
      (attn_cand [ "m"; "h"; "k"; "n" ]
         [ ("m", 128); ("n", 64); ("k", 16); ("h", 64) ])
  in
  Alcotest.(check bool) "invalid schedule flagged" true
    (Result.is_error l.Lower.validity)

let test_lower_flat_store_whole_rowblock () =
  let cand =
    Candidate.make (Tiling.Flat ([ m; n ], [ [ k ]; [ h ] ])) std_tiles
  in
  let l = lower gemm cand in
  let store =
    List.find (fun (a : Lower.access) -> a.direction = Lower.Dstore) l.accesses
  in
  Alcotest.(check int) "store flushes trip(h) tiles at once" (128 * 64 * 8)
    store.tile_elems;
  Alcotest.(check int) "stored once" 1 store.trips

(* --- property: accounting consistency ------------------------------------

   The random chains and candidates come from the fuzzing subsystem's
   seeded generator, so the properties range over arbitrary MBCI chains —
   varying depth, batch, epilogues, odd extents, flat and deep tilings —
   instead of one pinned workload; the paper workloads above remain as
   exact fixtures. *)

let fuzz_case n = Mcf_fuzz.Gen.case_of_id ~seed:20260806 (n mod 64)

let fuzz_lower (c : Mcf_fuzz.Gen.case) =
  Lower.lower ~rule1:c.rule1 ~dead_loop_elim:c.dle ~hoisting:c.hoist
    ~elem_bytes:c.elem_bytes c.chain c.cand

let prop_tir_roundtrip =
  QCheck.Test.make ~count:100
    ~name:"TIR round trip preserves the per-block program" QCheck.small_int
    (fun n ->
      let c = fuzz_case n in
      match Tir.extract (Tir.of_candidate c.chain c.cand) with
      | back ->
        Program.to_string (Program.build c.chain c.cand)
        = Program.to_string (Program.build c.chain back)
      | exception Invalid_argument _ -> false)

let prop_lowering_totals_positive =
  QCheck.Test.make ~count:100 ~name:"lowering accounting is sane"
    QCheck.small_int (fun n ->
      let c = fuzz_case n in
      let l = fuzz_lower c in
      l.Lower.blocks >= 1
      && Lower.bytes_per_block l > 0.0
      && Lower.flops_per_block l > 0.0
      && l.Lower.stmt_trips_total >= List.length l.Lower.accesses)

let prop_traffic_at_least_compulsory =
  QCheck.Test.make ~count:100 ~name:"traffic >= fused lower bound"
    QCheck.small_int (fun n ->
      let c = fuzz_case n in
      let l = fuzz_lower c in
      Lower.total_traffic_bytes l
      >= 0.99 *. Chain.min_traffic_bytes c.chain ~elem_bytes:c.elem_bytes)

let prop_flops_at_least_chain =
  QCheck.Test.make ~count:100
    ~name:"flops >= chain flops (redundancy only adds)" QCheck.small_int
    (fun n ->
      let c = fuzz_case n in
      let l = fuzz_lower c in
      Lower.flops_per_block l *. float_of_int l.blocks
      >= 0.99 *. Chain.total_flops c.chain)

let () =
  Alcotest.run "mcf_ir"
    [ ( "axis",
        [ Alcotest.test_case "basics" `Quick test_axis_basics;
          Alcotest.test_case "find" `Quick test_axis_find ] );
      ( "chain",
        [ Alcotest.test_case "validate builders" `Quick test_chain_validate;
          Alcotest.test_case "axis roles" `Quick test_chain_roles;
          Alcotest.test_case "used axes" `Quick test_used_axes;
          Alcotest.test_case "private/shared" `Quick test_private_shared;
          Alcotest.test_case "producer/consumer" `Quick test_producer_consumer;
          Alcotest.test_case "linearity" `Quick test_linearity;
          Alcotest.test_case "total flops" `Quick test_total_flops;
          Alcotest.test_case "traffic bounds" `Quick test_traffic_bounds;
          Alcotest.test_case "batch scaling" `Quick test_batch_scaling ] );
      ( "tiling",
        [ Alcotest.test_case "enumeration counts" `Quick test_tiling_counts;
          Alcotest.test_case "notation" `Quick test_tiling_notation;
          Alcotest.test_case "rule-1 sub-tiling" `Quick test_sub_tiling_rule1;
          Alcotest.test_case "equality" `Quick test_tiling_equal ] );
      ( "candidate",
        [ Alcotest.test_case "trip/padding" `Quick test_candidate_trip_padding;
          Alcotest.test_case "tile options" `Quick test_tile_options;
          Alcotest.test_case "key stability" `Quick test_candidate_key_stable ]
      );
      ( "placement",
        [ Alcotest.test_case "Fig 4(a) mhnk" `Quick test_fig4a_structure;
          Alcotest.test_case "Fig 4(b) dead-loop hoist" `Quick
            test_fig4b_dead_loop_hoist;
          Alcotest.test_case "no hoisting" `Quick test_no_hoisting;
          Alcotest.test_case "rule-1 grid binding" `Quick
            test_rule1_grid_binding;
          Alcotest.test_case "rule-1 equivalence" `Quick test_rule1_equivalence;
          Alcotest.test_case "flat structure" `Quick test_flat_structure;
          Alcotest.test_case "flat group order" `Quick test_flat_group_order;
          Alcotest.test_case "grid blocks" `Quick test_grid_blocks;
          Alcotest.test_case "trip counts" `Quick test_trips ] );
      ( "validity",
        [ Alcotest.test_case "attention online" `Quick
            test_attention_valid_online;
          Alcotest.test_case "attention offline" `Quick test_attention_offline;
          Alcotest.test_case "attention kn invalid" `Quick
            test_attention_invalid_kn;
          Alcotest.test_case "gemm kn valid" `Quick test_gemm_kn_valid;
          Alcotest.test_case "mlp unary nonlinear" `Quick
            test_mlp_unary_nonlinear ] );
      ( "residency",
        [ Alcotest.test_case "nk single tiles" `Quick test_residency_nk;
          Alcotest.test_case "kn blow-up (Fig 6b)" `Quick
            test_residency_kn_blowup;
          Alcotest.test_case "flat accumulator" `Quick
            test_residency_flat_accumulator ] );
      ( "dag",
        [ Alcotest.test_case "edges" `Quick test_dag_edges;
          Alcotest.test_case "dot export" `Quick test_to_dot ] );
      ( "tir",
        [ Alcotest.test_case "roundtrip deep" `Quick test_tir_roundtrip_deep;
          Alcotest.test_case "roundtrip rule-1 equivalence" `Quick
            test_tir_roundtrip_rule1_equivalence;
          Alcotest.test_case "roundtrip flat" `Quick test_tir_roundtrip_flat;
          Alcotest.test_case "structure + pretty" `Quick test_tir_structure;
          Alcotest.test_case "attention epilogue block" `Quick
            test_tir_attention_epilogue_block ] );
      ( "lowering",
        [ Alcotest.test_case "traffic mhnk" `Quick test_lower_traffic_mhnk;
          Alcotest.test_case "flops" `Quick test_lower_flops;
          Alcotest.test_case "dead loop saves traffic" `Quick
            test_lower_dead_loop_saves_traffic;
          Alcotest.test_case "redundant compute costed" `Quick
            test_lower_redundant_compute;
          Alcotest.test_case "kernel fields" `Quick test_lower_kernel_fields;
          Alcotest.test_case "epilogue labels" `Quick test_lower_epilogue_labels;
          Alcotest.test_case "online softmax flag" `Quick
            test_lower_online_softmax_flag;
          Alcotest.test_case "validity propagates" `Quick
            test_lower_validity_propagates;
          Alcotest.test_case "flat store row-block" `Quick
            test_lower_flat_store_whole_rowblock ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_tir_roundtrip; prop_lowering_totals_positive;
            prop_traffic_at_least_compulsory; prop_flops_at_least_chain ] ) ]
