(* Tests for the streaming enumeration pipeline (ISSUE 7): the bounded
   channel primitive, the lazy tiling generators, deep-chain workloads,
   the bounded reservoir, and — the load-bearing property — that the
   streamed pipeline is indistinguishable from the materialized reference
   path: same funnel, same candidate set in the same order, same tuner
   winner, at any pool size. *)

open Mcf_ir
module Space = Mcf_search.Space
module Chan = Mcf_util.Chan

let a100 = Mcf_gpu.Spec.a100
let paper_gemm = Chain.gemm_chain ~m:1024 ~n:1024 ~k:512 ~h:512 ()
let small_gemm = Chain.gemm_chain ~m:256 ~n:128 ~k:64 ~h:64 ()
let attn = Chain.attention ~heads:8 ~m:512 ~n:512 ~k:64 ~h:64 ()
let gemm3 = Chain.gemm_chain3 ~m:256 ~n:128 ~k:64 ~h:64 ~p:64 ()

let with_jobs jobs f =
  let saved = Mcf_util.Pool.jobs () in
  Fun.protect
    ~finally:(fun () -> Mcf_util.Pool.set_jobs saved)
    (fun () ->
      Mcf_util.Pool.set_jobs jobs;
      f ())

(* --- bounded channel -------------------------------------------------------- *)

let test_chan_fifo_and_drain_after_close () =
  let c = Chan.create ~capacity:8 in
  Alcotest.(check bool) "send 1" true (Chan.send c 1);
  Alcotest.(check bool) "send 2" true (Chan.send c 2);
  Alcotest.(check bool) "send 3" true (Chan.send c 3);
  Chan.close c;
  (* Close stops producers but buffered values still drain, in order. *)
  Alcotest.(check bool) "send after close" false (Chan.send c 4);
  Alcotest.(check (option int)) "recv 1" (Some 1) (Chan.recv c);
  Alcotest.(check (option int)) "recv 2" (Some 2) (Chan.recv c);
  Alcotest.(check (option int)) "recv 3" (Some 3) (Chan.recv c);
  Alcotest.(check (option int)) "drained" None (Chan.recv c);
  Alcotest.(check (option int)) "still drained" None (Chan.recv c)

let test_chan_backpressure () =
  (* A capacity-1 channel blocks the second send until the consumer takes
     the first value; every value still arrives exactly once. *)
  let c = Chan.create ~capacity:1 in
  let n = 100 in
  let producer =
    Domain.spawn (fun () ->
        let ok = ref true in
        for i = 1 to n do
          ok := !ok && Chan.send c i
        done;
        Chan.close c;
        !ok)
  in
  let got = ref [] in
  let rec drain () =
    match Chan.recv c with
    | Some v ->
      got := v :: !got;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "all sends accepted" true (Domain.join producer);
  Alcotest.(check (list int)) "all values in order"
    (List.init n (fun i -> i + 1))
    (List.rev !got);
  Alcotest.(check int) "never held more than capacity" 0 (Chan.length c)

let test_chan_cancel_unblocks_sender () =
  let c = Chan.create ~capacity:1 in
  Alcotest.(check bool) "fill" true (Chan.send c 1);
  let blocked =
    Domain.spawn (fun () -> Chan.send c 2 (* blocks: channel is full *))
  in
  (* Give the sender a moment to park on the condition variable. *)
  Unix.sleepf 0.05;
  Chan.cancel c;
  Alcotest.(check bool) "blocked send observes cancel" false
    (Domain.join blocked);
  Alcotest.(check (option int)) "cancel clears the buffer" None (Chan.recv c);
  Alcotest.(check bool) "send after cancel" false (Chan.send c 3)

exception Feeder_died of string

let test_chan_poison_propagates () =
  let c = Chan.create ~capacity:2 in
  Alcotest.(check bool) "send" true (Chan.send c 1);
  let producer =
    Domain.spawn (fun () -> Chan.poison c (Feeder_died "boom"))
  in
  Domain.join producer;
  (* Poison models a producer crash: pending values are dropped and every
     consumer sees the exception rather than a silent short stream. *)
  Alcotest.check_raises "recv raises the producer's exception"
    (Feeder_died "boom")
    (fun () -> ignore (Chan.recv c))

(* --- lazy tiling generators ------------------------------------------------- *)

let tiling_keys l = List.map Tiling.to_string l

let test_seq_matches_enumerate () =
  List.iter
    (fun (name, chain) ->
      Alcotest.(check (list string))
        (name ^ ": seq = enumerate")
        (tiling_keys (Tiling.enumerate chain))
        (tiling_keys (List.of_seq (Tiling.seq chain)));
      Alcotest.(check int)
        (name ^ ": count = |enumerate|")
        (List.length (Tiling.enumerate chain))
        (Tiling.count chain))
    [ ("small_gemm", small_gemm);
      ("attention", attn);
      ("gemm3", gemm3);
      ("deep-5", Chain.gemm_chain_n ~m:32 ~dims:[ 16; 16; 16; 16; 16; 16 ] ())
    ]

let test_count_paper_example () =
  (* The closed form feeds [raw_cardinality]; the paper's 26 expressions
     for the 2-block GEMM chain must survive the streaming rewrite. *)
  Alcotest.(check int) "26 tilings" 26 (Tiling.count paper_gemm)

(* --- deep-chain workloads --------------------------------------------------- *)

let test_deep_configs_validate () =
  List.iter
    (fun (d : Mcf_workloads.Configs.deep_config) ->
      let chain = Mcf_workloads.Configs.deep_chain d in
      (match Chain.validate chain with
      | Ok () -> ()
      | Error e -> Alcotest.fail (d.dname ^ ": " ^ e));
      Alcotest.(check int)
        (d.dname ^ ": blocks")
        d.dblocks
        (List.length chain.Chain.blocks);
      (* blocks + 2 axes: m, x0..x_{blocks}. *)
      Alcotest.(check int)
        (d.dname ^ ": axes")
        (d.dblocks + 2)
        (List.length chain.Chain.axes))
    Mcf_workloads.Configs.deep_chains

let test_deep_chain_reference_execution () =
  (* End-to-end on a scaled-down 5-block chain: tune it (through the
     streaming pipeline, with a reservoir bound), execute the winning
     fused schedule in the interpreter and compare against the
     direct block-by-block reference. *)
  let chain = Chain.gemm_chain_n ~m:32 ~dims:[ 16; 16; 16; 16; 16; 16 ] () in
  match Mcf_search.Tuner.tune ~seed:11 ~reservoir:64 a100 chain with
  | Error _ -> Alcotest.fail "deep chain did not tune"
  | Ok o ->
    let rng = Mcf_util.Rng.create 3 in
    let inputs =
      List.map
        (fun (ts : Chain.tensor_spec) ->
          let shape =
            Array.of_list (List.map (fun (a : Axis.t) -> a.Axis.size) ts.taxes)
          in
          (ts.tname, Mcf_tensor.Tensor.random rng shape))
        (Chain.input_tensors chain)
    in
    let got =
      Mcf_interp.Interp.run (Space.lowered o.best).program ~inputs
    in
    let want = Mcf_interp.Interp.reference chain ~inputs in
    Alcotest.(check bool) "fused matches reference" true
      (Mcf_tensor.Tensor.approx_equal ~tol:1e-3 got want)

(* --- streamed vs materialized equivalence ----------------------------------- *)

let entry_keys = List.map (fun (e : Space.entry) -> Candidate.key e.cand)

let check_funnels name (a : Space.funnel) (b : Space.funnel) =
  Alcotest.(check int) (name ^ ": tilings_raw") a.tilings_raw b.tilings_raw;
  Alcotest.(check int) (name ^ ": tilings_rule1") a.tilings_rule1
    b.tilings_rule1;
  Alcotest.(check int) (name ^ ": tilings_rule2") a.tilings_rule2
    b.tilings_rule2;
  Alcotest.(check (float 0.0)) (name ^ ": candidates_raw") a.candidates_raw
    b.candidates_raw;
  Alcotest.(check (float 0.0)) (name ^ ": candidates_rule3")
    a.candidates_rule3 b.candidates_rule3;
  Alcotest.(check int) (name ^ ": candidates_rule4") a.candidates_rule4
    b.candidates_rule4;
  Alcotest.(check int) (name ^ ": candidates_valid") a.candidates_valid
    b.candidates_valid

let test_stream_equals_materialized () =
  (* The pipeline's contract: for every workload and at every pool size,
     the streamed path reproduces the materialized reference exactly —
     candidate set, order, and funnel. *)
  List.iter
    (fun jobs ->
      with_jobs jobs (fun () ->
          List.iter
            (fun (name, chain) ->
              let name = Printf.sprintf "%s@jobs=%d" name jobs in
              let se, sf = Space.enumerate a100 chain in
              let me, mf = Space.enumerate_materialized a100 chain in
              check_funnels name sf mf;
              Alcotest.(check (list string))
                (name ^ ": candidates")
                (entry_keys me) (entry_keys se))
            [ ("small_gemm", small_gemm);
              ("paper_gemm", paper_gemm);
              ("attention", attn);
              ("gemm3", gemm3) ]))
    [ 1; 4 ]

let test_streamed_scores_match_explorer () =
  (* The fused scoring pass hands (estimate, traffic) to the explorer;
     feeding them in must not change the outcome vs letting the explorer
     re-derive them (same formulas, same ranking, same winner). *)
  let entries, scores, _ = Space.enumerate_scored a100 small_gemm in
  let run scores =
    let rng = Mcf_util.Rng.create 5 in
    let clock = Mcf_gpu.Clock.create () in
    match Mcf_search.Explore.run ?scores ~rng ~clock a100 entries with
    | None -> Alcotest.fail "explore returned no candidate"
    | Some r -> r
  in
  let with_scores = run (Some scores) in
  let without = run None in
  Alcotest.(check string) "same winner"
    (Candidate.key without.best.cand)
    (Candidate.key with_scores.best.cand);
  Alcotest.(check (float 0.0)) "same time" without.best_time_s
    with_scores.best_time_s

let test_reservoir_keeps_best_by_estimate () =
  let full, scores, ff = Space.enumerate_scored a100 small_gemm in
  let cap = 40 in
  let kept, _, kf = Space.enumerate_scored ~reservoir:cap a100 small_gemm in
  (* The funnel still reports the whole space ... *)
  check_funnels "funnel unchanged" ff kf;
  Alcotest.(check int) "reservoir size" cap (List.length kept);
  (* ... and the kept slice is exactly the top-[cap] by (estimate, rank),
     in original enumeration order. *)
  let ranked =
    List.mapi
      (fun i (e : Space.entry) -> (fst scores.(i), i, Candidate.key e.cand))
      full
  in
  let expected =
    List.sort
      (fun (ea, ra, _) (eb, rb, _) ->
        match Float.compare ea eb with 0 -> Int.compare ra rb | c -> c)
      ranked
    |> fun l ->
    List.filteri (fun i _ -> i < cap) l
    |> List.sort (fun (_, ra, _) (_, rb, _) -> Int.compare ra rb)
    |> List.map (fun (_, _, k) -> k)
  in
  Alcotest.(check (list string)) "top slice by estimate" expected
    (entry_keys kept)

let test_reservoir_tuner_winner_unchanged () =
  (* small_gemm has ~100 valid candidates; a reservoir big enough to hold
     the explorer's population must elect the same winner. *)
  let tune reservoir =
    match Mcf_search.Tuner.tune ?reservoir ~seed:7 a100 small_gemm with
    | Error _ -> Alcotest.fail "tuner failed"
    | Ok o -> o
  in
  let full = tune None in
  let bounded = tune (Some 64) in
  Alcotest.(check string) "same winner"
    (Candidate.key full.best.cand)
    (Candidate.key bounded.best.cand)

let () =
  Alcotest.run "mcf_stream"
    [ ( "chan",
        [ Alcotest.test_case "fifo + drain after close" `Quick
            test_chan_fifo_and_drain_after_close;
          Alcotest.test_case "backpressure" `Quick test_chan_backpressure;
          Alcotest.test_case "cancel unblocks sender" `Quick
            test_chan_cancel_unblocks_sender;
          Alcotest.test_case "poison propagates" `Quick
            test_chan_poison_propagates ] );
      ( "tiling-seq",
        [ Alcotest.test_case "seq = enumerate" `Quick
            test_seq_matches_enumerate;
          Alcotest.test_case "paper count" `Quick test_count_paper_example ] );
      ( "deep-chains",
        [ Alcotest.test_case "configs validate" `Quick
            test_deep_configs_validate;
          Alcotest.test_case "reference execution" `Quick
            test_deep_chain_reference_execution ] );
      ( "equivalence",
        [ Alcotest.test_case "stream = materialized" `Quick
            test_stream_equals_materialized;
          Alcotest.test_case "streamed scores" `Quick
            test_streamed_scores_match_explorer ] );
      ( "reservoir",
        [ Alcotest.test_case "keeps best by estimate" `Quick
            test_reservoir_keeps_best_by_estimate;
          Alcotest.test_case "tuner winner unchanged" `Quick
            test_reservoir_tuner_winner_unchanged ] ) ]
