Profiling a tune run: --profile appends a per-phase wall-clock table and
a metrics dump, --trace writes a Chrome trace_event file.  Timings vary
run to run, so only the deterministic parts are pinned here.

The headline output is unchanged by the flags (observability must not
perturb the deterministic tuner):

  $ mcfuser tune G1 --trace trace.json --profile > out 2> err
  $ head -2 out
  workload  G1 on A100
  best      mnkh {h=32 k=32 m=16 n=256}

The tune report gains a phase-breakdown line:

  $ grep -o 'phases    enumerate' out
  phases    enumerate

The profile table nests every pipeline phase under the tuner root:

  $ grep '# per-phase wall-clock' out
  # per-phase wall-clock
  $ for p in tuner.tune tuner.enumerate space.enumerate space.tilings \
  >   space.rule1 space.rule2 space.rule3 space.lower tuner.explore \
  >   explore.generation tuner.codegen; do
  >   grep -q "$p" out || echo "missing $p"
  > done

The metrics dump carries the funnel and search counters (their values
are deterministic for a fixed workload/device seed):

  $ grep '# metrics' out
  # metrics
  $ grep -E 'space\.tilings_raw|space\.candidates_valid|explore\.measured|sim\.runs|codegen\.compiles' out | tr -s ' '
  | codegen.compiles | 33 |
  | explore.measured | 32 |
  | sim.runs | 32 |
  | space.candidates_valid | 493 |
  | space.tilings_raw | 26 |

The trace file is valid Chrome trace_event JSON (the CLI parses it back
before writing and fails otherwise):

  $ head -c 15 trace.json
  {"traceEvents":
  $ sed 's/([0-9]* spans)/(N spans)/' err
  trace: wrote trace.json (N spans)
