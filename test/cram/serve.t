The tuning service end to end: start a daemon on a kernel-assigned port
(written to --port-file), probe it, round-trip a G1 tune over HTTP, hit
the warm schedule cache with the same request, list the jobs, then drain
gracefully.  Everything below the port (normalized to URL) is
deterministic: the tuner is seeded from the (chain, device) fingerprint
and the daemon serves bit-identical schedules.

  $ mcfuser serve --listen 127.0.0.1:0 --workers 1 --port-file url.txt \
  >   --schedule-cache sched.jsonl > serve.log 2>&1 &
  $ for _ in $(seq 1 200); do [ -s url.txt ] && break; sleep 0.05; done

The telemetry surface answers on the same socket:

  $ mcfuser submit "$(cat url.txt)" --selfcheck \
  >   | sed -E 's,http://127\.0\.0\.1:[0-9]+,URL,'
  selfcheck ok: URL (healthz, status, metrics)

A cold tune runs a fresh session:

  $ mcfuser submit "$(cat url.txt)" G1
  job       j1 done (tuned)
  workload  G1 on A100
  best      deep:m,n,k,h;h=32,k=32,m=16,n=256
  kernel    4.8us
  tuning    23.27s virtual, 32 measured, 7 generations

The identical request is answered from the schedule cache — same
schedule, no second tuner session:

  $ mcfuser submit "$(cat url.txt)" G1
  job       j2 done (cache hit)
  workload  G1 on A100
  best      deep:m,n,k,h;h=32,k=32,m=16,n=256
  kernel    4.8us
  tuning    23.27s virtual, 32 measured, 7 generations

  $ mcfuser submit "$(cat url.txt)" --list
  j1     done     tuned      G1 on A100
  j2     done     cache hit  G1 on A100
  counts    0 queued, 0 running, 2 done, 0 failed

Graceful drain: the daemon finishes its jobs, persists the cache and
exits; one distinct key means one persisted entry:

  $ mcfuser submit "$(cat url.txt)" --shutdown
  shutdown requested
  $ wait
  $ sed -E 's,http://127\.0\.0\.1:[0-9]+,URL,' serve.log
  serve: listening on URL (POST /tune, GET /jobs)
  serve: shutdown requested, draining
  serve: drained; 2 jobs (1 tuned, 1 cached, 0 coalesced); schedule cache: 1 entries
  $ wc -l < sched.jsonl | tr -d ' '
  1
