The fuzzer is budgeted in virtual seconds charged from each case's
deterministic work estimate, so a given (seed, budget) runs the same
cases — and prints the same summary — on every machine:

  $ mcfuser fuzz --seed 42 --budget-s 2 --no-corpus
  fuzz: seed 42, 30 cases, 2.07 virtual s
  oracle          runs   pass   skip   fail
  interp            30     19     11      0
  analytic          30     30      0      0
  shmem             30     30      0      0
  pruning           30     30      0      0
  tuner              2      1      1      0
  measure-cache      6      6      0      0
  emit              30     21      9      0
  fuzz: PASS

  $ mcfuser fuzz --list-oracles
  interp        Interp.run on the built schedule agrees with Interp.reference
  analytic      closed-form Analytic equals the lowered walk bit-for-bit
  shmem         Shmem precheck equals the lowered eq. (1) estimate exactly
  pruning       no pruning precheck rejects what the lowered pipeline accepts
  tuner         Tuner.tune is bit-identical across jobs 1/4 and recording on/off (every 25 cases)
  measure-cache a cached measurement equals a fresh Sim.run bit-for-bit (every 5 cases)
  emit          emitted Triton kernel is well-formed (scopes, def-before-use)

Checked-in minimized regressions replay through their recorded oracle.
This one (an epilogue once placed inside a loop feeding its accumulator
partial sums) must keep passing:

  $ mcfuser fuzz --replay ../corpus/interp-bb2171716220.case
  replay ../corpus/interp-bb2171716220.case: oracle interp, case 192 (seed 42): batch=1 m=8 cols=[c1:16;c2:8;c3:8] epis=[none;scale:0x1p+1] | mc1c3c2 {c1=8 c2=8 c3=8 m=8} | rule1=false dle=false hoist=true eb=4 A100
  replay: PASS

And this one (a consumer Compute statically preceding its producer) is
now rejected as invalid, so the oracle skips it; if the validity rule
ever regresses, the replay runs the case and fails again:

  $ mcfuser fuzz --replay ../corpus/interp-ef659febcf5b.case
  replay ../corpus/interp-ef659febcf5b.case: oracle interp, case 241 (seed 42): batch=1 m=8 cols=[c0:8;c1:8;c2:8;c3:8] epis=[none;none;none] | c1mc2c3c0 {c0=8 c1=8 c2=8 c3=8 m=8} | rule1=false dle=false hoist=false eb=4 RTX3080
  replay: SKIP (invalid schedule: block T3 consumes the output of block T2 before it is computed)
