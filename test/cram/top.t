The `mcfuser top` dashboard renders exclusively from /status documents
(and the previous poll's document, for rates) — never from the local
clock — so a frame is byte-for-byte deterministic for fixed inputs.
`--status-file` feeds it a saved document instead of polling a live
server, which is how this test pins the layout.

  $ cat > status.json <<'EOF'
  > {"phase":"tuner.explore","info":"1724 candidates",
  >  "generation":{"gen":3,"max_gen":20,"measured":57,"eta_s":4.25},
  >  "elapsed_s":2.5,
  >  "funnel":{"enumerations":1,"tilings_raw":26,"candidates_lowered":5000,
  >            "pruned_rule1":21,"pruned_rule2":3,"pruned_rule4":100,
  >            "pruned_invalid":40,"candidates_valid":1724,
  >            "estimated":4200,"measured":57,"generations":3},
  >  "rsrc":{"heap_words":6800000,"heap_words_peak":9200000,
  >          "minor_collections":120,"major_collections":8,
  >          "promoted_words":400000,"alloc_words_per_s":12500000,"samples":25},
  >  "pool":{"domains":4,"busy":3,"utilization":0.75,
  >          "jobs":4,"chunks":64,"steals":7},
  >  "caches":{"schedule":{"hits":0,"misses":1},
  >            "measure":{"hits":40,"misses":17,"inflight_waits":2},
  >            "model_memo":{"hits":9900,"misses":100}},
  >  "server":{"time":1754500000,"pid":4242}}
  > EOF

  $ mcfuser top --status-file status.json
  mcfuser top - status.json (poll 1)
  
  phase     tuner.explore | 1724 candidates
  progress  gen 3/20, 57 measured, ETA 4.2s, elapsed 2.5s
  rates     -
  heap      6.8 Mw (peak 9.2 Mw), alloc 12.5 Mw/s  -
  pool      busy 3/4 domains, 75% utilization
  caches    measure 70% (40/57), schedule 0% (0/1), memo 99% (9900/10000)
  funnel    enum 1, raw 26, lowered 5000, valid 1724, estimated 4200, measured 57


An idle process (no phase yet, outside the exploration loop, empty
caches) degrades gracefully rather than printing zeros as progress:

  $ cat > idle.json <<'EOF'
  > {"phase":"","info":"","generation":{"gen":0,"max_gen":0,"measured":0,"eta_s":null},
  >  "elapsed_s":0.2,
  >  "funnel":{"enumerations":0,"tilings_raw":0,"candidates_lowered":0,
  >            "pruned_rule1":0,"pruned_rule2":0,"pruned_rule4":0,
  >            "pruned_invalid":0,"candidates_valid":0,
  >            "estimated":0,"measured":0,"generations":0},
  >  "rsrc":{"heap_words":500000,"heap_words_peak":500000,
  >          "minor_collections":1,"major_collections":0,
  >          "promoted_words":0,"alloc_words_per_s":0,"samples":1},
  >  "pool":{"domains":1,"busy":0,"utilization":0,"jobs":1,"chunks":0,"steals":0},
  >  "caches":{"schedule":{"hits":0,"misses":0},
  >            "measure":{"hits":0,"misses":0,"inflight_waits":0},
  >            "model_memo":{"hits":0,"misses":0}},
  >  "server":{"time":1754500001,"pid":4242}}
  > EOF

  $ mcfuser top --status-file idle.json
  mcfuser top - idle.json (poll 1)
  
  phase     (idle)
  progress  elapsed 0.2s
  rates     -
  heap      0.5 Mw (peak 0.5 Mw), alloc 0.0 Mw/s  -
  pool      busy 0/1 domains, 0% utilization
  caches    measure -, schedule -, memo -
  funnel    enum 0, raw 0, lowered 0, valid 0, estimated 0, measured 0


`--metrics-file` additionally runs the saved /metrics exposition through
the structural validator (same checks the live poll applies):

  $ cat > metrics.txt <<'EOF'
  > # TYPE mcfuser_cache_hits counter
  > mcfuser_cache_hits 0
  > # TYPE mcfuser_explore_estimate_s histogram
  > mcfuser_explore_estimate_s_bucket{le="0.000244140625"} 3
  > mcfuser_explore_estimate_s_bucket{le="+Inf"} 4
  > mcfuser_explore_estimate_s_sum 0.0009
  > mcfuser_explore_estimate_s_count 4
  > EOF
  $ mcfuser top --status-file status.json --metrics-file metrics.txt > frame.out; echo "exit=$?"
  exit=0

A broken exposition (cumulative bucket counts must never decrease) is
rejected before any frame is drawn:

  $ printf 'x_bucket{le="1"} 5\nx_bucket{le="2"} 3\nx_bucket{le="+Inf"} 5\nx_sum 1\nx_count 5\n' > bad.txt
  $ mcfuser top --status-file status.json --metrics-file bad.txt
  mcfuser: bad.txt: x: cumulative bucket counts decrease
  [124]

Without a URL or a saved document there is nothing to watch:

  $ mcfuser top
  mcfuser: URL required (or render offline with --status-file)
  [124]
