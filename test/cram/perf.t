Cross-run performance history: bench runs append JSONL entries, and
`mcfuser perf` renders per-workload sparkline trends or gates on
regressions against a robust (median + MAD) baseline.  The fixture below
is hand-written so every byte of the output is deterministic.

  $ cat > hist.jsonl <<'EOF'
  > {"time":1,"rev":"aaaa111","device":"A100","workload":"G1","metrics":{"points_per_s":200000,"tune_wall_s":0.020}}
  > {"time":2,"rev":"bbbb222","device":"A100","workload":"G1","metrics":{"points_per_s":210000,"tune_wall_s":0.019}}
  > {"time":3,"rev":"cccc333","device":"A100","workload":"G1","metrics":{"points_per_s":205000,"tune_wall_s":0.021}}
  > {"time":3,"rev":"cccc333","device":"A100","workload":"S3","metrics":{"estimates_per_s":30000}}
  > EOF

Trends: one table per (device, workload) in file order, latest value,
delta vs the oldest run, and a sparkline per metric.  S3 has a single
run, so its trend is flat by construction:

  $ mcfuser perf --history hist.jsonl
  == A100/G1 (3 runs, latest rev cccc333) ==
    metric                     latest     delta  trend
    points_per_s               205000    +2.50%  _#=
    tune_wall_s                 0.021    +5.00%  =_#
  
  == A100/S3 (1 run, latest rev cccc333) ==
    metric                     latest     delta  trend
    estimates_per_s             30000    +0.00%  -



The gate compares the newest run per workload against the median + MAD
of the preceding window.  G1's latest values sit inside the band; S3 has
no baseline (single entry), so it is skipped rather than divided by
zero:

  $ mcfuser perf --history hist.jsonl --gate --tolerance 0.10
  ok   A100/G1 points_per_s: latest 205000 vs median 205000 (mad 5000, floor 184500)
  ok   A100/G1 tune_wall_s: latest 0.021 vs median 0.0195 (mad 0.0005, ceiling 0.02145)
  perf gate: 2 metrics checked, 0 regressions (tolerance 10%)

A regression beyond tolerance fails the gate (the CI hook):

  $ cat >> hist.jsonl <<'EOF'
  > {"time":4,"rev":"dddd444","device":"A100","workload":"G1","metrics":{"points_per_s":120000,"tune_wall_s":0.020}}
  > EOF
  $ mcfuser perf --history hist.jsonl --gate --tolerance 0.10 > gate.out 2> gate.err; echo "exit=$?"
  exit=124
  $ grep FAIL gate.out
  FAIL A100/G1 points_per_s: latest 120000 vs median 205000 (mad 5000, floor 184500)

Malformed lines are counted and skipped, never fatal (same policy as the
schedule cache):

  $ printf 'not json at all\n{"time":5}\n' >> hist.jsonl
  $ mcfuser perf --history hist.jsonl > /dev/null
  perf: skipped 2 malformed lines in hist.jsonl

An empty or missing history renders a friendly note and gates clean:

  $ mcfuser perf --history nothere.jsonl
  perf: no history entries
  $ mcfuser perf --history nothere.jsonl --gate
  perf gate: no baseline (fewer than two runs per workload) — pass
