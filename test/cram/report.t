The search flight recorder: --record writes a JSONL event stream whose
deterministic payload is pinned here, and `mcfuser report` renders it.

The headline output is unchanged by --record (recording must not perturb
the deterministic tuner):

  $ mcfuser tune G1 --record run.jsonl -j 2 > out 2> err
  $ head -2 out
  workload  G1 on A100
  best      mnkh {h=32 k=32 m=16 n=256}
  $ sed 's/([0-9]* events)/(N events)/' err
  record: wrote run.jsonl (N events)

The recording is one JSON object per line, discriminated by "ev", and the
space event carries the funnel bit-identical to the tune output above:

  $ grep -c '"ev":' run.jsonl > /dev/null && echo ok
  ok
  $ grep -o '"funnel":{[^}]*}' run.jsonl
  "funnel":{"tilings_raw":26,"tilings_rule1":3,"tilings_rule2":2,"candidates_raw":212992,"candidates_rule3":540,"candidates_rule4":493,"candidates_valid":493}

The rendered report reproduces the run header and funnel exactly:

  $ mcfuser report run.jsonl | sed -n '1,20p'
  # run
  workload  G1_gemm_chain_b1_m512_n256_k64_h64 on A100 (seed 4518261214254383833, jobs 2)
  options   rule1=on rule2=on rule3=on rule4=on include_flat=on dead_loop_elim=on hoisting=on max_padding=0.05 shmem_slack=1.2
  params    population=128 top_k=10 epsilon=0.03 min_generations=5 max_generations=10 measure_repeats=10 compile_cost_s=0.6
  
  # pruning funnel
  +------------------------------+--------+
  | stage                        |  count |
  +------------------------------+--------+
  | tiling expressions (raw)     |     26 |
  | after Rule 1 (dedup)         |      3 |
  | after Rule 2 (residency)     |      2 |
  | candidates (raw)             | 212992 |
  | after Rule 3 (padding)       |    540 |
  | after Rule 4 (shared memory) |    493 |
  | valid (softmax legality)     |    493 |
  +------------------------------+--------+
  
  # prune attribution
  +----------+------------+------+---------+------------------------------------------------------------+



The fidelity and result sections close the report:

  $ mcfuser report run.jsonl | grep -A 3 '# model fidelity'
  # model fidelity (estimate vs measurement)
  +------------------------+-------+
  | fidelity metric        | value |
  +------------------------+-------+
  $ mcfuser report run.jsonl | grep '^best'
  best      mnkh {h=32 k=32 m=16 n=256} at 4.8us

Diffing a recording against itself shows zero drift and exits 0:

  $ mcfuser report --diff run.jsonl run.jsonl
  # report diff
  funnel    identical (7 counts)
  fidelity  MAPE 12.1% -> 12.1%, tau 0.010 -> 0.010, pairs 32 -> 32
  best      4.8us -> 4.8us (+0.00%, tolerance 5.0%)
  peakheap  +0.00% (tolerance 5.0%)
  phases    tuner.enumerate +0.00%, space.precheck +0.00%, tuner.explore +0.00%, tuner.measure +0.00%, tuner.codegen +0.00% (informational)
  verdict   OK

A regression beyond tolerance fails the diff (the CI gate):

  $ sed 's/"kernel_time_s":[0-9.e-]*/"kernel_time_s":1e-05/' run.jsonl > slow.jsonl
  $ mcfuser report --diff run.jsonl slow.jsonl > diff.out 2> diff.err; echo "exit=$?"
  exit=124
  $ grep verdict diff.out
  verdict   FAIL: best measured time regressed beyond tolerance
