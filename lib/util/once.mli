(** Domain-safe memoized thunks.

    [Lazy.t] raises [RacyLazy] when two domains force the same suspension
    concurrently, so it cannot back a lazily-lowered search-space entry
    that estimator callbacks may force from inside a {!Pool} job.  [Once]
    is the mutex-guarded equivalent: the thunk runs at most once, every
    caller observes the same result, and a raising thunk re-raises the
    same exception on every subsequent force. *)

type 'a t

val make : (unit -> 'a) -> 'a t
(** [make f] suspends [f]; nothing runs until the first {!force}. *)

val force : 'a t -> 'a
(** Run the thunk on first call (under the cell's mutex — the thunk must
    not force the same cell reentrantly) and return the memoized result
    afterwards.  Safe to call from any number of domains concurrently. *)

val is_forced : 'a t -> bool
(** Whether the thunk has already run (also true when it raised). *)
