(** Deterministic data parallelism on OCaml 5 domains.

    Thin compatibility layer over {!Pool}: [map ?domains:None] runs on
    the persistent global pool ({!Pool.get}), while an explicit
    [?domains] spins up a temporary pool for that one call.  New code
    should use {!Pool} directly.  Output is bit-identical to the
    sequential map regardless of the domain count. *)

val default_domains : unit -> int
(** Alias of {!Pool.default_jobs}. *)

val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map.  [domains <= 1] (or a short list) runs
    sequentially.  The function must not rely on shared mutable state.
    If [f] raises in any domain, an exception raised by some element is
    re-raised in the caller. *)

val map_array : ?domains:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array counterpart of {!map}. *)
