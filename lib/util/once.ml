type 'a state = Thunk of (unit -> 'a) | Value of 'a | Raised of exn

type 'a t = { m : Mutex.t; mutable state : 'a state }

let make f = { m = Mutex.create (); state = Thunk f }

let force t =
  Mutex.lock t.m;
  match t.state with
  | Value v ->
    Mutex.unlock t.m;
    v
  | Raised e ->
    Mutex.unlock t.m;
    raise e
  | Thunk f ->
    (* The thunk runs under the mutex: concurrent forcers block until the
       result is memoized, so [f] executes exactly once. *)
    let r = try Ok (f ()) with e -> Error e in
    (match r with
    | Ok v -> t.state <- Value v
    | Error e -> t.state <- Raised e);
    Mutex.unlock t.m;
    (match r with Ok v -> v | Error e -> raise e)

let is_forced t =
  Mutex.lock t.m;
  let r = match t.state with Thunk _ -> false | Value _ | Raised _ -> true in
  Mutex.unlock t.m;
  r
