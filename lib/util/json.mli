(** Minimal JSON tree, printer and parser.

    Just enough JSON for the observability layer: the tracer serializes
    Chrome [trace_event] files through {!to_string}, the metrics registry
    dumps deterministic snapshots, and tests / the [--trace] self-check
    parse the output back with {!parse}.  No dependency on external JSON
    packages; no streaming. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Keys are emitted in list order. *)

val num_of_int : int -> t

val to_string : t -> string
(** Compact (no whitespace) rendering.  Deterministic: integral floats
    with magnitude below 2^53 print without a decimal point, other
    numbers as shortest round-trip decimal; strings are escaped per RFC
    8259 ([\uXXXX] for control characters). *)

val parse : string -> (t, string) result
(** Strict recursive-descent parse of one JSON value (surrounding
    whitespace allowed, trailing garbage rejected).  Escapes including
    [\uXXXX] are decoded (surrogate pairs to UTF-8).  Errors carry a
    byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] finds the first binding of [k]; [None] for
    non-objects or missing keys. *)

val fold_lines :
  path:string -> init:'a -> f:('a -> string -> 'a option) -> 'a * int
(** Count-and-skip fold over a line-oriented store.  Every non-blank
    line of [path] is passed to [f]; [None] marks the line malformed —
    it is counted and skipped, and the fold continues.  Returns the
    final accumulator and the number of malformed lines, after logging
    one ["skipped N malformed lines"] warning on the [mcfuser.jsonl]
    source when N > 0.  A missing file is empty: [(init, 0)]. *)

val fold_jsonl :
  path:string -> init:'a -> f:('a -> t -> 'a option) -> 'a * int
(** {!fold_lines} with each line run through {!parse} first; parse
    failures count as malformed, as do lines [f] rejects with [None].
    This is the one shared loader for every append-only JSONL store
    (history, caches) — truncated tails cost exactly the damaged
    lines. *)
