(** Minimal JSON tree, printer and parser.

    Just enough JSON for the observability layer: the tracer serializes
    Chrome [trace_event] files through {!to_string}, the metrics registry
    dumps deterministic snapshots, and tests / the [--trace] self-check
    parse the output back with {!parse}.  No dependency on external JSON
    packages; no streaming. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** Keys are emitted in list order. *)

val num_of_int : int -> t

val to_string : t -> string
(** Compact (no whitespace) rendering.  Deterministic: integral floats
    with magnitude below 2^53 print without a decimal point, other
    numbers as shortest round-trip decimal; strings are escaped per RFC
    8259 ([\uXXXX] for control characters). *)

val parse : string -> (t, string) result
(** Strict recursive-descent parse of one JSON value (surrounding
    whitespace allowed, trailing garbage rejected).  Escapes including
    [\uXXXX] are decoded (surrogate pairs to UTF-8).  Errors carry a
    byte offset. *)

val member : string -> t -> t option
(** [member k (Obj ...)] finds the first binding of [k]; [None] for
    non-objects or missing keys. *)
