let bar ?(width = 50) ~title ~unit_label entries =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "%s (%s)\n" title unit_label);
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 entries
  in
  let vmax =
    List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-30 entries
  in
  let draw (label, v) =
    let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
    let n = max 0 (min width n) in
    Buffer.add_string buf
      (Printf.sprintf "  %-*s | %s %.3g\n" label_w label (String.make n '#') v)
  in
  List.iter draw entries;
  Buffer.contents buf

let series_glyphs = [| '#'; '*'; '+'; 'o'; 'x'; '='; '~'; '@' |]

let grouped_bar ?(width = 46) ~title ~unit_label ~series rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s (%s)\n" title unit_label);
  List.iteri
    (fun i name ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s\n" series_glyphs.(i mod 8) name))
    series;
  let label_w =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 rows
  in
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> List.fold_left Float.max acc vs)
      1e-30 rows
  in
  let draw (label, vs) =
    List.iteri
      (fun i v ->
        let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
        let n = max 0 (min width n) in
        let tag = if i = 0 then label else "" in
        Buffer.add_string buf
          (Printf.sprintf "  %-*s %c| %s %.3g\n" label_w tag
             series_glyphs.(i mod 8)
             (String.make n series_glyphs.(i mod 8))
             v))
      vs;
    Buffer.add_char buf '\n'
  in
  List.iter draw rows;
  Buffer.contents buf

(* Eight density levels, low to high.  ASCII only (like every chart in
   this module) so cram pins and dumb terminals render identically. *)
let spark_glyphs = [| '_'; '.'; ':'; '-'; '='; '+'; '*'; '#' |]

let sparkline ?(max_width = 40) values =
  let values =
    let n = List.length values in
    if n <= max_width then values
    else Listx.drop (n - max_width) values
  in
  match values with
  | [] -> ""
  | _ ->
    let lo = List.fold_left Float.min infinity values in
    let hi = List.fold_left Float.max neg_infinity values in
    let glyph v =
      if hi <= lo then '-'
      else begin
        let f = (v -. lo) /. (hi -. lo) *. 7.0 in
        spark_glyphs.(max 0 (min 7 (int_of_float (Float.round f))))
      end
    in
    let arr = Array.of_list values in
    String.init (Array.length arr) (fun i -> glyph arr.(i))

let bounds points =
  match points with
  | [] -> (0.0, 1.0, 0.0, 1.0)
  | (x0, y0) :: rest ->
    let fold (xlo, xhi, ylo, yhi) (x, y) =
      (Float.min xlo x, Float.max xhi x, Float.min ylo y, Float.max yhi y)
    in
    let xlo, xhi, ylo, yhi = List.fold_left fold (x0, x0, y0, y0) rest in
    let pad lo hi = if hi > lo then (lo, hi) else (lo -. 0.5, hi +. 0.5) in
    let xlo, xhi = pad xlo xhi and ylo, yhi = pad ylo yhi in
    (xlo, xhi, ylo, yhi)

let density_glyph = function
  | 0 -> ' '
  | 1 -> '.'
  | 2 -> ':'
  | 3 | 4 -> '*'
  | _ -> '#'

let scatter ?(width = 60) ?(height = 20) ~title ~x_label ~y_label points =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  let xlo, xhi, ylo, yhi = bounds points in
  let grid = Array.make_matrix height width 0 in
  let place (x, y) =
    let c =
      int_of_float ((x -. xlo) /. (xhi -. xlo) *. float_of_int (width - 1))
    in
    let r =
      int_of_float ((y -. ylo) /. (yhi -. ylo) *. float_of_int (height - 1))
    in
    let r = height - 1 - max 0 (min (height - 1) r) in
    let c = max 0 (min (width - 1) c) in
    grid.(r).(c) <- grid.(r).(c) + 1
  in
  List.iter place points;
  Buffer.add_string buf (Printf.sprintf "  %s\n" y_label);
  Array.iteri
    (fun r row ->
      let axis =
        if r = 0 then Printf.sprintf "%8.3g" yhi
        else if r = height - 1 then Printf.sprintf "%8.3g" ylo
        else String.make 8 ' '
      in
      Buffer.add_string buf (Printf.sprintf "%s |" axis);
      Array.iter (fun c -> Buffer.add_char buf (density_glyph c)) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf
    (Printf.sprintf "%s +%s\n" (String.make 8 ' ') (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%s %-8.3g%*s%8.3g  (%s)\n" (String.make 8 ' ') xlo
       (width - 16) "" xhi x_label);
  Buffer.contents buf

let line ?(width = 60) ?(height = 18) ~title ~x_label series =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  List.iteri
    (fun i (name, _) ->
      Buffer.add_string buf
        (Printf.sprintf "  %c = %s\n" series_glyphs.(i mod 8) name))
    series;
  let all = List.concat_map snd series in
  let xlo, xhi, ylo, yhi = bounds all in
  let grid = Array.make_matrix height width ' ' in
  let place glyph (x, y) =
    let c =
      int_of_float ((x -. xlo) /. (xhi -. xlo) *. float_of_int (width - 1))
    in
    let r =
      int_of_float ((y -. ylo) /. (yhi -. ylo) *. float_of_int (height - 1))
    in
    let r = height - 1 - max 0 (min (height - 1) r) in
    let c = max 0 (min (width - 1) c) in
    grid.(r).(c) <- glyph
  in
  List.iteri
    (fun i (_, pts) -> List.iter (place series_glyphs.(i mod 8)) pts)
    series;
  Array.iteri
    (fun r row ->
      let axis =
        if r = 0 then Printf.sprintf "%8.3g" yhi
        else if r = height - 1 then Printf.sprintf "%8.3g" ylo
        else String.make 8 ' '
      in
      Buffer.add_string buf (Printf.sprintf "%s |" axis);
      Array.iter (Buffer.add_char buf) row;
      Buffer.add_char buf '\n')
    grid;
  Buffer.add_string buf
    (Printf.sprintf "%s +%s\n" (String.make 8 ' ') (String.make width '-'));
  Buffer.add_string buf
    (Printf.sprintf "%s %-8.3g%*s%8.3g  (%s)\n" (String.make 8 ' ') xlo
       (width - 16) "" xhi x_label);
  Buffer.contents buf
