(** Capacity-bounded FIFO channel between domains.

    The streaming enumeration pipeline ({!Mcf_search.Space}) uses one of
    these between its generator domain and the scoring consumer: the
    bound is what makes peak memory O(reservoir + chunk) instead of
    O(space), because a fast producer blocks (backpressure) rather than
    buffering the whole tiling space.

    Lifecycle: a channel starts [Open]; exactly one of [close] (normal
    end-of-stream), [poison] (producer failed) or [cancel] (consumer
    gave up) ends it.  After any of the three, [send] returns [false]
    immediately — a producer holding a terminated channel drains without
    blocking and can exit its loop ("drain-after-cancel"). *)

type 'a t

val create : capacity:int -> 'a t
(** A fresh open channel buffering at most [capacity] elements.
    @raise Invalid_argument if [capacity < 1]. *)

val send : 'a t -> 'a -> bool
(** Enqueue, blocking while the buffer is full.  [true] if the value was
    accepted; [false] if the channel was closed, poisoned or cancelled
    (the value is dropped — the producer should stop). *)

val recv : 'a t -> 'a option
(** Dequeue, blocking while the buffer is empty.  [Some v] in FIFO
    order; [None] once the channel is closed and fully drained, or
    cancelled.  Buffered values survive [close] (a clean end-of-stream
    still delivers everything sent before it).

    @raise e if the channel was poisoned with [e] — the producer's
    failure propagates to the consumer at its next receive. *)

val close : 'a t -> unit
(** Producer-side clean end-of-stream.  Buffered values remain
    receivable; further [send]s return [false].  Idempotent; does not
    override an earlier poison/cancel. *)

val poison : 'a t -> exn -> unit
(** Producer-side failure: discard the buffer and make every current and
    future [recv] re-raise the exception.  Idempotent (first terminal
    state wins). *)

val cancel : 'a t -> unit
(** Consumer-side abandonment: discard the buffer, make [recv] return
    [None] and unblock every sender with a [false] return.  Idempotent
    (first terminal state wins). *)

val length : 'a t -> int
(** Current number of buffered elements (racy by nature; for telemetry
    and tests). *)
