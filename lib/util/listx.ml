let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec cartesian = function
  | [] -> [ [] ]
  | choices :: rest ->
    let tails = cartesian rest in
    List.concat_map (fun c -> List.map (fun t -> c :: t) tails) choices

(* Lazy twins of [permutations]/[cartesian].  They must yield elements
   in exactly the same order as the materializing versions — the search
   space is indexed positionally, and determinism pins (same candidate
   set, same winner at any --jobs) depend on the order being identical.
   Note the physical [!=] removal, as in [permutations]. *)
let rec seq_permutations = function
  | [] -> Seq.return []
  | l ->
    List.to_seq l
    |> Seq.concat_map (fun x ->
           let rest = List.filter (fun y -> y != x) l in
           Seq.map (fun p -> x :: p) (seq_permutations rest))

let rec seq_cartesian = function
  | [] -> Seq.return []
  | choices :: rest ->
    List.to_seq choices
    |> Seq.concat_map (fun c -> Seq.map (fun t -> c :: t) (seq_cartesian rest))

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: tl -> x :: take (n - 1) tl

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: tl -> drop (n - 1) tl

let index_of pred l =
  let rec go i = function
    | [] -> None
    | x :: tl -> if pred x then Some i else go (i + 1) tl
  in
  go 0 l

let dedup ~compare l =
  let sorted = List.sort compare l in
  let rec squeeze = function
    | a :: b :: tl when compare a b = 0 -> squeeze (b :: tl)
    | a :: tl -> a :: squeeze tl
    | [] -> []
  in
  squeeze sorted

let dedup_keep_order ~key l =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      let k = key x in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    l

let sum_by f l = List.fold_left (fun acc x -> acc +. f x) 0.0 l

let max_by f = function
  | [] -> None
  | x :: tl ->
    let best =
      List.fold_left (fun (bx, bv) y ->
          let v = f y in
          if v > bv then (y, v) else (bx, bv))
        (x, f x) tl
    in
    Some (fst best)

let min_by f = function
  | [] -> None
  | x :: tl ->
    let best =
      List.fold_left (fun (bx, bv) y ->
          let v = f y in
          if v < bv then (y, v) else (bx, bv))
        (x, f x) tl
    in
    Some (fst best)

let range n = List.init n (fun i -> i)

let rec interleavings xs ys =
  match (xs, ys) with
  | [], l | l, [] -> [ l ]
  | x :: xtl, y :: ytl ->
    List.map (fun l -> x :: l) (interleavings xtl ys)
    @ List.map (fun l -> y :: l) (interleavings xs ytl)
