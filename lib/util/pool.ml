(* Persistent work-stealing domain pool.  See pool.mli for the contract.

   A job is a chunked index range [0, n).  Chunks are dealt contiguously
   to per-participant deques; the owner pops from the front, thieves
   steal from the back (classic work-stealing ends, here guarded by a
   per-deque mutex — chunk counts are tiny, a handful per participant,
   so an sophisticated lock-free deque would buy nothing).  Workers park
   on a condition variable between jobs; the caller publishes a job by
   bumping [epoch] and broadcasting. *)

(* --- process-wide cumulative counters (see stats) ----------------------- *)

let spawned_total = Atomic.make 0
let jobs_total = Atomic.make 0
let chunks_total = Atomic.make 0
let steals_total = Atomic.make 0
let idle_ns_total = Atomic.make 0

(* Instantaneous scheduler state, sampled by the resource telemetry
   layer: how many participants are currently inside [run_chunks].
   Strictly observational — nothing in the pool reads it back. *)
let busy_now = Atomic.make 0

type stats = {
  domains : int;
  spawned : int;
  jobs : int;
  chunks : int;
  steals : int;
  idle_ns : int;
  busy : int;
}

(* --- deques ------------------------------------------------------------- *)

type chunk = { clo : int; chi : int }

type deque = { dm : Mutex.t; mutable items : chunk list (* front = owner *) }

let deque_pop d =
  Mutex.lock d.dm;
  let r =
    match d.items with
    | [] -> None
    | c :: tl ->
      d.items <- tl;
      Some c
  in
  Mutex.unlock d.dm;
  r

let deque_steal d =
  Mutex.lock d.dm;
  let r =
    match List.rev d.items with
    | [] -> None
    | c :: rtl ->
      d.items <- List.rev rtl;
      Some c
  in
  Mutex.unlock d.dm;
  r

(* --- jobs --------------------------------------------------------------- *)

type job = {
  jrun : int -> int -> unit;
  jdeques : deque array;
  jpending : int Atomic.t;  (* chunks not yet executed *)
  jfail : exn option Atomic.t;  (* first exception wins (CAS) *)
  jm : Mutex.t;
  jdone : Condition.t;  (* caller waits here for stragglers *)
}

type t = {
  size : int;
  mutable workers : unit Domain.t list;
  lock : Mutex.t;
  work_cv : Condition.t;
  mutable job : job option;
  mutable epoch : int;
  mutable quit : bool;
}

(* True while the current domain is executing a pool task: nested calls
   must run sequentially instead of waiting on the pool they occupy. *)
let in_task = Domain.DLS.new_key (fun () -> false)

let run_chunks job me =
  let nd = Array.length job.jdeques in
  let mine = job.jdeques.(me) in
  let steal () =
    let rec try_victim i =
      if i >= nd then None
      else
        let v = (me + i) mod nd in
        match deque_steal job.jdeques.(v) with
        | Some c ->
          Atomic.incr steals_total;
          Some c
        | None -> try_victim (i + 1)
    in
    try_victim 1
  in
  let exec c =
    (* After a failure, drain remaining chunks without running them so
       the caller is released promptly. *)
    (if Atomic.get job.jfail = None then
       try job.jrun c.clo c.chi
       with e -> ignore (Atomic.compare_and_set job.jfail None (Some e)));
    Atomic.incr chunks_total;
    if Atomic.fetch_and_add job.jpending (-1) = 1 then begin
      Mutex.lock job.jm;
      Condition.broadcast job.jdone;
      Mutex.unlock job.jm
    end
  in
  let rec loop () =
    match (match deque_pop mine with Some c -> Some c | None -> steal ()) with
    | None -> ()
    | Some c ->
      exec c;
      loop ()
  in
  Domain.DLS.set in_task true;
  Atomic.incr busy_now;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr busy_now;
      Domain.DLS.set in_task false)
    loop

let worker t me () =
  let seen = ref 0 in
  Mutex.lock t.lock;
  let rec loop () =
    if t.quit then Mutex.unlock t.lock
    else if t.epoch <> !seen then begin
      seen := t.epoch;
      let job = t.job in
      Mutex.unlock t.lock;
      (match job with Some j -> run_chunks j me | None -> ());
      Mutex.lock t.lock;
      loop ()
    end
    else begin
      Condition.wait t.work_cv t.lock;
      loop ()
    end
  in
  loop ()

let default_jobs () = max 1 (min 8 (Domain.recommended_domain_count ()))

let create ?domains () =
  let size =
    match domains with
    | Some d -> max 1 d
    | None -> default_jobs ()
  in
  let t =
    { size;
      workers = [];
      lock = Mutex.create ();
      work_cv = Condition.create ();
      job = None;
      epoch = 0;
      quit = false }
  in
  t.workers <- List.init (size - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  Atomic.fetch_and_add spawned_total (size - 1) |> ignore;
  t

let shutdown t =
  Mutex.lock t.lock;
  t.quit <- true;
  Condition.broadcast t.work_cv;
  Mutex.unlock t.lock;
  List.iter Domain.join t.workers;
  t.workers <- []

let size t = t.size

let with_pool ~jobs f =
  let p = create ~domains:jobs () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

(* Below this many items the chunking/wakeup overhead outweighs any
   parallel speedup; matches the old Parallel.map threshold. *)
let min_items = 32

let run_range ?(min_chunk_work = min_items) t n body =
  (* The sequential cutoff IS [min_chunk_work]: callers with expensive
     per-item bodies (device measurement batches of ~top_k items) pass
     [~min_chunk_work:1] to parallelize even tiny ranges, while the
     default keeps the old [min_items] threshold for cheap bodies. *)
  let cutoff = max 1 min_chunk_work in
  if n <= 0 then ()
  else if t.size = 1 || t.quit || n < cutoff || Domain.DLS.get in_task then
    body 0 n
  else begin
    Atomic.incr jobs_total;
    (* A few chunks per participant so fast participants can steal the
       tail from slow ones without per-element scheduling overhead — but
       never chunks smaller than [min_chunk_work]: when per-item work is
       tiny, handoff (deque locking, condvar wakeups) dominates any
       speedup, so cheap jobs are dealt in coarser pieces. *)
    let csize =
      max (max 1 min_chunk_work) ((n + (t.size * 4) - 1) / (t.size * 4))
    in
    let nchunks = (n + csize - 1) / csize in
    let deques =
      Array.init t.size (fun _ -> { dm = Mutex.create (); items = [] })
    in
    for j = nchunks - 1 downto 0 do
      let w = j * t.size / nchunks in
      deques.(w).items <-
        { clo = j * csize; chi = min n ((j + 1) * csize) } :: deques.(w).items
    done;
    let job =
      { jrun = body;
        jdeques = deques;
        jpending = Atomic.make nchunks;
        jfail = Atomic.make None;
        jm = Mutex.create ();
        jdone = Condition.create () }
    in
    Mutex.lock t.lock;
    t.job <- Some job;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_cv;
    Mutex.unlock t.lock;
    run_chunks job 0;
    if Atomic.get job.jpending > 0 then begin
      let t0 = now_ns () in
      Mutex.lock job.jm;
      while Atomic.get job.jpending > 0 do
        Condition.wait job.jdone job.jm
      done;
      Mutex.unlock job.jm;
      Atomic.fetch_and_add idle_ns_total (now_ns () - t0) |> ignore
    end;
    match Atomic.get job.jfail with Some e -> raise e | None -> ()
  end

let map_array ?min_chunk_work t f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else begin
    (* Computing the first element up front gives Array.make a value of
       the right type (no Obj.magic) and keeps float arrays unboxed. *)
    let first = f arr.(0) in
    let res = Array.make n first in
    run_range ?min_chunk_work t (n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          res.(i + 1) <- f arr.(i + 1)
        done);
    res
  end

let init ?min_chunk_work t n f =
  if n <= 0 then [||]
  else begin
    let first = f 0 in
    let res = Array.make n first in
    run_range ?min_chunk_work t (n - 1) (fun lo hi ->
        for i = lo to hi - 1 do
          res.(i + 1) <- f (i + 1)
        done);
    res
  end

let map ?min_chunk_work t f l =
  Array.to_list (map_array ?min_chunk_work t f (Array.of_list l))

(* --- the shared global pool --------------------------------------------- *)

let requested = ref None

let env_jobs () =
  match Sys.getenv_opt "MCFUSER_JOBS" with
  | None -> None
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some j -> Some (max 1 j)
    | None -> None)

let jobs () =
  match !requested with
  | Some j -> j
  | None -> ( match env_jobs () with Some j -> j | None -> default_jobs ())

let set_jobs j = requested := Some (max 1 j)

(* Oversubscribing a small machine is strictly worse than sequential for
   the tuner's short jobs (domains contend for the same cores and the
   caller parks on stragglers), so the *global* pool never spawns more
   participants than the hardware offers.  Explicit [create ~domains] is
   left unclamped: tests and callers that want oversubscription on
   purpose can still ask for it. *)
let effective_jobs () =
  min (jobs ()) (max 1 (Domain.recommended_domain_count ()))

let global = ref None
let global_lock = Mutex.create ()

let get () =
  Mutex.lock global_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock global_lock)
    (fun () ->
      let want = effective_jobs () in
      match !global with
      | Some p when p.size = want -> p
      | prev ->
        (match prev with Some p -> shutdown p | None -> ());
        let p = create ~domains:want () in
        global := Some p;
        p)

let () =
  at_exit (fun () -> match !global with Some p -> shutdown p | None -> ())

let stats () =
  { domains = (match !global with Some p -> p.size | None -> 0);
    spawned = Atomic.get spawned_total;
    jobs = Atomic.get jobs_total;
    chunks = Atomic.get chunks_total;
    steals = Atomic.get steals_total;
    idle_ns = Atomic.get idle_ns_total;
    busy = Atomic.get busy_now }
