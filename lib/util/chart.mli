(** ASCII chart rendering so that "figure" experiments produce a visual
    artifact directly in the terminal: grouped bar charts (Fig. 8/9),
    scatter plots (Figs. 10/11) and line series (Fig. 2). *)

val sparkline : ?max_width:int -> float list -> string
(** One character per value, eight ASCII density levels ([_.:-=+*#])
    scaled to the series min/max; a flat series renders as [-].  Series
    longer than [max_width] (default 40) keep their most recent values.
    Used by [mcfuser perf] for cross-run trend tables. *)

val bar :
  ?width:int ->
  title:string ->
  unit_label:string ->
  (string * float) list ->
  string
(** Horizontal bar chart; bars scale to the maximum value. *)

val grouped_bar :
  ?width:int ->
  title:string ->
  unit_label:string ->
  series:string list ->
  (string * float list) list ->
  string
(** [grouped_bar ~series rows] draws, per row label, one bar per series
    member.  Row value list arity must match [series]. *)

val scatter :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  (float * float) list ->
  string
(** Scatter plot on linear axes.  Point density is shown with [.:*#]. *)

val line :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  (string * (float * float) list) list ->
  string
(** Multiple line series on shared axes, one glyph per series. *)
