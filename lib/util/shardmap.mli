(** Sharded, string-keyed concurrent map with per-shard LRU eviction and
    in-flight computation dedup.

    Keys are distributed over N independent shards (own mutex, hashtable
    and LRU list each), so lookups on different shards never contend —
    the multi-tenant backing store for content-addressed caches shared
    across pool domains ({!Mcf_search} measurement cache, the planned
    [mcfuser serve] schedule cache).

    {!find_or_compute} guarantees a key's thunk runs at most once at a
    time process-wide: the first caller installs a pending placeholder
    and computes {e outside} the shard lock; concurrent callers for the
    same key wait on the shard's condition variable and receive the
    computed value.  Pending entries are never evicted; the LRU bound
    applies to completed entries only. *)

type 'a t

(** How {!find_or_compute} obtained its value: [Hit] — already cached;
    [Waited] — another domain was computing it, we blocked for the
    result; [Computed] — this caller ran the thunk. *)
type outcome = Hit | Waited | Computed

val create : ?shards:int -> ?capacity_per_shard:int -> unit -> 'a t
(** [shards] defaults to 16; [capacity_per_shard] (completed entries
    kept per shard, least-recently-used evicted beyond it) defaults to
    unbounded.  @raise Invalid_argument when either is < 1. *)

val shard_count : 'a t -> int

val find : 'a t -> string -> 'a option
(** [None] for absent {e and} pending keys (never blocks); a hit
    freshens the entry's LRU position. *)

val set : 'a t -> string -> 'a -> unit
(** Insert or overwrite (waking any waiters if the key was pending) —
    the warm-start path when loading a persisted cache. *)

val find_or_compute : 'a t -> string -> (unit -> 'a) -> outcome * 'a
(** Cached value, or run the thunk (outside the shard lock) and cache
    its result.  If the thunk raises, the pending entry is removed,
    waiters are woken (one of them recomputes), and the exception
    propagates to this caller only. *)

val length : 'a t -> int
(** Completed entries across all shards. *)

val fold : 'a t -> (string -> 'a -> 'acc -> 'acc) -> 'acc -> 'acc
(** Fold over a snapshot of completed entries (order unspecified); [f]
    runs outside the shard locks. *)
