(* Minimal HTTP/1.1 server + client.  See httpd.mli for the contract.

   Accept loop design: the listener thread polls the listen socket with
   a short select timeout instead of blocking in accept, so [stop] only
   has to flip an atomic and join — no self-pipe, no signal games, and
   it works the same on every Unix.  Connections are handled on
   short-lived threads (one request, Connection: close); a mutex-guarded
   in-flight count bounds concurrency and lets [stop] drain gracefully. *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  headers : (string * string) list;
  body : string;
}

type response = {
  status : int;
  content_type : string;
  body : string;
}

let response ?(status = 200) ?(content_type = "text/plain; charset=utf-8")
    body =
  { status; content_type; body }

let reason_phrase = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | _ -> "Status"

type t = {
  sock : Unix.file_descr;
  taddr : string;
  tport : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  mutable acceptor : Thread.t option;
  lock : Mutex.t;
  drained : Condition.t;
  mutable in_flight : int;
  max_connections : int;
  read_timeout_s : float;
  max_body_bytes : int;
}

let port t = t.tport
let url t = Printf.sprintf "http://%s:%d" t.taddr t.tport
let running t = not (Atomic.get t.stopping)

(* --- request parsing --------------------------------------------------- *)

let head_limit = 16 * 1024

let find_terminator s =
  let n = String.length s in
  let rec find i =
    if i + 4 > n then None
    else if String.sub s i 4 = "\r\n\r\n" then Some i
    else find (i + 1)
  in
  find 0

(* Read until the blank line ending the header block.  Returns the head
   plus any body bytes that arrived in the same reads. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > head_limit then None
    else begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> None
      | n -> (
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        (* The terminator can straddle reads; scanning the whole buffer
           each time is fine at these sizes. *)
        match find_terminator s with
        | Some i ->
          let after = i + 4 in
          Some
            (String.sub s 0 after, String.sub s after (String.length s - after))
        | None -> go ())
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        (* Receive timeout: give up on this connection. *)
        None
    end
  in
  go ()

let split_lines s =
  String.split_on_char '\n' s
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)

let parse_query q =
  if q = "" then []
  else
    String.split_on_char '&' q
    |> List.filter_map (fun kv ->
           match String.index_opt kv '=' with
           | Some i ->
             Some
               ( String.sub kv 0 i,
                 String.sub kv (i + 1) (String.length kv - i - 1) )
           | None -> if kv = "" then None else Some (kv, ""))

let parse_request head =
  match split_lines head with
  | [] -> None
  | req_line :: rest -> (
    match String.split_on_char ' ' req_line with
    | [ meth; target; version ]
      when String.length version >= 5 && String.sub version 0 5 = "HTTP/" ->
      let path, query =
        match String.index_opt target '?' with
        | Some i ->
          ( String.sub target 0 i,
            parse_query
              (String.sub target (i + 1) (String.length target - i - 1)) )
        | None -> (target, [])
      in
      let headers =
        List.filter_map
          (fun line ->
            match String.index_opt line ':' with
            | Some i ->
              Some
                ( String.lowercase_ascii (String.sub line 0 i),
                  String.trim
                    (String.sub line (i + 1) (String.length line - i - 1)) )
            | None -> None)
          rest
      in
      Some
        { meth = String.uppercase_ascii meth; path; query; headers; body = "" }
    | _ -> None)

(* Outcome of reading one full request off a connection.  [`Gone] covers
   receive timeouts and peers that vanished mid-request: nothing sane can
   be sent back, so the connection is dropped silently. *)
type read_outcome =
  | Req of request
  | Bad_request
  | Too_large
  | Gone

let read_request fd ~max_body_bytes =
  match read_head fd with
  | None -> Gone
  | Some (head, extra) -> (
    match parse_request head with
    | None -> Bad_request
    | Some req -> (
      let content_length =
        match List.assoc_opt "content-length" req.headers with
        | None -> Some 0
        | Some v -> int_of_string_opt (String.trim v)
      in
      match content_length with
      | None -> Bad_request
      | Some n when n < 0 -> Bad_request
      | Some n when n > max_body_bytes -> Too_large
      | Some n ->
        if String.length extra >= n then Req { req with body = String.sub extra 0 n }
        else begin
          let buf = Buffer.create (max n 64) in
          Buffer.add_string buf extra;
          let chunk = Bytes.create 4096 in
          let rec go () =
            let missing = n - Buffer.length buf in
            if missing <= 0 then Req { req with body = Buffer.contents buf }
            else begin
              match Unix.read fd chunk 0 (min (Bytes.length chunk) missing) with
              | 0 -> Gone
              | k ->
                Buffer.add_subbytes buf chunk 0 k;
                go ()
              | exception Unix.Unix_error (EINTR, _, _) -> go ()
              | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
                Gone
            end
          in
          go ()
        end))

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then begin
      match Unix.write_substring fd s off (n - off) with
      | written -> go (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> go off
    end
  in
  go 0

let send_response fd (r : response) =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      r.status (reason_phrase r.status) r.content_type
      (String.length r.body)
  in
  write_all fd (head ^ r.body)

(* --- server ------------------------------------------------------------- *)

let handle_conn t handler fd =
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Mutex.lock t.lock;
      t.in_flight <- t.in_flight - 1;
      Condition.broadcast t.drained;
      Mutex.unlock t.lock)
    (fun () ->
      (* A stuck client must not wedge a bounded handler slot forever. *)
      (try Unix.setsockopt_float fd SO_RCVTIMEO t.read_timeout_s
       with Unix.Unix_error _ -> ());
      match read_request fd ~max_body_bytes:t.max_body_bytes with
      | Gone -> ()
      | Bad_request -> (
        try send_response fd (response ~status:400 "bad request\n")
        with Unix.Unix_error _ -> ())
      | Too_large ->
        (try send_response fd (response ~status:413 "payload too large\n")
         with Unix.Unix_error _ -> ());
        (* Drain what the client already sent (bounded by a short
           receive timeout and a byte cap): closing with unread data
           pending sends a TCP RST that can destroy the 413 before the
           client reads it.  The timeout is short so the client — which
           reads until EOF — sees the close promptly. *)
        (try Unix.setsockopt_float fd SO_RCVTIMEO 0.2
         with Unix.Unix_error _ -> ());
        let chunk = Bytes.create 4096 in
        let rec drain budget =
          if budget > 0 then
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | k -> drain (budget - k)
            | exception Unix.Unix_error (EINTR, _, _) -> drain budget
            | exception Unix.Unix_error _ -> ()
        in
        drain (4 * 1024 * 1024)
      | Req req ->
        let resp =
          try handler req
          with e ->
            response ~status:500
              (Printf.sprintf "handler error: %s\n" (Printexc.to_string e))
        in
        (try send_response fd resp with Unix.Unix_error _ -> ()))

let accept_loop t handler () =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.sock ] [] [] 0.05 with
    | [], _, _ | exception Unix.Unix_error (EINTR, _, _) -> ()
    | _ :: _, _, _ -> (
      match Unix.accept ~cloexec:true t.sock with
      | exception Unix.Unix_error (_, _, _) -> ()
      | fd, _peer ->
        Mutex.lock t.lock;
        let admitted = t.in_flight < t.max_connections in
        if admitted then t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.lock;
        if admitted then
          ignore (Thread.create (fun () -> handle_conn t handler fd) ())
        else begin
          (try send_response fd (response ~status:503 "server busy\n")
           with Unix.Unix_error _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ()
        end)
  done

let start ?(max_connections = 16) ?(backlog = 32) ?(read_timeout_s = 5.0)
    ?(max_body_bytes = 1024 * 1024) ~addr ~port ~handler () =
  match Unix.inet_addr_of_string addr with
  | exception _ -> Error (Printf.sprintf "invalid listen address %S" addr)
  | inet -> (
    (* A peer that closes mid-response must surface as EPIPE on write,
       not kill the whole process. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ | Sys_error _ -> ());
    let sock = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
    Unix.setsockopt sock SO_REUSEADDR true;
    match
      Unix.bind sock (ADDR_INET (inet, port));
      Unix.listen sock backlog
    with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close sock with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot listen on %s:%d: %s" addr port
           (Unix.error_message e))
    | () ->
      let bound_port =
        match Unix.getsockname sock with
        | ADDR_INET (_, p) -> p
        | ADDR_UNIX _ -> port
      in
      let t =
        { sock;
          taddr = addr;
          tport = bound_port;
          stopping = Atomic.make false;
          stopped = Atomic.make false;
          acceptor = None;
          lock = Mutex.create ();
          drained = Condition.create ();
          in_flight = 0;
          max_connections;
          read_timeout_s;
          max_body_bytes }
      in
      t.acceptor <- Some (Thread.create (accept_loop t handler) ());
      Ok t)

let stop t =
  Atomic.set t.stopping true;
  if not (Atomic.exchange t.stopped true) then begin
    (match t.acceptor with Some th -> Thread.join th | None -> ());
    Mutex.lock t.lock;
    while t.in_flight > 0 do
      Condition.wait t.drained t.lock
    done;
    Mutex.unlock t.lock;
    try Unix.close t.sock with Unix.Unix_error _ -> ()
  end

(* --- client ------------------------------------------------------------- *)

module Client = struct
  let parse_url url =
    let prefix = "http://" in
    let plen = String.length prefix in
    if String.length url <= plen || String.sub url 0 plen <> prefix then
      Error (Printf.sprintf "unsupported URL %S (expected http://...)" url)
    else begin
      let rest = String.sub url plen (String.length url - plen) in
      let hostport, path =
        match String.index_opt rest '/' with
        | Some i ->
          (String.sub rest 0 i, String.sub rest i (String.length rest - i))
        | None -> (rest, "/")
      in
      match String.rindex_opt hostport ':' with
      | Some i -> (
        let host = String.sub hostport 0 i in
        let port_s =
          String.sub hostport (i + 1) (String.length hostport - i - 1)
        in
        match int_of_string_opt port_s with
        | Some p when p > 0 && p < 65536 -> Ok (host, p, path)
        | Some _ | None ->
          Error (Printf.sprintf "bad port in URL %S" url))
      | None -> Ok (hostport, 80, path)
    end

  let resolve host =
    match Unix.inet_addr_of_string host with
    | inet -> Ok inet
    | exception _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } | (exception Not_found) ->
        Error (Printf.sprintf "cannot resolve host %S" host)
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0))

  let read_to_eof fd =
    let buf = Buffer.create 4096 in
    let chunk = Bytes.create 4096 in
    let rec go () =
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> Ok (Buffer.contents buf)
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        Error "read timed out"
      | exception Unix.Unix_error (EINTR, _, _) -> go ()
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    in
    go ()

  let parse_response raw =
    let header_end =
      let n = String.length raw in
      let rec find i =
        if i + 4 > n then None
        else if String.sub raw i 4 = "\r\n\r\n" then Some i
        else find (i + 1)
      in
      find 0
    in
    match header_end with
    | None -> Error "malformed HTTP response (no header terminator)"
    | Some i -> (
      let head = String.sub raw 0 i in
      let body = String.sub raw (i + 4) (String.length raw - i - 4) in
      match split_lines head with
      | status_line :: header_lines -> (
        match String.split_on_char ' ' status_line with
        | version :: code :: _
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
          -> (
          match int_of_string_opt code with
          | None -> Error "malformed HTTP status code"
          | Some status ->
            (* Trust Content-Length when present: a well-behaved peer may
               close late, but the body boundary is authoritative. *)
            let content_length =
              List.find_map
                (fun line ->
                  match String.index_opt line ':' with
                  | Some j
                    when String.lowercase_ascii (String.sub line 0 j)
                         = "content-length" ->
                    int_of_string_opt
                      (String.trim
                         (String.sub line (j + 1)
                            (String.length line - j - 1)))
                  | _ -> None)
                header_lines
            in
            let body =
              match content_length with
              | Some n when n >= 0 && n <= String.length body ->
                String.sub body 0 n
              | _ -> body
            in
            Ok (status, body))
        | _ -> Error "malformed HTTP status line")
      | [] -> Error "empty HTTP response")

  let request ?(timeout_s = 5.0) ~meth ?body url =
    match parse_url url with
    | Error _ as e -> e
    | Ok (host, port, path) -> (
      match resolve host with
      | Error _ as e -> e
      | Ok inet -> (
        let sock = Unix.socket ~cloexec:true PF_INET SOCK_STREAM 0 in
        let finally () =
          try Unix.close sock with Unix.Unix_error _ -> ()
        in
        Fun.protect ~finally (fun () ->
            (try
               Unix.setsockopt_float sock SO_RCVTIMEO timeout_s;
               Unix.setsockopt_float sock SO_SNDTIMEO timeout_s
             with Unix.Unix_error _ -> ());
            match Unix.connect sock (ADDR_INET (inet, port)) with
            | exception Unix.Unix_error (e, _, _) ->
              Error
                (Printf.sprintf "connect %s:%d: %s" host port
                   (Unix.error_message e))
            | () -> (
              let body_headers, payload =
                match body with
                | None -> ("", "")
                | Some b ->
                  ( Printf.sprintf
                      "Content-Type: application/json\r\n\
                       Content-Length: %d\r\n"
                      (String.length b),
                    b )
              in
              let req =
                Printf.sprintf
                  "%s %s HTTP/1.1\r\nHost: %s:%d\r\n%sConnection: close\r\n\r\n\
                   %s"
                  meth path host port body_headers payload
              in
              match write_all sock req with
              | exception Unix.Unix_error (e, _, _) ->
                Error (Printf.sprintf "send: %s" (Unix.error_message e))
              | () -> (
                match read_to_eof sock with
                | Error _ as e -> e
                | Ok raw -> parse_response raw)))))

  let get ?timeout_s url = request ?timeout_s ~meth:"GET" url
  let post ?timeout_s url ~body = request ?timeout_s ~meth:"POST" ~body url
end
