(** Minimal dependency-free HTTP/1.1 server and client over Unix sockets.

    Just enough HTTP for the live telemetry surface ([/metrics],
    [/status], [/healthz]) and the [mcfuser serve] daemon: an accept
    loop on a dedicated thread, one short-lived handler thread per
    connection with a hard bound on concurrency, [Content-Length]
    request bodies with a hard size cap, [Connection: close] semantics
    (no keep-alive, no chunked encoding, no TLS), and a graceful
    shutdown that drains in-flight requests before returning.

    The server is strictly observational infrastructure: handlers run on
    their own threads and nothing in the search pipeline ever blocks on
    or reads from them, so tuner results are bit-identical with a
    listener on or off. *)

type request = {
  meth : string;  (** Upper-case method, e.g. ["GET"]. *)
  path : string;  (** Request target with the query string stripped. *)
  query : (string * string) list;
      (** Decoded [k=v] pairs, file order.  No percent-decoding — the
          telemetry endpoints are plain ASCII. *)
  headers : (string * string) list;
      (** Header names lower-cased, values trimmed. *)
  body : string;
      (** Request body, read per [Content-Length] (empty when absent).
          Bodies over the server's [max_body_bytes] are answered [413]
          before the handler ever runs. *)
}

type response = {
  status : int;
  content_type : string;
  body : string;
}

val response : ?status:int -> ?content_type:string -> string -> response
(** [response body] with status [200] and content type
    ["text/plain; charset=utf-8"] unless overridden. *)

type t

val start :
  ?max_connections:int ->
  ?backlog:int ->
  ?read_timeout_s:float ->
  ?max_body_bytes:int ->
  addr:string ->
  port:int ->
  handler:(request -> response) ->
  unit ->
  (t, string) result
(** Bind [addr:port] (numeric address; port [0] asks the kernel for a
    free one — read it back with {!port}) and start the accept loop on a
    dedicated thread.  Each connection is served by its own thread; at
    most [max_connections] (default 16) run at once and excess
    connections are answered [503] inline.  [read_timeout_s] (default
    5s) is the per-connection receive timeout: a stalled client is
    dropped and its slot freed, so it cannot pin the bounded pool.
    Request bodies larger than [max_body_bytes] (default 1 MiB) are
    answered [413] without being read.  A handler exception becomes a
    [500] carrying the exception text.  Errors (bad address, port in
    use) are returned, never raised. *)

val port : t -> int
(** The actually-bound port (resolves a requested port [0]). *)

val url : t -> string
(** ["http://<addr>:<port>"] — no trailing slash. *)

val running : t -> bool

val stop : t -> unit
(** Graceful shutdown: stop accepting, join the accept thread, wait for
    every in-flight handler to finish, then close the listen socket.
    Idempotent. *)

(** Tiny blocking HTTP/1.1 client for loopback telemetry fetches — used
    by [mcfuser top], the [--listen-selfcheck] probe and the lifecycle
    tests.  [http://] only, no redirects, no keep-alive. *)
module Client : sig
  val get : ?timeout_s:float -> string -> (int * string, string) result
  (** [get "http://host:port/path"] returns [(status, body)].  The
      response is read to EOF (the server side of this module always
      closes), honouring [Content-Length] when present; [timeout_s]
      (default 5s) bounds both connect and read. *)

  val post :
    ?timeout_s:float -> string -> body:string -> (int * string, string) result
  (** [post url ~body] sends [body] as [application/json] with a
      [Content-Length] header and returns [(status, body)] like
      {!get}. *)
end
