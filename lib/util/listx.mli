(** Small list/array combinators the standard library lacks, used heavily by
    the search-space enumeration (permutations, cartesian products). *)

val permutations : 'a list -> 'a list list
(** All permutations; n! results, callers keep n small (loop counts). *)

val cartesian : 'a list list -> 'a list list
(** Cartesian product of a list of choice lists, in lexicographic order of
    the input lists.  [cartesian []] is [[[]]]. *)

val seq_permutations : 'a list -> 'a list Seq.t
(** Lazy [permutations]: same elements in the same order, but produced
    on demand so n! never has to be resident at once. *)

val seq_cartesian : 'a list list -> 'a list Seq.t
(** Lazy [cartesian]: same tuples in the same (first-axis-slowest)
    order, produced on demand. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (fewer when the list is shorter). *)

val drop : int -> 'a list -> 'a list
(** The list without its first [n] elements. *)

val index_of : ('a -> bool) -> 'a list -> int option
(** Index of the first element satisfying the predicate. *)

val dedup : compare:('a -> 'a -> int) -> 'a list -> 'a list
(** Sorted deduplication; result is sorted by [compare]. *)

val dedup_keep_order : key:('a -> string) -> 'a list -> 'a list
(** Deduplicate by string key, keeping the first occurrence order. *)

val sum_by : ('a -> float) -> 'a list -> float
(** Sum of a projection. *)

val max_by : ('a -> float) -> 'a list -> 'a option
(** Element maximizing a projection; [None] on the empty list. *)

val min_by : ('a -> float) -> 'a list -> 'a option
(** Element minimizing a projection; [None] on the empty list. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]. *)

val interleavings : 'a list -> 'a list -> 'a list list
(** All order-preserving interleavings of two lists. *)
