(* Compatibility shim over Pool.  [map ?domains] used to spawn fresh
   domains per call; it now borrows the persistent global pool (or a
   temporary pool when an explicit domain count is requested). *)

let default_domains = Pool.default_jobs

let map_array ?domains f arr =
  match domains with
  | None -> Pool.map_array (Pool.get ()) f arr
  | Some d when d <= 1 -> Array.map f arr
  | Some d -> Pool.with_pool ~jobs:d (fun p -> Pool.map_array p f arr)

let map ?domains f l =
  Array.to_list (map_array ?domains f (Array.of_list l))
