type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num_of_int i = Num (float_of_int i)

(* --- printing -------------------------------------------------------------- *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf v =
  if Float.is_nan v || Float.abs v = infinity then
    (* JSON has no NaN/Infinity; clamp to null per common practice. *)
    Buffer.add_string buf "null"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" v)
  else begin
    (* shortest decimal that round-trips *)
    let s = Printf.sprintf "%.15g" v in
    let s = if float_of_string s = v then s else Printf.sprintf "%.17g" v in
    Buffer.add_string buf s
  end

let to_string v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num v -> add_num buf v
    | Str s -> add_escaped buf s
    | List vs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          go v)
        vs;
      Buffer.add_char buf ']'
    | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          add_escaped buf k;
          Buffer.add_char buf ':';
          go v)
        kvs;
      Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* --- parsing --------------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | _ -> fail "bad hex digit in \\u escape"
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let string_body () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (if !pos >= n then fail "unterminated escape";
         let c = s.[!pos] in
         advance ();
         match c with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 't' -> Buffer.add_char buf '\t'
         | 'r' -> Buffer.add_char buf '\r'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           let cp = hex4 () in
           let cp =
             if cp >= 0xD800 && cp <= 0xDBFF then begin
               (* high surrogate: require a low surrogate *)
               if
                 !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
               then begin
                 advance ();
                 advance ();
                 let lo = hex4 () in
                 if lo < 0xDC00 || lo > 0xDFFF then
                   fail "invalid low surrogate";
                 0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
               end
               else fail "lone high surrogate"
             end
             else if cp >= 0xDC00 && cp <= 0xDFFF then
               fail "lone low surrogate"
             else cp
           in
           add_utf8 buf cp
         | _ -> fail "bad escape character");
        go ()
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "expected digit"
    in
    if peek () = Some '-' then advance ();
    (* strict JSON: no leading zeros — "0" alone or [1-9] then digits *)
    (match peek () with
    | Some '0' -> advance ()
    | Some '1' .. '9' -> digits ()
    | _ -> fail "expected digit");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> fail "malformed number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (string_body ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> fail "expected ',' or ']'"
        in
        List (items [])
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let pair () =
          skip_ws ();
          let k = string_body () in
          skip_ws ();
          expect ':';
          let v = value () in
          (k, v)
        in
        let rec items acc =
          let kv = pair () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (kv :: acc)
          | Some '}' ->
            advance ();
            List.rev (kv :: acc)
          | _ -> fail "expected ',' or '}'"
        in
        Obj (items [])
      end
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after JSON value";
    v
  with
  | v -> Ok v
  | exception Fail (at, msg) ->
    Error (Printf.sprintf "JSON parse error at byte %d: %s" at msg)

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | Null | Bool _ | Num _ | Str _ | List _ -> None

(* --- JSONL stores ----------------------------------------------------------- *)

let jsonl_src =
  Logs.Src.create "mcfuser.jsonl" ~doc:"Line-oriented store loading"

module Log = (val Logs.src_log jsonl_src : Logs.LOG)

let fold_lines ~path ~init ~f =
  if not (Sys.file_exists path) then (init, 0)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let acc = ref init in
        let skipped = ref 0 in
        (try
           while true do
             let line = input_line ic in
             if String.trim line <> "" then
               match f !acc line with
               | Some acc' -> acc := acc'
               | None -> incr skipped
           done
         with End_of_file -> ());
        if !skipped > 0 then
          Log.warn (fun m ->
              m "%s: skipped %d malformed line%s" path !skipped
                (if !skipped = 1 then "" else "s"));
        (!acc, !skipped))
  end

let fold_jsonl ~path ~init ~f =
  fold_lines ~path ~init ~f:(fun acc line ->
      match parse line with Ok j -> f acc j | Error _ -> None)
