(** Persistent work-stealing domain pool.

    {!Parallel.map} used to spawn (and join) fresh domains on every call,
    which puts domain startup on the tuner's hot path: a single
    [Tuner.tune] run calls into the parallel layer hundreds of times.  A
    pool spawns its worker domains once and reuses them for every job.

    Scheduling is chunked and dynamic: each job is split into contiguous
    index ranges (a few per domain), the ranges are dealt to per-domain
    deques, and each participant pops work from its own deque front while
    idle participants steal from the back of a victim's deque.  The
    calling domain takes part in the job, so a pool of size 1 spawns no
    domains at all and runs inline.

    All [map] functions are deterministic and order-preserving: the
    result is bit-identical to the sequential map whatever the pool size,
    provided [f] is pure.  If [f] raises in any participant, one of the
    raised exceptions is re-raised in the caller after the job drains;
    remaining chunks are skipped (each element of the input is applied at
    most once).

    Nested calls from inside a pool task run sequentially rather than
    deadlocking on the shared pool. *)

type t

val create : ?domains:int -> unit -> t
(** [create ~domains ()] spawns a pool with [domains] participants
    ([domains - 1] worker domains plus the caller).  Defaults to
    {!jobs}[ ()].  Values are clamped to at least 1. *)

val shutdown : t -> unit
(** Terminate and join the pool's worker domains.  Idempotent.  Using the
    pool after [shutdown] runs jobs sequentially in the caller. *)

val size : t -> int
(** Number of participants (worker domains + the calling domain). *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a temporary pool of [jobs]
    participants, shutting it down afterwards (also on exceptions). *)

val map : ?min_chunk_work:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Order-preserving parallel map over a list. *)

val map_array : ?min_chunk_work:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Order-preserving parallel map over an array. *)

val init : ?min_chunk_work:int -> t -> int -> (int -> 'a) -> 'a array
(** [init p n f] is a parallel [Array.init n f].  Useful for indexed
    virtual spaces where materializing the input would defeat the point. *)

val run_range : ?min_chunk_work:int -> t -> int -> (int -> int -> unit) -> unit
(** [run_range p n body] partitions [\[0, n)] into chunks and calls
    [body lo hi] for each chunk [\[lo, hi)], in parallel.  [body] must
    only write to disjoint state per index (e.g. distinct array cells).

    [min_chunk_work] is the caller's per-call sequential cutoff for jobs
    with cheap per-item work (default 32): ranges shorter than it run
    inline in the caller, and parallel runs never deal chunks smaller
    than it, so deque handoff cannot dominate sub-microsecond items.
    Callers whose per-item body is expensive (a whole device
    measurement) pass [~min_chunk_work:1] to parallelize even tiny
    ranges one item per chunk.  Results are bit-identical whatever its
    value. *)

(** {1 The shared global pool}

    Library code ({!Mcf_search.Space}, {!Mcf_search.Explore}) uses one
    process-wide pool so domains are spawned once per process.  Its
    requested size is, in order of precedence: the last {!set_jobs} call,
    the [MCFUSER_JOBS] environment variable, then
    [min 8 (Domain.recommended_domain_count ())]; the spawned size is
    additionally clamped to [Domain.recommended_domain_count ()], so
    [--jobs 4] on a 1-core container runs sequentially instead of
    oversubscribing (explicit {!create} is not clamped). *)

val get : unit -> t
(** The global pool, (re)spawned on demand to match {!effective_jobs}[ ()]. *)

val set_jobs : int -> unit
(** Override the global pool size (e.g. from a [--jobs] CLI flag).
    Takes effect at the next {!get}; clamped to at least 1. *)

val jobs : unit -> int
(** The currently configured (requested) global pool size. *)

val effective_jobs : unit -> int
(** [min (jobs ()) (max 1 (Domain.recommended_domain_count ()))] — the
    size the global pool is actually spawned with. *)

val default_jobs : unit -> int
(** [max 1 (min 8 (Domain.recommended_domain_count ()))] — the value used
    when neither {!set_jobs} nor [MCFUSER_JOBS] is in effect. *)

(** {1 Stats}

    Process-wide cumulative scheduler counters, for the observability
    layer ([Mcf_obs.Poolstats] pulls these into the metrics registry;
    [mcf_util] cannot depend on [mcf_obs]). *)

type stats = {
  domains : int;  (** size of the live global pool (0 before first use) *)
  spawned : int;  (** worker domains spawned over the process lifetime *)
  jobs : int;  (** parallel jobs submitted (sequential runs excluded) *)
  chunks : int;  (** chunks executed across all jobs *)
  steals : int;  (** chunks obtained from another participant's deque *)
  idle_ns : int;
      (** caller nanoseconds spent waiting on straggler workers *)
  busy : int;
      (** participants currently executing chunks — an instantaneous
          sample, not a cumulative counter; the resource telemetry
          sampler reads it to build the pool-utilization timeline *)
}

val stats : unit -> stats
