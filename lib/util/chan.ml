(* Bounded multi-producer/multi-consumer channel.  See chan.mli.

   A plain mutex + two condition variables: OCaml 5 Mutex/Condition work
   across domains, and the streaming enumeration pushes coarse chunk
   descriptors (thousands of points each), so lock traffic is far off the
   hot path — simplicity and an auditable state machine win over a
   lock-free design here. *)

type state = Open | Closed | Poisoned of exn | Cancelled

type 'a t = {
  q : 'a Queue.t;
  capacity : int;
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  mutable state : state;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Chan.create: capacity must be >= 1";
  { q = Queue.create ();
    capacity;
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    state = Open;
  }

let send t v =
  Mutex.lock t.m;
  let rec go () =
    match t.state with
    | Open when Queue.length t.q >= t.capacity ->
      Condition.wait t.not_full t.m;
      go ()
    | Open ->
      Queue.push v t.q;
      Condition.signal t.not_empty;
      true
    | Closed | Poisoned _ | Cancelled -> false
  in
  let accepted = go () in
  Mutex.unlock t.m;
  accepted

let recv t =
  Mutex.lock t.m;
  let rec go () =
    match t.state with
    | Poisoned e ->
      Mutex.unlock t.m;
      raise e
    | Cancelled ->
      Mutex.unlock t.m;
      None
    | Open | Closed ->
      if not (Queue.is_empty t.q) then begin
        let v = Queue.pop t.q in
        Condition.signal t.not_full;
        Mutex.unlock t.m;
        Some v
      end
      else begin
        match t.state with
        | Closed ->
          Mutex.unlock t.m;
          None
        | _ ->
          Condition.wait t.not_empty t.m;
          go ()
      end
  in
  go ()

(* All three terminal transitions wake every waiter: blocked senders
   re-check the state and return false; blocked receivers observe the
   close/poison/cancel. *)
let terminate t next ~clear =
  Mutex.lock t.m;
  (match t.state with
  | Open | Closed ->
    t.state <- next;
    if clear then Queue.clear t.q
  | Poisoned _ | Cancelled -> ());
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

let close t =
  Mutex.lock t.m;
  (match t.state with Open -> t.state <- Closed | _ -> ());
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.m

let poison t e = terminate t (Poisoned e) ~clear:true
let cancel t = terminate t Cancelled ~clear:true

let length t =
  Mutex.lock t.m;
  let n = Queue.length t.q in
  Mutex.unlock t.m;
  n
