(* A string-keyed concurrent map sharded by key hash.  Each shard holds
   its own mutex, hashtable and intrusive LRU list, so concurrent
   lookups on different shards never contend; [find_or_compute] runs the
   supplied thunk OUTSIDE the shard lock with a Pending placeholder in
   the table, so two domains asking for the same key never compute it
   twice — the second waits on the shard's condvar for the first. *)

type 'a slot = Pending | Ready of 'a

type 'a node = {
  nkey : string;
  mutable slot : 'a slot;
  (* Intrusive doubly-linked LRU list over Ready nodes only; Pending
     nodes live in the table but are never evictable. *)
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable linked : bool;
}

type 'a shard = {
  m : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'a node) Hashtbl.t;
  mutable head : 'a node option;  (* most recently used *)
  mutable tail : 'a node option;  (* eviction end *)
  mutable ready : int;  (* linked (Ready) node count *)
}

type 'a t = {
  shards : 'a shard array;
  capacity : int;  (* per shard; max_int when unbounded *)
}

type outcome = Hit | Waited | Computed

let create ?(shards = 16) ?(capacity_per_shard = max_int) () =
  if shards < 1 then invalid_arg "Shardmap.create: shards < 1";
  if capacity_per_shard < 1 then
    invalid_arg "Shardmap.create: capacity_per_shard < 1";
  { shards =
      Array.init shards (fun _ ->
          { m = Mutex.create ();
            cv = Condition.create ();
            tbl = Hashtbl.create 64;
            head = None;
            tail = None;
            ready = 0 });
    capacity = capacity_per_shard }

let shard_count t = Array.length t.shards

let shard_of t key =
  let h = Int64.to_int (Hashing.fnv1a64 key) land max_int in
  t.shards.(h mod Array.length t.shards)

(* --- LRU list (all under the shard lock) ------------------------------- *)

let unlink s n =
  (match n.prev with Some p -> p.next <- n.next | None -> s.head <- n.next);
  (match n.next with Some x -> x.prev <- n.prev | None -> s.tail <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.linked <- false;
  s.ready <- s.ready - 1

let push_front s n =
  n.prev <- None;
  n.next <- s.head;
  (match s.head with Some h -> h.prev <- Some n | None -> s.tail <- Some n);
  s.head <- Some n;
  n.linked <- true;
  s.ready <- s.ready + 1

let touch s n =
  if n.linked then
    match s.head with
    | Some h when h == n -> ()
    | _ ->
      unlink s n;
      push_front s n

let evict_over t s =
  while s.ready > t.capacity do
    match s.tail with
    | None -> s.ready <- 0 (* unreachable: ready counts linked nodes *)
    | Some n ->
      unlink s n;
      Hashtbl.remove s.tbl n.nkey
  done

(* --- operations -------------------------------------------------------- *)

let with_lock s f =
  Mutex.lock s.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.m) f

let find t key =
  let s = shard_of t key in
  with_lock s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some ({ slot = Ready v; _ } as n) ->
        touch s n;
        Some v
      | Some { slot = Pending; _ } | None -> None)

let set t key v =
  let s = shard_of t key in
  with_lock s (fun () ->
      (match Hashtbl.find_opt s.tbl key with
      | Some n ->
        (* Overwrite; waiters (if it was Pending) see the new value. *)
        n.slot <- Ready v;
        if n.linked then touch s n else push_front s n;
        Condition.broadcast s.cv
      | None ->
        let n =
          { nkey = key; slot = Ready v; prev = None; next = None;
            linked = false }
        in
        Hashtbl.replace s.tbl key n;
        push_front s n);
      evict_over t s)

let find_or_compute t key f =
  let s = shard_of t key in
  Mutex.lock s.m;
  let rec loop waited =
    match Hashtbl.find_opt s.tbl key with
    | Some ({ slot = Ready v; _ } as n) ->
      touch s n;
      Mutex.unlock s.m;
      ((if waited then Waited else Hit), v)
    | Some { slot = Pending; _ } ->
      Condition.wait s.cv s.m;
      loop true
    | None -> (
      (* Claim the key with a Pending placeholder and compute outside
         the lock; concurrent callers for the same key block above.  A
         waiter that wakes to find the key gone (the computer raised, or
         the entry was evicted between broadcast and wake-up) claims it
         and computes itself. *)
      let n =
        { nkey = key; slot = Pending; prev = None; next = None;
          linked = false }
      in
      Hashtbl.replace s.tbl key n;
      Mutex.unlock s.m;
      match f () with
      | exception e ->
        Mutex.lock s.m;
        (match Hashtbl.find_opt s.tbl key with
        | Some n' when n' == n -> Hashtbl.remove s.tbl key
        | _ -> ());
        Condition.broadcast s.cv;
        Mutex.unlock s.m;
        raise e
      | v ->
        Mutex.lock s.m;
        n.slot <- Ready v;
        push_front s n;
        evict_over t s;
        Condition.broadcast s.cv;
        Mutex.unlock s.m;
        (Computed, v))
  in
  loop false

let length t =
  Array.fold_left (fun acc s -> acc + with_lock s (fun () -> s.ready)) 0
    t.shards

let fold t f acc =
  Array.fold_left
    (fun acc s ->
      (* Snapshot under the lock, fold outside it: [f] may be slow (it
         serializes entries to disk) and must not block other shardmap
         users. *)
      let pairs =
        with_lock s (fun () ->
            Hashtbl.fold
              (fun k n acc ->
                match n.slot with
                | Ready v -> (k, v) :: acc
                | Pending -> acc)
              s.tbl [])
      in
      List.fold_left (fun acc (k, v) -> f k v acc) acc pairs)
    acc t.shards
