(** The fuzzing loop: generate cases, run the oracle set, shrink and
    record failures.

    Deliberately sequential — verdicts and the case sequence are
    identical at any [--jobs] (parallelism is *inside* the tuner oracle,
    which is itself a determinism check) — and budgeted in {e virtual}
    seconds charged from each case's deterministic work estimate, so a
    given (seed, budget) runs the same cases on every machine. *)

type failure = {
  foracle : string;
  freason : string;  (** Failure message of the {e minimized} case. *)
  forig : Gen.case;
  minimized : Gen.case;
  shrink_steps : int;
  corpus_path : string option;
}

type per_oracle = {
  oname : string;
  runs : int;
  passes : int;
  skips : int;
  fails : int;
}

type outcome = {
  seed : int;
  cases : int;
  virtual_s : float;
  tallies : per_oracle list;  (** In oracle order. *)
  failures : failure list;  (** In discovery order. *)
}

val run :
  ?seed:int ->
  ?budget_s:float ->
  ?max_cases:int ->
  ?oracles:Oracle.t list ->
  ?corpus_dir:string ->
  unit ->
  outcome
(** Fuzz until the virtual budget (default 5.0) or [max_cases] is
    reached.  Failures are minimized and, when [corpus_dir] is given,
    appended there as replayable case files.  Updates the [fuzz.*]
    counters in {!Mcf_obs.Metrics}. *)

val replay :
  Corpus.entry -> ([ `Pass | `Skip of string ], string) result
(** Re-run a corpus entry's oracle on its case; [Error] carries the
    failure message when the regression still reproduces. *)

val render_summary : outcome -> string
(** Deterministic human-readable table + per-failure replay lines,
    ending in "fuzz: PASS" or "fuzz: FAIL (n)". *)
