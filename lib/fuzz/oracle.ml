open Mcf_ir
module Gen = Gen

type verdict = Pass | Skip of string | Fail of string

type t = {
  name : string;
  doc : string;
  every : int;
      (** Run on every [every]-th case (1 = all) — expensive oracles
          subsample deterministically by case id. *)
  check : Gen.case -> verdict;
}

(* --- test hooks ----------------------------------------------------------- *)

(* Transform applied to the freshly-built program before the interpreter
   oracle executes it.  Tests install a deliberately unsound pass here to
   prove the oracle catches it and the shrinker minimizes it. *)
let interp_transform : (Program.t -> Program.t) ref = ref Fun.id

(* The canonical synthetic bug: "dead-loop elimination" applied to live
   loops.  Splicing a loop whose trip count is 1 is the legitimate
   optimization; splicing one that actually iterates drops all but one
   tile of work — a real miscompile the interpreter must flag, either as
   a numeric mismatch or as an uninitialized-tile read. *)
let drop_live_loops (p : Program.t) =
  let rec splice nodes =
    List.concat_map
      (function
        | Program.Stmt s -> [ Program.Stmt s ]
        | Program.Loop l ->
          if l.Program.extent > 1 then splice l.Program.body
          else begin
            l.Program.body <- splice l.Program.body;
            [ Program.Loop l ]
          end)
      nodes
  in
  p.Program.roots <- splice p.Program.roots;
  p

(* --- helpers --------------------------------------------------------------- *)

let build_program (c : Gen.case) =
  Program.build ~rule1:c.rule1 ~dead_loop_elim:c.dle ~hoisting:c.hoist c.chain
    c.cand

let lowered (c : Gen.case) =
  Lower.lower ~rule1:c.rule1 ~dead_loop_elim:c.dle ~hoisting:c.hoist
    ~elem_bytes:c.elem_bytes c.chain c.cand

let validity_to_string = function
  | Ok () -> "valid"
  | Error e -> Program.string_of_invalid e

(* Cap the interpreter's workload so a single pathological case cannot eat
   the whole budget; the bound is on deterministic padded work, so the
   skip set is identical on every machine. *)
let interp_work_cap = 40_000_000.0

(* --- oracle 1: interpreter vs reference ----------------------------------- *)

let max_abs t =
  Array.fold_left (fun m v -> Float.max m (Float.abs v)) 0.0
    (Mcf_tensor.Tensor.data t)

let check_interp (c : Gen.case) =
  let p = build_program c in
  match Program.validate p with
  | Error e -> Skip ("invalid schedule: " ^ Program.string_of_invalid e)
  | Ok () ->
    if Gen.interp_work c > interp_work_cap then Skip "work above interp cap"
    else begin
      let p = !interp_transform p in
      let inputs = Gen.inputs c in
      let reference = Mcf_interp.Interp.reference c.chain ~inputs in
      match Mcf_interp.Interp.run p ~inputs with
      | exception Mcf_interp.Interp.Uninitialized_tile m ->
        Fail ("uninitialized tile: " ^ m)
      | exception Invalid_argument m -> Fail ("interp rejected inputs: " ^ m)
      | out ->
        let diff = Mcf_tensor.Tensor.max_abs_diff out reference in
        let tol = 1e-6 *. (1.0 +. max_abs reference) in
        if diff <= tol then Pass
        else
          Fail
            (Printf.sprintf "run vs reference diverge: |diff|=%g > tol %g"
               diff tol)
    end

(* --- oracle 2: analytic model vs lowered walk ------------------------------ *)

let check_analytic (c : Gen.case) =
  let ev =
    Mcf_model.Analytic.eval_candidate ~rule1:c.rule1 ~dead_loop_elim:c.dle
      ~hoisting:c.hoist ~elem_bytes:c.elem_bytes c.chain c.cand
  in
  let lw = lowered c in
  let mismatches =
    List.filter_map
      (fun (field, a, b) ->
        if a = b then None
        else Some (Printf.sprintf "%s: analytic %h <> lowered %h" field a b))
      [ ("bytes_per_block", ev.bytes_per_block, Lower.bytes_per_block lw);
        ("flops_per_block", ev.flops_per_block, Lower.flops_per_block lw);
        ("blocks", ev.blocks, float_of_int lw.Lower.blocks);
        ("traffic_bytes", ev.traffic_bytes, Lower.total_traffic_bytes lw)
      ]
  in
  let mismatches =
    if ev.everdict = lw.Lower.validity then mismatches
    else
      Printf.sprintf "verdict: analytic %s <> lowered %s"
        (validity_to_string ev.everdict)
        (validity_to_string lw.Lower.validity)
      :: mismatches
  in
  if mismatches = [] then Pass else Fail (String.concat "; " mismatches)

(* --- oracle 3: shared-memory precheck exactness ---------------------------- *)

let check_shmem (c : Gen.case) =
  let closed =
    Mcf_model.Shmem.footprint_of_candidate ~rule1:c.rule1
      ~dead_loop_elim:c.dle ~elem_bytes:c.elem_bytes c.chain c.cand
  in
  let lw = lowered c in
  let walked = Mcf_model.Shmem.estimate_bytes lw in
  if closed <> walked then
    Fail
      (Printf.sprintf "footprint: closed-form %d <> lowered %d" closed walked)
  else begin
    let slack = 1.2 in
    let pre =
      Mcf_model.Shmem.precheck_within_budget c.device ~slack ~rule1:c.rule1
        ~dead_loop_elim:c.dle c.chain c.cand
    in
    let full = Mcf_model.Shmem.within_budget c.device ~slack lw in
    if pre = full then Pass
    else
      Fail
        (Printf.sprintf "budget verdicts diverge: precheck %b, lowered %b" pre
           full)
  end

(* --- oracle 4: pruning soundness ------------------------------------------- *)

(* Rule 2's promise is structural: a tiling it keeps must lower (under
   rule-1 canonical execution, whose per-block program is what the rule
   inspects) with exactly one resident tile per intermediate.  Rule 4's
   precheck and the validity verdict must each agree with the lowered
   truth — no rule may reject a candidate the full pipeline accepts. *)
let check_pruning (c : Gen.case) =
  let verdict_pre =
    Mcf_model.Analytic.verdict ~rule1:c.rule1 ~dead_loop_elim:c.dle
      ~hoisting:c.hoist c.chain c.cand
  in
  let lw = lowered c in
  if verdict_pre <> lw.Lower.validity then
    Fail
      (Printf.sprintf "validity precheck %s <> lowered %s"
         (validity_to_string verdict_pre)
         (validity_to_string lw.Lower.validity))
  else if not (Mcf_search.Space.rule2_rejects c.chain c.cand.Candidate.tiling)
  then begin
    let p = Program.build ~rule1:true c.chain c.cand in
    let blowup =
      List.filter_map
        (fun (ts : Chain.tensor_spec) ->
          match ts.storage with
          | Chain.Intermediate ->
            let m = Program.residency_multiplier p ts in
            if m > 1 then Some (Printf.sprintf "%s x%d" ts.tname m) else None
          | Chain.Input | Chain.Output -> None)
        c.chain.Chain.tensors
    in
    if blowup = [] then Pass
    else
      Fail
        ("rule 2 kept a tiling with resident blow-up: "
        ^ String.concat ", " blowup)
  end
  else Pass

(* --- oracle 5: tuner determinism ------------------------------------------- *)

let tuner_params =
  { Mcf_search.Explore.default_params with
    population = 16;
    top_k = 4;
    min_generations = 2;
    max_generations = 4 }

let tune (c : Gen.case) =
  Mcf_search.Tuner.tune ~params:tuner_params c.device c.chain

let outcome_fingerprint (o : Mcf_search.Tuner.outcome) =
  Printf.sprintf "best=%s time=%h funnel=%s stats=%d/%d/%d"
    (Candidate.key o.best.Mcf_search.Space.cand)
    o.kernel_time_s
    (Mcf_util.Json.to_string
       (Mcf_search.Space.funnel_json o.funnel))
    o.search_stats.Mcf_search.Explore.generations
    o.search_stats.Mcf_search.Explore.estimated
    o.search_stats.Mcf_search.Explore.measured

let fingerprint = function
  | Ok o -> outcome_fingerprint o
  | Error Mcf_search.Tuner.No_viable_candidate -> "no-viable-candidate"

let with_jobs n f =
  let saved = Mcf_util.Pool.jobs () in
  Mcf_util.Pool.set_jobs n;
  Fun.protect ~finally:(fun () -> Mcf_util.Pool.set_jobs saved) f

let check_tuner (c : Gen.case) =
  if Gen.n_blocks c.cspec > 2 then Skip "tuner oracle runs on <= 2 blocks"
  else begin
    let seq = with_jobs 1 (fun () -> fingerprint (tune c)) in
    let par = with_jobs 4 (fun () -> fingerprint (tune c)) in
    if seq <> par then
      Fail (Printf.sprintf "jobs 1 vs 4 diverge:\n  %s\n  %s" seq par)
    else if Mcf_obs.Recorder.enabled () then
      (* A recording is already in flight (e.g. the fuzz run itself is
         being recorded); don't clobber it just to re-check invariance. *)
      Pass
    else begin
      Mcf_obs.Recorder.start ();
      let rec_fp =
        Fun.protect
          ~finally:(fun () ->
            Mcf_obs.Recorder.stop ();
            Mcf_obs.Recorder.reset ())
          (fun () -> with_jobs 1 (fun () -> fingerprint (tune c)))
      in
      if seq = rec_fp then Pass
      else
        Fail
          (Printf.sprintf "recording on vs off diverge:\n  %s\n  %s" seq
             rec_fp)
    end
  end

(* --- oracle 6: measurement-cache transparency ------------------------------ *)

(* A cached measurement must be indistinguishable from a fresh Sim.run:
   the cold engine pass must equal a direct compile+simulate bit-for-bit
   (including failure verdicts), the warm pass must return the same bits
   as a hit, and the hit must actually skip the simulator. *)
let check_measure_cache (c : Gen.case) =
  let ctx =
    { Mcf_search.Space.chain = c.chain;
      rule1 = c.rule1;
      dead_loop_elim = c.dle;
      hoisting = c.hoist;
      elem_bytes = c.elem_bytes }
  in
  (* Fresh entries per pass: each carries its own lazily-forced lowering
     cell, so no pass reuses another's work by accident. *)
  let entry () = Mcf_search.Space.make_entry ctx c.cand in
  let direct =
    match
      Mcf_codegen.Compile.compile c.device
        (Mcf_search.Space.lowered (entry ()))
    with
    | Error _ -> None
    | Ok k -> (
      match Mcf_gpu.Sim.run c.device k with
      | Error _ -> None
      | Ok v -> Some v.time_s)
  in
  let cache = Mcf_search.Measure.cache_create ~shards:4 () in
  let engine = Mcf_search.Measure.create ~cache c.device in
  let clock = Mcf_gpu.Clock.create () in
  let run_once () =
    let got = ref None in
    Mcf_search.Measure.run_batch engine ~clock ~compile_cost_s:0.1 ~repeats:1
      ~commit:(fun _ r -> got := Some r)
      [ (0, entry ()) ];
    !got
  in
  let bits = Option.map (Option.map Int64.bits_of_float) in
  let show = function
    | None -> "<no commit>"
    | Some None -> "unmeasurable"
    | Some (Some t) -> Printf.sprintf "%h" t
  in
  let cold = run_once () in
  let sims_before_warm = Mcf_obs.Metrics.counter_value "sim.runs" in
  let warm = run_once () in
  let sims_after_warm = Mcf_obs.Metrics.counter_value "sim.runs" in
  if bits cold <> bits (Some direct) then
    Fail
      (Printf.sprintf "cold engine pass diverges from direct Sim.run: %s vs %s"
         (show cold)
         (show (Some direct)))
  else if bits warm <> bits cold then
    Fail
      (Printf.sprintf "warm cache hit diverges from cold pass: %s vs %s"
         (show warm) (show cold))
  else if sims_after_warm <> sims_before_warm then
    Fail
      (Printf.sprintf "warm cache hit still ran the simulator (%d fresh runs)"
         (sims_after_warm - sims_before_warm))
  else Pass

(* --- oracle 7: emitted-kernel well-formedness ------------------------------ *)

let check_emit (c : Gen.case) =
  (* Rule-1 canonical execution: all spatial axes grid-bound, which is the
     regime the emitter's name scheme assumes (no in-block loop over "m"
     shadowing the softmax running max). *)
  let p = Program.build ~rule1:true ~dead_loop_elim:c.dle ~hoisting:c.hoist
      c.chain c.cand
  in
  match Program.validate p with
  | Error e -> Skip ("invalid schedule: " ^ Program.string_of_invalid e)
  | Ok () -> (
    match Mcf_codegen.Emit.check p with
    | Ok () -> Pass
    | Error m -> Fail ("emitted kernel ill-formed: " ^ m))

(* --- registry -------------------------------------------------------------- *)

let all =
  [ { name = "interp";
      doc = "Interp.run on the built schedule agrees with Interp.reference";
      every = 1;
      check = check_interp };
    { name = "analytic";
      doc = "closed-form Analytic equals the lowered walk bit-for-bit";
      every = 1;
      check = check_analytic };
    { name = "shmem";
      doc = "Shmem precheck equals the lowered eq. (1) estimate exactly";
      every = 1;
      check = check_shmem };
    { name = "pruning";
      doc = "no pruning precheck rejects what the lowered pipeline accepts";
      every = 1;
      check = check_pruning };
    { name = "tuner";
      doc = "Tuner.tune is bit-identical across jobs 1/4 and recording on/off";
      every = 25;
      check = check_tuner };
    { name = "measure-cache";
      doc = "a cached measurement equals a fresh Sim.run bit-for-bit";
      every = 5;
      check = check_measure_cache };
    { name = "emit";
      doc = "emitted Triton kernel is well-formed (scopes, def-before-use)";
      every = 1;
      check = check_emit }
  ]

let by_name n = List.find_opt (fun o -> o.name = n) all

let names () = List.map (fun o -> o.name) all
