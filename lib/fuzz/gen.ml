open Mcf_ir
module Rng = Mcf_util.Rng

(* A generated chain is described by a genome first and built from it:
   shrinking edits the genome (drop blocks, halve axes) and rebuilds, so
   every reduction step yields a structurally valid chain by construction. *)

type epi =
  | Enone
  | Escale of float
  | Esoftmax of float  (** sscale *)
  | Egelu
  | Erelu

type spec = {
  sbatch : int;
  sm : int;  (** Size of the shared row axis "m". *)
  cols : (string * int) list;
      (** Column axes c_0..c_L (name, size): block i contracts c_(i-1)
          away and produces c_i; the last one is the output column.  Names
          are assigned at generation time and survive shrinking, so tile
          vectors and tiling expressions project across genome edits. *)
  epis : epi list;  (** Per-block epilogues; length [List.length cols - 1]. *)
}

let n_blocks s = List.length s.cols - 1

let epi_to_string = function
  | Enone -> "none"
  | Escale c -> Printf.sprintf "scale:%h" c
  | Esoftmax s -> Printf.sprintf "softmax:%h" s
  | Egelu -> "gelu"
  | Erelu -> "relu"

let epi_of_string s =
  match String.split_on_char ':' s with
  | [ "none" ] -> Ok Enone
  | [ "gelu" ] -> Ok Egelu
  | [ "relu" ] -> Ok Erelu
  | [ "scale"; c ] -> (
    match float_of_string_opt c with
    | Some c -> Ok (Escale c)
    | None -> Error ("bad scale constant: " ^ c))
  | [ "softmax"; c ] -> (
    match float_of_string_opt c with
    | Some c -> Ok (Esoftmax c)
    | None -> Error ("bad softmax scale: " ^ c))
  | _ -> Error ("unknown epilogue: " ^ s)

let gelu =
  let c = sqrt (2.0 /. Float.pi) in
  fun x -> 0.5 *. x *. (1.0 +. tanh (c *. (x +. (0.044715 *. x *. x *. x))))

let relu x = Float.max 0.0 x

let epilogue_of_epi (saxis : Axis.t) = function
  | Enone -> Chain.No_epilogue
  | Escale c -> Chain.Scale c
  | Esoftmax sscale -> Chain.Softmax { saxis; sscale }
  | Egelu -> Chain.Unary { uname = "gelu"; apply = gelu; uflops = 10.0 }
  | Erelu -> Chain.Unary { uname = "relu"; apply = relu; uflops = 1.0 }

let spec_to_string s =
  Printf.sprintf "batch=%d m=%d cols=[%s] epis=[%s]" s.sbatch s.sm
    (String.concat ";"
       (List.map (fun (n, v) -> Printf.sprintf "%s:%d" n v) s.cols))
    (String.concat ";" (List.map epi_to_string s.epis))

(* Build the straight-line chain of [spec]: block i consumes the previous
   intermediate (or the input A) plus a fresh weight W_i and reduces the
   previous column axis away — the gemm_chain3 shape generalized to any
   length, with per-block epilogues. *)
let chain_of_spec s =
  let l = n_blocks s in
  if l < 1 then invalid_arg "Gen.chain_of_spec: need at least one block";
  let am = Axis.spatial "m" s.sm in
  let caxes =
    List.mapi
      (fun i (name, size) ->
        if i = l then Axis.spatial name size else Axis.reduce name size)
      s.cols
  in
  let caxes = Array.of_list caxes in
  let ta = { Chain.tname = "A"; taxes = [ am; caxes.(0) ]; storage = Input } in
  let weight i =
    { Chain.tname = Printf.sprintf "W%d" i;
      taxes = [ caxes.(i - 1); caxes.(i) ];
      storage = Input }
  in
  let inter i =
    { Chain.tname = Printf.sprintf "T%d" i;
      taxes = [ am; caxes.(i) ];
      storage = (if i = l then Chain.Output else Chain.Intermediate) }
  in
  let outs = Array.init (l + 1) (fun i -> if i = 0 then ta else inter i) in
  let blocks =
    List.mapi
      (fun idx epi ->
        let i = idx + 1 in
        let out = outs.(i) in
        { Chain.bname = out.Chain.tname;
          out;
          ins = [ outs.(i - 1); weight i ];
          reduce_axes = [ caxes.(i - 1) ];
          epilogue = epilogue_of_epi caxes.(i) epi })
      s.epis
  in
  let cname =
    Printf.sprintf "fuzz_b%d_m%d_%s" s.sbatch s.sm
      (String.concat "_"
         (List.map (fun (n, v) -> Printf.sprintf "%s%d" n v) s.cols))
  in
  let chain =
    { Chain.cname;
      axes = am :: Array.to_list caxes;
      batch = s.sbatch;
      blocks;
      tensors = Array.to_list outs @ List.init l (fun i -> weight (i + 1)) }
  in
  match Chain.validate chain with
  | Ok () -> chain
  | Error e ->
    invalid_arg
      (Printf.sprintf "Gen.chain_of_spec: invalid genome %s: %s"
         (spec_to_string s) e)

(* --- random genomes ------------------------------------------------------ *)

(* Size pools mix powers of two with padding-triggering extents (24 pads
   under tile 16, 40 under 16/32, 100 under everything).  Three-block
   chains draw from the small pool so the interpreter oracle stays fast. *)
let m_sizes = [| 16; 24; 32; 40; 48; 64; 80; 96 |]
let col_sizes = [| 16; 24; 32; 48; 64; 100 |]
let small_sizes = [| 16; 24; 32; 48 |]
let batches = [| 1; 1; 1; 1; 2; 2; 3 |]
let scales = [| 0.5; 2.0; 0.25; 1.5 |]

let random_epi rng ~last ~penultimate ~reduce_size =
  if last then begin
    (* Softmax on the final block would need its normalization folded into
       the Store of its own output, which neither the schedules nor the
       interpreter model; keep the output epilogue linear. *)
    match Rng.int rng 3 with
    | 0 -> Escale (Rng.pick rng scales)
    | _ -> Enone
  end
  else if penultimate then begin
    (* Softmax is only legal where the attention pattern puts it: on the
       block feeding the output contraction, so the running-sum divisor is
       applied at the chain's single Store. *)
    match Rng.int rng 6 with
    | 0 | 1 -> Esoftmax (1.0 /. sqrt (float_of_int reduce_size))
    | 2 -> Egelu
    | 3 -> Erelu
    | 4 -> Escale (Rng.pick rng scales)
    | _ -> Enone
  end
  else begin
    match Rng.int rng 5 with
    | 0 -> Egelu
    | 1 -> Erelu
    | 2 -> Escale (Rng.pick rng scales)
    | _ -> Enone
  end

let random_spec rng =
  let l = 1 + Rng.int rng 3 in
  let sbatch = Rng.pick rng batches in
  let sizes = if l >= 3 then small_sizes else col_sizes in
  let sm =
    if l >= 3 then Rng.pick rng small_sizes else Rng.pick rng m_sizes
  in
  let cols =
    List.init (l + 1) (fun i -> (Printf.sprintf "c%d" i, Rng.pick rng sizes))
  in
  let epis =
    List.init l (fun idx ->
        let i = idx + 1 in
        random_epi rng ~last:(i = l) ~penultimate:(i = l - 1)
          ~reduce_size:(snd (List.nth cols (i - 1))))
  in
  { sbatch; sm; cols; epis }

(* --- random candidates --------------------------------------------------- *)

let random_candidate rng (chain : Chain.t) =
  let tilings = Array.of_list (Tiling.enumerate chain) in
  let tiling = Rng.pick rng tilings in
  let tiles =
    List.map
      (fun (a : Axis.t) ->
        (a.name, Rng.pick_list rng (Candidate.tile_options a.size)))
      chain.axes
  in
  Candidate.make tiling tiles

(* --- cases --------------------------------------------------------------- *)

type case = {
  id : int;
  seed : int;
  cspec : spec;
  chain : Chain.t;
  cand : Candidate.t;
  rule1 : bool;
  dle : bool;
  hoist : bool;
  elem_bytes : int;
  device : Mcf_gpu.Spec.t;
}

(* Every case draws from its own stream keyed by (seed, id, purpose), so
   the sequence is identical whatever subset of oracles runs and however
   the run is parallelized or resumed. *)
let stream seed id purpose =
  Rng.create
    (Int64.to_int
       (Int64.logand
          (Mcf_util.Hashing.fnv1a64
             (Printf.sprintf "mcfuser.fuzz|%d|%d|%s" seed id purpose))
          0x3FFFFFFFFFFFFFFFL))

let case_of_id ~seed id =
  let rng = stream seed id "case" in
  let cspec = random_spec rng in
  let chain = chain_of_spec cspec in
  let cand = random_candidate rng chain in
  let rule1 = Rng.bool rng in
  let dle = Rng.bool rng in
  let hoist = Rng.bool rng in
  let elem_bytes = if Rng.bool rng then 2 else 4 in
  let device =
    if Rng.bool rng then Mcf_gpu.Spec.a100 else Mcf_gpu.Spec.rtx3080
  in
  { id; seed; cspec; chain; cand; rule1; dle; hoist; elem_bytes; device }

(* Rebuild a case around an edited genome, projecting the tiling and tile
   vector onto the surviving axes (by name).  [keep_structure] keeps the
   tiling's deep/flat shape when the axis set is unchanged; a genome that
   dropped a block falls back to the canonical deep order (flat groups are
   per-block and no longer line up). *)
let respec case cspec =
  let chain = chain_of_spec cspec in
  let live name = List.exists (fun (a : Axis.t) -> a.name = name) chain.axes in
  let resolve (a : Axis.t) =
    if live a.name then Some (Chain.axis chain a.name) else None
  in
  let project_axes axes = List.filter_map resolve axes in
  let same_axes =
    List.length chain.axes = List.length case.chain.Chain.axes
    && List.for_all (fun (a : Axis.t) -> live a.name) case.chain.Chain.axes
  in
  let tiling =
    match case.cand.Candidate.tiling with
    | Tiling.Deep perm -> Tiling.Deep (project_axes perm)
    | Tiling.Flat (prefix, groups) when same_axes ->
      Tiling.Flat (project_axes prefix, List.map project_axes groups)
    | Tiling.Flat (prefix, groups) ->
      Tiling.Deep (project_axes (prefix @ List.concat groups))
  in
  let tiles =
    List.map
      (fun (a : Axis.t) ->
        let old =
          match List.assoc_opt a.name case.cand.Candidate.tiles with
          | Some t -> t
          | None -> a.size
        in
        (a.name, max 1 (min old a.size)))
      chain.axes
  in
  { case with cspec; chain; cand = Candidate.make tiling tiles }

let inputs case =
  let rng = stream case.seed case.id "data" in
  let chain = case.chain in
  List.map
    (fun (ts : Chain.tensor_spec) ->
      let dims = List.map (fun (a : Axis.t) -> a.Axis.size) ts.taxes in
      let dims =
        if chain.Chain.batch > 1 then chain.Chain.batch :: dims else dims
      in
      (ts.Chain.tname, Mcf_tensor.Tensor.random rng (Array.of_list dims)))
    (Chain.input_tensors chain)

(* Deterministic work estimate: padded contraction points of the fused
   schedule plus the exact points of the reference — what the interpreter
   oracle actually executes.  Drives the virtual budget, so case counts
   are machine-independent. *)
let interp_work case =
  let chain = case.chain in
  let per_block (b : Chain.block) =
    List.fold_left
      (fun acc a -> acc *. float_of_int (Candidate.padded_size case.cand a))
      1.0 (Chain.used_axes b)
  in
  let exact (b : Chain.block) =
    List.fold_left
      (fun acc (a : Axis.t) -> acc *. float_of_int a.size)
      1.0 (Chain.used_axes b)
  in
  float_of_int chain.Chain.batch
  *. (Mcf_util.Listx.sum_by per_block chain.Chain.blocks
     +. Mcf_util.Listx.sum_by exact chain.Chain.blocks)

let case_to_string case =
  Printf.sprintf "case %d (seed %d): %s | %s | rule1=%b dle=%b hoist=%b eb=%d %s"
    case.id case.seed (spec_to_string case.cspec)
    (Candidate.to_string case.cand)
    case.rule1 case.dle case.hoist case.elem_bytes case.device.name
