(* The fuzzing loop.  Sequential by design: oracle verdicts and the case
   sequence must be identical at any --jobs (the tuner oracle exercises
   the pool internally), and the budget is *virtual* — charged from the
   deterministic work estimate of each case, not the wall clock — so the
   number of cases a given seed/budget runs is identical on every
   machine, which is what lets the cram test pin the summary. *)

let m_cases = Mcf_obs.Metrics.counter "fuzz.cases"
let m_runs = Mcf_obs.Metrics.counter "fuzz.oracle_runs"
let m_skips = Mcf_obs.Metrics.counter "fuzz.skips"
let m_failures = Mcf_obs.Metrics.counter "fuzz.failures"
let m_shrink = Mcf_obs.Metrics.counter "fuzz.shrink_steps"
let m_corpus = Mcf_obs.Metrics.counter "fuzz.corpus_writes"

type failure = {
  foracle : string;
  freason : string;
  forig : Gen.case;
  minimized : Gen.case;
  shrink_steps : int;
  corpus_path : string option;
}

type per_oracle = { oname : string; runs : int; passes : int; skips : int; fails : int }

type outcome = {
  seed : int;
  cases : int;
  virtual_s : float;
  tallies : per_oracle list;
  failures : failure list;
}

(* Virtual cost model: interpreter work dominates, every case pays a fixed
   overhead for the cheap oracles, and a tuner run is a flat surcharge.
   Constants are calibrated so virtual seconds track wall seconds on a
   mid-range core (~200 cases in 10 s with the full oracle set). *)
let case_cost oracles (c : Gen.case) =
  let base = (Gen.interp_work c *. 6e-8) +. 0.004 in
  if List.exists (fun (o : Oracle.t) -> o.name = "tuner" && c.id mod o.every = 0) oracles
  then base +. 0.2
  else base

let still_fails (o : Oracle.t) c =
  match o.check c with Oracle.Fail _ -> true | Oracle.Pass | Oracle.Skip _ -> false

let handle_failure ~corpus_dir (o : Oracle.t) case reason =
  let minimized, steps = Shrink.minimize ~still_fails:(still_fails o) case in
  Mcf_obs.Metrics.add m_shrink steps;
  let freason =
    match o.check minimized with Oracle.Fail m -> m | _ -> reason
  in
  let corpus_path =
    Option.map
      (fun dir ->
        Mcf_obs.Metrics.incr m_corpus;
        Corpus.write ~dir { Corpus.oracle = o.name; reason = freason; case = minimized })
      corpus_dir
  in
  { foracle = o.name; freason; forig = case; minimized; shrink_steps = steps;
    corpus_path }

let run ?(seed = 42) ?(budget_s = 5.0) ?(max_cases = max_int)
    ?(oracles = Oracle.all) ?corpus_dir () =
  let tally = Hashtbl.create 8 in
  List.iter
    (fun (o : Oracle.t) ->
      Hashtbl.replace tally o.name { oname = o.name; runs = 0; passes = 0; skips = 0; fails = 0 })
    oracles;
  let bump name f =
    let t = Hashtbl.find tally name in
    Hashtbl.replace tally name (f { t with runs = t.runs + 1 })
  in
  let failures = ref [] in
  let rec loop id spent =
    if id >= max_cases || spent >= budget_s then (id, spent)
    else begin
      let case = Gen.case_of_id ~seed id in
      Mcf_obs.Metrics.incr m_cases;
      List.iter
        (fun (o : Oracle.t) ->
          if id mod o.every = 0 then begin
            Mcf_obs.Metrics.incr m_runs;
            match o.check case with
            | Oracle.Pass -> bump o.name (fun t -> { t with passes = t.passes + 1 })
            | Oracle.Skip _ ->
              Mcf_obs.Metrics.incr m_skips;
              bump o.name (fun t -> { t with skips = t.skips + 1 })
            | Oracle.Fail reason ->
              Mcf_obs.Metrics.incr m_failures;
              bump o.name (fun t -> { t with fails = t.fails + 1 });
              failures := handle_failure ~corpus_dir o case reason :: !failures
          end)
        oracles;
      loop (id + 1) (spent +. case_cost oracles case)
    end
  in
  let cases, virtual_s = loop 0 0.0 in
  { seed;
    cases;
    virtual_s;
    tallies = List.map (fun (o : Oracle.t) -> Hashtbl.find tally o.name) oracles;
    failures = List.rev !failures }

let replay (entry : Corpus.entry) =
  match Oracle.by_name entry.Corpus.oracle with
  | None -> Error (Printf.sprintf "unknown oracle %S" entry.Corpus.oracle)
  | Some o -> (
    match o.check entry.Corpus.case with
    | Oracle.Pass -> Ok `Pass
    | Oracle.Skip m -> Ok (`Skip m)
    | Oracle.Fail m -> Error m)

let render_summary (o : outcome) =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fuzz: seed %d, %d cases, %.2f virtual s\n" o.seed o.cases
       o.virtual_s);
  Buffer.add_string b
    (Printf.sprintf "%-13s %6s %6s %6s %6s\n" "oracle" "runs" "pass" "skip"
       "fail");
  List.iter
    (fun t ->
      Buffer.add_string b
        (Printf.sprintf "%-13s %6d %6d %6d %6d\n" t.oname t.runs t.passes
           t.skips t.fails))
    o.tallies;
  List.iter
    (fun f ->
      Buffer.add_string b
        (Printf.sprintf
           "FAIL [%s] case %d (replay: mcfuser fuzz --seed %d --cases %d)\n  %s\n  minimized (%d steps): %s%s\n"
           f.foracle f.forig.Gen.id f.forig.Gen.seed (f.forig.Gen.id + 1)
           f.freason f.shrink_steps
           (Gen.case_to_string f.minimized)
           (match f.corpus_path with
           | Some p -> "\n  corpus: " ^ p
           | None -> "")))
    o.failures;
  Buffer.add_string b
    (if o.failures = [] then "fuzz: PASS\n"
     else Printf.sprintf "fuzz: FAIL (%d)\n" (List.length o.failures));
  Buffer.contents b
