(** The differential oracles: cross-layer agreement checks run on every
    generated (chain, candidate) case.

    Each oracle compares two independent computations of the same fact —
    interpreter vs reference semantics, closed-form model vs lowered
    walk, precheck vs full check, parallel vs sequential tune, emitted
    text vs structural invariants — so a bug in either side surfaces as a
    divergence without needing a hand-written expected value. *)

type verdict =
  | Pass
  | Skip of string  (** Deterministic ineligibility (never a failure). *)
  | Fail of string

type t = {
  name : string;
  doc : string;
  every : int;
      (** Run on case ids divisible by [every] — expensive oracles
          subsample deterministically. *)
  check : Gen.case -> verdict;
}

val interp_transform : (Mcf_ir.Program.t -> Mcf_ir.Program.t) ref
(** Test hook: applied to the built program before the interpreter oracle
    runs it.  Install a deliberately broken pass to prove the oracle +
    shrinker pipeline catches it; reset to [Fun.id] afterwards. *)

val drop_live_loops : Mcf_ir.Program.t -> Mcf_ir.Program.t
(** The canonical synthetic bug for {!interp_transform}: splice every
    in-block loop (dead-loop elimination applied to live loops), dropping
    all but one tile of work. *)

val all : t list
(** interp, analytic, shmem, pruning, tuner, emit — in that order. *)

val by_name : string -> t option

val names : unit -> string list
