(** The replayable regression corpus.

    Every failure the fuzzer minimizes is appended to [test/corpus/] as a
    plain-text `key value` file carrying the case genome, the flagging
    oracle and the replay seed; [dune runtest] (and `mcfuser fuzz
    --replay`) rebuilds the case from the genome and re-runs the oracle
    forever after.  Filenames embed a content hash, so re-finding the
    same minimized case is idempotent. *)

type entry = { oracle : string; reason : string; case : Gen.case }

val to_string : entry -> string

val of_string : string -> (entry, string) result

val load : string -> (entry, string) result

val write : dir:string -> entry -> string
(** Write (creating [dir] if needed) and return the file path. *)

val files : string -> string list
(** All [*.case] files under a directory, sorted; empty when absent. *)
