(** Seeded random generation of MBCI chains and schedule candidates.

    A generated chain is described by a {!spec} genome — batch, row-axis
    size, named column axes, per-block epilogues — and built from it with
    {!chain_of_spec}; shrinking edits the genome and rebuilds, so every
    reduction step is structurally valid by construction.  All randomness
    flows through streams keyed by [(seed, case id, purpose)], making the
    case sequence independent of which oracles run and of any
    parallelism. *)

open Mcf_ir

type epi =
  | Enone
  | Escale of float
  | Esoftmax of float  (** The softmax pre-scale (1/sqrt d_k). *)
  | Egelu
  | Erelu

type spec = {
  sbatch : int;
  sm : int;
  cols : (string * int) list;
      (** Column axes c_0..c_L (name, size); block i contracts c_(i-1). *)
  epis : epi list;  (** One per block; length [List.length cols - 1]. *)
}

val n_blocks : spec -> int

val epi_to_string : epi -> string

val epi_of_string : string -> (epi, string) result

val spec_to_string : spec -> string

val chain_of_spec : spec -> Chain.t
(** @raise Invalid_argument when the genome is malformed (fewer than two
    column axes, or the built chain fails [Chain.validate] — a generator
    bug, not a user error). *)

val random_spec : Mcf_util.Rng.t -> spec

val random_candidate : Mcf_util.Rng.t -> Chain.t -> Candidate.t
(** Uniform over [Tiling.enumerate chain] crossed with per-axis
    [Candidate.tile_options]. *)

(** One fuzz case: a chain, a candidate, and the build/device flags the
    oracles exercise. *)
type case = {
  id : int;
  seed : int;
  cspec : spec;
  chain : Chain.t;
  cand : Candidate.t;
  rule1 : bool;
  dle : bool;  (** dead-loop elimination *)
  hoist : bool;
  elem_bytes : int;
  device : Mcf_gpu.Spec.t;
}

val stream : int -> int -> string -> Mcf_util.Rng.t
(** [stream seed id purpose] — the deterministic per-case rng. *)

val case_of_id : seed:int -> int -> case

val respec : case -> spec -> case
(** Rebuild a case around an edited genome, projecting the tiling and
    tile vector onto the surviving axes by name (tiles clamp to the new
    axis sizes; flat tilings fall back to deep when the block count
    changed). *)

val inputs : case -> (string * Mcf_tensor.Tensor.t) list
(** Random input tensors for the case's chain, batch-leading when
    [batch > 1]; drawn from the case's "data" stream so they are stable
    across replays. *)

val interp_work : case -> float
(** Deterministic cost proxy (padded fused points + exact reference
    points) used for the virtual time budget. *)

val case_to_string : case -> string
