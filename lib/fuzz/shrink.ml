open Mcf_ir

(* Greedy delta-debugging on the case genome: try each edit in order, adopt
   the first one that still fails, restart from the smaller case.  Edits
   only ever remove structure (blocks, extent, batch, epilogues, loops), so
   the process terminates; a bound on adopted steps guards against a
   pathological predicate. *)

let half v = max 8 ((v + 1) / 2)

let drop_last (c : Gen.case) =
  let s = c.cspec in
  if Gen.n_blocks s < 2 then []
  else begin
    let n = List.length s.cols in
    let cols = Mcf_util.Listx.take (n - 1) s.cols in
    let epis = Mcf_util.Listx.take (Gen.n_blocks s - 1) s.epis in
    (* The surviving last block feeds the output now: a softmax there has
       no downstream contraction to fold its normalization into. *)
    let epis =
      match List.rev epis with
      | Gen.Esoftmax _ :: rest -> List.rev (Gen.Enone :: rest)
      | _ -> epis
    in
    [ Gen.respec c { s with cols; epis } ]
  end

let drop_first (c : Gen.case) =
  let s = c.cspec in
  if Gen.n_blocks s < 2 then []
  else
    [ Gen.respec c { s with cols = List.tl s.cols; epis = List.tl s.epis } ]

let shrink_axes (c : Gen.case) =
  let s = c.cspec in
  let m_edit = if half s.sm < s.sm then [ { s with sm = half s.sm } ] else [] in
  let col_edits =
    List.filter (fun (_, v) -> half v < v) s.cols
    |> List.map (fun (name, _) ->
           { s with
             cols =
               List.map
                 (fun (n, v) -> if n = name then (n, half v) else (n, v))
                 s.cols })
  in
  List.map (Gen.respec c) (m_edit @ col_edits)

let drop_batch (c : Gen.case) =
  if c.cspec.sbatch > 1 then [ Gen.respec c { c.cspec with sbatch = 1 } ]
  else []

let drop_epis (c : Gen.case) =
  let s = c.cspec in
  List.concat
    (List.mapi
       (fun i e ->
         match e with
         | Gen.Enone -> []
         | _ ->
           [ Gen.respec c
               { s with
                 epis = List.mapi (fun j e' -> if j = i then Gen.Enone else e') s.epis }
           ])
       s.epis)

let simplify_tiles (c : Gen.case) =
  let tiling = c.cand.Candidate.tiling in
  List.concat_map
    (fun (a : Axis.t) ->
      let t = Candidate.tile c.cand a in
      let variants =
        (if t < a.size then [ a.size ] else [])
        @ (if half t < t && half t <> a.size then [ half t ] else [])
      in
      List.map
        (fun t' ->
          let tiles =
            List.map
              (fun (n, v) -> if n = a.name then (n, t') else (n, v))
              c.cand.Candidate.tiles
          in
          { c with cand = Candidate.make tiling tiles })
        variants)
    c.chain.Chain.axes

let flatten_tiling (c : Gen.case) =
  match c.cand.Candidate.tiling with
  | Tiling.Deep _ -> []
  | Tiling.Flat (prefix, groups) ->
    [ { c with
        cand =
          Candidate.make
            (Tiling.Deep (prefix @ List.concat groups))
            c.cand.Candidate.tiles }
    ]

let edits c =
  List.concat_map
    (fun f -> f c)
    [ drop_last; drop_first; drop_batch; drop_epis; shrink_axes;
      simplify_tiles; flatten_tiling ]

let max_steps = 200

let minimize ~still_fails (case : Gen.case) =
  let rec go case steps =
    if steps >= max_steps then (case, steps)
    else
      match List.find_opt still_fails (edits case) with
      | Some smaller -> go smaller (steps + 1)
      | None -> (case, steps)
  in
  go case 0
