open Mcf_ir

(* A corpus entry is a plain-text `key value` file describing one
   minimized failing case and the oracle that flagged it.  The encoding
   carries the genome (not the built chain): replay rebuilds through
   [Gen.chain_of_spec], so a corpus written by one version keeps working
   as long as the genome language is stable. *)

type entry = { oracle : string; reason : string; case : Gen.case }

let sanitize s =
  String.concat "; "
    (List.filter_map
       (fun l ->
         let l = String.trim l in
         if l = "" then None else Some l)
       (String.split_on_char '\n' s))

let tiling_to_line = function
  | Tiling.Deep axes ->
    "deep:" ^ String.concat "," (List.map (fun (a : Axis.t) -> a.name) axes)
  | Tiling.Flat (prefix, groups) ->
    "flat:"
    ^ String.concat "|"
        (List.map
           (fun axes ->
             String.concat "," (List.map (fun (a : Axis.t) -> a.name) axes))
           (prefix :: groups))

let to_string (e : entry) =
  let c = e.case in
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "# mcfuser fuzz reproducer (replay: mcfuser fuzz --replay <this file>)";
  line "oracle %s" e.oracle;
  line "reason %s" (sanitize e.reason);
  line "seed %d" c.seed;
  line "case %d" c.id;
  line "batch %d" c.cspec.sbatch;
  line "m %d" c.cspec.sm;
  List.iter (fun (n, v) -> line "col %s %d" n v) c.cspec.cols;
  List.iter (fun e -> line "epi %s" (Gen.epi_to_string e)) c.cspec.epis;
  line "rule1 %b" c.rule1;
  line "dle %b" c.dle;
  line "hoist %b" c.hoist;
  line "elem_bytes %d" c.elem_bytes;
  line "device %s" c.device.Mcf_gpu.Spec.name;
  line "tiling %s" (tiling_to_line c.cand.Candidate.tiling);
  List.iter (fun (n, t) -> line "tile %s %d" n t) c.cand.Candidate.tiles;
  Buffer.contents b

let ( let* ) = Result.bind

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s: %S" what s)

let parse_bool what s =
  match bool_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "bad %s: %S" what s)

let parse_tiling chain s =
  let axes_of names =
    try
      Ok
        (List.map (Chain.axis chain)
           (List.filter (fun n -> n <> "") (String.split_on_char ',' names)))
    with Not_found -> Error (Printf.sprintf "tiling names unknown axis: %S" names)
  in
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad tiling line: %S" s)
  | Some i -> (
    let kind = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    match kind with
    | "deep" ->
      let* axes = axes_of rest in
      Ok (Tiling.Deep axes)
    | "flat" -> (
      let parts = String.split_on_char '|' rest in
      let rec collect acc = function
        | [] -> Ok (List.rev acc)
        | p :: rest ->
          let* axes = axes_of p in
          collect (axes :: acc) rest
      in
      let* parts = collect [] parts in
      match parts with
      | prefix :: groups when groups <> [] -> Ok (Tiling.Flat (prefix, groups))
      | _ -> Error "flat tiling needs a prefix and at least one group")
    | k -> Error (Printf.sprintf "unknown tiling kind: %S" k))

let of_string text =
  let kvs =
    String.split_on_char '\n' text
    |> List.filter_map (fun l ->
           let l = String.trim l in
           if l = "" || l.[0] = '#' then None
           else
             match String.index_opt l ' ' with
             | None -> Some (l, "")
             | Some i ->
               Some
                 ( String.sub l 0 i,
                   String.trim (String.sub l (i + 1) (String.length l - i - 1))
                 ))
  in
  let find k =
    match List.assoc_opt k kvs with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing %S line" k)
  in
  let all k = List.filter_map (fun (k', v) -> if k' = k then Some v else None) kvs in
  let* oracle = find "oracle" in
  let reason = Result.value (find "reason") ~default:"" in
  let* seed = Result.bind (find "seed") (parse_int "seed") in
  let* id = Result.bind (find "case") (parse_int "case") in
  let* sbatch = Result.bind (find "batch") (parse_int "batch") in
  let* sm = Result.bind (find "m") (parse_int "m") in
  let* cols =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest -> (
        match String.split_on_char ' ' v with
        | [ n; sz ] ->
          let* sz = parse_int ("col " ^ n) sz in
          go ((n, sz) :: acc) rest
        | _ -> Error (Printf.sprintf "bad col line: %S" v))
    in
    go [] (all "col")
  in
  let* epis =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | v :: rest ->
        let* e = Gen.epi_of_string v in
        go (e :: acc) rest
    in
    go [] (all "epi")
  in
  if cols = [] then Error "no col lines"
  else if List.length epis <> List.length cols - 1 then
    Error "epi count must be col count - 1"
  else begin
    let* rule1 = Result.bind (find "rule1") (parse_bool "rule1") in
    let* dle = Result.bind (find "dle") (parse_bool "dle") in
    let* hoist = Result.bind (find "hoist") (parse_bool "hoist") in
    let* elem_bytes = Result.bind (find "elem_bytes") (parse_int "elem_bytes") in
    let* device =
      let* name = find "device" in
      match Mcf_gpu.Spec.by_name name with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "unknown device: %S" name)
    in
    let cspec = { Gen.sbatch; sm; cols; epis } in
    let* chain =
      match Gen.chain_of_spec cspec with
      | chain -> Ok chain
      | exception Invalid_argument m -> Error m
    in
    let* tiling = Result.bind (find "tiling") (parse_tiling chain) in
    let* tiles =
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | v :: rest -> (
          match String.split_on_char ' ' v with
          | [ n; t ] ->
            let* t = parse_int ("tile " ^ n) t in
            go ((n, t) :: acc) rest
          | _ -> Error (Printf.sprintf "bad tile line: %S" v))
      in
      go [] (all "tile")
    in
    let cand = Candidate.make tiling tiles in
    Ok
      { oracle;
        reason;
        case =
          { Gen.id; seed; cspec; chain; cand; rule1; dle; hoist; elem_bytes;
            device }
      }
  end

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text -> (
    match of_string text with
    | Ok e -> Ok e
    | Error m -> Error (Printf.sprintf "%s: %s" path m))

let write ~dir (e : entry) =
  let body = to_string e in
  let name =
    Printf.sprintf "%s-%012Lx.case" e.oracle
      (Int64.logand (Mcf_util.Hashing.fnv1a64 body) 0xFFFFFFFFFFFFL)
  in
  let path = Filename.concat dir name in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc body);
  path

let files dir =
  if Sys.file_exists dir && Sys.is_directory dir then
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".case")
    |> List.sort String.compare
    |> List.map (Filename.concat dir)
  else []
