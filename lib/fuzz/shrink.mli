(** Greedy minimization of a failing fuzz case.

    Edits only remove structure — drop the last/first block, zero the
    batch, strip epilogues, halve axis extents, grow tiles to full size
    (removing loops), collapse flat tiling to deep — and the first edit
    that still fails is adopted, restarting from the smaller case.  The
    result is a local minimum: no single edit keeps it failing. *)

val edits : Gen.case -> Gen.case list
(** All one-step reductions of a case, most aggressive first. *)

val minimize :
  still_fails:(Gen.case -> bool) -> Gen.case -> Gen.case * int
(** The minimized case and the number of adopted shrink steps (bounded,
    so a flaky predicate cannot loop forever). *)
