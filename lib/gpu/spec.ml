type t = {
  name : string;
  compute_capability : string;
  sm_count : int;
  peak_flops : float;
  mem_bw : float;
  smem_per_block : int;
  smem_per_sm : int;
  l2_bytes : int;
  max_blocks_per_sm : int;
  launch_overhead_s : float;
  elem_bytes : int;
}

let a100 =
  { name = "A100";
    compute_capability = "sm80";
    sm_count = 108;
    peak_flops = 312e12;
    mem_bw = 1555e9;
    (* 163 KiB opt-in maximum per block; 164 KiB per SM. *)
    smem_per_block = 163 * 1024;
    smem_per_sm = 164 * 1024;
    l2_bytes = 40 * 1024 * 1024;
    max_blocks_per_sm = 32;
    launch_overhead_s = 4.0e-6;
    elem_bytes = 2 }

let rtx3080 =
  { name = "RTX3080";
    compute_capability = "sm86";
    sm_count = 68;
    peak_flops = 119e12;
    mem_bw = 760e9;
    smem_per_block = 99 * 1024;
    smem_per_sm = 100 * 1024;
    l2_bytes = 5 * 1024 * 1024;
    max_blocks_per_sm = 16;
    launch_overhead_s = 4.0e-6;
    elem_bytes = 2 }

let all = [ a100; rtx3080 ]

let by_name name =
  let want = String.lowercase_ascii name in
  List.find_opt (fun s -> String.lowercase_ascii s.name = want) all

let roofline_ratio s = s.peak_flops /. s.mem_bw

let fingerprint s =
  (* Every field participates: two specs that differ anywhere (a tweaked
     bandwidth, a different shared-memory budget) must never share cached
     measurements.  Floats are printed in hex so the identity is exact,
     not rounded. *)
  Printf.sprintf "%s/%s/sm%d/p%h/bw%h/sb%d/ss%d/l2%d/mb%d/lo%h/eb%d" s.name
    s.compute_capability s.sm_count s.peak_flops s.mem_bw s.smem_per_block
    s.smem_per_sm s.l2_bytes s.max_blocks_per_sm s.launch_overhead_s
    s.elem_bytes

let pp ppf s =
  Format.fprintf ppf
    "%s (%s): %d SMs, %.0f TFLOP/s, %.0f GB/s, %d KiB smem/block"
    s.name s.compute_capability s.sm_count (s.peak_flops /. 1e12)
    (s.mem_bw /. 1e9)
    (s.smem_per_block / 1024)
