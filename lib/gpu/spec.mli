(** GPU hardware descriptions.

    The two evaluation platforms of the paper, reduced to the quantities its
    analysis depends on: peak tensor-core throughput [peak_flops] (the 𝒫 of
    eq. (4)), DRAM bandwidth [mem_bw] (the 𝒲 of eq. (3)), shared-memory
    capacity (Rule 4 / eq. (1)), SM count (the slowdown factor of eq. (5)),
    plus the extra parameters only the simulator uses (L2 size, occupancy
    limits, launch overhead). *)

type t = {
  name : string;
  compute_capability : string;  (** e.g. "sm80"; BOLT refuses "sm86". *)
  sm_count : int;
  peak_flops : float;  (** fp16 tensor-core peak, FLOP/s. *)
  mem_bw : float;  (** DRAM bandwidth, bytes/s. *)
  smem_per_block : int;  (** Max shared memory per thread block, bytes. *)
  smem_per_sm : int;  (** Shared memory per SM, bytes (occupancy limit). *)
  l2_bytes : int;
  max_blocks_per_sm : int;
  launch_overhead_s : float;  (** Per-kernel launch latency. *)
  elem_bytes : int;  (** Tensor element size; 2 for fp16. *)
}

val a100 : t
(** NVIDIA A100-PCIE-40GB. *)

val rtx3080 : t
(** NVIDIA GeForce RTX 3080. *)

val all : t list
(** The evaluation platforms, A100 first. *)

val by_name : string -> t option
(** Case-insensitive lookup by [name] ("a100", "rtx3080"). *)

val roofline_ratio : t -> float
(** 𝒫/𝒲 in FLOPs per byte: operators whose compute/traffic ratio φ falls
    below this are memory-bound (the MBCI criterion of §II-A). *)

val fingerprint : t -> string
(** Content identity over {e every} field (floats rendered exactly, in
    hex) — the device component of content-addressed cache keys.  Two
    specs share a fingerprint iff measurements taken on one are valid
    for the other. *)

val pp : Format.formatter -> t -> unit
