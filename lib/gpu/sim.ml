let log_src = Logs.Src.create "mcfuser.sim" ~doc:"MCFuser GPU simulator"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_runs = Mcf_obs.Metrics.counter "sim.runs"
let c_errors = Mcf_obs.Metrics.counter "sim.errors"
let h_time_s = Mcf_obs.Metrics.histogram "sim.time_s"

type bound_by = Memory | Compute | Overhead

type verdict = {
  time_s : float;
  mem_s : float;
  comp_s : float;
  overhead_s : float;
  waves : int;
  blocks_in_flight : int;
  achieved_flops : float;
  bound : bound_by;
}

type error =
  | Smem_overflow of { used : int; limit : int }
  | Empty_grid

let string_of_error = function
  | Smem_overflow { used; limit } ->
    Printf.sprintf "shared memory overflow: %d B requested, %d B available"
      used limit
  | Empty_grid -> "kernel has an empty grid"

(* Tensor-core efficiency: MMA pipes reach peak only with large tiles; a
   16-wide dimension halves throughput (instruction issue and operand reuse
   limits), and small k tiles add accumulator write-back pressure.  The
   0.88 ceiling reflects that even cuBLAS rarely exceeds ~90 % of peak. *)
let dim_factor d =
  if d >= 128 then 1.0
  else if d >= 64 then 0.92
  else if d >= 32 then 0.78
  else 0.55

let k_factor k =
  if k >= 64 then 1.0 else if k >= 32 then 0.93 else 0.82

let tensor_core_efficiency ~m ~n ~k =
  0.88 *. sqrt (dim_factor m *. dim_factor n) *. k_factor k

(* DRAM efficiency: 128-byte transactions want >=128 B contiguous runs. *)
let coalesce_efficiency ~row_bytes =
  if row_bytes >= 128 then 1.0
  else 0.5 +. (0.5 *. float_of_int row_bytes /. 128.0)

(* A single thread block cannot saturate DRAM; cap its draw at a fraction
   of peak so low-parallelism kernels are memory-latency limited. *)
let per_block_bw_fraction = 0.08

(* Per loop-iteration instruction + synchronization cost inside a block. *)
let per_trip_overhead_s = 2.5e-8

(* Fraction of the shorter of (mem, compute) NOT hidden by overlap. *)
let overlap_slack = 0.2

let l2_hit_fraction (spec : Spec.t) ~unique_bytes =
  if unique_bytes <= 0.0 then 0.0
  else begin
    let capacity = 0.8 *. float_of_int spec.l2_bytes in
    let residency = Float.min 1.0 (capacity /. unique_bytes) in
    0.85 *. residency
  end

(* Effective DRAM bytes for one access over the whole grid, after L2. *)
let effective_bytes spec (a : Kernel.access) ~blocks =
  let raw = a.Kernel.bytes_per_block *. float_of_int blocks in
  match a.Kernel.direction with
  | Kernel.Store -> raw (* stores are write-through for our purposes *)
  | Kernel.Load ->
    let unique = Float.min raw a.Kernel.unique_bytes in
    let rereads = Float.max 0.0 (raw -. unique) in
    let hit = l2_hit_fraction spec ~unique_bytes:a.Kernel.unique_bytes in
    unique +. (rereads *. (1.0 -. hit))

let occupancy (spec : Spec.t) (k : Kernel.t) =
  let by_smem =
    if k.smem_bytes <= 0 then spec.max_blocks_per_sm
    else spec.smem_per_sm / k.smem_bytes
  in
  max 1 (min spec.max_blocks_per_sm by_smem)

let noise_factor spec (k : Kernel.t) =
  let h =
    Mcf_util.Hashing.combine
      (Mcf_util.Hashing.fnv1a64 (Kernel.fingerprint k))
      spec.Spec.name
  in
  1.0 +. (0.06 *. (Mcf_util.Hashing.to_unit_float h -. 0.5))

let reject e k =
  Mcf_obs.Metrics.incr c_errors;
  Log.debug (fun m ->
      m "%s does not launch: %s" k.Kernel.kname (string_of_error e));
  Error e

let run ?(noise = true) (spec : Spec.t) (k : Kernel.t) =
  Mcf_obs.Metrics.incr c_runs;
  if k.blocks <= 0 then reject Empty_grid k
  else if k.smem_bytes > spec.smem_per_block then
    reject (Smem_overflow { used = k.smem_bytes; limit = spec.smem_per_block }) k
  else begin
    let occ = occupancy spec k in
    let in_flight = min k.blocks (occ * spec.sm_count) in
    let waves = (k.blocks + in_flight - 1) / in_flight in
    (* Per-access DRAM time is computed over the whole grid, then spread
       over waves proportionally; the per-block bandwidth cap binds when a
       wave holds few blocks. *)
    let eff_bytes =
      Mcf_util.Listx.sum_by
        (fun a ->
          effective_bytes spec a ~blocks:k.blocks
          /. coalesce_efficiency ~row_bytes:a.Kernel.row_bytes)
        k.accesses
    in
    let flops = Kernel.total_flops k in
    let tc_eff =
      match k.computes with
      | [] -> 1.0
      | cs ->
        (* FLOP-weighted mean efficiency over compute statements. *)
        let weighted =
          Mcf_util.Listx.sum_by
            (fun (c : Kernel.compute) ->
              c.flops_per_block
              *. tensor_core_efficiency ~m:c.tile_m ~n:c.tile_n ~k:c.tile_k)
            cs
        in
        let total =
          Mcf_util.Listx.sum_by (fun (c : Kernel.compute) -> c.flops_per_block) cs
        in
        if total > 0.0 then weighted /. total else 1.0
    in
    (* Time a wave holding [b] blocks. *)
    let wave_time b =
      let frac = float_of_int b /. float_of_int k.blocks in
      let bytes = eff_bytes *. frac in
      let grid_bw = spec.mem_bw in
      let block_bw =
        per_block_bw_fraction *. spec.mem_bw *. float_of_int b
      in
      let mem = bytes /. Float.min grid_bw block_bw in
      let sm_busy = Float.min 1.0 (float_of_int b /. float_of_int spec.sm_count) in
      let comp = flops *. frac /. (spec.peak_flops *. tc_eff *. sm_busy) in
      let body = Float.max mem comp +. (overlap_slack *. Float.min mem comp) in
      let over = k.stmt_trips_per_block *. per_trip_overhead_s in
      (body +. over, mem, comp, over)
    in
    let full = k.blocks / in_flight in
    let tail = k.blocks mod in_flight in
    let t_full, m_full, c_full, o_full = wave_time in_flight in
    let t_tail, m_tail, c_tail, o_tail =
      if tail > 0 then wave_time tail else (0.0, 0.0, 0.0, 0.0)
    in
    let ff = float_of_int full in
    let mem_s = (ff *. m_full) +. m_tail in
    let comp_s = (ff *. c_full) +. c_tail in
    let body_s = (ff *. t_full) +. t_tail in
    let iter_over = (ff *. o_full) +. o_tail in
    let overhead_s = spec.launch_overhead_s +. iter_over in
    let raw = spec.launch_overhead_s +. body_s in
    let time_s = if noise then raw *. noise_factor spec k else raw in
    Mcf_obs.Metrics.observe h_time_s time_s;
    let bound =
      if mem_s >= comp_s && mem_s >= overhead_s then Memory
      else if comp_s >= overhead_s then Compute
      else Overhead
    in
    Ok
      { time_s;
        mem_s;
        comp_s;
        overhead_s;
        waves;
        blocks_in_flight = in_flight;
        achieved_flops = (if time_s > 0.0 then flops /. time_s else 0.0);
        bound }
  end

let time_exn ?noise spec k =
  match run ?noise spec k with
  | Ok v -> v.time_s
  | Error e ->
    failwith (Printf.sprintf "Sim.time_exn(%s): %s" k.kname (string_of_error e))

let explain (spec : Spec.t) (k : Kernel.t) =
  match run ~noise:false spec k with
  | Error e -> Printf.sprintf "%s: DOES NOT LAUNCH — %s\n" k.kname (string_of_error e)
  | Ok v ->
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "%s on %s\n" k.Kernel.kname spec.name);
    Buffer.add_string buf
      (Printf.sprintf
         "  time %.2f us  (mem %.2f, compute %.2f, overhead %.2f) — %s bound\n"
         (v.time_s *. 1e6) (v.mem_s *. 1e6) (v.comp_s *. 1e6)
         (v.overhead_s *. 1e6)
         (match v.bound with
         | Memory -> "memory"
         | Compute -> "compute"
         | Overhead -> "overhead"));
    Buffer.add_string buf
      (Printf.sprintf
         "  grid %d blocks, %d in flight (%d waves), %d B shared memory\n"
         k.blocks v.blocks_in_flight v.waves k.smem_bytes);
    Buffer.add_string buf
      (Printf.sprintf "  achieved %.1f TFLOP/s of %.1f peak\n"
         (v.achieved_flops /. 1e12)
         (spec.peak_flops /. 1e12));
    List.iter
      (fun (a : Kernel.access) ->
        let raw = a.bytes_per_block *. float_of_int k.blocks in
        let eff =
          effective_bytes spec a ~blocks:k.blocks
          /. coalesce_efficiency ~row_bytes:a.row_bytes
        in
        Buffer.add_string buf
          (Printf.sprintf
             "  %-6s %-5s %8.2f MB issued -> %8.2f MB effective DRAM (L2 + \
              coalescing)\n"
             a.label
             (match a.direction with Kernel.Load -> "load" | Kernel.Store -> "store")
             (raw /. 1e6) (eff /. 1e6)))
      k.accesses;
    Buffer.contents buf

let run_sequence ?noise spec kernels =
  let rec go acc = function
    | [] -> Ok acc
    | k :: tl -> (
      match run ?noise spec k with
      | Ok v -> go (acc +. v.time_s) tl
      | Error e -> Error e)
  in
  go 0.0 kernels
