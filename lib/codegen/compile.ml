let log_src = Logs.Src.create "mcfuser.codegen" ~doc:"MCFuser code generation"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_compiles = Mcf_obs.Metrics.counter "codegen.compiles"
let c_rejected = Mcf_obs.Metrics.counter "codegen.rejected"

type error =
  | Invalid_schedule of Mcf_ir.Program.invalid
  | Launch_impossible of { smem : int; limit : int }

let string_of_error = function
  | Invalid_schedule i -> Mcf_ir.Program.string_of_invalid i
  | Launch_impossible { smem; limit } ->
    Printf.sprintf "kernel needs %d B shared memory, device block limit is %d B"
      smem limit

let reject e =
  Mcf_obs.Metrics.incr c_rejected;
  Log.debug (fun m -> m "candidate rejected: %s" (string_of_error e));
  Error e

let compile (spec : Mcf_gpu.Spec.t) (l : Mcf_ir.Lower.t) =
  Mcf_obs.Metrics.incr c_compiles;
  match l.validity with
  | Error i -> reject (Invalid_schedule i)
  | Ok () ->
    let smem = Alloc.actual_bytes spec l in
    if smem > spec.smem_per_block then
      reject (Launch_impossible { smem; limit = spec.smem_per_block })
    else Ok (Mcf_ir.Lower.to_kernel l ~smem_bytes:smem)

let compile_candidate ?rule1 ?dead_loop_elim ?hoisting spec chain cand =
  let l =
    Mcf_ir.Lower.lower ?rule1 ?dead_loop_elim ?hoisting
      ~elem_bytes:spec.Mcf_gpu.Spec.elem_bytes chain cand
  in
  compile spec l
