(** Triton-style kernel source rendering.

    MCFuser hands inter-tile structure to Triton and lets it handle
    intra-tile optimization (§V-A); this module renders the equivalent
    Triton kernel for a placed program so users can inspect — and, on a
    machine with a GPU, actually run — what the schedule means.  The
    emitted text is illustrative source, not executed here. *)

val triton_kernel : Mcf_ir.Program.t -> string
(** A `@triton.jit` kernel: pointer arguments, grid decomposition,
    `tl.load`/`tl.dot`/`tl.store` statements following the placed program,
    online-softmax updates where the schedule requires them. *)

val launch_stub : Mcf_ir.Program.t -> string
(** The Python-side launch wrapper (grid computation, strides). *)

val check : Mcf_ir.Program.t -> (unit, string) result
(** Well-formedness of the emitted kernel: consistent 4-space block
    structure, every kernel-defined value (tile base [x0], loop variable,
    loaded tile, accumulator, softmax statistic) defined before any
    statement reads it, and exactly one [tl.store] targeting the chain
    output.  Definition-before-use in emission order is dominance here
    because every emitted loop runs its body at least once.  Names the
    kernel does not itself define (strides, masks, pointers, tile
    constexprs, [tl]) are outside the check's scope. *)
