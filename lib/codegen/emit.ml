open Mcf_ir

let buf_add = Buffer.add_string

let tile_const (a : Axis.t) = Printf.sprintf "T%s" (String.uppercase_ascii a.name)

let offs_expr (ts : Chain.tensor_spec) =
  (* Row-major offsets from the per-axis tile bases, e.g.
     (m0 + tl.arange(0, TM))[:, None] * K + (k0 + tl.arange(0, TK))[None, :] *)
  let rank = List.length ts.taxes in
  String.concat " + "
    (List.mapi
       (fun i (a : Axis.t) ->
         let arange =
           Printf.sprintf "(%s0 + tl.arange(0, %s))" a.name (tile_const a)
         in
         let bcast =
           if rank = 1 then arange
           else if i = 0 then arange ^ "[:, None]"
           else arange ^ "[None, :]"
         in
         let stride =
           if i = rank - 1 then "" else Printf.sprintf " * stride_%s_%s" ts.tname a.name
         in
         bcast ^ stride)
       ts.taxes)

let acc_name (ts : Chain.tensor_spec) = String.lowercase_ascii ts.tname ^ "_acc"
let reg_name (ts : Chain.tensor_spec) = String.lowercase_ascii ts.tname ^ "_tile"

let emit_stmt program buf indent stmt =
  let pad = String.make indent ' ' in
  let chain = program.Program.chain in
  match stmt with
  | Program.Load (ts, _) ->
    buf_add buf
      (Printf.sprintf "%s%s = tl.load(%s_ptr + %s, mask=%s_mask, other=0.0)\n"
         pad (reg_name ts) ts.tname (offs_expr ts)
         (String.lowercase_ascii ts.tname))
  | Program.Compute b ->
    let ins = List.map (fun (ts : Chain.tensor_spec) ->
        match ts.storage with
        | Chain.Input -> reg_name ts
        | Chain.Intermediate | Chain.Output -> acc_name ts)
        b.ins
    in
    (* A compute whose reduction loops all collapsed (trip 1) produces its
       tile in one shot; otherwise it accumulates across the live loop. *)
    let accumulates =
      List.exists
        (fun (a : Axis.t) -> Candidate.trip program.Program.cand a > 1)
        b.reduce_axes
    in
    buf_add buf
      (Printf.sprintf "%s%s %s tl.dot(%s)\n" pad (acc_name b.out)
         (if accumulates then "+=" else "=")
         (String.concat ", " ins))
  | Program.Epilogue b -> (
    match b.Chain.epilogue with
    | Chain.Softmax { sscale; _ } ->
      let acc = acc_name b.out in
      buf_add buf (Printf.sprintf "%s# online softmax update\n" pad);
      buf_add buf
        (Printf.sprintf "%sm_new = tl.maximum(m_i, tl.max(%s * %g, 1))\n" pad
           acc sscale);
      buf_add buf (Printf.sprintf "%scorr = tl.exp(m_i - m_new)\n" pad);
      buf_add buf
        (Printf.sprintf "%s%s = tl.exp(%s * %g - m_new[:, None])\n" pad acc acc
           sscale);
      buf_add buf (Printf.sprintf "%sl_i = l_i * corr + tl.sum(%s, 1)\n" pad acc);
      List.iter
        (fun (q : Chain.block) ->
          buf_add buf
            (Printf.sprintf "%s%s *= corr[:, None]\n" pad (acc_name q.out)))
        (Chain.consumers_of chain b.out);
      buf_add buf (Printf.sprintf "%sm_i = m_new\n" pad)
    | Chain.Scale c ->
      buf_add buf (Printf.sprintf "%s%s *= %g\n" pad (acc_name b.out) c)
    | Chain.Unary { uname; _ } ->
      buf_add buf
        (Printf.sprintf "%s%s = %s(%s)\n" pad (acc_name b.out) uname
           (acc_name b.out))
    | Chain.No_epilogue -> ())
  | Program.Store (ts, p) ->
    let chain_softmax =
      List.exists
        (fun (inp : Chain.tensor_spec) ->
          match inp.storage with
          | Chain.Intermediate -> true
          | Chain.Input | Chain.Output -> false)
        p.Chain.ins
    in
    ignore chain_softmax;
    buf_add buf
      (Printf.sprintf "%stl.store(%s_ptr + %s, %s, mask=%s_mask)\n" pad
         ts.tname (offs_expr ts) (acc_name ts)
         (String.lowercase_ascii ts.tname))

let triton_kernel (p : Program.t) =
  let chain = p.Program.chain in
  let buf = Buffer.create 1024 in
  let tensors = chain.tensors in
  let ptr_args =
    tensors
    |> List.filter (fun (ts : Chain.tensor_spec) ->
           ts.storage <> Chain.Intermediate)
    |> List.map (fun (ts : Chain.tensor_spec) -> ts.tname ^ "_ptr")
  in
  let const_args =
    List.map (fun a -> tile_const a ^ ": tl.constexpr") chain.axes
  in
  buf_add buf "@triton.jit\n";
  buf_add buf
    (Printf.sprintf "def %s_fused(%s,\n                %s):\n" chain.cname
       (String.concat ", " ptr_args)
       (String.concat ", " const_args));
  buf_add buf (Printf.sprintf "    # tiling expression: %s\n"
                 (Candidate.to_string p.Program.cand));
  (match p.grid_axes with
  | [] -> buf_add buf "    pid = tl.program_id(0)  # single-block kernel\n"
  | axes ->
    buf_add buf "    pid = tl.program_id(0)\n";
    List.iteri
      (fun i (a : Axis.t) ->
        let trips = Candidate.trip p.Program.cand a in
        if i = List.length axes - 1 then
          buf_add buf
            (Printf.sprintf "    %s0 = (pid %% %d) * %s\n" a.name trips
               (tile_const a))
        else begin
          buf_add buf
            (Printf.sprintf "    %s0 = (pid // %d) %% %d * %s\n" a.name
               (List.fold_left
                  (fun acc x -> acc * Candidate.trip p.Program.cand x)
                  1
                  (Mcf_util.Listx.drop (i + 1) axes))
               trips (tile_const a));
          ()
        end)
      axes);
  (* Axes bound neither to the grid nor to a surviving in-block loop
     (their single cross-tile trip was spliced away by dead-loop
     elimination) still appear in the offset expressions of loads and
     stores; their tile base is the constant 0. *)
  let looped =
    let rec collect acc = function
      | Program.Stmt _ -> acc
      | Program.Loop l ->
        List.fold_left collect (l.Program.laxis.Axis.name :: acc)
          l.Program.body
    in
    List.fold_left collect [] p.Program.roots
  in
  List.iter
    (fun (a : Axis.t) ->
      if
        (not (Axis.mem a p.grid_axes)) && not (List.mem a.name looped)
      then
        buf_add buf
          (Printf.sprintf "    %s0 = 0  # single-tile axis\n" a.name))
    chain.axes;
  (* accumulators *)
  List.iter
    (fun (b : Chain.block) ->
      let m, n =
        match b.out.taxes with
        | [ a1; a2 ] -> (tile_const a1, tile_const a2)
        | [ a1 ] -> (tile_const a1, "1")
        | _ -> ("TM", "TN")
      in
      buf_add buf
        (Printf.sprintf "    %s = tl.zeros((%s, %s), dtype=tl.float32)\n"
           (acc_name b.out) m n);
      match b.Chain.epilogue with
      | Chain.Softmax _ ->
        buf_add buf
          (Printf.sprintf
             "    m_i = tl.full((%s,), float('-inf'), dtype=tl.float32)\n" m);
        buf_add buf
          (Printf.sprintf "    l_i = tl.zeros((%s,), dtype=tl.float32)\n" m)
      | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> ())
    chain.blocks;
  let rec emit indent nodes =
    List.iter
      (function
        | Program.Stmt s -> emit_stmt p buf indent s
        | Program.Loop l ->
          buf_add buf
            (Printf.sprintf "%sfor %s_i in range(%d):\n"
               (String.make indent ' ') l.Program.laxis.Axis.name
               l.Program.extent);
          buf_add buf
            (Printf.sprintf "%s%s0 = %s_i * %s\n"
               (String.make (indent + 4) ' ')
               l.Program.laxis.Axis.name l.Program.laxis.Axis.name
               (tile_const l.Program.laxis));
          emit (indent + 4) l.Program.body)
      nodes
  in
  emit 4 p.Program.roots;
  if Program.online_softmax p then
    buf_add buf "    # final normalization folded into the store above\n";
  Buffer.contents buf

(* --- well-formedness check ----------------------------------------------- *)

(* The emitted kernel is illustrative source, but it must still be a
   coherent program: consistent 4-space indentation, and every value read
   by a statement defined by an earlier statement of the kernel (grid
   decomposition, prologue zero, loop header, load, accumulator init).
   Sequential first-definition-before-first-use is exactly dominance here
   because every emitted loop has extent >= 1 and so executes its body.
   External names (tl, strides, masks, pointers, tile constexprs) are out
   of scope — only names the kernel itself must define are tracked. *)

let ident_re = Str.regexp "[A-Za-z_][A-Za-z0-9_]*"

let idents_of s =
  let rec go acc pos =
    match Str.search_forward ident_re s pos with
    | exception Not_found -> List.rev acc
    | i -> go (Str.matched_string s :: acc) (i + String.length (Str.matched_string s))
  in
  go [] 0

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go 0

let strip_comment line =
  match String.index_opt line '#' with
  | Some i when String.trim (String.sub line 0 i) <> "" ->
    String.sub line 0 i
  | Some _ -> ""  (* whole-line comment *)
  | None -> line

let check (p : Program.t) =
  let chain = p.Program.chain in
  let src = triton_kernel p in
  let tracked = Hashtbl.create 32 in
  List.iter
    (fun (a : Axis.t) ->
      Hashtbl.replace tracked (a.name ^ "0") ();
      Hashtbl.replace tracked (a.name ^ "_i") ())
    chain.axes;
  List.iter (fun n -> Hashtbl.replace tracked n ())
    [ "pid"; "m_i"; "l_i"; "m_new"; "corr" ];
  List.iter
    (fun (b : Chain.block) ->
      Hashtbl.replace tracked (acc_name b.out) ();
      List.iter
        (fun (ts : Chain.tensor_spec) ->
          if ts.storage = Chain.Input then
            Hashtbl.replace tracked (reg_name ts) ())
        b.ins)
    chain.blocks;
  let defined = Hashtbl.create 32 in
  let stores = ref [] in
  let err = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun m ->
        if !err = None then err := Some (Printf.sprintf "line %d: %s" lineno m))
      fmt
  in
  (* Join physical lines while parens are open (the def signature wraps). *)
  let logical =
    let depth s =
      String.fold_left
        (fun d c -> match c with '(' -> d + 1 | ')' -> d - 1 | _ -> d)
        0 s
    in
    let rec join acc cur curno curdepth lineno = function
      | [] -> List.rev (if cur = "" then acc else (curno, cur) :: acc)
      | l :: rest ->
        let cur', curno' = (if cur = "" then (l, lineno) else (cur ^ " " ^ String.trim l, curno)) in
        let d = curdepth + depth l in
        if d > 0 then join acc cur' curno' d (lineno + 1) rest
        else join ((curno', cur') :: acc) "" 0 0 (lineno + 1) rest
    in
    join [] "" 0 0 1 (String.split_on_char '\n' src)
  in
  let stack = ref [] in
  let cur = ref 0 in
  let prev_opened = ref false in
  List.iter
    (fun (lineno, raw) ->
      let line = strip_comment raw in
      if String.trim line <> "" && !err = None then begin
        let ind = indent_of line in
        let body = String.trim line in
        (* indentation discipline *)
        if !prev_opened then begin
          if ind <> !cur + 4 then
            fail lineno "expected indent %d after ':', got %d" (!cur + 4) ind
          else begin
            stack := !cur :: !stack;
            cur := ind
          end
        end
        else begin
          while ind < !cur && !stack <> [] do
            cur := List.hd !stack;
            stack := List.tl !stack
          done;
          if ind <> !cur then
            fail lineno "indent %d does not match any open scope" ind
        end;
        prev_opened := String.length body > 0 && body.[String.length body - 1] = ':';
        (* definitions and uses *)
        let check_uses s =
          List.iter
            (fun id ->
              if Hashtbl.mem tracked id && not (Hashtbl.mem defined id) then
                fail lineno "%s read before being defined" id)
            (idents_of s)
        in
        let assign_re =
          Str.regexp "^\\([A-Za-z_][A-Za-z0-9_]*\\) *\\(=\\|\\+=\\|\\*=\\) *\\(.*\\)$"
        in
        if Str.string_match (Str.regexp "^for +\\([A-Za-z_][A-Za-z0-9_]*\\) +in +\\(.*\\):$") body 0 then begin
          let v = Str.matched_group 1 body in
          check_uses (Str.matched_group 2 body);
          Hashtbl.replace defined v ()
        end
        else if Str.string_match assign_re body 0 then begin
          let lhs = Str.matched_group 1 body in
          let op = Str.matched_group 2 body in
          let rhs = Str.matched_group 3 body in
          check_uses rhs;
          if op <> "=" && Hashtbl.mem tracked lhs && not (Hashtbl.mem defined lhs)
          then fail lineno "%s updated (%s) before being defined" lhs op;
          Hashtbl.replace defined lhs ()
        end
        else if String.length body >= 9 && String.sub body 0 9 = "tl.store(" then begin
          check_uses body;
          stores := body :: !stores
        end
        else if body <> "@triton.jit" && not (Str.string_match (Str.regexp "^def ") body 0)
        then check_uses body
      end)
    logical;
  (match !err with
  | Some _ -> ()
  | None ->
    let out = Chain.output_tensor chain in
    (match !stores with
    | [ s ] ->
      let want = out.Chain.tname ^ "_ptr" in
      if not (List.mem want (idents_of s)) then
        fail 0 "the single tl.store does not target %s" want
    | ss -> fail 0 "expected exactly one tl.store, found %d" (List.length ss)));
  match !err with Some m -> Error m | None -> Ok ()

let launch_stub (p : Program.t) =
  let chain = p.Program.chain in
  let blocks = Program.grid_blocks p in
  let buf = Buffer.create 256 in
  buf_add buf (Printf.sprintf "def launch_%s(%s):\n" chain.cname
                 (String.concat ", "
                    (List.map
                       (fun (ts : Chain.tensor_spec) ->
                         String.lowercase_ascii ts.tname)
                       (Chain.input_tensors chain))));
  buf_add buf (Printf.sprintf "    grid = (%d,)  # %s x batch %d\n" blocks
                 (String.concat " * "
                    (List.map
                       (fun (a : Axis.t) ->
                         Printf.sprintf "%s/%d" a.name
                           (Candidate.tile p.Program.cand a))
                       p.grid_axes))
                 chain.batch);
  List.iter
    (fun (a : Axis.t) ->
      buf_add buf
        (Printf.sprintf "    %s = %d\n" (tile_const a)
           (Candidate.tile p.Program.cand a)))
    chain.axes;
  buf_add buf
    (Printf.sprintf "    %s_fused[grid](..., %s)\n" chain.cname
       (String.concat ", " (List.map tile_const chain.axes)));
  Buffer.contents buf
