type workload_result = {
  wname : string;
  n_points : int;
  pearson : float;
  spearman : float;
  points : (float * float) list;
}

let title = "Fig. 11: model-predicted vs measured performance (G1-G4)"

let paper_correlations = [ ("G1", 0.86); ("G2", 0.92); ("G3", 0.84); ("G4", 0.80) ]

let compute ?(samples = 250) (spec : Mcf_gpu.Spec.t) =
  let rng = Mcf_util.Rng.create 20241105 in
  List.filter_map
    (fun (g : Mcf_workloads.Configs.gemm_config) ->
      if not (List.mem_assoc g.gname paper_correlations) then None
      else begin
        let chain = Mcf_workloads.Configs.gemm_chain g in
        let entries, _ = Mcf_search.Space.enumerate spec chain in
        let arr = Array.of_list entries in
        Mcf_util.Rng.shuffle rng arr;
        let n = min samples (Array.length arr) in
        let points = ref [] in
        (* Estimates are closed-form; only the sampled entries that reach
           compilation get lowered (lazily, by [Space.lowered]). *)
        for i = 0 to n - 1 do
          let e = arr.(i) in
          let est = Mcf_model.Analytic.estimate spec chain e.cand in
          match Mcf_codegen.Compile.compile spec (Mcf_search.Space.lowered e) with
          | Error _ -> ()
          | Ok kernel -> (
            match Mcf_gpu.Sim.run spec kernel with
            | Error _ -> ()
            | Ok v -> points := (est *. 1e6, v.time_s *. 1e6) :: !points)
        done;
        let xs = List.map fst !points and ys = List.map snd !points in
        Some
          { wname = g.gname;
            n_points = List.length !points;
            pearson = Mcf_util.Stats.pearson xs ys;
            spearman = Mcf_util.Stats.spearman xs ys;
            points = !points }
      end)
    Mcf_workloads.Configs.gemm_chains

let render spec =
  let results = compute spec in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%s on %s\n\n" title spec.Mcf_gpu.Spec.name);
  let tbl =
    Mcf_util.Table.create
      ~headers:[ "workload"; "points"; "pearson"; "spearman"; "paper pearson" ]
  in
  List.iter
    (fun r ->
      Mcf_util.Table.add_row tbl
        [ r.wname;
          string_of_int r.n_points;
          Mcf_util.Table.fmt_float r.pearson;
          Mcf_util.Table.fmt_float r.spearman;
          Mcf_util.Table.fmt_float (List.assoc r.wname paper_correlations) ])
    results;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  (match results with
  | r :: _ ->
    Buffer.add_string buf
      (Mcf_util.Chart.scatter
         ~title:(Printf.sprintf "%s: estimated vs measured (us)" r.wname)
         ~x_label:"estimated (us)" ~y_label:"measured (us)" r.points)
  | [] -> ());
  Buffer.add_string buf
    "shape check: strong positive correlation on every workload; rank \
     correlation is what the top-k measurement step relies on\n";
  Buffer.contents buf
