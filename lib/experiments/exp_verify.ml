type row = {
  vname : string;
  schedule : string;
  max_diff : float;
  pass : bool;
}

let title = "Correctness sweep: tuned schedules vs reference operators"

(* Scaled-down instances preserving each workload's structure. *)
let scaled_workloads () =
  let scale d = min d 96 in
  let gemms =
    List.map
      (fun (g : Mcf_workloads.Configs.gemm_config) ->
        ( g.gname,
          Mcf_ir.Chain.gemm_chain
            ~batch:(min g.gbatch 2)
            ~m:(scale g.gm) ~n:(scale g.gn) ~k:(scale g.gk) ~h:(scale g.gh)
            () ))
      Mcf_workloads.Configs.gemm_chains
  in
  let attns =
    List.map
      (fun (s : Mcf_workloads.Configs.attention_config) ->
        ( s.sname,
          Mcf_ir.Chain.attention ~heads:(min s.heads 2) ~m:(scale s.sm)
            ~n:(scale s.sn) ~k:(min s.sk 48) ~h:(min s.sh 48) () ))
      Mcf_workloads.Configs.attentions
  in
  let extras =
    [ ("MLP", Mcf_ir.Chain.mlp_chain ~m:96 ~n:96 ~k:64 ~h:64 ());
      ("3GEMM", Mcf_ir.Chain.gemm_chain3 ~m:64 ~n:48 ~k:32 ~h:48 ~p:32 ());
      ( "CONV",
        Mcf_ir.Chain.conv_pointwise_chain ~height:18 ~width:18 ~c_in:4
          ~c_mid:8 ~c_out:8 ~ksize:3 () ) ]
  in
  gemms @ attns @ extras

let compute (spec : Mcf_gpu.Spec.t) =
  let rng = Mcf_util.Rng.create 31415926 in
  List.map
    (fun (vname, (chain : Mcf_ir.Chain.t)) ->
      match Mcf_search.Tuner.tune spec chain with
      | Error Mcf_search.Tuner.No_viable_candidate ->
        { vname; schedule = "-"; max_diff = nan; pass = false }
      | Ok o ->
        let inputs =
          List.map
            (fun (ts : Mcf_ir.Chain.tensor_spec) ->
              let dims =
                List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes
              in
              let shape =
                Array.of_list
                  (if chain.batch > 1 then chain.batch :: dims else dims)
              in
              (ts.tname, Mcf_tensor.Tensor.random rng shape))
            (Mcf_ir.Chain.input_tensors chain)
        in
        let got = Mcf_interp.Interp.run (Mcf_search.Space.lowered o.best).program ~inputs in
        let want = Mcf_interp.Interp.reference chain ~inputs in
        { vname;
          schedule = Mcf_ir.Candidate.to_string o.best.cand;
          max_diff = Mcf_tensor.Tensor.max_abs_diff got want;
          pass = Mcf_tensor.Tensor.approx_equal ~tol:1e-3 got want })
    (scaled_workloads ())

let render spec =
  let rows = compute spec in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "%s\n(scaled instances, tuned on %s, interpreted on random inputs)\n\n"
       title spec.Mcf_gpu.Spec.name);
  let tbl =
    Mcf_util.Table.create ~headers:[ "workload"; "winning schedule"; "max |diff|"; "result" ]
  in
  List.iter
    (fun r ->
      Mcf_util.Table.add_row tbl
        [ r.vname; r.schedule;
          (if Float.is_nan r.max_diff then "-" else Printf.sprintf "%.2e" r.max_diff);
          (if r.pass then "PASS" else "FAIL") ])
    rows;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  let failures = List.filter (fun r -> not r.pass) rows in
  Buffer.add_string buf
    (if failures = [] then
       Printf.sprintf "all %d schedules numerically exact\n" (List.length rows)
     else Printf.sprintf "%d FAILURES\n" (List.length failures));
  Buffer.contents buf
