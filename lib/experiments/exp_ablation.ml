type variant = {
  vname : string;
  vdescription : string;
}

let variants =
  [ { vname = "full"; vdescription = "all MCFuser mechanisms on" };
    { vname = "no-flat"; vdescription = "deep tiling only (Chimera space)" };
    { vname = "no-dead-loop-elim";
      vdescription = "hoisting without trivial-loop removal" };
    { vname = "no-hoisting"; vdescription = "memory statements not hoisted" };
    { vname = "no-alpha"; vdescription = "model without eq. (5) slowdown" };
    { vname = "model-only"; vdescription = "no measurement, trust the model" };
    { vname = "no-rule12"; vdescription = "structural pruning off" } ]

type cell = {
  kernel_time_s : float option;
  tuning_s : float option;
}

let title = "Ablation: MCFuser design choices switched off in isolation"

let workload_mix () =
  (List.filter_map
     (fun name ->
       Option.map Mcf_workloads.Configs.gemm_chain
         (Mcf_workloads.Configs.find_gemm name))
     [ "G4"; "G7"; "G10" ])
  @ List.filter_map
      (fun name ->
        Option.map Mcf_workloads.Configs.attention
          (Mcf_workloads.Configs.find_attention name))
      [ "S2"; "S5"; "S9" ]

(* Closed-form (no lowering): bit-equal to
   [Perf.breakdown spec (Space.lowered e)] minus the alpha factor. *)
let no_alpha_estimator spec (e : Mcf_search.Space.entry) =
  let ctx = e.Mcf_search.Space.ctx in
  let b =
    Mcf_model.Analytic.breakdown ~rule1:ctx.Mcf_search.Space.rule1
      ~dead_loop_elim:ctx.Mcf_search.Space.dead_loop_elim
      ~hoisting:ctx.Mcf_search.Space.hoisting spec ctx.Mcf_search.Space.chain
      e.cand
  in
  b.t_mem +. b.t_comp

(* Pick the model's argmin over the whole space, one final measurement.
   The argmin is found closed-form; only the winner is ever lowered. *)
let model_only spec chain =
  let entries, _ = Mcf_search.Space.enumerate spec chain in
  let best =
    Mcf_util.Listx.min_by
      (fun (e : Mcf_search.Space.entry) ->
        Mcf_model.Analytic.estimate spec chain e.cand)
      entries
  in
  match best with
  | None -> { kernel_time_s = None; tuning_s = None }
  | Some e -> (
    match Mcf_codegen.Compile.compile spec (Mcf_search.Space.lowered e) with
    | Error _ -> { kernel_time_s = None; tuning_s = Some 4.0 }
    | Ok kernel -> (
      match Mcf_gpu.Sim.run spec kernel with
      | Error _ -> { kernel_time_s = None; tuning_s = Some 4.0 }
      | Ok v -> { kernel_time_s = Some v.time_s; tuning_s = Some 5.2 }))

let run_variant spec chain v =
  let tuned ?options ?estimator () =
    match Mcf_search.Tuner.tune ?options ?estimator spec chain with
    | Ok o ->
      { kernel_time_s = Some o.kernel_time_s;
        tuning_s = Some o.tuning_virtual_s }
    | Error Mcf_search.Tuner.No_viable_candidate ->
      { kernel_time_s = None; tuning_s = None }
  in
  let opts = Mcf_search.Space.default_options in
  match v.vname with
  | "full" -> tuned ()
  | "no-flat" -> tuned ~options:{ opts with include_flat = false } ()
  | "no-dead-loop-elim" ->
    tuned ~options:{ opts with dead_loop_elim = false } ()
  | "no-hoisting" -> tuned ~options:{ opts with hoisting = false } ()
  | "no-alpha" -> tuned ~estimator:no_alpha_estimator ()
  | "model-only" -> model_only spec chain
  | "no-rule12" -> tuned ~options:{ opts with rule1 = false; rule2 = false } ()
  | _ -> invalid_arg "unknown variant"

let compute spec =
  List.map
    (fun (chain : Mcf_ir.Chain.t) ->
      let short =
        match String.index_opt chain.cname '_' with
        | Some i -> String.sub chain.cname 0 i
        | None -> chain.cname
      in
      ( short,
        List.map (fun v -> (v.vname, run_variant spec chain v)) variants ))
    (workload_mix ())

let render spec =
  let results = compute spec in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%s (on %s)\n\n" title spec.Mcf_gpu.Spec.name);
  List.iter
    (fun v -> Buffer.add_string buf (Printf.sprintf "  %-18s %s\n" v.vname v.vdescription))
    variants;
  Buffer.add_char buf '\n';
  let tbl =
    Mcf_util.Table.create
      ~headers:
        ("workload"
        :: List.concat_map (fun v -> [ v.vname; "tune" ]) variants)
  in
  List.iter
    (fun (wname, cells) ->
      let full_time =
        match List.assoc "full" cells with
        | { kernel_time_s = Some t; _ } -> t
        | _ -> nan
      in
      let cell_strs =
        List.concat_map
          (fun v ->
            let c = List.assoc v.vname cells in
            [ (match c.kernel_time_s with
              | Some t ->
                if v.vname = "full" then
                  Printf.sprintf "%.1fus" (t *. 1e6)
                else Printf.sprintf "%.2fx" (t /. full_time)
              | None -> "-");
              (match c.tuning_s with
              | Some t -> Mcf_util.Table.fmt_time_s t
              | None -> "-") ])
          variants
      in
      Mcf_util.Table.add_row tbl (wname :: cell_strs))
    results;
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    "kernel-time cells are slowdowns relative to the full system (1.00x = \
     no effect on that workload); 'tune' is virtual tuning time\n";
  Buffer.contents buf
