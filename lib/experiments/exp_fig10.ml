type stats = {
  total : int;
  q1 : int;
  q2 : int;
  q3 : int;
  q4 : int;
  rule4_prune_fraction : float;
}

let title = "Fig. 10: model-predicted vs actual shared memory usage"

let sample_chains () =
  List.map Mcf_workloads.Configs.gemm_chain Mcf_workloads.Configs.gemm_chains
  @ List.map Mcf_workloads.Configs.attention Mcf_workloads.Configs.attentions

let compute ?(per_workload = 300) (spec : Mcf_gpu.Spec.t) =
  let options =
    { Mcf_search.Space.default_options with rule4 = false }
  in
  let rng = Mcf_util.Rng.create 20240614 in
  let points = ref [] in
  List.iter
    (fun chain ->
      let entries, _ = Mcf_search.Space.enumerate ~options spec chain in
      let arr = Array.of_list entries in
      Mcf_util.Rng.shuffle rng arr;
      let n = min per_workload (Array.length arr) in
      for i = 0 to n - 1 do
        let e = arr.(i) in
        let l = Mcf_search.Space.lowered e in
        let est = Mcf_model.Shmem.estimate_bytes l in
        let actual = Mcf_codegen.Alloc.actual_bytes spec l in
        points := (est, actual) :: !points
      done)
    (sample_chains ());
  let limit = float_of_int spec.smem_per_block in
  let threshold = 1.2 *. limit in
  let q1 = ref 0 and q2 = ref 0 and q3 = ref 0 and q4 = ref 0 in
  List.iter
    (fun (est, actual) ->
      let kept = float_of_int est <= threshold in
      let launchable = float_of_int actual <= limit in
      match (kept, launchable) with
      | true, true -> incr q1
      | true, false -> incr q2
      | false, false -> incr q3
      | false, true -> incr q4)
    !points;
  let total = List.length !points in
  let stats =
    { total;
      q1 = !q1;
      q2 = !q2;
      q3 = !q3;
      q4 = !q4;
      rule4_prune_fraction =
        float_of_int (!q3 + !q4) /. float_of_int (max 1 total) }
  in
  let scatter =
    List.map
      (fun (est, actual) ->
        (float_of_int est /. limit, float_of_int actual /. limit))
      !points
  in
  (stats, scatter)

let render spec =
  let stats, scatter = compute spec in
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "%s (%s, Shm_max = %d KiB/block)\n\n" title
       spec.Mcf_gpu.Spec.name
       (spec.smem_per_block / 1024));
  let pct n = 100.0 *. float_of_int n /. float_of_int (max 1 stats.total) in
  let tbl =
    Mcf_util.Table.create ~headers:[ "quadrant"; "count"; "share"; "paper" ]
  in
  Mcf_util.Table.add_row tbl
    [ "I   kept & launchable"; string_of_int stats.q1;
      Printf.sprintf "%.1f%%" (pct stats.q1); "" ];
  Mcf_util.Table.add_row tbl
    [ "II  kept, not launchable"; string_of_int stats.q2;
      Printf.sprintf "%.1f%%" (pct stats.q2); "8.2%" ];
  Mcf_util.Table.add_row tbl
    [ "III pruned & not launchable"; string_of_int stats.q3;
      Printf.sprintf "%.1f%%" (pct stats.q3); "" ];
  Mcf_util.Table.add_row tbl
    [ "IV  pruned but launchable"; string_of_int stats.q4;
      Printf.sprintf "%.1f%%" (pct stats.q4); "1.2%" ];
  Mcf_util.Table.add_rule tbl;
  Mcf_util.Table.add_row tbl
    [ "I+III (correct)"; string_of_int (stats.q1 + stats.q3);
      Printf.sprintf "%.1f%%" (pct (stats.q1 + stats.q3)); ">90%" ];
  Buffer.add_string buf (Mcf_util.Table.render tbl);
  Buffer.add_string buf
    (Printf.sprintf
       "Rule 4 prunes %.0f%% of Rule-3 survivors (paper: ~40%%)\n\n"
       (100.0 *. stats.rule4_prune_fraction));
  (* clip the scatter for readability *)
  let clipped =
    List.map (fun (x, y) -> (Float.min x 3.0, Float.min y 3.0)) scatter
  in
  Buffer.add_string buf
    (Mcf_util.Chart.scatter ~title:"estimated vs actual (units of Shm_max, clipped at 3)"
       ~x_label:"estimated / Shm_max" ~y_label:"actual / Shm_max" clipped);
  Buffer.contents buf
