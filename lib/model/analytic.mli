(** Closed-form analytical model: eqs. (2)-(5) without lowering.

    [breakdown spec chain cand] equals
    [Perf.breakdown spec (Lower.lower ... chain cand)] bit-for-bit, but is
    computed straight from [(chain, tiling, tiles)] by replaying the
    structural passes of {!Mcf_ir.Program.build} (grid split, dead-loop
    splicing, scope placement, hoisting) on a symbolic loop-nest skeleton
    — the same move {!Shmem.footprint_of_candidate} makes for the rule-4
    precheck, extended to the whole performance model.  This is what lets
    the search estimate thousands of candidates without materializing a
    single lowered program (the paper's tuning-time win, Table IV).

    Exactness holds because every aggregate the lowered walk computes is a
    sum/product of integer-valued floats far below 2^53 — exact and
    order-independent — and the per-term arithmetic here mirrors
    {!Mcf_ir.Lower} operator-for-operator.  test_model.ml asserts
    bit-equality of all four breakdown fields and the validity verdict
    across workloads x flag combos. *)

(** Symbolic program summary: placed-statement paths and structural facts.
    Depends on the tiling expression and on which trip counts equal 1 —
    never on tile magnitudes, which enter only at {!evaluate} time. *)
type summary

val summarize :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  summary
(** Replay {!Mcf_ir.Program.build}'s structural decisions symbolically.
    The switches mirror [Program.build]. *)

type eval = {
  bytes_per_block : float;  (** = [Lower.bytes_per_block]. *)
  flops_per_block : float;  (** = [Lower.flops_per_block]. *)
  blocks : float;  (** = [float_of_int (Program.grid_blocks ...)]. *)
  traffic_bytes : float;  (** = [Lower.total_traffic_bytes]. *)
  everdict : (unit, Mcf_ir.Program.invalid) result;
      (** = [Program.validate] — the softmax-legality verdict. *)
}

val evaluate : elem_bytes:int -> summary -> Mcf_ir.Candidate.t -> eval
(** Numeric evaluation of a summary for a concrete tile vector. *)

val breakdown_of_eval : Mcf_gpu.Spec.t -> eval -> Perf.breakdown

val eval_candidate :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  elem_bytes:int ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  eval

val breakdown :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  Perf.breakdown
(** [= Perf.breakdown spec (Lower.lower ... chain cand)], closed form. *)

val estimate :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  float
(** [t_total] only. *)

val verdict :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  (unit, Mcf_ir.Program.invalid) result
(** The softmax-legality verdict alone (= [(Lower.lower ...).validity]). *)

(** Summary memoization for search hot loops.

    Keyed by the rule-1 canonical per-block sub-tiling expression (the
    full expression when rule 1 is off) plus the trip=1 mask over the
    chain's axes — exactly the inputs the summary depends on.  Hits and
    misses are surfaced as the [model.memo.hits] / [model.memo.misses]
    counters.  Domain-safe: lookups take a mutex, summaries are computed
    outside it (pure, so a racing duplicate is only wasted work). *)
module Memo : sig
  type t

  val create :
    ?rule1:bool ->
    ?dead_loop_elim:bool ->
    ?hoisting:bool ->
    elem_bytes:int ->
    Mcf_ir.Chain.t ->
    t
  (** One memo per (chain, flags) — the key does not encode the flags, so
      never share an instance across flag settings. *)

  val summary : t -> Mcf_ir.Candidate.t -> summary

  val eval : t -> Mcf_ir.Candidate.t -> eval

  val breakdown : t -> Mcf_gpu.Spec.t -> Mcf_ir.Candidate.t -> Perf.breakdown

  val estimate : t -> Mcf_gpu.Spec.t -> Mcf_ir.Candidate.t -> float
end
