(** Shared-memory estimation, eq. (1) of §III-C.

    [Shm_estm = sum over resident tensors of (T_Li x T_Lj)] — the per-block
    working set implied by the tiling expression: one tile per loaded input,
    the resident tiles of intermediates and of the output accumulator
    (including the Rule-2 multiplicity for schedules that must keep several
    partial tiles alive).

    The estimate deliberately ignores what real code generation adds on
    top — pipelined double buffers, bank-conflict padding, softmax
    statistics — which is exactly the estimate-vs-actual gap that Fig. 10
    measures (see [Mcf_codegen.Alloc] for the "actual" side). *)

val estimate_bytes : Mcf_ir.Lower.t -> int
(** Eq. (1) in bytes. *)

val within_budget : Mcf_gpu.Spec.t -> slack:float -> Mcf_ir.Lower.t -> bool
(** Rule 4: [estimate <= slack x Shm_max] with the paper's slack of 1.2
    absorbing estimation error. *)

val footprint_of_candidate :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  elem_bytes:int ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  int
(** Closed-form eq. (1): equals
    [estimate_bytes (Lower.lower ?rule1 ?dead_loop_elim ~elem_bytes chain
    cand)] without building the program, by replaying only the structural
    steps of lowering (grid split, dead-loop splicing, Compute scope
    descent).  [rule1] and [dead_loop_elim] must match the flags later
    passed to [Lower.lower]; hoisting does not affect the estimate.  Used
    by [Mcf_search.Space] as a rule-4 precheck so violating points are
    rejected before the (much costlier) lowering.  The agreement is
    enforced property-test-style in [test/test_model.ml]. *)

val precheck_within_budget :
  Mcf_gpu.Spec.t ->
  slack:float ->
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  bool
(** {!within_budget} on {!footprint_of_candidate}. *)
