(* Closed-form evaluation of the eq. (2)-(5) model straight from
   (chain, tiling, tiles), without building the lowered program.

   [Perf.breakdown spec (Lower.lower chain cand)] only consumes four
   aggregates of the placed program — bytes/block, FLOPs/block, the block
   count and the validity verdict — and each of those is a function of the
   *paths* (surrounding loop axes) of the placed statements, never of the
   statement order within a scope.  Paths in turn are decided by the three
   structural passes of [Program.build] (grid split, dead-loop splicing,
   the [find_scope] descent) plus the hoisting cascade, all of which
   operate on the loop skeleton alone.  So this module replays those
   passes symbolically, in the style [Shmem.footprint_of_candidate]
   pioneered for the rule-4 precheck, and evaluates the same arithmetic
   the lowered walk would.

   Exactness is by construction, not approximation: every term the
   lowered walk sums is an integer-valued float far below 2^53
   (tile elements x trips x bytes), so floating-point addition is exact
   and order-independent, and the per-term expressions here are copied
   operator-for-operator from [Lower] / [Perf].  test_model.ml sweeps all
   workloads x flag combos asserting bit-equality of all four breakdown
   fields and the verdict. *)

open Mcf_ir

let c_memo_hits = Mcf_obs.Metrics.counter "model.memo.hits"
let c_memo_misses = Mcf_obs.Metrics.counter "model.memo.misses"

(* --- loop-nest skeleton (grid + body), mirroring Program.split_grid --- *)

type fnode = { fax : Axis.t; fgroup : int option; fchildren : fnode list }

let rec nest group axes inner =
  match axes with
  | [] -> inner
  | a :: rest ->
    [ { fax = a; fgroup = group; fchildren = nest group rest inner } ]

let split_spatial ~rule1 axes =
  if rule1 then List.partition Axis.is_spatial axes
  else begin
    let rec span acc = function
      | a :: rest when Axis.is_spatial a -> span (a :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    span [] axes
  end

let structure ~rule1 (cand : Candidate.t) =
  match cand.tiling with
  | Tiling.Deep perm ->
    let grid, body = split_spatial ~rule1 perm in
    (grid, nest None body [])
  | Tiling.Flat (prefix, groups) ->
    let grid, body_prefix = split_spatial ~rule1 prefix in
    let group_nodes =
      List.concat (List.mapi (fun i g -> nest (Some i) g []) groups)
    in
    (grid, nest None body_prefix group_nodes)

(* Mirrors Program.splice_dead. *)
let rec splice_unit cand nodes =
  List.concat_map
    (fun n ->
      let children = splice_unit cand n.fchildren in
      if Candidate.trip cand n.fax = 1 then children
      else [ { n with fchildren = children } ])
    nodes

let rec subtree_has targets n =
  Axis.mem n.fax targets || List.exists (subtree_has targets) n.fchildren

(* Mirrors Program.find_scope: the axis path from the root down to the
   deepest scope still containing a target axis, restricted to loops
   visible to [group_idx] and never entering [stop_axes]. *)
let find_path roots ~group_idx ~targets ~stop_axes =
  let eligible n =
    match n.fgroup with None -> true | Some g -> g = group_idx
  in
  let rec go acc nodes =
    match
      List.find_opt
        (fun n ->
          eligible n
          && (not (Axis.mem n.fax stop_axes))
          && subtree_has targets n)
        nodes
    with
    | Some n -> go (n.fax :: acc) n.fchildren
    | None -> List.rev acc
  in
  go [] roots

(* Mirrors the hoisting cascade for a Load/Store: the statement escapes
   every enclosing loop, innermost first, whose axis the tensor does not
   index — i.e. the maximal trailing run of path axes outside [taxes] is
   dropped (Compute/Epilogue never hoist). *)
let hoist_trim ~taxes path =
  let rec trim = function
    | a :: rest when not (Axis.mem a taxes) -> trim rest
    | rest -> rest
  in
  List.rev (trim (List.rev path))

(* --- symbolic program summary ------------------------------------------ *)

(* Axis lists are resolved to integer indices into [saxes] (the chain's
   axis order) when the summary is built, so the per-candidate [evaluate]
   runs off two small int arrays instead of name-keyed assoc lookups —
   the summary is memoized across thousands of candidates, the evaluation
   is not. *)

type access_item = {
  a_tile_idx : int list;  (* the tensor's taxes *)
  a_path_idx : int list;
  a_mult_idx : int list;
      (* Store only: axes whose trip counts multiply the resident tile
         (Program.residency_multiplier); empty for loads. *)
}

type epilogue_flavor =
  | E_scale
  | E_unary of float
  | E_softmax of int list list
      (* Consumer accumulator tiles rescaled by online softmax. *)

type compute_item =
  | Contraction of { c_used_idx : int list; c_path_idx : int list }
  | Epilogue of {
      e_out_idx : int list;
      e_path_idx : int list;
      e_flavor : epilogue_flavor;
    }

type summary = {
  sbatch : int;
  sgrid_idx : int list;
  saxes : Axis.t array;
  saccesses : access_item list;
  scomputes : compute_item list;
  sonline : bool;
  sverdict : (unit, Program.invalid) result;
}

(* Mirrors Program.residency_multiplier: axes of the tensor iterating
   below the producer's reduction on the producer's Compute path. *)
let mult_axes_of chain cpath_of (ts : Chain.tensor_spec) =
  match Chain.producer_of chain ts with
  | None -> []
  | Some p -> (
    match cpath_of p.Chain.bname with
    | None -> []
    | Some path ->
      let rec scan seen_reduce acc = function
        | [] -> List.rev acc
        | a :: rest ->
          let seen_reduce = seen_reduce || Axis.mem a p.Chain.reduce_axes in
          let acc =
            if seen_reduce && Axis.mem a ts.taxes then a :: acc else acc
          in
          scan seen_reduce acc rest
      in
      scan false [] path)

(* Mirrors Program.validate on the symbolic paths, rule for rule and in
   the same order, so the verdict is bit-identical to the lowered walk's.

   The [Consumed_before_epilogue] mirror reconstructs the static order
   from paths alone.  [Program.insert_ordered] puts a statement after
   every already-populated loop of its scope, so a later consumer Compute
   ends up *before* the epilogue exactly when it descends, from the
   epilogue's scope, into a loop that already held a statement when the
   epilogue was inserted — i.e. when the epilogue path [Ep] is a proper
   prefix of the consumer's compute path and the next loop on that path
   is a prefix of some earlier-placed statement's (pre-hoist) path. *)
let validate chain (cand : Candidate.t) ~grid ~cpath_of ~epath_of ~spath_of =
  let nonlinear () =
    List.find_map
      (fun (p : Chain.block) ->
        if Chain.is_linear_through chain p then None
        else begin
          let check path_opt =
            Option.bind path_opt (fun path ->
                Option.map
                  (fun (a : Axis.t) ->
                    Program.Nonlinear_partial_consume
                      { producer = p.bname; loop = a.name })
                  (List.find_opt
                     (fun a -> Axis.mem a p.reduce_axes)
                     path))
          in
          let consumer_paths =
            List.map
              (fun (q : Chain.block) -> cpath_of q.Chain.bname)
              (Chain.consumers_of chain p.out)
          in
          List.find_map check (epath_of p.bname :: consumer_paths)
        end)
      chain.blocks
  in
  let blind () =
    List.find_map
      (fun (p : Chain.block) ->
        match epath_of p.bname with
        | None -> None
        | Some epath ->
          List.find_map
            (fun (a : Axis.t) ->
              if
                Candidate.trip cand a > 1
                && (not (Axis.mem a grid))
                && not (Axis.mem a epath)
              then
                Some
                  (Program.Blind_epilogue { producer = p.bname; axis = a.name })
              else None)
            p.out.taxes)
      chain.blocks
  in
  let consumed_first () =
    let rec is_prefix (xs : Axis.t list) ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> Axis.equal x y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    let rec scan prior = function
      | [] -> None
      | (p : Chain.block) :: rest ->
        let cpath_p = Option.value (cpath_of p.Chain.bname) ~default:[] in
        (* Loads share the Compute's scope pre-hoist, so [cpath_p] stands
           in for them too. *)
        let prior_here = cpath_p :: prior in
        let hazard =
          match epath_of p.bname with
          | None -> None
          | Some ep ->
            let j = List.length ep in
            List.find_map
              (fun (q : Chain.block) ->
                match cpath_of q.Chain.bname with
                | Some cq when List.length cq > j && is_prefix ep cq ->
                  let x = List.nth cq j in
                  if List.exists (is_prefix (ep @ [ x ])) prior_here then
                    Some
                      (Program.Consumed_before_epilogue
                         { producer = p.bname; consumer = q.bname })
                  else None
                | Some _ | None -> None)
              (Chain.consumers_of chain p.out)
        in
        (match hazard with
        | Some _ as v -> v
        | None ->
          let prior =
            prior_here
            @ (match epath_of p.bname with Some e -> [ e ] | None -> [])
            @ (match spath_of p.bname with Some s -> [ s ] | None -> [])
          in
          scan prior rest)
    in
    scan [] chain.Chain.blocks
  in
  (* Same static-order reconstruction for Compute vs Compute: the
     producer's Compute lands after a loop when earlier blocks already
     populated it, so a consumer descending into that loop (a proper
     extension of the producer's path) statically precedes it.  Only
     blocks strictly before the producer count — the producer's own
     Loads sit at its Compute scope, never inside the extension loop. *)
  let produced_first () =
    let rec is_prefix (xs : Axis.t list) ys =
      match (xs, ys) with
      | [], _ -> true
      | x :: xs', y :: ys' -> Axis.equal x y && is_prefix xs' ys'
      | _ :: _, [] -> false
    in
    let rec scan prior = function
      | [] -> None
      | (p : Chain.block) :: rest ->
        let cpath_p = Option.value (cpath_of p.Chain.bname) ~default:[] in
        let j = List.length cpath_p in
        let hazard =
          List.find_map
            (fun (q : Chain.block) ->
              match cpath_of q.Chain.bname with
              | Some cq when List.length cq > j && is_prefix cpath_p cq ->
                let x = List.nth cq j in
                if List.exists (is_prefix (cpath_p @ [ x ])) prior then
                  Some
                    (Program.Consumed_before_produced
                       { producer = p.bname; consumer = q.bname })
                else None
              | Some _ | None -> None)
            (Chain.consumers_of chain p.out)
        in
        (match hazard with
        | Some _ as v -> v
        | None ->
          let prior =
            (cpath_p :: prior)
            @ (match epath_of p.bname with Some e -> [ e ] | None -> [])
            @ (match spath_of p.bname with Some s -> [ s ] | None -> [])
          in
          scan prior rest)
    in
    scan [] chain.Chain.blocks
  in
  match nonlinear () with
  | Some v -> Error v
  | None -> (
    match blind () with
    | Some v -> Error v
    | None -> (
      match consumed_first () with
      | Some v -> Error v
      | None -> (
        match produced_first () with Some v -> Error v | None -> Ok ())))

let summarize ?(rule1 = true) ?(dead_loop_elim = true) ?(hoisting = true)
    (chain : Chain.t) (cand : Candidate.t) =
  let grid, roots = structure ~rule1 cand in
  let roots = if dead_loop_elim then splice_unit cand roots else roots in
  let saxes = Array.of_list chain.axes in
  let idx_of (a : Axis.t) =
    let rec go i = if Axis.equal saxes.(i) a then i else go (i + 1) in
    go 0
  in
  let idxs = List.map idx_of in
  let cpaths = Hashtbl.create 8 in
  let epaths = Hashtbl.create 8 in
  let spaths = Hashtbl.create 8 in
  let accesses = ref [] in
  let computes = ref [] in
  List.iteri
    (fun group_idx (b : Chain.block) ->
      let used = Chain.used_axes b in
      let non_out =
        List.filter (fun a -> not (Axis.mem a b.out.taxes)) chain.Chain.axes
      in
      let cpath = find_path roots ~group_idx ~targets:used ~stop_axes:[] in
      Hashtbl.replace cpaths b.bname cpath;
      List.iter
        (fun (ts : Chain.tensor_spec) ->
          if ts.storage = Chain.Input then begin
            let path =
              if hoisting then hoist_trim ~taxes:ts.taxes cpath else cpath
            in
            accesses :=
              { a_tile_idx = idxs ts.taxes;
                a_path_idx = idxs path;
                a_mult_idx = [] }
              :: !accesses
          end)
        b.ins;
      computes :=
        Contraction { c_used_idx = idxs used; c_path_idx = idxs cpath }
        :: !computes;
      (match b.epilogue with
      | Chain.No_epilogue -> ()
      | (Chain.Scale _ | Chain.Softmax _ | Chain.Unary _) as ep ->
        let after_reduce =
          List.filter (fun a -> not (Axis.mem a b.reduce_axes)) used
        in
        let epath =
          find_path roots ~group_idx ~targets:after_reduce ~stop_axes:non_out
        in
        Hashtbl.replace epaths b.bname epath;
        let flavor =
          match ep with
          | Chain.No_epilogue -> assert false
          | Chain.Scale _ -> E_scale
          | Chain.Unary { uflops; _ } -> E_unary uflops
          | Chain.Softmax _ ->
            E_softmax
              (List.map
                 (fun (q : Chain.block) -> idxs q.out.taxes)
                 (Chain.consumers_of chain b.out))
        in
        computes :=
          Epilogue
            { e_out_idx = idxs b.out.taxes;
              e_path_idx = idxs epath;
              e_flavor = flavor }
          :: !computes);
      if b.out.storage = Chain.Output then begin
        (* Mirrors the store's epilogue-aware stop set in
           Program.place_statements. *)
        let stop =
          match b.epilogue with
          | Chain.No_epilogue -> b.reduce_axes
          | Chain.Scale _ | Chain.Softmax _ | Chain.Unary _ -> non_out
        in
        let spath =
          find_path roots ~group_idx ~targets:b.out.taxes ~stop_axes:stop
        in
        Hashtbl.replace spaths b.bname spath;
        let spath =
          if hoisting then hoist_trim ~taxes:b.out.taxes spath else spath
        in
        accesses :=
          { a_tile_idx = idxs b.out.taxes;
            a_path_idx = idxs spath;
            a_mult_idx =
              idxs (mult_axes_of chain (Hashtbl.find_opt cpaths) b.out) }
          :: !accesses
      end)
    chain.blocks;
  { sbatch = chain.batch;
    sgrid_idx = idxs grid;
    saxes;
    saccesses = List.rev !accesses;
    scomputes = List.rev !computes;
    sonline =
      List.exists
        (fun (b : Chain.block) ->
          match b.epilogue with
          | Chain.Softmax { saxis; _ } -> Candidate.trip cand saxis > 1
          | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> false)
        chain.blocks;
    sverdict =
      validate chain cand ~grid
        ~cpath_of:(Hashtbl.find_opt cpaths)
        ~epath_of:(Hashtbl.find_opt epaths)
        ~spath_of:(Hashtbl.find_opt spaths) }

(* --- numeric evaluation ------------------------------------------------- *)

type eval = {
  bytes_per_block : float;
  flops_per_block : float;
  blocks : float;
  traffic_bytes : float;
  everdict : (unit, Program.invalid) result;
}

let evaluate ~elem_bytes (s : summary) (cand : Candidate.t) =
  (* One name-keyed lookup per chain axis; everything below runs off the
     two int arrays. *)
  let n = Array.length s.saxes in
  let tiles = Array.make n 1 in
  let trips = Array.make n 1 in
  Array.iteri
    (fun i (a : Axis.t) ->
      let tl = Candidate.tile cand a in
      tiles.(i) <- tl;
      trips.(i) <- (a.size + tl - 1) / tl)
    s.saxes;
  let prod_tiles idx = List.fold_left (fun acc i -> acc * tiles.(i)) 1 idx in
  let prod_trips idx = List.fold_left (fun acc i -> acc * trips.(i)) 1 idx in
  (* Sum of exactly-representable integers: order-independent, so this
     needn't reproduce the placed-statement walk order of Lower. *)
  let bytes_per_block =
    List.fold_left
      (fun acc it ->
        let elems =
          match it.a_mult_idx with
          | [] -> prod_tiles it.a_tile_idx
          | ms -> prod_tiles it.a_tile_idx * prod_trips ms
        in
        acc +. float_of_int (elems * prod_trips it.a_path_idx * elem_bytes))
      0.0 s.saccesses
  in
  let flops_per_block =
    List.fold_left
      (fun acc it ->
        match it with
        | Contraction { c_used_idx; c_path_idx } ->
          (* Lower.contraction_flops *)
          let flops_per_exec =
            2.0
            *. List.fold_left
                 (fun acc i -> acc *. float_of_int tiles.(i))
                 1.0 c_used_idx
          in
          acc +. (flops_per_exec *. float_of_int (prod_trips c_path_idx))
        | Epilogue { e_out_idx; e_path_idx; e_flavor } ->
          (* cuda_core_penalty *. Lower.epilogue_flops *)
          let out_tile = float_of_int (prod_tiles e_out_idx) in
          let flops =
            match e_flavor with
            | E_scale -> 1.0 *. out_tile
            | E_unary uflops -> uflops *. out_tile
            | E_softmax consumer_outs ->
              let base = 6.0 *. out_tile in
              if s.sonline then
                base
                +. List.fold_left
                     (fun acc q -> acc +. (3.0 *. float_of_int (prod_tiles q)))
                     0.0 consumer_outs
              else base
          in
          acc +. (8.0 *. flops *. float_of_int (prod_trips e_path_idx)))
      0.0 s.scomputes
  in
  let blocks =
    float_of_int
      (List.fold_left (fun acc i -> acc * trips.(i)) s.sbatch s.sgrid_idx)
  in
  { bytes_per_block;
    flops_per_block;
    blocks;
    traffic_bytes = bytes_per_block *. blocks;
    everdict = s.sverdict }

let breakdown_of_eval (spec : Mcf_gpu.Spec.t) (e : eval) =
  (* Copied expression-for-expression from Perf.breakdown. *)
  let t_mem = e.traffic_bytes /. spec.mem_bw in
  let t_comp = e.flops_per_block *. e.blocks /. spec.peak_flops in
  let alpha = (e.blocks +. float_of_int spec.sm_count) /. e.blocks in
  { Perf.t_mem; t_comp; alpha; t_total = (t_mem +. t_comp) *. alpha }

let eval_candidate ?rule1 ?dead_loop_elim ?hoisting ~elem_bytes chain cand =
  evaluate ~elem_bytes (summarize ?rule1 ?dead_loop_elim ?hoisting chain cand)
    cand

let breakdown ?rule1 ?dead_loop_elim ?hoisting spec chain cand =
  breakdown_of_eval spec
    (eval_candidate ?rule1 ?dead_loop_elim ?hoisting
       ~elem_bytes:spec.Mcf_gpu.Spec.elem_bytes chain cand)

let estimate ?rule1 ?dead_loop_elim ?hoisting spec chain cand =
  (breakdown ?rule1 ?dead_loop_elim ?hoisting spec chain cand).Perf.t_total

let verdict ?rule1 ?dead_loop_elim ?hoisting chain cand =
  (summarize ?rule1 ?dead_loop_elim ?hoisting chain cand).sverdict

(* --- memoization -------------------------------------------------------- *)

module Memo = struct
  type t = {
    chain : Chain.t;
    rule1 : bool;
    dead_loop_elim : bool;
    hoisting : bool;
    elem_bytes : int;
    table : (string, summary) Hashtbl.t;
    lock : Mutex.t;
  }

  let create ?(rule1 = true) ?(dead_loop_elim = true) ?(hoisting = true)
      ~elem_bytes chain =
    { chain;
      rule1;
      dead_loop_elim;
      hoisting;
      elem_bytes;
      table = Hashtbl.create 64;
      lock = Mutex.create () }

  (* The summary depends on the tiling expression and on which trips are 1
     (dead-loop splicing, online softmax) — never on the tile magnitudes,
     which enter only at [evaluate] time.  Under rule 1 the key uses the
     canonical per-block sub-tiling: rule-1 dedup keeps one tiling per
     sub-expression in the space, so within a memo the sub-key identifies
     the tiling, and candidates differing only in grid-loop order share
     one summary. *)
  let key m (cand : Candidate.t) =
    let structural =
      if m.rule1 then
        Tiling.to_string (Tiling.sub_tiling m.chain cand.tiling)
      else Tiling.to_string cand.tiling
    in
    let mask =
      String.concat ""
        (List.map
           (fun (a : Axis.t) ->
             if Candidate.trip cand a = 1 then "1" else "-")
           m.chain.axes)
    in
    structural ^ "|" ^ mask

  let summary m cand =
    let k = key m cand in
    Mutex.lock m.lock;
    match Hashtbl.find_opt m.table k with
    | Some s ->
      Mutex.unlock m.lock;
      Mcf_obs.Metrics.incr c_memo_hits;
      s
    | None ->
      (* Summarize outside the lock: the function is pure, so a racing
         duplicate computation is wasted work at worst, and workers never
         serialize on each other's summaries. *)
      Mutex.unlock m.lock;
      Mcf_obs.Metrics.incr c_memo_misses;
      let s =
        summarize ~rule1:m.rule1 ~dead_loop_elim:m.dead_loop_elim
          ~hoisting:m.hoisting m.chain cand
      in
      Mutex.lock m.lock;
      if not (Hashtbl.mem m.table k) then Hashtbl.add m.table k s;
      Mutex.unlock m.lock;
      s

  let eval m cand = evaluate ~elem_bytes:m.elem_bytes (summary m cand) cand

  let breakdown m spec cand = breakdown_of_eval spec (eval m cand)

  let estimate m spec cand = (breakdown m spec cand).Perf.t_total
end
