let estimate_bytes (l : Mcf_ir.Lower.t) =
  List.fold_left
    (fun acc (r : Mcf_ir.Lower.residency_item) -> acc + (r.tile_bytes * r.mult))
    0 l.residency

let within_budget (spec : Mcf_gpu.Spec.t) ~slack l =
  float_of_int (estimate_bytes l)
  <= slack *. float_of_int spec.smem_per_block

(* --- closed-form footprint (rule-4 precheck) ---------------------------

   [estimate_bytes (Lower.lower chain cand)] only depends on the loop
   *structure* of the program — which loops survive into the thread-block
   body, and where each block's Compute lands — never on the placed
   Loads/Stores (hoisting moves them but the estimate ignores trip
   counts).  So the residency sum can be computed straight from
   [(tiling, tiles)] by replaying the three structural steps of
   [Program.build]: the grid split, dead-loop splicing, and the
   [find_scope] descent that places each Compute.  This lets Space reject
   rule-4 violations before paying for a full lowering. *)

open Mcf_ir

(* Skeleton of the thread-block loop nest: axes + sequential group tags,
   no statements. *)
type fnode = { fax : Axis.t; fgroup : int option; fchildren : fnode list }

let rec nest group axes inner =
  match axes with
  | [] -> inner
  | a :: rest -> [ { fax = a; fgroup = group; fchildren = nest group rest inner } ]

(* Mirrors Program.split_grid (body part only). *)
let body_structure ~rule1 (cand : Candidate.t) =
  let split axes =
    if rule1 then snd (List.partition Axis.is_spatial axes)
    else begin
      let rec span = function
        | a :: rest when Axis.is_spatial a -> span rest
        | rest -> rest
      in
      span axes
    end
  in
  match cand.tiling with
  | Tiling.Deep perm -> nest None (split perm) []
  | Tiling.Flat (prefix, groups) ->
    let group_nodes =
      List.concat (List.mapi (fun i g -> nest (Some i) g []) groups)
    in
    nest None (split prefix) group_nodes

(* Mirrors Program.splice_dead. *)
let rec splice_unit cand nodes =
  List.concat_map
    (fun n ->
      let children = splice_unit cand n.fchildren in
      if Candidate.trip cand n.fax = 1 then children
      else [ { n with fchildren = children } ])
    nodes

let rec subtree_has targets n =
  Axis.mem n.fax targets || List.exists (subtree_has targets) n.fchildren

(* Mirrors Program.find_scope for a Compute statement (stop_axes = []):
   the axis path from the root to the scope the Compute lands in. *)
let compute_path roots ~group_idx ~targets =
  let eligible n = match n.fgroup with None -> true | Some g -> g = group_idx in
  let rec go acc nodes =
    match
      List.find_opt (fun n -> eligible n && subtree_has targets n) nodes
    with
    | Some n -> go (n.fax :: acc) n.fchildren
    | None -> List.rev acc
  in
  go [] roots

let footprint_of_candidate ?(rule1 = true) ?(dead_loop_elim = true) ~elem_bytes
    (chain : Chain.t) (cand : Candidate.t) =
  let roots = body_structure ~rule1 cand in
  let roots = if dead_loop_elim then splice_unit cand roots else roots in
  let paths = Hashtbl.create 8 in
  List.iteri
    (fun group_idx (b : Chain.block) ->
      Hashtbl.replace paths b.bname
        (compute_path roots ~group_idx ~targets:(Chain.used_axes b)))
    chain.blocks;
  (* Mirrors Program.residency_multiplier on the producer's Compute path. *)
  let mult (ts : Chain.tensor_spec) =
    match Chain.producer_of chain ts with
    | None -> 1
    | Some p -> (
      match Hashtbl.find_opt paths p.bname with
      | None -> 1
      | Some path ->
        let rec scan seen_reduce m = function
          | [] -> m
          | a :: rest ->
            let seen_reduce = seen_reduce || Axis.mem a p.reduce_axes in
            let m =
              if seen_reduce && Axis.mem a ts.taxes then
                m * Candidate.trip cand a
              else m
            in
            scan seen_reduce m rest
        in
        scan false 1 path)
  in
  (* An Input is resident iff some block loads it; intermediates and the
     output accumulator always are (same rule as Lower.of_program). *)
  let touched (ts : Chain.tensor_spec) =
    match ts.storage with
    | Chain.Intermediate | Chain.Output -> true
    | Chain.Input ->
      List.exists
        (fun (b : Chain.block) ->
          List.exists
            (fun (i : Chain.tensor_spec) ->
              i.storage = Chain.Input && i.tname = ts.tname)
            b.ins)
        chain.blocks
  in
  List.fold_left
    (fun acc (ts : Chain.tensor_spec) ->
      if not (touched ts) then acc
      else begin
        let tile_elems =
          List.fold_left (fun e a -> e * Candidate.tile cand a) 1 ts.taxes
        in
        acc + (tile_elems * elem_bytes * mult ts)
      end)
    0 chain.tensors

let precheck_within_budget (spec : Mcf_gpu.Spec.t) ~slack ?rule1 ?dead_loop_elim
    chain cand =
  float_of_int
    (footprint_of_candidate ?rule1 ?dead_loop_elim ~elem_bytes:spec.elem_bytes
       chain cand)
  <= slack *. float_of_int spec.smem_per_block
