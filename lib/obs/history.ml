module Json = Mcf_util.Json

(* Cross-run performance history.  See history.mli for the contract.

   The store is append-only JSONL: one self-describing object per line,
   so concurrent bench runs can append without coordination and a
   truncated tail costs exactly the damaged lines (count-and-skip on
   load, like Schedule_cache).  All analysis — trends, robust baseline,
   the regression gate — happens at read time over the full file. *)

type entry = {
  time : float;
  rev : string;
  device : string;
  workload : string;
  metrics : (string * float) list;
}

(* Direction of improvement, by metric name.  Throughputs are the only
   higher-is-better family; everything else (times, heap words) is
   lower-is-better. *)
let higher_is_better name =
  let suffix = "_per_s" in
  let n = String.length name and k = String.length suffix in
  n >= k && String.sub name (n - k) k = suffix

let to_json e =
  Json.Obj
    [ ("time", Json.Num e.time);
      ("rev", Json.Str e.rev);
      ("device", Json.Str e.device);
      ("workload", Json.Str e.workload);
      ("metrics", Json.Obj (List.map (fun (k, v) -> (k, Json.Num v)) e.metrics));
    ]

let of_json j =
  let str k = match Json.member k j with Some (Json.Str s) -> Some s | _ -> None in
  let num k = match Json.member k j with Some (Json.Num v) -> Some v | _ -> None in
  match (num "time", str "rev", str "device", str "workload", Json.member "metrics" j) with
  | Some time, Some rev, Some device, Some workload, Some (Json.Obj ms) ->
    let metrics =
      List.filter_map
        (function k, Json.Num v -> Some (k, v) | _ -> None)
        ms
    in
    Some { time; rev; device; workload; metrics }
  | _ -> None

let append ~path e =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (to_json e) ^ "\n"))

let load path =
  let rev_entries, skipped =
    Json.fold_jsonl ~path ~init:[] ~f:(fun acc j ->
        match of_json j with Some e -> Some (e :: acc) | None -> None)
  in
  (List.rev rev_entries, skipped)

let current_rev () =
  match Sys.getenv_opt "MCFUSER_GIT_REV" with
  | Some r when String.trim r <> "" -> String.trim r
  | _ -> (
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try input_line ic with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when String.trim line <> "" -> String.trim line
      | _ -> "unknown"
    with _ -> "unknown")

(* Convert one BENCH_search.json document into history entries, one per
   workload.  Per-jobs rows use the last (highest --jobs) measurement —
   that is the configuration the paper's speed claims are about. *)
let of_search_doc ?time ?rev doc =
  let time = match time with Some t -> t | None -> Unix.gettimeofday () in
  let rev = match rev with Some r -> r | None -> current_rev () in
  let device =
    match Json.member "device" doc with Some (Json.Str d) -> d | _ -> "unknown"
  in
  let num k j = match Json.member k j with Some (Json.Num v) -> Some v | _ -> None in
  let last = function [] -> None | l -> Some (List.nth l (List.length l - 1)) in
  match Json.member "workloads" doc with
  | Some (Json.List ws) ->
    List.filter_map
      (fun w ->
        match Json.member "name" w with
        | Some (Json.Str workload) ->
          let enum_row =
            match Json.member "enumerate" w with
            | Some (Json.List rows) -> last rows
            | _ -> None
          in
          let tune_row =
            match Json.member "tune" w with
            | Some (Json.List rows) -> last rows
            | _ -> None
          in
          let metric name = function
            | Some row -> (
              match num name row with Some v -> [ (name, v) ] | None -> [])
            | None -> []
          in
          let metrics =
            metric "points_per_s" enum_row
            @ metric "estimates_per_s" tune_row
            @ (match tune_row with
              | Some row -> (
                match num "wall_s" row with
                | Some v -> [ ("tune_wall_s", v) ]
                | None -> [])
              | None -> [])
            @ metric "best_time_s" tune_row
            (* Measurement-engine rows carry a nested [measure] section;
               both arms are throughputs (higher is better). *)
            @ metric "measured_per_s" (Json.member "measure" w)
            @ metric "sequential_per_s" (Json.member "measure" w)
            @ (match num "peak_heap_words" w with
              | Some v -> [ ("peak_heap_words", v) ]
              | None -> [])
          in
          if metrics = [] then None
          else Some { time; rev; device; workload; metrics }
        | _ -> None)
      ws
  | _ -> []

(* ------------------------------------------------------------------ *)
(* Grouping                                                            *)

let group_key e = (e.device, e.workload)

(* Groups in first-appearance order; entries inside a group keep file
   order, so the last element is the newest run. *)
let groups entries =
  let order = ref [] in
  let tbl : (string * string, entry list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let k = group_key e in
      match Hashtbl.find_opt tbl k with
      | Some r -> r := e :: !r
      | None ->
        order := k :: !order;
        Hashtbl.add tbl k (ref [ e ]))
    entries;
  List.rev_map
    (fun k -> (k, List.rev !(Hashtbl.find tbl k)))
    !order

(* Metric names within a group, in first-appearance order. *)
let metric_names group_entries =
  List.fold_left
    (fun acc e ->
      List.fold_left
        (fun acc (k, _) -> if List.mem k acc then acc else acc @ [ k ])
        acc e.metrics)
    [] group_entries

let series name group_entries =
  List.filter_map (fun e -> List.assoc_opt name e.metrics) group_entries

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)

type verdict = {
  vdevice : string;
  vworkload : string;
  vmetric : string;
  latest : float;
  baseline_median : float;
  baseline_mad : float;
  threshold : float;
  n_baseline : int;
  regressed : bool;
}

let mad ~median:m xs = Mcf_util.Stats.median (List.map (fun x -> Float.abs (x -. m)) xs)

let gate ?(window = 10) ?(tolerance = 0.05) entries =
  groups entries
  |> List.concat_map (fun ((device, workload), es) ->
         match List.rev es with
         | [] | [ _ ] -> [] (* no baseline: the gate passes trivially *)
         | newest :: older_rev ->
           let baseline_entries =
             (* [older_rev] is newest-first; the trailing window is its
                prefix. *)
             List.filteri (fun i _ -> i < window) older_rev
           in
           List.filter_map
             (fun (name, latest) ->
               let base = series name baseline_entries in
               match base with
               | [] -> None (* metric is new in this run: nothing to gate *)
               | _ ->
                 let m = Mcf_util.Stats.median base in
                 let d = mad ~median:m base in
                 (* Robust band: tolerance floor keeps MAD=0 windows
                    (identical repeated runs) from tripping on any
                    change at all; 3*MAD widens it for noisy metrics. *)
                 let band = Float.max (tolerance *. Float.abs m) (3.0 *. d) in
                 let threshold, regressed =
                   if higher_is_better name then (m -. band, latest < m -. band)
                   else (m +. band, latest > m +. band)
                 in
                 Some
                   { vdevice = device;
                     vworkload = workload;
                     vmetric = name;
                     latest;
                     baseline_median = m;
                     baseline_mad = d;
                     threshold;
                     n_baseline = List.length base;
                     regressed;
                   })
             newest.metrics)

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let fmt_val v = Printf.sprintf "%.6g" v

let render ?workload entries =
  let buf = Buffer.create 1024 in
  let selected =
    match workload with
    | None -> entries
    | Some w -> List.filter (fun e -> e.workload = w) entries
  in
  let gs = groups selected in
  if gs = [] then Buffer.add_string buf "perf: no history entries\n"
  else
    List.iteri
      (fun gi ((device, wl), es) ->
        if gi > 0 then Buffer.add_char buf '\n';
        let n = List.length es in
        let newest = List.nth es (n - 1) in
        Buffer.add_string buf
          (Printf.sprintf "== %s/%s (%d run%s, latest rev %s) ==\n" device wl n
             (if n = 1 then "" else "s")
             newest.rev);
        Buffer.add_string buf
          (Printf.sprintf "  %-20s %12s %9s  %s\n" "metric" "latest" "delta"
             "trend");
        List.iter
          (fun name ->
            let xs = series name es in
            match List.rev xs with
            | [] -> ()
            | latest :: _ ->
              let first = List.hd xs in
              let delta =
                if Float.abs first > 0.0 then
                  (latest -. first) /. Float.abs first *. 100.0
                else 0.0
              in
              Buffer.add_string buf
                (Printf.sprintf "  %-20s %12s %+8.2f%%  %s\n" name
                   (fmt_val latest) delta
                   (Mcf_util.Chart.sparkline xs)))
          (metric_names es))
      gs;
  Buffer.contents buf

let render_gate ~tolerance verdicts =
  let buf = Buffer.create 512 in
  if verdicts = [] then
    Buffer.add_string buf
      "perf gate: no baseline (fewer than two runs per workload) — pass\n"
  else begin
    List.iter
      (fun v ->
        Buffer.add_string buf
          (Printf.sprintf "%-4s %s/%s %s: latest %s vs median %s (mad %s, %s %s)\n"
             (if v.regressed then "FAIL" else "ok")
             v.vdevice v.vworkload v.vmetric (fmt_val v.latest)
             (fmt_val v.baseline_median) (fmt_val v.baseline_mad)
             (if higher_is_better v.vmetric then "floor" else "ceiling")
             (fmt_val v.threshold)))
      verdicts;
    let failed = List.length (List.filter (fun v -> v.regressed) verdicts) in
    Buffer.add_string buf
      (Printf.sprintf "perf gate: %d metric%s checked, %d regression%s (tolerance %.0f%%)\n"
         (List.length verdicts)
         (if List.length verdicts = 1 then "" else "s")
         failed
         (if failed = 1 then "" else "s")
         (tolerance *. 100.0))
  end;
  Buffer.contents buf
