module Json = Mcf_util.Json

let enabled_flag = Atomic.make false

(* The buffer is mutex-guarded for safety, but every pipeline emission
   site runs in sequential code (parallel stages join before their
   events are built), which is what makes recordings deterministic. *)
let lock = Mutex.create ()
let buffer : Json.t list ref = ref []

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let start () =
  with_lock (fun () -> buffer := []);
  Atomic.set enabled_flag true

let stop () = Atomic.set enabled_flag false
let enabled () = Atomic.get enabled_flag

let reset () =
  Atomic.set enabled_flag false;
  with_lock (fun () -> buffer := [])

let emit ev fields =
  if Atomic.get enabled_flag then begin
    let e = Json.Obj (("ev", Json.Str ev) :: fields ()) in
    with_lock (fun () -> buffer := e :: !buffer)
  end

let now () = Unix.gettimeofday ()
let events () = with_lock (fun () -> List.rev !buffer)

let clock_fields = [ "time"; "wall_s"; "phases"; "peak_heap_words" ]

let strip_clock = function
  | Json.Obj kvs ->
    Json.Obj (List.filter (fun (k, _) -> not (List.mem k clock_fields)) kvs)
  | j -> j

let write path =
  let evs = events () in
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Json.to_string e);
      Buffer.add_char buf '\n')
    evs;
  match open_out path with
  | exception Sys_error e -> Error ("cannot write recording: " ^ e)
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> Buffer.output_buffer oc buf);
    Ok (List.length evs)

let load path =
  match open_in path with
  | exception Sys_error e -> Error ("cannot read recording: " ^ e)
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let rec go lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc)
          | "" -> go (lineno + 1) acc
          | line -> (
            match Json.parse line with
            | Ok e -> go (lineno + 1) (e :: acc)
            | Error e ->
              Error (Printf.sprintf "%s:%d: %s" path lineno e))
        in
        go 1 [])
