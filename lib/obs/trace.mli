(** Hierarchical wall-clock tracer.

    [with_span ~name f] wraps [f] in a span: begin/end timestamps, the
    calling domain, the ancestry of enclosing spans, and optional
    key/value arguments.  Completed spans land in a domain-safe in-memory
    buffer and can be exported as Chrome [trace_event] JSON (open in
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}) or as a
    plain-text flame summary.

    Tracing is off by default and zero-cost when off: [with_span] is one
    atomic load and a branch, no allocation, no clock read.  Span
    arguments are passed as a thunk so that building them is also free
    when nothing records.  Recorded data is never read back by the
    search, so tracing cannot perturb tuning results. *)

type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  path : string list;  (** Root-first ancestry, self included. *)
  ts_us : float;  (** Start, microseconds since {!start}. *)
  dur_us : float;
  tid : int;  (** Domain id. *)
  args : (string * arg) list;
}

val start : unit -> unit
(** Clear the buffer and begin recording (timestamps restart at 0). *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for export. *)

val enabled : unit -> bool
(** Recording into the buffer? *)

val active : unit -> bool
(** [enabled () || Profile.enabled ()] — spans are being consumed by
    someone.  Instrumentation that must pay a clock read (e.g. timing an
    estimator call for a histogram) should gate on this. *)

val reset : unit -> unit
(** Drop all buffered events. *)

val events : unit -> event list
(** Buffered events sorted by start timestamp. *)

type counter_event = {
  kname : string;  (** Series name, e.g. [rsrc.heap_words]. *)
  kts_us : float;  (** Sample time, microseconds since {!start}. *)
  ktid : int;  (** Domain id of the sampler. *)
  kvalues : (string * float) list;  (** Sub-series name/value pairs. *)
}

val counter : string -> (unit -> (string * float) list) -> unit
(** [counter name values] records one counter sample (a ["ph":"C"] event
    in the Chrome export: Perfetto draws each named series as a stacked
    timeline under the spans).  Like {!with_span}, one atomic load and a
    branch when not recording; the value thunk is never evaluated then.
    The resource telemetry sampler ({!Resource}) is the main emitter. *)

val counter_events : unit -> counter_event list
(** Buffered counter samples sorted by timestamp. *)

val with_span :
  ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a
(** Run a thunk inside a named span.  The span is recorded (buffer and/or
    {!Profile}) even if the thunk raises. *)

val timed :
  ?args:(unit -> (string * arg) list) -> string -> (unit -> 'a) -> 'a * float
(** Like {!with_span} but always measures and returns the wall-clock
    duration in seconds, whether or not anything records — the caller
    keeps a single source of truth for both its own accounting and the
    trace (used for [Tuner.tune]'s [tuning_wall_s]). *)

val observe_timed : Metrics.histogram -> (unit -> 'a) -> 'a
(** When {!active}, time the thunk and feed the duration (seconds) to the
    histogram; otherwise just run it.  No span is recorded — this is for
    per-call latency distributions on paths too hot for spans. *)

val ancestry : unit -> string list
(** The calling domain's current enclosing-span stack (innermost first),
    for handing to {!with_ancestry} in a spawned domain. *)

val with_ancestry : string list -> (unit -> 'a) -> 'a
(** Run the thunk with this domain's span stack seeded from an ancestry
    captured elsewhere with {!ancestry}: spans opened inside nest under
    the capturing domain's path instead of becoming new roots.  The
    previous stack is restored on exit, even on raise.  Used by pipeline
    stages that spawn their own domain (the streaming enumeration's
    generator) so the trace keeps one logical tree. *)

val to_chrome_json : unit -> Mcf_util.Json.t
(** Chrome [trace_event] document: ["X"] (complete) events under
    [traceEvents], timestamps in microseconds, one [tid] per domain. *)

val flame : unit -> string
(** Plain-text flame summary: spans aggregated by path with call counts,
    total and self time, children indented under parents. *)
