(** Runtime resource telemetry: a low-overhead sampler for GC and
    domain-pool state.

    The tuner's headline claim is search {e speed}, and speed claims
    need resource evidence: where the heap high-water mark sits, how
    hard the allocator is working, whether the worker domains are busy
    or parked.  {!start} spawns one sampler thread that, every
    [period_s], snapshots [Gc.quick_stat] and {!Mcf_util.Pool.stats}
    and publishes:

    - [rsrc.*] gauges in the {!Metrics} registry — [rsrc.heap_words],
      [rsrc.heap_words_peak] (session high-water mark, in words),
      [rsrc.minor_collections], [rsrc.major_collections],
      [rsrc.promoted_words], [rsrc.alloc_words_per_s], plus a
      [rsrc.samples] counter; every tick also refreshes the [pool.*]
      gauges via {!Poolstats.sync}, so short phases are no longer
      invisible in metrics output;
    - Chrome trace counter events (["ph":"C"], via {!Trace.counter}):
      series [rsrc.heap_words] ([heap]/[peak]), [rsrc.pool_util]
      ([busy]/[utilization]), [rsrc.alloc_words_per_s] and [rsrc.gc],
      interleaved with the phase spans, so [--trace] output shows heap
      and pool-utilization timelines in Perfetto.

    Sampling is strictly read-only: nothing in the search reads the
    gauges or the trace back, so tuner results are bit-identical with
    sampling on or off at any [--jobs] (asserted in test_search).  Off
    by default and zero-cost when off — the cooperative {!sample} tick
    is one atomic load and a branch.

    OCaml 5 vantage caveat: [Gc.quick_stat]'s minor-heap figures are
    per-domain, so the sampler thread's minor numbers describe its own
    (idle) domain; the cooperative {!sample} calls at phase boundaries
    (wired into [Tuner.tune] and [Space.enumerate]) contribute the main
    domain's view.  Major-heap words and [top_heap_words] are
    process-global either way, which is what the peak-heap metric and
    the CI gate rely on. *)

val start : period_s:float -> unit
(** Begin sampling every [period_s] seconds (clamped to >= 0.1ms).  One
    sample is taken immediately, so even a run shorter than the period
    produces every series.  No-op when already running. *)

val stop : unit -> unit
(** Stop and join the sampler thread, then take one closing sample.
    No-op when not running. *)

val active : unit -> bool

val sample : unit -> unit
(** Cooperative tick: take one sample from the calling domain, if the
    sampler is running (no-op otherwise — safe on hot-ish paths such as
    phase boundaries). *)

val sample_now : unit -> unit
(** Take one sample unconditionally, whether or not the periodic sampler
    is running.  The telemetry [/status] endpoint forces a sample per
    request so the [rsrc.*] gauges are fresh even without
    [--sample-ms]. *)

val peak_heap_words : unit -> float
(** Heap high-water mark in words: the sampler's session peak if it ran,
    combined with [Gc.quick_stat]'s process-lifetime [top_heap_words]
    (meaningful even when sampling never started).  Recorded in the
    flight recorder's [end] event and diffed by [mcfuser report]. *)
