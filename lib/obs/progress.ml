(* Live TTY status line + phase snapshot.  See progress.mli for the
   contract.

   All state sits behind one mutex; rendering is throttled so hot-path
   updates (per-generation) cost a clock read at most every 100ms.  The
   line is drawn on stderr ("\r" + clear-to-eol) so piping stdout is
   unaffected; [disable] erases it before normal output resumes.

   Two independent consumers share the recorded state: the TTY line
   ([enable]/[disable], draws) and the telemetry listener
   ([track]/[untrack], reads via [snapshot] — never draws).  When
   neither is on, every entry point is two atomic loads and nothing
   else, so the search hot path is unaffected by default. *)

let enabled_flag = Atomic.make false
let tracked_flag = Atomic.make false

type state = {
  mutable phase : string;
  mutable info : string;
  mutable gen : int;
  mutable max_gen : int;
  mutable measured : int;
  mutable started_s : float;
  mutable gen0_s : float;  (* start of the generation loop, for the ETA *)
  mutable last_render_s : float;
  mutable drawn : bool;
}

let st =
  { phase = "";
    info = "";
    gen = 0;
    max_gen = 0;
    measured = 0;
    started_s = 0.0;
    gen0_s = 0.0;
    last_render_s = 0.0;
    drawn = false }

let lock = Mutex.create ()
let min_render_gap_s = 0.1

let active () = Atomic.get enabled_flag
let recording () = Atomic.get enabled_flag || Atomic.get tracked_flag

let render_line () =
  let buf = Buffer.create 96 in
  Buffer.add_string buf
    (Printf.sprintf "mcfuser: %s"
       (if st.phase = "" then "starting" else st.phase));
  if st.info <> "" then Buffer.add_string buf (Printf.sprintf " | %s" st.info);
  if st.max_gen > 0 then begin
    Buffer.add_string buf
      (Printf.sprintf " | gen %d/%d (%d measured" st.gen st.max_gen st.measured);
    (* ETA: average generation time extrapolated over the generations
       left; max_generations is an upper bound, so this is worst-case.
       [gen0_s] is stamped by the first generation update, so [gen - 1]
       generations have elapsed since. *)
    (if st.gen > 1 then begin
       let per_gen =
         (Unix.gettimeofday () -. st.gen0_s) /. float_of_int (st.gen - 1)
       in
       let eta = per_gen *. float_of_int (st.max_gen - st.gen) in
       Buffer.add_string buf (Printf.sprintf ", ETA %.1fs)" eta)
     end
     else Buffer.add_string buf ")")
  end;
  Buffer.add_string buf
    (Printf.sprintf " [%.1fs]" (Unix.gettimeofday () -. st.started_s));
  Buffer.contents buf

let draw ~force () =
  if Atomic.get enabled_flag then begin
    let t = Unix.gettimeofday () in
    if force || t -. st.last_render_s >= min_render_gap_s then begin
      st.last_render_s <- t;
      st.drawn <- true;
      Printf.eprintf "\r\027[K%s%!" (render_line ())
    end
  end

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset_state () =
  with_lock (fun () ->
      st.phase <- "";
      st.info <- "";
      st.gen <- 0;
      st.max_gen <- 0;
      st.measured <- 0;
      st.started_s <- Unix.gettimeofday ();
      st.gen0_s <- 0.0;
      st.last_render_s <- 0.0;
      st.drawn <- false)

let enable () =
  if not (Atomic.get enabled_flag) then begin
    if not (recording ()) then reset_state ();
    Atomic.set enabled_flag true
  end

let disable () =
  if Atomic.get enabled_flag then begin
    Atomic.set enabled_flag false;
    with_lock (fun () ->
        if st.drawn then begin
          st.drawn <- false;
          Printf.eprintf "\r\027[K%!"
        end)
  end

let track () =
  if not (Atomic.get tracked_flag) then begin
    if not (recording ()) then reset_state ();
    Atomic.set tracked_flag true
  end

let untrack () = Atomic.set tracked_flag false

let set_phase name =
  if recording () then
    with_lock (fun () ->
        st.phase <- name;
        st.info <- "";
        draw ~force:true ())

let set_info info =
  if recording () then
    with_lock (fun () ->
        st.info <- info;
        draw ~force:true ())

let generation ~gen ~max_gen ~measured =
  if recording () then
    with_lock (fun () ->
        if st.max_gen = 0 then st.gen0_s <- Unix.gettimeofday ();
        st.gen <- gen;
        st.max_gen <- max_gen;
        st.measured <- measured;
        draw ~force:false ())

type snapshot = {
  sphase : string;
  sinfo : string;
  sgen : int;
  smax_gen : int;
  smeasured : int;
  selapsed_s : float;
  seta_s : float option;
}

let snapshot () =
  with_lock (fun () ->
      let now = Unix.gettimeofday () in
      let eta_s =
        if st.max_gen > 0 && st.gen > 1 then begin
          let per_gen = (now -. st.gen0_s) /. float_of_int (st.gen - 1) in
          Some (per_gen *. float_of_int (st.max_gen - st.gen))
        end
        else None
      in
      { sphase = st.phase;
        sinfo = st.info;
        sgen = st.gen;
        smax_gen = st.max_gen;
        smeasured = st.measured;
        selapsed_s = (if st.started_s = 0.0 then 0.0 else now -. st.started_s);
        seta_s = eta_s })
