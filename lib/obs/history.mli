(** Cross-run performance history with robust regression detection.

    Bench runs append one JSONL entry per workload to a history file
    (default [BENCH_history.jsonl]): timestamp, git revision, device,
    workload, and a flat metric map ([points_per_s], [estimates_per_s],
    [tune_wall_s], [best_time_s], [peak_heap_words], ...).  [mcfuser
    perf] then renders per-workload trends as sparkline tables and, with
    [--gate], compares the newest run against a {e robust baseline} —
    median plus median-absolute-deviation over a trailing window — and
    reports regressions.

    The store is append-only and self-describing, so files survive
    schema growth (unknown metrics simply appear as new rows) and a
    truncated tail costs only the damaged lines: {!load} counts and
    skips malformed lines instead of failing, mirroring
    [Schedule_cache.load].

    Direction of improvement is inferred from the metric name: a
    [_per_s] suffix means higher-is-better (throughputs), anything else
    is lower-is-better (times, heap words).  The regression band is
    [median ± max(tolerance·|median|, 3·MAD)]; the tolerance floor keeps
    an all-identical window (MAD = 0) from flagging every subsequent
    change, and 3·MAD widens the band for genuinely noisy metrics. *)

type entry = {
  time : float;  (** Unix seconds. *)
  rev : string;  (** Git revision the run was built from. *)
  device : string;
  workload : string;
  metrics : (string * float) list;
}

val higher_is_better : string -> bool
(** [true] exactly for names ending in [_per_s]. *)

val to_json : entry -> Mcf_util.Json.t

val of_json : Mcf_util.Json.t -> entry option
(** [None] when a required field is missing or mistyped. *)

val append : path:string -> entry -> unit
(** Append one line, creating the file if needed. *)

val load : string -> entry list * int
(** Entries in file order plus the count of malformed lines skipped.
    A missing file is an empty history, not an error. *)

val current_rev : unit -> string
(** [MCFUSER_GIT_REV] if set (tests and reproducible seeds), else
    [git rev-parse --short HEAD], else ["unknown"]. *)

val of_search_doc : ?time:float -> ?rev:string -> Mcf_util.Json.t -> entry list
(** Convert a [BENCH_search.json] document into one entry per workload,
    taking the highest-[--jobs] row of each measurement table.  [time]
    defaults to now, [rev] to {!current_rev}. *)

type verdict = {
  vdevice : string;
  vworkload : string;
  vmetric : string;
  latest : float;
  baseline_median : float;
  baseline_mad : float;
  threshold : float;  (** Band edge the latest value was compared to. *)
  n_baseline : int;  (** Baseline samples used (<= window). *)
  regressed : bool;
}

val gate : ?window:int -> ?tolerance:float -> entry list -> verdict list
(** Compare each (device, workload) group's newest entry against the
    robust baseline of up to [window] (default 10) preceding runs, at
    relative [tolerance] (default 0.05).  Metrics with no baseline
    sample — single-run groups, or a metric first recorded in the newest
    run — produce no verdict: the gate passes trivially rather than
    dividing by zero. *)

val render : ?workload:string -> entry list -> string
(** Per-workload trend tables: latest value, delta vs the oldest run,
    and an ASCII sparkline per metric. *)

val render_gate : tolerance:float -> verdict list -> string
(** One line per verdict ([ok]/[FAIL]) plus a summary.  The caller turns
    any [regressed] verdict into a non-zero exit. *)
