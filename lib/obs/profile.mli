(** Per-phase wall-clock aggregation.

    When enabled (the CLI's [--profile] flag), every {!Trace.with_span}
    and {!Trace.timed} call folds its duration into a table keyed by the
    span's full path ([tuner.tune/tuner.explore/...]), regardless of
    whether trace recording is on.  The result is a cheap always-additive
    phase breakdown that shares its measurement source with the trace
    file, so the two can never disagree. *)

type entry = {
  path : string list;  (** Root-first span ancestry, self included. *)
  count : int;
  total_s : float;  (** Wall-clock, children included. *)
}

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

val reset : unit -> unit
(** Drop all accumulated phases (the enable flag is untouched). *)

val record : path:string list -> float -> unit
(** Fold one completed span into the table.  Thread/domain-safe. *)

val entries : unit -> entry list
(** Sorted by path, so a parent precedes its children. *)

val render : unit -> string
(** Pretty table (phase tree, calls, total, self) via {!Mcf_util.Table}. *)
