(** Search flight recorder: an append-only JSONL event stream of one
    tuning run.

    The tuner's headline claims are search claims — the Fig. 7 pruning
    funnel, the eqs. (2)-(5) model ranking candidates well enough to
    guide measurement, Algorithm 1 converging in few trials — and the
    recorder captures the evidence for each of them as it happens: the
    run header (device, chain, options, seed, jobs), per-rule prune
    attribution from the space enumeration, per-generation population
    summaries from the evolutionary loop, and every estimate ↔
    measurement pair.  [mcfuser report] renders a recording;
    {!Fidelity} scores the model against the measurements in it.

    Like {!Trace}, recording is off by default and zero-cost when off:
    {!emit} is one atomic load and a branch, and the field thunk is
    never evaluated.  Events are buffered in memory and flushed to disk
    by {!write} after the run.  Every emission site in the pipeline
    sits in sequential code (after parallel stages have joined), so a
    recording is byte-identical at any [--jobs] setting modulo the two
    wall-clock fields ([time] in the run header, [wall_s] in the [end]
    event) — and since nothing in the search ever reads the buffer
    back, recording cannot perturb tuner results.

    Event schema: one JSON object per line, discriminated by ["ev"] —
    ["run"], ["prune"], ["space"], ["generation"], ["mutation"],
    ["measure"], ["result"], ["end"].  See DESIGN.md for the field-level
    schema. *)

val start : unit -> unit
(** Clear the buffer and begin recording. *)

val stop : unit -> unit
(** Stop recording; the buffer is kept for {!events} / {!write}. *)

val enabled : unit -> bool

val reset : unit -> unit
(** Drop all buffered events. *)

val emit : string -> (unit -> (string * Mcf_util.Json.t) list) -> unit
(** [emit ev fields] appends [{"ev": ev, ...fields ()}] to the buffer
    when enabled; the thunk is not evaluated otherwise. *)

val now : unit -> float
(** Wall-clock seconds since the epoch, for the run header's [time]
    field (emitters below [mcf_obs] do not link [unix] themselves). *)

val events : unit -> Mcf_util.Json.t list
(** Buffered events in emission order. *)

val strip_clock : Mcf_util.Json.t -> Mcf_util.Json.t
(** Drop the wall-clock fields ([time], [wall_s], [phases],
    [peak_heap_words] — per-phase durations and the heap high-water mark
    are clock/memory-pressure dependent too) from an event, leaving
    exactly the deterministic payload — what the cross-[--jobs]
    byte-identity tests compare. *)

val write : string -> (int, string) result
(** Flush the buffer to a JSONL file (one event per line); returns the
    number of events written. *)

val load : string -> (Mcf_util.Json.t list, string) result
(** Parse a JSONL recording back; blank lines are skipped, a malformed
    line fails with its line number. *)
