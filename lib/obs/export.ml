module Json = Mcf_util.Json
module Httpd = Mcf_util.Httpd

(* Live telemetry surface.  See export.mli for the contract.

   Exposition names map 1:1 onto registry names (no [_total] suffix is
   appended to counters) so an operator can correlate a Prometheus
   series with `--metrics` dumps and `mcfuser report` output without a
   translation table. *)

(* --- Prometheus text exposition ------------------------------------------- *)

let sanitize_name name =
  let buf = Buffer.create (String.length name + 8) in
  Buffer.add_string buf "mcfuser_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Prometheus value syntax is Go's strconv: [+Inf]/[-Inf]/[NaN], and
   plain decimals otherwise (shortest round-trip, integers undotted). *)
let fmt_value v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 9.007199254740992e15 then
    Printf.sprintf "%.0f" v
  else begin
    let s = Printf.sprintf "%.15g" v in
    if float_of_string s = v then s else Printf.sprintf "%.17g" v
  end

let render_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           kvs)
    ^ "}"

let metrics_text ?(labels = []) ?(filter = fun _ -> true) () =
  let buf = Buffer.create 4096 in
  let sample name extra v =
    Buffer.add_string buf name;
    Buffer.add_string buf (render_labels (labels @ extra));
    Buffer.add_char buf ' ';
    Buffer.add_string buf (fmt_value v);
    Buffer.add_char buf '\n'
  in
  List.iter
    (fun (raw_name, item) ->
      if filter raw_name then begin
        let name = sanitize_name raw_name in
        match (item : Metrics.snapshot_item) with
        | Metrics.Scounter v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n" name);
          sample name [] (float_of_int v)
        | Metrics.Sgauge v ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s gauge\n" name);
          sample name [] v
        | Metrics.Shist s ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          (* hbuckets are the non-empty per-bucket counts, ascending;
             Prometheus wants cumulative counts and a mandatory +Inf
             bucket (cumulative = hcount since every observation lands
             in some bucket). *)
          let cum = ref 0 in
          let saw_inf = ref false in
          List.iter
            (fun (bound, c) ->
              cum := !cum + c;
              if bound = infinity then saw_inf := true;
              sample (name ^ "_bucket")
                [ ("le", fmt_value bound) ]
                (float_of_int !cum))
            s.Metrics.hbuckets;
          if not !saw_inf then
            sample (name ^ "_bucket") [ ("le", "+Inf") ]
              (float_of_int s.Metrics.hcount);
          sample (name ^ "_sum") [] s.Metrics.hsum;
          sample (name ^ "_count") [] (float_of_int s.Metrics.hcount)
      end)
    (Metrics.snapshot ());
  Buffer.contents buf

(* --- /status --------------------------------------------------------------- *)

let status_json () =
  (* Force a sample so rsrc.* (and pool.* via Poolstats.sync) are fresh
     even when the periodic sampler never started. *)
  Resource.sample_now ();
  let snap = Metrics.snapshot () in
  let counter name =
    match List.assoc_opt name snap with
    | Some (Metrics.Scounter v) -> v
    | _ -> 0
  in
  let gauge name =
    match List.assoc_opt name snap with
    | Some (Metrics.Sgauge v) -> v
    | _ -> 0.0
  in
  let p = Progress.snapshot () in
  Json.Obj
    [ ("phase", Json.Str p.Progress.sphase);
      ("info", Json.Str p.Progress.sinfo);
      ( "generation",
        Json.Obj
          [ ("gen", Json.num_of_int p.Progress.sgen);
            ("max_gen", Json.num_of_int p.Progress.smax_gen);
            ("measured", Json.num_of_int p.Progress.smeasured);
            ( "eta_s",
              match p.Progress.seta_s with
              | Some e -> Json.Num e
              | None -> Json.Null );
          ] );
      ("elapsed_s", Json.Num p.Progress.selapsed_s);
      ( "funnel",
        Json.Obj
          [ ("enumerations", Json.num_of_int (counter "space.enumerations"));
            ("tilings_raw", Json.num_of_int (counter "space.tilings_raw"));
            ( "candidates_lowered",
              Json.num_of_int (counter "space.candidates_lowered") );
            ("pruned_rule1", Json.num_of_int (counter "space.pruned_rule1"));
            ("pruned_rule2", Json.num_of_int (counter "space.pruned_rule2"));
            ("pruned_rule4", Json.num_of_int (counter "space.pruned_rule4"));
            ("pruned_invalid", Json.num_of_int (counter "space.pruned_invalid"));
            ( "candidates_valid",
              Json.num_of_int (counter "space.candidates_valid") );
            ("estimated", Json.num_of_int (counter "explore.estimated"));
            ("measured", Json.num_of_int (counter "explore.measured"));
            ("generations", Json.num_of_int (counter "explore.generations"));
          ] );
      ( "rsrc",
        Json.Obj
          [ ("heap_words", Json.Num (gauge "rsrc.heap_words"));
            ("heap_words_peak", Json.Num (gauge "rsrc.heap_words_peak"));
            ("minor_collections", Json.Num (gauge "rsrc.minor_collections"));
            ("major_collections", Json.Num (gauge "rsrc.major_collections"));
            ("promoted_words", Json.Num (gauge "rsrc.promoted_words"));
            ("alloc_words_per_s", Json.Num (gauge "rsrc.alloc_words_per_s"));
            ("samples", Json.num_of_int (counter "rsrc.samples"));
          ] );
      ( "pool",
        Json.Obj
          [ ("domains", Json.Num (gauge "pool.domains"));
            ("busy", Json.Num (gauge "pool.busy"));
            ("utilization", Json.Num (gauge "pool.utilization"));
            ("jobs", Json.Num (gauge "pool.jobs"));
            ("chunks", Json.Num (gauge "pool.chunks"));
            ("steals", Json.Num (gauge "pool.steals"));
          ] );
      ( "caches",
        Json.Obj
          [ ( "schedule",
              Json.Obj
                [ ("hits", Json.num_of_int (counter "cache.hits"));
                  ("misses", Json.num_of_int (counter "cache.misses"));
                ] );
            ( "measure",
              Json.Obj
                [ ("hits", Json.num_of_int (counter "measure.cache.hits"));
                  ("misses", Json.num_of_int (counter "measure.cache.misses"));
                  ( "inflight_waits",
                    Json.num_of_int (counter "measure.cache.inflight_waits") );
                ] );
            ( "model_memo",
              Json.Obj
                [ ("hits", Json.num_of_int (counter "model.memo.hits"));
                  ("misses", Json.num_of_int (counter "model.memo.misses"));
                ] );
          ] );
      ( "server",
        Json.Obj
          [ ("time", Json.Num (Unix.gettimeofday ()));
            ("pid", Json.num_of_int (Unix.getpid ()));
          ] );
    ]

(* --- routing ---------------------------------------------------------------- *)

let index_body =
  "mcfuser telemetry\n\n\
   /metrics  Prometheus text exposition of the metrics registry\n\
   /status   JSON snapshot: phase, funnel, resources, caches\n\
   /healthz  liveness probe\n\
   /readyz   readiness probe\n"

let handler (req : Httpd.request) =
  if req.meth <> "GET" then
    Httpd.response ~status:405 "method not allowed\n"
  else
    match req.path with
    | "/metrics" ->
      Httpd.response
        ~content_type:"text/plain; version=0.0.4; charset=utf-8"
        (metrics_text ())
    | "/status" ->
      Httpd.response ~content_type:"application/json"
        (Json.to_string (status_json ()) ^ "\n")
    | "/healthz" -> Httpd.response "ok\n"
    | "/readyz" -> Httpd.response "ready\n"
    | "/" -> Httpd.response index_body
    | _ -> Httpd.response ~status:404 "not found\n"

(* --- lifecycle -------------------------------------------------------------- *)

let parse_listen listen =
  match String.rindex_opt listen ':' with
  | Some i ->
    let addr = String.sub listen 0 i in
    let addr = if addr = "" then "127.0.0.1" else addr in
    let port_s = String.sub listen (i + 1) (String.length listen - i - 1) in
    (match int_of_string_opt port_s with
    | Some p when p >= 0 && p < 65536 -> Ok (addr, p)
    | Some _ | None ->
      Error (Printf.sprintf "invalid --listen port in %S" listen))
  | None -> (
    match int_of_string_opt listen with
    | Some p when p >= 0 && p < 65536 -> Ok ("127.0.0.1", p)
    | Some _ | None ->
      Error
        (Printf.sprintf "invalid --listen %S (expected ADDR:PORT or PORT)"
           listen))

let serve ~listen =
  match parse_listen listen with
  | Error _ as e -> e
  | Ok (addr, port) -> (
    match Httpd.start ~addr ~port ~handler () with
    | Error _ as e -> e
    | Ok t ->
      Progress.track ();
      Ok t)

let shutdown t =
  Httpd.stop t;
  Progress.untrack ()

(* --- exposition validation -------------------------------------------------- *)

(* One [name{labels} value] sample line.  Hand-rolled because label
   values may contain escaped quotes; no regex library in tree. *)
let parse_sample_line line =
  let n = String.length line in
  let is_name_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
    | _ -> false
  in
  let i = ref 0 in
  while !i < n && is_name_char line.[!i] do
    incr i
  done;
  if !i = 0 then Error "sample line does not start with a metric name"
  else begin
    let name = String.sub line 0 !i in
    let labels = ref [] in
    let ok = ref true in
    let err = ref "" in
    let fail msg =
      ok := false;
      err := msg
    in
    (if !i < n && line.[!i] = '{' then begin
       incr i;
       let rec pairs () =
         if !i < n && line.[!i] = '}' then incr i
         else begin
           let k0 = !i in
           while !i < n && is_name_char line.[!i] do
             incr i
           done;
           if !i = k0 then fail "empty label name"
           else begin
             let key = String.sub line k0 (!i - k0) in
             if !i + 1 >= n || line.[!i] <> '=' || line.[!i + 1] <> '"' then
               fail "expected =\" after label name"
             else begin
               i := !i + 2;
               let buf = Buffer.create 16 in
               let rec value () =
                 if !i >= n then fail "unterminated label value"
                 else
                   match line.[!i] with
                   | '"' -> incr i
                   | '\\' ->
                     if !i + 1 >= n then fail "unterminated escape"
                     else begin
                       (match line.[!i + 1] with
                       | '\\' -> Buffer.add_char buf '\\'
                       | '"' -> Buffer.add_char buf '"'
                       | 'n' -> Buffer.add_char buf '\n'
                       | c -> Buffer.add_char buf c);
                       i := !i + 2;
                       value ()
                     end
                   | c ->
                     Buffer.add_char buf c;
                     incr i;
                     value ()
               in
               value ();
               if !ok then begin
                 labels := (key, Buffer.contents buf) :: !labels;
                 if !i < n && line.[!i] = ',' then begin
                   incr i;
                   pairs ()
                 end
                 else if !i < n && line.[!i] = '}' then incr i
                 else fail "expected ',' or '}' after label value"
               end
             end
           end
         end
       in
       pairs ()
     end);
    if not !ok then Error !err
    else begin
      let rest = String.trim (String.sub line !i (n - !i)) in
      (* value [timestamp] — we never emit timestamps but tolerate one *)
      let value_s =
        match String.index_opt rest ' ' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      match float_of_string_opt value_s with
      | Some v -> Ok (name, List.rev !labels, v)
      | None -> Error (Printf.sprintf "malformed sample value %S" value_s)
    end
  end

let chop_suffix name suffix =
  let n = String.length name and k = String.length suffix in
  if n > k && String.sub name (n - k) k = suffix then
    Some (String.sub name 0 (n - k))
  else None

let validate_metrics_text text =
  let lines = String.split_on_char '\n' text in
  (* base histogram name -> (le, cumulative) list in file order *)
  let buckets : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let sums : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let counts : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let error = ref None in
  (* lineno 0 marks a structural (whole-series) failure with no single
     offending line *)
  let fail lineno msg =
    if !error = None then
      error :=
        Some
          (if lineno = 0 then msg else Printf.sprintf "line %d: %s" lineno msg)
  in
  List.iteri
    (fun idx line ->
      let lineno = idx + 1 in
      if line <> "" && line.[0] <> '#' then
        match parse_sample_line line with
        | Error msg -> fail lineno msg
        | Ok (name, labels, v) -> (
          match chop_suffix name "_bucket" with
          | Some base -> (
            match List.assoc_opt "le" labels with
            | None -> fail lineno "histogram _bucket sample without le label"
            | Some le_s -> (
              match float_of_string_opt le_s with
              | None -> fail lineno (Printf.sprintf "bad le bound %S" le_s)
              | Some le ->
                let r =
                  match Hashtbl.find_opt buckets base with
                  | Some r -> r
                  | None ->
                    let r = ref [] in
                    Hashtbl.add buckets base r;
                    r
                in
                r := (le, v) :: !r))
          | None -> (
            match chop_suffix name "_sum" with
            | Some base when Hashtbl.mem buckets base ->
              Hashtbl.replace sums base v
            | _ -> (
              match chop_suffix name "_count" with
              | Some base when Hashtbl.mem buckets base ->
                Hashtbl.replace counts base v
              | _ -> ())))
      else if line <> "" then begin
        (* comment lines: only # TYPE / # HELP / # EOF style accepted *)
        if String.length line < 2 || line.[1] <> ' ' then
          fail lineno "malformed comment line"
      end)
    lines;
  (match !error with
  | Some _ -> ()
  | None ->
    Hashtbl.iter
      (fun base r ->
        let bs = List.rev !r in
        let rec check prev_le prev_cum = function
          | [] -> ()
          | (le, cum) :: rest ->
            if le <= prev_le then
              fail 0
                (Printf.sprintf "%s: le bounds not ascending (%s after %s)"
                   base (fmt_value le) (fmt_value prev_le));
            if cum < prev_cum then
              fail 0
                (Printf.sprintf "%s: cumulative bucket counts decrease" base);
            check le cum rest
        in
        check neg_infinity 0.0 bs;
        (match List.rev bs with
        | (le, inf_cum) :: _ ->
          if le <> infinity then
            fail 0 (Printf.sprintf "%s: missing le=\"+Inf\" bucket" base);
          (match Hashtbl.find_opt counts base with
          | Some c when c <> inf_cum ->
            fail 0
              (Printf.sprintf "%s: _count (%s) <> +Inf cumulative (%s)" base
                 (fmt_value c) (fmt_value inf_cum))
          | Some _ -> ()
          | None -> fail 0 (Printf.sprintf "%s: missing _count sample" base))
        | [] -> fail 0 (Printf.sprintf "%s: no buckets" base));
        if not (Hashtbl.mem sums base) then
          fail 0 (Printf.sprintf "%s: missing _sum sample" base))
      buckets);
  match !error with Some msg -> Error msg | None -> Ok ()

(* --- selfcheck -------------------------------------------------------------- *)

let selfcheck_url url =
  let get path =
    match Httpd.Client.get (url ^ path) with
    | Ok (200, body) -> Ok body
    | Ok (status, _) ->
      Error (Printf.sprintf "GET %s: unexpected status %d" path status)
    | Error msg -> Error (Printf.sprintf "GET %s: %s" path msg)
  in
  match get "/healthz" with
  | Error _ as e -> e
  | Ok _ -> (
    match get "/status" with
    | Error _ as e -> e
    | Ok body -> (
      match Json.parse (String.trim body) with
      | Error msg -> Error (Printf.sprintf "/status: invalid JSON: %s" msg)
      | Ok j when Json.member "phase" j = None ->
        Error "/status: missing \"phase\" field"
      | Ok _ -> (
        match get "/metrics" with
        | Error _ as e -> e
        | Ok body -> (
          match validate_metrics_text body with
          | Error msg -> Error (Printf.sprintf "/metrics: %s" msg)
          | Ok () -> Ok ()))))

let selfcheck t = selfcheck_url (Httpd.url t)
