(** Live status line for interactive [mcfuser tune] runs.

    With [--progress], the CLI enables this module and the search phases
    feed it: the current phase name ({!set_phase}), a free-form detail
    such as the enumerated point count ({!set_info}), and per-generation
    exploration progress with an ETA ({!generation}).  The line is drawn
    on {e stderr} with carriage-return + clear-to-eol, so stdout (JSON
    results, metrics dumps) stays pipeable; the CLI only enables it when
    stdout is a tty, and {!disable} erases the line before normal output
    resumes.

    Rendering is throttled (at most one redraw per 100ms for the
    per-generation hot path), and every entry point is a single atomic
    load when disabled — the default — so the search itself is
    unaffected.  Purely observational: nothing in the tuner reads this
    state back, so results are bit-identical with or without
    [--progress]. *)

val enable : unit -> unit
(** Reset state and start accepting updates.  No-op when already on. *)

val disable : unit -> unit
(** Stop accepting updates and erase the status line if one was drawn.
    No-op when already off. *)

val active : unit -> bool

val set_phase : string -> unit
(** Announce a new phase (e.g. ["space.enumerate"]).  Clears the info
    field and forces a redraw. *)

val set_info : string -> unit
(** Attach a detail to the current phase (e.g. ["1724 points"]). *)

val generation : gen:int -> max_gen:int -> measured:int -> unit
(** Exploration progress: generation [gen] of at most [max_gen], with
    [measured] schedules measured so far.  From the second call on, the
    line includes a worst-case ETA extrapolated from the mean generation
    time ([max_gen] is an upper bound — convergence may stop earlier). *)
