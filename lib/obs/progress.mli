(** Live status line for interactive [mcfuser tune] runs.

    With [--progress], the CLI enables this module and the search phases
    feed it: the current phase name ({!set_phase}), a free-form detail
    such as the enumerated point count ({!set_info}), and per-generation
    exploration progress with an ETA ({!generation}).  The line is drawn
    on {e stderr} with carriage-return + clear-to-eol, so stdout (JSON
    results, metrics dumps) stays pipeable; the CLI only enables it when
    stdout is a tty, and {!disable} erases the line before normal output
    resumes.

    Rendering is throttled (at most one redraw per 100ms for the
    per-generation hot path), and every entry point is a single atomic
    load when disabled — the default — so the search itself is
    unaffected.  Purely observational: nothing in the tuner reads this
    state back, so results are bit-identical with or without
    [--progress]. *)

val enable : unit -> unit
(** Reset state and start accepting updates.  No-op when already on. *)

val disable : unit -> unit
(** Stop accepting updates and erase the status line if one was drawn.
    No-op when already off. *)

val active : unit -> bool

val set_phase : string -> unit
(** Announce a new phase (e.g. ["space.enumerate"]).  Clears the info
    field and forces a redraw. *)

val set_info : string -> unit
(** Attach a detail to the current phase (e.g. ["1724 points"]). *)

val generation : gen:int -> max_gen:int -> measured:int -> unit
(** Exploration progress: generation [gen] of at most [max_gen], with
    [measured] schedules measured so far.  From the second call on, the
    line includes a worst-case ETA extrapolated from the mean generation
    time ([max_gen] is an upper bound — convergence may stop earlier). *)

val track : unit -> unit
(** Start recording phase/generation state {e without} drawing anything:
    the telemetry listener enables tracking so [/status] can report the
    live phase even when [--progress] is off.  Independent of
    {!enable}/{!disable}; resets state unless a TTY line is already
    recording.  When neither tracking nor the TTY line is on, every
    update entry point stays at two atomic loads. *)

val untrack : unit -> unit

type snapshot = {
  sphase : string;  (** [""] before the first {!set_phase}. *)
  sinfo : string;
  sgen : int;
  smax_gen : int;  (** [0] outside the exploration loop. *)
  smeasured : int;
  selapsed_s : float;  (** Since {!enable}/{!track}; [0.] if neither ran. *)
  seta_s : float option;
      (** Worst-case ETA (same extrapolation as the TTY line); [None]
          before the second generation. *)
}

val snapshot : unit -> snapshot
(** Point-in-time copy of the recorded state, for [/status]. *)
