(** Process-wide metrics registry: counters, gauges, log-scale histograms.

    Metrics are always on — a counter bump is one atomic add, cheap enough
    for every hot path in the tuner — and strictly observational: nothing
    in the search ever reads them back, so enabling/disabling observability
    cannot perturb tuning results.  All operations are thread/domain-safe;
    counter totals are deterministic under {!Mcf_util.Parallel.map}.

    Naming convention: [<subsystem>.<what>] with subsystems matching the
    per-library log sources — [space.*], [explore.*], [sim.*], [cache.*],
    [codegen.*], [tuner.*]. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Register (or fetch) a counter by name.  Raises [Invalid_argument] if
    the name is already registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram : string -> histogram
(** Log-scale histogram: one bucket per power of two.  An observation [v]
    lands in the bucket with upper bound [2^e] such that
    [2^(e-1) < v <= 2^e]; non-positive values land in an underflow
    bucket, [infinity] in an overflow bucket, NaN is dropped. *)

val observe : histogram -> float -> unit

type hist_summary = {
  hcount : int;
  hsum : float;
  hmin : float;  (** [infinity] when empty. *)
  hmax : float;  (** [neg_infinity] when empty. *)
  hp50 : float;
      (** Median estimate by log-scale bucket interpolation: the value
          sits geometrically within its (bound/2, bound] bucket at its
          rank fraction, clamped to [[hmin, hmax]]; [0.] when empty. *)
  hp90 : float;
  hp99 : float;
  hbuckets : (float * int) list;
      (** Non-empty buckets as (upper bound, count), ascending; the
          underflow bucket reports bound [0.], overflow [infinity]. *)
}

val summary : histogram -> hist_summary

val counter_value : string -> int
(** By name; [0] when the counter was never registered. *)

type snapshot_item =
  | Scounter of int
  | Sgauge of float
  | Shist of hist_summary

val snapshot : unit -> (string * snapshot_item) list
(** Point-in-time registry dump, sorted by name.  Counters and gauges
    are single atomic reads; histograms are summarized under their own
    lock.  The whole snapshot is not one atomic cut across metrics —
    fine for exposition, not for invariant checking. *)

val reset : unit -> unit
(** Zero every registered metric (registrations survive). *)

val to_json : unit -> Mcf_util.Json.t
(** Deterministic snapshot: metrics sorted by name, grouped by kind. *)

val render_table : unit -> string
(** Pretty dump of all non-zero metrics via {!Mcf_util.Table}. *)
