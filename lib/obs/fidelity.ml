module Json = Mcf_util.Json

type pair = {
  pcand : string;
  pest : float;
  pmeas : float;
}

type t = {
  pairs : int;
  mape : float;
  rank_accuracy : float;
  kendall_tau : float;
  topk_recall : (int * float) list;
}

(* Top-k sets under the two orderings; ties broken by candidate label so
   the score never depends on input order. *)
let top_by key k ps =
  let ranked =
    List.sort
      (fun a b ->
        match Float.compare (key a) (key b) with
        | 0 -> String.compare a.pcand b.pcand
        | c -> c)
      ps
  in
  Mcf_util.Listx.take k ranked |> List.map (fun p -> p.pcand)

let of_pairs ?(ks = [ 1; 5; 10 ]) ps =
  let n = List.length ps in
  let mape =
    if n = 0 then 0.0
    else
      100.0
      /. float_of_int n
      *. Mcf_util.Listx.sum_by
           (fun p -> Float.abs (p.pest -. p.pmeas) /. p.pmeas)
           ps
  in
  let arr = Array.of_list ps in
  let concordant = ref 0 and discordant = ref 0 and total = ref 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      incr total;
      let de = Float.compare arr.(i).pest arr.(j).pest in
      let dm = Float.compare arr.(i).pmeas arr.(j).pmeas in
      if de * dm > 0 then incr concordant
      else if de * dm < 0 then incr discordant
    done
  done;
  let rank_accuracy =
    if !concordant + !discordant = 0 then 1.0
    else float_of_int !concordant /. float_of_int (!concordant + !discordant)
  in
  let kendall_tau =
    if !total = 0 then 0.0
    else float_of_int (!concordant - !discordant) /. float_of_int !total
  in
  let topk_recall =
    List.sort_uniq compare ks
    |> List.map (fun k ->
           let k' = min k n in
           if k' = 0 then (k, 0.0)
           else begin
             let by_meas = top_by (fun p -> p.pmeas) k' ps in
             let by_est = top_by (fun p -> p.pest) k' ps in
             let hits =
               List.length (List.filter (fun c -> List.mem c by_meas) by_est)
             in
             (k, float_of_int hits /. float_of_int k')
           end)
  in
  { pairs = n; mape; rank_accuracy; kendall_tau; topk_recall }

let publish t =
  let set name v = Metrics.set (Metrics.gauge name) v in
  set "fidelity.pairs" (float_of_int t.pairs);
  set "fidelity.mape" t.mape;
  set "fidelity.rank_accuracy" t.rank_accuracy;
  set "fidelity.kendall_tau" t.kendall_tau;
  List.iter
    (fun (k, r) -> set (Printf.sprintf "fidelity.top%d_recall" k) r)
    t.topk_recall

let to_json t =
  Json.Obj
    [ ("pairs", Json.num_of_int t.pairs);
      ("mape", Json.Num t.mape);
      ("rank_accuracy", Json.Num t.rank_accuracy);
      ("kendall_tau", Json.Num t.kendall_tau);
      ("topk_recall",
       Json.Obj
         (List.map
            (fun (k, r) -> (string_of_int k, Json.Num r))
            t.topk_recall)) ]

let render t =
  let tbl = Mcf_util.Table.create ~headers:[ "fidelity metric"; "value" ] in
  Mcf_util.Table.add_row tbl [ "estimate/measure pairs"; string_of_int t.pairs ];
  Mcf_util.Table.add_row tbl [ "MAPE"; Printf.sprintf "%.1f%%" t.mape ];
  Mcf_util.Table.add_row tbl
    [ "pairwise rank accuracy"; Printf.sprintf "%.3f" t.rank_accuracy ];
  Mcf_util.Table.add_row tbl
    [ "Kendall's tau"; Printf.sprintf "%.3f" t.kendall_tau ];
  List.iter
    (fun (k, r) ->
      Mcf_util.Table.add_row tbl
        [ Printf.sprintf "top-%d recall" k; Printf.sprintf "%.2f" r ])
    t.topk_recall;
  Mcf_util.Table.render tbl

(* Same (2^(e-1), 2^e] bucket layout as Metrics histograms, computed on a
   plain sample so the recorder can summarize a population without
   touching the process-wide registry. *)
let histogram xs =
  let tbl : (float, int) Hashtbl.t = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      let bound =
        if v <= 0.0 then 0.0
        else if v = Float.infinity then Float.infinity
        else begin
          let m, e = Float.frexp v in
          let e = if m = 0.5 then e - 1 else e in
          Float.ldexp 1.0 e
        end
      in
      Hashtbl.replace tbl bound
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl bound)))
    xs;
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
