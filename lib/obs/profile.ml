type entry = {
  path : string list;
  count : int;
  total_s : float;
}

let on = Atomic.make false
let enable () = Atomic.set on true
let disable () = Atomic.set on false
let enabled () = Atomic.get on

type cell = {
  cpath : string list;
  mutable ccount : int;
  mutable ctotal_s : float;
}

let lock = Mutex.create ()
let table : (string, cell) Hashtbl.t = Hashtbl.create 32

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let reset () = with_lock (fun () -> Hashtbl.reset table)

let record ~path dur_s =
  let key = String.concat "/" path in
  with_lock (fun () ->
      let cell =
        match Hashtbl.find_opt table key with
        | Some c -> c
        | None ->
          let c = { cpath = path; ccount = 0; ctotal_s = 0.0 } in
          Hashtbl.add table key c;
          c
      in
      cell.ccount <- cell.ccount + 1;
      cell.ctotal_s <- cell.ctotal_s +. dur_s)

let entries () =
  let cells = with_lock (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) table []) in
  cells
  |> List.map (fun c -> { path = c.cpath; count = c.ccount; total_s = c.ctotal_s })
  |> List.sort (fun a b -> compare a.path b.path)

let render () =
  let es = entries () in
  let tbl = Mcf_util.Table.create ~headers:[ "phase"; "calls"; "total"; "self" ] in
  let child_total (e : entry) =
    Mcf_util.Listx.sum_by
      (fun (c : entry) ->
        (* immediate children only: parent path plus one component *)
        if
          List.length c.path = List.length e.path + 1
          && Mcf_util.Listx.take (List.length e.path) c.path = e.path
        then c.total_s
        else 0.0)
      es
  in
  List.iter
    (fun e ->
      let depth = List.length e.path - 1 in
      let name =
        String.make (2 * depth) ' '
        ^ (match List.rev e.path with last :: _ -> last | [] -> "")
      in
      let self = e.total_s -. child_total e in
      Mcf_util.Table.add_row tbl
        [ name;
          string_of_int e.count;
          Mcf_util.Table.fmt_time_s e.total_s;
          Mcf_util.Table.fmt_time_s self ])
    es;
  Mcf_util.Table.render tbl
