(** Model-fidelity analytics: how well the analytic estimator of
    eqs. (2)-(5) predicts (simulated) measurements.

    The search only needs the model to {e rank} candidates, not to
    predict absolute times, so fidelity is scored on both axes from the
    estimate ↔ measurement pairs of a {!Recorder} recording:

    - {b MAPE}: mean of |est − meas| / meas, in percent — absolute
      accuracy.
    - {b Pairwise rank accuracy}: over all pairs with distinct
      measurements, the fraction the estimator orders the same way.
    - {b Kendall's tau}: (concordant − discordant) / total pairs, in
      [-1, 1]; ties count as neither.
    - {b Top-k recall}: of the k best-measured candidates, the fraction
      the estimator also ranks in its own top k (ties broken by
      candidate name, so the score is deterministic).

    Computed offline from a recording by [mcfuser report]; {!publish}
    mirrors the result into the [fidelity.*] gauges of {!Metrics}. *)

type pair = {
  pcand : string;  (** Candidate label (used only for tie-breaking). *)
  pest : float;  (** Model estimate, seconds. *)
  pmeas : float;  (** Measured time, seconds. *)
}

type t = {
  pairs : int;
  mape : float;  (** Percent; [0.] when there are no pairs. *)
  rank_accuracy : float;
      (** Concordant / (concordant + discordant); [1.] when no pair is
          comparable (nothing was mis-ranked). *)
  kendall_tau : float;  (** [0.] when fewer than two pairs. *)
  topk_recall : (int * float) list;
      (** Per requested k (clamped to the pair count), ascending. *)
}

val of_pairs : ?ks:int list -> pair list -> t
(** Default [ks] is [[1; 5; 10]]. *)

val publish : t -> unit
(** Set the [fidelity.pairs], [fidelity.mape], [fidelity.rank_accuracy],
    [fidelity.kendall_tau] and [fidelity.top<k>_recall] gauges. *)

val to_json : t -> Mcf_util.Json.t

val render : t -> string
(** One summary table via {!Mcf_util.Table}. *)

val histogram : float array -> (float * int) list
(** Log-scale bucketing of a sample (same layout as {!Metrics}
    histograms): non-empty buckets as (upper bound, count), ascending;
    values [<= 0] land under bound [0.].  Used for the per-generation
    estimate histograms in the recorder stream. *)
