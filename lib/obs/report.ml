module Json = Mcf_util.Json
module Table = Mcf_util.Table

(* --- JSON field helpers ------------------------------------------------- *)

let ev_name j =
  match Json.member "ev" j with Some (Json.Str s) -> s | _ -> ""

let jstr ?(default = "?") k j =
  match Json.member k j with Some (Json.Str s) -> s | _ -> default

let jnum k j =
  match Json.member k j with Some (Json.Num v) -> Some v | _ -> None

let jlist k j =
  match Json.member k j with Some (Json.List l) -> l | _ -> []

(* Funnel counts are integer-valued even when carried as floats
   (candidates_raw); print them exactly, not in rounded scientific
   notation, so the report reproduces the funnel bit-for-bit. *)
let fmt_count v =
  if Float.is_integer v && Float.abs v < 9e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%g" v

let rec fmt_value = function
  | Json.Null -> "-"
  | Json.Bool b -> if b then "on" else "off"
  | Json.Num v -> fmt_count v
  | Json.Str s -> s
  | Json.List l -> String.concat "," (List.map fmt_value l)
  | Json.Obj kvs ->
    String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ fmt_value v) kvs)

let fmt_opt_time = function
  | Some t -> Table.fmt_time_s t
  | None -> "-"

(* --- one run ------------------------------------------------------------ *)

(* Split the stream into runs: each ["run"] header opens a new segment;
   events before the first header (a bare [Space.enumerate] call) form a
   headerless one. *)
let segments evs =
  List.fold_left
    (fun acc e ->
      match (ev_name e, acc) with
      | "run", _ -> [ e ] :: acc
      | _, [] -> [ [ e ] ]
      | _, seg :: rest -> (e :: seg) :: rest)
    [] evs
  |> List.rev_map List.rev

let find_ev name seg =
  List.find_opt (fun e -> ev_name e = name) seg

let last_ev name seg =
  List.fold_left (fun acc e -> if ev_name e = name then Some e else acc)
    None seg

let filter_ev name seg = List.filter (fun e -> ev_name e = name) seg

let funnel_rows funnel =
  let labels =
    [ ("tilings_raw", "tiling expressions (raw)");
      ("tilings_rule1", "after Rule 1 (dedup)");
      ("tilings_rule2", "after Rule 2 (residency)");
      ("candidates_raw", "candidates (raw)");
      ("candidates_rule3", "after Rule 3 (padding)");
      ("candidates_rule4", "after Rule 4 (shared memory)");
      ("candidates_valid", "valid (softmax legality)") ]
  in
  match funnel with
  | Json.Obj kvs ->
    List.map
      (fun (k, v) ->
        let label =
          match List.assoc_opt k labels with Some l -> l | None -> k
        in
        (label, fmt_value v))
      kvs
  | _ -> []

let pairs_of_events seg =
  List.filter_map
    (fun e ->
      match (jnum "est" e, jnum "time_s" e) with
      | Some est, Some meas ->
        Some { Fidelity.pcand = jstr "cand" e; pest = est; pmeas = meas }
      | _ -> None)
    (filter_ev "measure" seg)

let fidelity_of_run seg = Fidelity.of_pairs (pairs_of_events seg)

let render_run buf seg =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match find_ev "run" seg with
  | Some run ->
    add "# run\n";
    add "workload  %s on %s (seed %s, jobs %s)\n" (jstr "chain" run)
      (jstr "device" run)
      (fmt_value (Option.value ~default:Json.Null (Json.member "seed" run)))
      (fmt_value (Option.value ~default:Json.Null (Json.member "jobs" run)));
    (match Json.member "options" run with
    | Some o -> add "options   %s\n" (fmt_value o)
    | None -> ());
    (match Json.member "params" run with
    | Some p -> add "params    %s\n" (fmt_value p)
    | None -> ());
    add "\n"
  | None -> add "# run (no header recorded)\n\n");
  (match last_ev "space" seg with
  | Some space -> (
    match Json.member "funnel" space with
    | Some funnel ->
      add "# pruning funnel\n";
      let tbl = Table.create ~headers:[ "stage"; "count" ] in
      List.iter (fun (l, v) -> Table.add_row tbl [ l; v ]) (funnel_rows funnel);
      Buffer.add_string buf (Table.render tbl);
      add "\n"
    | None -> ())
  | None -> ());
  (match filter_ev "prune" seg with
  | [] -> ()
  | prunes ->
    add "# prune attribution\n";
    let tbl =
      Table.create ~headers:[ "rule"; "kind"; "kept"; "removed"; "exemplars" ]
    in
    List.iter
      (fun p ->
        let exemplars =
          jlist "exemplars" p |> List.map fmt_value
          |> Mcf_util.Listx.take 2 |> String.concat ", "
        in
        Table.add_row tbl
          [ jstr "stage" p;
            jstr "kind" p;
            fmt_value (Option.value ~default:Json.Null (Json.member "after" p));
            fmt_value
              (Option.value ~default:Json.Null (Json.member "removed" p));
            (if exemplars = "" then "-" else exemplars) ])
      prunes;
    Buffer.add_string buf (Table.render tbl);
    add "\n");
  (match filter_ev "generation" seg with
  | [] -> ()
  | gens ->
    add "# convergence\n";
    let mutations = filter_ev "mutation" seg in
    let mutation_for g =
      List.find_opt (fun m -> jnum "gen" m = Some g) mutations
    in
    let tbl =
      Table.create
        ~headers:
          [ "gen"; "population"; "est best"; "measured"; "round best";
            "best so far"; "mutated"; "plateaus" ]
    in
    List.iter
      (fun g ->
        let gen = Option.value ~default:0.0 (jnum "gen" g) in
        let mutated =
          match mutation_for gen with
          | Some m ->
            Printf.sprintf "%s/%s"
              (fmt_value
                 (Option.value ~default:Json.Null (Json.member "changed" m)))
              (fmt_value
                 (Option.value ~default:Json.Null (Json.member "proposed" m)))
          | None -> "-"
        in
        Table.add_row tbl
          [ fmt_count gen;
            fmt_value
              (Option.value ~default:Json.Null (Json.member "population" g));
            fmt_opt_time (jnum "est_best" g);
            fmt_value
              (Option.value ~default:Json.Null (Json.member "measured_new" g));
            fmt_opt_time (jnum "round_best_s" g);
            fmt_opt_time (jnum "best_time_s" g);
            mutated;
            fmt_value
              (Option.value ~default:Json.Null (Json.member "plateaus" g)) ])
      gens;
    Buffer.add_string buf (Table.render tbl);
    add "\n");
  let fid = fidelity_of_run seg in
  if fid.Fidelity.pairs > 0 then begin
    Fidelity.publish fid;
    add "# model fidelity (estimate vs measurement)\n";
    Buffer.add_string buf (Fidelity.render fid);
    add "\n"
  end;
  match last_ev "result" seg with
  | None -> ()
  | Some r ->
    add "# result\n";
    add "best      %s at %s\n" (jstr "best" r)
      (fmt_opt_time (jnum "kernel_time_s" r));
    add "search    %s generations, %s estimated, %s measured (virtual \
         tuning %s)\n"
      (fmt_value
         (Option.value ~default:Json.Null (Json.member "generations" r)))
      (fmt_value (Option.value ~default:Json.Null (Json.member "estimated" r)))
      (fmt_value (Option.value ~default:Json.Null (Json.member "measured" r)))
      (fmt_opt_time (jnum "tuning_virtual_s" r))

let render evs =
  match segments evs with
  | [] -> Error "empty recording"
  | segs ->
    let buf = Buffer.create 4096 in
    List.iteri
      (fun i seg ->
        if i > 0 then Buffer.add_string buf "\n";
        render_run buf seg)
      segs;
    Ok (Buffer.contents buf)

(* --- diff --------------------------------------------------------------- *)

type diff = {
  dreport : string;
  funnel_drift : bool;
  fidelity_drift : bool;
  regression : bool;
  heap_regression : bool;
  wall_drift : bool;
}

let last_segment evs =
  match List.rev (segments evs) with [] -> None | seg :: _ -> Some seg

let funnel_fields seg =
  match last_ev "space" seg with
  | Some space -> (
    match Json.member "funnel" space with Some (Json.Obj kvs) -> kvs | _ -> [])
  | None -> []

let diff ?(tolerance = 0.05) a b =
  match (last_segment a, last_segment b) with
  | None, _ -> Error "recording A is empty"
  | _, None -> Error "recording B is empty"
  | Some sa, Some sb ->
    let buf = Buffer.create 1024 in
    let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
    add "# report diff\n";
    (* funnel *)
    let fa = funnel_fields sa and fb = funnel_fields sb in
    let keys =
      List.sort_uniq compare (List.map fst fa @ List.map fst fb)
    in
    let funnel_changes =
      List.filter_map
        (fun k ->
          let va = List.assoc_opt k fa and vb = List.assoc_opt k fb in
          if va = vb then None
          else
            Some
              (Printf.sprintf "%s %s -> %s" k
                 (fmt_value (Option.value ~default:Json.Null va))
                 (fmt_value (Option.value ~default:Json.Null vb))))
        keys
    in
    let funnel_drift = funnel_changes <> [] in
    if funnel_drift then
      add "funnel    DRIFT: %s\n" (String.concat ", " funnel_changes)
    else add "funnel    identical (%d counts)\n" (List.length keys);
    (* fidelity *)
    let fida = fidelity_of_run sa and fidb = fidelity_of_run sb in
    let near x y = Float.abs (x -. y) <= 1e-12 in
    let fidelity_drift =
      not
        (near fida.Fidelity.mape fidb.Fidelity.mape
        && near fida.rank_accuracy fidb.rank_accuracy
        && near fida.kendall_tau fidb.kendall_tau
        && fida.pairs = fidb.pairs)
    in
    add "fidelity  %sMAPE %.1f%% -> %.1f%%, tau %.3f -> %.3f, pairs %d -> %d\n"
      (if fidelity_drift then "DRIFT: " else "")
      fida.Fidelity.mape fidb.Fidelity.mape fida.kendall_tau
      fidb.kendall_tau fida.pairs fidb.pairs;
    (* best measured time *)
    let best seg =
      Option.bind (last_ev "result" seg) (jnum "kernel_time_s")
    in
    let regression =
      match (best sa, best sb) with
      | Some ta, Some tb ->
        let rel = (tb -. ta) /. ta in
        add "best      %s -> %s (%+.2f%%, tolerance %.1f%%)\n"
          (Table.fmt_time_s ta) (Table.fmt_time_s tb) (100.0 *. rel)
          (100.0 *. tolerance);
        rel > tolerance
      | ta, tb ->
        add "best      %s -> %s (no comparison)\n" (fmt_opt_time ta)
          (fmt_opt_time tb);
        false
    in
    (* resource telemetry from the [end] events: peak heap gates like the
       best time; per-phase wall times are informational only (wall-clock
       noise would make them a flaky CI signal).  Printed as relative
       changes, never absolutes, so a self-diff is byte-stable. *)
    let end_of seg = last_ev "end" seg in
    let heap seg = Option.bind (end_of seg) (jnum "peak_heap_words") in
    let heap_regression =
      match (heap sa, heap sb) with
      | Some ha, Some hb when ha > 0.0 ->
        let rel = (hb -. ha) /. ha in
        add "peakheap  %+.2f%% (tolerance %.1f%%)\n" (100.0 *. rel)
          (100.0 *. tolerance);
        rel > tolerance
      | _ ->
        add "peakheap  no comparison (recording predates resource telemetry)\n";
        false
    in
    let phase_walls seg =
      match Option.bind (end_of seg) (Json.member "phases") with
      | Some (Json.Obj kvs) ->
        List.filter_map
          (function k, Json.Num v -> Some (k, v) | _ -> None)
          kvs
      | _ -> []
    in
    let pa = phase_walls sa and pb = phase_walls sb in
    let wall_drift =
      match (pa, pb) with
      | [], _ | _, [] ->
        add "phases    no comparison (recording predates resource telemetry)\n";
        false
      | _ ->
        let changes =
          List.filter_map
            (fun (k, va) ->
              match List.assoc_opt k pb with
              | Some vb when va > 0.0 ->
                let rel = (vb -. va) /. va in
                Some (Printf.sprintf "%s %+.2f%%" k (100.0 *. rel), Float.abs rel > tolerance)
              | _ -> None)
            pa
        in
        add "phases    %s (informational)\n"
          (String.concat ", " (List.map fst changes));
        List.exists snd changes
    in
    if regression || heap_regression then
      add "verdict   FAIL: %s\n"
        (String.concat " and "
           ((if regression then
               [ "best measured time regressed beyond tolerance" ]
             else [])
           @
           if heap_regression then
             [ "peak heap regressed beyond tolerance" ]
           else []))
    else add "verdict   OK\n";
    Ok { dreport = Buffer.contents buf; funnel_drift; fidelity_drift;
         regression; heap_regression; wall_drift }
