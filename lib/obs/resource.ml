(* Runtime resource telemetry.  See resource.mli for the contract.

   One sampler thread wakes every [period_s], snapshots the GC and the
   domain pool, and publishes the snapshot twice: as [rsrc.*] gauges in
   the metrics registry (latest value / high-water mark) and as Chrome
   trace counter events ("ph":"C") so --trace output shows heap and
   pool-utilization timelines under the phase spans.  Instrumented code
   can additionally call [sample] at phase boundaries (a cooperative
   tick), which both tightens the timeline around short phases and
   contributes the main domain's minor-heap vantage (in OCaml 5,
   [Gc.quick_stat] minor figures are per-domain; major-heap words and
   the [top_heap_words] high-water mark are process-global). *)

let g_heap_words = Metrics.gauge "rsrc.heap_words"
let g_heap_words_peak = Metrics.gauge "rsrc.heap_words_peak"
let g_minor_collections = Metrics.gauge "rsrc.minor_collections"
let g_major_collections = Metrics.gauge "rsrc.major_collections"
let g_promoted_words = Metrics.gauge "rsrc.promoted_words"
let g_alloc_rate = Metrics.gauge "rsrc.alloc_words_per_s"
let c_samples = Metrics.counter "rsrc.samples"

let running = Atomic.make false
let sampler : Thread.t option ref = ref None

(* High-water mark across the sampling session, in words.  Kept outside
   the gauge so [Metrics.reset] in tests cannot erase the mark mid-run. *)
let peak_words = Atomic.make 0.0

let rec raise_peak v =
  let cur = Atomic.get peak_words in
  if v > cur && not (Atomic.compare_and_set peak_words cur v) then
    raise_peak v

(* Allocation rate: delta of cumulative allocated words between two
   samples, whoever took them.  Guarded by a mutex — the sampler thread
   and cooperative ticks race on it. *)
let rate_lock = Mutex.create ()
let last_sample = ref None (* (time_s, allocated_words) *)

let peak_heap_words () =
  let q = Gc.quick_stat () in
  Float.max (Atomic.get peak_words) (float_of_int q.Gc.top_heap_words)

let sample_now () =
  let q = Gc.quick_stat () in
  let t = Unix.gettimeofday () in
  let heap = float_of_int q.Gc.heap_words in
  raise_peak (Float.max heap (float_of_int q.Gc.top_heap_words));
  let peak = Atomic.get peak_words in
  Metrics.incr c_samples;
  Metrics.set g_heap_words heap;
  Metrics.set g_heap_words_peak peak;
  Metrics.set g_minor_collections (float_of_int q.Gc.minor_collections);
  Metrics.set g_major_collections (float_of_int q.Gc.major_collections);
  Metrics.set g_promoted_words q.Gc.promoted_words;
  let allocated = q.Gc.minor_words +. q.Gc.major_words -. q.Gc.promoted_words in
  let rate =
    Mutex.lock rate_lock;
    let r =
      match !last_sample with
      | Some (t0, a0) when t > t0 && allocated >= a0 ->
        Some ((allocated -. a0) /. (t -. t0))
      | _ -> None
    in
    last_sample := Some (t, allocated);
    Mutex.unlock rate_lock;
    r
  in
  (match rate with Some r -> Metrics.set g_alloc_rate r | None -> ());
  (* Pool gauges go live on every tick (not just at teardown), so short
     phases show up in metrics output too. *)
  Poolstats.sync ();
  let s = Mcf_util.Pool.stats () in
  let busy = float_of_int s.Mcf_util.Pool.busy in
  let domains = float_of_int (max 1 s.Mcf_util.Pool.domains) in
  Trace.counter "rsrc.heap_words" (fun () ->
      [ ("heap", heap); ("peak", peak) ]);
  Trace.counter "rsrc.pool_util" (fun () ->
      [ ("busy", busy); ("utilization", busy /. domains) ]);
  Trace.counter "rsrc.alloc_words_per_s" (fun () ->
      [ ("rate", match rate with Some r -> r | None -> 0.0) ]);
  Trace.counter "rsrc.gc" (fun () ->
      [ ("minor", float_of_int q.Gc.minor_collections);
        ("major", float_of_int q.Gc.major_collections) ])

let sample () = if Atomic.get running then sample_now ()

let loop period_s () =
  while Atomic.get running do
    Thread.delay period_s;
    if Atomic.get running then sample_now ()
  done

let start ~period_s =
  if not (Atomic.get running) then begin
    Atomic.set peak_words 0.0;
    Mutex.lock rate_lock;
    last_sample := None;
    Mutex.unlock rate_lock;
    Atomic.set running true;
    (* One sample up front: even a run shorter than the period gets a
       complete set of series. *)
    sample_now ();
    sampler := Some (Thread.create (loop (Float.max 1e-4 period_s)) ())
  end

let stop () =
  if Atomic.get running then begin
    Atomic.set running false;
    (match !sampler with Some t -> Thread.join t | None -> ());
    sampler := None;
    (* Closing sample so the gauges reflect the end of the run. *)
    sample_now ()
  end

let active () = Atomic.get running
