(** Domain-pool scheduler counters as metrics gauges.

    [Mcf_util.Pool] cannot push into the metrics registry (dependency
    direction: [mcf_obs] sits on top of [mcf_util]), so the pool exposes
    raw cumulative counters and this module pulls a snapshot into gauges
    ([pool.domains], [pool.spawned], [pool.jobs], [pool.chunks],
    [pool.steals], [pool.idle_s]).  Gauge writes are idempotent, so call
    {!sync} from any metrics dump site. *)

val sync : unit -> unit
(** Copy the current {!Mcf_util.Pool.stats} snapshot into the gauges. *)
