(** Domain-pool scheduler counters as metrics gauges.

    [Mcf_util.Pool] cannot push into the metrics registry (dependency
    direction: [mcf_obs] sits on top of [mcf_util]), so the pool exposes
    raw cumulative counters and this module pulls a snapshot into gauges
    ([pool.domains], [pool.spawned], [pool.jobs], [pool.chunks],
    [pool.steals], [pool.idle_s], [pool.busy], [pool.utilization]).
    Gauge writes are idempotent, so call {!sync} from any metrics dump
    site.

    {!sync} only captures the instant it runs, which used to mean
    teardown only — short phases (e.g. [space.precheck]) were invisible
    in metrics output.  The {!Resource} sampler now calls {!sync} on
    every tick, so with [--sample-ms] the gauges track the run live and
    [pool.busy]/[pool.utilization] become genuine timelines in the
    trace's counter events. *)

val sync : unit -> unit
(** Copy the current {!Mcf_util.Pool.stats} snapshot into the gauges. *)
