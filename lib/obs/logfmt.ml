(* Shared structured-log reporter.  See logfmt.mli for the contract. *)

type format =
  | Text
  | Json

let format_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "text" -> Ok Text
  | "json" -> Ok Json
  | other ->
    Error (Printf.sprintf "invalid log format %S (expected text or json)" other)

let timestamp () =
  let t = Unix.gettimeofday () in
  let tm = Unix.gmtime t in
  let ms = int_of_float (Float.rem t 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

let level_label = function
  | Logs.App -> "app"
  | Logs.Error -> "error"
  | Logs.Warning -> "warn"
  | Logs.Info -> "info"
  | Logs.Debug -> "debug"

let reporter ?(ppf = Format.err_formatter) format =
  let report src level ~over k msgf =
    msgf (fun ?header ?tags fmt ->
        ignore header;
        ignore tags;
        Format.kasprintf
          (fun msg ->
            let time = timestamp () in
            let src_name = Logs.Src.name src in
            (match format with
            | Text ->
              Format.fprintf ppf "%s %-5s [%s] %s@." time
                (String.uppercase_ascii (level_label level))
                src_name msg
            | Json ->
              let open Mcf_util.Json in
              Format.fprintf ppf "%s@."
                (to_string
                   (Obj
                      [ ("time", Str time);
                        ("level", Str (level_label level));
                        ("src", Str src_name);
                        ("msg", Str msg);
                      ])));
            over ();
            k ())
          fmt)
  in
  { Logs.report }

let setup ?ppf ?(format = Text) level =
  Logs.set_reporter (reporter ?ppf format);
  Logs.set_level ~all:true level
