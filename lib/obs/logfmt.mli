(** Shared [Logs] reporter for the CLI, the bench driver and the future
    daemon: timestamped, source-tagged lines in either human-readable
    text or machine-parseable JSON lines ([--log-format text|json]).

    Text:  [2026-08-07T12:34:56.789Z WARN [mcfuser.jsonl] msg]
    JSON:  [{"time":"...","level":"warn","src":"mcfuser.jsonl","msg":"..."}]

    Timestamps are UTC ISO-8601 with millisecond precision.  Everything
    goes to one formatter (stderr by default) regardless of level, so
    stdout stays reserved for results. *)

type format =
  | Text
  | Json

val format_of_string : string -> (format, string) result
(** ["text"] or ["json"] (case-insensitive). *)

val reporter : ?ppf:Format.formatter -> format -> Logs.reporter
(** [?ppf] defaults to [Format.err_formatter]; tests pass a buffer
    formatter to capture output. *)

val setup : ?ppf:Format.formatter -> ?format:format -> Logs.level option -> unit
(** Install {!reporter} and set the global level with
    [Logs.set_level ~all:true] — which also becomes the default for
    sources registered {e later}, so per-library sources created after
    startup inherit the chosen level (the reason the old
    [Logs.Src.list] loop was both insufficient and unnecessary). *)
