(** Render and diff {!Recorder} recordings — the engine behind the
    [mcfuser report] subcommand.

    {!render} turns one recording into the human-readable post-mortem of
    a tuning run: the Fig. 7 funnel table (bit-identical to the
    [Tuner.outcome.funnel] the run returned), per-rule prune
    attribution with exemplars, the per-generation convergence curve,
    the {!Fidelity} summary of the analytic model against the run's
    measurements (also published to the [fidelity.*] gauges), and the
    final result.  A recording holding several runs (e.g. [compare
    --record]) renders each in order.

    {!diff} compares two recordings for CI gating: funnel drift,
    fidelity drift, and best-measured-time regression beyond a relative
    tolerance.  Works on plain parsed JSON, so today's binary can
    inspect recordings from any build. *)

val render : Mcf_util.Json.t list -> (string, string) result
(** [Error] when the recording contains no events. *)

type diff = {
  dreport : string;  (** Human-readable comparison. *)
  funnel_drift : bool;
  fidelity_drift : bool;
  regression : bool;
      (** Best measured time of B exceeds A's by more than [tolerance]. *)
  heap_regression : bool;
      (** Peak heap words of B exceed A's by more than [tolerance]
          (from the [end] events' resource telemetry; [false] when
          either recording predates it).  Gates like {!regression}. *)
  wall_drift : bool;
      (** Some phase wall time moved more than [tolerance] either way.
          Informational only — wall clocks are too noisy to gate on. *)
}

val diff :
  ?tolerance:float ->
  Mcf_util.Json.t list ->
  Mcf_util.Json.t list ->
  (diff, string) result
(** Compare the last run of each recording; [tolerance] is the relative
    best-time regression threshold (default [0.05]). *)
