(** Live telemetry surface: Prometheus exposition, [/status] JSON, and
    the listener lifecycle behind [--listen ADDR:PORT].

    The endpoints (all [GET], [Connection: close]):

    - [/metrics] — the whole {!Metrics} registry in Prometheus text
      exposition format 0.0.4.  Registry names map 1:1 onto exposition
      names as [mcfuser_] + the name with every non-[[A-Za-z0-9_]]
      character replaced by [_] (so [explore.estimate_s] becomes
      [mcfuser_explore_estimate_s]); no [_total] suffix is appended.
      Counters and gauges are single samples; log-scale histograms
      become cumulative [_bucket{le="..."}] series (one bucket per
      power of two actually hit, plus the mandatory [le="+Inf"] bucket)
      with [_sum] and [_count].
    - [/status] — one JSON object with the live phase (what {!Progress}
      would print to a TTY), generation/ETA, the candidate funnel so
      far, [rsrc.*] gauges (a {!Resource.sample_now} is forced per
      request so they are fresh without [--sample-ms]), pool state, and
      cache hit/miss pairs.  Schema in DESIGN.md.
    - [/healthz] — liveness: always [200 ok].
    - [/readyz] — readiness: [200 ready] (the listener only exists once
      the process is serving).
    - [/] — plain-text index of the above.

    Everything here is strictly observational: handlers only read
    atomics and mutex-guarded snapshots that the search never reads
    back, so tuner results are bit-identical with the listener on or
    off at any [--jobs] (asserted in test_telemetry). *)

val metrics_text :
  ?labels:(string * string) list -> ?filter:(string -> bool) -> unit -> string
(** Render the registry as Prometheus text exposition.  [labels] are
    attached to every sample (values escaped: backslash, double-quote,
    newline); [filter] selects registry names to include (default:
    all).  Output is deterministic for a fixed registry state: metrics
    sorted by name, buckets ascending. *)

val status_json : unit -> Mcf_util.Json.t
(** The [/status] document.  Forces a {!Resource.sample_now} first. *)

val handler : Mcf_util.Httpd.request -> Mcf_util.Httpd.response
(** Request router for the endpoints above; 404 for unknown paths, 405
    for non-GET methods.  Exposed so [mcfuser serve] can wrap it. *)

val parse_listen : string -> (string * int, string) result
(** Parse ["ADDR:PORT"] (or ["PORT"], meaning [127.0.0.1:PORT]) — the
    shared [--listen] syntax of the telemetry listener and the serve
    daemon. *)

val serve : listen:string -> (Mcf_util.Httpd.t, string) result
(** Parse [listen] as ["ADDR:PORT"] (["PORT"] alone means
    [127.0.0.1:PORT]; port [0] asks the kernel) and start the listener
    with {!handler}.  Also calls {!Progress.track} so [/status] has
    phase data without [--progress]. *)

val shutdown : Mcf_util.Httpd.t -> unit
(** Graceful stop (drains in-flight requests) + {!Progress.untrack}. *)

val selfcheck : Mcf_util.Httpd.t -> (unit, string) result
(** Probe a running listener over its real socket: fetch [/healthz],
    [/status] (must parse as JSON with a ["phase"] field) and
    [/metrics] (must pass {!validate_metrics_text}).  Backs
    [--listen-selfcheck] and [make telemetry-smoke]. *)

val selfcheck_url : string -> (unit, string) result
(** {!selfcheck} against an arbitrary base URL (no trailing slash) —
    lets [mcfuser submit --selfcheck] probe a remote daemon it did not
    start. *)

val validate_metrics_text : string -> (unit, string) result
(** Structural validator for Prometheus text exposition, used by the
    selfcheck and the unit tests: every line is a comment or a
    [name{labels} value] sample; each histogram's [_bucket] series has
    ascending [le] bounds, monotonically non-decreasing cumulative
    counts, a final [le="+Inf"] bucket, and [_count] equal to the
    [+Inf] cumulative count, with [_sum] present. *)
