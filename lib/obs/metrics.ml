type counter = int Atomic.t

type gauge = float Atomic.t

(* Buckets hold exponents [emin, emax]; index 0 is the underflow bucket
   (v <= 0), the last index catches overflow (v > 2^emax, incl. inf). *)
let emin = -40
let emax = 40
let n_buckets = emax - emin + 3

type histogram = {
  hlock : Mutex.t;
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable min : float;
  mutable max : float;
}

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let lock = Mutex.create ()
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let register name make select =
  with_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some m -> (
        match select m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf
               "Mcf_obs.Metrics: %S already registered as another kind" name))
      | None ->
        let m, v = make () in
        Hashtbl.add registry name m;
        v)

let counter name =
  register name
    (fun () ->
      let c = Atomic.make 0 in
      (Counter c, c))
    (function Counter c -> Some c | Gauge _ | Histogram _ -> None)

let incr c = Atomic.incr c
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge name =
  register name
    (fun () ->
      let g = Atomic.make 0.0 in
      (Gauge g, g))
    (function Gauge g -> Some g | Counter _ | Histogram _ -> None)

let set g v = Atomic.set g v
let gauge_value g = Atomic.get g

let histogram name =
  register name
    (fun () ->
      let h =
        { hlock = Mutex.create ();
          counts = Array.make n_buckets 0;
          count = 0;
          sum = 0.0;
          min = infinity;
          max = neg_infinity }
      in
      (Histogram h, h))
    (function Histogram h -> Some h | Counter _ | Gauge _ -> None)

(* Bucket of [v]: upper bound 2^e with 2^(e-1) < v <= 2^e, so exact powers
   of two sit at the top of their own bucket. *)
let bucket_index v =
  if v <= 0.0 then 0
  else if v = infinity then n_buckets - 1
  else begin
    let m, e = Float.frexp v in
    let e = if m = 0.5 then e - 1 else e in
    if e < emin then 1
    else if e > emax then n_buckets - 1
    else e - emin + 1
  end

let observe h v =
  if not (Float.is_nan v) then begin
    Mutex.lock h.hlock;
    h.counts.(bucket_index v) <- h.counts.(bucket_index v) + 1;
    h.count <- h.count + 1;
    h.sum <- h.sum +. v;
    if v < h.min then h.min <- v;
    if v > h.max then h.max <- v;
    Mutex.unlock h.hlock
  end

type hist_summary = {
  hcount : int;
  hsum : float;
  hmin : float;
  hmax : float;
  hp50 : float;
  hp90 : float;
  hp99 : float;
  hbuckets : (float * int) list;
}

let bucket_bound i =
  if i = 0 then 0.0
  else if i = n_buckets - 1 then infinity
  else Float.ldexp 1.0 (i - 1 + emin)

(* Percentile by log-scale interpolation: walk the cumulative counts to
   the bucket holding rank [p * count], then place the value
   geometrically inside the (bound/2, bound] bucket — [bound/2 * 2^f]
   for rank fraction [f], so a bucket fully consumed lands exactly on
   its upper bound.  The edge buckets carry no scale, so the result is
   clamped to the observed [min, max] (which also makes single-valued
   histograms exact). *)
let percentile counts total hmin hmax p =
  if total = 0 then 0.0
  else begin
    let target = p *. float_of_int total in
    let rec go i cum =
      if i >= n_buckets then hmax
      else begin
        let c = counts.(i) in
        let cum' = cum + c in
        if c > 0 && float_of_int cum' >= target then begin
          let raw =
            if i = 0 then hmin
            else if i = n_buckets - 1 then hmax
            else begin
              let f = (target -. float_of_int cum) /. float_of_int c in
              bucket_bound i /. 2.0 *. (2.0 ** f)
            end
          in
          Float.min (Float.max raw hmin) hmax
        end
        else go (i + 1) cum'
      end
    in
    go 0 0
  end

let summary h =
  Mutex.lock h.hlock;
  let pct = percentile h.counts h.count h.min h.max in
  let r =
    { hcount = h.count;
      hsum = h.sum;
      hmin = h.min;
      hmax = h.max;
      hp50 = pct 0.50;
      hp90 = pct 0.90;
      hp99 = pct 0.99;
      hbuckets =
        Array.to_list h.counts
        |> List.mapi (fun i c -> (bucket_bound i, c))
        |> List.filter (fun (_, c) -> c > 0) }
  in
  Mutex.unlock h.hlock;
  r

let counter_value name =
  match with_lock (fun () -> Hashtbl.find_opt registry name) with
  | Some (Counter c) -> Atomic.get c
  | Some (Gauge _ | Histogram _) | None -> 0

let reset () =
  with_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c 0
          | Gauge g -> Atomic.set g 0.0
          | Histogram h ->
            Mutex.lock h.hlock;
            Array.fill h.counts 0 n_buckets 0;
            h.count <- 0;
            h.sum <- 0.0;
            h.min <- infinity;
            h.max <- neg_infinity;
            Mutex.unlock h.hlock)
        registry)

let sorted_metrics () =
  with_lock (fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> compare a b)

type snapshot_item =
  | Scounter of int
  | Sgauge of float
  | Shist of hist_summary

let snapshot () =
  List.map
    (fun (name, m) ->
      match m with
      | Counter c -> (name, Scounter (Atomic.get c))
      | Gauge g -> (name, Sgauge (Atomic.get g))
      | Histogram h -> (name, Shist (summary h)))
    (sorted_metrics ())

let to_json () =
  let open Mcf_util.Json in
  let counters, gauges, histograms =
    List.fold_left
      (fun (cs, gs, hs) (name, m) ->
        match m with
        | Counter c -> ((name, num_of_int (Atomic.get c)) :: cs, gs, hs)
        | Gauge g -> (cs, (name, Num (Atomic.get g)) :: gs, hs)
        | Histogram h ->
          let s = summary h in
          let j =
            Obj
              [ ("count", num_of_int s.hcount);
                ("sum", Num s.hsum);
                ("min", Num (if s.hcount = 0 then 0.0 else s.hmin));
                ("max", Num (if s.hcount = 0 then 0.0 else s.hmax));
                ("p50", Num s.hp50);
                ("p90", Num s.hp90);
                ("p99", Num s.hp99);
                ("buckets",
                 List
                   (List.map
                      (fun (bound, c) ->
                        Obj [ ("le", Num bound); ("count", num_of_int c) ])
                      s.hbuckets)) ]
          in
          (cs, gs, (name, j) :: hs))
      ([], [], [])
      (* fold reverses; the registry dump is sorted ascending, so fold from
         the sorted list and re-reverse each group *)
      (sorted_metrics ())
  in
  Obj
    [ ("counters", Obj (List.rev counters));
      ("gauges", Obj (List.rev gauges));
      ("histograms", Obj (List.rev histograms)) ]

let render_table () =
  let tbl = Mcf_util.Table.create ~headers:[ "metric"; "value" ] in
  let fmt_bound name b =
    if b = infinity then "inf"
    else if Filename.check_suffix name "_s" then Mcf_util.Table.fmt_time_s b
    else Printf.sprintf "%g" b
  in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c ->
        let v = Atomic.get c in
        if v <> 0 then Mcf_util.Table.add_row tbl [ name; string_of_int v ]
      | Gauge g ->
        let v = Atomic.get g in
        if v <> 0.0 then
          Mcf_util.Table.add_row tbl [ name; Printf.sprintf "%.6g" v ]
      | Histogram h ->
        let s = summary h in
        if s.hcount > 0 then begin
          Mcf_util.Table.add_row tbl
            [ name;
              Printf.sprintf "n=%d mean=%s p50=%s p90=%s p99=%s [%s, %s]"
                s.hcount
                (fmt_bound name (s.hsum /. float_of_int s.hcount))
                (fmt_bound name s.hp50) (fmt_bound name s.hp90)
                (fmt_bound name s.hp99) (fmt_bound name s.hmin)
                (fmt_bound name s.hmax) ];
          List.iter
            (fun (bound, c) ->
              Mcf_util.Table.add_row tbl
                [ Printf.sprintf "  <= %s" (fmt_bound name bound);
                  string_of_int c ])
            s.hbuckets
        end)
    (sorted_metrics ());
  Mcf_util.Table.render tbl
