type arg =
  | Str of string
  | Int of int
  | Float of float
  | Bool of bool

type event = {
  name : string;
  path : string list;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * arg) list;
}

let recording = Atomic.make false
let t0 = Atomic.make 0.0
let lock = Mutex.create ()

(* Spans keep a start-order sequence number so that [events] stays in
   start order even when consecutive spans land on the same microsecond
   timestamp. *)
let seq = Atomic.make 0

let buffer : (int * event) list ref = ref []

(* Counter samples ("ph":"C" in the Chrome export) live in their own
   buffer: they carry no duration or ancestry, and interleaving them
   with spans at export time keeps the span path machinery untouched. *)
type counter_event = {
  kname : string;
  kts_us : float;
  ktid : int;
  kvalues : (string * float) list;
}

let counter_buffer : counter_event list ref = ref []

(* Innermost-first stack of enclosing span names, one per domain. *)
let stack_key : string list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let now () = Unix.gettimeofday ()

let enabled () = Atomic.get recording

let active () = enabled () || Profile.enabled ()

let reset () =
  Mutex.lock lock;
  buffer := [];
  counter_buffer := [];
  Mutex.unlock lock

let start () =
  reset ();
  Atomic.set t0 (now ());
  Atomic.set recording true

let stop () = Atomic.set recording false

let events () =
  Mutex.lock lock;
  let es = !buffer in
  Mutex.unlock lock;
  List.sort
    (fun (sa, a) (sb, b) ->
      match Float.compare a.ts_us b.ts_us with
      | 0 -> Int.compare sa sb
      | c -> c)
    es
  |> List.map snd

let no_args () = []

(* Cross-domain span ancestry: a spawned domain starts with an empty
   DLS stack, which would make its spans new roots.  A pipeline stage
   (the streaming enumeration's generator) captures the caller's stack
   and re-seeds its own, so its spans nest where the work logically
   belongs. *)
let ancestry () = !(Domain.DLS.get stack_key)

let with_ancestry stack f =
  let r = Domain.DLS.get stack_key in
  let saved = !r in
  r := stack;
  Fun.protect ~finally:(fun () -> r := saved) f

let counter name values =
  if Atomic.get recording then begin
    let ev =
      { kname = name;
        kts_us = (now () -. Atomic.get t0) *. 1e6;
        ktid = (Domain.self () :> int);
        kvalues = values () }
    in
    Mutex.lock lock;
    counter_buffer := ev :: !counter_buffer;
    Mutex.unlock lock
  end

let counter_events () =
  Mutex.lock lock;
  let es = !counter_buffer in
  Mutex.unlock lock;
  List.sort (fun a b -> Float.compare a.kts_us b.kts_us) es

(* The full span machinery; only reached when [active ()]. *)
let record_span args name f =
  let stack = Domain.DLS.get stack_key in
  let path = List.rev (name :: !stack) in
  stack := name :: !stack;
  let my_seq = Atomic.fetch_and_add seq 1 in
  let begin_s = now () in
  let finish () =
    let dur_s = now () -. begin_s in
    stack := List.tl !stack;
    if Profile.enabled () then Profile.record ~path dur_s;
    if Atomic.get recording then begin
      let ev =
        { name;
          path;
          ts_us = (begin_s -. Atomic.get t0) *. 1e6;
          dur_us = dur_s *. 1e6;
          tid = (Domain.self () :> int);
          args = args () }
      in
      Mutex.lock lock;
      buffer := (my_seq, ev) :: !buffer;
      Mutex.unlock lock
    end;
    dur_s
  in
  let dur = ref 0.0 in
  let r = Fun.protect ~finally:(fun () -> dur := finish ()) f in
  (r, !dur)

let with_span ?(args = no_args) name f =
  if not (active ()) then f () else fst (record_span args name f)

let timed ?(args = no_args) name f =
  if not (active ()) then begin
    let begin_s = now () in
    let r = f () in
    (r, now () -. begin_s)
  end
  else record_span args name f

let observe_timed hist f =
  if not (active ()) then f ()
  else begin
    let begin_s = now () in
    let r = f () in
    Metrics.observe hist (now () -. begin_s);
    r
  end

(* --- export ---------------------------------------------------------------- *)

let json_of_arg = function
  | Str s -> Mcf_util.Json.Str s
  | Int i -> Mcf_util.Json.num_of_int i
  | Float v -> Mcf_util.Json.Num v
  | Bool b -> Mcf_util.Json.Bool b

let to_chrome_json () =
  let open Mcf_util.Json in
  let event_json e =
    let base =
      [ ("name", Str e.name);
        ("cat", Str "mcfuser");
        ("ph", Str "X");
        ("ts", Num e.ts_us);
        ("dur", Num e.dur_us);
        ("pid", num_of_int 1);
        ("tid", num_of_int e.tid) ]
    in
    let args =
      match e.args with
      | [] -> []
      | kvs -> [ ("args", Obj (List.map (fun (k, v) -> (k, json_of_arg v)) kvs)) ]
    in
    Obj (base @ args)
  in
  let counter_json (k : counter_event) =
    Obj
      [ ("name", Str k.kname);
        ("cat", Str "mcfuser");
        ("ph", Str "C");
        ("ts", Num k.kts_us);
        ("pid", num_of_int 1);
        ("tid", num_of_int k.ktid);
        ("args", Obj (List.map (fun (s, v) -> (s, Num v)) k.kvalues)) ]
  in
  Obj
    [ ("traceEvents",
       List
         (List.map event_json (events ())
         @ List.map counter_json (counter_events ())));
      ("displayTimeUnit", Str "ms") ]

let flame () =
  let es = events () in
  let table : (string, string list * int ref * float ref) Hashtbl.t =
    Hashtbl.create 32
  in
  List.iter
    (fun e ->
      let key = String.concat "/" e.path in
      match Hashtbl.find_opt table key with
      | Some (_, count, total) ->
        Stdlib.incr count;
        total := !total +. e.dur_us
      | None -> Hashtbl.add table key (e.path, ref 1, ref e.dur_us))
    es;
  let rows =
    Hashtbl.fold (fun _ (path, c, t) acc -> (path, !c, !t) :: acc) table []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
  in
  let child_total path =
    Mcf_util.Listx.sum_by
      (fun (p, _, t) ->
        if
          List.length p = List.length path + 1
          && Mcf_util.Listx.take (List.length path) p = path
        then t
        else 0.0)
      rows
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun (path, count, total_us) ->
      let depth = List.length path - 1 in
      let name = match List.rev path with last :: _ -> last | [] -> "" in
      let self_us = total_us -. child_total path in
      Buffer.add_string buf
        (Printf.sprintf "%-48s %7d calls  total %10s  self %10s\n"
           (String.make (2 * depth) ' ' ^ name)
           count
           (Mcf_util.Table.fmt_time_s (total_us *. 1e-6))
           (Mcf_util.Table.fmt_time_s (self_us *. 1e-6))))
    rows;
  Buffer.contents buf
