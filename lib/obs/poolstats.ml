let g_domains = Metrics.gauge "pool.domains"
let g_spawned = Metrics.gauge "pool.spawned"
let g_jobs = Metrics.gauge "pool.jobs"
let g_chunks = Metrics.gauge "pool.chunks"
let g_steals = Metrics.gauge "pool.steals"
let g_idle_s = Metrics.gauge "pool.idle_s"

let sync () =
  let s = Mcf_util.Pool.stats () in
  Metrics.set g_domains (float_of_int s.Mcf_util.Pool.domains);
  Metrics.set g_spawned (float_of_int s.spawned);
  Metrics.set g_jobs (float_of_int s.jobs);
  Metrics.set g_chunks (float_of_int s.chunks);
  Metrics.set g_steals (float_of_int s.steals);
  Metrics.set g_idle_s (float_of_int s.idle_ns *. 1e-9)
