let g_domains = Metrics.gauge "pool.domains"
let g_spawned = Metrics.gauge "pool.spawned"
let g_jobs = Metrics.gauge "pool.jobs"
let g_chunks = Metrics.gauge "pool.chunks"
let g_steals = Metrics.gauge "pool.steals"
let g_idle_s = Metrics.gauge "pool.idle_s"
let g_busy = Metrics.gauge "pool.busy"
let g_util = Metrics.gauge "pool.utilization"

let sync () =
  let s = Mcf_util.Pool.stats () in
  Metrics.set g_domains (float_of_int s.Mcf_util.Pool.domains);
  Metrics.set g_spawned (float_of_int s.spawned);
  Metrics.set g_jobs (float_of_int s.jobs);
  Metrics.set g_chunks (float_of_int s.chunks);
  Metrics.set g_steals (float_of_int s.steals);
  Metrics.set g_idle_s (float_of_int s.idle_ns *. 1e-9);
  Metrics.set g_busy (float_of_int s.busy);
  Metrics.set g_util
    (float_of_int s.busy /. float_of_int (max 1 s.domains))
