type loop_kind =
  | Serial
  | Block_binding

type loop = {
  lvar : string;
  laxis : string;
  extent : int;
  step : int;
  kind : loop_kind;
}

type node =
  | For of loop * node list
  | Block of {
      bname : string;
      reads : (string * string list) list;
      writes : (string * string list) list;
      init : bool;
    }

type t = {
  chain : Chain.t;
  roots : node list;
}

let var_of (a : Axis.t) = a.name ^ "_0"

let region_of (ts : Chain.tensor_spec) =
  (ts.tname, List.map var_of ts.taxes)

(* --- of_candidate: the schedule-primitive sequence ------------------------ *)

(* The unhoisted, dead-loop-preserving program is exactly the nest the TVM
   primitives (split / reorder / bind) produce before any memory-access
   optimization runs; converting it keeps the two views in lock step. *)
let of_candidate chain (cand : Candidate.t) =
  let program =
    Program.build ~dead_loop_elim:false ~hoisting:false chain cand
  in
  let block_node (b : Chain.block) ~epilogue =
    if epilogue then
      Block
        { bname = b.Chain.bname ^ "_epilogue";
          reads = [ region_of b.out ];
          writes = [ region_of b.out ];
          init = false }
    else
      Block
        { bname = b.Chain.bname;
          reads = List.map region_of b.ins;
          writes = [ region_of b.out ];
          init = b.reduce_axes <> [] }
  in
  let rec convert (n : Program.node) =
    match n with
    | Program.Loop l ->
      [ For
          ( { lvar = var_of l.laxis;
              laxis = l.laxis.Axis.name;
              extent = l.extent;
              step = Candidate.tile cand l.laxis;
              kind = Serial },
            List.concat_map convert l.body ) ]
    | Program.Stmt (Program.Compute b) -> [ block_node b ~epilogue:false ]
    | Program.Stmt (Program.Epilogue b) -> [ block_node b ~epilogue:true ]
    | Program.Stmt (Program.Load _ | Program.Store _) ->
      [] (* cache reads/writes belong to the later memory pass *)
  in
  let body = List.concat_map convert program.Program.roots in
  let roots =
    List.fold_right
      (fun (a : Axis.t) inner ->
        [ For
            ( { lvar = var_of a;
                laxis = a.name;
                extent = Candidate.trip cand a;
                step = Candidate.tile cand a;
                kind = Block_binding },
              inner ) ])
      program.Program.grid_axes body
  in
  { chain; roots }

(* --- extract: the TIR AST visitor ----------------------------------------- *)

let extract (t : t) =
  let chain = t.chain in
  let axis name = Chain.axis chain name in
  let tiles = Hashtbl.create 8 in
  let rec record = function
    | For (l, body) ->
      Hashtbl.replace tiles l.laxis l.step;
      List.iter record body
    | Block _ -> ()
  in
  List.iter record t.roots;
  (* leading blockIdx-bound loops *)
  let rec split_grid acc nodes =
    match nodes with
    | [ For (l, body) ] when l.kind = Block_binding ->
      split_grid (axis l.laxis :: acc) body
    | _ -> (List.rev acc, nodes)
  in
  let grid, body = split_grid [] t.roots in
  (* a scope with two or more For children is the sequential-group scope of
     a flat expression; otherwise the nest is deep *)
  let rec walk prefix nodes =
    let fors =
      List.filter_map (function For (l, b) -> Some (l, b) | Block _ -> None)
        nodes
    in
    match fors with
    | [] -> `Deep (List.rev prefix)
    | [ (l, b) ] -> walk (axis l.laxis :: prefix) b
    | _ :: _ :: _ ->
      let rec chain_axes (l, b) =
        axis l.laxis
        ::
        (match
           List.filter_map
             (function For (l', b') -> Some (l', b') | Block _ -> None)
             b
         with
        | [ inner ] -> chain_axes inner
        | [] -> []
        | _ -> invalid_arg "Tir.extract: nested sequential scopes")
      in
      let block_names =
        List.map (fun (b : Chain.block) -> b.Chain.bname) chain.blocks
      in
      (* Children are visited in order: each For subtree is one
         sequential group; a compute Block sitting directly in this
         scope is a block whose private serial axes all live in the
         shared prefix — an empty group.  Epilogue blocks (placed here,
         after their group's loop) are not group markers. *)
      let groups =
        List.filter_map
          (function
            | For (l, b) -> Some (chain_axes (l, b))
            | Block { bname; _ } when List.mem bname block_names -> Some []
            | Block _ -> None)
          nodes
      in
      `Flat (List.rev prefix, groups)
  in
  let tiling =
    match walk [] body with
    | `Deep rest -> Tiling.Deep (grid @ rest)
    | `Flat (prefix, groups) ->
      if List.length groups <> List.length chain.blocks then
        invalid_arg
          "Tir.extract: flat nest does not map one group per block";
      Tiling.Flat (grid @ prefix, groups)
  in
  let tile_list =
    List.map
      (fun (a : Axis.t) ->
        match Hashtbl.find_opt tiles a.name with
        | Some s -> (a.name, s)
        | None -> invalid_arg ("Tir.extract: axis without a loop: " ^ a.name))
      chain.axes
  in
  Candidate.make tiling tile_list

(* --- pretty ---------------------------------------------------------------- *)

let pretty (t : t) =
  let buf = Buffer.create 1024 in
  let chain = t.chain in
  Buffer.add_string buf "@T.prim_func\n";
  let args =
    chain.tensors
    |> List.filter (fun (ts : Chain.tensor_spec) ->
           ts.storage <> Chain.Intermediate)
    |> List.map (fun (ts : Chain.tensor_spec) ->
           Printf.sprintf "%s: T.Buffer[(%s), \"float16\"]" ts.tname
             (String.concat ", "
                (List.map
                   (fun (a : Axis.t) -> string_of_int a.size)
                   ts.taxes)))
  in
  Buffer.add_string buf
    (Printf.sprintf "def %s(%s):\n" chain.cname (String.concat ", " args));
  let rec emit indent nodes =
    let pad = String.make indent ' ' in
    List.iter
      (function
        | For (l, body) ->
          let header =
            match l.kind with
            | Block_binding ->
              Printf.sprintf "%sfor %s in T.thread_binding(%d, \"blockIdx.x\"):"
                pad l.lvar l.extent
            | Serial ->
              Printf.sprintf "%sfor %s in T.serial(%d):" pad l.lvar l.extent
          in
          Buffer.add_string buf (header ^ "\n");
          emit (indent + 4) body
        | Block { bname; reads; writes; init } ->
          Buffer.add_string buf
            (Printf.sprintf "%swith T.block(\"%s\"):\n" pad bname);
          let region (name, vars) =
            Printf.sprintf "%s[%s]" name (String.concat ", " vars)
          in
          Buffer.add_string buf
            (Printf.sprintf "%s    T.reads(%s)\n" pad
               (String.concat ", " (List.map region reads)));
          Buffer.add_string buf
            (Printf.sprintf "%s    T.writes(%s)\n" pad
               (String.concat ", " (List.map region writes)));
          if init then
            Buffer.add_string buf
              (Printf.sprintf "%s    with T.init(): ...\n" pad);
          Buffer.add_string buf (Printf.sprintf "%s    ...\n" pad))
      nodes
  in
  emit 4 t.roots;
  Buffer.contents buf

let loop_count (t : t) =
  let rec count = function
    | For (_, body) -> 1 + List.fold_left (fun acc n -> acc + count n) 0 body
    | Block _ -> 0
  in
  List.fold_left (fun acc n -> acc + count n) 0 t.roots
