(** Lowering: from a placed program to cost-model inputs and simulator
    kernels.

    Every quantity the paper's analysis needs is derived here from
    statement paths and trip counts:

    - data movement per memory statement = tile size x trip count of the
      surrounding loops (§III-B / eq. (3));
    - compute per block statement = tile FLOPs x trip count (eq. (4)),
      which also captures the redundant-computation cost Chimera's model
      neglects;
    - shared-memory residency per tensor, with the Rule-2 multiplier for
      partial-result tiles;
    - thread-block count for the slowdown factor (eq. (5)). *)

type direction = Dload | Dstore

type access = {
  tensor : Chain.tensor_spec;
  direction : direction;
  tile_elems : int;  (** Elements moved per execution (incl. residency). *)
  trips : int;  (** Executions per thread block. *)
  row_elems : int;  (** Contiguous innermost run, for coalescing. *)
}

type compute_info = {
  block : Chain.block;
  kind : [ `Contraction | `Epilogue ];
  flops_per_exec : float;
  ctrips : int;
  tile_m : int;
  tile_n : int;
  tile_k : int;
}

type residency_item = {
  rtensor : Chain.tensor_spec;
  tile_bytes : int;  (** One tile, in bytes. *)
  mult : int;  (** Simultaneously-resident tiles (Rule 2 analysis). *)
  double_buffered : bool;
      (** Input tiles streamed inside a loop get pipelined staging buffers
          in real code generation. *)
}

type t = {
  program : Program.t;
  elem_bytes : int;
  blocks : int;
  accesses : access list;
  computes : compute_info list;
  residency : residency_item list;
  online_softmax : bool;
  stmt_trips_total : int;
  validity : (unit, Program.invalid) result;
}

val lower :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  elem_bytes:int ->
  Chain.t ->
  Candidate.t ->
  t
(** Build, optimize and account a candidate.  The switches mirror
    {!Program.build}. *)

val calls : unit -> int
(** Process-wide cumulative {!lower} invocation count.  The analytic fast
    path exists so lowering runs only for measured/codegen candidates;
    tests assert that by diffing this counter around a tune. *)

val of_program : elem_bytes:int -> Program.t -> t
(** Account an already-built program. *)

val bytes_per_block : t -> float
(** Global-memory traffic of one thread block. *)

val total_traffic_bytes : t -> float
(** Traffic across the grid (no L2 discount). *)

val flops_per_block : t -> float

val to_kernel : t -> smem_bytes:int -> Mcf_gpu.Kernel.t
(** Package for the simulator; [smem_bytes] comes from the code
    generator's allocator (see [Mcf_codegen.Alloc]). *)
