type t = {
  tiling : Tiling.t;
  tiles : (string * int) list;
}

let make tiling tiles =
  let tiles =
    List.sort (fun (a, _) (b, _) -> String.compare a b) tiles
  in
  { tiling; tiles }

let tile t (a : Axis.t) = List.assoc a.name t.tiles

let trip t (a : Axis.t) =
  let tl = tile t a in
  (a.size + tl - 1) / tl

let padded_size t a = trip t a * tile t a

let padding_ratio t (a : Axis.t) =
  float_of_int (padded_size t a - a.size) /. float_of_int a.size

let tile_options ?(min_tile = 16) size =
  if size <= min_tile then [ size ]
  else begin
    let rec collect acc v =
      if v > size then List.rev acc else collect (v :: acc) (v + min_tile)
    in
    let multiples = collect [] min_tile in
    if List.mem size multiples then multiples else multiples @ [ size ]
  end

let to_string t =
  let tiles =
    t.tiles
    |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
    |> String.concat " "
  in
  Printf.sprintf "%s {%s}" (Tiling.to_string t.tiling) tiles

(* The schedule-cache line format, predating this function: kind-tagged
   axis-name lists for the tiling, then the sorted tile vector.  Changing
   it would orphan every cache file already on disk. *)
let serialize t =
  let names axes =
    String.concat "," (List.map (fun (a : Axis.t) -> a.name) axes)
  in
  let tiling =
    match t.tiling with
    | Tiling.Deep axes -> "deep:" ^ names axes
    | Tiling.Flat (prefix, groups) ->
      "flat:" ^ names prefix ^ "/"
      ^ String.concat "/" (List.map names groups)
  in
  let tiles =
    t.tiles
    |> List.map (fun (n, v) -> Printf.sprintf "%s=%d" n v)
    |> String.concat ","
  in
  tiling ^ ";" ^ tiles

let key = to_string

let equal a b = String.equal (key a) (key b)

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* A process-local intern table mapping candidate keys to dense integer
   ids (0, 1, 2, ... in first-intern order).  Search loops that index
   thousands of candidates per generation pay one string hash at intern
   time and plain int indexing everywhere after. *)
module Interner = struct
  type candidate = t
  type t = { tbl : (string, int) Hashtbl.t; mutable next : int }

  let create n = { tbl = Hashtbl.create (max 16 n); next = 0 }

  let intern it (c : candidate) =
    let k = key c in
    match Hashtbl.find_opt it.tbl k with
    | Some id -> id
    | None ->
      let id = it.next in
      it.next <- id + 1;
      Hashtbl.add it.tbl k id;
      id

  let find it (c : candidate) = Hashtbl.find_opt it.tbl (key c)
  let size it = it.next
end
