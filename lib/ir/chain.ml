type storage = Input | Intermediate | Output

type tensor_spec = {
  tname : string;
  taxes : Axis.t list;
  storage : storage;
}

type epilogue =
  | No_epilogue
  | Scale of float
  | Softmax of { saxis : Axis.t; sscale : float }
  | Unary of { uname : string; apply : float -> float; uflops : float }

type block = {
  bname : string;
  out : tensor_spec;
  ins : tensor_spec list;
  reduce_axes : Axis.t list;
  epilogue : epilogue;
}

type t = {
  cname : string;
  axes : Axis.t list;
  batch : int;
  blocks : block list;
  tensors : tensor_spec list;
}

let used_axes b =
  b.out.taxes @ List.filter (fun a -> not (Axis.mem a b.out.taxes)) b.reduce_axes

let gemm_chain ?(batch = 1) ~m ~n ~k ~h () =
  let am = Axis.spatial "m" m in
  let an = Axis.reduce "n" n in
  let ak = Axis.reduce "k" k in
  let ah = Axis.spatial "h" h in
  let ta = { tname = "A"; taxes = [ am; ak ]; storage = Input } in
  let tb = { tname = "B"; taxes = [ ak; an ]; storage = Input } in
  let tc = { tname = "C"; taxes = [ am; an ]; storage = Intermediate } in
  let td = { tname = "D"; taxes = [ an; ah ]; storage = Input } in
  let te = { tname = "E"; taxes = [ am; ah ]; storage = Output } in
  { cname = Printf.sprintf "gemm_chain_b%d_m%d_n%d_k%d_h%d" batch m n k h;
    axes = [ am; an; ak; ah ];
    batch;
    blocks =
      [ { bname = "C"; out = tc; ins = [ ta; tb ]; reduce_axes = [ ak ];
          epilogue = No_epilogue };
        { bname = "E"; out = te; ins = [ tc; td ]; reduce_axes = [ an ];
          epilogue = No_epilogue } ];
    tensors = [ ta; tb; tc; td; te ] }

let attention ?(heads = 1) ~m ~n ~k ~h () =
  let am = Axis.spatial "m" m in
  let an = Axis.reduce "n" n in
  let ak = Axis.reduce "k" k in
  let ah = Axis.spatial "h" h in
  let tq = { tname = "Q"; taxes = [ am; ak ]; storage = Input } in
  (* K is stored transposed ([k; n]) so the first contraction reads it like
     the B operand of a GEMM; this matches how attention kernels consume
     K^T and keeps the traffic model uniform. *)
  let tk = { tname = "K"; taxes = [ ak; an ]; storage = Input } in
  let ts = { tname = "S"; taxes = [ am; an ]; storage = Intermediate } in
  let tv = { tname = "V"; taxes = [ an; ah ]; storage = Input } in
  let to_ = { tname = "O"; taxes = [ am; ah ]; storage = Output } in
  { cname = Printf.sprintf "attention_h%d_m%d_n%d_k%d_h%d" heads m n k h;
    axes = [ am; an; ak; ah ];
    batch = heads;
    blocks =
      [ { bname = "S"; out = ts; ins = [ tq; tk ]; reduce_axes = [ ak ];
          epilogue = Softmax { saxis = an; sscale = 1.0 /. sqrt (float_of_int k) } };
        { bname = "O"; out = to_; ins = [ ts; tv ]; reduce_axes = [ an ];
          epilogue = No_epilogue } ];
    tensors = [ tq; tk; ts; tv; to_ ] }

let gemm_chain3 ?(batch = 1) ~m ~n ~k ~h ~p () =
  let am = Axis.spatial "m" m in
  let an = Axis.reduce "n" n in
  let ak = Axis.reduce "k" k in
  let ah = Axis.reduce "h" h in
  let ap = Axis.spatial "p" p in
  let ta = { tname = "A"; taxes = [ am; ak ]; storage = Input } in
  let tb = { tname = "B"; taxes = [ ak; an ]; storage = Input } in
  let tc = { tname = "C"; taxes = [ am; an ]; storage = Intermediate } in
  let td = { tname = "D"; taxes = [ an; ah ]; storage = Input } in
  let te = { tname = "E"; taxes = [ am; ah ]; storage = Intermediate } in
  let tf = { tname = "F"; taxes = [ ah; ap ]; storage = Input } in
  let tg = { tname = "G"; taxes = [ am; ap ]; storage = Output } in
  { cname =
      Printf.sprintf "gemm_chain3_b%d_m%d_n%d_k%d_h%d_p%d" batch m n k h p;
    axes = [ am; an; ak; ah; ap ];
    batch;
    blocks =
      [ { bname = "C"; out = tc; ins = [ ta; tb ]; reduce_axes = [ ak ];
          epilogue = No_epilogue };
        { bname = "E"; out = te; ins = [ tc; td ]; reduce_axes = [ an ];
          epilogue = No_epilogue };
        { bname = "G"; out = tg; ins = [ te; tf ]; reduce_axes = [ ah ];
          epilogue = No_epilogue } ];
    tensors = [ ta; tb; tc; td; te; tf; tg ] }

let gemm_chain_n ?(batch = 1) ~m ~dims () =
  let b = List.length dims - 1 in
  if b < 1 then invalid_arg "gemm_chain_n: dims must list at least two sizes";
  let am = Axis.spatial "m" m in
  let dims = Array.of_list dims in
  (* Axis x_i carries dimension dims.(i): x_0 .. x_{B-1} are contracted
     away by blocks 1..B, x_B survives into the final output. *)
  let ax =
    Array.init (b + 1) (fun i ->
        let name = Printf.sprintf "x%d" i in
        if i = b then Axis.spatial name dims.(i) else Axis.reduce name dims.(i))
  in
  let t0 = { tname = "T0"; taxes = [ am; ax.(0) ]; storage = Input } in
  let weights =
    Array.init b (fun i ->
        { tname = Printf.sprintf "W%d" (i + 1);
          taxes = [ ax.(i); ax.(i + 1) ];
          storage = Input })
  in
  let outs =
    Array.init b (fun i ->
        { tname = Printf.sprintf "T%d" (i + 1);
          taxes = [ am; ax.(i + 1) ];
          storage = (if i = b - 1 then Output else Intermediate) })
  in
  let blocks =
    List.init b (fun i ->
        { bname = outs.(i).tname;
          out = outs.(i);
          ins = [ (if i = 0 then t0 else outs.(i - 1)); weights.(i) ];
          reduce_axes = [ ax.(i) ];
          epilogue = No_epilogue })
  in
  { cname =
      Printf.sprintf "gemm_chain_n%d_b%d_m%d_d%s" b batch m
        (String.concat "x" (List.map string_of_int (Array.to_list dims)));
    axes = am :: Array.to_list ax;
    batch;
    blocks;
    tensors =
      (t0 :: Array.to_list weights) @ Array.to_list outs;
  }

let gelu =
  let c = sqrt (2.0 /. Float.pi) in
  fun x -> 0.5 *. x *. (1.0 +. tanh (c *. (x +. (0.044715 *. x *. x *. x))))

let mlp_chain ?(batch = 1) ~m ~n ~k ~h () =
  let base = gemm_chain ~batch ~m ~n ~k ~h () in
  let act = Unary { uname = "gelu"; apply = gelu; uflops = 10.0 } in
  let blocks =
    List.map
      (fun b -> if b.bname = "C" then { b with epilogue = act } else b)
      base.blocks
  in
  { base with
    cname = Printf.sprintf "mlp_chain_b%d_m%d_n%d_k%d_h%d" batch m n k h;
    blocks }

let conv_pointwise_chain ?(batch = 1) ~height ~width ~c_in ~c_mid ~c_out
    ~ksize () =
  let ho = height - ksize + 1 and wo = width - ksize + 1 in
  if ho <= 0 || wo <= 0 then
    invalid_arg "conv_pointwise_chain: kernel larger than input";
  let base =
    gemm_chain ~batch ~m:(ho * wo) ~n:c_mid ~k:(c_in * ksize * ksize) ~h:c_out
      ()
  in
  { base with
    cname =
      Printf.sprintf "conv_chain_b%d_%dx%d_ci%d_cm%d_co%d_k%d" batch height
        width c_in c_mid c_out ksize }

let private_axes t b =
  let other_blocks = List.filter (fun b' -> b'.bname <> b.bname) t.blocks in
  List.filter
    (fun a ->
      Axis.mem a (used_axes b)
      && not (List.exists (fun b' -> Axis.mem a (used_axes b')) other_blocks))
    t.axes

let shared_axes t =
  List.filter
    (fun a ->
      let users =
        List.filter (fun b -> Axis.mem a (used_axes b)) t.blocks
      in
      List.length users >= 2)
    t.axes

let producer_of t spec =
  List.find_opt (fun b -> b.out.tname = spec.tname) t.blocks

let consumers_of t spec =
  List.filter
    (fun b -> List.exists (fun i -> i.tname = spec.tname) b.ins)
    t.blocks

let is_linear_through _t b =
  match b.epilogue with
  | No_epilogue | Scale _ -> true
  | Softmax _ | Unary _ -> false

let output_tensor t =
  List.find (fun ts -> ts.storage = Output) t.tensors

let input_tensors t =
  List.filter (fun ts -> ts.storage = Input) t.tensors

let total_flops t =
  let per_block b =
    let extents =
      List.fold_left (fun acc a -> acc *. float_of_int a.Axis.size) 1.0
        (used_axes b)
    in
    2.0 *. extents
  in
  float_of_int t.batch *. Mcf_util.Listx.sum_by per_block t.blocks

let min_traffic_bytes t ~elem_bytes =
  let tensor_bytes ts =
    let elems =
      List.fold_left (fun acc a -> acc *. float_of_int a.Axis.size) 1.0 ts.taxes
    in
    elems *. float_of_int elem_bytes
  in
  let io =
    List.filter (fun ts -> ts.storage <> Intermediate) t.tensors
  in
  float_of_int t.batch *. Mcf_util.Listx.sum_by tensor_bytes io

let unfused_traffic_bytes t ~elem_bytes =
  let tensor_bytes ts =
    let elems =
      List.fold_left (fun acc a -> acc *. float_of_int a.Axis.size) 1.0 ts.taxes
    in
    elems *. float_of_int elem_bytes
  in
  let intermediates =
    List.filter (fun ts -> ts.storage = Intermediate) t.tensors
  in
  min_traffic_bytes t ~elem_bytes
  +. (2.0 *. float_of_int t.batch
     *. Mcf_util.Listx.sum_by tensor_bytes intermediates)

let axis t name = Axis.find name t.axes

let validate t =
  let ( let* ) r f = Result.bind r f in
  let unique_names l =
    List.length l = List.length (Mcf_util.Listx.dedup ~compare:String.compare l)
  in
  let* () =
    if unique_names (List.map (fun a -> a.Axis.name) t.axes) then Ok ()
    else Error "duplicate axis names"
  in
  let* () =
    if unique_names (List.map (fun ts -> ts.tname) t.tensors) then Ok ()
    else Error "duplicate tensor names"
  in
  let* () =
    if t.batch >= 1 then Ok () else Error "batch must be >= 1"
  in
  let* () =
    match List.filter (fun ts -> ts.storage = Output) t.tensors with
    | [ _ ] -> Ok ()
    | _ -> Error "chain must have exactly one output tensor"
  in
  (* Every intermediate/output tensor must be written by exactly one block,
     and producers must precede consumers. *)
  let block_index b =
    match
      Mcf_util.Listx.index_of (fun b' -> b'.bname = b.bname) t.blocks
    with
    | Some i -> i
    | None -> -1
  in
  let check_tensor acc ts =
    let* () = acc in
    match ts.storage with
    | Input ->
      if producer_of t ts = None then Ok ()
      else Error (ts.tname ^ ": input tensor has a producer")
    | Intermediate | Output -> (
      match producer_of t ts with
      | None -> Error (ts.tname ^ ": no producer block")
      | Some p ->
        let late_consumers =
          List.for_all
            (fun c -> block_index c > block_index p)
            (consumers_of t ts)
        in
        if late_consumers then Ok ()
        else Error (ts.tname ^ ": consumed before produced"))
  in
  let* () = List.fold_left check_tensor (Ok ()) t.tensors in
  (* Axis roles: spatial iff the axis indexes the final output. *)
  let out = output_tensor t in
  let role_ok a =
    if Axis.mem a out.taxes then Axis.is_spatial a else Axis.is_reduce a
  in
  if List.for_all role_ok t.axes then Ok ()
  else Error "axis roles inconsistent with output tensor"

(* Structural content identity for cache keys: everything a lowering (and
   hence a measurement) depends on — axis names, sizes and roles, the
   flattened batch, and each block's tensors, reduction axes and epilogue
   including its constants (a [Unary]'s closure is identified by its
   [uname]/[uflops]).  Unlike [pp] this is exhaustive: chains differing
   only in an epilogue constant get distinct fingerprints. *)
let fingerprint t =
  let b = Buffer.create 256 in
  let axis (a : Axis.t) =
    Buffer.add_string b a.name;
    Buffer.add_char b ':';
    Buffer.add_string b (string_of_int a.size);
    Buffer.add_string b (if Axis.is_spatial a then "s" else "r")
  in
  let axes l =
    List.iter
      (fun a ->
        axis a;
        Buffer.add_char b ',')
      l
  in
  let tensor ts =
    Buffer.add_string b ts.tname;
    Buffer.add_char b '[';
    axes ts.taxes;
    Buffer.add_char b ']';
    Buffer.add_string b
      (match ts.storage with
      | Input -> "i"
      | Intermediate -> "t"
      | Output -> "o")
  in
  Buffer.add_string b t.cname;
  Buffer.add_char b '#';
  Buffer.add_string b (string_of_int t.batch);
  Buffer.add_char b '#';
  axes t.axes;
  List.iter
    (fun blk ->
      Buffer.add_char b '|';
      Buffer.add_string b blk.bname;
      Buffer.add_char b '=';
      tensor blk.out;
      Buffer.add_char b '(';
      List.iter
        (fun ts ->
          tensor ts;
          Buffer.add_char b ',')
        blk.ins;
      Buffer.add_string b ")/";
      axes blk.reduce_axes;
      Buffer.add_string b
        (match blk.epilogue with
        | No_epilogue -> "-"
        | Scale c -> Printf.sprintf "scale:%h" c
        | Softmax { saxis; sscale } ->
          Printf.sprintf "softmax:%s:%h" saxis.Axis.name sscale
        | Unary { uname; uflops; _ } ->
          Printf.sprintf "unary:%s:%h" uname uflops))
    t.blocks;
  Buffer.contents b

let pp ppf t =
  Format.fprintf ppf "chain %s (batch %d): axes" t.cname t.batch;
  List.iter (fun a -> Format.fprintf ppf " %a" Axis.pp a) t.axes;
  List.iter
    (fun b ->
      Format.fprintf ppf "; %s = contract(%s)" b.out.tname
        (String.concat ", " (List.map (fun i -> i.tname) b.ins)))
    t.blocks
