(** MBCI operator chains.

    A chain is a straight-line sequence of contraction blocks where each
    block may consume the previous block's output (kept in shared memory by
    fusion) plus fresh inputs from global memory.  Memory-intensive
    epilogues (softmax, scaling) between blocks are fused following standard
    practice (§III-A); softmax additionally constrains valid schedules
    because it is non-linear in the producer's reduction. *)

type storage = Input | Intermediate | Output

type tensor_spec = {
  tname : string;
  taxes : Axis.t list;  (** Layout order; the last axis is contiguous. *)
  storage : storage;
}

type epilogue =
  | No_epilogue
  | Scale of float  (** out := c * out. *)
  | Softmax of { saxis : Axis.t; sscale : float }
      (** Numerically-stable softmax of [sscale * out] over [saxis], applied
          after the block's reduction completes; when the axis is tiled the
          schedule must use online-softmax rescaling. *)
  | Unary of { uname : string; apply : float -> float; uflops : float }
      (** A non-linear per-element activation (GELU, ReLU, ...) applied
          after the block's reduction completes.  Like softmax it forbids
          consuming the producer inside its own reduction loops, but needs
          no running statistics. *)

type block = {
  bname : string;
  out : tensor_spec;
  ins : tensor_spec list;
  reduce_axes : Axis.t list;
  epilogue : epilogue;
}

type t = {
  cname : string;
  axes : Axis.t list;  (** All cross-tile axes, in declaration order. *)
  batch : int;  (** Flattened batch (batch x heads); a pure grid dimension. *)
  blocks : block list;  (** Producer-before-consumer order. *)
  tensors : tensor_spec list;
}

val gemm_chain : ?batch:int -> m:int -> n:int -> k:int -> h:int -> unit -> t
(** C = A x B; E = C x D (Fig. 3).  A:\[m,k\] B:\[k,n\] D:\[n,h\] E:\[m,h\]. *)

val attention : ?heads:int -> m:int -> n:int -> k:int -> h:int -> unit -> t
(** S = Q x K^T / sqrt(k); P = softmax_n(S); O = P x V.  Matches the
    self-attention modules of Table III. *)

val gemm_chain3 :
  ?batch:int -> m:int -> n:int -> k:int -> h:int -> p:int -> unit -> t
(** Three-GEMM chain G = ((A x B) x D) x F — the "more compute-intensive
    operators" extension of §III-A. *)

val gemm_chain_n : ?batch:int -> m:int -> dims:int list -> unit -> t
(** Linear GEMM chain of [length dims - 1] blocks:
    [T_i = T_{i-1} x W_i] with [T_0 : m x dims0] an input and every
    [W_i : dims_{i-1} x dims_i].  Axis [m] and the last [x_B] are
    spatial; every interior [x_i] is contracted by block [i+1].  This is
    the deep-chain (5–8 block) workload family the streaming enumeration
    is built for.
    @raise Invalid_argument when [dims] has fewer than two entries. *)

val mlp_chain : ?batch:int -> m:int -> n:int -> k:int -> h:int -> unit -> t
(** MLP block E = gelu(A x B) x D — a unary non-linear epilogue between the
    contractions (the "broader array of operators" direction of §VII). *)

val conv_pointwise_chain :
  ?batch:int ->
  height:int ->
  width:int ->
  c_in:int ->
  c_mid:int ->
  c_out:int ->
  ksize:int ->
  unit ->
  t
(** Conv(k x k) followed by a pointwise (1 x 1) convolution, expressed via
    the im2col GEMM mapping: m = output pixels, k = c_in * ksize^2,
    n = c_mid, h = c_out.  Small channel counts make these chains
    memory-bound — the CNN face of MBCI fusion (cf. the cross-layer reuse
    line of work cited in §VII). *)

val used_axes : block -> Axis.t list
(** Output axes plus reduce axes of the block (every loop the block's
    compute statement depends on). *)

val private_axes : t -> block -> Axis.t list
(** Axes used by this block and by no other block (the sequential-group
    axes of flat tiling). *)

val shared_axes : t -> Axis.t list
(** Axes used by at least two blocks (the common prefix of flat tiling). *)

val producer_of : t -> tensor_spec -> block option
(** The block writing this tensor, when it is not a chain input. *)

val consumers_of : t -> tensor_spec -> block list

val is_linear_through : t -> block -> bool
(** True when the given producer's output may be consumed before its
    reduction completes without changing the result (i.e. its epilogue is
    linear) — the legality condition for schedules that interleave a
    consumer inside the producer's reduction loop. *)

val output_tensor : t -> tensor_spec

val input_tensors : t -> tensor_spec list

val total_flops : t -> float
(** Contraction FLOPs of the whole chain (2 x prod of axis extents per
    block, times batch), ignoring epilogues. *)

val min_traffic_bytes : t -> elem_bytes:int -> float
(** Compulsory traffic: read every input once, write the output once —
    the lower bound a perfectly fused kernel approaches. *)

val unfused_traffic_bytes : t -> elem_bytes:int -> float
(** Traffic of per-operator execution: the compulsory bytes plus every
    intermediate written and read back through global memory.  The ratio
    [total_flops / unfused_traffic_bytes] against the device roofline is
    the MBCI test of §II-A. *)

val axis : t -> string -> Axis.t
(** @raise Not_found on unknown axis name. *)

val validate : t -> (unit, string) result
(** Structural sanity: unique names, tensors consistent with blocks,
    producer order, axis roles consistent with usage. *)

val fingerprint : t -> string
(** Exhaustive structural identity — axes (name, size, role), batch,
    every block's tensors, reduction axes and epilogue constants — for
    content-addressed cache keys.  Two chains share a fingerprint iff
    they lower identically for every candidate. *)

val pp : Format.formatter -> t -> unit
