(** Tiling expressions (§III-A).

    A tiling expression fixes the structure of the cross-tile loops of a
    fused kernel.  Loops are either nested ([l_j l_i]: [l_i] runs inside
    [l_j]) or sequential ([(l_j, l_i)]: siblings in the same scope).  The
    paper partitions expressions into two families:

    - {b deep tiling}: every pair of loops is nested — one permutation of
      all axes, e.g. [mhnk];
    - {b flat tiling}: a nested prefix of the axes shared between blocks,
      followed by per-block sequential groups of their private axes, e.g.
      [mn(k,h)].

    Chimera's search space is exactly the deep family; including the flat
    family is one of MCFuser's contributions. *)

type t =
  | Deep of Axis.t list  (** Permutation of all chain axes. *)
  | Flat of Axis.t list * Axis.t list list
      (** [Flat (prefix, groups)]: nested shared prefix, then one
          sequential group per block (in block order), each group itself
          nested. *)

val to_string : t -> string
(** Paper notation: ["mhnk"], ["mn(k,h)"]. *)

val axes : t -> Axis.t list
(** All axes, outermost first; sequential groups flattened in order. *)

val enumerate_deep : Chain.t -> t list
(** All permutations of the chain's axes. *)

val enumerate_flat : Chain.t -> t list
(** All flat expressions: permutations of the shared-axis prefix crossed
    with permutations inside each block's private group.  Empty when some
    block has no private axis to separate (flat tiling degenerates to
    deep). *)

val enumerate : Chain.t -> t list
(** Deep then flat — the complete structural search space. *)

val seq : Chain.t -> t Seq.t
(** Lazy [enumerate]: the same expressions in the same order, produced
    on demand.  The streaming enumeration pipeline pulls from this so a
    5–8-block chain's n! deep family never has to be resident. *)

val seq_deep : Chain.t -> t Seq.t
(** Lazy [enumerate_deep]. *)

val seq_flat : Chain.t -> t Seq.t
(** Lazy [enumerate_flat]. *)

val count : Chain.t -> int
(** [List.length (enumerate chain)] in closed form (n! for the deep
    family plus the flat product), without materializing anything. *)

val is_flat : t -> bool

val sub_tiling : Chain.t -> t -> t
(** Rule 1 canonical form: remove the spatial loops (they are bound to
    [blockIdx]); candidates sharing a sub-tiling expression describe the
    same per-thread-block program. *)

val equal : t -> t -> bool
(** Structural equality (axes compared by name). *)

val pp : Format.formatter -> t -> unit
