(** Placed tensor programs: the loop/statement tree of one thread block.

    Lowering a {!Candidate.t} proceeds exactly as in §III:

    + spatial loops are bound to [blockIdx] (Rule 1's canonical execution;
      for flat tiling only prefix spatial loops may be hoisted to the grid —
      group loops express deliberate within-block sequencing);
    + the remaining loops form the per-block tree; loops whose cross-tile
      trip count is 1 are {e dead} and removed when [dead_loop_elim] is on
      (the optimization Ansor and Chimera miss, Fig. 4(b));
    + each block's Compute is placed at its rightmost related loop, Loads
      immediately before it, the Store after its producer finishes, and
      epilogues (softmax) at the scope where the producer's reduction is
      complete;
    + the hoisting pass moves every memory statement outward past loops
      whose variable does not index its tensor (the DAG scope-dependency
      analysis of Fig. 5).

    The result is a faithful executable structure: the interpreter runs it
    on real tensors, and the accounting in {!Lower} derives traffic, FLOPs
    and residency from statement paths and trip counts. *)

type stmt =
  | Load of Chain.tensor_spec * Chain.block  (** tensor, consuming block *)
  | Store of Chain.tensor_spec * Chain.block  (** tensor, producing block *)
  | Compute of Chain.block
  | Epilogue of Chain.block

type node = Loop of loop | Stmt of stmt

and loop = {
  laxis : Axis.t;
  extent : int;  (** Cross-tile trip count, ceil(size/tile). *)
  group : int option;  (** Flat-tiling sequential group this loop belongs to. *)
  mutable body : node list;
}

type t = {
  chain : Chain.t;
  cand : Candidate.t;
  grid_axes : Axis.t list;  (** Loops bound to blockIdx, outermost first. *)
  mutable roots : node list;  (** The per-thread-block program. *)
}

type invalid =
  | Nonlinear_partial_consume of { producer : string; loop : string }
      (** A softmax producer's value is consumed inside one of its own
          reduction loops: the partial sums are not yet normalizable. *)
  | Blind_epilogue of { producer : string; axis : string }
      (** The epilogue sits outside a live (trip > 1) loop over one of its
          output-tile axes, so it would only ever touch the tile at
          coordinate 0 of that axis and leave the others untransformed. *)
  | Consumed_before_epilogue of { producer : string; consumer : string }
      (** A consumer's Compute statically precedes the producer's
          epilogue, so it would read pre-epilogue values. *)
  | Consumed_before_produced of { producer : string; consumer : string }
      (** A consumer's Compute statically precedes its producer's Compute:
          the tiling order nests the producer's scope after a loop the
          consumer must descend into, so no interleaving of the fixed
          nest runs the producer first. *)

val build :
  ?rule1:bool ->
  ?dead_loop_elim:bool ->
  ?hoisting:bool ->
  Chain.t ->
  Candidate.t ->
  t
(** Full pipeline with each paper optimization on a switch (all default
    [true]); the switches feed the ablation experiments and the
    Ansor/Chimera-style baselines. *)

val validate : t -> (unit, invalid) result

val placed_stmts : t -> (Axis.t list * stmt) list
(** Every statement with its surrounding in-block loops (outermost first),
    in execution order. *)

val stmt_trips : t -> stmt -> int
(** Product of the surrounding loops' extents — how many times per thread
    block the statement runs. @raise Not_found when absent. *)

val grid_blocks : t -> int
(** Thread blocks launched: batch x prod of grid-axis trip counts. *)

val online_softmax : t -> bool
(** True when a softmax axis is tiled, forcing online rescaling. *)

val residency_multiplier : t -> Chain.tensor_spec -> int
(** Number of tiles of this (non-input) tensor that must be resident in
    shared memory simultaneously: > 1 exactly in the Rule-2 situations of
    Fig. 6 (an axis of the tensor iterating inside the producer's
    reduction loop). *)

val stmt_to_string : stmt -> string

val to_string : t -> string
(** Pseudo-code rendering in the style of Fig. 4. *)

val string_of_invalid : invalid -> string

val dag_edges : t -> (string * string) list
(** The DAG view of Fig. 5: scope-dependency edges [loop -> stmt] and
    order-dependency edges [stmt -> stmt], for inspection and tests. *)

val to_dot : t -> string
(** Graphviz rendering of the Fig. 5 DAG: box nodes for loops, ellipses
    for statements, solid edges for scope dependencies and dashed edges
    for order dependencies. *)
