type direction = Dload | Dstore

type access = {
  tensor : Chain.tensor_spec;
  direction : direction;
  tile_elems : int;
  trips : int;
  row_elems : int;
}

type compute_info = {
  block : Chain.block;
  kind : [ `Contraction | `Epilogue ];
  flops_per_exec : float;
  ctrips : int;
  tile_m : int;
  tile_n : int;
  tile_k : int;
}

type residency_item = {
  rtensor : Chain.tensor_spec;
  tile_bytes : int;
  mult : int;
  double_buffered : bool;
}

type t = {
  program : Program.t;
  elem_bytes : int;
  blocks : int;
  accesses : access list;
  computes : compute_info list;
  residency : residency_item list;
  online_softmax : bool;
  stmt_trips_total : int;
  validity : (unit, Program.invalid) result;
}

let tile_elems cand (ts : Chain.tensor_spec) =
  List.fold_left (fun acc a -> acc * Candidate.tile cand a) 1 ts.taxes

let row_elems cand (ts : Chain.tensor_spec) =
  match List.rev ts.taxes with
  | [] -> 1
  | last :: _ -> Candidate.tile cand last

let path_trips cand path =
  List.fold_left (fun acc a -> acc * Candidate.trip cand a) 1 path

(* CUDA-core (non-tensor-core) epilogue work is priced by inflating its
   FLOP count: vector pipes run at roughly 1/8 of the MMA peak. *)
let cuda_core_penalty = 8.0

let softmax_flops_per_elem = 6.0
let online_rescale_flops_per_elem = 3.0
let scale_flops_per_elem = 1.0

let contraction_flops cand (b : Chain.block) =
  let extents =
    List.fold_left
      (fun acc a -> acc *. float_of_int (Candidate.tile cand a))
      1.0 (Chain.used_axes b)
  in
  2.0 *. extents

let mma_tiles cand (b : Chain.block) =
  let m, n =
    match b.out.taxes with
    | [ a ] -> (Candidate.tile cand a, 1)
    | a1 :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      (Candidate.tile cand a1, Candidate.tile cand last)
    | [] -> (1, 1)
  in
  let k =
    match b.reduce_axes with
    | a :: _ -> Candidate.tile cand a
    | [] -> 64
  in
  (m, n, k)

let epilogue_flops program cand (b : Chain.block) =
  let out_tile = float_of_int (tile_elems cand b.out) in
  match b.epilogue with
  | Chain.No_epilogue -> 0.0
  | Chain.Scale _ -> scale_flops_per_elem *. out_tile
  | Chain.Unary { uflops; _ } -> uflops *. out_tile
  | Chain.Softmax _ ->
    let base = softmax_flops_per_elem *. out_tile in
    if Program.online_softmax program then begin
      (* Online softmax rescales every consumer accumulator tile on each
         softmax-axis step. *)
      let rescale =
        Mcf_util.Listx.sum_by
          (fun (q : Chain.block) ->
            online_rescale_flops_per_elem
            *. float_of_int (tile_elems cand q.out))
          (Chain.consumers_of program.Program.chain b.out)
      in
      base +. rescale
    end
    else base

let of_program ~elem_bytes (program : Program.t) =
  let cand = program.cand in
  let chain = program.chain in
  let placed = Program.placed_stmts program in
  let residency_mult ts = Program.residency_multiplier program ts in
  let accesses =
    List.filter_map
      (fun (path, stmt) ->
        match stmt with
        | Program.Load (ts, _) ->
          Some
            { tensor = ts;
              direction = Dload;
              tile_elems = tile_elems cand ts;
              trips = path_trips cand path;
              row_elems = row_elems cand ts }
        | Program.Store (ts, _) ->
          (* The whole resident region is flushed at once (Rule-2
             multiplicity), e.g. a flat schedule stores its full
             accumulator row-block after the reduction. *)
          Some
            { tensor = ts;
              direction = Dstore;
              tile_elems = tile_elems cand ts * residency_mult ts;
              trips = path_trips cand path;
              row_elems = row_elems cand ts }
        | Program.Compute _ | Program.Epilogue _ -> None)
      placed
  in
  let computes =
    List.filter_map
      (fun (path, stmt) ->
        match stmt with
        | Program.Compute b ->
          let m, n, k = mma_tiles cand b in
          Some
            { block = b;
              kind = `Contraction;
              flops_per_exec = contraction_flops cand b;
              ctrips = path_trips cand path;
              tile_m = m;
              tile_n = n;
              tile_k = k }
        | Program.Epilogue b ->
          Some
            { block = b;
              kind = `Epilogue;
              flops_per_exec = cuda_core_penalty *. epilogue_flops program cand b;
              ctrips = path_trips cand path;
              tile_m = 128;
              tile_n = 128;
              tile_k = 64 }
        | Program.Load _ | Program.Store _ -> None)
      placed
  in
  let loaded_in_loop ts =
    List.exists
      (fun (path, stmt) ->
        match stmt with
        | Program.Load (ts', _) -> ts'.Chain.tname = ts.Chain.tname && path <> []
        | _ -> false)
      placed
  in
  let residency =
    List.filter_map
      (fun (ts : Chain.tensor_spec) ->
        let touched =
          match ts.storage with
          | Chain.Input ->
            List.exists
              (fun (_, s) ->
                match s with
                | Program.Load (ts', _) -> ts'.tname = ts.tname
                | _ -> false)
              placed
          | Chain.Intermediate | Chain.Output -> true
        in
        if not touched then None
        else
          Some
            { rtensor = ts;
              tile_bytes = tile_elems cand ts * elem_bytes;
              mult = residency_mult ts;
              double_buffered = ts.storage = Chain.Input && loaded_in_loop ts })
      chain.tensors
  in
  let stmt_trips_total =
    List.fold_left (fun acc (path, _) -> acc + path_trips cand path) 0 placed
  in
  { program;
    elem_bytes;
    blocks = Program.grid_blocks program;
    accesses;
    computes;
    residency;
    online_softmax = Program.online_softmax program;
    stmt_trips_total;
    validity = Program.validate program }

let lower_calls = Atomic.make 0

let calls () = Atomic.get lower_calls

let lower ?rule1 ?dead_loop_elim ?hoisting ~elem_bytes chain cand =
  Atomic.incr lower_calls;
  of_program ~elem_bytes
    (Program.build ?rule1 ?dead_loop_elim ?hoisting chain cand)

let bytes_per_block t =
  Mcf_util.Listx.sum_by
    (fun a -> float_of_int (a.tile_elems * a.trips * t.elem_bytes))
    t.accesses

let total_traffic_bytes t = bytes_per_block t *. float_of_int t.blocks

let flops_per_block t =
  Mcf_util.Listx.sum_by
    (fun c -> c.flops_per_exec *. float_of_int c.ctrips)
    t.computes

let to_kernel t ~smem_bytes =
  let chain = t.program.Program.chain in
  let tensor_unique (ts : Chain.tensor_spec) =
    let elems =
      List.fold_left (fun acc a -> acc * a.Axis.size) 1 ts.taxes
    in
    float_of_int (elems * chain.batch * t.elem_bytes)
  in
  let accesses =
    List.map
      (fun a ->
        { Mcf_gpu.Kernel.label = a.tensor.Chain.tname;
          bytes_per_block =
            float_of_int (a.tile_elems * a.trips * t.elem_bytes);
          unique_bytes = tensor_unique a.tensor;
          row_bytes = a.row_elems * t.elem_bytes;
          direction =
            (match a.direction with
            | Dload -> Mcf_gpu.Kernel.Load
            | Dstore -> Mcf_gpu.Kernel.Store) })
      t.accesses
  in
  let computes =
    List.map
      (fun c ->
        { Mcf_gpu.Kernel.clabel =
            (match c.kind with
            | `Contraction -> c.block.Chain.bname
            | `Epilogue -> c.block.Chain.bname ^ "!epi");
          flops_per_block = c.flops_per_exec *. float_of_int c.ctrips;
          tile_m = c.tile_m;
          tile_n = c.tile_n;
          tile_k = c.tile_k })
      t.computes
  in
  { Mcf_gpu.Kernel.kname =
      Printf.sprintf "%s[%s]" chain.cname (Candidate.key t.program.cand);
    blocks = t.blocks;
    smem_bytes;
    accesses;
    computes;
    stmt_trips_per_block = float_of_int t.stmt_trips_total }
