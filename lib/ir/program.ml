type stmt =
  | Load of Chain.tensor_spec * Chain.block
  | Store of Chain.tensor_spec * Chain.block
  | Compute of Chain.block
  | Epilogue of Chain.block

type node = Loop of loop | Stmt of stmt

and loop = {
  laxis : Axis.t;
  extent : int;
  group : int option;
  mutable body : node list;
}

type t = {
  chain : Chain.t;
  cand : Candidate.t;
  grid_axes : Axis.t list;
  mutable roots : node list;
}

type invalid =
  | Nonlinear_partial_consume of { producer : string; loop : string }
  | Blind_epilogue of { producer : string; axis : string }
  | Consumed_before_epilogue of { producer : string; consumer : string }
  | Consumed_before_produced of { producer : string; consumer : string }

let string_of_invalid = function
  | Nonlinear_partial_consume { producer; loop } ->
    Printf.sprintf
      "softmax output of block %s consumed inside its reduction loop %s"
      producer loop
  | Blind_epilogue { producer; axis } ->
    Printf.sprintf
      "epilogue of block %s runs outside the live loop over its output \
       axis %s and would miss all but one tile"
      producer axis
  | Consumed_before_epilogue { producer; consumer } ->
    Printf.sprintf
      "block %s consumes the output of block %s before its epilogue runs"
      consumer producer
  | Consumed_before_produced { producer; consumer } ->
    Printf.sprintf
      "block %s consumes the output of block %s before it is computed"
      consumer producer

let stmt_to_string = function
  | Load (ts, _) -> Printf.sprintf "Load(tile %s)" ts.Chain.tname
  | Store (ts, _) -> Printf.sprintf "Store(tile %s)" ts.Chain.tname
  | Compute b -> Printf.sprintf "Compute(tile %s)" b.Chain.bname
  | Epilogue b -> (
    match b.Chain.epilogue with
    | Chain.Softmax { saxis; _ } ->
      Printf.sprintf "Softmax(tile %s, axis %s)" b.Chain.bname saxis.Axis.name
    | Chain.Scale c -> Printf.sprintf "Scale(tile %s, %g)" b.Chain.bname c
    | Chain.Unary { uname; _ } ->
      Printf.sprintf "%s(tile %s)" (String.capitalize_ascii uname)
        b.Chain.bname
    | Chain.No_epilogue -> Printf.sprintf "Epilogue(tile %s)" b.Chain.bname)

let stmt_key = function
  | Load (ts, b) -> "L:" ^ ts.Chain.tname ^ ":" ^ b.Chain.bname
  | Store (ts, b) -> "S:" ^ ts.Chain.tname ^ ":" ^ b.Chain.bname
  | Compute b -> "C:" ^ b.Chain.bname
  | Epilogue b -> "E:" ^ b.Chain.bname

(* --- structure construction ------------------------------------------- *)

let rec nest_axes cand group axes inner =
  match axes with
  | [] -> inner
  | a :: rest ->
    [ Loop
        { laxis = a;
          extent = Candidate.trip cand a;
          group;
          body = nest_axes cand group rest inner } ]

(* Split a tiling into (grid axes, per-block structure roots).  Rule 1
   binds every hoistable spatial loop to blockIdx; without it only the
   leading spatial prefix is bound. *)
let split_grid ~rule1 cand tiling =
  let build_flat prefix groups =
    let grid, body_prefix =
      if rule1 then List.partition Axis.is_spatial prefix
      else begin
        let rec span acc = function
          | a :: rest when Axis.is_spatial a -> span (a :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        span [] prefix
      end
    in
    let group_nodes =
      List.concat
        (List.mapi (fun i g -> nest_axes cand (Some i) g []) groups)
    in
    (grid, nest_axes cand None body_prefix group_nodes)
  in
  match tiling with
  | Tiling.Deep perm ->
    let grid, body =
      if rule1 then List.partition Axis.is_spatial perm
      else begin
        let rec span acc = function
          | a :: rest when Axis.is_spatial a -> span (a :: acc) rest
          | rest -> (List.rev acc, rest)
        in
        span [] perm
      end
    in
    (grid, nest_axes cand None body [])
  | Tiling.Flat (prefix, groups) -> build_flat prefix groups

(* --- dead-loop elimination -------------------------------------------- *)

let rec splice_dead nodes =
  List.concat_map
    (function
      | Stmt s -> [ Stmt s ]
      | Loop l ->
        let body = splice_dead l.body in
        if l.extent = 1 then body
        else begin
          l.body <- body;
          [ Loop l ]
        end)
    nodes

(* --- statement placement ---------------------------------------------- *)

type scope = Root of t | In of loop

let scope_items = function Root t -> t.roots | In l -> l.body
let set_scope_items scope items =
  match scope with Root t -> t.roots <- items | In l -> l.body <- items

let rec subtree_axes = function
  | Stmt _ -> []
  | Loop l -> l.laxis :: List.concat_map subtree_axes l.body

(* Descend to the deepest scope whose subtree still contains a target
   axis, restricted to loops visible to this block's sequential group.
   [stop_axes] prevents descending into given loops: the Store of an
   accumulator must remain outside its producer's reduction loops (the
   resident tiles are flushed once the reduction completes). *)
let rec find_scope scope ~group_idx ~targets ~stop_axes =
  let eligible l =
    match l.group with None -> true | Some g -> g = group_idx
  in
  let enterable = function
    | Stmt _ -> None
    | Loop l ->
      if eligible l
         && (not (Axis.mem l.laxis stop_axes))
         && List.exists (fun a -> Axis.mem a targets) (subtree_axes (Loop l))
      then Some l
      else None
  in
  match List.find_map enterable (scope_items scope) with
  | Some l -> find_scope (In l) ~group_idx ~targets ~stop_axes
  | None -> scope

let rec subtree_stmt_count = function
  | Stmt _ -> 1
  | Loop l ->
    List.fold_left (fun acc n -> acc + subtree_stmt_count n) 0 l.body

(* Insert a statement for sequential group [group_idx].  The statement goes
   after everything already placed (blocks are processed in producer order)
   but before (a) subtrees of later sequential groups and (b) still-empty
   structural loops — those can only ever receive statements of this or
   later blocks, which must execute after the producer being inserted. *)
let insert_ordered scope ~group_idx node =
  let must_precede = function
    | Loop ({ group = Some g; _ } as l) ->
      g > group_idx || subtree_stmt_count (Loop l) = 0
    | Loop ({ group = None; _ } as l) -> subtree_stmt_count (Loop l) = 0
    | Stmt _ -> false
  in
  let rec go acc = function
    | [] -> List.rev (node :: acc)
    | x :: _ as rest when must_precede x -> List.rev_append acc (node :: rest)
    | x :: rest -> go (x :: acc) rest
  in
  set_scope_items scope (go [] (scope_items scope))

let has_epilogue (b : Chain.block) =
  match b.epilogue with
  | Chain.No_epilogue -> false
  | Chain.Scale _ | Chain.Softmax _ | Chain.Unary _ -> true

let place_statements t =
  let chain = t.chain in
  List.iteri
    (fun group_idx (b : Chain.block) ->
      let insert scope node = insert_ordered scope ~group_idx node in
      let used = Chain.used_axes b in
      let non_out =
        List.filter (fun a -> not (Axis.mem a b.out.taxes)) chain.Chain.axes
      in
      let cscope = find_scope (Root t) ~group_idx ~targets:used ~stop_axes:[] in
      (* Loads of global inputs sit right next to the compute by default;
         the hoisting pass relocates them (Fig. 4). *)
      List.iter
        (fun (ts : Chain.tensor_spec) ->
          if ts.storage = Chain.Input then insert cscope (Stmt (Load (ts, b))))
        b.ins;
      insert cscope (Stmt (Compute b));
      (match b.epilogue with
      | Chain.No_epilogue -> ()
      | Chain.Scale _ | Chain.Softmax _ | Chain.Unary _ ->
        let after_reduce =
          List.filter (fun a -> not (Axis.mem a b.reduce_axes)) used
        in
        (* The epilogue transforms the completed accumulator, so it must
           stay outside every loop across which the accumulator still
           grows: the block's own reduction loops, and any foreign loop
           (another block's axis) whose iterations feed it partial sums.
           Only loops over the output's own axes address distinct tiles
           and are safe to descend into. *)
        let s =
          find_scope (Root t) ~group_idx ~targets:after_reduce
            ~stop_axes:non_out
        in
        insert s (Stmt (Epilogue b)));
      if b.out.storage = Chain.Output then begin
        (* Without an epilogue the store may sit inside partial-sum loops
           (it just overwrites with progressively complete values); with
           one it must use the epilogue's stop set so it lands in the same
           scope, after the epilogue transforms the accumulator. *)
        let stop = if has_epilogue b then non_out else b.reduce_axes in
        let s =
          find_scope (Root t) ~group_idx ~targets:b.out.taxes ~stop_axes:stop
        in
        insert s (Stmt (Store (b.out, b)))
      end)
    chain.blocks

(* --- hoisting ----------------------------------------------------------
   One post-order pass: statements hoisted out of an inner loop land in the
   parent scope and are reconsidered when the parent is processed, so the
   cascade of Fig. 4(b) (load escaping all the way to the top) happens in a
   single traversal. *)

let hoistable_out_of laxis = function
  | Load (ts, _) | Store (ts, _) -> not (Axis.mem laxis ts.Chain.taxes)
  | Compute _ | Epilogue _ -> false

let rec hoist_items items =
  List.concat_map
    (function
      | Stmt s -> [ Stmt s ]
      | Loop l ->
        l.body <- hoist_items l.body;
        let before, keep, after =
          List.fold_left
            (fun (before, keep, after) node ->
              match node with
              | Stmt (Load _ as s) when hoistable_out_of l.laxis s ->
                (Stmt s :: before, keep, after)
              | Stmt ((Store _ | Epilogue _) as s) when hoistable_out_of l.laxis s
                ->
                (before, keep, Stmt s :: after)
              | other -> (before, other :: keep, after))
            ([], [], []) l.body
        in
        l.body <- List.rev keep;
        List.rev before @ [ Loop l ] @ List.rev after)
    items

(* --- queries ------------------------------------------------------------ *)

let placed_stmts t =
  let rec walk path nodes =
    List.concat_map
      (function
        | Stmt s -> [ (List.rev path, s) ]
        | Loop l -> walk (l.laxis :: path) l.body)
      nodes
  in
  walk [] t.roots

let stmt_trips t s =
  let key = stmt_key s in
  let path, _ =
    List.find (fun (_, s') -> stmt_key s' = key) (placed_stmts t)
  in
  List.fold_left (fun acc a -> acc * Candidate.trip t.cand a) 1 path

let grid_blocks t =
  List.fold_left
    (fun acc a -> acc * Candidate.trip t.cand a)
    t.chain.batch t.grid_axes

let online_softmax t =
  List.exists
    (fun (b : Chain.block) ->
      match b.epilogue with
      | Chain.Softmax { saxis; _ } -> Candidate.trip t.cand saxis > 1
      | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> false)
    t.chain.blocks

let path_of t key =
  List.find_map
    (fun (path, s) -> if stmt_key s = key then Some path else None)
    (placed_stmts t)

let validate t =
  let nonlinear () =
    List.find_map
      (fun (p : Chain.block) ->
        if Chain.is_linear_through t.chain p then None
        else begin
          let bad_path key =
            match path_of t key with
            | None -> None
            | Some path ->
              List.find_opt (fun a -> Axis.mem a p.reduce_axes) path
          in
          let check key =
            Option.map
              (fun (a : Axis.t) ->
                Nonlinear_partial_consume
                  { producer = p.bname; loop = a.name })
              (bad_path key)
          in
          let consumer_keys =
            List.map
              (fun (q : Chain.block) -> "C:" ^ q.bname)
              (Chain.consumers_of t.chain p.out)
          in
          List.find_map check (("E:" ^ p.bname) :: consumer_keys)
        end)
      t.chain.blocks
  in
  (* The epilogue transforms exactly one resident tile of its output (the
     one addressed by the loops enclosing it); a live loop over an output
     axis that does not enclose the epilogue leaves that axis's other
     tiles untouched. *)
  let blind () =
    List.find_map
      (fun (p : Chain.block) ->
        if not (has_epilogue p) then None
        else
          match path_of t ("E:" ^ p.bname) with
          | None -> None
          | Some epath ->
            List.find_map
              (fun (a : Axis.t) ->
                if
                  Candidate.trip t.cand a > 1
                  && (not (Axis.mem a t.grid_axes))
                  && not (Axis.mem a epath)
                then
                  Some (Blind_epilogue { producer = p.bname; axis = a.name })
                else None)
              p.out.taxes)
      t.chain.blocks
  in
  let pos = Hashtbl.create 16 in
  List.iteri
    (fun i (_, s) ->
      let k = stmt_key s in
      if not (Hashtbl.mem pos k) then Hashtbl.add pos k i)
    (placed_stmts t);
  (* Statement order is program order: a consumer Compute that precedes
     the producer's epilogue reads untransformed values. *)
  let consumed_first () =
    List.find_map
      (fun (p : Chain.block) ->
        if not (has_epilogue p) then None
        else
          match Hashtbl.find_opt pos ("E:" ^ p.bname) with
          | None -> None
          | Some ep ->
            List.find_map
              (fun (q : Chain.block) ->
                match Hashtbl.find_opt pos ("C:" ^ q.bname) with
                | Some cq when cq < ep ->
                  Some
                    (Consumed_before_epilogue
                       { producer = p.bname; consumer = q.bname })
                | Some _ | None -> None)
              (Chain.consumers_of t.chain p.out))
      t.chain.blocks
  in
  (* A consumer Compute can also statically precede its *producer's*
     Compute: when the producer's scope sits after a loop that earlier
     blocks already populated and the consumer descends into that loop
     (its own output axis), no interleaving of the fixed nest runs the
     producer first.  Such tiling orders are unrealizable without
     redundant recomputation, so they are rejected outright. *)
  let produced_first () =
    List.find_map
      (fun (p : Chain.block) ->
        match Hashtbl.find_opt pos ("C:" ^ p.bname) with
        | None -> None
        | Some cp ->
          List.find_map
            (fun (q : Chain.block) ->
              match Hashtbl.find_opt pos ("C:" ^ q.bname) with
              | Some cq when cq < cp ->
                Some
                  (Consumed_before_produced
                     { producer = p.bname; consumer = q.bname })
              | Some _ | None -> None)
            (Chain.consumers_of t.chain p.out))
      t.chain.blocks
  in
  match nonlinear () with
  | Some v -> Error v
  | None -> (
    match blind () with
    | Some v -> Error v
    | None -> (
      match consumed_first () with
      | Some v -> Error v
      | None -> (
        match produced_first () with Some v -> Error v | None -> Ok ())))

let residency_multiplier t (ts : Chain.tensor_spec) =
  match Chain.producer_of t.chain ts with
  | None -> 1
  | Some p -> (
    match path_of t ("C:" ^ p.bname) with
    | None -> 1
    | Some path ->
      (* An axis of the tensor iterating below the producer's reduction
         loop forces one resident tile per iteration (Fig. 6(b)). *)
      let rec scan seen_reduce mult = function
        | [] -> mult
        | a :: rest ->
          let seen_reduce = seen_reduce || Axis.mem a p.reduce_axes in
          let mult =
            if seen_reduce && Axis.mem a ts.taxes then
              mult * Candidate.trip t.cand a
            else mult
          in
          scan seen_reduce mult rest
      in
      scan false 1 path)

let dag_edges t =
  let edges = ref [] in
  let add e = edges := e :: !edges in
  let rec walk parent nodes =
    let stmts_in_scope =
      List.filter_map (function Stmt s -> Some s | Loop _ -> None) nodes
    in
    (* order-dependency edges between consecutive statements of a scope *)
    let rec chain_edges = function
      | a :: (b :: _ as rest) ->
        add (stmt_key a, stmt_key b);
        chain_edges rest
      | [ _ ] | [] -> ()
    in
    chain_edges stmts_in_scope;
    List.iter
      (function
        | Stmt s -> add (parent, stmt_key s)
        | Loop l ->
          add (parent, "loop:" ^ l.laxis.Axis.name);
          walk ("loop:" ^ l.laxis.Axis.name) l.body)
      nodes
  in
  walk "root" t.roots;
  List.rev !edges

let to_dot t =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph schedule {\n  rankdir=TB;\n";
  Buffer.add_string buf "  root [shape=box, style=bold, label=\"thread block\"];\n";
  let loops = Hashtbl.create 8 in
  let rec declare nodes =
    List.iter
      (function
        | Stmt s ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" [shape=ellipse, label=\"%s\"];\n"
               (stmt_key s) (stmt_to_string s))
        | Loop l ->
          if not (Hashtbl.mem loops l.laxis.Axis.name) then begin
            Hashtbl.add loops l.laxis.Axis.name ();
            Buffer.add_string buf
              (Printf.sprintf
                 "  \"loop:%s\" [shape=box, label=\"loop %s (x%d)\"];\n"
                 l.laxis.Axis.name l.laxis.Axis.name l.extent)
          end;
          declare l.body)
      nodes
  in
  declare t.roots;
  List.iter
    (fun (src, dst) ->
      let order_edge =
        (* stmt -> stmt edges are order dependencies (dashed in Fig. 5) *)
        String.length src > 0 && src.[0] <> 'l' && src <> "root"
      in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\"%s;\n" src dst
           (if order_edge then " [style=dashed]" else "")))
    (dag_edges t);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_string t =
  let buf = Buffer.create 256 in
  let grid =
    match t.grid_axes with
    | [] -> "grid(1)"
    | axes ->
      Printf.sprintf "grid(%s)"
        (String.concat ", "
           (List.map
              (fun (a : Axis.t) ->
                Printf.sprintf "%s:%d" a.name (Candidate.trip t.cand a))
              axes))
  in
  Buffer.add_string buf
    (Printf.sprintf "for %s in %s:   # blockIdx, batch=%d\n"
       (match t.grid_axes with
       | [] -> "_"
       | axes -> String.concat ", " (List.map (fun (a : Axis.t) -> a.name) axes))
       grid t.chain.batch);
  let rec emit indent nodes =
    List.iter
      (function
        | Stmt s ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s\n" (String.make indent ' ') (stmt_to_string s))
        | Loop l ->
          Buffer.add_string buf
            (Printf.sprintf "%sfor %s in range(%d):%s\n"
               (String.make indent ' ') l.laxis.Axis.name l.extent
               (match l.group with
               | None -> ""
               | Some g -> Printf.sprintf "   # seq-group %d" g));
          emit (indent + 2) l.body)
      nodes
  in
  emit 2 t.roots;
  Buffer.contents buf

let build ?(rule1 = true) ?(dead_loop_elim = true) ?(hoisting = true) chain cand
    =
  let grid_axes, roots = split_grid ~rule1 cand cand.Candidate.tiling in
  let t = { chain; cand; grid_axes; roots } in
  if dead_loop_elim then t.roots <- splice_dead t.roots;
  place_statements t;
  if hoisting then t.roots <- hoist_items t.roots;
  t
