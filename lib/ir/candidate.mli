(** Schedule candidates: a tiling expression plus a tile size per axis.

    Any point in the search space is fully described by the loop structure
    and the tile-size vector (§III-A); everything downstream — statement
    placement, memory optimization, the performance model, code generation —
    is a pure function of the candidate and the chain. *)

type t = {
  tiling : Tiling.t;
  tiles : (string * int) list;  (** Axis name -> tile extent. *)
}

val make : Tiling.t -> (string * int) list -> t

val tile : t -> Axis.t -> int
(** Tile size for an axis. @raise Not_found when the axis is unbound. *)

val trip : t -> Axis.t -> int
(** Cross-tile trip count: ceil(size / tile). *)

val padded_size : t -> Axis.t -> int
(** trip * tile — the iteration domain after padding. *)

val padding_ratio : t -> Axis.t -> float
(** (padded - size) / size, i.e. the fraction of wasted work on an axis. *)

val tile_options : ?min_tile:int -> int -> int list
(** Viable tile extents for a dimension: multiples of 16 (the tensor-core
    minimum) no larger than the dimension; the dimension itself is always
    included, and dimensions below 16 get a single full-size option. *)

val to_string : t -> string
(** e.g. "mh(n,k) \{m=64 n=128 k=32 h=64\}". *)

val key : t -> string
(** Stable identity for dedup/memo tables. *)

val serialize : t -> string
(** One-line machine format, e.g. ["deep:m,h,n,k;h=32,k=16,m=64,n=32"] —
    the candidate field of [Mcf_search.Schedule_cache] lines and the
    tiling component of measurement-cache keys.  The format is stable:
    cache files on disk depend on it. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

(** Interning of candidate keys to dense integer ids, so search hot loops
    index arrays and int-keyed tables instead of hashing the key string
    (used by [Mcf_search.Explore]). *)
module Interner : sig
  type candidate := t

  type t

  val create : int -> t
  (** [create n] with an initial capacity hint of [n] candidates. *)

  val intern : t -> candidate -> int
  (** Dense id of the candidate; ids are assigned 0, 1, 2, ... in
      first-intern order. *)

  val find : t -> candidate -> int option
  (** Id of an already-interned candidate, [None] otherwise. *)

  val size : t -> int
  (** Number of distinct candidates interned. *)
end
