type t =
  | Deep of Axis.t list
  | Flat of Axis.t list * Axis.t list list

let to_string = function
  | Deep axes -> Axis.names axes
  | Flat (prefix, groups) ->
    Printf.sprintf "%s(%s)" (Axis.names prefix)
      (String.concat "," (List.map Axis.names groups))

let axes = function
  | Deep l -> l
  | Flat (prefix, groups) -> prefix @ List.concat groups

let is_flat = function Deep _ -> false | Flat _ -> true

let enumerate_deep (chain : Chain.t) =
  List.map (fun p -> Deep p) (Mcf_util.Listx.permutations chain.axes)

let enumerate_flat (chain : Chain.t) =
  (* Flat tiling separates blocks into sequential sibling scopes; it only
     exists when at least two blocks own a private axis to iterate in their
     own scope (otherwise the Seq collapses into plain nesting). *)
  let privates = List.map (Chain.private_axes chain) chain.blocks in
  let nonempty = List.length (List.filter (fun g -> g <> []) privates) in
  if nonempty < 2 then []
  else begin
    let shared = Chain.shared_axes chain in
    let prefixes = Mcf_util.Listx.permutations shared in
    let group_choices =
      Mcf_util.Listx.cartesian (List.map Mcf_util.Listx.permutations privates)
    in
    List.concat_map
      (fun prefix -> List.map (fun groups -> Flat (prefix, groups)) group_choices)
      prefixes
  end

let enumerate chain = enumerate_deep chain @ enumerate_flat chain

(* Lazy enumeration for the streaming pipeline: identical elements in
   the identical order as [enumerate], produced on demand so an n!-sized
   deep family is never resident at once.  Keep both paths in lockstep —
   the positional index of a tiling is part of the determinism
   contract. *)

let seq_deep (chain : Chain.t) =
  Seq.map (fun p -> Deep p) (Mcf_util.Listx.seq_permutations chain.axes)

let seq_flat (chain : Chain.t) =
  let privates = List.map (Chain.private_axes chain) chain.blocks in
  let nonempty = List.length (List.filter (fun g -> g <> []) privates) in
  if nonempty < 2 then Seq.empty
  else begin
    let shared = Chain.shared_axes chain in
    (* Private groups are tiny (a handful of axes per block), so their
       permutation lists stay materialized; only the shared-prefix
       permutations and the cross product stream. *)
    let group_perms = List.map Mcf_util.Listx.permutations privates in
    Mcf_util.Listx.seq_permutations shared
    |> Seq.concat_map (fun prefix ->
           Seq.map
             (fun groups -> Flat (prefix, groups))
             (Mcf_util.Listx.seq_cartesian group_perms))
  end

let seq chain = Seq.append (seq_deep chain) (seq_flat chain)

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let count (chain : Chain.t) =
  let deep = factorial (List.length chain.axes) in
  let privates = List.map (Chain.private_axes chain) chain.blocks in
  let nonempty = List.length (List.filter (fun g -> g <> []) privates) in
  let flat =
    if nonempty < 2 then 0
    else
      List.fold_left
        (fun acc g -> acc * factorial (List.length g))
        (factorial (List.length (Chain.shared_axes chain)))
        privates
  in
  deep + flat

let strip axes_list = List.filter Axis.is_reduce axes_list

let sub_tiling (_chain : Chain.t) = function
  | Deep l -> Deep (strip l)
  | Flat (prefix, groups) -> Flat (strip prefix, List.map strip groups)

let equal a b =
  match (a, b) with
  | Deep x, Deep y ->
    List.length x = List.length y && List.for_all2 Axis.equal x y
  | Flat (p1, g1), Flat (p2, g2) ->
    let eq_list x y =
      List.length x = List.length y && List.for_all2 Axis.equal x y
    in
    eq_list p1 p2
    && List.length g1 = List.length g2
    && List.for_all2 eq_list g1 g2
  | Deep _, Flat _ | Flat _, Deep _ -> false

let pp ppf t = Format.pp_print_string ppf (to_string t)
