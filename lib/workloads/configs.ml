type gemm_config = {
  gname : string;
  gbatch : int;
  gm : int;
  gn : int;
  gk : int;
  gh : int;
}

type attention_config = {
  sname : string;
  heads : int;
  sm : int;
  sn : int;
  sk : int;
  sh : int;
  network : string;
}

type deep_config = {
  dname : string;
  dblocks : int;
  dbatch : int;
  dm : int;
  ddim : int;
}

type bert_config = {
  bname : string;
  layers : int;
  hidden : int;
  bheads : int;
  seq : int;
  intermediate : int;
}

(* Table II. *)
let gemm_chains =
  [ { gname = "G1"; gbatch = 1; gm = 512; gn = 256; gk = 64; gh = 64 };
    { gname = "G2"; gbatch = 1; gm = 512; gn = 256; gk = 64; gh = 128 };
    { gname = "G3"; gbatch = 1; gm = 512; gn = 256; gk = 64; gh = 256 };
    { gname = "G4"; gbatch = 1; gm = 512; gn = 512; gk = 256; gh = 256 };
    { gname = "G5"; gbatch = 1; gm = 512; gn = 512; gk = 512; gh = 256 };
    { gname = "G6"; gbatch = 1; gm = 512; gn = 512; gk = 1024; gh = 256 };
    { gname = "G7"; gbatch = 1; gm = 512; gn = 512; gk = 128; gh = 128 };
    { gname = "G8"; gbatch = 1; gm = 1024; gn = 512; gk = 128; gh = 128 };
    { gname = "G9"; gbatch = 1; gm = 2048; gn = 512; gk = 128; gh = 128 };
    { gname = "G10"; gbatch = 1; gm = 1024; gn = 1024; gk = 128; gh = 128 };
    { gname = "G11"; gbatch = 4; gm = 1024; gn = 1024; gk = 128; gh = 128 };
    { gname = "G12"; gbatch = 8; gm = 1024; gn = 1024; gk = 128; gh = 128 } ]

(* Table III. *)
let attentions =
  [ { sname = "S1"; heads = 8; sm = 512; sn = 512; sk = 64; sh = 64;
      network = "Bert-Small" };
    { sname = "S2"; heads = 12; sm = 512; sn = 512; sk = 64; sh = 64;
      network = "Bert-Base" };
    { sname = "S3"; heads = 16; sm = 512; sn = 512; sk = 64; sh = 64;
      network = "Bert-Large" };
    { sname = "S4"; heads = 12; sm = 256; sn = 256; sk = 64; sh = 64;
      network = "ViT-Base" };
    { sname = "S5"; heads = 16; sm = 256; sn = 256; sk = 64; sh = 64;
      network = "ViT-Large" };
    { sname = "S6"; heads = 16; sm = 256; sn = 256; sk = 80; sh = 80;
      network = "ViT-Huge" };
    { sname = "S7"; heads = 1; sm = 512; sn = 256; sk = 64; sh = 64;
      network = "MLP-Mixer" };
    { sname = "S8"; heads = 1; sm = 768; sn = 384; sk = 64; sh = 64;
      network = "MLP-Mixer" };
    { sname = "S9"; heads = 1; sm = 1024; sn = 512; sk = 64; sh = 64;
      network = "MLP-Mixer" } ]

(* Deep MBCI chains (5–8 back-to-back GEMM blocks) — past the paper's
   tables, these stress the streaming enumeration: the structural space
   is (blocks + 2)! deep tilings, far beyond what a materialized
   enumeration can hold.  ISSUE 7 calls them S5–S8, but Table III
   already owns those names, so they are registered as D5–D8. *)
let deep_chains =
  [ { dname = "D5"; dblocks = 5; dbatch = 1; dm = 256; ddim = 64 };
    { dname = "D6"; dblocks = 6; dbatch = 1; dm = 256; ddim = 64 };
    { dname = "D7"; dblocks = 7; dbatch = 1; dm = 256; ddim = 64 };
    { dname = "D8"; dblocks = 8; dbatch = 1; dm = 256; ddim = 64 } ]

let bert_small =
  { bname = "Bert-Small"; layers = 4; hidden = 512; bheads = 8; seq = 512;
    intermediate = 2048 }

let bert_base =
  { bname = "Bert-Base"; layers = 12; hidden = 768; bheads = 12; seq = 512;
    intermediate = 3072 }

let bert_large =
  { bname = "Bert-Large"; layers = 24; hidden = 1024; bheads = 16; seq = 512;
    intermediate = 4096 }

let berts = [ bert_small; bert_base; bert_large ]

let vit_base =
  { bname = "ViT-Base"; layers = 12; hidden = 768; bheads = 12; seq = 256;
    intermediate = 3072 }

let vit_large =
  { bname = "ViT-Large"; layers = 24; hidden = 1024; bheads = 16; seq = 256;
    intermediate = 4096 }

let gemm_chain g =
  let chain =
    Mcf_ir.Chain.gemm_chain ~batch:g.gbatch ~m:g.gm ~n:g.gn ~k:g.gk ~h:g.gh ()
  in
  { chain with Mcf_ir.Chain.cname = g.gname ^ "_" ^ chain.cname }

let attention s =
  let chain =
    Mcf_ir.Chain.attention ~heads:s.heads ~m:s.sm ~n:s.sn ~k:s.sk ~h:s.sh ()
  in
  { chain with Mcf_ir.Chain.cname = s.sname ^ "_" ^ chain.cname }

let deep_chain d =
  let chain =
    Mcf_ir.Chain.gemm_chain_n ~batch:d.dbatch ~m:d.dm
      ~dims:(List.init (d.dblocks + 1) (fun _ -> d.ddim))
      ()
  in
  { chain with Mcf_ir.Chain.cname = d.dname ^ "_" ^ chain.cname }

let find_gemm name = List.find_opt (fun g -> g.gname = name) gemm_chains
let find_attention name = List.find_opt (fun s -> s.sname = name) attentions
let find_deep name =
  let canon = String.lowercase_ascii name in
  List.find_opt
    (fun d -> String.lowercase_ascii d.dname = canon)
    deep_chains
