(** Evaluation workloads: the batch GEMM chains of Table II, the
    self-attention modules of Table III, and the BERT model family used in
    §VI-C. *)

type gemm_config = {
  gname : string;
  gbatch : int;
  gm : int;
  gn : int;
  gk : int;
  gh : int;
}

type attention_config = {
  sname : string;
  heads : int;
  sm : int;
  sn : int;
  sk : int;
  sh : int;
  network : string;
}

type deep_config = {
  dname : string;
  dblocks : int;  (** Number of chained GEMM blocks (5–8). *)
  dbatch : int;
  dm : int;  (** Shared spatial row dimension. *)
  ddim : int;  (** Every interior/output column dimension. *)
}

type bert_config = {
  bname : string;
  layers : int;
  hidden : int;
  bheads : int;
  seq : int;
  intermediate : int;
}

val gemm_chains : gemm_config list
(** G1-G12 exactly as Table II. *)

val attentions : attention_config list
(** S1-S9 exactly as Table III. *)

val deep_chains : deep_config list
(** D5-D8: 5–8-block linear GEMM chains (ISSUE 7's deep MBCI workloads;
    named D* because Table III already uses S5–S8).  Their structural
    tiling space is (blocks + 2)! deep expressions — the streaming
    enumeration's stress family. *)

val bert_small : bert_config
val bert_base : bert_config
val bert_large : bert_config
val berts : bert_config list

val vit_base : bert_config
val vit_large : bert_config
(** Vision-transformer encoders (same block structure as BERT over patch
    tokens); their attention shapes are Table III's S4/S5. *)

val gemm_chain : gemm_config -> Mcf_ir.Chain.t
val attention : attention_config -> Mcf_ir.Chain.t
val deep_chain : deep_config -> Mcf_ir.Chain.t

val find_gemm : string -> gemm_config option
val find_attention : string -> attention_config option
val find_deep : string -> deep_config option
