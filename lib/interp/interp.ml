open Mcf_ir
module Tensor = Mcf_tensor.Tensor

exception Uninitialized_tile of string

(* --- small helpers ------------------------------------------------------ *)

let env_get env (a : Axis.t) =
  match Hashtbl.find_opt env a.Axis.name with Some i -> i | None -> 0

let env_has env (a : Axis.t) = Hashtbl.mem env a.Axis.name

(* Iterate all combinations of [0, bound_i) over a list of bounds. *)
let iter_combos bounds f =
  let n = List.length bounds in
  let bounds = Array.of_list bounds in
  let idx = Array.make n 0 in
  let rec go d =
    if d = n then f idx
    else
      for i = 0 to bounds.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if Array.for_all (fun b -> b > 0) bounds then go 0

(* Row-major offset of local indices within a tile. *)
let offset_of dims locals =
  let off = ref 0 in
  Array.iteri (fun i d -> off := (!off * d) + locals.(i)) dims;
  !off

(* --- interpreter state -------------------------------------------------- *)

type state = {
  program : Program.t;
  chain : Chain.t;
  cand : Candidate.t;
  inputs : (string, Tensor.t) Hashtbl.t;
  output : Tensor.t;
  (* tensor name -> (tile coord key -> tile buffer) *)
  buffers : (string, (string, float array) Hashtbl.t) Hashtbl.t;
  (* softmax tensor name -> (global row key -> running max, running sum) *)
  stats : (string, (string, float * float) Hashtbl.t) Hashtbl.t;
  (* "tensor@key" entries whose tile has been read by a consumer or
     epilogue; the next producer write starts a fresh reduction round
     (partial-consumption schedules recompute per-iteration deltas). *)
  consumed : (string, unit) Hashtbl.t;
  env : (string, int) Hashtbl.t;
}

let tile_dims st (ts : Chain.tensor_spec) =
  Array.of_list (List.map (Candidate.tile st.cand) ts.taxes)

let coord_key st (ts : Chain.tensor_spec) =
  ts.taxes
  |> List.map (fun a -> string_of_int (env_get st.env a))
  |> String.concat ","

let tensor_table st (ts : Chain.tensor_spec) =
  match Hashtbl.find_opt st.buffers ts.tname with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 8 in
    Hashtbl.add st.buffers ts.tname tbl;
    tbl

let numel dims = Array.fold_left ( * ) 1 dims

let get_tile st ts ~create =
  let tbl = tensor_table st ts in
  let key = coord_key st ts in
  match Hashtbl.find_opt tbl key with
  | Some arr -> arr
  | None ->
    if create then begin
      let arr = Array.make (numel (tile_dims st ts)) 0.0 in
      Hashtbl.add tbl key arr;
      arr
    end
    else begin
      let indices =
        Hashtbl.fold (fun name i acc -> (name, i) :: acc) st.env []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        |> List.map (fun (name, i) -> Printf.sprintf "%s=%d" name i)
        |> String.concat " "
      in
      raise
        (Uninitialized_tile
           (Printf.sprintf "tile %s@[%s] read before any Load under {%s}"
              ts.Chain.tname key indices))
    end

let mark_consumed st (ts : Chain.tensor_spec) =
  Hashtbl.replace st.consumed (ts.Chain.tname ^ "@" ^ coord_key st ts) ()

let fresh_round st (ts : Chain.tensor_spec) arr =
  let key = ts.Chain.tname ^ "@" ^ coord_key st ts in
  if Hashtbl.mem st.consumed key then begin
    Hashtbl.remove st.consumed key;
    Array.fill arr 0 (Array.length arr) 0.0
  end

let stats_table st name =
  match Hashtbl.find_opt st.stats name with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 64 in
    Hashtbl.add st.stats name tbl;
    tbl

(* --- statement execution ------------------------------------------------ *)

let exec_load st (ts : Chain.tensor_spec) =
  let src =
    match Hashtbl.find_opt st.inputs ts.tname with
    | Some t -> t
    | None -> invalid_arg ("Interp: missing input tensor " ^ ts.tname)
  in
  let dims = tile_dims st ts in
  let bases =
    Array.of_list
      (List.map (fun a -> env_get st.env a * Candidate.tile st.cand a) ts.taxes)
  in
  let sizes = Array.of_list (List.map (fun a -> a.Axis.size) ts.taxes) in
  let tbl = tensor_table st ts in
  let key = coord_key st ts in
  let arr = Array.make (numel dims) 0.0 in
  iter_combos (Array.to_list dims) (fun locals ->
      let gidx = Array.mapi (fun i l -> bases.(i) + l) locals in
      let inb = ref true in
      Array.iteri (fun i g -> if g >= sizes.(i) then inb := false) gidx;
      if !inb then arr.(offset_of dims locals) <- Tensor.get src gidx);
  Hashtbl.replace tbl key arr

let exec_compute st (b : Chain.block) =
  let axes = Chain.used_axes b in
  let tiles = List.map (fun a -> Candidate.tile st.cand a) axes in
  let bases =
    List.map (fun a -> env_get st.env a * Candidate.tile st.cand a) axes
  in
  let axis_names = Array.of_list (List.map (fun a -> a.Axis.name) axes) in
  let sizes = Array.of_list (List.map (fun a -> a.Axis.size) axes) in
  let bases = Array.of_list bases in
  let out_dims = tile_dims st b.out in
  let out_arr = get_tile st b.out ~create:true in
  fresh_round st b.out out_arr;
  let pos_of name =
    let rec go i =
      if axis_names.(i) = name then i else go (i + 1)
    in
    go 0
  in
  let out_positions =
    Array.of_list (List.map (fun a -> pos_of a.Axis.name) b.out.taxes)
  in
  let in_info =
    List.map
      (fun (ts : Chain.tensor_spec) ->
        let dims = tile_dims st ts in
        let positions =
          Array.of_list (List.map (fun a -> pos_of a.Axis.name) ts.taxes)
        in
        let arr = get_tile st ts ~create:false in
        if ts.storage <> Chain.Input then mark_consumed st ts;
        (dims, positions, arr))
      b.ins
  in
  iter_combos tiles (fun locals ->
      let inb = ref true in
      Array.iteri
        (fun i l -> if bases.(i) + l >= sizes.(i) then inb := false)
        locals;
      if !inb then begin
        let contribution = ref 1.0 in
        List.iter
          (fun (dims, positions, arr) ->
            let lv = Array.map (fun p -> locals.(p)) positions in
            contribution := !contribution *. arr.(offset_of dims lv))
          in_info;
        let lv = Array.map (fun p -> locals.(p)) out_positions in
        let off = offset_of out_dims lv in
        out_arr.(off) <- out_arr.(off) +. !contribution
      end)

(* Rescale every resident accumulator element of [q.out] that belongs to
   the softmax row identified by [row_axes]/[row_globals] (online-softmax
   correction of the consumers, FlashAttention-style). *)
let rescale_consumers st (p : Chain.block) row_axes row_globals corr =
  List.iter
    (fun (q : Chain.block) ->
      let tbl = tensor_table st q.out in
      let qdims = tile_dims st q.out in
      let qtiles =
        Array.of_list (List.map (Candidate.tile st.cand) q.out.taxes)
      in
      Hashtbl.iter
        (fun key arr ->
          let coords =
            key |> String.split_on_char ',' |> List.map int_of_string
            |> Array.of_list
          in
          iter_combos (Array.to_list qdims) (fun locals ->
              let matches = ref true in
              List.iteri
                (fun i (a : Axis.t) ->
                  match
                    Mcf_util.Listx.index_of
                      (fun (ra : Axis.t) -> Axis.equal ra a)
                      row_axes
                  with
                  | None -> ()
                  | Some ri ->
                    let g = (coords.(i) * qtiles.(i)) + locals.(i) in
                    if g <> row_globals.(ri) then matches := false)
                q.out.taxes;
              if !matches then begin
                let off = offset_of qdims locals in
                arr.(off) <- arr.(off) *. corr
              end))
        tbl)
    (Chain.consumers_of st.chain p.out)

let exec_softmax st (b : Chain.block) (saxis : Axis.t) sscale =
  let z = b.out in
  let dims = tile_dims st z in
  let arr = get_tile st z ~create:false in
  mark_consumed st b.out;
  let row_axes = List.filter (fun a -> not (Axis.equal a saxis)) z.taxes in
  let spos =
    match
      Mcf_util.Listx.index_of (fun a -> Axis.equal a saxis) z.taxes
    with
    | Some i -> i
    | None -> invalid_arg "Interp: softmax axis not in tensor"
  in
  let stile = Candidate.tile st.cand saxis in
  let sbase = env_get st.env saxis * stile in
  let row_dims =
    List.filteri (fun i _ -> i <> spos) (Array.to_list dims)
  in
  let stats = stats_table st z.tname in
  iter_combos row_dims (fun row_locals ->
      (* reconstruct full local index template with a hole at spos *)
      let full = Array.make (Array.length dims) 0 in
      let ri = ref 0 in
      Array.iteri
        (fun i _ ->
          if i <> spos then begin
            full.(i) <- row_locals.(!ri);
            incr ri
          end)
        dims;
      (* global row coordinates, with bounds check *)
      let in_bounds = ref true in
      let row_globals =
        Array.of_list
          (List.map
             (fun (a : Axis.t) ->
               let i =
                 match
                   Mcf_util.Listx.index_of (fun x -> Axis.equal x a) z.taxes
                 with
                 | Some i -> i
                 | None -> assert false
               in
               let g =
                 (env_get st.env a * Candidate.tile st.cand a) + full.(i)
               in
               if g >= a.Axis.size then in_bounds := false;
               g)
             row_axes)
      in
      if !in_bounds then begin
        let row_key =
          row_globals |> Array.to_list |> List.map string_of_int
          |> String.concat ","
        in
        let m_old, l_old =
          match Hashtbl.find_opt stats row_key with
          | Some s -> s
          | None -> (neg_infinity, 0.0)
        in
        (* scan valid columns *)
        let valid = ref [] in
        for s = stile - 1 downto 0 do
          if sbase + s < saxis.Axis.size then begin
            full.(spos) <- s;
            valid := (s, offset_of dims full) :: !valid
          end
        done;
        let m_tile =
          List.fold_left
            (fun acc (_, off) -> Float.max acc (sscale *. arr.(off)))
            neg_infinity !valid
        in
        let m_new = Float.max m_old m_tile in
        let corr =
          if m_old = neg_infinity then 1.0 else exp (m_old -. m_new)
        in
        let sum = ref 0.0 in
        List.iter
          (fun (_, off) ->
            let e = exp ((sscale *. arr.(off)) -. m_new) in
            arr.(off) <- e;
            sum := !sum +. e)
          !valid;
        (* zero out padded columns so consumers never read garbage *)
        for s = 0 to stile - 1 do
          if sbase + s >= saxis.Axis.size then begin
            full.(spos) <- s;
            arr.(offset_of dims full) <- 0.0
          end
        done;
        Hashtbl.replace stats row_key (m_new, ((l_old *. corr) +. !sum));
        if corr <> 1.0 then rescale_consumers st b row_axes row_globals corr
      end)

let exec_scale st (b : Chain.block) c =
  let arr = get_tile st b.out ~create:false in
  Array.iteri (fun i v -> arr.(i) <- c *. v) arr

let exec_unary st (b : Chain.block) f =
  mark_consumed st b.out;
  let arr = get_tile st b.out ~create:false in
  Array.iteri (fun i v -> arr.(i) <- f v) arr

(* Softmax producers feeding [p], for the final normalization at Store. *)
let softmax_feeders st (p : Chain.block) =
  List.filter_map
    (fun (inp : Chain.tensor_spec) ->
      match Chain.producer_of st.chain inp with
      | Some pr -> (
        match pr.epilogue with
        | Chain.Softmax { saxis; _ } -> Some (pr, saxis)
        | Chain.No_epilogue | Chain.Scale _ | Chain.Unary _ -> None)
      | None -> None)
    p.ins

let exec_store st (ts : Chain.tensor_spec) (p : Chain.block) =
  let tbl = tensor_table st ts in
  let dims = tile_dims st ts in
  let tiles = Array.of_list (List.map (Candidate.tile st.cand) ts.taxes) in
  let sizes = Array.of_list (List.map (fun a -> a.Axis.size) ts.taxes) in
  let feeders = softmax_feeders st p in
  let divisor globals =
    List.fold_left
      (fun acc ((pr : Chain.block), (saxis : Axis.t)) ->
        let row_axes =
          List.filter (fun a -> not (Axis.equal a saxis)) pr.out.taxes
        in
        let key =
          row_axes
          |> List.map (fun (a : Axis.t) ->
                 match
                   Mcf_util.Listx.index_of
                     (fun (x : Axis.t) -> Axis.equal x a)
                     ts.taxes
                 with
                 | Some i -> string_of_int globals.(i)
                 | None -> "0")
          |> String.concat ","
        in
        match Hashtbl.find_opt (stats_table st pr.out.tname) key with
        | Some (_, l) when l > 0.0 -> acc *. l
        | Some _ | None -> acc)
      1.0 feeders
  in
  Hashtbl.iter
    (fun key arr ->
      let coords =
        key |> String.split_on_char ',' |> List.map int_of_string
        |> Array.of_list
      in
      (* skip tiles whose coordinates contradict the live loop indices *)
      let live = ref true in
      List.iteri
        (fun i (a : Axis.t) ->
          if env_has st.env a && env_get st.env a <> coords.(i) then
            live := false)
        ts.taxes;
      if !live then
        iter_combos (Array.to_list dims) (fun locals ->
            let globals =
              Array.mapi (fun i l -> (coords.(i) * tiles.(i)) + l) locals
            in
            let inb = ref true in
            Array.iteri
              (fun i g -> if g >= sizes.(i) then inb := false)
              globals;
            if !inb then begin
              let v = arr.(offset_of dims locals) /. divisor globals in
              Tensor.set st.output globals v
            end))
    tbl

(* --- driver ------------------------------------------------------------- *)

let rec interp_nodes st nodes =
  List.iter
    (function
      | Program.Stmt s -> (
        match s with
        | Program.Load (ts, _) -> exec_load st ts
        | Program.Compute b -> exec_compute st b
        | Program.Epilogue b -> (
          match b.Chain.epilogue with
          | Chain.Softmax { saxis; sscale } -> exec_softmax st b saxis sscale
          | Chain.Scale c -> exec_scale st b c
          | Chain.Unary { apply; _ } -> exec_unary st b apply
          | Chain.No_epilogue -> ())
        | Program.Store (ts, p) -> exec_store st ts p)
      | Program.Loop l ->
        for i = 0 to l.Program.extent - 1 do
          Hashtbl.replace st.env l.Program.laxis.Axis.name i;
          interp_nodes st l.Program.body
        done;
        Hashtbl.remove st.env l.Program.laxis.Axis.name)
    nodes

(* One per-head execution: [inputs] are unbatched slices. *)
let run_single (program : Program.t) ~input_tbl ~output =
  let chain = program.Program.chain in
  let grid_trips =
    List.map (fun a -> Candidate.trip program.Program.cand a) program.grid_axes
  in
  iter_combos grid_trips (fun grid_idx ->
      let st =
        { program;
          chain;
          cand = program.Program.cand;
          inputs = input_tbl;
          output;
          buffers = Hashtbl.create 8;
          stats = Hashtbl.create 8;
          consumed = Hashtbl.create 16;
          env = Hashtbl.create 8 }
      in
      List.iteri
        (fun i (a : Axis.t) -> Hashtbl.replace st.env a.name grid_idx.(i))
        program.grid_axes;
      interp_nodes st program.Program.roots)

let slice_first t b =
  let shape = Tensor.shape t in
  let rest = Array.sub shape 1 (Array.length shape - 1) in
  Tensor.init rest (fun idx -> Tensor.get t (Array.append [| b |] idx))

let blit_first dst b src =
  let shape = Tensor.shape src in
  let idx = Array.make (Array.length shape) 0 in
  let rec go d =
    if d = Array.length shape then
      Tensor.set dst (Array.append [| b |] idx) (Tensor.get src idx)
    else
      for i = 0 to shape.(d) - 1 do
        idx.(d) <- i;
        go (d + 1)
      done
  in
  if Tensor.numel src > 0 then go 0

let run (program : Program.t) ~inputs =
  let chain = program.Program.chain in
  let batch = chain.Chain.batch in
  let input_tbl = Hashtbl.create 8 in
  List.iter (fun (name, t) -> Hashtbl.replace input_tbl name t) inputs;
  List.iter
    (fun (ts : Chain.tensor_spec) ->
      match Hashtbl.find_opt input_tbl ts.tname with
      | None -> invalid_arg ("Interp.run: missing input " ^ ts.tname)
      | Some t ->
        let dims = List.map (fun a -> a.Axis.size) ts.taxes in
        let want =
          Array.of_list (if batch > 1 then batch :: dims else dims)
        in
        if Tensor.shape t <> want then
          invalid_arg ("Interp.run: shape mismatch for " ^ ts.tname))
    (Chain.input_tensors chain);
  let out_spec = Chain.output_tensor chain in
  let out_dims = List.map (fun a -> a.Axis.size) out_spec.taxes in
  if batch = 1 then begin
    let output = Tensor.create (Array.of_list out_dims) in
    run_single program ~input_tbl ~output;
    output
  end
  else begin
    let output = Tensor.create (Array.of_list (batch :: out_dims)) in
    for b = 0 to batch - 1 do
      let slice_tbl = Hashtbl.create 8 in
      Hashtbl.iter
        (fun name t -> Hashtbl.replace slice_tbl name (slice_first t b))
        input_tbl;
      let out_slice = Tensor.create (Array.of_list out_dims) in
      run_single program ~input_tbl:slice_tbl ~output:out_slice;
      blit_first output b out_slice
    done;
    output
  end

let run_candidate chain cand ~inputs =
  run (Program.build chain cand) ~inputs

(* Direct un-tiled evaluation (exact softmax), block by block; batched
   chains are evaluated slice by slice. *)
let rec reference (chain : Chain.t) ~inputs =
  if chain.Chain.batch > 1 then begin
    let per_head = { chain with Chain.batch = 1 } in
    let out_spec = Chain.output_tensor chain in
    let out_dims =
      List.map (fun (a : Axis.t) -> a.Axis.size) out_spec.taxes
    in
    let output =
      Tensor.create (Array.of_list (chain.Chain.batch :: out_dims))
    in
    for b = 0 to chain.Chain.batch - 1 do
      let sliced =
        List.map (fun (name, t) -> (name, slice_first t b)) inputs
      in
      blit_first output b (reference per_head ~inputs:sliced)
    done;
    output
  end
  else begin
  let values = Hashtbl.create 8 in
  List.iter (fun (name, t) -> Hashtbl.replace values name t) inputs;
  let eval_block (b : Chain.block) =
    let axes = Chain.used_axes b in
    let sizes = List.map (fun a -> a.Axis.size) axes in
    let out_shape =
      Array.of_list (List.map (fun a -> a.Axis.size) b.out.taxes)
    in
    let out = Tensor.create out_shape in
    let pos_of (a : Axis.t) =
      match
        Mcf_util.Listx.index_of (fun x -> Axis.equal x a) axes
      with
      | Some i -> i
      | None -> assert false
    in
    let in_info =
      List.map
        (fun (ts : Chain.tensor_spec) ->
          let t =
            match Hashtbl.find_opt values ts.tname with
            | Some t -> t
            | None -> invalid_arg ("reference: missing " ^ ts.tname)
          in
          (t, Array.of_list (List.map pos_of ts.taxes)))
        b.ins
    in
    let out_pos = Array.of_list (List.map pos_of b.out.taxes) in
    iter_combos sizes (fun idx ->
        let contribution = ref 1.0 in
        List.iter
          (fun (t, positions) ->
            contribution :=
              !contribution *. Tensor.get t (Array.map (fun p -> idx.(p)) positions))
          in_info;
        let oidx = Array.map (fun p -> idx.(p)) out_pos in
        Tensor.set out oidx (Tensor.get out oidx +. !contribution));
    let out =
      match b.epilogue with
      | Chain.No_epilogue -> out
      | Chain.Scale c -> Tensor.map (fun v -> c *. v) out
      | Chain.Unary { apply; _ } -> Tensor.map apply out
      | Chain.Softmax { saxis; sscale } ->
        let scaled = Tensor.map (fun v -> sscale *. v) out in
        (* softmax over [saxis]; our chains keep it innermost, but handle
           the general position by permuting through Ops when needed *)
        let last = List.nth b.out.taxes (List.length b.out.taxes - 1) in
        if Axis.equal saxis last then Mcf_tensor.Ops.softmax scaled
        else begin
          let t = Mcf_tensor.Ops.transpose_last2 scaled in
          Mcf_tensor.Ops.transpose_last2 (Mcf_tensor.Ops.softmax t)
        end
    in
    Hashtbl.replace values b.out.tname out
  in
  List.iter eval_block chain.blocks;
  Hashtbl.find values (Chain.output_tensor chain).tname
  end
