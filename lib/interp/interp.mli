(** Tile-level interpreter for placed programs.

    Executes a {!Mcf_ir.Program.t} on real tensors, faithfully following the
    schedule's structure: tiles move between "global memory" (the input
    tensors) and per-block tile buffers only at Load/Store statements,
    contractions accumulate into resident tiles, and softmax epilogues use
    the online formulation (running max/sum with accumulator rescaling, as
    in FlashAttention) whenever the softmax axis is tiled.

    This is the correctness oracle of the whole compiler: for every valid
    candidate, [run] must agree with the reference operators in
    {!Mcf_tensor.Ops} up to floating-point reassociation.  It also catches
    lowering bugs mechanically — a statement hoisted past a loop that
    actually indexes its tensor would read a stale or missing tile and
    surface as a numeric mismatch or an [Uninitialized_tile] error.

    Batched chains (heads) are supported: when [chain.batch > 1] every
    input and the output carry a leading batch axis, and the per-head
    program runs once per slice (the grid's batch dimension). *)

exception Uninitialized_tile of string
(** A compute statement read a tile that no Load produced under the current
    loop indices — i.e. the schedule is miscompiled.  The message names
    the offending tile ("tensor@[tile coords]") and the full loop-index
    environment at the point of the read
    ("tile T1@[0,2] read before any Load under \{k=1 m=0 n=2\}"), so a
    fuzz reproducer or test failure localizes the bad hoist directly. *)

val run : Mcf_ir.Program.t -> inputs:(string * Mcf_tensor.Tensor.t) list -> Mcf_tensor.Tensor.t
(** Execute the program.  [inputs] maps every chain input tensor name to a
    tensor whose shape matches the chain's axis sizes, with a leading batch
    axis when [chain.batch > 1].  Returns the chain output (same batching).
    @raise Invalid_argument on missing inputs or shape mismatch.
    @raise Uninitialized_tile on a miscompiled schedule. *)

val run_candidate :
  Mcf_ir.Chain.t ->
  Mcf_ir.Candidate.t ->
  inputs:(string * Mcf_tensor.Tensor.t) list ->
  Mcf_tensor.Tensor.t
(** Convenience: build (with all optimizations) then [run]. *)

val reference : Mcf_ir.Chain.t -> inputs:(string * Mcf_tensor.Tensor.t) list -> Mcf_tensor.Tensor.t
(** Direct un-tiled evaluation of the chain semantics (block by block, exact
    softmax), against which [run] is checked. *)
