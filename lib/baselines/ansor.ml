open Mcf_ir

let math_penalty = 3.0
let max_fusable_batch = 4
let trials = ref 1000
let trials_per_round = 64
let tvm_compile_s = 4.5
let model_train_s = 2.0
let measure_repeats = 10

(* Ansor's generated code runs the contractions off the MMA pipes. *)
let derate k = Backend.derate_math math_penalty k

let space_options =
  { Mcf_search.Space.default_options with
    include_flat = false;
    dead_loop_elim = false }

let measure ~clock spec (entry : Mcf_search.Space.entry) =
  Mcf_gpu.Clock.charge_compile clock ~toolchain_s:tvm_compile_s;
  match Mcf_codegen.Compile.compile spec (Mcf_search.Space.lowered entry) with
  | Error _ -> None
  | Ok kernel -> (
    match Mcf_gpu.Sim.run spec (derate kernel) with
    | Error _ -> None
    | Ok v ->
      Mcf_gpu.Clock.charge_measure clock ~kernel_time_s:v.time_s
        ~repeats:measure_repeats;
      Some (derate kernel, v.time_s))

let tune_fused ~rng ~clock spec chain =
  let entries, _ = Mcf_search.Space.enumerate ~options:space_options spec chain in
  match entries with
  | [] -> None
  | _ ->
    let pool = Array.of_list entries in
    let results = Hashtbl.create 256 in
    let model = ref None in
    let budget = ref !trials in
    let predict (e : Mcf_search.Space.entry) =
      match !model with
      | None -> Mcf_util.Rng.float rng 1.0
      | Some m -> Xgb.predict m (Xgb.feature_vector (Mcf_search.Space.lowered e))
    in
    while !budget > 0 do
      let round = min trials_per_round !budget in
      budget := !budget - round;
      (* rank the whole space with the learned model, explore 20% randomly *)
      let scored =
        Array.map (fun e -> (e, predict e)) pool
      in
      Array.sort (fun (_, a) (_, b) -> Float.compare a b) scored;
      let picks = ref [] in
      let n_guided = round * 4 / 5 in
      let unmeasured =
        Array.to_list scored
        |> List.map fst
        |> List.filter (fun (e : Mcf_search.Space.entry) ->
               not (Hashtbl.mem results (Candidate.key e.cand)))
      in
      picks := Mcf_util.Listx.take n_guided unmeasured;
      for _ = List.length !picks + 1 to round do
        picks := Mcf_util.Rng.pick rng pool :: !picks
      done;
      List.iter
        (fun (e : Mcf_search.Space.entry) ->
          let key = Candidate.key e.cand in
          match Hashtbl.find_opt results key with
          | Some _ ->
            (* Ansor re-measures revisited states; the cost is real even
               when the result is known. *)
            Mcf_gpu.Clock.charge_compile clock ~toolchain_s:tvm_compile_s
          | None -> Hashtbl.replace results key (e, measure ~clock spec e))
        !picks;
      (* retrain the cost model on everything measured so far *)
      let samples =
        Hashtbl.fold
          (fun _ (e, r) acc ->
            match r with
            | Some (_, t) ->
              ((Xgb.feature_vector (Mcf_search.Space.lowered e), log t) :: acc)
            | None -> acc)
          results []
      in
      if List.length samples >= 8 then begin
        Mcf_gpu.Clock.charge clock model_train_s;
        model := Some (Xgb.train samples)
      end
    done;
    let best =
      Hashtbl.fold
        (fun _ (_, r) acc ->
          match (r, acc) with
          | Some (k, t), Some (_, bt) when t < bt -> Some (k, t)
          | Some (k, t), None -> Some (k, t)
          | _, acc -> acc)
        results None
    in
    best

let tune_unfused ~clock spec chain =
  (* Per-operator tuning: Ansor still runs its trial budget, spread over
     the chain's operator tasks. *)
  Mcf_gpu.Clock.charge clock (float_of_int !trials *. tvm_compile_s);
  let kernels =
    List.map derate (Pytorch.chain_kernels ~fused_softmax:true spec chain)
  in
  match Backend.run_kernels ~dispatch_s:Backend.graph_dispatch_s spec kernels with
  | Error _ -> None
  | Ok t -> Some (kernels, t)

let tune spec (chain : Chain.t) =
  let seed =
    Int64.to_int
      (Int64.logand
         (Mcf_util.Hashing.fnv1a64 ("ansor|" ^ chain.cname ^ spec.Mcf_gpu.Spec.name))
         0x3FFFFFFFFFFFFFFFL)
  in
  let rng = Mcf_util.Rng.create seed in
  let clock = Mcf_gpu.Clock.create () in
  let run () =
    if chain.batch <= max_fusable_batch then
      match tune_fused ~rng ~clock spec chain with
      | Some (kernel, time_s) ->
        Ok
          { Backend.backend = "Ansor";
            kernels = [ kernel ];
            time_s;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            fused = true;
            note = None }
      | None -> (
        match tune_unfused ~clock spec chain with
        | Some (kernels, time_s) ->
          Ok
            { Backend.backend = "Ansor";
              kernels;
              time_s;
              tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
              tuning_wall_s = 0.0;
              fused = false;
              note = Some "fallback: unfused (no viable fused schedule)" }
        | None -> Error (Backend.Unsupported "no viable schedule"))
    else
      match tune_unfused ~clock spec chain with
      | Some (kernels, time_s) ->
        Ok
          { Backend.backend = "Ansor";
            kernels;
            time_s;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            fused = false;
            note = Some "fallback: batch too large for fusion sketches" }
      | None -> Error (Backend.Unsupported "no viable schedule")
  in
  let result, wall = Mcf_gpu.Clock.with_wall_clock run in
  Result.map (fun (o : Backend.outcome) -> { o with tuning_wall_s = wall }) result

let backend = { Backend.name = "Ansor"; tune }
