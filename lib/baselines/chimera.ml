let space_options =
  { Mcf_search.Space.default_options with
    include_flat = false;
    dead_loop_elim = false }

(* Chimera's objective: minimize data movement under its block execution
   layout; it accounts parallel occupancy but not redundant computation.
   Evaluated closed-form (no lowering) — traffic and block count from
   [Analytic] are bit-equal to the lowered walk's. *)
let data_movement_estimator (spec : Mcf_gpu.Spec.t) (e : Mcf_search.Space.entry) =
  let ctx = e.Mcf_search.Space.ctx in
  let ev =
    Mcf_model.Analytic.eval_candidate ~rule1:ctx.Mcf_search.Space.rule1
      ~dead_loop_elim:ctx.Mcf_search.Space.dead_loop_elim
      ~hoisting:ctx.Mcf_search.Space.hoisting
      ~elem_bytes:ctx.Mcf_search.Space.elem_bytes ctx.Mcf_search.Space.chain
      e.cand
  in
  let blocks = ev.Mcf_model.Analytic.blocks in
  let alpha = (blocks +. float_of_int spec.sm_count) /. blocks in
  ev.Mcf_model.Analytic.traffic_bytes /. spec.mem_bw *. alpha

let tune spec (chain : Mcf_ir.Chain.t) =
  let seed =
    Int64.to_int
      (Int64.logand
         (Mcf_util.Hashing.fnv1a64
            ("chimera|" ^ chain.cname ^ spec.Mcf_gpu.Spec.name))
         0x3FFFFFFFFFFFFFFFL)
  in
  let rng = Mcf_util.Rng.create seed in
  let clock = Mcf_gpu.Clock.create () in
  let run () =
    let entries, _ =
      Mcf_search.Space.enumerate ~options:space_options spec chain
    in
    Mcf_gpu.Clock.charge clock 2.0;
    match
      Mcf_search.Explore.run ~estimator:data_movement_estimator ~rng ~clock
        spec entries
    with
    | None -> Error (Backend.Unsupported "no viable candidate")
    | Some { best; best_time_s; _ } -> (
      match Mcf_codegen.Compile.compile spec (Mcf_search.Space.lowered best) with
      | Error e -> Error (Backend.Unsupported (Mcf_codegen.Compile.string_of_error e))
      | Ok kernel ->
        Ok
          { Backend.backend = "MCFuser-Chimera";
            kernels = [ kernel ];
            time_s = best_time_s;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            fused = true;
            note = None })
  in
  let result, wall = Mcf_gpu.Clock.with_wall_clock run in
  Result.map (fun (o : Backend.outcome) -> { o with tuning_wall_s = wall }) result

let backend = { Backend.name = "MCFuser-Chimera"; tune }
