(** One tuning session — the unit of request coalescing.

    Every job whose request derives the same {!Protocol.key} attaches to
    the same session; the session runs {!Mcf_search.Tuner.tune} exactly
    once and its result fans out to all attached jobs.  The mutable
    fields are guarded by the owning {!Server}'s lock; {!run} executes
    outside it (it is the long part). *)

type state =
  | Queued
  | Running
  | Done of Protocol.sched
  | Failed of string

type t = {
  skey : string;
  sreq : Protocol.tune_request;
  mutable sstate : state;
  mutable sjobs : string list;  (** Attached job ids, newest first. *)
}

val make : key:string -> req:Protocol.tune_request -> job:string -> t
val attach : t -> string -> unit

val run : ?measure:Mcf_search.Measure.t -> t -> (Protocol.sched, string) result
(** Run the tuner for this session's request.  Deterministic for a fixed
    request (the seed defaults from the chain name + device), so equal
    keys always yield bit-identical schedules.  Never raises: tuner
    errors and exceptions become [Error]. *)
