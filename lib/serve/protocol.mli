(** Wire format of the tuning service: request parsing, the served
    schedule record, and the coalescing-key derivation.

    A [POST /tune] body is one JSON object:

    {v
    { "workload": "G1",            // a built-in workload name, or
      "chain": { "kind": "gemm",   // gemm | mlp | attention | gemm3
                 "batch": 1, "m": 256, "n": 128, "k": 64, "h": 64,
                 "p": 64 },        // gemm3 only
      "device": "A100",            // optional, default A100
      "seed": 7,                   // optional tuner seed
      "reservoir": 512 }           // optional enumeration bound
    v}

    exactly one of ["workload"] / ["chain"] must be present.  The full
    schema (including responses) is documented in DESIGN.md. *)

type tune_request = {
  workload : string;  (** Display label: workload name or chain name. *)
  chain : Mcf_ir.Chain.t;
  spec : Mcf_gpu.Spec.t;
  seed : int option;
  reservoir : int option;
}

(** The served result of one tuning session — everything a client needs
    to deploy the schedule plus the session's funnel accounting.  This
    is also the schedule cache's value type, so a cache hit replays the
    original session's answer bit-for-bit. *)
type sched = {
  cand : string;  (** {!Mcf_ir.Candidate.serialize} spelling. *)
  time_s : float;  (** Measured (simulated) kernel time. *)
  virtual_s : float;  (** Tuning cost on the virtual clock. *)
  estimated : int;
  measured : int;
  generations : int;
}

val chain_of_workload : string -> (Mcf_ir.Chain.t, string) result
(** Resolve a built-in workload name (G1-G12, S1-S9, D5-D8, network
    names, mha aliases) — the serve-side twin of the CLI's resolver. *)

val parse_tune_request : string -> (tune_request, string) result
(** Parse a [POST /tune] body.  All errors are client errors (400). *)

val key : tune_request -> string
(** Coalescing/cache key: device name + spec fingerprint hash + chain
    fingerprint hash + seed + reservoir.  Requests with equal keys are
    guaranteed to produce bit-identical schedules, so they share one
    tuner session (in-flight) or one cache entry (completed). *)

val sched_json : sched -> Mcf_util.Json.t
val sched_of_json : Mcf_util.Json.t -> sched option
val sched_of_outcome : Mcf_search.Tuner.outcome -> sched
