module Json = Mcf_util.Json
module Httpd = Mcf_util.Httpd
module Shardmap = Mcf_util.Shardmap
module Metrics = Mcf_obs.Metrics

(* The tuning-as-a-service daemon.  See server.mli for the contract.

   Concurrency layout: one mutex guards the job table, the session
   table, the session queue and all state transitions; tuner sessions
   run on plain worker threads *outside* the lock (the pool domains
   underneath Tuner.tune do the actual parallel work, and Pool.run_range
   is safe under concurrent callers).  The schedule cache is a Shardmap
   with its own per-shard locks, so /tune cache hits never touch the
   server lock's hot path for longer than a table insert. *)

let log_src = Logs.Src.create "mcfuser.serve" ~doc:"Tuning service daemon"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_requests = Metrics.counter "serve.requests"
let c_coalesced = Metrics.counter "serve.coalesced"
let c_cache_hits = Metrics.counter "serve.cache.hits"
let c_cache_misses = Metrics.counter "serve.cache.misses"
let c_rejected = Metrics.counter "serve.rejected"
let c_sessions = Metrics.counter "serve.sessions"
let c_jobs_done = Metrics.counter "serve.jobs_done"
let h_latency = Metrics.histogram "serve.latency_s"

type config = {
  addr : string;
  port : int;
  workers : int;
  max_connections : int;
  read_timeout_s : float;
  max_body_bytes : int;
  cache_shards : int;
  cache_capacity : int;
  schedule_cache_file : string option;
  measure_cache_file : string option;
}

let default_config =
  { addr = "127.0.0.1";
    port = 0;
    workers = 2;
    max_connections = 16;
    read_timeout_s = 5.0;
    max_body_bytes = 1024 * 1024;
    cache_shards = 16;
    cache_capacity = 65536;
    schedule_cache_file = None;
    measure_cache_file = None }

type source = Tuned | Cached | Coalesced

let source_string = function
  | Tuned -> "tuned"
  | Cached -> "cached"
  | Coalesced -> "coalesced"

type job_status =
  | Queued
  | Running
  | Done of Protocol.sched
  | Failed of string

type job = {
  jid : string;
  jkey : string;
  jworkload : string;
  jdevice : string;
  jsource : source;
  jsubmit_s : float;
  mutable jstatus : job_status;
}

type job_view = {
  vid : string;
  vkey : string;
  vworkload : string;
  vdevice : string;
  vsource : source;
  vstatus : job_status;
}

type lifecycle = Serving | Draining | Stopped

type t = {
  cfg : config;
  lock : Mutex.t;
  wake : Condition.t;  (* workers: queue became non-empty / draining *)
  done_cv : Condition.t;  (* awaiters: some job finished *)
  jobs_tbl : (string, job) Hashtbl.t;
  mutable order : string list;  (* job ids, newest first *)
  sessions : (string, Session.t) Hashtbl.t;  (* in-flight, by key *)
  queue : Session.t Queue.t;
  mutable next_id : int;
  mutable state : lifecycle;
  mutable worker_threads : Thread.t list;
  cache : Protocol.sched Shardmap.t;
  measure_cache : Mcf_search.Measure.cache;
  mutable httpd : Httpd.t option;
  shutdown_requested : bool Atomic.t;
  stop_started : bool Atomic.t;
}

let url t = match t.httpd with Some h -> Httpd.url h | None -> ""
let port t = match t.httpd with Some h -> Httpd.port h | None -> 0

let view_of_job (j : job) =
  { vid = j.jid;
    vkey = j.jkey;
    vworkload = j.jworkload;
    vdevice = j.jdevice;
    vsource = j.jsource;
    vstatus = j.jstatus }

(* --- schedule-cache persistence ---------------------------------------- *)

let cache_entry_json key (s : Protocol.sched) =
  match Protocol.sched_json s with
  | Json.Obj kvs -> Json.Obj (("key", Json.Str key) :: kvs)
  | j -> j

let persist_cache t path =
  let entries = Shardmap.fold t.cache (fun k v acc -> (k, v) :: acc) [] in
  let entries = List.sort (fun (a, _) (b, _) -> compare a b) entries in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  List.iter
    (fun (k, v) ->
      output_string oc (Json.to_string (cache_entry_json k v));
      output_char oc '\n')
    entries;
  close_out oc;
  Sys.rename tmp path;
  List.length entries

let load_cache t path =
  let loaded, malformed =
    Json.fold_jsonl ~path ~init:0 ~f:(fun n j ->
        match (Json.member "key" j, Protocol.sched_of_json j) with
        | Some (Json.Str key), Some sched ->
          Shardmap.set t.cache key sched;
          Some (n + 1)
        | _ -> None)
  in
  if loaded > 0 || malformed > 0 then
    Log.info (fun m ->
        m "schedule cache warm-start: %d entries from %s (%d malformed)"
          loaded path malformed);
  loaded

(* --- job completion ---------------------------------------------------- *)

(* Caller holds t.lock. *)
let finish_job t (j : job) status =
  j.jstatus <- status;
  (match status with
  | Done _ | Failed _ ->
    Metrics.incr c_jobs_done;
    Metrics.observe h_latency (Unix.gettimeofday () -. j.jsubmit_s)
  | Queued | Running -> ());
  ignore t

(* --- worker loop -------------------------------------------------------- *)

let session_jobs t (sess : Session.t) =
  List.filter_map (Hashtbl.find_opt t.jobs_tbl) sess.Session.sjobs

let rec worker_loop t () =
  Mutex.lock t.lock;
  while Queue.is_empty t.queue && t.state = Serving do
    Condition.wait t.wake t.lock
  done;
  if Queue.is_empty t.queue then Mutex.unlock t.lock
    (* draining and nothing left: exit *)
  else begin
    let sess = Queue.pop t.queue in
    sess.Session.sstate <- Session.Running;
    List.iter (fun j -> j.jstatus <- Running) (session_jobs t sess);
    Mutex.unlock t.lock;
    let measure =
      Mcf_search.Measure.create ~cache:t.measure_cache
        sess.Session.sreq.Protocol.spec
    in
    let result = Session.run ~measure sess in
    Mutex.lock t.lock;
    (match result with
    | Ok sched ->
      Shardmap.set t.cache sess.Session.skey sched;
      sess.Session.sstate <- Session.Done sched;
      List.iter (fun j -> finish_job t j (Done sched)) (session_jobs t sess)
    | Error msg ->
      sess.Session.sstate <- Session.Failed msg;
      List.iter (fun j -> finish_job t j (Failed msg)) (session_jobs t sess));
    Hashtbl.remove t.sessions sess.Session.skey;
    Condition.broadcast t.done_cv;
    Mutex.unlock t.lock;
    worker_loop t ()
  end

(* --- submission --------------------------------------------------------- *)

let submit t (req : Protocol.tune_request) =
  let key = Protocol.key req in
  Mutex.lock t.lock;
  if t.state <> Serving then begin
    Mutex.unlock t.lock;
    Metrics.incr c_rejected;
    Error "server is shutting down"
  end
  else begin
    Metrics.incr c_requests;
    t.next_id <- t.next_id + 1;
    let jid = Printf.sprintf "j%d" t.next_id in
    let mk source status =
      let j =
        { jid;
          jkey = key;
          jworkload = req.workload;
          jdevice = req.spec.name;
          jsource = source;
          jsubmit_s = Unix.gettimeofday ();
          jstatus = status }
      in
      Hashtbl.replace t.jobs_tbl jid j;
      t.order <- jid :: t.order;
      j
    in
    match Shardmap.find t.cache key with
    | Some sched ->
      Metrics.incr c_cache_hits;
      let j = mk Cached Queued in
      finish_job t j (Done sched);
      Condition.broadcast t.done_cv;
      Mutex.unlock t.lock;
      Ok (jid, Cached)
    | None -> (
      match Hashtbl.find_opt t.sessions key with
      | Some sess ->
        Metrics.incr c_coalesced;
        Session.attach sess jid;
        let status =
          match sess.Session.sstate with
          | Session.Running -> Running
          | _ -> Queued
        in
        ignore (mk Coalesced status);
        Mutex.unlock t.lock;
        Ok (jid, Coalesced)
      | None ->
        Metrics.incr c_cache_misses;
        Metrics.incr c_sessions;
        let sess = Session.make ~key ~req ~job:jid in
        Hashtbl.add t.sessions key sess;
        Queue.push sess t.queue;
        ignore (mk Tuned Queued);
        Condition.signal t.wake;
        Mutex.unlock t.lock;
        Ok (jid, Tuned))
  end

let job t jid =
  Mutex.lock t.lock;
  let v = Option.map view_of_job (Hashtbl.find_opt t.jobs_tbl jid) in
  Mutex.unlock t.lock;
  v

let await t jid =
  Mutex.lock t.lock;
  let rec go () =
    match Hashtbl.find_opt t.jobs_tbl jid with
    | None ->
      Mutex.unlock t.lock;
      None
    | Some j -> (
      match j.jstatus with
      | Done _ | Failed _ ->
        let v = view_of_job j in
        Mutex.unlock t.lock;
        Some v
      | Queued | Running ->
        Condition.wait t.done_cv t.lock;
        go ())
  in
  go ()

let jobs t =
  Mutex.lock t.lock;
  let vs =
    List.rev_map
      (fun jid -> view_of_job (Hashtbl.find t.jobs_tbl jid))
      t.order
  in
  Mutex.unlock t.lock;
  vs

let cache_size t = Shardmap.length t.cache

(* --- shutdown ----------------------------------------------------------- *)

(* Signal-safe: only flips an atomic (no locks), so it can run from a
   SIGINT/SIGTERM handler at any safe point.  {!wait_shutdown} polls. *)
let request_shutdown t = Atomic.set t.shutdown_requested true

let shutdown_requested t = Atomic.get t.shutdown_requested

let wait_shutdown t =
  while not (Atomic.get t.shutdown_requested) do
    Thread.delay 0.05
  done

let stop t =
  if not (Atomic.exchange t.stop_started true) then begin
    Mutex.lock t.lock;
    if t.state = Serving then t.state <- Draining;
    Condition.broadcast t.wake;
    Mutex.unlock t.lock;
    (* Workers keep pulling queued sessions until the queue is dry, so a
       stop mid-burst drains every accepted job before returning. *)
    List.iter Thread.join t.worker_threads;
    (match t.httpd with Some h -> Httpd.stop h | None -> ());
    Mutex.lock t.lock;
    t.state <- Stopped;
    Mutex.unlock t.lock;
    (match t.cfg.schedule_cache_file with
    | Some path ->
      let n = persist_cache t path in
      Log.info (fun m -> m "persisted %d schedule cache entries to %s" n path)
    | None -> ());
    match t.cfg.measure_cache_file with
    | Some path ->
      let n = Mcf_search.Measure.cache_save t.measure_cache path in
      Log.info (fun m -> m "persisted %d measurements to %s" n path)
    | None -> ()
  end

(* --- HTTP surface -------------------------------------------------------- *)

let job_json t (v : job_view) =
  let state, extra =
    match v.vstatus with
    | Queued -> ("queued", [])
    | Running -> ("running", [])
    | Done s -> ("done", [ ("result", Protocol.sched_json s) ])
    | Failed msg -> ("failed", [ ("error", Json.Str msg) ])
  in
  ignore t;
  Json.Obj
    ([ ("job", Json.Str v.vid);
       ("workload", Json.Str v.vworkload);
       ("device", Json.Str v.vdevice);
       ("source", Json.Str (source_string v.vsource));
       ("state", Json.Str state);
       ("key", Json.Str v.vkey);
     ]
    @ extra)

let jobs_json t =
  let vs = jobs t in
  let count p = List.length (List.filter p vs) in
  Json.Obj
    [ ( "jobs",
        Json.List
          (List.map
             (fun v ->
               Json.Obj
                 [ ("job", Json.Str v.vid);
                   ("workload", Json.Str v.vworkload);
                   ("device", Json.Str v.vdevice);
                   ("source", Json.Str (source_string v.vsource));
                   ( "state",
                     Json.Str
                       (match v.vstatus with
                       | Queued -> "queued"
                       | Running -> "running"
                       | Done _ -> "done"
                       | Failed _ -> "failed") );
                 ])
             vs) );
      ( "counts",
        Json.Obj
          [ ( "queued",
              Json.num_of_int
                (count (fun v -> v.vstatus = Queued)) );
            ( "running",
              Json.num_of_int
                (count (fun v -> v.vstatus = Running)) );
            ( "done",
              Json.num_of_int
                (count (fun v ->
                     match v.vstatus with Done _ -> true | _ -> false)) );
            ( "failed",
              Json.num_of_int
                (count (fun v ->
                     match v.vstatus with Failed _ -> true | _ -> false)) );
          ] );
    ]

let serve_status_json t =
  Mutex.lock t.lock;
  let queued = Queue.length t.queue in
  let in_flight = Hashtbl.length t.sessions in
  let total = Hashtbl.length t.jobs_tbl in
  let state = t.state in
  Mutex.unlock t.lock;
  Json.Obj
    [ ( "state",
        Json.Str
          (match state with
          | Serving -> "serving"
          | Draining -> "draining"
          | Stopped -> "stopped") );
      ("workers", Json.num_of_int t.cfg.workers);
      ("queued_sessions", Json.num_of_int queued);
      ("inflight_sessions", Json.num_of_int in_flight);
      ("jobs", Json.num_of_int total);
      ("cache_entries", Json.num_of_int (cache_size t));
    ]

let json_response ?(status = 200) j =
  Httpd.response ~status ~content_type:"application/json"
    (Json.to_string j ^ "\n")

let error_response status msg =
  json_response ~status (Json.Obj [ ("error", Json.Str msg) ])

let strip_prefix p s =
  let lp = String.length p in
  if String.length s > lp && String.sub s 0 lp = p then
    Some (String.sub s lp (String.length s - lp))
  else None

let handler t (req : Httpd.request) =
  match (req.meth, req.path) with
  | "POST", "/tune" -> (
    match Protocol.parse_tune_request req.body with
    | Error msg ->
      Metrics.incr c_rejected;
      error_response 400 msg
    | Ok treq -> (
      match submit t treq with
      | Error msg -> error_response 503 msg
      | Ok (jid, source) ->
        let status = match source with Cached -> 200 | _ -> 202 in
        let v = Option.get (job t jid) in
        json_response ~status (job_json t v)))
  | "GET", "/tune" ->
    Httpd.response ~status:405 "method not allowed (POST /tune)\n"
  | "GET", "/jobs" -> json_response (jobs_json t)
  | "GET", path when strip_prefix "/jobs/" path <> None -> (
    let jid = Option.get (strip_prefix "/jobs/" path) in
    match job t jid with
    | None -> error_response 404 (Printf.sprintf "unknown job %S" jid)
    | Some v -> json_response (job_json t v))
  | "POST", "/shutdown" ->
    request_shutdown t;
    json_response ~status:202 (Json.Obj [ ("state", Json.Str "draining") ])
  | "GET", "/status" -> (
    (* The observability /status document plus a serve section. *)
    match Mcf_obs.Export.status_json () with
    | Json.Obj kvs ->
      json_response (Json.Obj (kvs @ [ ("serve", serve_status_json t) ]))
    | j -> json_response j)
  | _ -> Mcf_obs.Export.handler req

(* --- startup ------------------------------------------------------------- *)

let start ?(config = default_config) () =
  let cfg = { config with workers = max 1 config.workers } in
  let t =
    { cfg;
      lock = Mutex.create ();
      wake = Condition.create ();
      done_cv = Condition.create ();
      jobs_tbl = Hashtbl.create 64;
      order = [];
      sessions = Hashtbl.create 16;
      queue = Queue.create ();
      next_id = 0;
      state = Serving;
      worker_threads = [];
      cache =
        Shardmap.create ~shards:cfg.cache_shards
          ~capacity_per_shard:cfg.cache_capacity ();
      measure_cache = Mcf_search.Measure.cache_create ();
      httpd = None;
      shutdown_requested = Atomic.make false;
      stop_started = Atomic.make false }
  in
  (match cfg.schedule_cache_file with
  | Some path when Sys.file_exists path -> ignore (load_cache t path)
  | _ -> ());
  (match cfg.measure_cache_file with
  | Some path when Sys.file_exists path ->
    let loaded, malformed =
      Mcf_search.Measure.cache_load t.measure_cache path
    in
    Log.info (fun m ->
        m "measure cache warm-start: %d entries from %s (%d malformed)" loaded
          path malformed)
  | _ -> ());
  match
    Httpd.start ~max_connections:cfg.max_connections
      ~read_timeout_s:cfg.read_timeout_s ~max_body_bytes:cfg.max_body_bytes
      ~addr:cfg.addr ~port:cfg.port ~handler:(fun req -> handler t req) ()
  with
  | Error msg -> Error msg
  | Ok h ->
    t.httpd <- Some h;
    t.worker_threads <-
      List.init cfg.workers (fun _ -> Thread.create (worker_loop t) ());
    Ok t
