(* One tuning session: the unit of coalescing.  All jobs whose request
   derives the same Protocol.key attach to one session, which runs
   Tuner.tune exactly once.  State transitions are guarded by the owning
   server's lock; [run] itself executes outside it. *)

type state =
  | Queued
  | Running
  | Done of Protocol.sched
  | Failed of string

type t = {
  skey : string;
  sreq : Protocol.tune_request;
  mutable sstate : state;
  mutable sjobs : string list;  (* attached job ids, newest first *)
}

let make ~key ~req ~job = { skey = key; sreq = req; sstate = Queued; sjobs = [ job ] }

let attach t job = t.sjobs <- job :: t.sjobs

let run ?measure t =
  let req = t.sreq in
  match
    Mcf_search.Tuner.tune ?seed:req.seed ?reservoir:req.reservoir ?measure
      req.spec req.chain
  with
  | Ok o -> Ok (Protocol.sched_of_outcome o)
  | Error Mcf_search.Tuner.No_viable_candidate ->
    Error
      (Printf.sprintf "no viable candidate for %s on %s" req.workload
         req.spec.name)
  | exception e ->
    Error (Printf.sprintf "tuner exception: %s" (Printexc.to_string e))
