module Json = Mcf_util.Json

(* Wire format of the tuning service.  See protocol.mli for the
   contract and DESIGN.md for the JSON schema. *)

type tune_request = {
  workload : string;
  chain : Mcf_ir.Chain.t;
  spec : Mcf_gpu.Spec.t;
  seed : int option;
  reservoir : int option;
}

type sched = {
  cand : string;
  time_s : float;
  virtual_s : float;
  estimated : int;
  measured : int;
  generations : int;
}

(* --- workload resolution ---------------------------------------------- *)

let chain_of_workload name =
  let canon = String.lowercase_ascii name in
  let strip_prefix p s =
    let lp = String.length p in
    if String.length s > lp && String.sub s 0 lp = p then
      Some (String.sub s lp (String.length s - lp))
    else None
  in
  let gemm =
    List.find_opt
      (fun (g : Mcf_workloads.Configs.gemm_config) ->
        String.lowercase_ascii g.gname = canon)
      Mcf_workloads.Configs.gemm_chains
  in
  match gemm with
  | Some g -> Ok (Mcf_workloads.Configs.gemm_chain g)
  | None -> (
    let attention =
      List.find_opt
        (fun (s : Mcf_workloads.Configs.attention_config) ->
          let network = String.lowercase_ascii s.network in
          String.lowercase_ascii s.sname = canon
          || network = canon
          ||
          match strip_prefix "mha-" canon with
          | Some suffix -> network = "bert-" ^ suffix
          | None -> false)
        Mcf_workloads.Configs.attentions
    in
    match attention with
    | Some s -> Ok (Mcf_workloads.Configs.attention s)
    | None -> (
      match Mcf_workloads.Configs.find_deep name with
      | Some d -> Ok (Mcf_workloads.Configs.deep_chain d)
      | None ->
        Error
          (Printf.sprintf
             "unknown workload %S (G1-G12, S1-S9, D5-D8, a network name like \
              bert-base, or mha-small/base/large)"
             name)))

(* --- request parsing --------------------------------------------------- *)

let jint j = match j with Json.Num n when Float.is_integer n -> Some (int_of_float n) | _ -> None

let field_int obj name ~default =
  match Json.member name obj with
  | None -> Ok default
  | Some j -> (
    match jint j with
    | Some n when n > 0 -> Ok n
    | _ -> Error (Printf.sprintf "field %S must be a positive integer" name))

let chain_of_json j =
  match Json.member "kind" j with
  | Some (Json.Str kind) -> (
    let dims () =
      match
        ( field_int j "batch" ~default:1,
          field_int j "m" ~default:0,
          field_int j "n" ~default:0,
          field_int j "k" ~default:0,
          field_int j "h" ~default:0 )
      with
      | Ok batch, Ok m, Ok n, Ok k, Ok h ->
        if m <= 0 || n <= 0 || k <= 0 || h <= 0 then
          Error "chain dims m, n, k, h must all be positive integers"
        else Ok (batch, m, n, k, h)
      | (Error _ as e), _, _, _, _
      | _, (Error _ as e), _, _, _
      | _, _, (Error _ as e), _, _
      | _, _, _, (Error _ as e), _
      | _, _, _, _, (Error _ as e) -> e
    in
    match kind with
    | "gemm" -> (
      match dims () with
      | Error _ as e -> e
      | Ok (batch, m, n, k, h) ->
        Ok (Mcf_ir.Chain.gemm_chain ~batch ~m ~n ~k ~h ()))
    | "mlp" -> (
      match dims () with
      | Error _ as e -> e
      | Ok (batch, m, n, k, h) ->
        Ok (Mcf_ir.Chain.mlp_chain ~batch ~m ~n ~k ~h ()))
    | "attention" -> (
      match dims () with
      | Error _ as e -> e
      | Ok (heads, m, n, k, h) ->
        Ok (Mcf_ir.Chain.attention ~heads ~m ~n ~k ~h ()))
    | "gemm3" -> (
      match (dims (), field_int j "p" ~default:0) with
      | Error _ as e, _ -> e
      | _, Error _ -> Error "field \"p\" must be a positive integer"
      | Ok (batch, m, n, k, h), Ok p ->
        if p <= 0 then Error "chain kind \"gemm3\" requires a positive \"p\""
        else Ok (Mcf_ir.Chain.gemm_chain3 ~batch ~m ~n ~k ~h ~p ()))
    | other ->
      Error
        (Printf.sprintf
           "unknown chain kind %S (expected gemm, mlp, attention or gemm3)"
           other))
  | Some _ -> Error "chain field \"kind\" must be a string"
  | None -> Error "chain object is missing the \"kind\" field"

let parse_tune_request body =
  match Json.parse (String.trim body) with
  | Error msg -> Error (Printf.sprintf "invalid JSON: %s" msg)
  | Ok (Json.Obj _ as j) -> (
    let chain =
      match (Json.member "workload" j, Json.member "chain" j) with
      | Some (Json.Str _), Some _ | Some _, Some _ ->
        Error "give either \"workload\" or \"chain\", not both"
      | Some (Json.Str w), None -> (
        match chain_of_workload w with
        | Ok c -> Ok (w, c)
        | Error _ as e -> e)
      | Some _, None -> Error "field \"workload\" must be a string"
      | None, Some (Json.Obj _ as cj) -> (
        match chain_of_json cj with
        | Ok c -> Ok (c.Mcf_ir.Chain.cname, c)
        | Error _ as e -> e)
      | None, Some _ -> Error "field \"chain\" must be an object"
      | None, None -> Error "request needs a \"workload\" or \"chain\" field"
    in
    match chain with
    | Error _ as e -> e
    | Ok (workload, chain) -> (
      let device =
        match Json.member "device" j with
        | None -> Ok "A100"
        | Some (Json.Str d) -> Ok d
        | Some _ -> Error "field \"device\" must be a string"
      in
      match device with
      | Error _ as e -> e
      | Ok device -> (
        match Mcf_gpu.Spec.by_name device with
        | None ->
          Error
            (Printf.sprintf "unknown device %S (available: %s)" device
               (String.concat ", "
                  (List.map
                     (fun (s : Mcf_gpu.Spec.t) -> s.name)
                     Mcf_gpu.Spec.all)))
        | Some spec -> (
          let opt_field name =
            match Json.member name j with
            | None -> Ok None
            | Some v -> (
              match jint v with
              | Some n when n >= 0 -> Ok (Some n)
              | _ ->
                Error
                  (Printf.sprintf "field %S must be a non-negative integer"
                     name))
          in
          match (opt_field "seed", opt_field "reservoir") with
          | Error _ as e, _ | _, (Error _ as e) -> e
          | Ok seed, Ok reservoir ->
            Ok { workload; chain; spec; seed; reservoir }))))
  | Ok _ -> Error "request body must be a JSON object"

(* --- coalescing key ---------------------------------------------------- *)

(* The chain fingerprint covers the chain name (which the tuner's default
   seed derives from), every axis and every tensor; the spec fingerprint
   covers every device field.  Two requests with equal keys therefore run
   the exact same deterministic tuning session. *)
let key (r : tune_request) =
  let fp s = Printf.sprintf "%Lx" (Mcf_util.Hashing.fnv1a64 s) in
  Printf.sprintf "%s|%s|%s|seed=%s|res=%s" r.spec.name
    (fp (Mcf_gpu.Spec.fingerprint r.spec))
    (Mcf_search.Measure.chain_fp r.chain)
    (match r.seed with Some s -> string_of_int s | None -> "auto")
    (match r.reservoir with Some n -> string_of_int n | None -> "none")

(* --- sched JSON -------------------------------------------------------- *)

let sched_json (s : sched) =
  Json.Obj
    [ ("candidate", Json.Str s.cand);
      ("kernel_time_s", Json.Num s.time_s);
      ("tuning_virtual_s", Json.Num s.virtual_s);
      ("estimated", Json.num_of_int s.estimated);
      ("measured", Json.num_of_int s.measured);
      ("generations", Json.num_of_int s.generations);
    ]

let sched_of_json j =
  match
    ( Json.member "candidate" j,
      Json.member "kernel_time_s" j,
      Json.member "tuning_virtual_s" j,
      Json.member "estimated" j,
      Json.member "measured" j,
      Json.member "generations" j )
  with
  | ( Some (Json.Str cand),
      Some (Json.Num time_s),
      Some (Json.Num virtual_s),
      Some ej,
      Some mj,
      Some gj ) -> (
    match (jint ej, jint mj, jint gj) with
    | Some estimated, Some measured, Some generations ->
      Some { cand; time_s; virtual_s; estimated; measured; generations }
    | _ -> None)
  | _ -> None

let sched_of_outcome (o : Mcf_search.Tuner.outcome) =
  { cand = Mcf_ir.Candidate.serialize o.best.cand;
    time_s = o.kernel_time_s;
    virtual_s = o.tuning_virtual_s;
    estimated = o.search_stats.estimated;
    measured = o.search_stats.measured;
    generations = o.search_stats.generations }
