(** The [mcfuser serve] daemon: a long-lived tuning service over
    {!Mcf_util.Httpd}.

    Endpoints (on top of the {!Mcf_obs.Export} telemetry surface, which
    keeps answering [/metrics], [/healthz], [/readyz] and [/]):

    - [POST /tune] — body per {!Protocol.parse_tune_request}.  Answers
      [200] with a completed job when the schedule cache already holds
      the key, else [202] with a queued/coalesced job.  Malformed
      requests are [400]; submissions during shutdown are [503].
    - [GET /jobs/:id] — one job document (state, source, result).
    - [GET /jobs] — every job this daemon has accepted, in submission
      order, plus per-state counts.
    - [POST /shutdown] — request a graceful drain ([202]).
    - [GET /status] — the telemetry status document extended with a
      ["serve"] section (lifecycle, queue depth, cache size).

    Requests whose {!Protocol.key} matches an in-flight session attach
    to it (coalescing: one tuner run, N answers); completed keys are
    served from a {!Mcf_util.Shardmap}-backed schedule cache with
    per-shard LRU eviction, warm-started from and persisted to JSONL.
    All sessions share one content-addressed measurement cache, which
    never changes results — a served schedule is bit-identical to a
    one-shot [Tuner.tune] of the same request.

    [serve.*] counters: [requests], [coalesced], [cache.hits],
    [cache.misses] (new sessions), [rejected], [sessions], [jobs_done],
    plus the [serve.latency_s] histogram. *)

type config = {
  addr : string;
  port : int;  (** 0 asks the kernel; read back with {!port}. *)
  workers : int;  (** Tuner worker threads (≥ 1). *)
  max_connections : int;
  read_timeout_s : float;
  max_body_bytes : int;
  cache_shards : int;
  cache_capacity : int;  (** Per-shard completed-entry LRU bound. *)
  schedule_cache_file : string option;
      (** Warm-start source and graceful-shutdown sink (JSONL). *)
  measure_cache_file : string option;
      (** Shared measurement cache warm-start/persist (JSONL). *)
}

val default_config : config
(** 127.0.0.1:0, 2 workers, 16 connections, 5s read timeout, 1 MiB
    bodies, 16×65536 cache, no persistence. *)

type source = Tuned | Cached | Coalesced

val source_string : source -> string

type job_status =
  | Queued
  | Running
  | Done of Protocol.sched
  | Failed of string

type job_view = {
  vid : string;
  vkey : string;
  vworkload : string;
  vdevice : string;
  vsource : source;
  vstatus : job_status;
}

type t

val start : ?config:config -> unit -> (t, string) result
(** Warm-start the caches, bind the listener and spawn the workers. *)

val url : t -> string
val port : t -> int

val submit : t -> Protocol.tune_request -> (string * source, string) result
(** In-process submission (the [POST /tune] handler and the tests use
    this path): returns the new job id and how it was satisfied —
    [Cached] (already done), [Coalesced] (attached to an in-flight
    session) or [Tuned] (a fresh session was queued).  [Error] once
    shutdown has begun. *)

val job : t -> string -> job_view option
val jobs : t -> job_view list  (** Submission order. *)

val await : t -> string -> job_view option
(** Block until the job completes ([None] for unknown ids). *)

val cache_size : t -> int

val request_shutdown : t -> unit
(** Async shutdown trigger (signal handlers, [POST /shutdown]). *)

val shutdown_requested : t -> bool

val wait_shutdown : t -> unit
(** Block the calling thread until {!request_shutdown} fires. *)

val stop : t -> unit
(** Graceful stop: refuse new submissions, drain every queued and
    running session to completion, stop the listener, then persist the
    caches.  Idempotent. *)

val handler : t -> Mcf_util.Httpd.request -> Mcf_util.Httpd.response
(** The daemon's request router (exposed for direct-handler tests). *)
