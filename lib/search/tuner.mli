(** MCFuser's top-level tuning entry point.

    [tune spec chain] runs the full pipeline of the paper: enumerate and
    prune the tiling space (§III), then explore it with the analytical
    model + measured top-k loop (§IV), returning the best fused kernel
    found together with the tuning-cost accounting used by Table IV. *)

type outcome = {
  chain : Mcf_ir.Chain.t;
  spec : Mcf_gpu.Spec.t;
  best : Space.entry;
  kernel : Mcf_gpu.Kernel.t;  (** Compiled best candidate. *)
  kernel_time_s : float;  (** Measured (simulated) execution time. *)
  funnel : Space.funnel;
  search_stats : Explore.stats;
  tuning_virtual_s : float;  (** Compile + device-measurement accounting. *)
  tuning_wall_s : float;
      (** Real OCaml wall-clock of the tuner, taken from the [tuner.tune]
          root span ({!Mcf_obs.Trace.timed}) so the trace file and every
          report derive from one measurement. *)
  phases : (string * float) list;
      (** Non-overlapping wall-clock breakdown in execution order, in
          seconds: [tuner.enumerate] (with its [space.precheck]
          sub-phase carved out and listed right after it), then
          [tuner.explore] (likewise with its [tuner.measure] sub-phase —
          the explorer's measurement batches — carved out and listed
          after it) and [tuner.codegen].  The entries sum to at most
          [tuning_wall_s]; the remainder is untimed glue. *)
}

type error =
  | No_viable_candidate
      (** Every candidate was invalid, over shared memory, or failed to
          launch: the chain cannot be fused on this device. *)

val tune :
  ?options:Space.options ->
  ?params:Explore.params ->
  ?estimator:(Mcf_gpu.Spec.t -> Space.entry -> float) ->
  ?seed:int ->
  ?reservoir:int ->
  ?measure:Measure.t ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  (outcome, error) result
(** Deterministic for a fixed [seed] (default derived from the chain
    name and device).

    [measure] is the batched measurement engine handed to the explorer
    (defaults to a fresh cache-less one); attach a
    {!Measure.cache} there — or pass [--measure-cache FILE] on the CLI —
    to reuse measurements across tuning runs.  Caching never changes the
    outcome: cache hits return the deterministic simulator's value
    bit-for-bit and charge the virtual clock identically.

    [reservoir] bounds how many enumerated candidates stay resident for
    exploration: only the [reservoir] best by analytical estimate are
    kept (see {!Space.enumerate}).  Unset, the explorer sees every valid
    candidate — the paper's behaviour and the bit-identity baseline.
    Deep (5–8-block) chains need a bound: their valid space alone can
    dwarf memory.

    When {!Mcf_obs.Recorder} is recording, [tune] emits the full flight
    record of the run — a ["run"] header (device, chain, options, seed,
    jobs), the enumeration's prune attribution, the explorer's
    per-generation and per-measurement events, and a ["result"]/["end"]
    pair.  Recording never changes the outcome: results are bit-identical
    with the recorder on or off, at any [--jobs]. *)

val pseudo_code : outcome -> string
(** The Fig. 4-style rendering of the winning schedule. *)

val triton_source : outcome -> string
(** The generated Triton kernel for the winning schedule. *)
