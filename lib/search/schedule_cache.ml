open Mcf_ir

let log_src = Logs.Src.create "mcfuser.cache" ~doc:"MCFuser schedule cache"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_hits = Mcf_obs.Metrics.counter "cache.hits"
let c_misses = Mcf_obs.Metrics.counter "cache.misses"

type entry = {
  echain : string;
  edevice : string;
  ecand : Candidate.t;
  etime_s : float;
}

type t = entry list

let empty = []

let key e = (e.echain, e.edevice)

(* The one replace path: keep the first (most recent) entry per
   (chain, device) key, preserving list order.  Both [add] and [load]
   funnel through it, so their latest-wins semantics cannot drift. *)
let dedup_keep_first entries =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun e ->
      let k = key e in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    entries

let add t e = dedup_keep_first (e :: t)

let size = List.length

(* The line format is [Candidate.serialize]'s — the same serialization
   the measurement cache keys on — and is backward-compatible: files
   written before the extraction parse unchanged. *)
let serialize_candidate = Candidate.serialize

let parse_candidate chain s =
  let ( let* ) r f = Result.bind r f in
  let axis_of name =
    match List.find_opt (fun (a : Axis.t) -> a.name = name) chain.Chain.axes with
    | Some a -> Ok a
    | None -> Error ("unknown axis " ^ name)
  in
  let axes_of csv =
    List.fold_right
      (fun name acc ->
        let* acc = acc in
        let* a = axis_of name in
        Ok (a :: acc))
      (String.split_on_char ',' csv)
      (Ok [])
  in
  match String.split_on_char ';' s with
  | [ tiling_s; tiles_s ] ->
    let* tiling =
      match String.index_opt tiling_s ':' with
      | None -> Error "missing tiling kind"
      | Some i -> (
        let kind = String.sub tiling_s 0 i in
        let rest =
          String.sub tiling_s (i + 1) (String.length tiling_s - i - 1)
        in
        match kind with
        | "deep" ->
          let* axes = axes_of rest in
          Ok (Tiling.Deep axes)
        | "flat" -> (
          match String.split_on_char '/' rest with
          | prefix :: groups when groups <> [] ->
            let* prefix = axes_of prefix in
            let* groups =
              List.fold_right
                (fun g acc ->
                  let* acc = acc in
                  let* g = if g = "" then Ok [] else axes_of g in
                  Ok (g :: acc))
                groups (Ok [])
            in
            Ok (Tiling.Flat (prefix, groups))
          | _ -> Error "malformed flat tiling")
        | other -> Error ("unknown tiling kind " ^ other))
    in
    let* tiles =
      List.fold_right
        (fun pair acc ->
          let* acc = acc in
          match String.split_on_char '=' pair with
          | [ name; v ] -> (
            match int_of_string_opt v with
            | Some v when v > 0 ->
              let* _ = axis_of name in
              Ok ((name, v) :: acc)
            | Some _ | None -> Error ("bad tile value " ^ pair))
          | _ -> Error ("bad tile pair " ^ pair))
        (String.split_on_char ',' tiles_s)
        (Ok [])
    in
    (* every chain axis must be bound *)
    if
      List.for_all
        (fun (a : Axis.t) -> List.mem_assoc a.name tiles)
        chain.Chain.axes
    then Ok (Candidate.make tiling tiles)
    else Error "tile vector does not cover every axis"
  | _ -> Error "malformed candidate record"

let lookup t ~chain ~device =
  List.find_opt
    (fun e -> e.echain = chain.Chain.cname && e.edevice = device)
    t

let save t path =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun e ->
          Printf.fprintf oc "%s|%s|%s|%.9e\n" e.echain e.edevice
            (serialize_candidate e.ecand)
            e.etime_s)
        (List.rev t));
  Sys.rename tmp path

let load ~chains path =
  (* Entries are collected newest-first and deduplicated through the
     same [dedup_keep_first] path as [add], so load keeps [add]'s
     semantics by construction: latest occurrence per key wins, entries
     ordered most-recently-seen first.  The line format is pipe-
     separated, not JSON, so this rides [fold_lines] (count-and-skip
     plus the shared "skipped N malformed lines" warning) rather than
     [fold_jsonl]. *)
  let entries, _skipped =
    Mcf_util.Json.fold_lines ~path ~init:[] ~f:(fun acc line ->
        match String.split_on_char '|' line with
        | [ echain; edevice; cand_s; time_s ] -> (
          match
            ( List.find_opt (fun (c : Chain.t) -> c.cname = echain) chains,
              float_of_string_opt time_s )
          with
          | Some chain, Some etime_s -> (
            match parse_candidate chain cand_s with
            | Ok ecand -> Some ({ echain; edevice; ecand; etime_s } :: acc)
            | Error _ -> None)
          | None, Some _ ->
            (* a record for a chain we were not asked about: well
               formed, just out of scope for this load *)
            Some acc
          | _, None -> None)
        | _ -> None)
  in
  dedup_keep_first entries

let tune_with_cache ~cache_file (spec : Mcf_gpu.Spec.t) chain =
  let module Trace = Mcf_obs.Trace in
  let cache =
    Trace.with_span "cache.load" (fun () -> load ~chains:[ chain ] cache_file)
  in
  match lookup cache ~chain ~device:spec.name with
  | Some entry ->
    Mcf_obs.Metrics.incr c_hits;
    Log.info (fun m ->
        m "hit: %s on %s -> %s" entry.echain entry.edevice
          (serialize_candidate entry.ecand));
    Ok (None, entry)
  | None -> (
    Mcf_obs.Metrics.incr c_misses;
    Log.info (fun m -> m "miss: %s on %s, tuning" chain.Chain.cname spec.name);
    match Tuner.tune spec chain with
    | Error e -> Error e
    | Ok outcome ->
      let entry =
        { echain = chain.Chain.cname;
          edevice = spec.name;
          ecand = outcome.best.cand;
          etime_s = outcome.kernel_time_s }
      in
      Trace.with_span "cache.save" (fun () ->
          save (add cache entry) cache_file);
      Ok (Some outcome, entry))
