(** Batched measurement engine with a sharded content-addressed cache.

    Measurement dominates tuning wall time once enumeration and
    estimation are parallel: the evolutionary loop hands each
    generation's fresh top-k here as one batch instead of simulating
    point-wise.  The engine runs in two stages:

    + {b parallel} — per candidate: lower (forcing the entry's lazy
      cell), compile, and run the deterministic simulator on the shared
      {!Mcf_util.Pool}, one candidate per chunk;
    + {b sequential drain} in rank order — virtual-clock charges (in
      float addition order), the caller's [commit] callback (recorder
      events, measured-table fills).

    Because stage 1 is pure and the simulator is deterministic, every
    observable — funnel counts, recordings, tuner results, virtual time
    — is bit-identical to the old sequential path at any [--jobs].

    The optional cache is content-addressed: the key combines the
    {!Mcf_gpu.Spec.fingerprint}, a hash of the
    {!Mcf_ir.Chain.fingerprint}, the structural-pass flags, and the
    rule-1 canonical candidate form ({!Mcf_ir.Tiling.sub_tiling} +
    sorted tile vector), so a hit is valid by construction.  Hits skip
    the simulation but are charged to the clock identically (virtual-
    time accounting is a model of real hardware, where the measurement
    would still have run); the wall-time saving shows up in the
    [tuner.measure] phase and the [measure.cache.{hits,misses,
    inflight_waits}] counters.  The backing store is a
    {!Mcf_util.Shardmap}: per-shard locks, LRU-bounded, and in-flight
    dedup so two domains never simulate the same key concurrently. *)

val log_src : Logs.src
(** Log source ["mcfuser.measure"] (cache load/save diagnostics). *)

(** {1 Measurement cache} *)

type cache

val cache_create : ?shards:int -> ?capacity_per_shard:int -> unit -> cache
(** Defaults: 16 shards, 65536 entries per shard (LRU beyond that). *)

val cache_size : cache -> int
(** Completed measurements currently resident. *)

val cache_save : cache -> string -> int
(** Persist to a JSONL file ([{"key": ..., "time_s": float|null}] per
    line, sorted by key, written atomically via rename); returns the
    number of lines.  Floats round-trip exactly, so a warm-started run
    reproduces cached times bit-for-bit. *)

val cache_load : cache -> string -> int * int
(** Warm-start from a JSONL file: [(loaded, malformed)].  Malformed
    lines are counted, logged and skipped; a missing file is [(0, 0)]. *)

(** {1 Engine} *)

type t

val create : ?cache:cache -> ?sequential:bool -> Mcf_gpu.Spec.t -> t
(** An engine measuring on one device.  [sequential] pins stage 1 to
    the calling domain ([--measure-jobs 1] — results are bit-identical
    either way, this only trades wall time for determinism paranoia). *)

val spec : t -> Mcf_gpu.Spec.t

val cache : t -> cache option

val key_with :
  spec_fp:string ->
  chain_fp:string ->
  Space.ctx ->
  Mcf_ir.Candidate.t ->
  string
(** The raw cache key; exposed for tests and the fuzz oracle. *)

val chain_fp : Mcf_ir.Chain.t -> string
(** Hex-hashed {!Mcf_ir.Chain.fingerprint} (the key's chain component). *)

val lookup : t -> Space.entry -> float option option
(** Peek the cache without simulating: [Some result] on a hit ([result]
    itself is [None] for a cached compile/launch failure). *)

val run_batch :
  t ->
  clock:Mcf_gpu.Clock.t ->
  compile_cost_s:float ->
  repeats:int ->
  commit:(int -> float option -> unit) ->
  (int * Space.entry) list ->
  unit
(** Measure a rank-ordered batch of [(id, entry)] items.  Stage 1 runs
    in parallel (unless the engine is [sequential]); the drain then, in
    list order and per item: charges one compile, charges the
    measurement when it succeeded, and calls [commit id result].
    Duplicate-key items within one batch are deduplicated by the
    in-flight table when a cache is attached; callers wanting
    exactly-once commits per id must dedup ids themselves (the explore
    loop does). *)
