let log_src = Logs.Src.create "mcfuser.search" ~doc:"MCFuser exploration"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Trace = Mcf_obs.Trace

let c_runs = Mcf_obs.Metrics.counter "explore.runs"
let c_generations = Mcf_obs.Metrics.counter "explore.generations"
let c_estimated = Mcf_obs.Metrics.counter "explore.estimated"
let c_measured = Mcf_obs.Metrics.counter "explore.measured"
let h_estimate_s = Mcf_obs.Metrics.histogram "explore.estimate_s"

type params = {
  population : int;
  top_k : int;
  epsilon : float;
  min_generations : int;
  max_generations : int;
  measure_repeats : int;
  compile_cost_s : float;
}

let default_params =
  { population = 128;
    top_k = 10;
    epsilon = 0.03;
    min_generations = 5;
    max_generations = 10;
    measure_repeats = 10;
    (* Triton JIT compilation of one schedule. *)
    compile_cost_s = 0.6 }

type stats = {
  generations : int;
  estimated : int;
  measured : int;
}

type result = {
  best : Space.entry;
  best_time_s : float;
  stats : stats;
}

let measure ~clock ~compile_cost_s ~repeats spec (entry : Space.entry) =
  Mcf_gpu.Clock.charge_compile clock ~toolchain_s:compile_cost_s;
  match Mcf_codegen.Compile.compile spec (Space.lowered entry) with
  | Error _ ->
    (* A failed compile still costs toolchain time but no device time. *)
    None
  | Ok kernel -> (
    match Mcf_gpu.Sim.run spec kernel with
    | Error _ -> None
    | Ok v ->
      Mcf_gpu.Clock.charge_measure clock ~kernel_time_s:v.time_s ~repeats;
      Some v.time_s)

let run ?(params = default_params) ?estimator ?scores ?measure:engine ?on_phase
    ~rng ~clock spec entries =
  match entries with
  | [] -> None
  | _ ->
    Mcf_obs.Metrics.incr c_runs;
    let pool = Array.of_list entries in
    let n = Array.length pool in
    (* Candidates are identified by their pool index from here on: the
       interner assigns ids in pool order, so [intern] of [pool.(i).cand]
       is [i], and every later hot-loop lookup (estimates, measurements,
       sort comparators) is an array index or an int-keyed table instead
       of a candidate-key string hash. *)
    let interner = Mcf_ir.Candidate.Interner.create (2 * n) in
    Array.iter
      (fun (e : Space.entry) ->
        ignore (Mcf_ir.Candidate.Interner.intern interner e.cand))
      pool;
    (* Estimate pass: the whole pruned space is scored once with the
       closed-form analytical model (no lowering, summaries memoized per
       sub-tiling).  The streaming enumeration already computes exactly
       these scores in its fused chunk pass and hands them in as
       [scores], in which case the batched pass is skipped; a custom
       estimator (Chimera's data-movement objective) always recomputes,
       since only it knows its own objective.  Estimators must be
       pure. *)
    let scored_pool =
      match (estimator, scores) with
      | None, Some sc when Array.length sc = n -> sc
      | _ ->
        let ctx = pool.(0).Space.ctx in
        let memo =
          Mcf_model.Analytic.Memo.create ~rule1:ctx.Space.rule1
            ~dead_loop_elim:ctx.Space.dead_loop_elim
            ~hoisting:ctx.Space.hoisting ~elem_bytes:ctx.Space.elem_bytes
            ctx.Space.chain
        in
        let sm_countf = float_of_int spec.Mcf_gpu.Spec.sm_count in
        Trace.with_span "explore.estimate"
          ~args:(fun () -> [ ("points", Trace.Int n) ])
          (fun () ->
            Mcf_util.Pool.map_array ~min_chunk_work:64 (Mcf_util.Pool.get ())
              (fun (e : Space.entry) ->
                Trace.observe_timed h_estimate_s (fun () ->
                    let ev = Mcf_model.Analytic.Memo.eval memo e.cand in
                    let est =
                      match estimator with
                      | None ->
                        (Mcf_model.Analytic.breakdown_of_eval spec ev)
                          .Mcf_model.Perf.t_total
                      | Some f -> f spec e
                    in
                    let traffic =
                      ev.Mcf_model.Analytic.traffic_bytes
                      *. ((ev.Mcf_model.Analytic.blocks +. sm_countf)
                         /. ev.Mcf_model.Analytic.blocks)
                    in
                    (est, traffic)))
              pool)
    in
    let estimates = Array.map fst scored_pool in
    let traffic = Array.map snd scored_pool in
    Mcf_obs.Metrics.add c_estimated n;
    let estimate id = estimates.(id) in
    let generations = ref 0 in
    let measured : (int, float option) Hashtbl.t = Hashtbl.create 64 in
    let engine = match engine with Some e -> e | None -> Measure.create spec in
    let measure_s = ref 0.0 in
    (* One generation's fresh top-k, measured as a batch: stage 1 of the
       engine runs the simulator in parallel, the drain then commits
       below in rank order, so table fills, clock charges and recorder
       events are bit-identical to the old point-wise loop.  Duplicate
       ids (the population samples with replacement, and the ranking
       fallback can re-pick a population id) collapse to one
       measurement, exactly as the old measured-table check did. *)
    let measure_batch topk =
      let seen = Hashtbl.create 16 in
      let fresh =
        List.filter_map
          (fun (id, _) ->
            if Hashtbl.mem measured id || Hashtbl.mem seen id then None
            else begin
              Hashtbl.add seen id ();
              Some (id, pool.(id))
            end)
          topk
      in
      if fresh <> [] then begin
        let (), dur_s =
          Trace.timed "tuner.measure"
            ~args:(fun () -> [ ("batch", Trace.Int (List.length fresh)) ])
            (fun () ->
              Measure.run_batch engine ~clock
                ~compile_cost_s:params.compile_cost_s
                ~repeats:params.measure_repeats
                ~commit:(fun id r ->
                  Mcf_obs.Metrics.incr c_measured;
                  Hashtbl.add measured id r;
                  (* Every estimate <-> measurement pair lands in the
                     recording; the raw material for Mcf_obs.Fidelity. *)
                  Mcf_obs.Recorder.emit "measure" (fun () ->
                      let open Mcf_util.Json in
                      [ ("gen", num_of_int !generations);
                        ("id", num_of_int id);
                        ("cand",
                         Str
                           (Mcf_ir.Candidate.to_string pool.(id).Space.cand));
                        ("est", Num estimates.(id));
                        ("time_s",
                         match r with Some t -> Num t | None -> Null) ]))
                fresh)
        in
        measure_s := !measure_s +. dur_s
      end
    in
    let mutate id =
      let e : Space.entry = pool.(id) in
      let cand = e.cand in
      let axes = Array.of_list cand.Mcf_ir.Candidate.tiles in
      let tries = Array.length axes * 2 in
      let rec attempt i =
        if i >= tries then id
        else begin
          let name, tile = Mcf_util.Rng.pick rng axes in
          let axis = Mcf_ir.Chain.axis e.ctx.Space.chain name in
          let options =
            Array.of_list (Mcf_ir.Candidate.tile_options axis.Mcf_ir.Axis.size)
          in
          let idx = ref 0 in
          Array.iteri (fun j v -> if v = tile then idx := j) options;
          let dir = if Mcf_util.Rng.bool rng then 1 else -1 in
          let j = !idx + dir in
          if j < 0 || j >= Array.length options then attempt (i + 1)
          else begin
            let tiles =
              List.map
                (fun (n, v) -> if n = name then (n, options.(j)) else (n, v))
                cand.tiles
            in
            let cand' = Mcf_ir.Candidate.make cand.tiling tiles in
            match Mcf_ir.Candidate.Interner.find interner cand' with
            | Some id' -> id'
            | None -> attempt (i + 1) (* mutation left the pruned space *)
          end
        end
      in
      attempt 0
    in
    (* Initial population: uniform random (Algorithm 1 line 1) plus the
       global top-k under two free rankings — the analytical model and its
       pure data-movement component (both computed in the single pass
       above).  Estimating the whole pruned space costs microseconds, and
       seeding both rankings guarantees the search dominates any
       single-objective analytical strategy (in particular Chimera's) over
       the same space.  Ranking keys are precomputed arrays, so the
       comparator is two array reads — no estimator (or string hash)
       inside the O(n log n) sort. *)
    let top_ids_by key_of =
      let ranked = Array.init n Fun.id in
      Array.sort (fun a b -> Float.compare key_of.(a) key_of.(b)) ranked;
      Array.sub ranked 0 (min params.top_k n)
    in
    let pool_ids = Array.init n Fun.id in
    (* Global estimate ranking for the stale-population fallback, built
       once on first use.  The old code refiltered and re-sorted the
       whole unmeasured space every generation — O(generations x space
       log space); this cursor only ever advances: every id it yields
       lands in that generation's measured batch, and ids it skips were
       measured earlier, so a rewind can never be needed.  Ties rank
       toward the lower id, matching the stable sort over the
       id-ascending list this replaces. *)
    let ranking =
      lazy
        (let a = Array.init n Fun.id in
         Array.sort
           (fun a b ->
             let c = Float.compare estimates.(a) estimates.(b) in
             if c <> 0 then c else compare a b)
           a;
         a)
    in
    let cursor = ref 0 in
    let next_ranked k =
      let r = Lazy.force ranking in
      let rec go acc k =
        if k = 0 || !cursor >= n then List.rev acc
        else begin
          let id = r.(!cursor) in
          incr cursor;
          if Hashtbl.mem measured id then go acc k
          else go ((id, estimates.(id)) :: acc) (k - 1)
        end
      in
      go [] k
    in
    let sample_population () =
      let size = min params.population n in
      let seeds = Array.append (top_ids_by estimates) (top_ids_by traffic) in
      Array.init size (fun i ->
          if i < Array.length seeds then seeds.(i)
          else Mcf_util.Rng.pick rng pool_ids)
    in
    let population = ref (sample_population ()) in
    let best = ref None in
    let plateaus = ref 0 in
    let converged = ref false in
    while (not !converged) && !generations < params.max_generations do
      incr generations;
      Mcf_obs.Metrics.incr c_generations;
      Mcf_obs.Progress.generation ~gen:!generations
        ~max_gen:params.max_generations ~measured:(Hashtbl.length measured);
      Mcf_obs.Resource.sample ();
      Trace.with_span "explore.generation"
        ~args:(fun () -> [ ("gen", Trace.Int !generations) ])
      @@ fun () ->
      let best_before = !best in
      let scored =
        Array.map (fun id -> (id, estimate id)) !population
      in
      Array.sort (fun (_, a) (_, b) -> Float.compare a b) scored;
      (* Measure the best-estimated candidates not measured yet; re-measuring
         a known candidate would add no information (results are cached).
         When the population has gone stale (mutation keeps revisiting the
         measured elite), march down the global estimate ranking instead so
         every generation still buys fresh information. *)
      let unmeasured id = not (Hashtbl.mem measured id) in
      let fresh =
        Array.to_list scored |> List.filter (fun (id, _) -> unmeasured id)
      in
      let topk = Mcf_util.Listx.take params.top_k fresh in
      let topk =
        if List.length topk >= params.top_k then topk
        else topk @ next_ranked (params.top_k - List.length topk)
      in
      measure_batch topk;
      let results =
        List.filter_map
          (fun (id, _) ->
            match Hashtbl.find_opt measured id with
            | Some (Some t) -> Some (id, t)
            | Some None | None -> None)
          topk
      in
      Log.debug (fun m ->
          m "generation %d: measured %d fresh candidates (best this round: %s)"
            !generations (List.length results)
            (match Mcf_util.Listx.min_by snd results with
            | Some (id, t) ->
              Printf.sprintf "%s at %.2fus"
                (Mcf_ir.Candidate.to_string pool.(id).Space.cand)
                (t *. 1e6)
            | None -> "none"));
      (match Mcf_util.Listx.min_by snd results with
      | None -> () (* nothing measurable this round; mutate and go on *)
      | Some (id, t) -> (
        match !best with
        | Some (_, bt) when Float.abs (t -. bt) < params.epsilon *. bt ->
          if t < bt then best := Some (id, t);
          (* measurement noise alone can fake a plateau; require two
             consecutive converged rounds before stopping *)
          incr plateaus;
          if !plateaus >= 2 && !generations >= params.min_generations then
            converged := true
        | Some (_, bt) ->
          plateaus := 0;
          if t < bt then best := Some (id, t)
        | None -> best := Some (id, t)));
      (* Population summary for the flight recorder: everything below is
         derived from values already computed this round, built lazily so
         a disabled recorder costs one atomic load. *)
      Mcf_obs.Recorder.emit "generation" (fun () ->
          let open Mcf_util.Json in
          let ests = Array.map snd scored in
          let hist =
            List
              (List.map
                 (fun (bound, c) ->
                   Obj [ ("le", Num bound); ("count", num_of_int c) ])
                 (Mcf_obs.Fidelity.histogram ests))
          in
          let topk_j =
            List
              (List.map
                 (fun (id, est) ->
                   Obj
                     [ ("cand",
                        Str
                          (Mcf_ir.Candidate.to_string pool.(id).Space.cand));
                       ("est", Num est) ])
                 topk)
          in
          let round_best =
            match Mcf_util.Listx.min_by snd results with
            | Some (_, t) -> Num t
            | None -> Null
          in
          let best_j =
            match !best with Some (_, t) -> Num t | None -> Null
          in
          let delta =
            match (best_before, !best) with
            | Some (_, b0), Some (_, b1) when b0 > 0.0 ->
              Num ((b0 -. b1) /. b0)
            | _ -> Null
          in
          [ ("gen", num_of_int !generations);
            ("population", num_of_int (Array.length !population));
            ("est_histogram", hist);
            ("est_best", Num (snd scored.(0)));
            ("topk", topk_j);
            ("measured_new", num_of_int (List.length results));
            ("round_best_s", round_best);
            ("best_time_s", best_j);
            ("delta", delta);
            ("plateaus", num_of_int !plateaus);
            ("converged", Bool !converged) ]);
      if not !converged then begin
        let weights =
          Array.map (fun (_, est) -> 1.0 /. Float.max est 1e-12) scored
        in
        let changed = ref 0 in
        let next =
          Array.init (Array.length !population) (fun _ ->
              let i = Mcf_util.Rng.weighted_index rng weights in
              let pid = fst scored.(i) in
              let pid' = mutate pid in
              if pid' <> pid then incr changed;
              pid')
        in
        Mcf_obs.Recorder.emit "mutation" (fun () ->
            let open Mcf_util.Json in
            let proposed = Array.length next in
            [ ("gen", num_of_int !generations);
              ("proposed", num_of_int proposed);
              ("changed", num_of_int !changed);
              ("stayed", num_of_int (proposed - !changed)) ]);
        population := next
      end
    done;
    (* The measure batches' total wall time, reported as a sub-phase so
       the tuner can carve it out of tuner.explore (the cache's
       wall-time saving is visible exactly here). *)
    Option.iter (fun f -> f "tuner.measure" !measure_s) on_phase;
    Option.map
      (fun (id, t) ->
        { best = pool.(id);
          best_time_s = t;
          stats =
            { generations = !generations;
              estimated = n;
              measured = Hashtbl.length measured } })
      !best
