(** Search-space construction and pruning (§III-A, §III-C).

    The raw space is the cross product of every tiling expression (deep
    permutations + flat forms) with every tile-size vector (multiples of 16
    per axis) — about 10^8 points for the paper's running example.  The
    four pruning rules shrink it to ~10^4 concrete candidates that are
    worth estimating:

    - {b Rule 1} (deduplication): candidates sharing a per-thread-block
      sub-tiling expression are equivalent; one canonical representative
      per class is kept.
    - {b Rule 2}: expressions that place a producer's reduction loop
      outside an axis of its intermediate output would cache multiple
      partial tiles (Fig. 6) — dropped structurally.
    - {b Rule 3} (padding): tile sizes must divide power-of-two dimensions
      exactly, and keep the padding ratio below 5 % otherwise.
    - {b Rule 4} (shared memory): the eq. (1) estimate must stay within
      1.2x the device limit.

    Validity (softmax consumed inside its producer's reduction) is checked
    during enumeration as well, mirroring what the real toolchain rejects
    at lowering time. *)

type options = {
  rule1 : bool;
  rule2 : bool;
  rule3 : bool;
  rule4 : bool;
  include_flat : bool;  (** Off reproduces Chimera's deep-only space. *)
  dead_loop_elim : bool;  (** Off reproduces Ansor/Chimera hoisting. *)
  hoisting : bool;
  max_padding : float;  (** Rule 3 threshold (paper: 0.05). *)
  shmem_slack : float;  (** Rule 4 slack (paper: 1.2). *)
}

val default_options : options
(** Everything on, paper thresholds. *)

(** Everything needed to lower (or analytically cost) a candidate of this
    space: the chain, the structural-pass switches and the element width. *)
type ctx = {
  chain : Mcf_ir.Chain.t;
  rule1 : bool;
  dead_loop_elim : bool;
  hoisting : bool;
  elem_bytes : int;
}

type entry = {
  cand : Mcf_ir.Candidate.t;
  ctx : ctx;
  cell : Mcf_ir.Lower.t Mcf_util.Once.t;
      (** Lazily-forced lowering; access through {!lowered}.  Estimation
          uses the closed-form {!Mcf_model.Analytic} instead, so only
          candidates reaching measurement or codegen ever force it. *)
}

val lowered : entry -> Mcf_ir.Lower.t
(** Force (once, domain-safely) and return the entry's lowered program.
    Each first force runs under a [space.lower] trace span and bumps the
    [space.candidates_lowered] counter. *)

val make_entry : ctx -> Mcf_ir.Candidate.t -> entry
(** Wrap a candidate with a lazy lowering cell (exposed for baselines and
    tests that build entries outside {!enumerate}). *)

type funnel = {
  tilings_raw : int;
  tilings_rule1 : int;
  tilings_rule2 : int;
  candidates_raw : float;  (** Raw cardinality (counted, not materialized). *)
  candidates_rule3 : float;
  candidates_rule4 : int;  (** Survivors of the closed-form precheck. *)
  candidates_valid : int;  (** After the softmax-legality check. *)
}

val tilings : options -> Mcf_ir.Chain.t -> Mcf_ir.Tiling.t list
(** Structural expressions after Rules 1-2 (as enabled). *)

val rule2_rejects : Mcf_ir.Chain.t -> Mcf_ir.Tiling.t -> bool
(** The Rule-2 structural predicate on its own: true when the per-block
    expression places some producer's reduction loop outside an axis of
    its intermediate output (the Fig. 6(b) blow-up).  Exposed so the
    fuzzer can check its soundness direction — a kept tiling must lower
    (under rule-1 canonical execution) with every intermediate's
    residency multiplier equal to 1. *)

val tile_choices :
  options -> Mcf_ir.Chain.t -> (string * int list) list
(** Per-axis tile options after Rule 3 (as enabled). *)

val raw_cardinality : Mcf_ir.Chain.t -> float
(** |tilings| x prod |all tile options|, before any pruning. *)

val funnel_json : funnel -> Mcf_util.Json.t
(** The funnel as the recorder's ["space"] event payload (integer
    fields as integers, counted cardinalities as numbers). *)

val enumerate :
  ?options:options ->
  ?on_phase:(string -> float -> unit) ->
  ?reservoir:int ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  entry list * funnel
(** Build the pruned space for a device, with the Fig. 7 funnel.

    This is the streaming pipeline: a generator domain walks the tiling
    expressions lazily (rules 1–2 applied as the stream flows) and feeds
    tile-combo index ranges through a bounded {!Mcf_util.Chan}; chunks
    are scored on the shared {!Mcf_util.Pool} with one fused
    precheck → validity → estimate pass and drained sequentially in rank
    order.  Peak heap is O(reservoir + chunk), not O(space), and the
    result is bit-identical to {!enumerate_materialized} — same
    candidates, same order, same funnel — at any [--jobs].

    [reservoir] bounds how many surviving entries stay resident: only
    the [reservoir] best by analytical estimate (ties toward the earlier
    rank) are returned, re-sorted back into enumeration-rank order.
    Without it every valid candidate is returned.  [funnel] always
    counts the full space either way, so [candidates_valid] can exceed
    the length of the returned list when a reservoir is set.

    [on_phase] receives named sub-phase wall-clock durations (currently
    exactly ["space.precheck"], reported once with the accumulated
    chunk-scoring time) so the tuner can carve them out of its
    [tuning_wall_s] breakdown without double counting.

    When {!Mcf_obs.Recorder} is recording, enumeration additionally
    emits per-rule ["prune"] attribution events (counts before/after
    each rule with exemplar canonical sub-tiling expressions or
    rejected candidates) and a ["space"] event carrying the funnel.
    Emission happens from the sequential drain, after the stream joins,
    so recordings are byte-identical at any [--jobs] and recording
    cannot perturb the result. *)

val enumerate_scored :
  ?options:options ->
  ?on_phase:(string -> float -> unit) ->
  ?reservoir:int ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  entry list * (float * float) array * funnel
(** {!enumerate} plus the per-entry [(estimate, traffic)] scores the
    fused streaming pass already computed — index-aligned with the
    entry list.  The formulas are exactly the explorer's default ones
    ({!Mcf_model.Analytic.breakdown_of_eval} total time, and traffic
    scaled by [(blocks + sm_count) / blocks]), so {!Explore.run} can
    skip its batched estimate pass and rank identically. *)

val enumerate_materialized :
  ?options:options ->
  ?on_phase:(string -> float -> unit) ->
  Mcf_gpu.Spec.t ->
  Mcf_ir.Chain.t ->
  entry list * funnel
(** The pre-streaming reference implementation: materializes the full
    tiling list and the indexed virtual space, then stages precheck and
    validity.  Kept as the differential oracle for the streaming path
    (test_stream.ml pins funnel/candidate/winner equivalence); its peak
    heap is O(space), so never call it on deep (5–8-block) chains. *)
