let log_src = Logs.Src.create "mcfuser.measure" ~doc:"MCFuser measurement engine"

module Log = (val Logs.src_log log_src : Logs.LOG)
module Trace = Mcf_obs.Trace

let c_cache_hits = Mcf_obs.Metrics.counter "measure.cache.hits"
let c_cache_misses = Mcf_obs.Metrics.counter "measure.cache.misses"

let c_cache_inflight_waits =
  Mcf_obs.Metrics.counter "measure.cache.inflight_waits"

let h_measure_s = Mcf_obs.Metrics.histogram "explore.measure_s"

(* --- content-addressed cache ------------------------------------------- *)

type cache = float option Mcf_util.Shardmap.t

let cache_create ?(shards = 16) ?(capacity_per_shard = 65536) () : cache =
  Mcf_util.Shardmap.create ~shards ~capacity_per_shard ()

let cache_size = Mcf_util.Shardmap.length

let chain_fp chain =
  Printf.sprintf "%Lx"
    (Mcf_util.Hashing.fnv1a64 (Mcf_ir.Chain.fingerprint chain))

let candidate_fp (ctx : Space.ctx) (cand : Mcf_ir.Candidate.t) =
  (* Rule-1 canonical form: under canonical execution, candidates sharing
     a per-block sub-tiling and the same tile vector lower identically
     (the chain's axis sizes pin every trip count), so they share one
     measurement.  Without rule 1 the full expression stays. *)
  let tiling =
    if ctx.rule1 then Mcf_ir.Tiling.sub_tiling ctx.chain cand.tiling
    else cand.tiling
  in
  Mcf_ir.Candidate.serialize { cand with tiling }

let key_with ~spec_fp ~chain_fp (ctx : Space.ctx) cand =
  Printf.sprintf "%s|%s|r1=%b,dle=%b,h=%b,eb=%d|%s" spec_fp chain_fp ctx.rule1
    ctx.dead_loop_elim ctx.hoisting ctx.elem_bytes (candidate_fp ctx cand)

(* --- persistence (JSONL) ----------------------------------------------- *)

let entry_to_line key v =
  let open Mcf_util.Json in
  to_string
    (Obj
       [ ("key", Str key);
         ("time_s", match v with Some t -> Num t | None -> Null) ])

let entry_of_json j =
  let open Mcf_util.Json in
  match (member "key" j, member "time_s" j) with
  | Some (Str k), Some (Num t) -> Some (k, Some t)
  | Some (Str k), Some Null -> Some (k, None)
  | _ -> None

let cache_save (cache : cache) path =
  let entries = Mcf_util.Shardmap.fold cache (fun k v acc -> (k, v) :: acc) [] in
  (* Sort for a deterministic file: shard iteration order is not. *)
  let entries =
    List.sort (fun (a, _) (b, _) -> String.compare a b) entries
  in
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun (k, v) ->
          output_string oc (entry_to_line k v);
          output_char oc '\n')
        entries);
  Sys.rename tmp path;
  List.length entries

let cache_load (cache : cache) path =
  Mcf_util.Json.fold_jsonl ~path ~init:0 ~f:(fun loaded j ->
      match entry_of_json j with
      | Some (k, v) ->
        Mcf_util.Shardmap.set cache k v;
        Some (loaded + 1)
      | None -> None)

(* --- engine ------------------------------------------------------------ *)

type t = {
  spec : Mcf_gpu.Spec.t;
  spec_fp : string;
  cache : cache option;
  sequential : bool;
}

let create ?cache ?(sequential = false) spec =
  { spec; spec_fp = Mcf_gpu.Spec.fingerprint spec; cache; sequential }

let spec t = t.spec
let cache t = t.cache

(* One uncharged simulator round-trip: lower (forcing the entry's cell),
   compile, run.  [None] when the candidate fails to compile or launch —
   failures are cached too, so a warm run skips re-proving them. *)
let simulate t (e : Space.entry) =
  match Mcf_codegen.Compile.compile t.spec (Space.lowered e) with
  | Error _ -> None
  | Ok kernel -> (
    match Mcf_gpu.Sim.run t.spec kernel with
    | Error _ -> None
    | Ok v -> Some v.time_s)

let lookup t (e : Space.entry) =
  match t.cache with
  | None -> None
  | Some store ->
    let ctx = e.Space.ctx in
    Mcf_util.Shardmap.find store
      (key_with ~spec_fp:t.spec_fp ~chain_fp:(chain_fp ctx.chain) ctx e.cand)

let measure_one t (key : string option) (e : Space.entry) =
  Trace.observe_timed h_measure_s (fun () ->
      match (t.cache, key) with
      | None, _ | _, None -> simulate t e
      | Some store, Some key ->
        let outcome, v =
          Mcf_util.Shardmap.find_or_compute store key (fun () -> simulate t e)
        in
        (match outcome with
        | Mcf_util.Shardmap.Hit -> Mcf_obs.Metrics.incr c_cache_hits
        | Mcf_util.Shardmap.Computed -> Mcf_obs.Metrics.incr c_cache_misses
        | Mcf_util.Shardmap.Waited ->
          Mcf_obs.Metrics.incr c_cache_inflight_waits);
        v)

let run_batch t ~clock ~compile_cost_s ~repeats ~commit items =
  match items with
  | [] -> ()
  | _ ->
    let arr = Array.of_list items in
    let n = Array.length arr in
    (* Cache keys are derived sequentially up front: key building walks
       the chain (hashing its fingerprint, memoized per distinct chain
       below) and must not race on the memo from worker domains. *)
    let keys =
      match t.cache with
      | None -> Array.make n None
      | Some _ ->
        let memo = ref [] in
        Array.map
          (fun ((_ : int), (e : Space.entry)) ->
            let chain = e.ctx.Space.chain in
            let cfp =
              match List.assq_opt chain !memo with
              | Some fp -> fp
              | None ->
                let fp = chain_fp chain in
                memo := (chain, fp) :: !memo;
                fp
            in
            Some (key_with ~spec_fp:t.spec_fp ~chain_fp:cfp e.ctx e.cand))
          arr
    in
    let compute i = measure_one t keys.(i) (snd arr.(i)) in
    (* Stage 1 — parallel: pure per-candidate work (lower, compile,
       simulate; the simulator is deterministic, so values cannot depend
       on scheduling).  One item per chunk: a measurement is orders of
       magnitude above the deque-handoff cost. *)
    let results =
      if t.sequential || n = 1 then Array.init n compute
      else begin
        let anc = Trace.ancestry () in
        Mcf_util.Pool.init ~min_chunk_work:1 (Mcf_util.Pool.get ()) n (fun i ->
            Trace.with_ancestry anc (fun () -> compute i))
      end
    in
    (* Stage 2 — sequential drain in rank order: all side effects the
       determinism contract covers (virtual-clock charges in float
       addition order, recorder emissions, the caller's table fills via
       [commit]) happen here, so they are bit-identical to the
       point-wise sequential path at any jobs count — and identical
       whether a value came from the cache or a fresh simulation. *)
    Array.iteri
      (fun i (id, (_ : Space.entry)) ->
        let r = results.(i) in
        Mcf_gpu.Clock.charge_compile clock ~toolchain_s:compile_cost_s;
        (match r with
        | Some time_s -> Mcf_gpu.Clock.charge_measure clock ~kernel_time_s:time_s ~repeats
        | None -> ());
        commit id r)
      arr
