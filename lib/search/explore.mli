(** Heuristic exploration — Algorithm 1 of §IV-B.

    An evolutionary loop over the pruned space: every generation estimates
    the whole population with the {e analytical} model (free), measures only
    the top [n] candidates on the device (expensive — charged to the virtual
    tuning clock), and stops automatically once the best measured time
    converges within [epsilon].  The next population is drawn from the
    current one with probability proportional to 1/estimate and mutated by
    stepping one axis's tile size to a neighbouring option.

    Replacing the learned cost model with the analytical one and replacing
    a fixed trial budget with the convergence criterion are the two changes
    relative to Ansor's search loop that produce Table IV's 70-140x tuning
    speedups. *)

val log_src : Logs.src
(** Log source ["mcfuser.search"]: generation-by-generation progress at
    debug level, per-tune summaries at info. *)

type params = {
  population : int;  (** N of Algorithm 1. *)
  top_k : int;  (** n of Algorithm 1 (paper: 8). *)
  epsilon : float;  (** Relative convergence threshold. *)
  min_generations : int;
      (** Rounds before the convergence test may fire (guards against
          measurement noise faking an early plateau). *)
  max_generations : int;  (** Safety stop. *)
  measure_repeats : int;  (** Timed runs per measurement session. *)
  compile_cost_s : float;  (** Virtual toolchain cost per measured candidate. *)
}

val default_params : params

type stats = {
  generations : int;
  estimated : int;  (** Model evaluations performed. *)
  measured : int;  (** Unique candidates measured on the device. *)
}

type result = {
  best : Space.entry;
  best_time_s : float;  (** Measured (simulated) kernel time. *)
  stats : stats;
}

val run :
  ?params:params ->
  ?estimator:(Mcf_gpu.Spec.t -> Space.entry -> float) ->
  ?scores:(float * float) array ->
  ?measure:Measure.t ->
  ?on_phase:(string -> float -> unit) ->
  rng:Mcf_util.Rng.t ->
  clock:Mcf_gpu.Clock.t ->
  Mcf_gpu.Spec.t ->
  Space.entry list ->
  result option
(** [None] when no candidate in the space compiles and launches.
    [estimator] defaults to the analytical model of eqs. (2)-(5),
    evaluated closed-form through {!Mcf_model.Analytic.Memo} (no entry is
    lowered for estimation); the Chimera baseline substitutes its
    data-movement-only objective.

    [scores] are precomputed [(estimate, traffic)] pairs index-aligned
    with [entries], as returned by {!Space.enumerate_scored}: the
    streaming enumeration already evaluates the default model for every
    surviving candidate, so passing them skips the batched estimate pass
    here.  Ignored (recomputed) when a custom [estimator] is given or
    the array length does not match; results are bit-identical either
    way because the streamed scores use the same formulas.

    [measure] is the batched measurement engine each generation's fresh
    top-k goes through (defaults to a fresh cache-less {!Measure.create}
    on [spec]); attach a cache there to reuse measurements across runs.
    Results are bit-identical with or without a cache and at any jobs
    count — see {!Measure}.  [on_phase] receives ["tuner.measure"] with
    the total measurement wall time once the loop finishes, for the
    tuner's phase breakdown. *)

val measure :
  clock:Mcf_gpu.Clock.t ->
  compile_cost_s:float ->
  repeats:int ->
  Mcf_gpu.Spec.t ->
  Space.entry ->
  float option
(** One charged device measurement: compile + timed repeats; [None] when
    the candidate fails to compile or launch.  Exposed for the baselines
    that share the measurement infrastructure (BOLT, Ansor). *)
