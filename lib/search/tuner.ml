module Trace = Mcf_obs.Trace

type outcome = {
  chain : Mcf_ir.Chain.t;
  spec : Mcf_gpu.Spec.t;
  best : Space.entry;
  kernel : Mcf_gpu.Kernel.t;
  kernel_time_s : float;
  funnel : Space.funnel;
  search_stats : Explore.stats;
  tuning_virtual_s : float;
  tuning_wall_s : float;
  phases : (string * float) list;
}

type error = No_viable_candidate

let default_seed (spec : Mcf_gpu.Spec.t) (chain : Mcf_ir.Chain.t) =
  Int64.to_int
    (Int64.logand
       (Mcf_util.Hashing.fnv1a64 (chain.cname ^ "|" ^ spec.name))
       0x3FFFFFFFFFFFFFFFL)

module Log = (val Logs.src_log Explore.log_src : Logs.LOG)

let c_tunes = Mcf_obs.Metrics.counter "tuner.tunes"

let tune ?options ?params ?estimator ?seed ?reservoir ?measure
    (spec : Mcf_gpu.Spec.t) (chain : Mcf_ir.Chain.t) =
  let opts = Option.value options ~default:Space.default_options in
  let prm = Option.value params ~default:Explore.default_params in
  let seed =
    match seed with Some s -> s | None -> default_seed spec chain
  in
  let rng = Mcf_util.Rng.create seed in
  let clock = Mcf_gpu.Clock.create () in
  Mcf_obs.Metrics.incr c_tunes;
  (* Flight-recorder run header: everything needed to reproduce the run.
     [time] is the only wall-clock field here; determinism tests strip it. *)
  Mcf_obs.Recorder.emit "run" (fun () ->
      let open Mcf_util.Json in
      [ ("time", Num (Mcf_obs.Recorder.now ()));
        ("device", Str spec.name);
        ("chain", Str chain.Mcf_ir.Chain.cname);
        (* As a string: seeds use 62 bits and would lose precision as a
           JSON number (doubles carry 53 bits of mantissa). *)
        ("seed", Str (string_of_int seed));
        ("jobs", num_of_int (Mcf_util.Pool.jobs ()));
        ("options",
         Obj
           [ ("rule1", Bool opts.Space.rule1);
             ("rule2", Bool opts.rule2);
             ("rule3", Bool opts.rule3);
             ("rule4", Bool opts.rule4);
             ("include_flat", Bool opts.include_flat);
             ("dead_loop_elim", Bool opts.dead_loop_elim);
             ("hoisting", Bool opts.hoisting);
             ("max_padding", Num opts.max_padding);
             ("shmem_slack", Num opts.shmem_slack) ]);
        ("params",
         Obj
           [ ("population", num_of_int prm.Explore.population);
             ("top_k", num_of_int prm.top_k);
             ("epsilon", Num prm.epsilon);
             ("min_generations", num_of_int prm.min_generations);
             ("max_generations", num_of_int prm.max_generations);
             ("measure_repeats", num_of_int prm.measure_repeats);
             ("compile_cost_s", Num prm.compile_cost_s) ]) ]);
  (* Every phase is timed through the same [Trace.timed] call that emits
     its span, so the breakdown below, the trace file and [tuning_wall_s]
     share one measurement and can never disagree. *)
  let phases = ref [] in
  let phase name f =
    Mcf_obs.Progress.set_phase name;
    (* Cooperative telemetry tick at every phase boundary: with sampling
       on, short phases get at least one sample from the main domain's
       vantage (observational only — see Resource). *)
    Mcf_obs.Resource.sample ();
    let r, dur_s = Trace.timed name f in
    phases := (name, dur_s) :: !phases;
    r
  in
  let run () =
    (* Sub-phases reported by the enumeration (space.precheck) are carved
       out of tuner.enumerate's duration so the breakdown entries stay
       non-overlapping and still sum to at most [tuning_wall_s]. *)
    let sub = ref [] in
    Mcf_obs.Progress.set_phase "tuner.enumerate";
    Mcf_obs.Resource.sample ();
    let (entries, scores, funnel), enum_s =
      Trace.timed "tuner.enumerate" (fun () ->
          Space.enumerate_scored ~options:opts
            ~on_phase:(fun name dur_s -> sub := (name, dur_s) :: !sub)
            ?reservoir spec chain)
    in
    let sub = List.rev !sub in
    let sub_total = Mcf_util.Listx.sum_by snd sub in
    phases :=
      ("tuner.enumerate", Float.max 0.0 (enum_s -. sub_total)) :: !phases;
    List.iter (fun p -> phases := p :: !phases) sub;
    Log.info (fun m ->
        m "%s on %s: %d candidates after pruning (raw %.3g)"
          chain.Mcf_ir.Chain.cname spec.name funnel.candidates_valid
          funnel.candidates_raw);
    (* Framework start-up: partitioning, space generation, IR round-trips. *)
    Mcf_gpu.Clock.charge clock 4.0;
    (* Like the enumeration above, the explore phase reports its measure
       batches as a sub-phase (tuner.measure) carved out of its own
       duration — this is where a warm measurement cache's wall-time
       saving becomes visible in the breakdown. *)
    let esub = ref [] in
    Mcf_obs.Progress.set_phase "tuner.explore";
    Mcf_obs.Resource.sample ();
    let explored, explore_s =
      Trace.timed "tuner.explore" (fun () ->
          Explore.run ~params:prm ?estimator ~scores ?measure
            ~on_phase:(fun name dur_s -> esub := (name, dur_s) :: !esub)
            ~rng ~clock spec entries)
    in
    let esub = List.rev !esub in
    let esub_total = Mcf_util.Listx.sum_by snd esub in
    phases :=
      ("tuner.explore", Float.max 0.0 (explore_s -. esub_total)) :: !phases;
    List.iter (fun p -> phases := p :: !phases) esub;
    match explored with
    | None -> Error No_viable_candidate
    | Some { best; best_time_s; stats } -> (
      match
        phase "tuner.codegen" (fun () ->
            Mcf_codegen.Compile.compile spec (Space.lowered best))
      with
      | Error _ -> Error No_viable_candidate
      | Ok kernel ->
        Log.info (fun m ->
            m "best %s at %.2fus after %d measurements"
              (Mcf_ir.Candidate.to_string best.cand)
              (best_time_s *. 1e6) stats.measured);
        Mcf_obs.Recorder.emit "result" (fun () ->
            let open Mcf_util.Json in
            [ ("best", Str (Mcf_ir.Candidate.to_string best.cand));
              ("best_key", Str (Mcf_ir.Candidate.key best.cand));
              ("kernel_time_s", Num best_time_s);
              ("generations", num_of_int stats.Explore.generations);
              ("estimated", num_of_int stats.estimated);
              ("measured", num_of_int stats.measured);
              ("tuning_virtual_s", Num (Mcf_gpu.Clock.elapsed_s clock)) ]);
        Ok
          { chain;
            spec;
            best;
            kernel;
            kernel_time_s = best_time_s;
            funnel;
            search_stats = stats;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            phases = [] })
  in
  let result, wall =
    Trace.timed "tuner.tune"
      ~args:(fun () ->
        [ ("chain", Trace.Str chain.Mcf_ir.Chain.cname);
          ("device", Trace.Str spec.name) ])
      run
  in
  Mcf_obs.Resource.sample ();
  (* Per-phase wall times and the heap high-water mark ride along in the
     [end] event so [mcfuser report --diff] can compare them across
     recordings.  Both are clock-dependent and listed in
     [Recorder.clock_fields], keeping cross-jobs byte-identity intact. *)
  Mcf_obs.Recorder.emit "end" (fun () ->
      let open Mcf_util.Json in
      [ ("wall_s", Num wall);
        ("phases", Obj (List.rev_map (fun (n, s) -> (n, Num s)) !phases));
        ("peak_heap_words", Num (Mcf_obs.Resource.peak_heap_words ())) ]);
  Result.map
    (fun o -> { o with tuning_wall_s = wall; phases = List.rev !phases })
    result

let pseudo_code o = Mcf_ir.Program.to_string (Space.lowered o.best).program

let triton_source o =
  Mcf_codegen.Emit.triton_kernel (Space.lowered o.best).program
