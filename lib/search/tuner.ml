module Trace = Mcf_obs.Trace

type outcome = {
  chain : Mcf_ir.Chain.t;
  spec : Mcf_gpu.Spec.t;
  best : Space.entry;
  kernel : Mcf_gpu.Kernel.t;
  kernel_time_s : float;
  funnel : Space.funnel;
  search_stats : Explore.stats;
  tuning_virtual_s : float;
  tuning_wall_s : float;
  phases : (string * float) list;
}

type error = No_viable_candidate

let default_seed (spec : Mcf_gpu.Spec.t) (chain : Mcf_ir.Chain.t) =
  Int64.to_int
    (Int64.logand
       (Mcf_util.Hashing.fnv1a64 (chain.cname ^ "|" ^ spec.name))
       0x3FFFFFFFFFFFFFFFL)

module Log = (val Logs.src_log Explore.log_src : Logs.LOG)

let c_tunes = Mcf_obs.Metrics.counter "tuner.tunes"

let tune ?options ?params ?estimator ?seed (spec : Mcf_gpu.Spec.t)
    (chain : Mcf_ir.Chain.t) =
  let seed =
    match seed with Some s -> s | None -> default_seed spec chain
  in
  let rng = Mcf_util.Rng.create seed in
  let clock = Mcf_gpu.Clock.create () in
  Mcf_obs.Metrics.incr c_tunes;
  (* Every phase is timed through the same [Trace.timed] call that emits
     its span, so the breakdown below, the trace file and [tuning_wall_s]
     share one measurement and can never disagree. *)
  let phases = ref [] in
  let phase name f =
    let r, dur_s = Trace.timed name f in
    phases := (name, dur_s) :: !phases;
    r
  in
  let run () =
    let entries, funnel =
      phase "tuner.enumerate" (fun () -> Space.enumerate ?options spec chain)
    in
    Log.info (fun m ->
        m "%s on %s: %d candidates after pruning (raw %.3g)"
          chain.Mcf_ir.Chain.cname spec.name funnel.candidates_valid
          funnel.candidates_raw);
    (* Framework start-up: partitioning, space generation, IR round-trips. *)
    Mcf_gpu.Clock.charge clock 4.0;
    match
      phase "tuner.explore" (fun () ->
          Explore.run ?params ?estimator ~rng ~clock spec entries)
    with
    | None -> Error No_viable_candidate
    | Some { best; best_time_s; stats } -> (
      match
        phase "tuner.codegen" (fun () ->
            Mcf_codegen.Compile.compile spec (Space.lowered best))
      with
      | Error _ -> Error No_viable_candidate
      | Ok kernel ->
        Log.info (fun m ->
            m "best %s at %.2fus after %d measurements"
              (Mcf_ir.Candidate.to_string best.cand)
              (best_time_s *. 1e6) stats.measured);
        Ok
          { chain;
            spec;
            best;
            kernel;
            kernel_time_s = best_time_s;
            funnel;
            search_stats = stats;
            tuning_virtual_s = Mcf_gpu.Clock.elapsed_s clock;
            tuning_wall_s = 0.0;
            phases = [] })
  in
  let result, wall =
    Trace.timed "tuner.tune"
      ~args:(fun () ->
        [ ("chain", Trace.Str chain.Mcf_ir.Chain.cname);
          ("device", Trace.Str spec.name) ])
      run
  in
  Result.map
    (fun o -> { o with tuning_wall_s = wall; phases = List.rev !phases })
    result

let pseudo_code o = Mcf_ir.Program.to_string (Space.lowered o.best).program

let triton_source o =
  Mcf_codegen.Emit.triton_kernel (Space.lowered o.best).program
