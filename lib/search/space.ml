open Mcf_ir

let log_src = Logs.Src.create "mcfuser.space" ~doc:"MCFuser search-space construction"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_enumerations = Mcf_obs.Metrics.counter "space.enumerations"
let c_tilings_raw = Mcf_obs.Metrics.counter "space.tilings_raw"
let c_candidates_lowered = Mcf_obs.Metrics.counter "space.candidates_lowered"
let c_pruned_rule1 = Mcf_obs.Metrics.counter "space.pruned_rule1"
let c_pruned_rule2 = Mcf_obs.Metrics.counter "space.pruned_rule2"
let c_pruned_rule4 = Mcf_obs.Metrics.counter "space.pruned_rule4"
let c_pruned_invalid = Mcf_obs.Metrics.counter "space.pruned_invalid"
let c_candidates_valid = Mcf_obs.Metrics.counter "space.candidates_valid"

type options = {
  rule1 : bool;
  rule2 : bool;
  rule3 : bool;
  rule4 : bool;
  include_flat : bool;
  dead_loop_elim : bool;
  hoisting : bool;
  max_padding : float;
  shmem_slack : float;
}

let default_options =
  { rule1 = true;
    rule2 = true;
    rule3 = true;
    rule4 = true;
    include_flat = true;
    dead_loop_elim = true;
    hoisting = true;
    max_padding = 0.05;
    shmem_slack = 1.2 }

type ctx = {
  chain : Chain.t;
  rule1 : bool;
  dead_loop_elim : bool;
  hoisting : bool;
  elem_bytes : int;
}

type entry = {
  cand : Candidate.t;
  ctx : ctx;
  cell : Lower.t Mcf_util.Once.t;
}

let lowered e = Mcf_util.Once.force e.cell

(* Lowering is deferred until someone actually needs the materialized
   program — measurement, codegen, a baseline's feature extractor.  The
   estimate path never does (the closed-form [Mcf_model.Analytic] covers
   it), so a tune lowers tens of candidates instead of the whole valid
   space.  The [space.lower] span and counter now meter exactly those
   forces. *)
let make_entry ctx cand =
  { cand;
    ctx;
    cell =
      Mcf_util.Once.make (fun () ->
          Mcf_obs.Trace.with_span "space.lower" (fun () ->
              Mcf_obs.Metrics.incr c_candidates_lowered;
              Lower.lower ~rule1:ctx.rule1 ~dead_loop_elim:ctx.dead_loop_elim
                ~hoisting:ctx.hoisting ~elem_bytes:ctx.elem_bytes ctx.chain
                cand)) }

type funnel = {
  tilings_raw : int;
  tilings_rule1 : int;
  tilings_rule2 : int;
  candidates_raw : float;
  candidates_rule3 : float;
  candidates_rule4 : int;
  candidates_valid : int;
}

let all_tilings opts chain =
  if opts.include_flat then Tiling.enumerate chain
  else Tiling.enumerate_deep chain

let apply_rule1 chain ts =
  Mcf_util.Listx.dedup_keep_order
    ~key:(fun t -> Tiling.to_string (Tiling.sub_tiling chain t))
    ts

(* Rule 2 is structural: in the per-block expression, a reduction loop of
   some producer appearing before (outside) an axis of its intermediate
   output forces multiple resident partial tiles (Fig. 6(b)). *)
let violates_rule2 (chain : Chain.t) tiling =
  let order = Tiling.axes (Tiling.sub_tiling chain tiling) in
  let intermediates =
    List.filter (fun (ts : Chain.tensor_spec) -> ts.storage = Chain.Intermediate)
      chain.tensors
  in
  List.exists
    (fun (ts : Chain.tensor_spec) ->
      match Chain.producer_of chain ts with
      | None -> false
      | Some p ->
        let rec scan seen_reduce = function
          | [] -> false
          | a :: rest ->
            if seen_reduce && Axis.mem a ts.taxes then true
            else scan (seen_reduce || Axis.mem a p.reduce_axes) rest
        in
        scan false order)
    intermediates

let rule2_rejects = violates_rule2

let apply_rule2 chain ts = List.filter (fun t -> not (violates_rule2 chain t)) ts

let tilings opts chain =
  let ts = all_tilings opts chain in
  let ts = if opts.rule1 then apply_rule1 chain ts else ts in
  if opts.rule2 then apply_rule2 chain ts else ts

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let rule3_ok opts (a : Axis.t) tile =
  let trips = (a.size + tile - 1) / tile in
  if is_power_of_two a.size then trips * tile = a.size
  else begin
    let padding =
      float_of_int ((trips * tile) - a.size) /. float_of_int a.size
    in
    padding <= opts.max_padding
  end

let tile_choices opts (chain : Chain.t) =
  List.map
    (fun (a : Axis.t) ->
      let all = Candidate.tile_options a.size in
      let kept =
        if opts.rule3 then List.filter (rule3_ok opts a) all else all
      in
      (* never let an axis end up with zero options *)
      let kept = if kept = [] then [ a.size ] else kept in
      (a.name, kept))
    chain.axes

let raw_cardinality (chain : Chain.t) =
  let tiling_count = List.length (Tiling.enumerate chain) in
  let tile_count =
    List.fold_left
      (fun acc (a : Axis.t) ->
        acc *. float_of_int (List.length (Candidate.tile_options a.size)))
      1.0 chain.axes
  in
  float_of_int tiling_count *. tile_count

(* Exemplar strings for the flight recorder's prune-attribution events:
   the canonical per-block sub-tiling expressions a structural rule
   rejected (rules 1-2), or the first few rejected candidates (rule 4 /
   validity).  Computed only when recording. *)
let removed_tilings chain kept all =
  let kept_keys = List.map Tiling.to_string kept in
  List.filter (fun t -> not (List.mem (Tiling.to_string t) kept_keys)) all
  |> List.map (fun t -> Tiling.to_string (Tiling.sub_tiling chain t))
  |> Mcf_util.Listx.dedup_keep_order ~key:Fun.id

let emit_prune ~stage ~kind ~enabled ~before ~after exemplars =
  Mcf_obs.Recorder.emit "prune" (fun () ->
      let open Mcf_util.Json in
      [ ("stage", Str stage);
        ("kind", Str kind);
        ("enabled", Bool enabled);
        ("before", Num before);
        ("after", Num after);
        ("removed", Num (before -. after));
        ("exemplars",
         List
           (Mcf_util.Listx.take 3 exemplars |> List.map (fun s -> Str s))) ])

let funnel_json f =
  let open Mcf_util.Json in
  Obj
    [ ("tilings_raw", num_of_int f.tilings_raw);
      ("tilings_rule1", num_of_int f.tilings_rule1);
      ("tilings_rule2", num_of_int f.tilings_rule2);
      ("candidates_raw", Num f.candidates_raw);
      ("candidates_rule3", Num f.candidates_rule3);
      ("candidates_rule4", num_of_int f.candidates_rule4);
      ("candidates_valid", num_of_int f.candidates_valid) ]

let enumerate ?(options = default_options) ?(on_phase = fun _ _ -> ())
    (spec : Mcf_gpu.Spec.t) chain =
  let module Trace = Mcf_obs.Trace in
  Trace.with_span "space.enumerate"
    ~args:(fun () -> [ ("chain", Trace.Str chain.Chain.cname) ])
    (fun () ->
      let opts = options in
      let recording = Mcf_obs.Recorder.enabled () in
      Mcf_obs.Metrics.incr c_enumerations;
      let raw_ts = Trace.with_span "space.tilings" (fun () -> all_tilings opts chain) in
      let ts1 =
        if opts.rule1 then
          Trace.with_span "space.rule1" (fun () -> apply_rule1 chain raw_ts)
        else raw_ts
      in
      let ts2 =
        if opts.rule2 then
          Trace.with_span "space.rule2" (fun () -> apply_rule2 chain ts1)
        else ts1
      in
      let choices =
        Trace.with_span "space.rule3" (fun () -> tile_choices opts chain)
      in
      let combos = Mcf_util.Listx.cartesian (List.map snd choices) in
      let names = List.map fst choices in
      let candidates_rule3 =
        float_of_int (List.length ts2) *. float_of_int (List.length combos)
      in
      (* The space is indexed virtually: rank r <-> (expression r / |combos|,
         tile vector r mod |combos|); the point list is never materialized.
         Enumeration is then staged — a closed-form rule-4 precheck rejects
         most points from the tiling alone, and only the survivors pay for a
         full lowering.  Both stages are pure per-rank maps and run on the
         shared domain pool (order-preserving, so the space stays
         deterministic whatever the pool size). *)
      let ts2_arr = Array.of_list ts2 in
      let combos_arr = Array.of_list combos in
      let n_combos = Array.length combos_arr in
      let total = Array.length ts2_arr * n_combos in
      Mcf_obs.Progress.set_info (Printf.sprintf "%d points" total);
      let cand_of r =
        Candidate.make ts2_arr.(r / n_combos)
          (List.combine names combos_arr.(r mod n_combos))
      in
      let pool = Mcf_util.Pool.get () in
      (* Stage 1: eq. (1) straight from (tiling, tiles), no Lower.lower.
         Exactness against the lowered estimate is enforced by the sweep in
         test_model.ml, so no post-lowering backstop is needed. *)
      let rule4_exemplars = ref [] in
      let survivor_ranks, precheck_s =
        Trace.timed "space.precheck"
          ~args:(fun () -> [ ("points", Trace.Int total) ])
          (fun () ->
            if not opts.rule4 then Array.init total Fun.id
            else begin
              let ok =
                Mcf_util.Pool.init ~min_chunk_work:64 pool total (fun r ->
                    Mcf_model.Shmem.precheck_within_budget spec
                      ~slack:opts.shmem_slack ~rule1:opts.rule1
                      ~dead_loop_elim:opts.dead_loop_elim chain (cand_of r))
              in
              if recording then begin
                let r = ref 0 in
                while List.length !rule4_exemplars < 3 && !r < total do
                  if not ok.(!r) then
                    rule4_exemplars :=
                      Candidate.to_string (cand_of !r) :: !rule4_exemplars;
                  incr r
                done;
                rule4_exemplars := List.rev !rule4_exemplars
              end;
              let n_ok =
                Array.fold_left (fun n b -> if b then n + 1 else n) 0 ok
              in
              let ranks = Array.make n_ok 0 in
              let j = ref 0 in
              Array.iteri
                (fun r b ->
                  if b then begin
                    ranks.(!j) <- r;
                    incr j
                  end)
                ok;
              ranks
            end)
      in
      on_phase "space.precheck" precheck_s;
      (* Telemetry tick right after the precheck burst: this is where the
         pool gauges catch space.precheck activity that a teardown-only
         sync used to miss. *)
      Mcf_obs.Resource.sample ();
      (* Stage 2: closed-form softmax-legality verdict on the survivors —
         still no lowering (the verdict equals [(Lower.lower ...).validity]
         by the test_model.ml sweep).  Survivor entries carry a lazy
         lowering cell forced only by measurement or codegen. *)
      let ctx =
        { chain;
          rule1 = opts.rule1;
          dead_loop_elim = opts.dead_loop_elim;
          hoisting = opts.hoisting;
          elem_bytes = spec.elem_bytes }
      in
      let memo =
        Mcf_model.Analytic.Memo.create ~rule1:opts.rule1
          ~dead_loop_elim:opts.dead_loop_elim ~hoisting:opts.hoisting
          ~elem_bytes:spec.elem_bytes chain
      in
      let valid =
        Trace.with_span "space.validity"
          ~args:(fun () ->
            [ ("points", Trace.Int (Array.length survivor_ranks)) ])
          (fun () ->
            Mcf_util.Pool.map_array ~min_chunk_work:64 pool
              (fun r ->
                Result.is_ok
                  (Mcf_model.Analytic.Memo.eval memo (cand_of r)).everdict)
              survivor_ranks)
      in
      let survivors =
        Array.to_list
          (Array.map2
             (fun r ok -> if ok then Some (make_entry ctx (cand_of r)) else None)
             survivor_ranks valid)
        |> List.filter_map Fun.id
      in
      let n_rule4 = Array.length survivor_ranks in
      let funnel =
        { tilings_raw = List.length raw_ts;
          tilings_rule1 = List.length ts1;
          tilings_rule2 = List.length ts2;
          candidates_raw = raw_cardinality chain;
          candidates_rule3;
          candidates_rule4 = n_rule4;
          candidates_valid = List.length survivors }
      in
      (* Funnel counters: how many points each pruning stage removed,
         accumulated across enumerations. *)
      Mcf_obs.Metrics.add c_tilings_raw funnel.tilings_raw;
      Mcf_obs.Metrics.add c_pruned_rule1
        (funnel.tilings_raw - funnel.tilings_rule1);
      Mcf_obs.Metrics.add c_pruned_rule2
        (funnel.tilings_rule1 - funnel.tilings_rule2);
      Mcf_obs.Metrics.add c_pruned_rule4 (total - funnel.candidates_rule4);
      Mcf_obs.Metrics.add c_pruned_invalid
        (funnel.candidates_rule4 - funnel.candidates_valid);
      Mcf_obs.Metrics.add c_candidates_valid funnel.candidates_valid;
      if recording then begin
        let fi = float_of_int in
        emit_prune ~stage:"rule1" ~kind:"tilings" ~enabled:opts.rule1
          ~before:(fi funnel.tilings_raw) ~after:(fi funnel.tilings_rule1)
          (removed_tilings chain ts1 raw_ts);
        emit_prune ~stage:"rule2" ~kind:"tilings" ~enabled:opts.rule2
          ~before:(fi funnel.tilings_rule1) ~after:(fi funnel.tilings_rule2)
          (removed_tilings chain ts2 ts1);
        emit_prune ~stage:"rule3" ~kind:"candidates" ~enabled:opts.rule3
          ~before:funnel.candidates_raw ~after:funnel.candidates_rule3
          (List.map
             (fun (a : Axis.t) ->
               Printf.sprintf "%s: %d of %d tile options kept" a.name
                 (List.length (List.assoc a.name choices))
                 (List.length (Candidate.tile_options a.size)))
             chain.axes);
        emit_prune ~stage:"rule4" ~kind:"candidates" ~enabled:opts.rule4
          ~before:(fi total) ~after:(fi funnel.candidates_rule4)
          !rule4_exemplars;
        let invalid_exemplars =
          let acc = ref [] in
          Array.iteri
            (fun i ok ->
              if (not ok) && List.length !acc < 3 then
                acc :=
                  Candidate.to_string (cand_of survivor_ranks.(i)) :: !acc)
            valid;
          List.rev !acc
        in
        emit_prune ~stage:"validity" ~kind:"candidates" ~enabled:true
          ~before:(fi funnel.candidates_rule4)
          ~after:(fi funnel.candidates_valid) invalid_exemplars;
        Mcf_obs.Recorder.emit "space" (fun () ->
            [ ("chain", Mcf_util.Json.Str chain.Chain.cname);
              ("funnel", funnel_json funnel) ])
      end;
      Log.debug (fun m ->
          m "%s: %d tilings -> %d exprs, %d points (%d checked) -> %d valid \
             candidates"
            chain.Chain.cname funnel.tilings_raw funnel.tilings_rule2 total
            (Array.length survivor_ranks) funnel.candidates_valid);
      (survivors, funnel))
