open Mcf_ir

let log_src = Logs.Src.create "mcfuser.space" ~doc:"MCFuser search-space construction"

module Log = (val Logs.src_log log_src : Logs.LOG)

let c_enumerations = Mcf_obs.Metrics.counter "space.enumerations"
let c_tilings_raw = Mcf_obs.Metrics.counter "space.tilings_raw"
let c_candidates_lowered = Mcf_obs.Metrics.counter "space.candidates_lowered"
let c_pruned_rule1 = Mcf_obs.Metrics.counter "space.pruned_rule1"
let c_pruned_rule2 = Mcf_obs.Metrics.counter "space.pruned_rule2"
let c_pruned_rule4 = Mcf_obs.Metrics.counter "space.pruned_rule4"
let c_pruned_invalid = Mcf_obs.Metrics.counter "space.pruned_invalid"
let c_candidates_valid = Mcf_obs.Metrics.counter "space.candidates_valid"

type options = {
  rule1 : bool;
  rule2 : bool;
  rule3 : bool;
  rule4 : bool;
  include_flat : bool;
  dead_loop_elim : bool;
  hoisting : bool;
  max_padding : float;
  shmem_slack : float;
}

let default_options =
  { rule1 = true;
    rule2 = true;
    rule3 = true;
    rule4 = true;
    include_flat = true;
    dead_loop_elim = true;
    hoisting = true;
    max_padding = 0.05;
    shmem_slack = 1.2 }

type ctx = {
  chain : Chain.t;
  rule1 : bool;
  dead_loop_elim : bool;
  hoisting : bool;
  elem_bytes : int;
}

type entry = {
  cand : Candidate.t;
  ctx : ctx;
  cell : Lower.t Mcf_util.Once.t;
}

let lowered e = Mcf_util.Once.force e.cell

(* Lowering is deferred until someone actually needs the materialized
   program — measurement, codegen, a baseline's feature extractor.  The
   estimate path never does (the closed-form [Mcf_model.Analytic] covers
   it), so a tune lowers tens of candidates instead of the whole valid
   space.  The [space.lower] span and counter now meter exactly those
   forces. *)
let make_entry ctx cand =
  { cand;
    ctx;
    cell =
      Mcf_util.Once.make (fun () ->
          Mcf_obs.Trace.with_span "space.lower" (fun () ->
              Mcf_obs.Metrics.incr c_candidates_lowered;
              Lower.lower ~rule1:ctx.rule1 ~dead_loop_elim:ctx.dead_loop_elim
                ~hoisting:ctx.hoisting ~elem_bytes:ctx.elem_bytes ctx.chain
                cand)) }

type funnel = {
  tilings_raw : int;
  tilings_rule1 : int;
  tilings_rule2 : int;
  candidates_raw : float;
  candidates_rule3 : float;
  candidates_rule4 : int;
  candidates_valid : int;
}

let all_tilings opts chain =
  if opts.include_flat then Tiling.enumerate chain
  else Tiling.enumerate_deep chain

let apply_rule1 chain ts =
  Mcf_util.Listx.dedup_keep_order
    ~key:(fun t -> Tiling.to_string (Tiling.sub_tiling chain t))
    ts

(* Rule 2 is structural: in the per-block expression, a reduction loop of
   some producer appearing before (outside) an axis of its intermediate
   output forces multiple resident partial tiles (Fig. 6(b)). *)
let violates_rule2 (chain : Chain.t) tiling =
  let order = Tiling.axes (Tiling.sub_tiling chain tiling) in
  let intermediates =
    List.filter (fun (ts : Chain.tensor_spec) -> ts.storage = Chain.Intermediate)
      chain.tensors
  in
  List.exists
    (fun (ts : Chain.tensor_spec) ->
      match Chain.producer_of chain ts with
      | None -> false
      | Some p ->
        let rec scan seen_reduce = function
          | [] -> false
          | a :: rest ->
            if seen_reduce && Axis.mem a ts.taxes then true
            else scan (seen_reduce || Axis.mem a p.reduce_axes) rest
        in
        scan false order)
    intermediates

let rule2_rejects = violates_rule2

let apply_rule2 chain ts = List.filter (fun t -> not (violates_rule2 chain t)) ts

let tilings opts chain =
  let ts = all_tilings opts chain in
  let ts = if opts.rule1 then apply_rule1 chain ts else ts in
  if opts.rule2 then apply_rule2 chain ts else ts

let is_power_of_two v = v > 0 && v land (v - 1) = 0

let rule3_ok opts (a : Axis.t) tile =
  let trips = (a.size + tile - 1) / tile in
  if is_power_of_two a.size then trips * tile = a.size
  else begin
    let padding =
      float_of_int ((trips * tile) - a.size) /. float_of_int a.size
    in
    padding <= opts.max_padding
  end

let tile_choices opts (chain : Chain.t) =
  List.map
    (fun (a : Axis.t) ->
      let all = Candidate.tile_options a.size in
      let kept =
        if opts.rule3 then List.filter (rule3_ok opts a) all else all
      in
      (* never let an axis end up with zero options *)
      let kept = if kept = [] then [ a.size ] else kept in
      (a.name, kept))
    chain.axes

(* Closed form: n! deep + the flat product ([Tiling.count]) times the
   per-axis tile-option product.  The old implementation materialized
   [Tiling.enumerate] just to take its length — fatal for the deep-chain
   family where the list alone is (blocks + 2)! elements. *)
let raw_cardinality (chain : Chain.t) =
  let tile_count =
    List.fold_left
      (fun acc (a : Axis.t) ->
        acc *. float_of_int (List.length (Candidate.tile_options a.size)))
      1.0 chain.axes
  in
  float_of_int (Tiling.count chain) *. tile_count

(* Exemplar strings for the flight recorder's prune-attribution events:
   the canonical per-block sub-tiling expressions a structural rule
   rejected (rules 1-2), or the first few rejected candidates (rule 4 /
   validity).  Computed only when recording.  Membership is a
   Hashtbl-backed set — the older [List.mem] over string keys was
   quadratic in the tiling count. *)
let removed_tilings chain kept all =
  let kept_keys = Hashtbl.create 64 in
  List.iter (fun t -> Hashtbl.replace kept_keys (Tiling.to_string t) ()) kept;
  List.filter (fun t -> not (Hashtbl.mem kept_keys (Tiling.to_string t))) all
  |> List.map (fun t -> Tiling.to_string (Tiling.sub_tiling chain t))
  |> Mcf_util.Listx.dedup_keep_order ~key:Fun.id

let emit_prune ~stage ~kind ~enabled ~before ~after exemplars =
  Mcf_obs.Recorder.emit "prune" (fun () ->
      let open Mcf_util.Json in
      [ ("stage", Str stage);
        ("kind", Str kind);
        ("enabled", Bool enabled);
        ("before", Num before);
        ("after", Num after);
        ("removed", Num (before -. after));
        ("exemplars",
         List
           (Mcf_util.Listx.take 3 exemplars |> List.map (fun s -> Str s))) ])

let funnel_json f =
  let open Mcf_util.Json in
  Obj
    [ ("tilings_raw", num_of_int f.tilings_raw);
      ("tilings_rule1", num_of_int f.tilings_rule1);
      ("tilings_rule2", num_of_int f.tilings_rule2);
      ("candidates_raw", Num f.candidates_raw);
      ("candidates_rule3", Num f.candidates_rule3);
      ("candidates_rule4", num_of_int f.candidates_rule4);
      ("candidates_valid", num_of_int f.candidates_valid) ]

(* Funnel counters: how many points each pruning stage removed,
   accumulated across enumerations.  [total] is the post-rule-3 point
   count (|rule-2 survivors| x |tile combos|). *)
let add_funnel_metrics ~total funnel =
  Mcf_obs.Metrics.add c_tilings_raw funnel.tilings_raw;
  Mcf_obs.Metrics.add c_pruned_rule1
    (funnel.tilings_raw - funnel.tilings_rule1);
  Mcf_obs.Metrics.add c_pruned_rule2
    (funnel.tilings_rule1 - funnel.tilings_rule2);
  Mcf_obs.Metrics.add c_pruned_rule4 (total - funnel.candidates_rule4);
  Mcf_obs.Metrics.add c_pruned_invalid
    (funnel.candidates_rule4 - funnel.candidates_valid);
  Mcf_obs.Metrics.add c_candidates_valid funnel.candidates_valid

(* ------------------------------------------------------------------ *)
(* Streaming enumeration (the default path).

   The front half of the search is a pull-based two-stage pipeline with
   bounded memory:

   - a generator domain walks [Tiling.seq] lazily, applies the
     structural rules (1: sub-tiling dedup, 2: residency scan) as the
     stream flows, and packs the survivors' tile-combo index ranges into
     fixed-size chunk descriptors pushed through a bounded
     [Mcf_util.Chan] (backpressure: a fast generator blocks instead of
     buffering the space);
   - the consumer (this domain) scores each chunk on the shared
     [Mcf_util.Pool] with one fused per-point map — rule-4 shmem
     precheck, closed-form validity verdict and the analytical estimate
     in a single pass — then drains the results sequentially in rank
     order into funnel counters, recorder exemplars and the reservoir.

   Peak heap is O(reservoir + chunks in flight), never O(space).  The
   point order is identical to the old materialized path (tilings in
   [Tiling.enumerate] order, combos row-major first-axis-slowest as
   [Listx.cartesian] produced them), every cross-domain reduction is
   drained sequentially, and the reservoir re-sorts by rank — so the
   candidate list, the funnel and the eventual tuner outcome are
   bit-identical at any --jobs, with recording on or off. *)

type seg = { stiling : Tiling.t; combo_lo : int; combo_len : int }
type chunk = { segs : seg array; seg_offsets : int array; chunk_points : int }

let chunk_target = 4096
let chan_capacity = 4

type feed_tally = {
  f_raw : int;
  f_rule1 : int;
  f_rule2 : int;
  f_ex1 : string list;
  f_ex2 : string list;
}

type verdict =
  | V_rule4_rejected
  | V_invalid
  | V_valid of Candidate.t * float * float  (* candidate, estimate, traffic *)

(* Bounded top-C slice ordered by estimate (ties broken toward the
   earlier rank), or a plain accumulator when unbounded.  Items always
   come back re-sorted by rank: downstream (the explorer's interner ids,
   its unstable top-k sort) depends on entry order being a subsequence
   of the enumeration order. *)
module Reservoir = struct
  type item = { ientry : entry; iest : float; itraffic : float; irank : int }

  type t = {
    cap : int option;
    mutable heap : item array;  (* max-heap by (iest, irank) when bounded *)
    mutable n : int;
    mutable acc : item list;  (* reverse rank order when unbounded *)
  }

  let create cap = { cap; heap = [||]; n = 0; acc = [] }
  let gt a b = a.iest > b.iest || (a.iest = b.iest && a.irank > b.irank)

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if gt h.(i) h.(p) then begin
        let t = h.(i) in
        h.(i) <- h.(p);
        h.(p) <- t;
        sift_up h p
      end
    end

  let rec sift_down h n i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < n && gt h.(l) h.(i) then l else i in
    let m = if r < n && gt h.(r) h.(m) then r else m in
    if m <> i then begin
      let t = h.(i) in
      h.(i) <- h.(m);
      h.(m) <- t;
      sift_down h n m
    end

  let add t item =
    match t.cap with
    | None ->
      t.acc <- item :: t.acc;
      t.n <- t.n + 1
    | Some cap ->
      if Array.length t.heap = 0 then t.heap <- Array.make cap item;
      if t.n < cap then begin
        t.heap.(t.n) <- item;
        t.n <- t.n + 1;
        sift_up t.heap (t.n - 1)
      end
      else if gt t.heap.(0) item then begin
        t.heap.(0) <- item;
        sift_down t.heap t.n 0
      end

  let to_ranked t =
    match t.cap with
    | None -> Array.of_list (List.rev t.acc)
    | Some _ ->
      let a = Array.sub t.heap 0 t.n in
      Array.sort (fun x y -> compare x.irank y.irank) a;
      a
end

let enumerate_scored ?(options = default_options)
    ?(on_phase = fun _ _ -> ()) ?reservoir (spec : Mcf_gpu.Spec.t) chain =
  let module Trace = Mcf_obs.Trace in
  Trace.with_span "space.enumerate"
    ~args:(fun () -> [ ("chain", Trace.Str chain.Chain.cname) ])
    (fun () ->
      let opts = options in
      let recording = Mcf_obs.Recorder.enabled () in
      Mcf_obs.Metrics.incr c_enumerations;
      let choices =
        Trace.with_span "space.rule3" (fun () -> tile_choices opts chain)
      in
      let names = Array.of_list (List.map fst choices) in
      let choice_arrs =
        Array.of_list (List.map (fun (_, l) -> Array.of_list l) choices)
      in
      let n_axes = Array.length choice_arrs in
      let n_combos =
        Array.fold_left (fun acc a -> acc * Array.length a) 1 choice_arrs
      in
      (* Mixed-radix decode of a combo index, replicating the row-major
         (first axis slowest) order [Listx.cartesian] produced in the
         materialized path; the positional index is part of the
         determinism contract. *)
      let decode_combo c =
        let tiles = ref [] in
        let c = ref c in
        for i = n_axes - 1 downto 0 do
          let arr = choice_arrs.(i) in
          let radix = Array.length arr in
          tiles := (names.(i), arr.(!c mod radix)) :: !tiles;
          c := !c / radix
        done;
        !tiles
      in
      let chan = Mcf_util.Chan.create ~capacity:chan_capacity in
      (* Generator: lazily walk the tiling expressions, prune
         structurally, and push combo-range chunks.  Runs in its own
         domain so rule-1/2 scanning overlaps with chunk scoring. *)
      let feed () =
        let source =
          if opts.include_flat then Tiling.seq chain
          else Tiling.seq_deep chain
        in
        let seen = Hashtbl.create 1024 in
        let raw = ref 0 and n1 = ref 0 and n2 = ref 0 in
        let ex1 = ref [] and ex1_n = ref 0 and ex1_seen = Hashtbl.create 8 in
        let ex2 = ref [] and ex2_n = ref 0 and ex2_seen = Hashtbl.create 8 in
        let pending = ref [] and pending_pts = ref 0 in
        let aborted = ref false in
        let flush () =
          if !pending_pts > 0 then begin
            let segs = Array.of_list (List.rev !pending) in
            let offs = Array.make (Array.length segs) 0 in
            let acc = ref 0 in
            Array.iteri
              (fun i s ->
                offs.(i) <- !acc;
                acc := !acc + s.combo_len)
              segs;
            let c = { segs; seg_offsets = offs; chunk_points = !acc } in
            pending := [];
            pending_pts := 0;
            if not (Mcf_util.Chan.send chan c) then aborted := true
          end
        in
        let emit_tiling t =
          let lo = ref 0 in
          while (not !aborted) && !lo < n_combos do
            let len = min (chunk_target - !pending_pts) (n_combos - !lo) in
            pending :=
              { stiling = t; combo_lo = !lo; combo_len = len } :: !pending;
            pending_pts := !pending_pts + len;
            lo := !lo + len;
            if !pending_pts >= chunk_target then flush ()
          done
        in
        (* First three distinct removed sub-tiling keys, in stream order:
           exactly [removed_tilings ... |> take 3] of the old path. *)
        let note_exemplar tbl lst count k =
          if !count < 3 && not (Hashtbl.mem tbl k) then begin
            Hashtbl.add tbl k ();
            lst := k :: !lst;
            incr count
          end
        in
        let consider t =
          incr raw;
          let key =
            if opts.rule1 || (recording && opts.rule2) then
              Tiling.to_string (Tiling.sub_tiling chain t)
            else ""
          in
          let kept1 =
            if not opts.rule1 then true
            else if Hashtbl.mem seen key then begin
              if recording then note_exemplar ex1_seen ex1 ex1_n key;
              false
            end
            else begin
              Hashtbl.add seen key ();
              true
            end
          in
          if kept1 then begin
            incr n1;
            if opts.rule2 && violates_rule2 chain t then begin
              if recording then note_exemplar ex2_seen ex2 ex2_n key
            end
            else begin
              incr n2;
              emit_tiling t
            end
          end
        in
        let rec drive s =
          if not !aborted then
            match s () with
            | Seq.Nil -> ()
            | Seq.Cons (t, rest) ->
              consider t;
              drive rest
        in
        let body () =
          drive source;
          flush ();
          Mcf_util.Chan.close chan
        in
        let under cond name f =
          if cond then Trace.with_span name f else f ()
        in
        Trace.with_span "space.tilings" (fun () ->
            under opts.rule1 "space.rule1" (fun () ->
                under opts.rule2 "space.rule2" body));
        { f_raw = !raw;
          f_rule1 = !n1;
          f_rule2 = !n2;
          f_ex1 = List.rev !ex1;
          f_ex2 = List.rev !ex2 }
      in
      let ctx =
        { chain;
          rule1 = opts.rule1;
          dead_loop_elim = opts.dead_loop_elim;
          hoisting = opts.hoisting;
          elem_bytes = spec.elem_bytes }
      in
      let memo =
        Mcf_model.Analytic.Memo.create ~rule1:opts.rule1
          ~dead_loop_elim:opts.dead_loop_elim ~hoisting:opts.hoisting
          ~elem_bytes:spec.elem_bytes chain
      in
      let sm_countf = float_of_int spec.Mcf_gpu.Spec.sm_count in
      let pool = Mcf_util.Pool.get () in
      let cand_at chunk i =
        (* binary search for the owning segment *)
        let lo = ref 0 and hi = ref (Array.length chunk.segs - 1) in
        while !lo < !hi do
          let mid = (!lo + !hi + 1) / 2 in
          if chunk.seg_offsets.(mid) <= i then lo := mid else hi := mid - 1
        done;
        let s = chunk.segs.(!lo) in
        Candidate.make s.stiling
          (decode_combo (s.combo_lo + (i - chunk.seg_offsets.(!lo))))
      in
      (* Fused per-point scorer: eq. (1) shmem precheck straight from
         (tiling, tiles), then the closed-form validity verdict and the
         analytical estimate from one [Memo.eval] — no Lower.lower
         anywhere (exactness against the lowered walk is enforced by the
         sweep in test_model.ml).  The estimate/traffic formulas are the
         explorer's, verbatim, so precomputed scores rank identically. *)
      let score chunk i =
        let cand = cand_at chunk i in
        if
          opts.rule4
          && not
               (Mcf_model.Shmem.precheck_within_budget spec
                  ~slack:opts.shmem_slack ~rule1:opts.rule1
                  ~dead_loop_elim:opts.dead_loop_elim chain cand)
        then V_rule4_rejected
        else begin
          let ev = Mcf_model.Analytic.Memo.eval memo cand in
          if Result.is_ok ev.Mcf_model.Analytic.everdict then begin
            let est =
              (Mcf_model.Analytic.breakdown_of_eval spec ev)
                .Mcf_model.Perf.t_total
            in
            let traffic =
              ev.Mcf_model.Analytic.traffic_bytes
              *. ((ev.Mcf_model.Analytic.blocks +. sm_countf)
                 /. ev.Mcf_model.Analytic.blocks)
            in
            V_valid (cand, est, traffic)
          end
          else V_invalid
        end
      in
      let res = Reservoir.create (Option.map (max 1) reservoir) in
      let n_points = ref 0 and n_rule4 = ref 0 and n_valid = ref 0 in
      let rule4_ex = ref [] and rule4_ex_n = ref 0 in
      let invalid_ex = ref [] and invalid_ex_n = ref 0 in
      let score_s = ref 0.0 in
      let consume () =
        let continue = ref true in
        while !continue do
          match Mcf_util.Chan.recv chan with
          | None -> continue := false
          | Some chunk ->
            let verdicts, dt =
              Trace.timed "space.precheck"
                ~args:(fun () ->
                  [ ("points", Trace.Int chunk.chunk_points) ])
                (fun () ->
                  Mcf_util.Pool.init ~min_chunk_work:64 pool
                    chunk.chunk_points (score chunk))
            in
            score_s := !score_s +. dt;
            (* Sequential drain, in rank order: funnel counters, recorder
               exemplars and the reservoir are all single-threaded, so
               recordings and results stay deterministic at any pool
               size. *)
            Array.iteri
              (fun i v ->
                match v with
                | V_rule4_rejected ->
                  if recording && !rule4_ex_n < 3 then begin
                    rule4_ex :=
                      Candidate.to_string (cand_at chunk i) :: !rule4_ex;
                    incr rule4_ex_n
                  end
                | V_invalid ->
                  incr n_rule4;
                  if recording && !invalid_ex_n < 3 then begin
                    invalid_ex :=
                      Candidate.to_string (cand_at chunk i) :: !invalid_ex;
                    incr invalid_ex_n
                  end
                | V_valid (cand, est, traffic) ->
                  incr n_rule4;
                  incr n_valid;
                  Reservoir.add res
                    { ientry = make_entry ctx cand;
                      iest = est;
                      itraffic = traffic;
                      irank = !n_points + i })
              verdicts;
            n_points := !n_points + chunk.chunk_points;
            Mcf_obs.Progress.set_info
              (Printf.sprintf "%d points streamed" !n_points);
            (* Telemetry tick per chunk: the rsrc.* gauges sample heap
               and pool activity while the stream is in flight, not just
               at teardown. *)
            Mcf_obs.Resource.sample ()
        done
      in
      (* Seed the generator domain's span stack with this one's so its
         space.tilings/rule1/rule2 spans stay under space.enumerate in
         the trace tree instead of becoming new roots. *)
      let span_ancestry = Trace.ancestry () in
      let feeder =
        Domain.spawn (fun () ->
            match Trace.with_ancestry span_ancestry feed with
            | tally -> Ok tally
            | exception e ->
              Mcf_util.Chan.poison chan e;
              Error e)
      in
      let tally =
        match consume () with
        | () -> (
          match Domain.join feeder with Ok t -> t | Error e -> raise e)
        | exception e ->
          (* Consumer failed: unblock the generator (drain-after-cancel)
             and reap its domain before re-raising. *)
          Mcf_util.Chan.cancel chan;
          (try ignore (Domain.join feeder : (feed_tally, exn) result)
           with _ -> ());
          raise e
      in
      on_phase "space.precheck" !score_s;
      let total = tally.f_rule2 * n_combos in
      let candidates_rule3 =
        float_of_int tally.f_rule2 *. float_of_int n_combos
      in
      let items = Reservoir.to_ranked res in
      let survivors =
        Array.to_list (Array.map (fun it -> it.Reservoir.ientry) items)
      in
      let scores =
        Array.map (fun it -> (it.Reservoir.iest, it.Reservoir.itraffic)) items
      in
      let funnel =
        { tilings_raw = tally.f_raw;
          tilings_rule1 = tally.f_rule1;
          tilings_rule2 = tally.f_rule2;
          candidates_raw = raw_cardinality chain;
          candidates_rule3;
          candidates_rule4 = !n_rule4;
          candidates_valid = !n_valid }
      in
      add_funnel_metrics ~total funnel;
      if recording then begin
        let fi = float_of_int in
        emit_prune ~stage:"rule1" ~kind:"tilings" ~enabled:opts.rule1
          ~before:(fi funnel.tilings_raw) ~after:(fi funnel.tilings_rule1)
          tally.f_ex1;
        emit_prune ~stage:"rule2" ~kind:"tilings" ~enabled:opts.rule2
          ~before:(fi funnel.tilings_rule1) ~after:(fi funnel.tilings_rule2)
          tally.f_ex2;
        emit_prune ~stage:"rule3" ~kind:"candidates" ~enabled:opts.rule3
          ~before:funnel.candidates_raw ~after:funnel.candidates_rule3
          (List.map
             (fun (a : Axis.t) ->
               Printf.sprintf "%s: %d of %d tile options kept" a.name
                 (List.length (List.assoc a.name choices))
                 (List.length (Candidate.tile_options a.size)))
             chain.axes);
        emit_prune ~stage:"rule4" ~kind:"candidates" ~enabled:opts.rule4
          ~before:(fi total) ~after:(fi funnel.candidates_rule4)
          (List.rev !rule4_ex);
        emit_prune ~stage:"validity" ~kind:"candidates" ~enabled:true
          ~before:(fi funnel.candidates_rule4)
          ~after:(fi funnel.candidates_valid)
          (List.rev !invalid_ex);
        Mcf_obs.Recorder.emit "space" (fun () ->
            [ ("chain", Mcf_util.Json.Str chain.Chain.cname);
              ("funnel", funnel_json funnel) ])
      end;
      Log.debug (fun m ->
          m "%s: %d tilings -> %d exprs, %d points (%d checked) -> %d valid \
             candidates"
            chain.Chain.cname funnel.tilings_raw funnel.tilings_rule2 total
            funnel.candidates_rule4 funnel.candidates_valid);
      (survivors, scores, funnel))

let enumerate ?options ?on_phase ?reservoir spec chain =
  let survivors, _scores, funnel =
    enumerate_scored ?options ?on_phase ?reservoir spec chain
  in
  (survivors, funnel)

(* ------------------------------------------------------------------ *)
(* Materialized reference path.

   The pre-streaming implementation, kept as the differential oracle:
   the whole tiling list and the indexed virtual space live in memory at
   once, staged precheck then validity.  test_stream.ml pins the
   streaming path against this one (same funnel, same candidate set);
   it is also what the fuzzer's pruning oracle cross-checks. *)

let enumerate_materialized ?(options = default_options)
    ?(on_phase = fun _ _ -> ()) (spec : Mcf_gpu.Spec.t) chain =
  let module Trace = Mcf_obs.Trace in
  Trace.with_span "space.enumerate"
    ~args:(fun () -> [ ("chain", Trace.Str chain.Chain.cname) ])
    (fun () ->
      let opts = options in
      let recording = Mcf_obs.Recorder.enabled () in
      Mcf_obs.Metrics.incr c_enumerations;
      let raw_ts = Trace.with_span "space.tilings" (fun () -> all_tilings opts chain) in
      let ts1 =
        if opts.rule1 then
          Trace.with_span "space.rule1" (fun () -> apply_rule1 chain raw_ts)
        else raw_ts
      in
      let ts2 =
        if opts.rule2 then
          Trace.with_span "space.rule2" (fun () -> apply_rule2 chain ts1)
        else ts1
      in
      let choices =
        Trace.with_span "space.rule3" (fun () -> tile_choices opts chain)
      in
      let combos = Mcf_util.Listx.cartesian (List.map snd choices) in
      let names = List.map fst choices in
      let candidates_rule3 =
        float_of_int (List.length ts2) *. float_of_int (List.length combos)
      in
      (* The space is indexed virtually: rank r <-> (expression r / |combos|,
         tile vector r mod |combos|); the point list is never materialized.
         Enumeration is then staged — a closed-form rule-4 precheck rejects
         most points from the tiling alone, and only the survivors pay for a
         full lowering.  Both stages are pure per-rank maps and run on the
         shared domain pool (order-preserving, so the space stays
         deterministic whatever the pool size). *)
      let ts2_arr = Array.of_list ts2 in
      let combos_arr = Array.of_list combos in
      let n_combos = Array.length combos_arr in
      let total = Array.length ts2_arr * n_combos in
      Mcf_obs.Progress.set_info (Printf.sprintf "%d points" total);
      let cand_of r =
        Candidate.make ts2_arr.(r / n_combos)
          (List.combine names combos_arr.(r mod n_combos))
      in
      let pool = Mcf_util.Pool.get () in
      (* Stage 1: eq. (1) straight from (tiling, tiles), no Lower.lower.
         Exactness against the lowered estimate is enforced by the sweep in
         test_model.ml, so no post-lowering backstop is needed. *)
      let rule4_exemplars = ref [] in
      let survivor_ranks, precheck_s =
        Trace.timed "space.precheck"
          ~args:(fun () -> [ ("points", Trace.Int total) ])
          (fun () ->
            if not opts.rule4 then Array.init total Fun.id
            else begin
              let ok =
                Mcf_util.Pool.init ~min_chunk_work:64 pool total (fun r ->
                    Mcf_model.Shmem.precheck_within_budget spec
                      ~slack:opts.shmem_slack ~rule1:opts.rule1
                      ~dead_loop_elim:opts.dead_loop_elim chain (cand_of r))
              in
              if recording then begin
                let r = ref 0 in
                while List.length !rule4_exemplars < 3 && !r < total do
                  if not ok.(!r) then
                    rule4_exemplars :=
                      Candidate.to_string (cand_of !r) :: !rule4_exemplars;
                  incr r
                done;
                rule4_exemplars := List.rev !rule4_exemplars
              end;
              let n_ok =
                Array.fold_left (fun n b -> if b then n + 1 else n) 0 ok
              in
              let ranks = Array.make n_ok 0 in
              let j = ref 0 in
              Array.iteri
                (fun r b ->
                  if b then begin
                    ranks.(!j) <- r;
                    incr j
                  end)
                ok;
              ranks
            end)
      in
      on_phase "space.precheck" precheck_s;
      (* Telemetry tick right after the precheck burst: this is where the
         pool gauges catch space.precheck activity that a teardown-only
         sync used to miss. *)
      Mcf_obs.Resource.sample ();
      (* Stage 2: closed-form softmax-legality verdict on the survivors —
         still no lowering (the verdict equals [(Lower.lower ...).validity]
         by the test_model.ml sweep).  Survivor entries carry a lazy
         lowering cell forced only by measurement or codegen. *)
      let ctx =
        { chain;
          rule1 = opts.rule1;
          dead_loop_elim = opts.dead_loop_elim;
          hoisting = opts.hoisting;
          elem_bytes = spec.elem_bytes }
      in
      let memo =
        Mcf_model.Analytic.Memo.create ~rule1:opts.rule1
          ~dead_loop_elim:opts.dead_loop_elim ~hoisting:opts.hoisting
          ~elem_bytes:spec.elem_bytes chain
      in
      let valid =
        Trace.with_span "space.validity"
          ~args:(fun () ->
            [ ("points", Trace.Int (Array.length survivor_ranks)) ])
          (fun () ->
            Mcf_util.Pool.map_array ~min_chunk_work:64 pool
              (fun r ->
                Result.is_ok
                  (Mcf_model.Analytic.Memo.eval memo (cand_of r)).everdict)
              survivor_ranks)
      in
      let survivors =
        Array.to_list
          (Array.map2
             (fun r ok -> if ok then Some (make_entry ctx (cand_of r)) else None)
             survivor_ranks valid)
        |> List.filter_map Fun.id
      in
      let n_rule4 = Array.length survivor_ranks in
      let funnel =
        { tilings_raw = List.length raw_ts;
          tilings_rule1 = List.length ts1;
          tilings_rule2 = List.length ts2;
          candidates_raw = raw_cardinality chain;
          candidates_rule3;
          candidates_rule4 = n_rule4;
          candidates_valid = List.length survivors }
      in
      add_funnel_metrics ~total funnel;
      if recording then begin
        let fi = float_of_int in
        emit_prune ~stage:"rule1" ~kind:"tilings" ~enabled:opts.rule1
          ~before:(fi funnel.tilings_raw) ~after:(fi funnel.tilings_rule1)
          (removed_tilings chain ts1 raw_ts);
        emit_prune ~stage:"rule2" ~kind:"tilings" ~enabled:opts.rule2
          ~before:(fi funnel.tilings_rule1) ~after:(fi funnel.tilings_rule2)
          (removed_tilings chain ts2 ts1);
        emit_prune ~stage:"rule3" ~kind:"candidates" ~enabled:opts.rule3
          ~before:funnel.candidates_raw ~after:funnel.candidates_rule3
          (List.map
             (fun (a : Axis.t) ->
               Printf.sprintf "%s: %d of %d tile options kept" a.name
                 (List.length (List.assoc a.name choices))
                 (List.length (Candidate.tile_options a.size)))
             chain.axes);
        emit_prune ~stage:"rule4" ~kind:"candidates" ~enabled:opts.rule4
          ~before:(fi total) ~after:(fi funnel.candidates_rule4)
          !rule4_exemplars;
        let invalid_exemplars =
          let acc = ref [] in
          Array.iteri
            (fun i ok ->
              if (not ok) && List.length !acc < 3 then
                acc :=
                  Candidate.to_string (cand_of survivor_ranks.(i)) :: !acc)
            valid;
          List.rev !acc
        in
        emit_prune ~stage:"validity" ~kind:"candidates" ~enabled:true
          ~before:(fi funnel.candidates_rule4)
          ~after:(fi funnel.candidates_valid) invalid_exemplars;
        Mcf_obs.Recorder.emit "space" (fun () ->
            [ ("chain", Mcf_util.Json.Str chain.Chain.cname);
              ("funnel", funnel_json funnel) ])
      end;
      Log.debug (fun m ->
          m "%s: %d tilings -> %d exprs, %d points (%d checked) -> %d valid \
             candidates"
            chain.Chain.cname funnel.tilings_raw funnel.tilings_rule2 total
            (Array.length survivor_ranks) funnel.candidates_valid);
      (survivors, funnel))
