(* Fusing a chain of THREE compute-intensive operators.

     dune exec examples/three_gemm_chain.exe

   The paper's analysis "naturally extends to scenarios with more
   compute-intensive operators" (§III-A); this example exercises that
   extension: G = ((A x B) x D) x F with two intermediates kept in shared
   memory.  The search space now has 5 cross-tile loops (120 deep
   permutations plus flat forms), and the winning schedule is verified
   numerically. *)

let () =
  let spec = Mcf_gpu.Spec.a100 in
  let chain = Mcf_ir.Chain.gemm_chain3 ~m:512 ~n:128 ~k:64 ~h:128 ~p:64 () in
  Printf.printf "chain: %s\n\n" (Format.asprintf "%a" Mcf_ir.Chain.pp chain);

  (* structural space: 5 loops *)
  let deep = List.length (Mcf_ir.Tiling.enumerate_deep chain) in
  let flat = List.length (Mcf_ir.Tiling.enumerate_flat chain) in
  Printf.printf "tiling expressions: %d deep + %d flat\n" deep flat;

  let outcome =
    match Mcf_search.Tuner.tune spec chain with
    | Ok o -> o
    | Error Mcf_search.Tuner.No_viable_candidate -> failwith "unfusable"
  in
  Printf.printf
    "pruned space: %d candidates; best %s at %s (%d measured)\n\n"
    outcome.funnel.candidates_valid
    (Mcf_ir.Candidate.to_string outcome.best.cand)
    (Mcf_util.Table.fmt_time_s outcome.kernel_time_s)
    outcome.search_stats.measured;
  print_string (Mcf_search.Tuner.pseudo_code outcome);

  (* unfused comparison: three library GEMMs *)
  (match Mcf_baselines.Pytorch.backend.tune spec chain with
  | Ok py ->
    Printf.printf "\nunfused 3-GEMM execution: %s -> fused speedup %.2fx\n"
      (Mcf_util.Table.fmt_time_s py.time_s)
      (py.time_s /. outcome.kernel_time_s)
  | Error _ -> ());

  (* numeric verification on a scaled-down instance *)
  let small = Mcf_ir.Chain.gemm_chain3 ~m:64 ~n:48 ~k:32 ~h:48 ~p:32 () in
  let o =
    match Mcf_search.Tuner.tune spec small with
    | Ok o -> o
    | Error _ -> failwith "unfusable"
  in
  let rng = Mcf_util.Rng.create 11 in
  let inputs =
    List.map
      (fun (ts : Mcf_ir.Chain.tensor_spec) ->
        let shape =
          Array.of_list (List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes)
        in
        (ts.tname, Mcf_tensor.Tensor.random rng shape))
      (Mcf_ir.Chain.input_tensors small)
  in
  let fused = Mcf_interp.Interp.run (Mcf_search.Space.lowered o.best).program ~inputs in
  let reference = Mcf_interp.Interp.reference small ~inputs in
  Printf.printf "\nnumeric check (64x48x32x48x32): max diff %.2e -> %s\n"
    (Mcf_tensor.Tensor.max_abs_diff fused reference)
    (if Mcf_tensor.Tensor.approx_equal ~tol:1e-3 fused reference then "PASS"
     else "FAIL")
