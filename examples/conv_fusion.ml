(* Fusing convolutions: conv(3x3) + pointwise conv(1x1) as an MBCI chain.

     dune exec examples/conv_fusion.exe

   Convolution lowers to GEMM through im2col; a k x k convolution followed
   by a 1x1 projection is then exactly the paper's two-GEMM chain, and with
   small channel counts it is memory-bound — the same MBCI structure that
   motivates attention fusion, in CNN clothing.  This example maps the
   convolution pair onto the chain IR, checks the roofline, tunes, and
   verifies the fused schedule against a direct conv2d reference. *)

module T = Mcf_tensor.Tensor
module Ops = Mcf_tensor.Ops

let () =
  let spec = Mcf_gpu.Spec.a100 in
  let height = 66 and width = 66 in
  let c_in = 16 and c_mid = 32 and c_out = 32 in
  let ksize = 3 in
  let chain =
    Mcf_ir.Chain.conv_pointwise_chain ~height ~width ~c_in ~c_mid ~c_out
      ~ksize ()
  in
  Printf.printf "conv(%dx%d, %d->%d) + pointwise(%d->%d) on a %dx%d image\n"
    ksize ksize c_in c_mid c_mid c_out height width;
  Printf.printf "as a GEMM chain: %s\n\n"
    (Format.asprintf "%a" Mcf_ir.Chain.pp chain);

  (* MBCI test *)
  let flops = Mcf_ir.Chain.total_flops chain in
  let unfused =
    Mcf_ir.Chain.unfused_traffic_bytes chain ~elem_bytes:spec.elem_bytes
  in
  Printf.printf
    "unfused intensity %.0f FLOPs/byte vs roofline %.0f -> %s\n\n"
    (flops /. unfused)
    (Mcf_gpu.Spec.roofline_ratio spec)
    (if flops /. unfused < Mcf_gpu.Spec.roofline_ratio spec then
       "memory-bound: fuse it"
     else "compute-bound");

  (* tune a larger instance for the performance story *)
  let big =
    Mcf_ir.Chain.conv_pointwise_chain ~height:130 ~width:130 ~c_in:32
      ~c_mid:64 ~c_out:64 ~ksize ()
  in
  (match Mcf_search.Tuner.tune spec big with
  | Ok o ->
    Printf.printf "tuned 128x128 instance: %s at %s\n"
      (Mcf_ir.Candidate.to_string o.best.cand)
      (Mcf_util.Table.fmt_time_s o.kernel_time_s);
    (match Mcf_baselines.Pytorch.backend.tune spec big with
    | Ok py ->
      Printf.printf "unfused conv + conv1x1:  %s -> fused speedup %.2fx\n\n"
        (Mcf_util.Table.fmt_time_s py.time_s)
        (py.time_s /. o.kernel_time_s)
    | Error _ -> ())
  | Error _ -> print_endline "unfusable");

  (* numeric verification against the direct convolution reference *)
  let rng = Mcf_util.Rng.create 2718 in
  let image = T.random rng [| c_in; height; width |] in
  let w1 = T.random rng [| c_mid; c_in; ksize; ksize |] in
  let w2 = T.random rng [| c_out; c_mid; 1; 1 |] in
  let inputs =
    [ ("A", Ops.im2col ~input:image ~kh:ksize ~kw:ksize);
      ("B", Ops.conv_weights_matrix w1);
      ("D", Ops.conv_weights_matrix w2) ]
  in
  let o =
    match Mcf_search.Tuner.tune spec chain with
    | Ok o -> o
    | Error _ -> failwith "unfusable"
  in
  let fused = Mcf_interp.Interp.run (Mcf_search.Space.lowered o.best).program ~inputs in
  (* direct reference: conv then pointwise conv, flattened to [pixels, c] *)
  let ref_conv = Ops.conv2d ~input:(Ops.conv2d ~input:image ~weights:w1) ~weights:w2 in
  let ho = height - ksize + 1 and wo = width - ksize + 1 in
  let ref_flat =
    T.init [| ho * wo; c_out |] (fun idx ->
        T.get ref_conv [| idx.(1); idx.(0) / wo; idx.(0) mod wo |])
  in
  Printf.printf "fused schedule vs direct conv2d: max diff %.2e -> %s\n"
    (T.max_abs_diff fused ref_flat)
    (if T.approx_equal ~tol:1e-3 fused ref_flat then "PASS" else "FAIL")
