(* Quickstart: fuse a two-GEMM chain with MCFuser.

     dune exec examples/quickstart.exe

   Walks the public API end to end: define an MBCI operator chain, check
   it really is memory-bound on the target device, tune it, inspect the
   winning schedule, and verify the fused kernel numerically against the
   reference operators. *)

let () =
  (* 1. The operator chain:  C = A x B;  E = C x D  (Fig. 3 of the paper),
        with a small reduction dimension K that makes the GEMMs
        memory-bound on an A100. *)
  let chain = Mcf_ir.Chain.gemm_chain ~m:512 ~n:512 ~k:64 ~h:64 () in
  let spec = Mcf_gpu.Spec.a100 in
  Printf.printf "chain: %s\n" (Format.asprintf "%a" Mcf_ir.Chain.pp chain);

  (* 2. Is it MBCI?  Executed operator-by-operator, the intermediate C
        round-trips through global memory; the resulting arithmetic
        intensity against the device roofline is the MBCI test. *)
  let flops = Mcf_ir.Chain.total_flops chain in
  let unfused =
    Mcf_ir.Chain.unfused_traffic_bytes chain ~elem_bytes:spec.elem_bytes
  in
  let fused = Mcf_ir.Chain.min_traffic_bytes chain ~elem_bytes:spec.elem_bytes in
  Printf.printf
    "unfused intensity %.0f FLOPs/byte vs roofline crossover %.0f: %s\n"
    (flops /. unfused)
    (Mcf_gpu.Spec.roofline_ratio spec)
    (if flops /. unfused < Mcf_gpu.Spec.roofline_ratio spec then
       "memory-bound compute-intensive (MBCI) -> fusing helps"
     else "compute-bound -> fusion would not help");
  Printf.printf "perfect fusion cuts traffic %.1fx (%.2g -> %.2g MB)\n\n"
    (unfused /. fused) (unfused /. 1e6) (fused /. 1e6);

  (* 3. Tune. *)
  let outcome =
    match Mcf_search.Tuner.tune spec chain with
    | Ok o -> o
    | Error Mcf_search.Tuner.No_viable_candidate -> failwith "unfusable"
  in
  Printf.printf "best schedule: %s\n"
    (Mcf_ir.Candidate.to_string outcome.best.cand);
  Printf.printf "fused kernel:  %s (%d thread blocks)\n"
    (Mcf_util.Table.fmt_time_s outcome.kernel_time_s)
    outcome.kernel.blocks;
  Printf.printf
    "tuning:        %s virtual, %.2fs wall; %d candidates measured out of %d \
     in the pruned space (raw space %.2g)\n\n"
    (Mcf_util.Table.fmt_time_s outcome.tuning_virtual_s)
    outcome.tuning_wall_s outcome.search_stats.measured
    outcome.funnel.candidates_valid outcome.funnel.candidates_raw;
  print_string (Mcf_search.Tuner.pseudo_code outcome);

  (* 4. Compare against eager execution. *)
  (match Mcf_baselines.Pytorch.backend.tune spec chain with
  | Ok py ->
    Printf.printf "\nPyTorch (unfused): %s -> fused speedup %.2fx\n"
      (Mcf_util.Table.fmt_time_s py.time_s)
      (py.time_s /. outcome.kernel_time_s)
  | Error _ -> ());

  (* 5. Verify the fused schedule on real data (a scaled-down instance so
        the reference interpreter is instant). *)
  let small = Mcf_ir.Chain.gemm_chain ~m:96 ~n:96 ~k:64 ~h:64 () in
  let o =
    match Mcf_search.Tuner.tune spec small with
    | Ok o -> o
    | Error _ -> failwith "unfusable"
  in
  let rng = Mcf_util.Rng.create 42 in
  let inputs =
    List.map
      (fun (ts : Mcf_ir.Chain.tensor_spec) ->
        let shape =
          Array.of_list (List.map (fun (a : Mcf_ir.Axis.t) -> a.size) ts.taxes)
        in
        (ts.tname, Mcf_tensor.Tensor.random rng shape))
      (Mcf_ir.Chain.input_tensors small)
  in
  let fused = Mcf_interp.Interp.run (Mcf_search.Space.lowered o.best).program ~inputs in
  let reference = Mcf_interp.Interp.reference small ~inputs in
  Printf.printf "\nnumeric check on 96x96x64x64: max |fused - reference| = %.2e -> %s\n"
    (Mcf_tensor.Tensor.max_abs_diff fused reference)
    (if Mcf_tensor.Tensor.approx_equal ~tol:1e-3 fused reference then "PASS"
     else "FAIL")
