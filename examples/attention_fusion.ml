(* Self-attention fusion: MCFuser vs the attention-specific alternatives.

     dune exec examples/attention_fusion.exe

   Takes the BERT-Base attention module (S2 of Table III), shows why it is
   memory-bound, fuses it with MCFuser, and compares against PyTorch
   (eager, unfused), FlashAttention (handcrafted kernel) and
   MCFuser-Chimera (deep-tiling search).  Also prints the Triton kernel
   that MCFuser would hand to the GPU toolchain. *)

let () =
  let cfg = Option.get (Mcf_workloads.Configs.find_attention "S2") in
  let chain = Mcf_workloads.Configs.attention cfg in
  let spec = Mcf_gpu.Spec.a100 in
  Printf.printf
    "workload: %s self-attention — %d heads, seq %d, head dim %d\n\n"
    cfg.network cfg.heads cfg.sm cfg.sk;

  let backends =
    [ Mcf_baselines.Pytorch.backend;
      Mcf_baselines.Flash_attention.backend;
      Mcf_baselines.Chimera.backend;
      Mcf_baselines.Mcfuser_backend.backend ]
  in
  let tbl =
    Mcf_util.Table.create ~headers:[ "system"; "time"; "vs PyTorch"; "tuning" ]
  in
  let pytorch = ref nan in
  List.iter
    (fun (b : Mcf_baselines.Backend.t) ->
      match b.tune spec chain with
      | Error (Mcf_baselines.Backend.Unsupported msg) ->
        Mcf_util.Table.add_row tbl [ b.name; "-"; "-"; msg ]
      | Ok o ->
        if b.name = "PyTorch" then pytorch := o.time_s;
        Mcf_util.Table.add_row tbl
          [ b.name;
            Mcf_util.Table.fmt_time_s o.time_s;
            Mcf_util.Table.fmt_float (!pytorch /. o.time_s) ^ "x";
            Mcf_util.Table.fmt_time_s o.tuning_virtual_s ])
    backends;
  print_string (Mcf_util.Table.render tbl);

  (* the winning schedule and its generated kernel *)
  match Mcf_search.Tuner.tune spec chain with
  | Error _ -> ()
  | Ok o ->
    Printf.printf "\nwinning schedule: %s%s\n\n"
      (Mcf_ir.Candidate.to_string o.best.cand)
      (if Mcf_ir.Program.online_softmax (Mcf_search.Space.lowered o.best).program then
         "  (online softmax: the N dimension is tiled)"
       else "");
    print_string (Mcf_search.Tuner.pseudo_code o);
    Printf.printf "\ngenerated Triton kernel:\n\n";
    print_string (Mcf_search.Tuner.triton_source o);
    Printf.printf "\n%s\n"
      (Mcf_codegen.Emit.launch_stub (Mcf_search.Space.lowered o.best).program)
