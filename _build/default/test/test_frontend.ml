(* Tests for the end-to-end frontend: BERT graph construction, the MBCI
   partitioner's view, and the five compilation engines. *)

open Mcf_frontend

let a100 = Mcf_gpu.Spec.a100
let base_cfg = Mcf_workloads.Configs.bert_base
let graph = Graph.bert base_cfg

let engines_all =
  [ Engine.Relay_engine;
    Engine.Bolt_engine;
    Engine.Ansor_engine;
    Engine.Mcfuser_with Engine.Relay_engine;
    Engine.Mcfuser_with Engine.Ansor_engine ]

let report kind = Engine.run kind a100 graph

(* --- Graph ----------------------------------------------------------------- *)

let test_graph_shape () =
  Alcotest.(check int) "11 ops per layer" (11 * base_cfg.layers)
    (List.length graph.ops);
  Alcotest.(check bool) "flops positive" true (graph.flops > 0.0)

let test_graph_dense_shapes () =
  let shapes = Graph.unique_dense_shapes graph in
  Alcotest.(check int) "4 unique projections" 4 (List.length shapes);
  Alcotest.(check bool) "qkv packed projection present" true
    (List.mem (base_cfg.seq, 3 * base_cfg.hidden, base_cfg.hidden) shapes);
  Alcotest.(check bool) "ffn up present" true
    (List.mem (base_cfg.seq, base_cfg.intermediate, base_cfg.hidden) shapes)

let test_graph_attention_partition () =
  let cfgs = Graph.attention_configs graph in
  Alcotest.(check int) "one unique MBCI sub-graph" 1 (List.length cfgs);
  let c = List.hd cfgs in
  Alcotest.(check int) "heads" base_cfg.bheads c.heads;
  Alcotest.(check int) "head dim" (base_cfg.hidden / base_cfg.bheads) c.sk

let test_graph_scales_with_layers () =
  let small = Graph.bert Mcf_workloads.Configs.bert_small in
  let large = Graph.bert Mcf_workloads.Configs.bert_large in
  Alcotest.(check bool) "more layers, more ops" true
    (List.length large.ops > List.length small.ops);
  Alcotest.(check bool) "more layers, more flops" true
    (large.flops > small.flops)

let test_motivation_fractions () =
  (* §II-A: attention is a small FLOPs share but a large time share *)
  let flops = Engine.attention_fraction a100 graph ~flops_fraction:true in
  let time = Engine.attention_fraction a100 graph ~flops_fraction:false in
  Alcotest.(check bool) "flops share modest" true (flops > 0.02 && flops < 0.3);
  Alcotest.(check bool) "time share amplified" true (time > 1.5 *. flops)

(* --- Engines ----------------------------------------------------------------- *)

let test_engine_names () =
  Alcotest.(check (list string)) "names"
    [ "Relay"; "BOLT"; "Ansor"; "MCFuser+Relay"; "MCFuser+Ansor" ]
    (List.map Engine.name engines_all)

let test_all_engines_run () =
  List.iter
    (fun kind ->
      let r = report kind in
      Alcotest.(check bool)
        (Engine.name kind ^ " latency positive")
        true
        (r.latency_s > 0.0 && Float.is_finite r.latency_s);
      Alcotest.(check bool)
        (Engine.name kind ^ " attention within latency")
        true
        (r.attention_s >= 0.0 && r.attention_s <= r.latency_s))
    engines_all

let test_mcfuser_improves_host () =
  let relay = report Engine.Relay_engine in
  let mrelay = report (Engine.Mcfuser_with Engine.Relay_engine) in
  Alcotest.(check bool) "faster than host alone" true
    (mrelay.latency_s < relay.latency_s);
  Alcotest.(check bool) "fewer kernel launches" true
    (mrelay.kernel_launches < relay.kernel_launches);
  Alcotest.(check bool) "attention share collapses" true
    (mrelay.attention_s /. mrelay.latency_s
    < 0.5 *. (relay.attention_s /. relay.latency_s))

let test_fig9_ordering () =
  let l kind = (report kind).Engine.latency_s in
  Alcotest.(check bool) "MCFuser+Ansor fastest" true
    (l (Engine.Mcfuser_with Engine.Ansor_engine)
    < Mcf_util.Stats.minimum
        [ l Engine.Relay_engine; l Engine.Bolt_engine; l Engine.Ansor_engine ]);
  Alcotest.(check bool) "Relay slowest" true
    (l Engine.Relay_engine
    >= Mcf_util.Stats.maximum
         [ l Engine.Bolt_engine; l Engine.Ansor_engine ])

let test_tuning_cost_ordering () =
  let t kind = (report kind).Engine.tuning_virtual_s in
  Alcotest.(check bool) "Relay cheapest to build" true
    (t Engine.Relay_engine < t Engine.Bolt_engine);
  Alcotest.(check bool) "Ansor by far the slowest" true
    (t Engine.Ansor_engine > 10.0 *. t Engine.Bolt_engine);
  Alcotest.(check bool) "MCFuser+Ansor cheaper than Ansor (Table IV)" true
    (t (Engine.Mcfuser_with Engine.Ansor_engine) < t Engine.Ansor_engine)

let test_tuning_scales_with_model () =
  let small = Graph.bert Mcf_workloads.Configs.bert_small in
  let large = Graph.bert Mcf_workloads.Configs.bert_large in
  let t g = (Engine.run Engine.Relay_engine a100 g).Engine.tuning_virtual_s in
  Alcotest.(check bool) "Relay build time grows with layers" true
    (t large > t small)

let test_bolt_pattern_folds_bias () =
  (* BOLT's GEMM+bias fusion removes kernels relative to Relay *)
  let relay = report Engine.Relay_engine in
  let bolt = report Engine.Bolt_engine in
  Alcotest.(check bool) "fewer launches" true
    (bolt.kernel_launches < relay.kernel_launches)

(* --- Opgraph partitioner (SV-B) ------------------------------------------ *)

module Og = Opgraph

let test_opgraph_bert_layer_valid () =
  let g = Og.bert_layer base_cfg in
  match Og.validate g with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_partition_bert_layer () =
  let g = Og.bert_layer base_cfg in
  let g', r = Og.partition a100 g in
  Alcotest.(check int) "attention fused" 1 r.fused_attention;
  Alcotest.(check int) "FFN rejected as compute-bound" 1
    r.rejected_compute_bound;
  Alcotest.(check int) "no other chains" 0 r.fused_chains;
  Alcotest.(check bool) "still valid" true (Result.is_ok (Og.validate g'));
  match Og.fused_chains g' with
  | [ chain ] ->
    Alcotest.(check int) "attention heads" base_cfg.bheads
      chain.Mcf_ir.Chain.batch
  | _ -> Alcotest.fail "expected exactly one fused chain"

let mk_node id name kind inputs = { Og.id; name; kind; inputs }

let memory_bound_chain_graph ~gelu =
  (* matmul(512x256x64) -> bias (-> gelu) -> matmul(..x64): K is tiny, so
     the unfused chain is memory-bound and must be fused *)
  let mid = if gelu then [ mk_node 3 "act" Og.Gelu [ 2 ] ] else [] in
  let last_in = if gelu then 3 else 2 in
  { Og.nodes =
      [ mk_node 0 "x" (Og.Input { shape = [ 512; 64 ] }) [];
        mk_node 1 "mm1"
          (Og.Matmul { batch = 1; m = 512; n = 256; k = 64; transpose_b = false })
          [ 0 ];
        mk_node 2 "bias" Og.Bias_add [ 1 ] ]
      @ mid
      @ [ mk_node 9 "mm2"
            (Og.Matmul
               { batch = 1; m = 512; n = 64; k = 256; transpose_b = false })
            [ last_in ] ] }

let test_partition_memory_bound_chain () =
  let g', r = Og.partition a100 (memory_bound_chain_graph ~gelu:false) in
  Alcotest.(check int) "chain fused" 1 r.fused_chains;
  Alcotest.(check int) "no rejection" 0 r.rejected_compute_bound;
  match Og.fused_chains g' with
  | [ chain ] ->
    Alcotest.(check bool) "plain gemm chain" true
      (List.for_all
         (fun (b : Mcf_ir.Chain.block) -> b.epilogue = Mcf_ir.Chain.No_epilogue)
         chain.blocks)
  | _ -> Alcotest.fail "expected one fused chain"

let test_partition_gelu_chain_uses_mlp () =
  let g', r = Og.partition a100 (memory_bound_chain_graph ~gelu:true) in
  Alcotest.(check int) "chain fused" 1 r.fused_chains;
  match Og.fused_chains g' with
  | [ chain ] ->
    Alcotest.(check bool) "unary epilogue present" true
      (List.exists
         (fun (b : Mcf_ir.Chain.block) ->
           match b.epilogue with Mcf_ir.Chain.Unary _ -> true | _ -> false)
         chain.blocks)
  | _ -> Alcotest.fail "expected one fused chain"

let test_partition_escaping_value_blocks_fusion () =
  (* the intermediate feeds a second consumer: fusing would lose it *)
  let g =
    { Og.nodes =
        [ mk_node 0 "x" (Og.Input { shape = [ 512; 64 ] }) [];
          mk_node 1 "mm1"
            (Og.Matmul
               { batch = 1; m = 512; n = 256; k = 64; transpose_b = false })
            [ 0 ];
          mk_node 2 "mm2"
            (Og.Matmul
               { batch = 1; m = 512; n = 64; k = 256; transpose_b = false })
            [ 1 ];
          mk_node 3 "escape" Og.Layernorm [ 1 ] ] }
  in
  let _, r = Og.partition a100 g in
  Alcotest.(check int) "nothing fused" 0 (r.fused_chains + r.fused_attention)

let test_partition_idempotent () =
  let g = Og.bert_layer base_cfg in
  let g1, _ = Og.partition a100 g in
  let g2, r2 = Og.partition a100 g1 in
  Alcotest.(check int) "second pass fuses nothing" 0
    (r2.fused_attention + r2.fused_chains);
  Alcotest.(check string) "graph unchanged" (Og.to_string g1) (Og.to_string g2)

let test_opgraph_validate_errors () =
  let bad =
    { Og.nodes =
        [ mk_node 0 "a" (Og.Input { shape = [ 1 ] }) [ 1 ];
          mk_node 1 "b" Og.Gelu [] ] }
  in
  Alcotest.(check bool) "forward reference rejected" true
    (Result.is_error (Og.validate bad))

let () =
  Alcotest.run "mcf_frontend"
    [ ( "graph",
        [ Alcotest.test_case "shape" `Quick test_graph_shape;
          Alcotest.test_case "dense shapes" `Quick test_graph_dense_shapes;
          Alcotest.test_case "attention partition" `Quick
            test_graph_attention_partition;
          Alcotest.test_case "scales with layers" `Quick
            test_graph_scales_with_layers;
          Alcotest.test_case "motivation fractions" `Quick
            test_motivation_fractions ] );
      ( "engines",
        [ Alcotest.test_case "names" `Quick test_engine_names;
          Alcotest.test_case "all run" `Quick test_all_engines_run;
          Alcotest.test_case "mcfuser improves host" `Quick
            test_mcfuser_improves_host;
          Alcotest.test_case "fig9 ordering" `Quick test_fig9_ordering;
          Alcotest.test_case "tuning cost ordering" `Quick
            test_tuning_cost_ordering;
          Alcotest.test_case "tuning scales" `Quick
            test_tuning_scales_with_model;
          Alcotest.test_case "bolt bias fusion" `Quick
            test_bolt_pattern_folds_bias ] );
      ( "opgraph",
        [ Alcotest.test_case "bert layer valid" `Quick
            test_opgraph_bert_layer_valid;
          Alcotest.test_case "partition bert layer" `Quick
            test_partition_bert_layer;
          Alcotest.test_case "memory-bound chain fused" `Quick
            test_partition_memory_bound_chain;
          Alcotest.test_case "gelu chain uses mlp" `Quick
            test_partition_gelu_chain_uses_mlp;
          Alcotest.test_case "escaping value blocks fusion" `Quick
            test_partition_escaping_value_blocks_fusion;
          Alcotest.test_case "idempotent" `Quick test_partition_idempotent;
          Alcotest.test_case "validate errors" `Quick
            test_opgraph_validate_errors ] ) ]
