  $ mcfuser experiment fig7 | sed -n '3,14p'
