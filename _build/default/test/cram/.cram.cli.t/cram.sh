  $ mcfuser workloads | head -8
  $ mcfuser experiment nonsense
  $ mcfuser tune G1 | head -2
