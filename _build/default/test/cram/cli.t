Deterministic CLI surfaces: the workload registry and the experiment list.

  $ mcfuser workloads | head -8
  +------+----------------+-------------+------+------+------+-----+------------+
  | name |           kind | batch/heads |    M |    N |    K |   H |    network |
  +------+----------------+-------------+------+------+------+-----+------------+
  | G1   |     GEMM chain |           1 |  512 |  256 |   64 |  64 |          - |
  | G2   |     GEMM chain |           1 |  512 |  256 |   64 | 128 |          - |
  | G3   |     GEMM chain |           1 |  512 |  256 |   64 | 256 |          - |
  | G4   |     GEMM chain |           1 |  512 |  512 |  256 | 256 |          - |
  | G5   |     GEMM chain |           1 |  512 |  512 |  512 | 256 |          - |

  $ mcfuser experiment nonsense
  mcfuser: unknown experiment "nonsense" (available: motivation, fig2, fig7, fig8a, fig8b, fig8c, fig8d, fig9, tab4, fig10, fig11, ablation, sweep, verify, extension)
  [124]

The tuner is seeded per (workload, device), so its headline line is stable:

  $ mcfuser tune G1 | head -2
  workload  G1 on A100
  best      mnkh {h=32 k=32 m=16 n=256}
