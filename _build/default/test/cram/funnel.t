The pruning funnel of the paper's running example is fully deterministic.

  $ mcfuser experiment fig7 | sed -n '3,14p'
  +------------------------------+--------+---------------------------+
  | stage                        |  count |                     paper |
  +------------------------------+--------+---------------------------+
  | tiling expressions (raw)     |     26 |                        26 |
  | after Rule 1 (dedup)         |      3 |                         5 |
  | after Rule 2 (residency)     |      2 |                         3 |
  +------------------------------+--------+---------------------------+
  | candidates (raw)             | 1.09e8 |                    1.09e8 |
  | after Rule 3 (padding)       | 3.53e3 |       ~1e6 -> 99% dropped |
  | after Rule 4 (shared memory) |   1302 | ~40% of remaining dropped |
  | valid (softmax legality)     |   1302 |                      ~1e4 |
  +------------------------------+--------+---------------------------+
