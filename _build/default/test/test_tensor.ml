(* Tests for the tensor substrate: storage semantics and the reference
   operators that define correctness for every fused schedule. *)

module T = Mcf_tensor.Tensor
module Ops = Mcf_tensor.Ops

let rng = Mcf_util.Rng.create 12345

let check_close = Alcotest.(check (float 1e-6))

(* --- Tensor storage ------------------------------------------------------ *)

let test_create_zero () =
  let t = T.create [| 2; 3 |] in
  Alcotest.(check int) "numel" 6 (T.numel t);
  Alcotest.(check int) "rank" 2 (T.rank t);
  check_close "zeros" 0.0 (T.get t [| 1; 2 |])

let test_get_set () =
  let t = T.create [| 2; 3 |] in
  T.set t [| 1; 2 |] 7.5;
  check_close "roundtrip" 7.5 (T.get t [| 1; 2 |]);
  check_close "others untouched" 0.0 (T.get t [| 0; 0 |])

let test_row_major_layout () =
  let t = T.init [| 2; 3 |] (fun idx -> float_of_int ((idx.(0) * 3) + idx.(1))) in
  let buf = T.data t in
  for i = 0 to 5 do
    check_close "row-major order" (float_of_int i) buf.(i)
  done

let test_bounds () =
  let t = T.create [| 2; 3 |] in
  Alcotest.(check bool) "oob raises" true
    (try
       ignore (T.get t [| 2; 0 |]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "rank mismatch raises" true
    (try
       ignore (T.get t [| 0 |]);
       false
     with Invalid_argument _ -> true)

let test_scalar () =
  let t = T.scalar 3.0 in
  Alcotest.(check int) "rank 0" 0 (T.rank t);
  check_close "value" 3.0 (T.get t [||])

let test_of_array () =
  let t = T.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  check_close "value" 4.0 (T.get t [| 1; 1 |]);
  Alcotest.(check bool) "size mismatch raises" true
    (try
       ignore (T.of_array [| 2; 2 |] [| 1.0 |]);
       false
     with Invalid_argument _ -> true)

let test_copy_independent () =
  let a = T.create [| 2 |] in
  let b = T.copy a in
  T.set b [| 0 |] 9.0;
  check_close "copy is deep" 0.0 (T.get a [| 0 |])

let test_map_map2 () =
  let a = T.of_array [| 2 |] [| 1.0; 2.0 |] in
  let b = T.of_array [| 2 |] [| 3.0; 4.0 |] in
  check_close "map" 2.0 (T.get (T.map (fun x -> 2.0 *. x) a) [| 0 |]);
  check_close "map2" 8.0 (T.get (T.map2 ( *. ) a b) [| 1 |]);
  Alcotest.(check bool) "shape mismatch" true
    (try
       ignore (T.map2 ( +. ) a (T.create [| 3 |]));
       false
     with Invalid_argument _ -> true)

let test_max_abs_diff () =
  let a = T.of_array [| 2 |] [| 1.0; 5.0 |] in
  let b = T.of_array [| 2 |] [| 1.5; 4.0 |] in
  check_close "max diff" 1.0 (T.max_abs_diff a b)

let test_approx_equal () =
  let a = T.of_array [| 1 |] [| 100.0 |] in
  let b = T.of_array [| 1 |] [| 100.0001 |] in
  Alcotest.(check bool) "close" true (T.approx_equal a b);
  let c = T.of_array [| 1 |] [| 101.0 |] in
  Alcotest.(check bool) "far" false (T.approx_equal a c)

let test_random_range () =
  let t = T.random rng [| 100 |] in
  Array.iter
    (fun v -> Alcotest.(check bool) "in [-1,1)" true (v >= -1.0 && v < 1.0))
    (T.data t)

(* --- Ops ----------------------------------------------------------------- *)

let test_matmul_known () =
  let a = T.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = T.of_array [| 2; 2 |] [| 5.0; 6.0; 7.0; 8.0 |] in
  let c = Ops.matmul a b in
  check_close "c00" 19.0 (T.get c [| 0; 0 |]);
  check_close "c01" 22.0 (T.get c [| 0; 1 |]);
  check_close "c10" 43.0 (T.get c [| 1; 0 |]);
  check_close "c11" 50.0 (T.get c [| 1; 1 |])

let test_matmul_identity () =
  let n = 8 in
  let id = T.init [| n; n |] (fun i -> if i.(0) = i.(1) then 1.0 else 0.0) in
  let a = T.random rng [| n; n |] in
  Alcotest.(check bool) "A * I = A" true (T.approx_equal (Ops.matmul a id) a)

let test_matmul_shape_errors () =
  Alcotest.(check bool) "inner mismatch" true
    (try
       ignore (Ops.matmul (T.create [| 2; 3 |]) (T.create [| 4; 2 |]));
       false
     with Invalid_argument _ -> true)

let test_batch_matmul () =
  let a = T.random rng [| 3; 4; 5 |] in
  let b = T.random rng [| 3; 5; 6 |] in
  let c = Ops.batch_matmul a b in
  Alcotest.(check (array int)) "shape" [| 3; 4; 6 |] (T.shape c);
  (* batch 1 slice agrees with 2-D matmul *)
  let a1 = T.init [| 4; 5 |] (fun i -> T.get a [| 1; i.(0); i.(1) |]) in
  let b1 = T.init [| 5; 6 |] (fun i -> T.get b [| 1; i.(0); i.(1) |]) in
  let c1 = Ops.matmul a1 b1 in
  let max_diff = ref 0.0 in
  for i = 0 to 3 do
    for j = 0 to 5 do
      max_diff :=
        Float.max !max_diff
          (Float.abs (T.get c [| 1; i; j |] -. T.get c1 [| i; j |]))
    done
  done;
  Alcotest.(check bool) "slice equals 2-D" true (!max_diff < 1e-9)

let test_transpose () =
  let a = T.random rng [| 3; 5 |] in
  let t = Ops.transpose_last2 a in
  Alcotest.(check (array int)) "shape" [| 5; 3 |] (T.shape t);
  check_close "element moved" (T.get a [| 2; 4 |]) (T.get t [| 4; 2 |]);
  Alcotest.(check bool) "involution" true
    (T.approx_equal (Ops.transpose_last2 t) a)

let test_softmax_rows () =
  let a = T.random rng [| 4; 7 |] in
  let s = Ops.softmax a in
  for i = 0 to 3 do
    let sum = ref 0.0 in
    for j = 0 to 6 do
      let v = T.get s [| i; j |] in
      Alcotest.(check bool) "positive" true (v > 0.0);
      sum := !sum +. v
    done;
    check_close "row sums to 1" 1.0 !sum
  done

let test_softmax_shift_invariance () =
  let a = T.random rng [| 2; 5 |] in
  let shifted = T.map (fun x -> x +. 100.0) a in
  Alcotest.(check bool) "shift invariant" true
    (T.approx_equal (Ops.softmax a) (Ops.softmax shifted))

let test_softmax_stability () =
  let a = T.of_array [| 1; 2 |] [| 1000.0; 999.0 |] in
  let s = Ops.softmax a in
  Alcotest.(check bool) "no overflow" true
    (Float.is_finite (T.get s [| 0; 0 |]));
  check_close "stable value" (1.0 /. (1.0 +. exp (-1.0))) (T.get s [| 0; 0 |])

let test_scale_add () =
  let a = T.of_array [| 2 |] [| 1.0; 2.0 |] in
  check_close "scale" 3.0 (T.get (Ops.scale 3.0 a) [| 0 |]);
  check_close "add" 4.0 (T.get (Ops.add a a) [| 1 |])

let test_bias_add () =
  let x = T.of_array [| 2; 2 |] [| 1.0; 2.0; 3.0; 4.0 |] in
  let b = T.of_array [| 2 |] [| 10.0; 20.0 |] in
  let y = Ops.bias_add x b in
  check_close "broadcast" 22.0 (T.get y [| 0; 1 |]);
  check_close "broadcast row 2" 13.0 (T.get y [| 1; 0 |])

let test_relu () =
  let a = T.of_array [| 3 |] [| -1.0; 0.0; 2.0 |] in
  let r = Ops.relu a in
  check_close "neg" 0.0 (T.get r [| 0 |]);
  check_close "pos" 2.0 (T.get r [| 2 |])

let test_gelu () =
  let a = T.of_array [| 3 |] [| -10.0; 0.0; 10.0 |] in
  let g = Ops.gelu a in
  check_close "far negative ~ 0" 0.0 (T.get g [| 0 |]);
  check_close "zero" 0.0 (T.get g [| 1 |]);
  check_close "far positive ~ x" 10.0 (T.get g [| 2 |])

let test_layernorm () =
  let a = T.random rng [| 3; 16 |] in
  let n = Ops.layernorm a in
  for i = 0 to 2 do
    let xs = List.init 16 (fun j -> T.get n [| i; j |]) in
    Alcotest.(check (float 1e-4)) "mean 0" 0.0 (Mcf_util.Stats.mean xs);
    Alcotest.(check (float 1e-2)) "std 1" 1.0 (Mcf_util.Stats.stddev xs)
  done

let test_attention_manual () =
  (* 1 query row, 2 keys: can be computed by hand *)
  let q = T.of_array [| 1; 1 |] [| 1.0 |] in
  let k = T.of_array [| 2; 1 |] [| 1.0; -1.0 |] in
  let v = T.of_array [| 2; 1 |] [| 10.0; 20.0 |] in
  let o = Ops.attention ~q ~k ~v in
  (* scores = [1; -1] (d = 1, scale 1), softmax = [e/(e+e^-1); ...] *)
  let p0 = exp 1.0 /. (exp 1.0 +. exp (-1.0)) in
  check_close "hand computed" ((p0 *. 10.0) +. ((1.0 -. p0) *. 20.0))
    (T.get o [| 0; 0 |])

let test_gemm_chain_assoc () =
  let a = T.random rng [| 4; 5 |] in
  let b = T.random rng [| 5; 6 |] in
  let d = T.random rng [| 6; 3 |] in
  let chained = Ops.gemm_chain ~a ~b ~d in
  let manual = Ops.matmul (Ops.matmul a b) d in
  Alcotest.(check bool) "(AB)D" true (T.approx_equal chained manual)

let test_conv2d_known () =
  (* 1x3x3 input, 1x1x2x2 averaging-ish kernel, by hand *)
  let input = T.of_array [| 1; 3; 3 |] [| 1.;2.;3.; 4.;5.;6.; 7.;8.;9. |] in
  let w = T.of_array [| 1; 1; 2; 2 |] [| 1.;0.; 0.;1. |] in
  let out = Ops.conv2d ~input ~weights:w in
  Alcotest.(check (array int)) "shape" [| 1; 2; 2 |] (T.shape out);
  check_close "c00 = 1+5" 6.0 (T.get out [| 0; 0; 0 |]);
  check_close "c11 = 5+9" 14.0 (T.get out [| 0; 1; 1 |])

let test_conv2d_im2col_equivalence () =
  let input = T.random rng [| 3; 8; 7 |] in
  let w = T.random rng [| 5; 3; 3; 3 |] in
  let direct = Ops.conv2d ~input ~weights:w in
  let gemm =
    Ops.matmul (Ops.im2col ~input ~kh:3 ~kw:3) (Ops.conv_weights_matrix w)
  in
  (* gemm is [pixels, c_out]; compare element-wise against direct CHW *)
  let ho = 6 and wo = 5 in
  let ok = ref true in
  for co = 0 to 4 do
    for y = 0 to ho - 1 do
      for x = 0 to wo - 1 do
        let a = T.get direct [| co; y; x |] in
        let b = T.get gemm [| (y * wo) + x; co |] in
        if Float.abs (a -. b) > 1e-6 then ok := false
      done
    done
  done;
  Alcotest.(check bool) "conv2d = im2col x weights" true !ok

let test_conv2d_errors () =
  Alcotest.(check bool) "channel mismatch" true
    (try
       ignore
         (Ops.conv2d ~input:(T.create [| 2; 4; 4 |])
            ~weights:(T.create [| 1; 3; 2; 2 |]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "kernel too large" true
    (try
       ignore
         (Ops.conv2d ~input:(T.create [| 1; 2; 2 |])
            ~weights:(T.create [| 1; 1; 3; 3 |]));
       false
     with Invalid_argument _ -> true)

(* --- properties ---------------------------------------------------------- *)

let small_dim = QCheck.Gen.int_range 1 6

let prop_softmax_rows_sum_1 =
  QCheck.Test.make ~count:50 ~name:"softmax rows sum to 1"
    QCheck.(pair (make small_dim) (make small_dim))
    (fun (r, c) ->
      let rng = Mcf_util.Rng.create ((r * 31) + c) in
      let t = T.random rng [| r; c |] in
      let s = Ops.softmax t in
      let ok = ref true in
      for i = 0 to r - 1 do
        let sum = ref 0.0 in
        for j = 0 to c - 1 do
          sum := !sum +. T.get s [| i; j |]
        done;
        if Float.abs (!sum -. 1.0) > 1e-6 then ok := false
      done;
      !ok)

let prop_matmul_distributes =
  QCheck.Test.make ~count:50 ~name:"A(B+C) = AB + AC"
    QCheck.(triple (make small_dim) (make small_dim) (make small_dim))
    (fun (m, k, n) ->
      let rng = Mcf_util.Rng.create ((m * 97) + (k * 13) + n) in
      let a = T.random rng [| m; k |] in
      let b = T.random rng [| k; n |] in
      let c = T.random rng [| k; n |] in
      T.approx_equal
        (Ops.matmul a (Ops.add b c))
        (Ops.add (Ops.matmul a b) (Ops.matmul a c)))

let prop_transpose_involution =
  QCheck.Test.make ~count:50 ~name:"transpose twice is identity"
    QCheck.(pair (make small_dim) (make small_dim))
    (fun (m, n) ->
      let rng = Mcf_util.Rng.create ((m * 7) + n) in
      let a = T.random rng [| m; n |] in
      T.approx_equal (Ops.transpose_last2 (Ops.transpose_last2 a)) a)

let () =
  Alcotest.run "mcf_tensor"
    [ ( "storage",
        [ Alcotest.test_case "create zero" `Quick test_create_zero;
          Alcotest.test_case "get/set" `Quick test_get_set;
          Alcotest.test_case "row-major layout" `Quick test_row_major_layout;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "scalar" `Quick test_scalar;
          Alcotest.test_case "of_array" `Quick test_of_array;
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "map/map2" `Quick test_map_map2;
          Alcotest.test_case "max_abs_diff" `Quick test_max_abs_diff;
          Alcotest.test_case "approx_equal" `Quick test_approx_equal;
          Alcotest.test_case "random range" `Quick test_random_range ] );
      ( "ops",
        [ Alcotest.test_case "matmul known" `Quick test_matmul_known;
          Alcotest.test_case "matmul identity" `Quick test_matmul_identity;
          Alcotest.test_case "matmul shape errors" `Quick
            test_matmul_shape_errors;
          Alcotest.test_case "batch matmul" `Quick test_batch_matmul;
          Alcotest.test_case "transpose" `Quick test_transpose;
          Alcotest.test_case "softmax rows" `Quick test_softmax_rows;
          Alcotest.test_case "softmax shift invariance" `Quick
            test_softmax_shift_invariance;
          Alcotest.test_case "softmax stability" `Quick test_softmax_stability;
          Alcotest.test_case "scale/add" `Quick test_scale_add;
          Alcotest.test_case "bias add" `Quick test_bias_add;
          Alcotest.test_case "relu" `Quick test_relu;
          Alcotest.test_case "gelu" `Quick test_gelu;
          Alcotest.test_case "layernorm" `Quick test_layernorm;
          Alcotest.test_case "attention by hand" `Quick test_attention_manual;
          Alcotest.test_case "gemm chain assoc" `Quick test_gemm_chain_assoc;
          Alcotest.test_case "conv2d by hand" `Quick test_conv2d_known;
          Alcotest.test_case "conv2d = im2col gemm" `Quick
            test_conv2d_im2col_equivalence;
          Alcotest.test_case "conv2d errors" `Quick test_conv2d_errors ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_softmax_rows_sum_1; prop_matmul_distributes;
            prop_transpose_involution ] ) ]
